package repro

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
)

// buildTinySharded builds the tiny pipeline with the engine partitioned
// into the given number of index segments — same corpus, same seeds.
func buildTinySharded(t testing.TB, shards int) *Pipeline {
	t.Helper()
	cfg := tinyConfig(42)
	cfg.Engine.Shards = shards
	p, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDiversifyShardSweepBitIdentical is the end-to-end acceptance
// differential: at every shard count the full pipeline — retrieval,
// utilities, selection — must reproduce the single-index SERP exactly,
// document for document and score bit for score bit.
func TestDiversifyShardSweepBitIdentical(t *testing.T) {
	base := buildTiny(t)
	queries := []string{"topic01", "topic02", "noise query 0002"}
	algs := []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect}
	for _, shards := range []int{1, 2, 4, 7} {
		p := buildTinySharded(t, shards)
		if got := p.Engine.Segments().NumShards(); got != shards {
			t.Fatalf("pipeline engine has %d shards, want %d", got, shards)
		}
		for _, q := range queries {
			for _, alg := range algs {
				want, wantSpecs := base.Diversify(q, alg)
				got, gotSpecs := p.Diversify(q, alg)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d %s %q: SERP differs\n got %v\nwant %v",
						shards, alg, q, core.IDs(got), core.IDs(want))
				}
				if !reflect.DeepEqual(gotSpecs, wantSpecs) {
					t.Fatalf("shards=%d %s %q: specs differ", shards, alg, q)
				}
				// The batched scatter-gather path must agree too.
				par, _ := p.DiversifyParallel(q, alg)
				if !reflect.DeepEqual(par, want) {
					t.Fatalf("shards=%d %s %q: batched SERP differs", shards, alg, q)
				}
			}
		}
	}
}

// TestDiversifyCachedShardedMatches runs the serving path on a sharded
// pipeline: hit and miss answers must both equal the unsharded
// Diversify.
func TestDiversifyCachedShardedMatches(t *testing.T) {
	base := buildTiny(t)
	p := buildTinySharded(t, 4)
	h := p.NewServeHandle(64, 4)
	for _, q := range []string{"topic01", "noise query 0002"} {
		want, _ := base.Diversify(q, core.AlgOptSelect)
		for pass := 0; pass < 2; pass++ { // miss then hit
			got, _, hit := h.DiversifyCached(q, core.AlgOptSelect)
			if hit != (pass == 1) {
				t.Fatalf("%q pass %d: hit=%v", q, pass, hit)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%q pass %d: cached sharded SERP differs", q, pass)
			}
		}
	}
}

// TestDiversifyCachedCtxCanceled: a canceled request context must abort
// the per-request retrieval with an error on both the miss and the hit
// path, and must NOT poison the shared artifact cache for later
// requests.
func TestDiversifyCachedCtxCanceled(t *testing.T) {
	p := buildTinySharded(t, 4)
	h := p.NewServeHandle(64, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, _, err := h.DiversifyCachedKCtx(ctx, "topic01", core.AlgOptSelect, 0); err == nil {
		t.Fatal("canceled miss: want error")
	}
	// The artifact build ran under Background despite the canceled
	// request: the next (healthy) request hits the cache and serves the
	// same SERP an uncanceled pipeline produces.
	want, _ := p.Diversify("topic01", core.AlgOptSelect)
	got, _, hit, err := h.DiversifyCachedKCtx(context.Background(), "topic01", core.AlgOptSelect, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("artifacts not cached by the canceled request's build")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("post-cancel SERP differs")
	}
	if _, _, _, err := h.DiversifyCachedKCtx(ctx, "topic01", core.AlgOptSelect, 0); err == nil {
		t.Fatal("canceled hit: want error")
	}
}
