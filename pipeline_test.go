package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/ranking"
	"repro/internal/synth"
)

// tinyConfig builds a fast pipeline for tests: 6 topics, small corpus,
// enough log sessions for reliable detection.
func tinyConfig(seed int64) Config {
	return Config{
		Corpus: synth.CorpusSpec{
			Seed:                seed,
			NumTopics:           6,
			MinSubtopics:        2,
			MaxSubtopics:        4,
			DocsPerSubtopic:     10,
			GenericDocsPerTopic: 5,
			NoiseDocs:           100,
			DocLength:           40,
			BackgroundVocab:     400,
			TopicVocab:          10,
			SubtopicVocab:       8,
		},
		Log:           synth.AOLLike(seed+1, 2500),
		NumCandidates: 100,
		PerSpec:       10,
		K:             10,
	}
}

func buildTiny(t testing.TB) *Pipeline {
	t.Helper()
	p, err := Build(tinyConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildPipeline(t *testing.T) {
	p := buildTiny(t)
	if p.Engine.NumDocs() == 0 {
		t.Error("empty engine")
	}
	if len(p.Sessions) == 0 {
		t.Error("no sessions extracted")
	}
	if p.Log.Len() == 0 {
		t.Error("empty log")
	}
	if p.Graph.Nodes() == 0 {
		t.Error("empty query-flow graph")
	}
}

func TestDetectSpecializationsOnPopularTopic(t *testing.T) {
	p := buildTiny(t)
	specs := p.DetectSpecializations("topic01")
	if len(specs) < 2 {
		t.Fatalf("topic01 specializations = %+v, want >= 2", specs)
	}
	total := 0.0
	for _, s := range specs {
		total += s.Prob
		if s.Query == "topic01" {
			t.Error("query itself returned as specialization")
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("probabilities sum to %f", total)
	}
}

func TestDetectUnambiguous(t *testing.T) {
	p := buildTiny(t)
	if specs := p.DetectSpecializations("noise query 0001"); len(specs) != 0 {
		t.Errorf("noise query detected ambiguous: %+v", specs)
	}
}

func TestBuildProblemShape(t *testing.T) {
	p := buildTiny(t)
	specs := p.DetectSpecializations("topic01")
	if len(specs) == 0 {
		t.Skip("detection failed on this seed (covered by other tests)")
	}
	prob := p.BuildProblem("topic01", specs)
	if len(prob.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if len(prob.Specs) != len(specs) {
		t.Errorf("problem specs = %d, want %d", len(prob.Specs), len(specs))
	}
	// Relevance normalized: max = 1.
	maxRel := 0.0
	for _, d := range prob.Candidates {
		if d.Rel > maxRel {
			maxRel = d.Rel
		}
		if d.Rel < 0 || d.Rel > 1 {
			t.Errorf("Rel out of range: %f", d.Rel)
		}
	}
	if maxRel != 1 {
		t.Errorf("max Rel = %f, want 1", maxRel)
	}
	for _, s := range prob.Specs {
		if len(s.Results) == 0 {
			t.Errorf("specialization %q has empty R_q'", s.Query)
		}
	}
}

// TestCandidateRelNegativeScores is the regression test for the P(d|q)
// normalization bug: LMDirichlet retrieval scores are routinely negative
// (the per-document adjustment is qLen·log(μ/(μ+l)) < 0), and the old
// max-against-0 normalization handed every candidate Rel = 0 — or a
// negative Rel when scores straddled zero — silently reducing the
// language-model ablation to pure utility ordering. Candidates must get
// Rel ∈ [0,1] with retrieval rank order preserved under every model.
func TestCandidateRelNegativeScores(t *testing.T) {
	// First, pin that the scenario is real: a Dirichlet-smoothed total is
	// negative whenever the (always-negative) document adjustment
	// outweighs the term contributions — common terms, long documents.
	lm := ranking.LMDirichlet{}
	c := index.CollectionStats{NumDocs: 100, TotalTokens: 10000, AvgDocLen: 100}
	total := lm.TermScore(1, 100, index.TermStats{DF: 90, CF: 5000}, c) +
		lm.DocAdjust(100, 1, c)
	if total >= 0 {
		t.Fatalf("expected a negative LMDirichlet total, got %v", total)
	}

	p := buildTiny(t)
	mkResults := func(scores ...float64) []engine.Result {
		out := make([]engine.Result, len(scores))
		for i, s := range scores {
			out[i] = engine.Result{DocID: fmt.Sprintf("d%d", i), Rank: i + 1, Score: s, Snippet: "topic words"}
		}
		return out
	}
	check := func(name string, cands []core.Doc) {
		t.Helper()
		nonzero := 0
		for i, d := range cands {
			if d.Rel < 0 || d.Rel > 1 {
				t.Fatalf("%s: candidate %d Rel = %v, want [0,1]", name, i, d.Rel)
			}
			if d.Rel > 0 {
				nonzero++
			}
			if i > 0 && cands[i-1].Rel < d.Rel {
				t.Fatalf("%s: rank order broken at %d: Rel %v < %v", name, i, cands[i-1].Rel, d.Rel)
			}
		}
		if nonzero == 0 {
			t.Fatalf("%s: every candidate still has Rel = 0", name)
		}
		if cands[0].Rel != 1 {
			t.Errorf("%s: top candidate Rel = %v, want 1", name, cands[0].Rel)
		}
	}
	// All-negative scores (the LMDirichlet shape) and scores straddling
	// zero (where the old code produced negative Rel).
	check("all-negative", p.candidatesFromResults(mkResults(-1.25, -2.5, -3.75, -9)))
	check("straddling", p.candidatesFromResults(mkResults(0.5, 0.1, -0.2, -1.4)))
	// Degenerate: every score equal and negative — equally relevant.
	for i, d := range p.candidatesFromResults(mkResults(-2, -2, -2)) {
		if d.Rel != 1 {
			t.Errorf("all-equal-negative: candidate %d Rel = %v, want 1", i, d.Rel)
		}
	}
}

// TestCandidateRelNonnegativeModelsUnchanged pins the other half of the
// fix: for models with nonnegative scores (DPH here, BM25/TFIDF by the
// same code path) the shift is zero and Rel must remain byte-identical
// to the original score/maxScore normalization.
func TestCandidateRelNonnegativeModelsUnchanged(t *testing.T) {
	p := buildTiny(t)
	results := p.Engine.Search("topic01", p.Config.NumCandidates)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	maxScore := 0.0
	for _, r := range results {
		if r.Score > maxScore {
			maxScore = r.Score
		}
		if r.Score < 0 {
			t.Fatalf("DPH produced a negative score %v", r.Score)
		}
	}
	cands := p.candidatesFromResults(results)
	for i, r := range results {
		want := 0.0
		if maxScore > 0 {
			want = r.Score / maxScore
		}
		if cands[i].Rel != want {
			t.Fatalf("candidate %d Rel = %v, want the legacy %v bit for bit", i, cands[i].Rel, want)
		}
	}
}

func TestDiversifyEndToEnd(t *testing.T) {
	p := buildTiny(t)
	sel, specs := p.Diversify("topic01", core.AlgOptSelect)
	if len(specs) == 0 {
		t.Fatal("topic01 not detected as ambiguous")
	}
	if len(sel) != p.Config.K {
		t.Fatalf("selected %d docs, want %d", len(sel), p.Config.K)
	}
	// The diversified list must cover at least two different sub-topics:
	// doc IDs encode their sub-topic as doc-tXX-sYY-NNN.
	subs := map[string]bool{}
	for _, s := range sel {
		if len(s.ID) >= 11 && s.ID[:5] == "doc-t" {
			subs[s.ID[5:11]] = true
		}
	}
	if len(subs) < 2 {
		t.Errorf("diversified SERP covers %d sub-topics: %v", len(subs), core.IDs(sel))
	}
}

func TestDiversifyUnambiguousFallsBack(t *testing.T) {
	p := buildTiny(t)
	sel, specs := p.Diversify("noise query 0002", core.AlgOptSelect)
	if specs != nil {
		t.Errorf("specs = %+v for unambiguous query", specs)
	}
	// Baseline of whatever matched; may be empty or small but must not
	// panic and must respect K.
	if len(sel) > p.Config.K {
		t.Errorf("selected %d > K", len(sel))
	}
}

func TestDiversifyAllAlgorithmsAgreeOnSize(t *testing.T) {
	p := buildTiny(t)
	for _, alg := range []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect, core.AlgMMR} {
		sel, _ := p.Diversify("topic02", alg)
		if len(sel) == 0 {
			t.Errorf("%s returned nothing", alg)
		}
		seen := map[string]bool{}
		for _, s := range sel {
			if seen[s.ID] {
				t.Errorf("%s duplicated %s", alg, s.ID)
			}
			seen[s.ID] = true
		}
	}
}

func TestPipelineDeterminism(t *testing.T) {
	p1 := buildTiny(t)
	p2 := buildTiny(t)
	s1, _ := p1.Diversify("topic01", core.AlgOptSelect)
	s2, _ := p2.Diversify("topic01", core.AlgOptSelect)
	ids1, ids2 := core.IDs(s1), core.IDs(s2)
	if len(ids1) != len(ids2) {
		t.Fatalf("lengths differ: %d vs %d", len(ids1), len(ids2))
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("non-deterministic at %d: %s vs %s", i, ids1[i], ids2[i])
		}
	}
}
