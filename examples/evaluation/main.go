// Evaluation example: score two hand-built runs against diversity qrels
// with the TREC 2009 Diversity Task metrics (α-NDCG, IA-P) plus the
// subtopic-recall and ERR-IA extensions, and test significance with the
// Wilcoxon signed-rank test — the full measurement stack of the paper's
// §5 applied to your own data.
//
//	go run ./examples/evaluation
package main

import (
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/trec"
)

func main() {
	qrels := buildQrels()

	// Two systems: one relevance-only (keeps hammering sub-topic 1), one
	// diversified (interleaves sub-topics).
	relevanceOnly := trec.NewRun()
	diversified := trec.NewRun()
	for topic := 1; topic <= 4; topic++ {
		relevanceOnly.AddRanking(topic, []string{
			doc(topic, 1, 0), doc(topic, 1, 1), doc(topic, 1, 2), doc(topic, 2, 0), doc(topic, 3, 0),
		}, "relevance")
		diversified.AddRanking(topic, []string{
			doc(topic, 1, 0), doc(topic, 2, 0), doc(topic, 3, 0), doc(topic, 1, 1), doc(topic, 2, 1),
		}, "diverse")
	}

	cutoffs := []int{1, 3, 5}
	repRel := eval.EvaluateRun("relevance-only", relevanceOnly, qrels, eval.DefaultAlpha, cutoffs)
	repDiv := eval.EvaluateRun("diversified", diversified, qrels, eval.DefaultAlpha, cutoffs)

	fmt.Printf("%-16s %s | %s\n", "", "alpha-NDCG @1 @3 @5", "IA-P @1 @3 @5")
	repRel.WriteTable(os.Stdout)
	repDiv.WriteTable(os.Stdout)

	// Per-topic detail for one topic.
	fmt.Println("\nper-topic detail (topic 1):")
	for _, rep := range []*eval.Report{repRel, repDiv} {
		fmt.Printf("  %-16s alpha-NDCG@5 = %.3f, IA-P@5 = %.3f\n",
			rep.Name, rep.AlphaNDCG[5][1], rep.IAP[5][1])
	}

	// Extensions: subtopic recall and ERR-IA on topic 1.
	fmt.Println("\nextensions (topic 1):")
	for name, ranking := range map[string][]string{
		"relevance-only": relevanceOnly.Ranking(1),
		"diversified":    diversified.Ranking(1),
	} {
		sr := eval.SubtopicRecall(ranking, qrels, 1, 3)
		err3 := eval.ERRIA(ranking, qrels, 1, nil, []int{3})
		fmt.Printf("  %-16s S-recall@3 = %.2f, ERR-IA@3 = %.3f\n", name, sr, err3[3])
	}

	// Significance over the 4 topics.
	w, err := eval.CompareSignificance(repDiv, repRel, "alpha-ndcg", 5)
	if err != nil {
		fmt.Println("\nWilcoxon:", err)
		return
	}
	fmt.Printf("\nWilcoxon diversified vs relevance-only on alpha-NDCG@5: W=%.1f p=%.3f\n", w.W, w.P)
	fmt.Println("(4 topics is far too few for significance — the paper uses 50)")
}

// doc names a judged document for (topic, subtopic, index).
func doc(topic, sub, i int) string {
	return fmt.Sprintf("d-t%d-s%d-%d", topic, sub, i)
}

// buildQrels: 4 topics, 3 sub-topics each, 3 relevant docs per sub-topic.
func buildQrels() *trec.Qrels {
	q := trec.NewQrels()
	for topic := 1; topic <= 4; topic++ {
		for sub := 1; sub <= 3; sub++ {
			for i := 0; i < 3; i++ {
				q.Add(topic, sub, doc(topic, sub, i), 1)
			}
		}
	}
	return q
}
