// Ambiguity detection on the paper's own intro scenario: users who query
// "leopard" and then refine to "leopard mac os x", "leopard tank" or
// "leopard pictures" (§3), and the "apple" example of §1. The example
// hand-writes a miniature query log, runs query-flow-graph session
// splitting and Algorithm 1, and prints the mined specializations with
// their probabilities — no document corpus needed.
//
//	go run ./examples/ambiguity
package main

import (
	"fmt"
	"time"

	"repro/internal/qfg"
	"repro/internal/querylog"
	"repro/internal/suggest"
)

func main() {
	log := buildLog()
	fmt.Printf("query log: %d records from %d users\n\n",
		log.Len(), log.ComputeStats().Users)

	sessions := qfg.ExtractSessions(log, qfg.DefaultOptions())
	rec := suggest.Train(sessions, log.Frequencies(), suggest.TrainOptions{})

	for _, q := range []string{"leopard", "apple", "weather boston"} {
		specs := suggest.AmbiguousQueryDetect(q, rec, suggest.DefaultDetectOptions())
		if len(specs) == 0 {
			fmt.Printf("%-16q -> unambiguous: no diversification needed\n\n", q)
			continue
		}
		fmt.Printf("%-16q -> AMBIGUOUS, %d specializations:\n", q, len(specs))
		for _, s := range specs {
			fmt.Printf("    P(q'|q)=%.3f  f=%-3d %q\n", s.Prob, s.Freq, s.Query)
		}
		fmt.Println()
	}
}

// buildLog fabricates the behavioural evidence: several users refine
// "leopard" (OS X is the most popular reading, then the tank, then
// pictures) and "apple" (company vs fruit), one user checks the weather.
func buildLog() *querylog.Log {
	base := time.Date(2006, 3, 15, 9, 0, 0, 0, time.UTC)
	var recs []querylog.Record
	user := 0
	session := func(gapMinutes int, queries ...string) {
		user++
		t := base.Add(time.Duration(user) * time.Hour)
		for i, q := range queries {
			rec := querylog.Record{
				User:  fmt.Sprintf("u%03d", user),
				Time:  t.Add(time.Duration(i*gapMinutes) * time.Minute),
				Query: q,
			}
			if i == len(queries)-1 {
				rec.Clicks = []string{"http://example.com/clicked"}
			}
			recs = append(recs, rec)
		}
	}

	// leopard -> mac os x: 4 users.
	for i := 0; i < 4; i++ {
		session(1, "leopard", "leopard mac os x")
	}
	// leopard -> tank: 2 users.
	session(1, "leopard", "leopard tank")
	session(2, "leopard", "leopard tank")
	// leopard -> pictures: 1 user.
	session(1, "leopard", "leopard pictures")

	// apple -> company (3 users) vs fruit pie (2 users).
	for i := 0; i < 3; i++ {
		session(1, "apple", "apple iphone store")
	}
	session(1, "apple", "apple pie recipe")
	session(2, "apple", "apple pie recipe")

	// An unambiguous navigational need.
	session(1, "weather boston")
	session(1, "weather boston")

	return querylog.New(recs)
}
