// SERP diversification with all algorithms side by side, on a hand-written
// news-style corpus for the query "jaguar" (car vs animal vs the guitar):
// index the corpus, build R_q and the specialization lists R_q′, and
// compare the baseline, OptSelect, xQuAD, IASelect and MMR orderings.
//
//	go run ./examples/serpdiversify
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	eng, err := engine.Build(corpus(), engine.Config{})
	if err != nil {
		log.Fatal(err)
	}

	const query = "jaguar"
	// Specializations as they would be mined from a query log, with user
	// popularity: the car dominates, the animal second, the guitar niche.
	specs := []struct {
		q    string
		prob float64
	}{
		{"jaguar car price", 0.55},
		{"jaguar animal habitat", 0.30},
		{"jaguar guitar fender", 0.15},
	}

	// R_q: everything the engine finds for the ambiguous query.
	results := eng.Search(query, 20)
	if len(results) == 0 {
		log.Fatal("no results for jaguar")
	}
	candidates := make([]core.Doc, len(results))
	for i, r := range results {
		candidates[i] = core.Doc{
			ID:     r.DocID,
			Rank:   r.Rank,
			Rel:    r.Score / results[0].Score,
			Vector: eng.VectorOfText(r.Snippet),
		}
	}
	problem := &core.Problem{
		Query:      query,
		Candidates: candidates,
		K:          6,
		Lambda:     0.15,
	}
	for _, s := range specs {
		var rs []core.SpecResult
		for _, r := range eng.Search(s.q, 5) {
			rs = append(rs, core.SpecResult{
				ID: r.DocID, Rank: r.Rank, Vector: eng.VectorOfText(r.Snippet),
			})
		}
		problem.Specs = append(problem.Specs, core.Specialization{
			Query: s.q, Prob: s.prob, Results: rs,
		})
	}

	fmt.Printf("query %q, k=%d, specializations:\n", query, problem.K)
	for _, s := range problem.Specs {
		fmt.Printf("  P=%.2f %q\n", s.Prob, s.Query)
	}
	fmt.Println()

	columns := []core.Algorithm{core.AlgBaseline, core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect, core.AlgMMR}
	serps := make(map[core.Algorithm][]core.Selected, len(columns))
	for _, alg := range columns {
		serps[alg] = core.Diversify(alg, problem)
	}

	fmt.Printf("%-4s", "rank")
	for _, alg := range columns {
		fmt.Printf(" %-14s", alg)
	}
	fmt.Println()
	for i := 0; i < problem.K; i++ {
		fmt.Printf("%-4d", i+1)
		for _, alg := range columns {
			id := "-"
			if i < len(serps[alg]) {
				id = serps[alg][i].ID
			}
			fmt.Printf(" %-14s", id)
		}
		fmt.Println()
	}
}

// corpus: 6 car docs (they dominate plain relevance), 3 animal docs,
// 2 guitar docs, plus chaff.
func corpus() []engine.Document {
	return []engine.Document{
		{ID: "car-review", Title: "Jaguar XF review", Body: "The new Jaguar XF car delivers a smooth ride with a powerful engine and a luxury interior at a premium price for sedan buyers"},
		{ID: "car-price", Title: "Jaguar car price list", Body: "Jaguar car price list for every model year including the XE XF and F type with dealer quotes and financing options for buyers"},
		{ID: "car-history", Title: "Jaguar cars history", Body: "The history of Jaguar cars from the Swallow Sidecar company to the modern luxury car brand with racing heritage at Le Mans"},
		{ID: "car-dealer", Title: "Jaguar dealership", Body: "Find a certified Jaguar car dealer near you with service centers spare parts and test drives for all current models and price offers"},
		{ID: "car-electric", Title: "Jaguar electric", Body: "Jaguar announced an electric car lineup with long range batteries fast charging and sporty performance for the premium market"},
		{ID: "car-suv", Title: "Jaguar SUV", Body: "The Jaguar F pace SUV combines car comfort with off road ability and a choice of petrol diesel and hybrid engines at a mid price"},
		{ID: "animal-hab", Title: "Jaguar habitat", Body: "The jaguar is a big cat whose habitat spans rainforest wetlands and grassland across the Americas where the animal hunts at night"},
		{ID: "animal-diet", Title: "Jaguar diet", Body: "As an apex predator the jaguar animal feeds on capybara deer and caiman using a powerful bite unique among big cats in its habitat"},
		{ID: "animal-conserv", Title: "Jaguar conservation", Body: "Conservation programs protect the jaguar animal from habitat loss and poaching across protected corridors in the Amazon basin"},
		{ID: "guitar-fender", Title: "Fender Jaguar", Body: "The Fender Jaguar guitar introduced in 1962 features a short scale offset body and bright tone favored by surf and indie players"},
		{ID: "guitar-setup", Title: "Jaguar guitar setup", Body: "How to set up a Fender Jaguar guitar adjusting the bridge tremolo and pickups for stable tuning and classic fender sound"},
		{ID: "chaff-os", Title: "Operating systems", Body: "A survey of desktop operating systems covering kernels schedulers and file systems with no mention of cats or cars at all"},
	}
}
