// Quickstart: build the full diversification pipeline on a small synthetic
// testbed and compare the plain DPH SERP with the OptSelect-diversified
// SERP for one ambiguous query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	// A small world: 8 ambiguous topics, a 3-month AOL-like query log.
	cfg := repro.Config{
		Corpus: synth.CorpusSpec{
			Seed:      7,
			NumTopics: 8,
		},
		Log:           synth.AOLLike(8, 6000),
		NumCandidates: 500,
		PerSpec:       20,
		K:             10,
		// The utility threshold c of §5: without it, negligible cross-
		// intent snippet similarities count as "useful" and the
		// proportional-coverage constraint loses its teeth. The paper
		// sweeps c in 0..0.75 (its best α-NDCG sits at 0.20); on this
		// synthetic corpus snippets overlap more than on real web text,
		// so the separating value is a bit higher.
		Threshold: 0.30,
	}
	pipe, err := repro.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	query := pipe.Testbed.TopicQuery(1) // the most popular ambiguous query
	fmt.Printf("query: %q\n\n", query)

	// Step 1 — Algorithm 1: is the query ambiguous, and how?
	specs := pipe.DetectSpecializations(query)
	if len(specs) == 0 {
		log.Fatal("query not detected as ambiguous; increase log sessions")
	}
	fmt.Println("mined specializations (Definition 1 probabilities):")
	for _, s := range specs {
		fmt.Printf("  P=%.3f  f=%-4d  %q\n", s.Prob, s.Freq, s.Query)
	}

	// Step 2 — the plain engine ranking vs the diversified one.
	problem := pipe.BuildProblem(query, specs)
	baseline := core.Baseline(problem)
	diversified := core.Diversify(core.AlgOptSelect, problem)

	fmt.Printf("\n%-4s %-22s | %-22s\n", "rank", "DPH baseline", "OptSelect diversified")
	for i := 0; i < len(diversified) && i < len(baseline); i++ {
		fmt.Printf("%-4d %-22s | %-22s\n", i+1, baseline[i].ID, diversified[i].ID)
	}

	// Step 3 — MaxUtility Diversify(k) promises coverage *proportional to
	// P(q′|q)* (§3.1.3). Compare each SERP's intent mix against the mined
	// popularity (doc IDs encode their sub-topic as doc-tTT-sSS-NNN).
	fmt.Printf("\n%-10s %-8s %-10s %-10s\n", "intent", "P(q'|q)", "baseline", "optselect")
	for i, s := range specs {
		key := fmt.Sprintf("s%02d", i+1)
		fmt.Printf("%-10s %-8.2f %-10d %-10d\n", key, s.Prob,
			intentCount(baseline, key), intentCount(diversified, key))
	}
}

// intentCount counts selected docs whose ID names the given sub-topic.
func intentCount(sel []core.Selected, sub string) int {
	n := 0
	for _, s := range sel {
		if len(s.ID) >= 11 && s.ID[8:11] == sub {
			n++
		}
	}
	return n
}
