package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// TestCachedArtifactsInvalidatedByEpoch is the staleness contract of the
// serving cache: artifacts are keyed by (engine epoch, query), so a
// mutation — here a delete of a document that was being served — must
// make the next request miss and recompute against the new snapshot. A
// deleted document must never resurface through a cached R_q′ list or a
// cached candidate set.
func TestCachedArtifactsInvalidatedByEpoch(t *testing.T) {
	p := buildTiny(t)
	h := p.NewServeHandle(64, 2)
	q := p.Testbed.TopicQuery(1)

	sel, specs, hit := h.DiversifyCached(q, core.AlgOptSelect)
	if hit {
		t.Fatal("cold lookup reported a hit")
	}
	if len(specs) == 0 || len(sel) == 0 {
		t.Fatalf("topic query %q not ambiguous (specs=%d, sel=%d); test is vacuous", q, len(specs), len(sel))
	}
	if _, _, hit = h.DiversifyCached(q, core.AlgOptSelect); !hit {
		t.Fatal("warm lookup missed")
	}

	// Delete the top selected document. The epoch bumps, so the cached
	// epoch-N artifacts must not be served for the epoch-N+1 request.
	victim := sel[0].ID
	epochBefore := p.Engine.Epoch()
	if _, ok := p.Engine.Delete(victim); !ok {
		t.Fatalf("delete of served doc %s missed", victim)
	}
	if p.Engine.Epoch() <= epochBefore {
		t.Fatal("delete did not advance the epoch")
	}

	sel2, _, hit := h.DiversifyCached(q, core.AlgOptSelect)
	if hit {
		t.Fatal("lookup after delete served stale epoch-N artifacts")
	}
	for _, s := range sel2 {
		if s.ID == victim {
			t.Fatalf("deleted doc %s resurfaced in the diversified SERP", victim)
		}
	}

	// The new epoch's entry is itself cacheable: next repeat hits again.
	if _, _, hit = h.DiversifyCached(q, core.AlgOptSelect); !hit {
		t.Fatal("post-delete repeat missed; new epoch entry was not cached")
	}

	// Any further mutation — an ingest — invalidates again.
	if _, err := p.Engine.Ingest(engine.Document{ID: "fresh-doc", Title: "fresh", Body: "freshly streamed content"}); err != nil {
		t.Fatal(err)
	}
	if _, _, hit = h.DiversifyCached(q, core.AlgOptSelect); hit {
		t.Fatal("lookup after ingest served stale artifacts")
	}

	st := h.CacheStats()
	if st.Hits != 2 || st.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 2/3", st.Hits, st.Misses)
	}
}
