// Package repro is the public facade of this reproduction of
// "Efficient Diversification of Web Search Results" (Capannini, Nardini,
// Perego, Silvestri — PVLDB 4(7), 2011). It wires the full §3 pipeline:
//
//	query log → logical sessions (query-flow graph) → recommender A(q)
//	          → AmbiguousQueryDetect (Algorithm 1) → specializations S_q
//	corpus    → inverted index → DPH retrieval → R_q and the R_q′ lists
//	          → utilities Ũ(d|R_q′) (Definition 2)
//	          → OptSelect / xQuAD / IASelect → diversified SERP
//
// The examples/ directory shows the intended use. The experiment tools
// (cmd/efficiency, cmd/trecdiv, cmd/utilityfig, cmd/footprint) and the
// root benchmarks regenerate the paper's tables and figures through this
// API; the data tools (cmd/loggen, cmd/mine, cmd/buildindex) expose the
// individual pipeline stages; and the serving stack (cmd/serve backed by
// internal/server plus ServeHandle, load-tested by cmd/loadgen) runs the
// same pipeline as a concurrent HTTP service with cached per-query
// artifacts. cmd/diversify is the interactive command-line front end.
package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/qfg"
	"repro/internal/querylog"
	"repro/internal/suggest"
	"repro/internal/synth"
)

// Config assembles the knobs of the full pipeline. The zero value plus
// the synth defaults reproduce the paper's §5 setup at laptop scale.
type Config struct {
	// Corpus generates the document collection and TREC-style testbed.
	Corpus synth.CorpusSpec
	// Log generates the training query log (zero value: AOL-like preset
	// with 4000 sessions).
	Log synth.LogSpec
	// Engine configures analysis and the weighting model (default DPH).
	Engine engine.Config
	// PrebuiltEngine, when non-nil, is used as the pipeline's engine
	// instead of building one from the synthetic corpus — the path
	// cmd/serve takes when pointed at a persisted index file (-index,
	// optionally mmap-served). The caller must have built or loaded it
	// over the same deterministic world Config.Corpus describes: the
	// testbed and query log are still generated from Corpus/Log, and the
	// recommender mines queries that must resolve against this engine's
	// collection.
	PrebuiltEngine *engine.Engine
	// Session configures query-flow-graph session splitting.
	Session qfg.Options
	// Detect configures Algorithm 1 (ambiguity detection).
	Detect suggest.DetectOptions

	// NumCandidates is |R_q|, the size of the retrieved list to
	// diversify. The paper's Table 3 uses 25000. Default 1000.
	NumCandidates int
	// PerSpec is |R_q′|, the stored results per specialization (paper: 20).
	PerSpec int
	// K is the diversified result size (paper's Table 3: 1000). Default 20.
	K int
	// Lambda is λ (paper: 0.15).
	Lambda float64
	// Threshold is the utility threshold c (paper sweeps 0…0.75).
	Threshold float64
	// MaxSpecs caps |S_q| (the paper selects the k most probable when
	// |S_q| > k; a small cap keeps SERPs sane). Default 10.
	MaxSpecs int

	// Fused enables the fused execution plan on the serving path: cache
	// hits for ambiguous queries run retrieval, candidate
	// materialization, utility scoring and diversification as ONE
	// Block-Max MaxScore scan (engine.SearchFusedStamped) instead of
	// staged passes. Results are bit-identical to the staged plan (the
	// fused differential sweep enforces it); only latency changes. The
	// staged plan remains in use for cache misses (where the artifact
	// build overlaps the scan), for unambiguous queries, for distributed
	// Searchers, and whenever the engine reports the snapshot not
	// fusable (pending mutations).
	Fused bool
}

func (c Config) withDefaults() Config {
	if c.Log.Sessions == 0 {
		c.Log = synth.AOLLike(c.Corpus.Seed+1, 4000)
	}
	if c.Detect.S == 0 && c.Detect.MaxCandidates == 0 {
		c.Detect = suggest.DefaultDetectOptions()
	}
	if c.NumCandidates == 0 {
		c.NumCandidates = 1000
	}
	if c.PerSpec == 0 {
		c.PerSpec = 20
	}
	if c.K == 0 {
		c.K = 20
	}
	if c.Lambda == 0 {
		c.Lambda = 0.15
	}
	if c.MaxSpecs == 0 {
		c.MaxSpecs = 10
	}
	return c
}

// Searcher is the document-scoring dependency of the Pipeline: the
// retrieval fan-out behind R_q and every R_q′ list. A freshly Built
// pipeline scores against its own Engine; the distributed serving tier
// (internal/router) swaps in a scatter-gatherer over remote shard-worker
// processes. Any implementation must return output bit-identical to the
// local engine over the same deterministic world — the deterministic
// k-way merge makes that achievable across process boundaries, and the
// router's differential tests enforce it.
//
// SearchBatch answers queries[i] with its top-ks[i] results (ks[i] <= 0
// means all matches); the only error a conforming implementation may
// return for local serving is ctx.Err(), but distributed searchers also
// surface scatter failures (every replica of some shard unreachable).
type Searcher interface {
	SearchBatch(ctx context.Context, queries []string, ks []int) ([][]engine.Result, error)
}

// SearchInfo is per-request serving metadata reported by a tail-tolerant
// Searcher: whether the scatter degraded (some shard's results are
// missing because its whole replica pool was down or its sub-budget
// expired) and whether any shard's answer came from a hedged attempt.
// Local engines always report the zero value — retrieval against the
// in-process index cannot partially fail, and there is nothing to hedge.
type SearchInfo struct {
	// Degraded: the result lists were merged from a strict subset of the
	// shards. The response is still correctly ordered over the documents
	// it covers, but the bit-identity contract with a single-process
	// serve does NOT apply to it.
	Degraded bool
	// Hedged: at least one shard's list was answered by a hedge attempt
	// (a duplicate request fired when the primary replica ran slow).
	// Hedging never changes result bytes — it is purely informational.
	Hedged bool
}

// Merge folds another fan-out's metadata into this one (flags are
// sticky: a request is degraded/hedged if any of its stages was).
func (i *SearchInfo) Merge(o SearchInfo) {
	i.Degraded = i.Degraded || o.Degraded
	i.Hedged = i.Hedged || o.Hedged
}

// PartialSearcher is a Searcher that can degrade instead of failing:
// when some shard has no reachable replica (or its scatter sub-budget
// expires) and the searcher is configured for partial results, it
// returns the merged lists of the surviving shards with
// SearchInfo.Degraded set, rather than an error. SearchBatch on the same
// implementation stays strict — callers that feed caches or bit-identity
// gates use it so a degraded fan-out can never masquerade as a complete
// one. The distributed router's Searcher implements this; the local
// engine does not (it cannot partially fail).
type PartialSearcher interface {
	Searcher
	SearchBatchPartial(ctx context.Context, queries []string, ks []int) ([][]engine.Result, SearchInfo, error)
}

// Pipeline is a fully assembled diversification system.
type Pipeline struct {
	Config      Config
	Testbed     *synth.Testbed
	Engine      *engine.Engine
	Log         *querylog.Log
	Sessions    []qfg.Session
	Graph       *qfg.Graph
	Recommender *suggest.Recommender

	// Searcher overrides where the document scoring phase runs. Nil means
	// the local Engine. The distributed router sets this to its
	// scatter-gatherer over shard-worker pools; everything else about the
	// pipeline (Algorithm 1, utilities, selection) stays local.
	Searcher Searcher
}

// searcher resolves the active scoring backend.
func (p *Pipeline) searcher() Searcher {
	if p.Searcher != nil {
		return p.Searcher
	}
	return p.Engine
}

// searchBatchInfo runs one scoring fan-out through the active backend,
// preferring the partial-capable entry point when the backend offers one
// (the distributed router under -partial): a shard outage then degrades
// the batch instead of failing it, and the metadata reports it. Strict
// backends behave exactly as SearchBatch.
func (p *Pipeline) searchBatchInfo(ctx context.Context, queries []string, ks []int) ([][]engine.Result, SearchInfo, error) {
	s := p.searcher()
	if ps, ok := s.(PartialSearcher); ok {
		return ps.SearchBatchPartial(ctx, queries, ks)
	}
	lists, err := s.SearchBatch(ctx, queries, ks)
	return lists, SearchInfo{}, err
}

// searchOne retrieves one query's top-k through the active scoring
// backend (a one-element batch; for the local engine this is exactly
// Engine.SearchCtx).
func (p *Pipeline) searchOne(ctx context.Context, query string, k int) ([]engine.Result, error) {
	lists, err := p.searcher().SearchBatch(ctx, []string{query}, []int{k})
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}

// Build generates the testbed, indexes the corpus, generates and mines the
// query log, and trains the recommender. Everything is deterministic given
// Config.Corpus.Seed and Config.Log.Seed.
func Build(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	tb := synth.GenerateTestbed(cfg.Corpus)
	eng := cfg.PrebuiltEngine
	if eng == nil {
		var err error
		eng, err = engine.Build(tb.Docs, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("repro: building engine: %w", err)
		}
	}
	log := synth.GenerateLog(tb, cfg.Log)
	sessions := qfg.ExtractSessions(log, cfg.Session)
	graph := qfg.Build(log, cfg.Session)
	rec := suggest.Train(sessions, log.Frequencies(), suggest.TrainOptions{})
	return &Pipeline{
		Config:      cfg,
		Testbed:     tb,
		Engine:      eng,
		Log:         log,
		Sessions:    sessions,
		Graph:       graph,
		Recommender: rec,
	}, nil
}

// DetectSpecializations runs Algorithm 1 on the query: a nil result means
// the query is not ambiguous and its results should not be diversified.
func (p *Pipeline) DetectSpecializations(query string) []suggest.Specialization {
	specs := suggest.AmbiguousQueryDetect(query, p.Recommender, p.Config.Detect)
	return suggest.TopSpecializations(specs, p.Config.MaxSpecs)
}

// candidateDocs runs the document scoring phase for q: it retrieves R_q
// and converts it into diversification candidates. Surrogate vectors are
// built directly in interned form under the engine's lexicon — the string
// Vector field stays empty, so a candidate costs int32 term IDs instead
// of term strings.
func (p *Pipeline) candidateDocs(query string) []core.Doc {
	docs, _, _ := p.candidateDocsCtx(context.Background(), query) // Background never cancels
	return docs
}

// candidateDocsCtx is candidateDocs with request-scoped cancellation
// threaded into the retrieval fan-out; against the local engine the only
// possible error is ctx.Err(), while a distributed Searcher can also
// surface scatter failures — or, under a partial-results configuration,
// degrade (SearchInfo.Degraded) to the candidates of the surviving
// shards instead of failing.
func (p *Pipeline) candidateDocsCtx(ctx context.Context, query string) ([]core.Doc, SearchInfo, error) {
	lists, info, err := p.searchBatchInfo(ctx, []string{query}, []int{p.Config.NumCandidates})
	if err != nil {
		return nil, info, err
	}
	return p.candidatesFromResults(lists[0]), info, nil
}

// candidatesFromResults converts a retrieved R_q into diversification
// candidates.
//
// P(d|q) is "the likelihood of document d being observed given q"
// (§3.1.2), derived from the retrieval score max-normalized over R_q.
// (The other reading — sum-normalizing into a distribution — makes the
// (1-λ)·P(d|q) term of Equations (5)/(9) microscopic and collapses
// every method into pure utility ordering; max-normalization keeps the
// two terms on the comparable footing the paper's λ = 0.15 implies.)
// The mapping — including the minimum-score shift that keeps
// negative-total models like LMDirichlet in [0,1] — lives in
// exec.RelNormalizer, shared with the engine's fused scan so both plans
// normalize through the same code.
func (p *Pipeline) candidatesFromResults(results []engine.Result) []core.Doc {
	candidates := make([]core.Doc, len(results))
	if len(results) == 0 {
		return candidates
	}
	var rn exec.RelNormalizer
	for i := range results {
		rn.Observe(results[i].Score)
	}
	for i, r := range results {
		candidates[i] = core.Doc{
			ID:   r.DocID,
			Rank: r.Rank,
			Rel:  rn.Rel(r.Score),
			IVec: p.Engine.IVectorOfText(r.Snippet),
		}
	}
	return candidates
}

// specList retrieves the R_q′ snippet-surrogate list of one
// specialization — the expensive per-specialization work the serving
// cache amortizes. Like candidateDocs it stores interned vectors only,
// which is what makes the cached artifact lists compact: a cached R_q′
// entry holds int32 IDs, not strings.
func (p *Pipeline) specList(s suggest.Specialization) core.Specialization {
	results, _ := p.searchOne(context.Background(), s.Query, p.Config.PerSpec) // Background never cancels locally
	return p.specFromResults(s, results)
}

// specFromResults converts a retrieved R_q′ into the core representation.
func (p *Pipeline) specFromResults(s suggest.Specialization, specResults []engine.Result) core.Specialization {
	rs := make([]core.SpecResult, len(specResults))
	for i, r := range specResults {
		rs[i] = core.SpecResult{
			ID:   r.DocID,
			Rank: r.Rank,
			IVec: p.Engine.IVectorOfText(r.Snippet),
		}
	}
	return core.Specialization{Query: s.Query, Prob: s.Prob, Results: rs}
}

// newProblem assembles a Problem from already-built parts, applying the
// configured k/λ/c parameters. Candidates and specialization results come
// from candidateDocs/specList, so they are already interned under the
// engine's lexicon, which the problem carries as Lex.
func (p *Pipeline) newProblem(query string, candidates []core.Doc, specs []core.Specialization) *core.Problem {
	return &core.Problem{
		Query:      query,
		Candidates: candidates,
		Specs:      specs,
		K:          p.Config.K,
		Lambda:     p.Config.Lambda,
		Threshold:  p.Config.Threshold,
		Lex:        p.Engine.Lexicon(),
	}
}

// BuildProblem assembles the core diversification problem for an
// ambiguous query: R_q from the engine (relevance normalized to P(d|q)),
// one R_q′ snippet-surrogate list per specialization, and the configured
// k/λ/c parameters.
func (p *Pipeline) BuildProblem(query string, specs []suggest.Specialization) *core.Problem {
	var specLists []core.Specialization
	for _, s := range specs {
		specLists = append(specLists, p.specList(s))
	}
	return p.newProblem(query, p.candidateDocs(query), specLists)
}

// Diversify answers a query end to end: detect ambiguity, build the
// problem, and run the chosen algorithm. For unambiguous queries it
// returns the plain retrieval baseline and a nil specialization list.
func (p *Pipeline) Diversify(query string, alg core.Algorithm) ([]core.Selected, []suggest.Specialization) {
	specs := p.DetectSpecializations(query)
	problem := p.BuildProblem(query, specs)
	if len(specs) == 0 {
		return core.Baseline(problem), nil
	}
	return core.Diversify(alg, problem), specs
}

// fusedPlan assembles the execution plan of one fused query from the
// pipeline configuration and the (cached or freshly staged) aspect lists.
// k <= 0 means the configured K.
func (p *Pipeline) fusedPlan(query string, alg core.Algorithm, k int, specLists []core.Specialization) *exec.Plan {
	if k <= 0 {
		k = p.Config.K
	}
	return &exec.Plan{
		Mode:          exec.ModeFused,
		Query:         query,
		Alg:           alg,
		K:             k,
		NumCandidates: p.Config.NumCandidates,
		Lambda:        p.Config.Lambda,
		Threshold:     p.Config.Threshold,
		Aspects:       specLists,
		Lex:           p.Engine.Lexicon(),
	}
}

// fusedScan runs the fused plan on the local engine. The only errors are
// ctx.Err() and exec.ErrNotFusable (pending mutations — callers fall back
// to the staged plan).
func (p *Pipeline) fusedScan(ctx context.Context, query string, alg core.Algorithm, k int, specLists []core.Specialization) ([]core.Selected, error) {
	sel, _, err := p.Engine.SearchFusedStamped(ctx, p.fusedPlan(query, alg, k, specLists))
	return sel, err
}

// DiversifyFused is Diversify running the fused execution plan: for an
// ambiguous query the R_q′ aspect retrievals are staged first (one
// batched fan-out, as in DiversifyParallel), then retrieval, candidate
// materialization, utility scoring and selection run as ONE Block-Max
// MaxScore scan over shared cursor/heap state. Output is bit-identical
// to Diversify — the fused differential sweep enforces it; only latency
// changes. Unambiguous queries, pipelines without a local engine
// (distributed Searcher), and non-quiescent engines fall back to the
// staged plan.
func (p *Pipeline) DiversifyFused(query string, alg core.Algorithm) ([]core.Selected, []suggest.Specialization) {
	sel, specs, _ := p.DiversifyFusedK(context.Background(), query, alg, 0) // Background never cancels locally
	return sel, specs
}

// DiversifyFusedK is DiversifyFused with request-scoped cancellation and
// a per-request result size k (k <= 0 means the configured K).
func (p *Pipeline) DiversifyFusedK(ctx context.Context, query string, alg core.Algorithm, k int) ([]core.Selected, []suggest.Specialization, error) {
	specs := p.DetectSpecializations(query)
	if len(specs) == 0 || p.Engine == nil || p.Searcher != nil {
		return p.diversifyStagedK(ctx, query, alg, k, specs)
	}
	// Stage the aspect retrievals: |S_q| small-k scans whose heap
	// thresholds form fast enough for Block-Max skipping to bite (the
	// per-aspect-threshold half of the fused design; see
	// docs/ARCHITECTURE.md).
	queries := make([]string, len(specs))
	ks := make([]int, len(specs))
	for i, s := range specs {
		queries[i], ks[i] = s.Query, p.Config.PerSpec
	}
	var lists [][]engine.Result
	err := countAspectSkips(func() error {
		var err error
		lists, err = p.searcher().SearchBatch(ctx, queries, ks)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	specLists := make([]core.Specialization, len(specs))
	for i := range specs {
		specLists[i] = p.specFromResults(specs[i], lists[i])
	}
	sel, err := p.fusedScan(ctx, query, alg, k, specLists)
	if err == nil {
		return sel, specs, nil
	}
	if err != exec.ErrNotFusable {
		return nil, nil, err
	}
	// Pending mutations: finish on the staged plan with the aspect lists
	// already in hand.
	candidates, _, err := p.candidateDocsCtx(ctx, query)
	if err != nil {
		return nil, nil, err
	}
	return p.finishStaged(query, alg, k, specs, candidates, specLists)
}

// diversifyStagedK is the staged twin of DiversifyFusedK: one batched
// fan-out for R_q plus the aspect lists, then the selection stage.
func (p *Pipeline) diversifyStagedK(ctx context.Context, query string, alg core.Algorithm, k int, specs []suggest.Specialization) ([]core.Selected, []suggest.Specialization, error) {
	problem, err := p.BuildProblemBatched(ctx, query, specs)
	if err != nil {
		return nil, nil, err
	}
	if k > 0 {
		problem.K = k
	}
	if len(specs) == 0 {
		return core.Baseline(problem), nil, nil
	}
	return core.Diversify(alg, problem), specs, nil
}

// finishStaged runs the selection stage of the staged plan over
// already-materialized parts.
func (p *Pipeline) finishStaged(query string, alg core.Algorithm, k int, specs []suggest.Specialization, candidates []core.Doc, specLists []core.Specialization) ([]core.Selected, []suggest.Specialization, error) {
	problem := p.newProblem(query, candidates, specLists)
	if k > 0 {
		problem.K = k
	}
	if len(specs) == 0 {
		return core.Baseline(problem), nil, nil
	}
	return core.Diversify(alg, problem), specs, nil
}
