package repro_test

import (
	"context"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/suggest"
	"repro/internal/synth"
)

var (
	fusedBenchOnce sync.Once
	fusedBenchPipe *repro.Pipeline
	fusedBenchErr  error
)

// buildFusedBenchPipeline memoizes a collection-scale pipeline for the
// fused-vs-staged comparison: ~20k documents (a Zipf-popular topic core
// plus a large background-noise tail) — big enough that the candidate
// retrieval heap threshold actually forms and the single-scan fusion has
// real per-document work (materialization, utility scoring) to absorb.
func buildFusedBenchPipeline(b *testing.B) *repro.Pipeline {
	b.Helper()
	fusedBenchOnce.Do(func() {
		fusedBenchPipe, fusedBenchErr = repro.Build(repro.Config{
			Corpus: synth.CorpusSpec{
				Seed: 29, NumTopics: 10, MinSubtopics: 2, MaxSubtopics: 5,
				DocsPerSubtopic: 20, GenericDocsPerTopic: 10, NoiseDocs: 19000, DocLength: 50,
				BackgroundVocab: 2000, TopicVocab: 12, SubtopicVocab: 8,
			},
			Log:           synth.AOLLike(30, 5000),
			NumCandidates: 500,
			PerSpec:       20,
			K:             20,
			Threshold:     0.2,
			Fused:         true,
		})
	})
	if fusedBenchErr != nil {
		b.Fatal(fusedBenchErr)
	}
	return fusedBenchPipe
}

var (
	fusedBenchSel   []core.Selected
	fusedBenchSpecs []suggest.Specialization
)

// BenchmarkFusedDiversify answers the same ambiguous query end to end on
// both execution plans: staged (retrieve R_q as []Result with snippets,
// re-tokenize, build the problem, then select) vs fused (one Block-Max
// MaxScore scan streaming candidates straight into the utility scorer
// and per-specialization heaps). Output is bit-identical by the fused
// differential sweep; this measures the latency delta the fusion buys.
func BenchmarkFusedDiversify(b *testing.B) {
	pipe := buildFusedBenchPipeline(b)
	var q string
	for _, topic := range pipe.Testbed.Topics {
		if len(pipe.DetectSpecializations(topic.Query)) > 0 {
			q = topic.Query
			break
		}
	}
	if q == "" {
		b.Fatal("no ambiguous topic query in the bench corpus")
	}
	// A fresh build is quiescent, so the fused plan must actually run —
	// an ErrNotFusable fallback would silently benchmark staged twice.
	if _, _, err := pipe.DiversifyFusedK(context.Background(), q, core.AlgOptSelect, 0); err != nil {
		b.Fatal(err)
	}
	b.Run("staged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fusedBenchSel, fusedBenchSpecs = pipe.Diversify(q, core.AlgOptSelect)
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fusedBenchSel, fusedBenchSpecs = pipe.DiversifyFused(q, core.AlgOptSelect)
		}
	})
}
