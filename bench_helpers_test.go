package repro_test

import (
	"sync"
	"testing"

	"repro"
	"repro/internal/synth"
)

var (
	benchPipeOnce sync.Once
	benchPipe     *repro.Pipeline
	benchPipeErr  error
)

// buildBenchPipeline memoizes one moderately sized pipeline for the
// end-to-end benchmarks, so every bench does not pay the build cost.
func buildBenchPipeline(b *testing.B) *repro.Pipeline {
	b.Helper()
	benchPipeOnce.Do(func() {
		benchPipe, benchPipeErr = repro.Build(repro.Config{
			Corpus: synth.CorpusSpec{
				Seed: 17, NumTopics: 10, MinSubtopics: 2, MaxSubtopics: 5,
				DocsPerSubtopic: 20, GenericDocsPerTopic: 10, NoiseDocs: 500, DocLength: 50,
				BackgroundVocab: 1000, TopicVocab: 12, SubtopicVocab: 8,
			},
			Log:           synth.AOLLike(18, 5000),
			NumCandidates: 500,
			PerSpec:       20,
			K:             20,
			Threshold:     0.2,
		})
	})
	if benchPipeErr != nil {
		b.Fatal(benchPipeErr)
	}
	return benchPipe
}
