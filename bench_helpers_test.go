package repro_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro"
	"repro/internal/index"
	"repro/internal/ranking"
	"repro/internal/synth"
)

var (
	benchPipeOnce sync.Once
	benchPipe     *repro.Pipeline
	benchPipeErr  error
)

// buildBenchPipeline memoizes one moderately sized pipeline for the
// end-to-end benchmarks, so every bench does not pay the build cost.
func buildBenchPipeline(b *testing.B) *repro.Pipeline {
	b.Helper()
	benchPipeOnce.Do(func() {
		benchPipe, benchPipeErr = repro.Build(repro.Config{
			Corpus: synth.CorpusSpec{
				Seed: 17, NumTopics: 10, MinSubtopics: 2, MaxSubtopics: 5,
				DocsPerSubtopic: 20, GenericDocsPerTopic: 10, NoiseDocs: 500, DocLength: 50,
				BackgroundVocab: 1000, TopicVocab: 12, SubtopicVocab: 8,
			},
			Log:           synth.AOLLike(18, 5000),
			NumCandidates: 500,
			PerSpec:       20,
			K:             20,
			Threshold:     0.2,
		})
	})
	if benchPipeErr != nil {
		b.Fatal(benchPipeErr)
	}
	return benchPipe
}

var (
	pruneIdxOnce sync.Once
	pruneIdx     *index.Index
	pruneFlat    *index.Index
)

// buildPruningBenchIndex memoizes the collection-scale index behind
// BenchmarkRetrievePruned: 20k documents over a Zipf-skewed vocabulary
// (squared-uniform draw, the same recipe as ranking.BenchmarkRetrieveDPH)
// with the DPH max-score table installed — big enough that a top-100
// heap threshold actually forms, which is the regime dynamic pruning is
// for.
func buildPruningBenchIndex(b *testing.B) *index.Index {
	b.Helper()
	pruneIdxOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		builder := index.NewBuilder()
		vocab := make([]string, 5000)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("t%04d", i)
		}
		for d := 0; d < 20000; d++ {
			toks := make([]string, 60)
			for j := range toks {
				u := rng.Float64()
				toks[j] = vocab[int(u*u*float64(len(vocab)))]
			}
			if err := builder.Add(fmt.Sprintf("doc%05d", d), toks); err != nil {
				panic(err)
			}
		}
		pruneIdx = builder.Build()
		if err := ranking.InstallMaxScores(pruneIdx, ranking.DPH{}); err != nil {
			panic(err)
		}
		// The flat twin for the layout benchmarks: same logical index,
		// uncompressed []Posting lists (per-term max-score tables ride
		// along through Reblock; no block-max tables exist flat).
		pruneFlat = index.Reblock(pruneIdx, -1)
	})
	return pruneIdx
}

// buildFlatBenchIndex returns the flat-layout twin of the pruning bench
// index — the baseline of the compressed-vs-flat comparisons.
func buildFlatBenchIndex(b *testing.B) *index.Index {
	b.Helper()
	buildPruningBenchIndex(b)
	return pruneFlat
}
