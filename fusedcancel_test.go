package repro

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
)

// writeMappedPipeline exports the pipeline's base segment as a RIDX7
// file (the serve -index -mmap shape).
func writeMappedPipeline(t testing.TB, p *Pipeline) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pipe.ridx7")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Engine.WriteMappedTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// countdownContext cancels itself after a fixed number of Err() polls.
// Done() stays nil (the embedded Background), so cancellation can only
// be observed through the polling the scan loops do — which is exactly
// the mechanism under test. Sweeping the budget lands the cancellation
// at every poll site along the fused path: the aspect retrieval batch,
// the main Block-Max MaxScore scan, and the candidate materialization
// loop.
type countdownContext struct {
	context.Context
	remaining atomic.Int64
}

func (c *countdownContext) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestFusedScanCancellation aborts the fused single-scan plan at every
// reachable poll point over a mapped engine and asserts the two safety
// properties ISSUE.md pins down: the abort never leaks a mapping
// reference (ActiveMappings stays flat), and a canceled fused request
// never poisons the epoch-keyed artifact cache (the next healthy
// request serves the staged-identical SERP from the same entry).
func TestFusedScanCancellation(t *testing.T) {
	cfg := tinyConfig(9)
	cfg.Engine = engine.Config{Shards: 2}
	cfg.Fused = true
	heapPipe, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := writeMappedPipeline(t, heapPipe)
	mapped, err := engine.OpenIndexFile(path, engine.Config{Shards: 2, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mapped.Close() })
	mapCfg := cfg
	mapCfg.PrebuiltEngine = mapped
	pipe, err := Build(mapCfg)
	if err != nil {
		t.Fatal(err)
	}
	base := index.ActiveMappings()

	var q string
	for _, topic := range pipe.Testbed.Topics {
		if len(pipe.DetectSpecializations(topic.Query)) > 0 {
			q = topic.Query
			break
		}
	}
	if q == "" {
		t.Fatal("no ambiguous topic query — nothing fused to cancel")
	}
	want, _, err := pipe.DiversifyFusedK(context.Background(), q, core.AlgOptSelect, 10)
	if err != nil {
		t.Fatal(err)
	}

	canceled, completed := 0, 0
	for m := int64(0); m <= 64; m++ {
		ctx := &countdownContext{Context: context.Background()}
		ctx.remaining.Store(m)
		got, _, err := pipe.DiversifyFusedK(ctx, q, core.AlgOptSelect, 10)
		switch {
		case err != nil:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("budget %d: err = %v, want context.Canceled", m, err)
			}
			canceled++
		case !reflect.DeepEqual(got, want):
			t.Fatalf("budget %d: uncanceled scan diverges\nwant %+v\ngot  %+v", m, want, got)
		default:
			completed++
		}
		if n := index.ActiveMappings(); n != base {
			t.Fatalf("budget %d: ActiveMappings = %d, want %d (aborted scan leaked a mapping reference)", m, n, base)
		}
	}
	if canceled == 0 {
		t.Fatal("no poll budget canceled the scan — the sweep exercised nothing")
	}
	if completed == 0 {
		t.Fatal("every poll budget canceled the scan — raise the sweep ceiling")
	}

	// Cache poisoning: warm the entry with a healthy request, cancel a
	// fused request against the hot entry, then verify the next healthy
	// request still hits and serves the identical SERP.
	h := pipe.NewServeHandle(64, 4)
	warm, _, _, err := h.DiversifyCachedKCtx(context.Background(), q, core.AlgOptSelect, 10)
	if err != nil {
		t.Fatal(err)
	}
	dead := &countdownContext{Context: context.Background()}
	if _, _, _, err := h.DiversifyCachedKCtx(dead, q, core.AlgOptSelect, 10); err == nil {
		t.Fatal("canceled fused hit: want error")
	}
	got, _, hit, err := h.DiversifyCachedKCtx(context.Background(), q, core.AlgOptSelect, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("cache entry evicted by a canceled fused request")
	}
	if !reflect.DeepEqual(got, warm) {
		t.Fatal("canceled fused request poisoned the cached artifacts")
	}
	if n := index.ActiveMappings(); n != base {
		t.Fatalf("ActiveMappings = %d after serve-path cancellation, want %d", index.ActiveMappings(), base)
	}
}
