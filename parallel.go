package repro

import (
	"sync"

	"repro/internal/core"
	"repro/internal/suggest"
)

// BuildProblemParallel is the §6 future-work architecture the paper
// sketches — "a search architecture performing the diversification task
// in parallel with the document scoring phase": the R_q retrieval (the
// expensive document-scoring call) runs concurrently with the |S_q|
// specialization retrievals that build the R_q′ surrogate lists, instead
// of sequentially after them. The output is identical to BuildProblem;
// only wall-clock latency changes (see BenchmarkParallelPipeline).
func (p *Pipeline) BuildProblemParallel(query string, specs []suggest.Specialization) *core.Problem {
	problem := &core.Problem{
		Query:     query,
		K:         p.Config.K,
		Lambda:    p.Config.Lambda,
		Threshold: p.Config.Threshold,
		Specs:     make([]core.Specialization, len(specs)),
	}

	var wg sync.WaitGroup

	// Document scoring phase: retrieve and vectorize R_q.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results := p.Engine.Search(query, p.Config.NumCandidates)
		maxScore := 0.0
		for _, r := range results {
			if r.Score > maxScore {
				maxScore = r.Score
			}
		}
		candidates := make([]core.Doc, len(results))
		for i, r := range results {
			rel := 0.0
			if maxScore > 0 {
				rel = r.Score / maxScore
			}
			candidates[i] = core.Doc{
				ID:     r.DocID,
				Rank:   r.Rank,
				Rel:    rel,
				Vector: p.Engine.VectorOfText(r.Snippet),
			}
		}
		problem.Candidates = candidates
	}()

	// Diversification preparation: one R_q′ list per specialization,
	// each on its own goroutine (the engine is immutable after Build,
	// so concurrent searches are safe).
	for si := range specs {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s := specs[si]
			specResults := p.Engine.Search(s.Query, p.Config.PerSpec)
			rs := make([]core.SpecResult, len(specResults))
			for i, r := range specResults {
				rs[i] = core.SpecResult{
					ID:     r.DocID,
					Rank:   r.Rank,
					Vector: p.Engine.VectorOfText(r.Snippet),
				}
			}
			problem.Specs[si] = core.Specialization{
				Query:   s.Query,
				Prob:    s.Prob,
				Results: rs,
			}
		}(si)
	}

	wg.Wait()
	return problem
}

// DiversifyParallel is Diversify with the overlapped architecture.
func (p *Pipeline) DiversifyParallel(query string, alg core.Algorithm) ([]core.Selected, []suggest.Specialization) {
	specs := p.DetectSpecializations(query)
	problem := p.BuildProblemParallel(query, specs)
	if len(specs) == 0 {
		return core.Baseline(problem), nil
	}
	return core.Diversify(alg, problem), specs
}
