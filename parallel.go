package repro

import (
	"context"
	"errors"
	"strconv"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/suggest"
	"repro/internal/text"
)

// countAspectSkips runs one aspect (R_q′) retrieval batch and credits the
// posting blocks it skipped via Block-Max thresholds to the fused-path
// stats. The attribution is a BlockIOStats delta around the batch, so
// under concurrent traffic it is approximate (other scans' skips in the
// window are counted too); the index counters stay exact.
func countAspectSkips(f func() error) error {
	_, s0 := index.BlockIOStats()
	err := f()
	_, s1 := index.BlockIOStats()
	if d := s1 - s0; d > 0 {
		exec.AddAspectBlocksSkipped(uint64(d))
	}
	return err
}

// BuildProblemParallel is the §6 future-work architecture the paper
// sketches — "a search architecture performing the diversification task
// in parallel with the document scoring phase" — realized as scatter-
// gather over the index segments: the R_q retrieval and all |S_q|
// specialization retrievals are batched into ONE fan-out, so each shard
// worker scores every pending query vector in a single pass over its
// postings and a request costs one round of shard parallelism instead of
// 1+|S_q| sequential index traversals. The output is identical to
// BuildProblem; only wall-clock latency changes (see
// BenchmarkParallelPipeline and BenchmarkSpecRetrieval).
func (p *Pipeline) BuildProblemParallel(query string, specs []suggest.Specialization) *core.Problem {
	problem, _ := p.BuildProblemBatched(context.Background(), query, specs) // Background never cancels
	return problem
}

// BuildProblemBatched is BuildProblemParallel with request-scoped
// cancellation: ctx aborts the shard fan-out mid-flight (the only
// possible error is ctx.Err()).
func (p *Pipeline) BuildProblemBatched(ctx context.Context, query string, specs []suggest.Specialization) (*core.Problem, error) {
	queries := make([]string, 1+len(specs))
	ks := make([]int, 1+len(specs))
	queries[0], ks[0] = query, p.Config.NumCandidates
	for i, s := range specs {
		queries[1+i], ks[1+i] = s.Query, p.Config.PerSpec
	}
	lists, err := p.searcher().SearchBatch(ctx, queries, ks)
	if err != nil {
		return nil, err
	}
	specLists := make([]core.Specialization, len(specs))
	for i := range specs {
		specLists[i] = p.specFromResults(specs[i], lists[1+i])
	}
	return p.newProblem(query, p.candidatesFromResults(lists[0]), specLists), nil
}

// DiversifyParallel is Diversify with the overlapped architecture.
func (p *Pipeline) DiversifyParallel(query string, alg core.Algorithm) ([]core.Selected, []suggest.Specialization) {
	specs := p.DetectSpecializations(query)
	problem := p.BuildProblemParallel(query, specs)
	if len(specs) == 0 {
		return core.Baseline(problem), nil
	}
	return core.Diversify(alg, problem), specs
}

// fusedEligible reports whether a request with these cached artifacts can
// run the fused plan: the config enables it, the engine is local (fusion
// is a post-merge operator a distributed Searcher cannot host), and the
// query is ambiguous (an unambiguous query has no aspect heaps to fuse —
// its baseline is a plain retrieval either way).
func (p *Pipeline) fusedEligible(art *queryArtifacts) bool {
	return p.Config.Fused && p.Engine != nil && p.Searcher == nil && len(art.Specs) > 0
}

// queryArtifacts is what the serving cache stores per normalized query:
// the outcome of Algorithm 1 and the R_q′ surrogate lists of every
// detected specialization — everything that is query-dependent but
// request-independent. A nil Specs means the query was detected as
// unambiguous; caching that verdict is just as valuable, since it skips
// the recommender walk on every repeat. Cached artifacts are shared
// across concurrent requests and must never be mutated.
type queryArtifacts struct {
	Specs     []suggest.Specialization
	SpecLists []core.Specialization
}

// ServeHandle is the concurrency-safe serving facade over a warm
// Pipeline: it memoizes per-query diversification artifacts in a
// sharded LRU (package cache), so repeat ambiguous-head queries skip
// Algorithm 1 and the |S_q| specialization retrievals entirely and pay
// only for the R_q retrieval plus the selection algorithm. This is the
// dynamic realization of §4.1's precomputed specialization store, and
// the building block of the internal/server subsystem.
type ServeHandle struct {
	Pipeline *Pipeline
	cache    *cache.Cache[*queryArtifacts]

	// Miss coalescing (singleflight): concurrent first requests for the
	// same normalized query join the leader's build instead of each
	// running Algorithm 1 and the |S_q| retrievals redundantly — without
	// it, a cold start under Zipf-skewed load grinds every worker on
	// duplicate builds of the same head query.
	mu       sync.Mutex
	inflight map[string]*artifactCall
	builds   int64 // completed artifact builds (leaders only), for tests/stats
}

// artifactCall is one in-flight artifact build; followers block on done.
// degraded records that the leader's fan-out lost a shard (partial-mode
// scatter): the artifacts are served to the leader and every follower of
// this singleflight — a partial R_q′ list still diversifies better than
// none — but they are never cached, and every response built on them
// carries the degraded marker.
type artifactCall struct {
	done     chan struct{}
	art      *queryArtifacts
	degraded bool
}

// NewServeHandle wraps the pipeline with a query-artifact cache of the
// given capacity striped over the given number of shards (see cache.New
// for clamping rules).
func (p *Pipeline) NewServeHandle(capacity, shards int) *ServeHandle {
	return &ServeHandle{
		Pipeline: p,
		cache:    cache.New[*queryArtifacts](capacity, shards),
		inflight: make(map[string]*artifactCall),
	}
}

// CacheStats snapshots the artifact cache counters.
func (h *ServeHandle) CacheStats() cache.Stats { return h.cache.Stats() }

// DiversifyCached answers a query end to end like Pipeline.Diversify,
// reusing cached artifacts when the (normalized) query has been seen
// before. The returned SERP is identical to
// Diversify(text.NormalizeQuery(query), alg); the boolean reports
// whether the cache served the artifacts. Safe for concurrent use.
func (h *ServeHandle) DiversifyCached(query string, alg core.Algorithm) ([]core.Selected, []suggest.Specialization, bool) {
	return h.DiversifyCachedK(query, alg, 0)
}

// DiversifyCachedK is DiversifyCached with a per-request result size k
// (k <= 0 means the pipeline's configured K). The artifacts cache is
// k-independent: S_q and the R_q′ lists do not depend on how many
// results the caller wants back.
func (h *ServeHandle) DiversifyCachedK(query string, alg core.Algorithm, k int) ([]core.Selected, []suggest.Specialization, bool) {
	sel, specs, hit, _ := h.DiversifyCachedKCtx(context.Background(), query, alg, k) // Background never cancels
	return sel, specs, hit
}

// DiversifyCachedKCtx is DiversifyCachedK with request-scoped
// cancellation: ctx is threaded into the per-request R_q retrieval
// fan-out, so a shed or client-aborted request stops its shard work
// mid-flight instead of running to completion (the only possible error
// is ctx.Err()). The shared artifact build deliberately does NOT inherit
// ctx — its product is cached and served to every follower of the
// singleflight, so one impatient client must not poison it.
func (h *ServeHandle) DiversifyCachedKCtx(ctx context.Context, query string, alg core.Algorithm, k int) ([]core.Selected, []suggest.Specialization, bool, error) {
	sel, specs, hit, _, err := h.DiversifyServe(ctx, query, alg, k)
	return sel, specs, hit, err
}

// DiversifyServe is the full serving entry point: DiversifyCachedKCtx
// plus the per-request SearchInfo a tail-tolerant Searcher reports —
// whether the SERP was built from a degraded (shard-missing) candidate
// set and whether any scatter leg was answered by a hedge. Degradation
// can enter through the per-request R_q retrieval or through the
// artifact build it joined (a degraded build is served but never
// cached); hedging is reported for this request's own retrievals only.
// For local engines the info is always zero.
func (h *ServeHandle) DiversifyServe(ctx context.Context, query string, alg core.Algorithm, k int) ([]core.Selected, []suggest.Specialization, bool, SearchInfo, error) {
	p := h.Pipeline
	// Serving normalizes at the edge: the log-mined knowledge (QFG nodes,
	// recommender keys, popularity function) lives in normalized query
	// space, and normalization is also what makes "Jaguar  Cars" and
	// "jaguar cars" share a cache entry.
	norm := text.NormalizeQuery(query)

	// Cache entries are keyed by (engine epoch, normalized query): a
	// mutation — ingest, delete, flush, compaction — bumps the epoch, so
	// artifacts computed against an older snapshot are never served after
	// it (a deleted document must not resurface through a cached R_q′
	// list). Stale-epoch entries age out of the LRU naturally.
	key := artifactKey(p.Engine.Epoch(), norm)

	// The document scoring phase runs per request: on a miss it overlaps
	// with the artifact build (the §6 parallel architecture); on a hit it
	// is the only retrieval left.
	art, hit := h.cache.Get(key)

	// Plan selection: a cache hit on an ambiguous query under a fused
	// config runs the whole request as ONE scan — the cached aspect lists
	// seed the per-specialization heaps inside the retrieval pass. Misses
	// keep the staged plan (its artifact build overlaps the scan, which
	// fusion cannot), as do unambiguous queries (nothing to fuse) and
	// distributed Searchers (fusion is a local, post-merge operator).
	if hit && p.fusedEligible(art) {
		sel, err := p.fusedScan(ctx, norm, alg, k, art.SpecLists)
		switch {
		case err == nil:
			exec.CountQuery(exec.ModeFused)
			return sel, art.Specs, true, SearchInfo{}, nil
		case !errors.Is(err, exec.ErrNotFusable):
			// Request-scoped failure (cancellation); the cached artifacts
			// are untouched — only this request fails.
			return nil, nil, true, SearchInfo{}, err
		}
		// Not fusable (pending mutations): fall through to the staged plan.
	}

	var candidates []core.Doc
	var candInfo SearchInfo
	var candErr error
	if hit {
		candidates, candInfo, candErr = p.candidateDocsCtx(ctx, norm)
	} else {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			candidates, candInfo, candErr = p.candidateDocsCtx(ctx, norm)
		}()
		var artDegraded bool
		art, artDegraded = h.buildOrJoin(key, norm)
		wg.Wait() // candInfo is the retrieval goroutine's until joined
		candInfo.Merge(SearchInfo{Degraded: artDegraded})
	}
	if candErr != nil {
		return nil, nil, hit, candInfo, candErr
	}
	exec.CountQuery(exec.ModeStaged)

	problem := p.newProblem(norm, candidates, art.SpecLists)
	if k > 0 {
		problem.K = k
	}
	if len(art.Specs) == 0 {
		return core.Baseline(problem), nil, hit, candInfo, nil
	}
	return core.Diversify(alg, problem), art.Specs, hit, candInfo, nil
}

// artifactKey scopes a normalized query to an engine epoch. The NUL
// separator cannot occur in either part (epochs are decimal digits,
// normalization strips control characters), so keys never collide.
func artifactKey(epoch uint64, norm string) string {
	return strconv.FormatUint(epoch, 10) + "\x00" + norm
}

// buildOrJoin returns the artifacts for norm under the epoch-scoped cache
// key, building them if this goroutine is the first to ask (the leader
// caches the result) and joining the in-flight build otherwise. The
// singleflight map is keyed like the cache, so requests racing an epoch
// swap coalesce only with builds against their own snapshot. The boolean
// reports a degraded build (partial-mode scatter lost a shard): such
// artifacts serve this singleflight's requests but are never cached.
func (h *ServeHandle) buildOrJoin(key, norm string) (*queryArtifacts, bool) {
	h.mu.Lock()
	if c, ok := h.inflight[key]; ok {
		h.mu.Unlock()
		<-c.done
		if c.art != nil {
			return c.art, c.degraded
		}
		// The leader panicked before producing artifacts; retry as (or
		// joining) a new leader rather than returning nil.
		return h.buildOrJoin(key, norm)
	}
	c := &artifactCall{done: make(chan struct{})}
	h.inflight[key] = c
	h.mu.Unlock()

	// Unregister via defer so a panicking build does not wedge every
	// future request for this query on a never-closed channel.
	defer func() {
		h.mu.Lock()
		delete(h.inflight, key)
		h.builds++
		h.mu.Unlock()
		close(c.done)
	}()
	art, degraded, err := h.buildArtifacts(norm)
	c.art = art
	c.degraded = degraded
	if err == nil && !degraded {
		h.cache.Put(key, art)
	}
	// On error (only a distributed Searcher can fail under Background —
	// a shard with every replica unreachable) or a degraded partial-mode
	// build, the artifact is handed to this request's leader and
	// followers but never cached, so one scatter failure cannot pin a
	// wrong (or shard-incomplete) verdict for the epoch's lifetime.
	return art, degraded
}

// buildArtifacts runs Algorithm 1 and fetches the R_q′ lists: all |S_q|
// specialization retrievals are batched into a single scatter-gather
// round over the index segments (one pass per shard scores every spec's
// query vector), as in BuildProblemBatched. The build runs under
// context.Background() on purpose — see DiversifyCachedKCtx. Under a
// partial-capable Searcher a shard outage degrades the lists (reported
// via the boolean) instead of failing the build.
func (h *ServeHandle) buildArtifacts(norm string) (*queryArtifacts, bool, error) {
	p := h.Pipeline
	specs := p.DetectSpecializations(norm)
	art := &queryArtifacts{
		Specs:     specs,
		SpecLists: make([]core.Specialization, len(specs)),
	}
	if len(specs) == 0 {
		return art, false, nil
	}
	queries := make([]string, len(specs))
	ks := make([]int, len(specs))
	for i, s := range specs {
		queries[i], ks[i] = s.Query, p.Config.PerSpec
	}
	var lists [][]engine.Result
	var info SearchInfo
	err := countAspectSkips(func() error {
		var err error
		lists, info, err = p.searchBatchInfo(context.Background(), queries, ks)
		return err
	})
	if err != nil {
		// Degrade to an empty (baseline-serving) artifact; buildOrJoin
		// will not cache it.
		return &queryArtifacts{}, false, err
	}
	for i := range specs {
		art.SpecLists[i] = p.specFromResults(specs[i], lists[i])
	}
	return art, info.Degraded, nil
}
