package repro

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/text"
)

// serveQueryMix returns a seeded mix of ambiguous topic queries, their
// specializations, noise queries and unseen queries — the traffic shape
// the serving layer faces.
func serveQueryMix(p *Pipeline) []string {
	var qs []string
	for _, topic := range p.Testbed.Topics {
		qs = append(qs, topic.Query)
		for _, sq := range p.Testbed.SubtopicQuery[topic.ID] {
			qs = append(qs, sq)
		}
	}
	for i := 0; i < 5; i++ {
		qs = append(qs, synth.NoiseQuery(i))
	}
	qs = append(qs, "never seen before", "")
	return qs
}

// TestDiversifyCachedMatchesDiversify is the cache-correctness contract:
// for every query in the mix and every algorithm, the cached path must
// return a SERP identical to the uncached Pipeline.Diversify — on a cold
// cache (miss path, overlapped build) and again on a warm cache (hit
// path, artifacts shared).
func TestDiversifyCachedMatchesDiversify(t *testing.T) {
	p := buildTiny(t)
	h := p.NewServeHandle(256, 4)

	ambiguous := 0
	for _, alg := range []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect, core.AlgMMR, core.AlgBaseline} {
		for _, q := range serveQueryMix(p) {
			norm := text.NormalizeQuery(q)
			wantSel, wantSpecs := p.Diversify(norm, alg)
			for round := 0; round < 2; round++ {
				gotSel, gotSpecs, _ := h.DiversifyCached(q, alg)
				if !reflect.DeepEqual(gotSel, wantSel) {
					t.Fatalf("alg %s query %q round %d: cached SERP differs from Diversify", alg, q, round)
				}
				if !reflect.DeepEqual(gotSpecs, wantSpecs) {
					t.Fatalf("alg %s query %q round %d: cached specializations differ", alg, q, round)
				}
			}
			if len(wantSpecs) > 0 {
				ambiguous++
			}
		}
	}
	if ambiguous == 0 {
		t.Fatal("query mix exercised no ambiguous queries; the test is vacuous")
	}
	if st := h.CacheStats(); st.Hits == 0 {
		t.Errorf("expected warm-round hits, stats = %+v", st)
	}
}

// TestDiversifyCachedHitReporting checks the miss→hit transition and that
// repeats actually skip the artifact build (hit counter moves).
func TestDiversifyCachedHitReporting(t *testing.T) {
	p := buildTiny(t)
	h := p.NewServeHandle(64, 2)
	q := p.Testbed.TopicQuery(1)

	if _, _, hit := h.DiversifyCached(q, core.AlgOptSelect); hit {
		t.Error("first lookup should miss")
	}
	if _, _, hit := h.DiversifyCached(q, core.AlgOptSelect); !hit {
		t.Error("second lookup should hit")
	}
	// Normalization folds case/whitespace variants onto the same entry.
	if _, _, hit := h.DiversifyCached("  "+q+"  ", core.AlgXQuAD); !hit {
		t.Error("normalized variant should hit the same entry")
	}
	st := h.CacheStats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

// TestDiversifyCachedCoalescesMisses checks the singleflight behaviour:
// many goroutines racing on the same cold query must produce exactly one
// artifact build, and every response must still be correct.
func TestDiversifyCachedCoalescesMisses(t *testing.T) {
	p := buildTiny(t)
	h := p.NewServeHandle(64, 2)
	q := p.Testbed.TopicQuery(1)
	want, _ := p.Diversify(q, core.AlgOptSelect)

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, _ := h.DiversifyCached(q, core.AlgOptSelect)
			if !reflect.DeepEqual(got, want) {
				t.Error("coalesced SERP differs from Diversify")
			}
		}()
	}
	wg.Wait()

	h.mu.Lock()
	builds, pending := h.builds, len(h.inflight)
	h.mu.Unlock()
	if builds != 1 {
		t.Errorf("builds = %d, want 1 (misses should coalesce)", builds)
	}
	if pending != 0 {
		t.Errorf("inflight map not drained: %d entries", pending)
	}
}

// TestDiversifyCachedConcurrent replays a skewed query mix from many
// goroutines (run with -race): cached artifacts are shared across
// requests, and every response must still equal the sequential answer.
func TestDiversifyCachedConcurrent(t *testing.T) {
	p := buildTiny(t)
	// Tiny capacity forces concurrent eviction and rebuild alongside hits.
	h := p.NewServeHandle(8, 4)
	mix := serveQueryMix(p)

	want := make(map[string][]core.Selected, len(mix))
	for _, q := range mix {
		norm := text.NormalizeQuery(q)
		sel, _ := p.Diversify(norm, core.AlgOptSelect)
		want[norm] = sel
	}

	const workers = 8
	const opsPerWorker = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWorker; i++ {
				q := mix[rng.Intn(len(mix))]
				got, _, _ := h.DiversifyCached(q, core.AlgOptSelect)
				if !reflect.DeepEqual(got, want[text.NormalizeQuery(q)]) {
					t.Errorf("concurrent cached SERP differs for %q", q)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
