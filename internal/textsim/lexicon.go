package textsim

import (
	"sort"
	"sync"
)

// Lexicon interns term strings to dense int32 IDs so the similarity hot
// paths compare integers instead of strings. A lexicon has two regions:
//
//   - a sorted base: IDs [0, len(base)) assigned to a lexicographically
//     sorted term list at construction time, so ascending ID order equals
//     ascending string order. Vectors whose terms all come from the base
//     therefore merge in exactly the order the string-sorted Vector code
//     merges — which is what keeps interned cosines bit-identical to the
//     legacy string path (float addition is order-sensitive).
//   - a dynamic overflow: terms first seen after construction get the next
//     free ID in arrival order. Overflow IDs are correct but not
//     string-ordered, so vectors touching them may accumulate dot products
//     in a different order (same mathematical value, possibly different
//     last ulp). The engine seeds its lexicon with the full index
//     dictionary, so overflow only triggers for out-of-collection text.
//
// All methods are safe for concurrent use; Intern is lock-free for base
// terms (the common case on the serving path).
type Lexicon struct {
	base      map[string]int32
	baseTerms []string

	mu         sync.RWMutex
	extra      map[string]int32
	extraTerms []string
}

// NewLexicon returns an empty lexicon: every term is assigned dynamically.
func NewLexicon() *Lexicon {
	return &Lexicon{extra: make(map[string]int32)}
}

// NewSortedLexicon builds a lexicon whose base is the given term list,
// sorted and de-duplicated here; base IDs are the positions in that sorted
// order. The input slice is not retained.
func NewSortedLexicon(terms []string) *Lexicon {
	sorted := make([]string, len(terms))
	copy(sorted, terms)
	sort.Strings(sorted)
	// De-duplicate in place.
	out := sorted[:0]
	for i, t := range sorted {
		if i == 0 || t != sorted[i-1] {
			out = append(out, t)
		}
	}
	return newBaseLexicon(out)
}

// WrapSortedTerms builds a lexicon over a term list that is already
// lexicographically sorted and duplicate-free — for callers that own such
// a list (the inverted index keeps its dictionary sorted). The slice is
// retained; it must not be mutated afterwards.
func WrapSortedTerms(sorted []string) *Lexicon {
	return newBaseLexicon(sorted)
}

func newBaseLexicon(sorted []string) *Lexicon {
	base := make(map[string]int32, len(sorted))
	for i, t := range sorted {
		base[t] = int32(i)
	}
	return &Lexicon{
		base:      base,
		baseTerms: sorted,
		extra:     make(map[string]int32),
	}
}

// Len returns the number of interned terms.
func (l *Lexicon) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.baseTerms) + len(l.extraTerms)
}

// SortedLen returns the size of the sorted base region: IDs below it are
// in lexicographic order.
func (l *Lexicon) SortedLen() int { return len(l.baseTerms) }

// ID returns the ID of term if already interned.
func (l *Lexicon) ID(term string) (int32, bool) {
	if id, ok := l.base[term]; ok {
		return id, true
	}
	l.mu.RLock()
	id, ok := l.extra[term]
	l.mu.RUnlock()
	if ok {
		return int32(len(l.baseTerms)) + id, true
	}
	return 0, false
}

// Intern returns the ID of term, assigning the next free one if the term
// is new.
func (l *Lexicon) Intern(term string) int32 {
	if id, ok := l.base[term]; ok {
		return id
	}
	l.mu.RLock()
	id, ok := l.extra[term]
	l.mu.RUnlock()
	if ok {
		return int32(len(l.baseTerms)) + id
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if id, ok := l.extra[term]; ok {
		return int32(len(l.baseTerms)) + id
	}
	id = int32(len(l.extraTerms))
	l.extra[term] = id
	l.extraTerms = append(l.extraTerms, term)
	return int32(len(l.baseTerms)) + id
}

// Term returns the string for an interned ID; the empty string for an
// unknown ID.
func (l *Lexicon) Term(id int32) string {
	if id >= 0 && int(id) < len(l.baseTerms) {
		return l.baseTerms[id]
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	i := int(id) - len(l.baseTerms)
	if i >= 0 && i < len(l.extraTerms) {
		return l.extraTerms[i]
	}
	return ""
}
