package textsim

import "sort"

// IVector is the interned-term representation of a sparse term vector:
// term IDs from a Lexicon (sorted ascending) plus their weights, with the
// L2 norm cached at construction. It is the hot-path twin of Vector — all
// inner loops (utility matrices, MMR, Jaccard features) merge int32 IDs
// instead of comparing strings, which removes every string comparison and
// every map lookup from per-query scoring.
//
// Weights are stored raw, not pre-normalized: Cosine divides the merged
// dot product by the cached norm product, exactly like the string path.
// Pre-dividing each weight by the norm would save that one division per
// pair but changes floating-point rounding per element, breaking the
// bit-identity guarantee the serving cache and the differential tests
// rely on (see docs/PERFORMANCE.md). One division per pair is noise next
// to the merge it replaces.
type IVector struct {
	IDs     []int32
	Weights []float64
	norm    float64
}

// Intern converts a Vector to its interned representation under lex,
// assigning IDs to unseen terms. The weights and the cached norm are
// copied bit-for-bit; when every term falls in the lexicon's sorted base
// (always true for vectors drawn from an engine-seeded lexicon), the ID
// order equals the string order and interned similarities are
// bit-identical to their string counterparts.
func Intern(lex *Lexicon, v Vector) IVector {
	ids := make([]int32, len(v.Terms))
	weights := make([]float64, len(v.Terms))
	copy(weights, v.Weights)
	sorted := true
	for i, t := range v.Terms {
		ids[i] = lex.Intern(t)
		if i > 0 && ids[i] < ids[i-1] {
			sorted = false
		}
	}
	iv := IVector{IDs: ids, Weights: weights, norm: v.norm}
	if !sorted {
		// Overflow terms broke the ID order; re-sort the pairs. The norm is
		// kept from the Vector (summation order preserved).
		sort.Sort(byID(iv))
	}
	return iv
}

// byID sorts an IVector's (ID, weight) pairs by ascending ID.
type byID IVector

func (s byID) Len() int { return len(s.IDs) }
func (s byID) Swap(i, j int) {
	s.IDs[i], s.IDs[j] = s.IDs[j], s.IDs[i]
	s.Weights[i], s.Weights[j] = s.Weights[j], s.Weights[i]
}
func (s byID) Less(i, j int) bool { return s.IDs[i] < s.IDs[j] }

// Len returns the number of non-zero components.
func (v IVector) Len() int { return len(v.IDs) }

// Norm returns the cached L2 norm.
func (v IVector) Norm() float64 { return v.norm }

// IsZero reports whether the vector has no components.
func (v IVector) IsZero() bool { return len(v.IDs) == 0 }

// Uninterned reconstructs the string Vector (for debugging and the
// compatibility shim); it is not used on any hot path.
func (v IVector) Uninterned(lex *Lexicon) Vector {
	terms := make([]string, len(v.IDs))
	for i, id := range v.IDs {
		terms[i] = lex.Term(id)
	}
	weights := make([]float64, len(v.Weights))
	copy(weights, v.Weights)
	return Vector{Terms: terms, Weights: weights, norm: v.norm}
}

// Dot returns the inner product via an int32 merge join — the interned
// twin of Dot(a, b Vector).
func (a IVector) Dot(b IVector) float64 {
	i, j := 0, 0
	dot := 0.0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] == b.IDs[j]:
			dot += a.Weights[i] * b.Weights[j]
			i++
			j++
		case a.IDs[i] < b.IDs[j]:
			i++
		default:
			j++
		}
	}
	return dot
}

// Cosine returns the cosine similarity in [0,1] for non-negative weights,
// 0 against a zero vector — the interned twin of Cosine(a, b Vector),
// with identical operation order.
func (a IVector) Cosine(b IVector) float64 {
	if a.norm == 0 || b.norm == 0 {
		return 0
	}
	c := a.Dot(b) / (a.norm * b.norm)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// Distance is Equation (2) on interned vectors: δ = 1 − cosine.
func (a IVector) Distance(b IVector) float64 { return 1 - a.Cosine(b) }

// Jaccard returns the Jaccard coefficient of the ID sets (ignoring
// weights) — the interned twin of Jaccard(a, b Vector).
func (a IVector) Jaccard(b IVector) float64 {
	if len(a.IDs) == 0 && len(b.IDs) == 0 {
		return 1
	}
	i, j, inter := 0, 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] == b.IDs[j]:
			inter++
			i++
			j++
		case a.IDs[i] < b.IDs[j]:
			i++
		default:
			j++
		}
	}
	union := len(a.IDs) + len(b.IDs) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
