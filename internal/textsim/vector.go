// Package textsim implements the document-similarity substrate of the
// paper's utility function (Definition 2): sparse term vectors over
// document surrogates (snippets), cosine similarity, and the distance
// function δ(d1,d2) = 1 − cosine(d1,d2) of Equation (2). δ is
// non-negative, symmetric and zero only for identical vectors — the
// properties §3.1 requires of the distance.
package textsim

import (
	"math"
	"sort"
)

// Vector is a sparse term-weight vector with terms kept sorted, so that
// dot products are linear-time merge joins. Construct vectors through the
// package constructors, which also cache the L2 norm.
type Vector struct {
	Terms   []string
	Weights []float64
	norm    float64
}

// FromTokens builds a term-frequency vector from a token stream.
func FromTokens(tokens []string) Vector {
	counts := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		counts[t]++
	}
	return FromCounts(counts)
}

// FromCounts builds a vector from an arbitrary term→weight map.
func FromCounts(counts map[string]float64) Vector {
	terms := make([]string, 0, len(counts))
	for t, w := range counts {
		if w != 0 {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	weights := make([]float64, len(terms))
	ss := 0.0
	for i, t := range terms {
		w := counts[t]
		weights[i] = w
		ss += w * w
	}
	return Vector{Terms: terms, Weights: weights, norm: math.Sqrt(ss)}
}

// Len returns the number of non-zero components.
func (v Vector) Len() int { return len(v.Terms) }

// Norm returns the cached L2 norm.
func (v Vector) Norm() float64 { return v.norm }

// IsZero reports whether the vector has no components.
func (v Vector) IsZero() bool { return len(v.Terms) == 0 }

// Weight returns the weight of term, or 0.
func (v Vector) Weight(term string) float64 {
	i := sort.SearchStrings(v.Terms, term)
	if i < len(v.Terms) && v.Terms[i] == term {
		return v.Weights[i]
	}
	return 0
}

// Dot returns the inner product of two vectors via a sorted merge.
func Dot(a, b Vector) float64 {
	i, j := 0, 0
	dot := 0.0
	for i < len(a.Terms) && j < len(b.Terms) {
		switch {
		case a.Terms[i] == b.Terms[j]:
			dot += a.Weights[i] * b.Weights[j]
			i++
			j++
		case a.Terms[i] < b.Terms[j]:
			i++
		default:
			j++
		}
	}
	return dot
}

// Cosine returns the cosine similarity of a and b in [0,1] for
// non-negative weights. The cosine with a zero vector is 0.
func Cosine(a, b Vector) float64 {
	if a.norm == 0 || b.norm == 0 {
		return 0
	}
	c := Dot(a, b) / (a.norm * b.norm)
	// Guard against floating-point drift outside [−1,1].
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// Distance is the paper's Equation (2): δ(d1,d2) = 1 − cosine(d1,d2).
// For non-negative weight vectors it lies in [0,1], is symmetric, and is 0
// exactly when the vectors point in the same direction.
func Distance(a, b Vector) float64 { return 1 - Cosine(a, b) }

// Jaccard returns the Jaccard coefficient of the term sets of a and b
// (ignoring weights). Used by the query-flow-graph chaining features.
func Jaccard(a, b Vector) float64 {
	if len(a.Terms) == 0 && len(b.Terms) == 0 {
		return 1
	}
	i, j, inter := 0, 0, 0
	for i < len(a.Terms) && j < len(b.Terms) {
		switch {
		case a.Terms[i] == b.Terms[j]:
			inter++
			i++
			j++
		case a.Terms[i] < b.Terms[j]:
			i++
		default:
			j++
		}
	}
	union := len(a.Terms) + len(b.Terms) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardTokens is Jaccard over raw token slices (building the sets inline).
func JaccardTokens(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	inter := 0
	seen := make(map[string]bool, len(b))
	for _, t := range b {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
