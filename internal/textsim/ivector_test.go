package textsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// randomVector builds a Vector from a random multiset over a shared
// vocabulary, optionally IDF-reweighted, mirroring how the engine builds
// snippet surrogates.
func randomVector(rng *rand.Rand, vocab []string, maxLen int, idf IDF) Vector {
	n := rng.Intn(maxLen + 1)
	tokens := make([]string, n)
	for i := range tokens {
		tokens[i] = vocab[rng.Intn(len(vocab))]
	}
	v := FromTokens(tokens)
	if idf != nil {
		v = idf.Apply(v)
	}
	return v
}

// TestInternedOpsBitIdentical is the property-based differential test of
// the tentpole guarantee: under a sorted-base lexicon, every interned
// similarity equals its string-path twin bit for bit (==, not within an
// epsilon), because the merge visits components in the same order.
func TestInternedOpsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := make([]string, 200)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%03d", rng.Intn(500))
	}
	idf := IDF{}
	for _, tm := range vocab {
		idf[tm] = 1 + rng.Float64()*3
	}
	lex := NewSortedLexicon(vocab)

	for iter := 0; iter < 2000; iter++ {
		var table IDF
		if iter%2 == 1 {
			table = idf
		}
		a := randomVector(rng, vocab, 40, table)
		b := randomVector(rng, vocab, 40, table)
		ia := Intern(lex, a)
		ib := Intern(lex, b)

		if got, want := ia.Dot(ib), Dot(a, b); got != want {
			t.Fatalf("iter %d: Dot mismatch: interned %v, string %v (diff %g)", iter, got, want, got-want)
		}
		if got, want := ia.Cosine(ib), Cosine(a, b); got != want {
			t.Fatalf("iter %d: Cosine mismatch: interned %v, string %v (diff %g)", iter, got, want, got-want)
		}
		if got, want := ia.Distance(ib), Distance(a, b); got != want {
			t.Fatalf("iter %d: Distance mismatch: interned %v, string %v", iter, got, want)
		}
		if got, want := ia.Jaccard(ib), Jaccard(a, b); got != want {
			t.Fatalf("iter %d: Jaccard mismatch: interned %v, string %v", iter, got, want)
		}
		if got, want := ia.Norm(), a.Norm(); got != want {
			t.Fatalf("iter %d: norm not copied bitwise: %v vs %v", iter, got, want)
		}
	}
}

// TestInternOverflowStillCorrect exercises the dynamic-overflow region: a
// lexicon seeded with only part of the vocabulary must still produce
// mathematically correct similarities (tolerance comparison — overflow IDs
// may reorder the accumulation) and exact Jaccard (order-free).
func TestInternOverflowStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := make([]string, 120)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%03d", i)
	}
	lex := NewSortedLexicon(vocab[:40]) // 2/3 of the vocabulary is overflow

	for iter := 0; iter < 500; iter++ {
		a := randomVector(rng, vocab, 30, nil)
		b := randomVector(rng, vocab, 30, nil)
		ia := Intern(lex, a)
		ib := Intern(lex, b)

		if !sort.SliceIsSorted(ia.IDs, func(i, j int) bool { return ia.IDs[i] < ia.IDs[j] }) {
			t.Fatalf("iter %d: interned IDs not sorted: %v", iter, ia.IDs)
		}
		if got, want := ia.Cosine(ib), Cosine(a, b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("iter %d: overflow cosine off: %v vs %v", iter, got, want)
		}
		if got, want := ia.Jaccard(ib), Jaccard(a, b); got != want {
			t.Fatalf("iter %d: overflow Jaccard mismatch: %v vs %v", iter, got, want)
		}
	}
}

func TestLexiconRoundTrip(t *testing.T) {
	lex := NewSortedLexicon([]string{"cherry", "apple", "banana", "apple"})
	if lex.SortedLen() != 3 {
		t.Fatalf("SortedLen = %d after dedup, want 3", lex.SortedLen())
	}
	// Base region is lexicographic.
	for i, want := range []string{"apple", "banana", "cherry"} {
		if got := lex.Term(int32(i)); got != want {
			t.Errorf("Term(%d) = %q, want %q", i, got, want)
		}
	}
	if id, ok := lex.ID("banana"); !ok || id != 1 {
		t.Errorf("ID(banana) = %d, %v", id, ok)
	}
	if _, ok := lex.ID("durian"); ok {
		t.Error("ID(durian) should be absent before interning")
	}
	d := lex.Intern("durian")
	if d != 3 {
		t.Errorf("first overflow ID = %d, want 3", d)
	}
	if lex.Intern("durian") != d {
		t.Error("re-interning changed the ID")
	}
	if lex.Term(d) != "durian" {
		t.Errorf("Term(%d) = %q", d, lex.Term(d))
	}
	if lex.Len() != 4 {
		t.Errorf("Len = %d, want 4", lex.Len())
	}
	if lex.Term(99) != "" {
		t.Error("unknown ID should map to empty string")
	}
}

// TestLexiconConcurrentIntern hammers Intern from many goroutines; run
// under -race this is the safety net for the engine's shared lexicon.
func TestLexiconConcurrentIntern(t *testing.T) {
	lex := NewSortedLexicon([]string{"a", "b", "c"})
	var wg sync.WaitGroup
	ids := make([][]int32, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]int32, 64)
			for i := range ids[g] {
				ids[g][i] = lex.Intern(fmt.Sprintf("shared%02d", i%16))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got ID %d for token %d, goroutine 0 got %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
	if lex.Len() != 3+16 {
		t.Errorf("Len = %d, want 19", lex.Len())
	}
}

func TestUninterned(t *testing.T) {
	lex := NewSortedLexicon([]string{"x", "y", "z"})
	v := FromTokens([]string{"z", "x", "x"})
	iv := Intern(lex, v)
	back := iv.Uninterned(lex)
	if got, want := fmt.Sprint(back.Terms), fmt.Sprint(v.Terms); got != want {
		t.Errorf("terms: %s != %s", got, want)
	}
	if got, want := fmt.Sprint(back.Weights), fmt.Sprint(v.Weights); got != want {
		t.Errorf("weights: %s != %s", got, want)
	}
	if back.Norm() != v.Norm() {
		t.Errorf("norm: %v != %v", back.Norm(), v.Norm())
	}
}
