package textsim

import "math"

// IDF maps terms to inverse-document-frequency weights. It turns raw
// term-frequency vectors into TF-IDF vectors, the weighting we use for the
// snippet surrogates on which the paper's utility function operates
// (cosine over raw TF over-weights boilerplate terms shared by all
// snippets of a result page).
type IDF map[string]float64

// ComputeIDF derives smoothed IDF weights idf(t) = ln(1 + N/df(t)) from
// per-term document frequencies over a collection of numDocs documents.
func ComputeIDF(docFreq map[string]int, numDocs int) IDF {
	idf := make(IDF, len(docFreq))
	n := float64(numDocs)
	for t, df := range docFreq {
		if df <= 0 {
			continue
		}
		idf[t] = math.Log(1 + n/float64(df))
	}
	return idf
}

// ComputeIDFFromVectors counts document frequencies over the given vectors
// and returns the corresponding IDF table.
func ComputeIDFFromVectors(docs []Vector) IDF {
	df := make(map[string]int)
	for _, d := range docs {
		for _, t := range d.Terms {
			df[t]++
		}
	}
	return ComputeIDF(df, len(docs))
}

// DocFreqSource is the slice of an inverted index the ID-based IDF
// computation needs: the dictionary size, the collection size, and the
// per-term document frequency by internal term number. *index.Index
// satisfies it.
type DocFreqSource interface {
	NumTerms() int
	NumDocs() int
	DF(id int32) int
}

// SliceIDF is the ID-indexed twin of IDF: one weight per dictionary term,
// indexed by term number. Where the map-based path materializes a
// term→df map (one allocation per dictionary entry) just to throw it away
// after the IDF table is built, SliceIDF is computed by a single walk of
// the dictionary into one flat []float64 — zero map allocation — and
// weight lookups during Apply are an array index for every in-collection
// term. Results are bit-identical to the map path: same ln(1+N/df)
// weights, same "unknown term weighs 1" rule, same accumulation order
// (vectors keep their terms sorted).
type SliceIDF struct {
	lex     *Lexicon
	weights []float64
}

// ComputeIDFFromIndex walks src's dictionary once and returns the
// ID-indexed IDF table. lex must be the lexicon whose sorted base IS the
// dictionary (the engine seeds it with WrapSortedTerms(idx.Terms())), so
// a base lexicon ID and a dictionary term number agree; overflow IDs —
// out-of-collection terms — fall outside the weight slice and weigh 1,
// exactly like the map path's missing entries.
func ComputeIDFFromIndex(src DocFreqSource, lex *Lexicon) SliceIDF {
	n := float64(src.NumDocs())
	weights := make([]float64, src.NumTerms())
	for id := range weights {
		if df := src.DF(int32(id)); df > 0 {
			weights[id] = math.Log(1 + n/float64(df))
		}
	}
	return SliceIDF{lex: lex, weights: weights}
}

// Apply reweights v by IDF exactly as IDF.Apply does (unknown terms get
// weight 1), without building the intermediate counts map: v's terms are
// already sorted and unique, so the reweighted vector and its norm are
// assembled in one ordered pass — the same order FromCounts uses, keeping
// the floats bit-identical to the map path.
func (s SliceIDF) Apply(v Vector) Vector {
	terms := make([]string, 0, len(v.Terms))
	weights := make([]float64, 0, len(v.Terms))
	ss := 0.0
	for i, t := range v.Terms {
		w := 1.0
		if id, ok := s.lex.ID(t); ok && int(id) < len(s.weights) && s.weights[id] != 0 {
			w = s.weights[id]
		}
		nw := v.Weights[i] * w
		if nw == 0 {
			continue // FromCounts drops zero components; match it
		}
		terms = append(terms, t)
		weights = append(weights, nw)
		ss += nw * nw
	}
	return Vector{Terms: terms, Weights: weights, norm: math.Sqrt(ss)}
}

// Apply reweights v by IDF (unknown terms get weight idf=1) and returns a
// new vector with a recomputed norm.
func (idf IDF) Apply(v Vector) Vector {
	counts := make(map[string]float64, len(v.Terms))
	for i, t := range v.Terms {
		w := idf[t]
		if w == 0 {
			w = 1
		}
		counts[t] = v.Weights[i] * w
	}
	return FromCounts(counts)
}
