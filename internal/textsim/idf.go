package textsim

import "math"

// IDF maps terms to inverse-document-frequency weights. It turns raw
// term-frequency vectors into TF-IDF vectors, the weighting we use for the
// snippet surrogates on which the paper's utility function operates
// (cosine over raw TF over-weights boilerplate terms shared by all
// snippets of a result page).
type IDF map[string]float64

// ComputeIDF derives smoothed IDF weights idf(t) = ln(1 + N/df(t)) from
// per-term document frequencies over a collection of numDocs documents.
func ComputeIDF(docFreq map[string]int, numDocs int) IDF {
	idf := make(IDF, len(docFreq))
	n := float64(numDocs)
	for t, df := range docFreq {
		if df <= 0 {
			continue
		}
		idf[t] = math.Log(1 + n/float64(df))
	}
	return idf
}

// ComputeIDFFromVectors counts document frequencies over the given vectors
// and returns the corresponding IDF table.
func ComputeIDFFromVectors(docs []Vector) IDF {
	df := make(map[string]int)
	for _, d := range docs {
		for _, t := range d.Terms {
			df[t]++
		}
	}
	return ComputeIDF(df, len(docs))
}

// Apply reweights v by IDF (unknown terms get weight idf=1) and returns a
// new vector with a recomputed norm.
func (idf IDF) Apply(v Vector) Vector {
	counts := make(map[string]float64, len(v.Terms))
	for i, t := range v.Terms {
		w := idf[t]
		if w == 0 {
			w = 1
		}
		counts[t] = v.Weights[i] * w
	}
	return FromCounts(counts)
}
