package textsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/text"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func vec(tokens ...string) Vector { return FromTokens(tokens) }

func TestFromTokensCounts(t *testing.T) {
	v := vec("apple", "fruit", "apple")
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.Weight("apple") != 2 || v.Weight("fruit") != 1 {
		t.Errorf("weights = %f, %f", v.Weight("apple"), v.Weight("fruit"))
	}
	if v.Weight("absent") != 0 {
		t.Error("absent term has non-zero weight")
	}
	if !almostEq(v.Norm(), math.Sqrt(5), 1e-12) {
		t.Errorf("Norm = %f, want sqrt(5)", v.Norm())
	}
}

func TestFromCountsDropsZeros(t *testing.T) {
	v := FromCounts(map[string]float64{"a": 1, "b": 0, "c": 2})
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2 (zero weights dropped)", v.Len())
	}
}

func TestCosineIdentical(t *testing.T) {
	v := vec("a", "b", "c")
	if c := Cosine(v, v); !almostEq(c, 1, 1e-12) {
		t.Errorf("Cosine(v,v) = %f, want 1", c)
	}
	if d := Distance(v, v); !almostEq(d, 0, 1e-12) {
		t.Errorf("Distance(v,v) = %f, want 0", d)
	}
}

func TestCosineOrthogonal(t *testing.T) {
	a, b := vec("x", "y"), vec("p", "q")
	if c := Cosine(a, b); c != 0 {
		t.Errorf("Cosine(disjoint) = %f, want 0", c)
	}
	if d := Distance(a, b); d != 1 {
		t.Errorf("Distance(disjoint) = %f, want 1", d)
	}
}

func TestCosineKnownValue(t *testing.T) {
	// a = (1,1,0), b = (1,0,1) → cos = 1/2.
	a, b := vec("t1", "t2"), vec("t1", "t3")
	if c := Cosine(a, b); !almostEq(c, 0.5, 1e-12) {
		t.Errorf("Cosine = %f, want 0.5", c)
	}
}

func TestCosineZeroVector(t *testing.T) {
	var zero Vector
	v := vec("a")
	if Cosine(zero, v) != 0 || Cosine(v, zero) != 0 {
		t.Error("cosine with zero vector must be 0")
	}
	if !zero.IsZero() || v.IsZero() {
		t.Error("IsZero misreports")
	}
}

func TestDot(t *testing.T) {
	a := FromCounts(map[string]float64{"x": 2, "y": 3})
	b := FromCounts(map[string]float64{"y": 4, "z": 5})
	if d := Dot(a, b); !almostEq(d, 12, 1e-12) {
		t.Errorf("Dot = %f, want 12", d)
	}
}

// Property: δ satisfies the paper's §3.1 axioms on arbitrary token multisets:
// symmetry, δ(d,d)=0, and range [0,1].
func TestDistanceAxiomsProperty(t *testing.T) {
	prop := func(aTok, bTok []string) bool {
		a, b := FromTokens(aTok), FromTokens(bTok)
		dab, dba := Distance(a, b), Distance(b, a)
		if !almostEq(dab, dba, 1e-12) {
			return false
		}
		if dab < 0 || dab > 1 {
			return false
		}
		return almostEq(Distance(a, a), 0, 1e-12) || a.IsZero()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	a, b := vec("a", "b", "c"), vec("b", "c", "d")
	if j := Jaccard(a, b); !almostEq(j, 0.5, 1e-12) {
		t.Errorf("Jaccard = %f, want 0.5", j)
	}
	if j := Jaccard(a, a); j != 1 {
		t.Errorf("Jaccard(v,v) = %f, want 1", j)
	}
	var zero Vector
	if j := Jaccard(zero, zero); j != 1 {
		t.Errorf("Jaccard(0,0) = %f, want 1", j)
	}
	if j := Jaccard(zero, a); j != 0 {
		t.Errorf("Jaccard(0,v) = %f, want 0", j)
	}
}

func TestJaccardTokens(t *testing.T) {
	if j := JaccardTokens([]string{"apple", "mac"}, []string{"apple", "fruit"}); !almostEq(j, 1.0/3, 1e-12) {
		t.Errorf("JaccardTokens = %f, want 1/3", j)
	}
	if j := JaccardTokens(nil, nil); j != 1 {
		t.Errorf("JaccardTokens(nil,nil) = %f, want 1", j)
	}
	// Duplicates must not inflate the measure.
	if j := JaccardTokens([]string{"a", "a", "b"}, []string{"a", "b", "b"}); j != 1 {
		t.Errorf("JaccardTokens with dups = %f, want 1", j)
	}
}

func TestComputeIDF(t *testing.T) {
	idf := ComputeIDF(map[string]int{"common": 10, "rare": 1}, 10)
	if idf["rare"] <= idf["common"] {
		t.Errorf("idf(rare)=%f should exceed idf(common)=%f", idf["rare"], idf["common"])
	}
	if !almostEq(idf["common"], math.Log(2), 1e-12) {
		t.Errorf("idf(common) = %f, want ln 2", idf["common"])
	}
	if _, ok := idf["zero"]; ok {
		t.Error("df=0 term must be absent")
	}
}

func TestIDFApply(t *testing.T) {
	docs := []Vector{vec("the", "apple"), vec("the", "tank"), vec("the", "apple", "pie")}
	idf := ComputeIDFFromVectors(docs)
	v := idf.Apply(vec("the", "apple"))
	// "the" appears in all 3 docs, "apple" in 2 — apple must outweigh the.
	if v.Weight("apple") <= v.Weight("the") {
		t.Errorf("apple weight %f should exceed the weight %f", v.Weight("apple"), v.Weight("the"))
	}
	if v.Norm() == 0 {
		t.Error("applied vector has zero norm")
	}
}

func TestIDFApplyUnknownTermDefaults(t *testing.T) {
	idf := IDF{}
	v := idf.Apply(vec("novel"))
	if v.Weight("novel") != 1 {
		t.Errorf("unknown term weight = %f, want tf*1", v.Weight("novel"))
	}
}

// Integration with the text package: vectors over analyzed snippets behave
// like the paper's document surrogates.
func TestSnippetSurrogateSimilarity(t *testing.T) {
	a := text.NewAnalyzer()
	apple1 := FromTokens(a.Tokens("Apple unveils the new Mac OS X Leopard operating system"))
	apple2 := FromTokens(a.Tokens("Mac OS X Leopard operating system released by Apple"))
	tank := FromTokens(a.Tokens("The Leopard 2 main battle tank of the German army"))

	if Cosine(apple1, apple2) <= Cosine(apple1, tank) {
		t.Errorf("same-intent snippets must be closer: %f vs %f",
			Cosine(apple1, apple2), Cosine(apple1, tank))
	}
	if d := Distance(apple1, tank); d <= 0.3 {
		t.Errorf("cross-intent distance suspiciously low: %f", d)
	}
}

func BenchmarkCosine(b *testing.B) {
	tokens1 := text.Tokenize("the quick brown fox jumps over the lazy dog and runs far away into the woods")
	tokens2 := text.Tokenize("a lazy brown dog sleeps under the quick red fox near the old woods entrance")
	v1, v2 := FromTokens(tokens1), FromTokens(tokens2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cosine(v1, v2)
	}
}
