package exec

import (
	"repro/internal/core"
)

// FusedState is the shared cursor/heap state of the fused plan: the
// diversification problem under construction, the streaming utility
// scorer over the cached aspect vectors, the utility matrix filled row by
// row, and — for OptSelect — the per-specialization bounded heaps of
// Algorithm 2, populated as candidates arrive instead of in a separate
// pass.
//
// Protocol: the engine's scan calls NewFusedState once the hit count of
// the main retrieval is known, Pushes exactly that many candidates in
// retrieval (rank) order, then calls Finish. Push order equals the staged
// candidate order, the scorer runs the identical float kernel, and the
// heaps see the identical (score, rank) stream — which is why Finish's
// output is bit-identical to the staged plan's.
type FusedState struct {
	plan   *Plan
	prob   *core.Problem
	scorer *core.UtilityScorer
	u      *core.Utilities
	heaps  *core.OptSelectHeaps
	flat   []float64
	k      int // plan.K clamped to the candidate count
	n      int // candidates promised to Push
	i      int // candidates pushed so far
}

// NewFusedState prepares the operator state for a scan that will push
// exactly n candidates. The plan's aspect lists must be pre-interned
// under plan.Lex.
func NewFusedState(plan *Plan, n int) *FusedState {
	prob := &core.Problem{
		Query:      plan.Query,
		Candidates: make([]core.Doc, 0, n),
		Specs:      plan.Aspects,
		K:          plan.K,
		Lambda:     plan.Lambda,
		Threshold:  plan.Threshold,
		Lex:        plan.Lex,
	}
	fs := &FusedState{plan: plan, prob: prob, n: n}
	// Clamp k exactly like Problem.clampK will once all n candidates are
	// in — the heap sizes of Algorithm 2 depend on it.
	fs.k = plan.K
	if fs.k < 0 {
		fs.k = 0
	}
	if fs.k > n {
		fs.k = n
	}
	s := len(plan.Aspects)
	if s == 0 {
		return fs // Baseline-only: no utilities, no heaps
	}
	switch plan.Alg {
	case core.AlgBaseline, core.AlgMMR:
		// Baseline ignores utilities; MMR is pairwise over the candidates
		// themselves. Neither consumes the matrix, so skip the scorer.
	default:
		fs.scorer = core.NewUtilityScorer(prob)
		fs.flat = make([]float64, n*s)
		fs.u = &core.Utilities{
			U:       make([][]float64, 0, n),
			Overall: make([]float64, 0, n),
		}
		if plan.Alg == core.AlgOptSelect && fs.k > 0 {
			fs.heaps = core.NewOptSelectHeaps(prob, fs.k)
		}
	}
	return fs
}

// Push appends one materialized candidate (in retrieval order) and runs
// the scoring stage over it: its utility row, its overall score, and —
// for OptSelect — its heap offers.
func (fs *FusedState) Push(d core.Doc) {
	fs.prob.Candidates = append(fs.prob.Candidates, d)
	i := fs.i
	fs.i++
	if fs.scorer == nil {
		return
	}
	s := len(fs.prob.Specs)
	row := fs.flat[i*s : (i+1)*s : (i+1)*s]
	overall := fs.scorer.ScoreInto(&fs.prob.Candidates[i], row)
	fs.u.U = append(fs.u.U, row)
	fs.u.Overall = append(fs.u.Overall, overall)
	if fs.heaps != nil {
		fs.heaps.Offer(i, row, overall, d.Rank)
	}
}

// Problem exposes the problem under construction (read-only use; the
// engine reads the candidate list when rendering results).
func (fs *FusedState) Problem() *core.Problem { return fs.prob }

// Finish runs the selection stage and releases the scorer's scratch. The
// dispatch mirrors core.Diversify exactly: Baseline/MMR bypass utilities,
// OptSelect consumes the prebuilt heaps, xQuAD/IASelect consume the
// streamed matrix, and an empty aspect set degrades to the baseline.
func (fs *FusedState) Finish() []core.Selected {
	defer fs.Close()
	p := fs.prob
	if len(p.Specs) == 0 {
		return core.Baseline(p)
	}
	switch fs.plan.Alg {
	case core.AlgBaseline:
		return core.Baseline(p)
	case core.AlgMMR:
		return core.MMR(p)
	case core.AlgOptSelect:
		if fs.k == 0 {
			return nil
		}
		addAspectHeapEvictions(fs.heaps.SpecEvictions())
		return core.OptSelectFrom(p, fs.u, fs.heaps)
	case core.AlgXQuAD:
		return core.XQuAD(p, fs.u)
	case core.AlgIASelect:
		return core.IASelect(p, fs.u)
	default:
		return core.Baseline(p)
	}
}

// Close releases the scorer's pooled scratch. Finish calls it; an aborted
// scan (context cancellation) must call it directly.
func (fs *FusedState) Close() {
	if fs.scorer != nil {
		fs.scorer.Close()
		fs.scorer = nil
	}
}
