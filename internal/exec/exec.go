// Package exec is the query-execution-plan layer: it names the stages of
// the per-query path — retrieval, candidate materialization, utility
// scoring, diversification — and lets callers choose how they compose.
//
// Two plans exist. The staged plan is the original call chain
// (ranking.Retrieve → candidate materialization → core.ComputeUtilities →
// core.Diversify), each stage a separate pass over the candidate set. The
// fused plan collapses them into one: the engine runs a single Block-Max
// MaxScore scan and, as each hit is materialized into its snippet
// surrogate, streams it through the utility scorer straight into the
// per-specialization bounded heaps of Algorithm 2 (FusedState) — so an
// ambiguous query produces its diversified SERP from one pass over the
// collection, with no intermediate result list, snippet strings, or
// second tokenization.
//
// Both plans share the same operator state (core.UtilityScorer,
// core.OptSelectHeaps, topk.Bounded) and the same float kernels, which is
// what makes their outputs bit-identical — the invariant the fused
// differential sweep enforces. The package deliberately does not import
// the engine: the engine implements the fused scan and depends on these
// types, while the facade selects between plans per query.
package exec

import (
	"errors"

	"repro/internal/core"
	"repro/internal/textsim"
)

// Mode selects the execution plan for a query.
type Mode int

const (
	// ModeStaged is the default plan: retrieval, materialization, utility
	// scoring and selection run as separate stages.
	ModeStaged Mode = iota
	// ModeFused collapses the stages into the single retrieval scan.
	ModeFused
)

// String names the mode for logs and /stats.
func (m Mode) String() string {
	if m == ModeFused {
		return "fused"
	}
	return "staged"
}

// ErrNotFusable reports that the engine cannot run the fused plan for this
// query — the snapshot is not quiescent (pending mutations require the
// shadowed-copy filtering of the staged path). Callers fall back to the
// staged plan; results are identical either way.
var ErrNotFusable = errors.New("exec: snapshot not fusable (pending mutations); use the staged plan")

// Plan is one query's execution plan: the stage parameters the facade
// resolves from its configuration plus the cached per-query artifacts
// (the R_q′ aspect lists). A nil *Plan means the staged default.
type Plan struct {
	// Mode selects staged or fused execution.
	Mode Mode
	// Query is the (normalized) query string of the main scan.
	Query string
	// Alg is the diversification algorithm of the selection stage.
	Alg core.Algorithm
	// K is the diversified result size (already resolved: a per-request
	// override or the pipeline default).
	K int
	// NumCandidates is |R_q|, the top-k of the main scan.
	NumCandidates int
	// Lambda and Threshold are the paper's λ and c parameters.
	Lambda    float64
	Threshold float64
	// Aspects are the specializations S_q with their cached R_q′ surrogate
	// lists, pre-interned under Lex. The fused operator seeds one bounded
	// heap per aspect from these.
	Aspects []core.Specialization
	// Lex is the lexicon the aspect vectors are interned under. The engine
	// substitutes its snapshot's lexicon when running the plan, which is
	// the same object for a quiescent engine.
	Lex *textsim.Lexicon
}

// Fused reports whether p selects the fused plan.
func (p *Plan) Fused() bool { return p != nil && p.Mode == ModeFused }

// RelNormalizer maps raw retrieval scores onto P(d|q) ∈ [0,1] — "the
// likelihood of document d being observed given q" (§3.1.2), derived from
// the retrieval score max-normalized over R_q. Models whose totals can go
// negative (LMDirichlet log-likelihoods) are shifted by the minimum score
// before normalizing, so Rel lands in [0,1] with rank order preserved.
// Shared by the staged materializer and the fused scan so the two plans
// normalize through literally the same code.
//
// Because the mapping needs the min and max of the FULL score column,
// every hit must be Observed before the first Rel call — this is the
// structural reason per-aspect thresholds cannot feed back into the main
// scan's block skipping (see the execution-plan notes in
// docs/ARCHITECTURE.md).
type RelNormalizer struct {
	min, max float64
	seen     bool
}

// Observe folds one retrieval score into the normalizer's range.
func (rn *RelNormalizer) Observe(score float64) {
	if !rn.seen {
		rn.min, rn.max = score, score
		rn.seen = true
		return
	}
	if score > rn.max {
		rn.max = score
	}
	if score < rn.min {
		rn.min = score
	}
}

// Rel maps one observed score onto P(d|q).
func (rn *RelNormalizer) Rel(score float64) float64 {
	switch {
	case rn.min >= 0:
		if rn.max > 0 {
			return score / rn.max
		}
		return 0
	case rn.max > rn.min:
		return (score - rn.min) / (rn.max - rn.min)
	default:
		// Every score equal and negative: equally relevant.
		return 1
	}
}
