package exec

import "sync/atomic"

// Process-wide fused-path counters, mirroring the index package's block
// I/O counters: cheap atomics the serving layer snapshots into /stats.
var (
	fusedQueries        atomic.Uint64
	stagedQueries       atomic.Uint64
	aspectHeapEvictions atomic.Uint64
	aspectBlocksSkipped atomic.Uint64
)

// CountQuery records which plan served a query.
func CountQuery(m Mode) {
	if m == ModeFused {
		fusedQueries.Add(1)
	} else {
		stagedQueries.Add(1)
	}
}

// addAspectHeapEvictions folds one fused scan's per-aspect heap evictions
// into the process counter.
func addAspectHeapEvictions(n uint64) {
	if n != 0 {
		aspectHeapEvictions.Add(n)
	}
}

// AddAspectBlocksSkipped credits posting blocks skipped during the aspect
// (R_q′) retrievals — the small-k scans whose heap thresholds form fast
// enough for Block-Max skipping to bite. The caller attributes them by
// snapshotting index.BlockIOStats around the aspect retrieval batch, so
// under concurrent traffic the attribution is approximate (other scans'
// skips in the same window are counted too); the totals remain exact in
// the index counters.
func AddAspectBlocksSkipped(n uint64) {
	if n != 0 {
		aspectBlocksSkipped.Add(n)
	}
}

// Counters is a point-in-time snapshot of the fused-path counters.
type Counters struct {
	// FusedQueries and StagedQueries count queries by the plan that
	// served them.
	FusedQueries  uint64
	StagedQueries uint64
	// AspectHeapEvictions counts full-heap displacements across the
	// per-specialization bounded heaps of fused OptSelect scans.
	AspectHeapEvictions uint64
	// AspectBlocksSkipped counts posting blocks skipped via the heap
	// thresholds of the aspect retrievals (see AddAspectBlocksSkipped).
	AspectBlocksSkipped uint64
}

// Stats snapshots the fused-path counters.
func Stats() Counters {
	return Counters{
		FusedQueries:        fusedQueries.Load(),
		StagedQueries:       stagedQueries.Load(),
		AspectHeapEvictions: aspectHeapEvictions.Load(),
		AspectBlocksSkipped: aspectBlocksSkipped.Load(),
	}
}
