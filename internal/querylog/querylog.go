// Package querylog models the query-log substrate of §3.1: a log Q is a
// set of records ⟨q_i, u_i, t_i, V_i, C_i⟩ storing, for each submitted
// query, the anonymized user, the submission timestamp, the URLs of the
// top-k results returned, and the URLs the user clicked. The package
// provides the record model, a TSV serialization (the stand-in for the
// AOL/MSN log formats), chronological per-user streams, and the popularity
// function f(·) that Algorithm 1 consumes.
package querylog

import (
	"sort"
	"time"
)

// Record is one query submission: ⟨q, u, t, V, C⟩ in the paper's notation.
type Record struct {
	User    string    // u: anonymized user identifier
	Time    time.Time // t: submission timestamp
	Query   string    // q: normalized query string
	Results []string  // V: URLs of the top-k results shown
	Clicks  []string  // C: URLs of the clicked results (subset of V)
}

// Log is an in-memory query log.
type Log struct {
	Records []Record
}

// New returns a Log over the given records (not copied).
func New(records []Record) *Log { return &Log{Records: records} }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.Records) }

// SortChronological orders records by (user, time, query) so that per-user
// streams are contiguous and time-ordered. Sorting is stable with a full
// tie-break, so logs are canonical after sorting.
func (l *Log) SortChronological() {
	sort.SliceStable(l.Records, func(i, j int) bool {
		a, b := l.Records[i], l.Records[j]
		if a.User != b.User {
			return a.User < b.User
		}
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		return a.Query < b.Query
	})
}

// UserStreams returns each user's chronologically ordered submissions.
// The outer slice is ordered by user id for determinism.
func (l *Log) UserStreams() [][]Record {
	sorted := make([]Record, len(l.Records))
	copy(sorted, l.Records)
	tmp := Log{Records: sorted}
	tmp.SortChronological()

	var streams [][]Record
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i == len(sorted) || sorted[i].User != sorted[start].User {
			streams = append(streams, sorted[start:i])
			start = i
		}
	}
	return streams
}

// Freq is the paper's popularity function f(·): query → submission count.
type Freq map[string]int

// Of returns f(q), zero for unseen queries.
func (f Freq) Of(q string) int { return f[q] }

// Frequencies computes f over the whole log.
func (l *Log) Frequencies() Freq {
	f := make(Freq, len(l.Records)/2+1)
	for _, r := range l.Records {
		f[r.Query]++
	}
	return f
}

// Stats summarizes a log, mirroring the corpus descriptions of Appendix B
// ("about 20 millions of queries issued by about 650,000 different users").
type Stats struct {
	Queries        int           // total submissions
	DistinctQuery  int           // distinct normalized queries
	Users          int           // distinct users
	Span           time.Duration // last timestamp − first timestamp
	ClickedQueries int           // submissions with at least one click
}

// ComputeStats scans the log once and returns summary statistics.
func (l *Log) ComputeStats() Stats {
	var s Stats
	s.Queries = len(l.Records)
	if s.Queries == 0 {
		return s
	}
	distinct := make(map[string]struct{})
	users := make(map[string]struct{})
	first, last := l.Records[0].Time, l.Records[0].Time
	for _, r := range l.Records {
		distinct[r.Query] = struct{}{}
		users[r.User] = struct{}{}
		if r.Time.Before(first) {
			first = r.Time
		}
		if r.Time.After(last) {
			last = r.Time
		}
		if len(r.Clicks) > 0 {
			s.ClickedQueries++
		}
	}
	s.DistinctQuery = len(distinct)
	s.Users = len(users)
	s.Span = last.Sub(first)
	return s
}

// SplitByTime partitions the log chronologically: the earliest trainFrac
// of records form the training log, the remainder the test log. This is
// the 70/30 split of Appendix C ("the first one ... was used for training
// ... and the second one for testing").
func (l *Log) SplitByTime(trainFrac float64) (train, test *Log) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	sorted := make([]Record, len(l.Records))
	copy(sorted, l.Records)
	sort.SliceStable(sorted, func(i, j int) bool {
		if !sorted[i].Time.Equal(sorted[j].Time) {
			return sorted[i].Time.Before(sorted[j].Time)
		}
		if sorted[i].User != sorted[j].User {
			return sorted[i].User < sorted[j].User
		}
		return sorted[i].Query < sorted[j].Query
	})
	cut := int(float64(len(sorted)) * trainFrac)
	return New(sorted[:cut]), New(sorted[cut:])
}
