package querylog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func at(min int) time.Time {
	return time.Date(2006, 3, 1, 10, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute)
}

func sampleLog() *Log {
	return New([]Record{
		{User: "u2", Time: at(5), Query: "leopard tank", Results: []string{"url3"}, Clicks: []string{"url3"}},
		{User: "u1", Time: at(0), Query: "leopard", Results: []string{"url1", "url2"}},
		{User: "u1", Time: at(2), Query: "leopard mac os x", Results: []string{"url2"}, Clicks: []string{"url2"}},
		{User: "u2", Time: at(1), Query: "leopard", Results: []string{"url1"}},
		{User: "u1", Time: at(90), Query: "apple", Results: []string{"url4"}},
	})
}

func TestSortChronological(t *testing.T) {
	l := sampleLog()
	l.SortChronological()
	gotUsers := make([]string, len(l.Records))
	for i, r := range l.Records {
		gotUsers[i] = r.User
	}
	want := []string{"u1", "u1", "u1", "u2", "u2"}
	if !reflect.DeepEqual(gotUsers, want) {
		t.Errorf("user order = %v, want %v", gotUsers, want)
	}
	if l.Records[0].Query != "leopard" || l.Records[3].Query != "leopard" {
		t.Errorf("per-user time order broken: %v", l.Records)
	}
}

func TestUserStreams(t *testing.T) {
	streams := sampleLog().UserStreams()
	if len(streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(streams))
	}
	if streams[0][0].User != "u1" || len(streams[0]) != 3 {
		t.Errorf("stream 0 = %v", streams[0])
	}
	if streams[1][0].User != "u2" || len(streams[1]) != 2 {
		t.Errorf("stream 1 = %v", streams[1])
	}
	for _, s := range streams {
		for i := 1; i < len(s); i++ {
			if s[i].Time.Before(s[i-1].Time) {
				t.Error("stream not time-ordered")
			}
		}
	}
}

func TestFrequencies(t *testing.T) {
	f := sampleLog().Frequencies()
	if f.Of("leopard") != 2 {
		t.Errorf("f(leopard) = %d, want 2", f.Of("leopard"))
	}
	if f.Of("apple") != 1 {
		t.Errorf("f(apple) = %d, want 1", f.Of("apple"))
	}
	if f.Of("unseen") != 0 {
		t.Errorf("f(unseen) = %d, want 0", f.Of("unseen"))
	}
}

func TestComputeStats(t *testing.T) {
	s := sampleLog().ComputeStats()
	if s.Queries != 5 || s.DistinctQuery != 4 || s.Users != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.Span != 90*time.Minute {
		t.Errorf("span = %v, want 90m", s.Span)
	}
	if s.ClickedQueries != 2 {
		t.Errorf("clicked = %d, want 2", s.ClickedQueries)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := New(nil).ComputeStats()
	if s.Queries != 0 || s.Users != 0 || s.Span != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestSplitByTime(t *testing.T) {
	l := sampleLog()
	train, test := l.SplitByTime(0.6)
	if train.Len() != 3 || test.Len() != 2 {
		t.Fatalf("split = %d/%d, want 3/2", train.Len(), test.Len())
	}
	// Every train record must precede (or equal) every test record in time.
	maxTrain := train.Records[0].Time
	for _, r := range train.Records {
		if r.Time.After(maxTrain) {
			maxTrain = r.Time
		}
	}
	for _, r := range test.Records {
		if r.Time.Before(maxTrain) {
			t.Errorf("test record at %v precedes train max %v", r.Time, maxTrain)
		}
	}
}

func TestSplitByTimeClamp(t *testing.T) {
	l := sampleLog()
	train, test := l.SplitByTime(-1)
	if train.Len() != 0 || test.Len() != 5 {
		t.Error("negative fraction not clamped")
	}
	train, test = l.SplitByTime(2)
	if train.Len() != 5 || test.Len() != 0 {
		t.Error("fraction > 1 not clamped")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	l := sampleLog()
	l.SortChronological()
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, l.Records) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got.Records, l.Records)
	}
}

func TestTSVEmptyLists(t *testing.T) {
	l := New([]Record{{User: "u", Time: at(0), Query: "q"}})
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\t-\t-") {
		t.Errorf("empty lists not encoded as '-': %q", buf.String())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Records[0].Results != nil || got.Records[0].Clicks != nil {
		t.Errorf("empty lists decoded as %v/%v", got.Records[0].Results, got.Records[0].Clicks)
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\nu\t0\tq\t-\t-\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("len = %d, want 1", got.Len())
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"u\t0\tq\t-\n",           // 4 fields
		"u\tnotatime\tq\t-\t-\n", // bad timestamp
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) accepted malformed input", in)
		}
	}
}

func TestWriteRejectsTabInQuery(t *testing.T) {
	l := New([]Record{{User: "u", Time: at(0), Query: "bad\tquery"}})
	if err := Write(&bytes.Buffer{}, l); err == nil {
		t.Error("query with tab accepted")
	}
}

// Property: TSV round-trips arbitrary well-formed records.
func TestTSVRoundTripProperty(t *testing.T) {
	prop := func(userRaw, queryRaw string, ms int64, nRes, nClk uint8) bool {
		user := strings.Map(func(r rune) rune {
			if r == '\t' || r == '\n' || r == ' ' || r == '\r' {
				return 'x'
			}
			return r
		}, userRaw)
		if user == "" {
			user = "u"
		}
		query := strings.Join(strings.Fields(strings.Map(func(r rune) rune {
			if r == '\t' || r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, queryRaw)), " ")
		if query == "" {
			query = "q"
		}
		if strings.HasPrefix(user, "#") {
			user = "u" + user
		}
		var res, clk []string
		for i := 0; i < int(nRes%5); i++ {
			res = append(res, "http://example.com/"+string(rune('a'+i)))
		}
		for i := 0; i < int(nClk%3); i++ {
			clk = append(clk, "http://example.com/"+string(rune('a'+i)))
		}
		rec := Record{User: user, Time: time.UnixMilli(ms % 1e15).UTC(), Query: query, Results: res, Clicks: clk}
		var buf bytes.Buffer
		if err := Write(&buf, New([]Record{rec})); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Len() != 1 {
			return false
		}
		return reflect.DeepEqual(got.Records[0], rec)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
