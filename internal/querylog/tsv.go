package querylog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// TSV serialization. One record per line:
//
//	user <TAB> unix_millis <TAB> query <TAB> results <TAB> clicks
//
// where results and clicks are space-joined URL lists (URLs contain no
// whitespace; queries are normalized and contain no tabs). Empty lists are
// written as "-" so every line has exactly five fields. This mirrors the
// flat formats the AOL and MSN logs shipped in.

// ErrBadRecord wraps line-level parse failures.
var ErrBadRecord = errors.New("querylog: malformed record")

const emptyField = "-"

func joinList(xs []string) string {
	if len(xs) == 0 {
		return emptyField
	}
	return strings.Join(xs, " ")
}

func splitList(s string) []string {
	if s == emptyField || s == "" {
		return nil
	}
	return strings.Fields(s)
}

// Write serializes the log to w in TSV form.
func Write(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	for i, r := range l.Records {
		if strings.ContainsAny(r.Query, "\t\n") {
			return fmt.Errorf("%w: record %d: query contains tab/newline", ErrBadRecord, i)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%s\t%s\n",
			r.User, r.Time.UnixMilli(), r.Query, joinList(r.Results), joinList(r.Clicks)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a TSV-serialized log. Blank lines and lines starting with '#'
// are skipped.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var records []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("%w: line %d: got %d fields, want 5", ErrBadRecord, lineNo, len(fields))
		}
		ms, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad timestamp %q", ErrBadRecord, lineNo, fields[1])
		}
		records = append(records, Record{
			User:    fields[0],
			Time:    time.UnixMilli(ms).UTC(),
			Query:   fields[2],
			Results: splitList(fields[3]),
			Clicks:  splitList(fields[4]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(records), nil
}
