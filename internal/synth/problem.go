package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/textsim"
)

// ProblemSpec parameterizes the pure-algorithm problem generator behind
// the Table 2 efficiency experiment: candidate sets of size N with
// NumSpecs specializations, where each candidate is useful (positive
// utility) for at most a few specializations — the sparsity pattern real
// snippet utilities exhibit.
type ProblemSpec struct {
	Seed     int64
	N        int     // |R_q|: candidates to diversify
	K        int     // |S|: diversified result size
	NumSpecs int     // |S_q|
	PerSpec  int     // |R_q′|
	Lambda   float64 // λ (0 → paper's 0.15)
	// UsefulProb is the probability that a candidate has positive affinity
	// to any given specialization (default 0.35).
	UsefulProb float64
}

func (s ProblemSpec) withDefaults() ProblemSpec {
	if s.N == 0 {
		s.N = 1000
	}
	if s.K == 0 {
		s.K = 10
	}
	if s.NumSpecs == 0 {
		s.NumSpecs = 8
	}
	if s.PerSpec == 0 {
		s.PerSpec = 20
	}
	if s.Lambda == 0 {
		s.Lambda = 0.15
	}
	if s.UsefulProb == 0 {
		s.UsefulProb = 0.35
	}
	return s
}

// GenerateProblem builds a synthetic diversification problem whose
// candidate vectors share terms with the specialization result vectors,
// so utilities computed by core.ComputeUtilities show the sparse,
// skewed structure of the real pipeline. Candidates are assigned Zipf-
// decaying relevance, mirroring retrieval score decay.
func GenerateProblem(spec ProblemSpec) *core.Problem {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))

	// Specialization probabilities: Zipf over specs, normalized.
	z := NewZipf(spec.NumSpecs, 1.0)
	specs := make([]core.Specialization, spec.NumSpecs)
	for j := range specs {
		results := make([]core.SpecResult, spec.PerSpec)
		for r := range results {
			results[r] = core.SpecResult{
				ID:     fmt.Sprintf("spec%02d-res%03d", j, r),
				Rank:   r + 1,
				Vector: specVector(j, r%4),
			}
		}
		specs[j] = core.Specialization{
			Query:   fmt.Sprintf("query intent %02d", j),
			Prob:    z.Prob(j),
			Results: results,
		}
	}

	cands := make([]core.Doc, spec.N)
	for i := range cands {
		var vec textsim.Vector
		if rng.Float64() < spec.UsefulProb*float64(spec.NumSpecs)/(float64(spec.NumSpecs)+1) {
			// Useful for one (occasionally two) specializations.
			j := rng.Intn(spec.NumSpecs)
			vec = candVector(j, rng.Intn(4), rng.Intn(1000))
		} else {
			vec = textsim.FromTokens([]string{
				fmt.Sprintf("offtopic%05d", rng.Intn(10000)),
				fmt.Sprintf("junk%04d", rng.Intn(5000)),
			})
		}
		cands[i] = core.Doc{
			ID:     fmt.Sprintf("d%06d", i),
			Rank:   i + 1,
			Rel:    1 / (1 + 0.01*float64(i)),
			Vector: vec,
		}
	}

	return &core.Problem{
		Query:      "synthetic ambiguous query",
		Candidates: cands,
		Specs:      specs,
		K:          spec.K,
		Lambda:     spec.Lambda,
	}
}

// specVector gives specialization result r its term profile; variant
// differentiates results within the spec so cosines vary.
func specVector(j, variant int) textsim.Vector {
	return textsim.FromTokens([]string{
		fmt.Sprintf("intent%02d", j),
		fmt.Sprintf("intent%02dvar%d", j, variant),
		"shared",
	})
}

// candVector gives a useful candidate a profile overlapping specVector(j).
func candVector(j, variant, salt int) textsim.Vector {
	return textsim.FromTokens([]string{
		fmt.Sprintf("intent%02d", j),
		fmt.Sprintf("intent%02dvar%d", j, variant),
		fmt.Sprintf("salt%04d", salt),
	})
}
