// Package synth generates the synthetic stand-ins for the paper's
// proprietary resources, as inventoried in DESIGN.md §1: a ClueWeb-B-like
// corpus with TREC-2009-Diversity-style topics/sub-topics/qrels, AOL-like
// and MSN-like query logs, and the pure-algorithm problem instances of the
// Table 2 efficiency experiment. Every generator is fully deterministic
// given its seed.
package synth

import (
	"math"
	"math/rand"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^S via a
// precomputed CDF. It is the skew model for query popularity, topic
// popularity and specialization popularity throughout the generators
// (query-log frequency distributions are classically Zipfian).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over {0,...,n-1} with exponent s (s > 0; the
// conventional choice 1.0 is used by the presets).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one value in [0, N).
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of value i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
