package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/trec"
)

// CorpusSpec parameterizes the synthetic ClueWeb-B/TREC-testbed generator.
// The defaults (DefaultCorpusSpec) mirror the TREC 2009 Web track
// Diversity Task shape at laptop scale: 50 topics with 3–8 sub-topics and
// sub-topic-level judgements.
type CorpusSpec struct {
	Seed            int64
	NumTopics       int // number of ambiguous/faceted topics
	MinSubtopics    int // inclusive
	MaxSubtopics    int // inclusive
	DocsPerSubtopic int // relevant documents generated per sub-topic
	// GenericDocsPerTopic are documents about the topic (they contain the
	// head term, so the ambiguous query retrieves them) that serve *no*
	// specific sub-topic — the generic pages that crowd real ambiguous
	// SERPs. They are judged non-relevant at sub-topic level.
	GenericDocsPerTopic int
	NoiseDocs           int // background documents relevant to nothing
	DocLength           int // mean document length in tokens
	// SearchedFrac is the probability that a sub-topic is ever searched
	// by users (appears in query logs with non-zero popularity). TREC
	// sub-topics are assessor-identified; real logs only reveal the
	// readings users actually refine to, and that gap is what separates
	// relevance-aware diversifiers from pure-coverage ones. The two most
	// popular sub-topics of each topic are always searched (a topic needs
	// ≥ 2 specializations to be ambiguous). 0 means the default 0.8;
	// pass a value ≥ 1 to make every sub-topic searched.
	SearchedFrac    float64
	BackgroundVocab int // size of the shared background vocabulary
	TopicVocab      int // topic-specific terms per topic
	SubtopicVocab   int // sub-topic-specific terms per sub-topic
}

// DefaultCorpusSpec returns the configuration used by the effectiveness
// experiments (Table 3 shape at reduced scale).
func DefaultCorpusSpec() CorpusSpec {
	return CorpusSpec{
		Seed:                1,
		NumTopics:           50,
		MinSubtopics:        3,
		MaxSubtopics:        8,
		DocsPerSubtopic:     40,
		GenericDocsPerTopic: 40,
		NoiseDocs:           2000,
		DocLength:           60,
		BackgroundVocab:     3000,
		TopicVocab:          25,
		SubtopicVocab:       15,
	}
}

func (c CorpusSpec) withDefaults() CorpusSpec {
	d := DefaultCorpusSpec()
	if c.NumTopics == 0 {
		c.NumTopics = d.NumTopics
	}
	if c.MinSubtopics == 0 {
		c.MinSubtopics = d.MinSubtopics
	}
	if c.MaxSubtopics == 0 {
		c.MaxSubtopics = d.MaxSubtopics
	}
	if c.DocsPerSubtopic == 0 {
		c.DocsPerSubtopic = d.DocsPerSubtopic
	}
	// 0 means "default"; pass a negative value for "no generic documents".
	if c.GenericDocsPerTopic == 0 {
		c.GenericDocsPerTopic = d.GenericDocsPerTopic
	}
	if c.GenericDocsPerTopic < 0 {
		c.GenericDocsPerTopic = 0
	}
	if c.DocLength == 0 {
		c.DocLength = d.DocLength
	}
	if c.BackgroundVocab == 0 {
		c.BackgroundVocab = d.BackgroundVocab
	}
	if c.TopicVocab == 0 {
		c.TopicVocab = d.TopicVocab
	}
	if c.SubtopicVocab == 0 {
		c.SubtopicVocab = d.SubtopicVocab
	}
	if c.SearchedFrac == 0 {
		c.SearchedFrac = 0.8
	}
	if c.SearchedFrac > 1 {
		c.SearchedFrac = 1
	}
	return c
}

// Testbed bundles everything the effectiveness experiments need: the
// corpus, the diversity topics with their sub-topics, the sub-topic-level
// qrels, and the query strings (topic query = the ambiguous query;
// sub-topic queries = its specializations).
type Testbed struct {
	Spec   CorpusSpec
	Docs   []engine.Document
	Topics trec.Topics
	Qrels  *trec.Qrels
	// SubtopicQuery[topicID][subtopicID] is the specialization query that
	// targets one sub-topic (head term + sub-topic terms). Subtopic IDs
	// are 1-based as in TREC qrels.
	SubtopicQuery map[int]map[int]string
	// SubtopicPopularity[topicID][subtopicID] is the ground-truth user
	// interest P(q'|q) the log generator follows (Zipf over sub-topics).
	SubtopicPopularity map[int]map[int]float64
}

// TopicQuery returns the ambiguous query string of a topic.
func (tb *Testbed) TopicQuery(topicID int) string {
	t, _ := tb.Topics.ByID(topicID)
	return t.Query
}

// GenerateTestbed builds the full synthetic testbed deterministically from
// the spec. Document language model per (topic t, sub-topic s):
// the topic head term (which also IS the ambiguous query) appears in every
// document of the topic, sub-topic terms dominate, topic terms are shared
// across the topic's sub-topics, and background terms (Zipf-distributed)
// fill the remainder — so an ambiguous query retrieves a sub-topic-mixed
// result list, while a specialization query retrieves its own sub-topic's
// documents, exactly the structure the paper's method exploits.
func GenerateTestbed(spec CorpusSpec) *Testbed {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	background := NewZipf(spec.BackgroundVocab, 1.0)

	tb := &Testbed{
		Spec:               spec,
		Qrels:              trec.NewQrels(),
		SubtopicQuery:      make(map[int]map[int]string),
		SubtopicPopularity: make(map[int]map[int]float64),
	}

	bgWord := func(i int) string { return fmt.Sprintf("bg%04d", i) }

	for t := 1; t <= spec.NumTopics; t++ {
		head := fmt.Sprintf("topic%02d", t)
		nSubs := spec.MinSubtopics
		if spec.MaxSubtopics > spec.MinSubtopics {
			nSubs += rng.Intn(spec.MaxSubtopics - spec.MinSubtopics + 1)
		}
		topic := trec.Topic{
			ID:          t,
			Query:       head,
			Description: fmt.Sprintf("Synthetic ambiguous topic %d with %d intents.", t, nSubs),
		}
		topicTerms := make([]string, spec.TopicVocab)
		for i := range topicTerms {
			topicTerms[i] = fmt.Sprintf("t%02dw%02d", t, i)
		}

		tb.SubtopicQuery[t] = make(map[int]string, nSubs)
		tb.SubtopicPopularity[t] = make(map[int]float64, nSubs)
		// Searched sub-topics: the first two always, the rest with
		// probability SearchedFrac. Popularity is Zipf over the searched
		// set only; unsearched sub-topics never appear in logs.
		var searched []int
		for s := 1; s <= nSubs; s++ {
			if s <= 2 || rng.Float64() < spec.SearchedFrac {
				searched = append(searched, s)
			}
		}
		popularity := NewZipf(len(searched), 1.0)
		for rank, s := range searched {
			tb.SubtopicPopularity[t][s] = popularity.Prob(rank)
		}

		for s := 1; s <= nSubs; s++ {
			subTerms := make([]string, spec.SubtopicVocab)
			for i := range subTerms {
				subTerms[i] = fmt.Sprintf("t%02ds%02dw%02d", t, s, i)
			}
			topic.Subtopics = append(topic.Subtopics, trec.Subtopic{
				ID:          s,
				Type:        "inf",
				Description: fmt.Sprintf("Intent %d of topic %d.", s, t),
			})
			// Specialization query: head + two sub-topic terms, so the
			// lexical IsSpecialization predicate holds.
			tb.SubtopicQuery[t][s] = fmt.Sprintf("%s %s %s", head, subTerms[0], subTerms[1])

			// Mainstream intents own the head of the ambiguous SERP on the
			// real web: pages serving the popular reading use the query
			// term heavily, pages serving niche readings barely mention
			// it. Scaling the head-term rate by the intent's popularity
			// reproduces that skew — without it the synthetic DPH baseline
			// would be accidentally diverse and diversification would have
			// nothing to add (the paper's motivating observation, §2).
			headScale := 0.5 + 1.1*tb.SubtopicPopularity[t][s]
			for d := 0; d < spec.DocsPerSubtopic; d++ {
				id := fmt.Sprintf("doc-t%02d-s%02d-%03d", t, s, d)
				body := composeDoc(rng, varyLength(rng, spec.DocLength), head, headScale, topicTerms, subTerms, background, bgWord)
				tb.Docs = append(tb.Docs, engine.Document{
					ID:    id,
					Title: fmt.Sprintf("%s %s", head, subTerms[0]),
					Body:  body,
				})
				tb.Qrels.Add(t, s, id, 1)
				// A small fraction of documents genuinely serve two
				// intents, as on the real web.
				if d%7 == 3 && s > 1 {
					other := 1 + rng.Intn(nSubs)
					if other != s {
						tb.Qrels.Add(t, other, id, 1)
					}
				}
			}
		}
		// Generic topic pages: head + topic + background vocabulary only,
		// no sub-topic terms, no sub-topic judgement.
		for g := 0; g < spec.GenericDocsPerTopic; g++ {
			id := fmt.Sprintf("doc-t%02d-gen-%03d", t, g)
			u := rng.Float64()
			headRate := 0.04 + 0.14*u*u
			genLen := varyLength(rng, spec.DocLength)
			words := make([]string, 0, genLen)
			for len(words) < genLen {
				r := rng.Float64()
				switch {
				case r < headRate:
					words = append(words, head)
				case r < headRate+0.20:
					words = append(words, topicTerms[rng.Intn(len(topicTerms))])
				default:
					words = append(words, bgWord(background.Sample(rng)))
				}
			}
			tb.Docs = append(tb.Docs, engine.Document{
				ID:    id,
				Title: head + " overview",
				Body:  join(words),
			})
		}
		tb.Topics = append(tb.Topics, topic)
	}

	for i := 0; i < spec.NoiseDocs; i++ {
		id := fmt.Sprintf("doc-noise-%05d", i)
		words := make([]string, varyLength(rng, spec.DocLength))
		for j := range words {
			words[j] = bgWord(background.Sample(rng))
		}
		tb.Docs = append(tb.Docs, engine.Document{
			ID:    id,
			Title: "noise",
			Body:  join(words),
		})
	}
	return tb
}

// composeDoc draws one sub-topic document: a per-document head-term rate
// (heavy-tailed between 3% and 15%, so retrieval scores for the ambiguous
// query spread realistically instead of clustering), ~60% sub-topic terms,
// ~12% topic terms, remainder background. The small topic-term share keeps
// cross-sub-topic snippet similarity low, as on real web text where pages
// about different readings of a query share little beyond the query term.
func composeDoc(rng *rand.Rand, length int, head string, headScale float64, topicTerms, subTerms []string, background *Zipf, bgWord func(int) string) string {
	u := rng.Float64()
	headRate := (0.03 + 0.12*u*u) * headScale
	if headRate > 0.20 {
		headRate = 0.20
	}
	words := make([]string, 0, length)
	for len(words) < length {
		r := rng.Float64()
		switch {
		case r < headRate:
			words = append(words, head)
		case r < headRate+0.60:
			words = append(words, subTerms[rng.Intn(len(subTerms))])
		case r < headRate+0.72:
			words = append(words, topicTerms[rng.Intn(len(topicTerms))])
		default:
			words = append(words, bgWord(background.Sample(rng)))
		}
	}
	return join(words)
}

// varyLength draws a document length around the mean: uniform in
// [0.6·mean, 1.6·mean]. Constant-length documents would collapse the
// single-term DPH score distribution into a few tf plateaus, where ranking
// ties hide the relevance signal the diversifiers mix with.
func varyLength(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return mean
	}
	l := int(float64(mean) * (0.6 + rng.Float64()))
	if l < 1 {
		l = 1
	}
	return l
}

func join(words []string) string {
	n := 0
	for _, w := range words {
		n += len(w) + 1
	}
	b := make([]byte, 0, n)
	for i, w := range words {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, w...)
	}
	return string(b)
}
