package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/querylog"
)

// LogSpec parameterizes the synthetic query-log generator. Presets
// AOLLike and MSNLike mirror the two logs of Appendix B at laptop scale:
// the AOL log spans three months with more users, the MSN log one month.
type LogSpec struct {
	Seed     int64
	Name     string        // log identifier ("aol", "msn", ...)
	Users    int           // distinct users
	Sessions int           // total sessions to generate
	Start    time.Time     // first timestamp
	Span     time.Duration // log time span
	// AmbiguousProb is the probability that a session is about one of the
	// testbed's ambiguous topics (the rest are background noise sessions).
	AmbiguousProb float64
	// RefineProb is the probability that a user who submitted an ambiguous
	// topic query then refines it to a specialization in the same session
	// — the behavioural signal Algorithm 1 mines.
	RefineProb float64
	// ClickProb is the probability that a submitted query receives a click.
	ClickProb float64
	// NoiseVocab is the number of distinct one-off noise queries.
	NoiseVocab int
}

// AOLLike returns the AOL-shaped preset: ~3 months, larger user base.
func AOLLike(seed int64, sessions int) LogSpec {
	return LogSpec{
		Seed:          seed,
		Name:          "aol",
		Users:         sessions / 3,
		Sessions:      sessions,
		Start:         time.Date(2006, 3, 1, 0, 0, 0, 0, time.UTC),
		Span:          92 * 24 * time.Hour,
		AmbiguousProb: 0.55,
		RefineProb:    0.65,
		ClickProb:     0.55,
		NoiseVocab:    2000,
	}
}

// MSNLike returns the MSN-shaped preset: one month, denser per-user
// activity, slightly stronger refinement behaviour (the paper's recall is
// higher on MSN: 65% vs 61%).
func MSNLike(seed int64, sessions int) LogSpec {
	return LogSpec{
		Seed:          seed,
		Name:          "msn",
		Users:         sessions / 5,
		Sessions:      sessions,
		Start:         time.Date(2006, 5, 1, 0, 0, 0, 0, time.UTC),
		Span:          31 * 24 * time.Hour,
		AmbiguousProb: 0.60,
		RefineProb:    0.72,
		ClickProb:     0.60,
		NoiseVocab:    1500,
	}
}

func (s LogSpec) withDefaults() LogSpec {
	if s.Users == 0 {
		s.Users = 100
	}
	if s.Sessions == 0 {
		s.Sessions = 1000
	}
	if s.Start.IsZero() {
		s.Start = time.Date(2006, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	if s.Span == 0 {
		s.Span = 30 * 24 * time.Hour
	}
	if s.AmbiguousProb == 0 {
		s.AmbiguousProb = 0.5
	}
	if s.RefineProb == 0 {
		s.RefineProb = 0.6
	}
	if s.ClickProb == 0 {
		s.ClickProb = 0.5
	}
	if s.NoiseVocab == 0 {
		s.NoiseVocab = 1000
	}
	return s
}

// GenerateLog simulates user sessions against the testbed's topics:
// ambiguous sessions submit a topic query and, with RefineProb, follow it
// with a specialization drawn from the topic's ground-truth sub-topic
// popularity; noise sessions submit unrelated queries. Timestamps place
// in-session queries within a minute or two of each other and separate
// sessions widely, so query-flow-graph session splitting faces the same
// problem shape it would on the AOL/MSN logs.
func GenerateLog(tb *Testbed, spec LogSpec) *querylog.Log {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	topicZipf := NewZipf(len(tb.Topics), 1.0)

	var records []querylog.Record
	emit := func(user string, at time.Time, q string, clicked bool) {
		rec := querylog.Record{
			User:  user,
			Time:  at,
			Query: q,
			// Results: three synthetic URLs standing in for the SERP.
			Results: []string{
				"http://serp.example/" + sanitize(q) + "/1",
				"http://serp.example/" + sanitize(q) + "/2",
				"http://serp.example/" + sanitize(q) + "/3",
			},
		}
		if clicked {
			rec.Clicks = []string{rec.Results[0]}
		}
		records = append(records, rec)
	}

	for s := 0; s < spec.Sessions; s++ {
		user := fmt.Sprintf("u%06d", rng.Intn(spec.Users))
		at := spec.Start.Add(time.Duration(rng.Int63n(int64(spec.Span))))

		if rng.Float64() < spec.AmbiguousProb && len(tb.Topics) > 0 {
			topic := tb.Topics[topicZipf.Sample(rng)]
			emit(user, at, topic.Query, rng.Float64() < spec.ClickProb*0.4)
			if rng.Float64() < spec.RefineProb {
				// Choose the specialization by ground-truth popularity.
				sub := sampleSubtopic(rng, tb.SubtopicPopularity[topic.ID])
				at = at.Add(time.Duration(20+rng.Intn(100)) * time.Second)
				emit(user, at, tb.SubtopicQuery[topic.ID][sub], rng.Float64() < spec.ClickProb)
				// Occasionally refine once more to another intent.
				if rng.Float64() < 0.15 {
					sub2 := sampleSubtopic(rng, tb.SubtopicPopularity[topic.ID])
					if sub2 != sub {
						at = at.Add(time.Duration(20+rng.Intn(100)) * time.Second)
						emit(user, at, tb.SubtopicQuery[topic.ID][sub2], rng.Float64() < spec.ClickProb)
					}
				}
			}
		} else {
			// Noise session: one or two unrelated queries.
			n := 1 + rng.Intn(2)
			for i := 0; i < n; i++ {
				q := NoiseQuery(rng.Intn(spec.NoiseVocab))
				emit(user, at, q, rng.Float64() < spec.ClickProb)
				at = at.Add(time.Duration(30+rng.Intn(90)) * time.Second)
			}
		}
	}
	l := querylog.New(records)
	l.SortChronological()
	return l
}

// NoiseQuery returns the i-th query of the noise vocabulary (0-based,
// i < LogSpec.NoiseVocab). Exported so consumers that need log-known cold
// queries — the serving layer's /queries endpoint, test query mixes —
// stay in sync with the generator's format.
func NoiseQuery(i int) string {
	return fmt.Sprintf("noise query %04d", i)
}

// sampleSubtopic draws a sub-topic ID from a (possibly sparse) popularity
// map. Only searched sub-topics carry mass; iteration is over sorted IDs
// for determinism.
func sampleSubtopic(rng *rand.Rand, popularity map[int]float64) int {
	ids := make([]int, 0, len(popularity))
	for s := range popularity {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	if len(ids) == 0 {
		return 1
	}
	u := rng.Float64()
	cum := 0.0
	for _, s := range ids {
		cum += popularity[s]
		if u <= cum {
			return s
		}
	}
	return ids[len(ids)-1]
}

func sanitize(q string) string {
	b := []byte(q)
	for i := range b {
		if b[i] == ' ' {
			b[i] = '-'
		}
	}
	return string(b)
}
