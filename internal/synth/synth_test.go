package synth

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

func TestZipfBasics(t *testing.T) {
	z := NewZipf(10, 1.0)
	if z.N() != 10 {
		t.Fatalf("N = %d", z.N())
	}
	total := 0.0
	prev := math.Inf(1)
	for i := 0; i < 10; i++ {
		p := z.Prob(i)
		if p <= 0 || p > prev+1e-12 {
			t.Errorf("Prob(%d) = %f not decreasing", i, p)
		}
		prev = p
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("probabilities sum to %f", total)
	}
	if z.Prob(-1) != 0 || z.Prob(10) != 0 {
		t.Error("out-of-range Prob non-zero")
	}
}

func TestZipfSampleMatchesDistribution(t *testing.T) {
	z := NewZipf(5, 1.0)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 5)
	n := 50000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for i := 0; i < 5; i++ {
		got := float64(counts[i]) / float64(n)
		want := z.Prob(i)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("empirical P(%d) = %f, want %f", i, got, want)
		}
	}
	// Rank 0 must dominate.
	if counts[0] <= counts[4] {
		t.Error("Zipf head not dominant")
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(0, 1.0)
	if z.N() != 1 {
		t.Errorf("N = %d, want 1 (clamped)", z.N())
	}
	rng := rand.New(rand.NewSource(1))
	if z.Sample(rng) != 0 {
		t.Error("single-value sampler returned non-zero")
	}
}

func smallSpec() CorpusSpec {
	return CorpusSpec{
		Seed:                7,
		NumTopics:           5,
		MinSubtopics:        2,
		MaxSubtopics:        4,
		DocsPerSubtopic:     6,
		GenericDocsPerTopic: 3,
		NoiseDocs:           20,
		DocLength:           30,
		BackgroundVocab:     200,
		TopicVocab:          8,
		SubtopicVocab:       6,
	}
}

func TestGenerateTestbedShape(t *testing.T) {
	tb := GenerateTestbed(smallSpec())
	if len(tb.Topics) != 5 {
		t.Fatalf("topics = %d", len(tb.Topics))
	}
	totalSubs := 0
	for _, topic := range tb.Topics {
		n := len(topic.Subtopics)
		if n < 2 || n > 4 {
			t.Errorf("topic %d has %d subtopics", topic.ID, n)
		}
		totalSubs += n
		// Every subtopic must have a query; at least the two most popular
		// must be searched (positive popularity).
		for _, sub := range topic.Subtopics {
			q := tb.SubtopicQuery[topic.ID][sub.ID]
			if q == "" {
				t.Errorf("missing subtopic query %d.%d", topic.ID, sub.ID)
			}
		}
		searched := tb.SubtopicPopularity[topic.ID]
		if len(searched) < 2 {
			t.Errorf("topic %d has %d searched subtopics, want >= 2", topic.ID, len(searched))
		}
		if searched[1] <= 0 || searched[2] <= 0 {
			t.Errorf("topic %d: first two subtopics must be searched: %v", topic.ID, searched)
		}
		// Popularities sum to 1 per topic over the searched set.
		sum := 0.0
		for _, p := range searched {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("topic %d popularity sums to %f", topic.ID, sum)
		}
	}
	wantDocs := totalSubs*6 + 5*3 + 20 // subtopic docs + generic docs + noise
	if len(tb.Docs) != wantDocs {
		t.Errorf("docs = %d, want %d", len(tb.Docs), wantDocs)
	}
	// Generic documents exist and are never judged relevant to a subtopic.
	genSeen := 0
	for _, d := range tb.Docs {
		if len(d.ID) > 8 && d.ID[8:11] == "gen" {
			genSeen++
			for _, topic := range tb.Topics {
				if tb.Qrels.RelevantToAny(topic.ID, d.ID) {
					t.Errorf("generic doc %s judged relevant", d.ID)
				}
			}
		}
	}
	if genSeen != 15 {
		t.Errorf("generic docs = %d, want 15", genSeen)
	}
	// Negative means none.
	none := smallSpec()
	none.GenericDocsPerTopic = -1
	tbNone := GenerateTestbed(none)
	for _, d := range tbNone.Docs {
		if len(d.ID) > 8 && d.ID[8:11] == "gen" {
			t.Fatal("negative GenericDocsPerTopic still produced generics")
		}
	}
	// Qrels: every topic has judged subtopics and pooled docs.
	for _, topic := range tb.Topics {
		if got := len(tb.Qrels.Subtopics(topic.ID)); got != len(topic.Subtopics) {
			t.Errorf("topic %d qrels subtopics = %d, want %d", topic.ID, got, len(topic.Subtopics))
		}
		if len(tb.Qrels.JudgedPool(topic.ID)) == 0 {
			t.Errorf("topic %d has empty judged pool", topic.ID)
		}
	}
}

func TestGenerateTestbedDeterministic(t *testing.T) {
	a := GenerateTestbed(smallSpec())
	b := GenerateTestbed(smallSpec())
	if !reflect.DeepEqual(a.Docs, b.Docs) {
		t.Error("same seed produced different corpora")
	}
	if !reflect.DeepEqual(a.Topics, b.Topics) {
		t.Error("same seed produced different topics")
	}
	spec2 := smallSpec()
	spec2.Seed = 8
	c := GenerateTestbed(spec2)
	if reflect.DeepEqual(a.Docs, c.Docs) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestTopicQueryLookup(t *testing.T) {
	tb := GenerateTestbed(smallSpec())
	if q := tb.TopicQuery(1); q != "topic01" {
		t.Errorf("TopicQuery(1) = %q", q)
	}
	if q := tb.TopicQuery(999); q != "" {
		t.Errorf("TopicQuery(999) = %q", q)
	}
}

func TestGenerateLogShape(t *testing.T) {
	tb := GenerateTestbed(smallSpec())
	spec := AOLLike(11, 500)
	spec.Users = 60
	l := GenerateLog(tb, spec)
	st := l.ComputeStats()
	if st.Queries < 500 {
		t.Errorf("queries = %d, want >= sessions", st.Queries)
	}
	if st.Users == 0 || st.Users > 60 {
		t.Errorf("users = %d", st.Users)
	}
	if st.Span <= 0 || st.Span > 92*24*60*60*1e9 {
		t.Errorf("span = %v", st.Span)
	}
	if st.ClickedQueries == 0 {
		t.Error("no clicks generated")
	}
	// The ambiguous head queries must be frequent.
	f := l.Frequencies()
	if f.Of("topic01") == 0 {
		t.Error("most popular topic never queried")
	}
	// Refinements must appear: at least one subtopic query in the log.
	found := false
	for q := range f {
		if len(q) > 8 && q[:5] == "topic" && q != "topic01" && q != "topic02" &&
			q != "topic03" && q != "topic04" && q != "topic05" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no specialization queries in the log")
	}
}

func TestGenerateLogDeterministicAndSorted(t *testing.T) {
	tb := GenerateTestbed(smallSpec())
	l1 := GenerateLog(tb, MSNLike(5, 300))
	l2 := GenerateLog(tb, MSNLike(5, 300))
	if !reflect.DeepEqual(l1.Records, l2.Records) {
		t.Error("same seed produced different logs")
	}
	// Chronological per user after SortChronological.
	streams := l1.UserStreams()
	for _, s := range streams {
		for i := 1; i < len(s); i++ {
			if s[i].Time.Before(s[i-1].Time) {
				t.Fatal("stream not sorted")
			}
		}
	}
}

func TestPresetsDiffer(t *testing.T) {
	aol := AOLLike(1, 100)
	msn := MSNLike(1, 100)
	if aol.Span <= msn.Span {
		t.Error("AOL span should exceed MSN span")
	}
	if msn.RefineProb <= aol.RefineProb {
		t.Error("MSN preset should refine more (drives its higher recall)")
	}
}

func TestGenerateProblemShape(t *testing.T) {
	spec := ProblemSpec{Seed: 3, N: 200, K: 20, NumSpecs: 4, PerSpec: 10}
	p := GenerateProblem(spec)
	if len(p.Candidates) != 200 || len(p.Specs) != 4 || p.K != 20 {
		t.Fatalf("shape = %d cands, %d specs, k=%d", len(p.Candidates), len(p.Specs), p.K)
	}
	total := 0.0
	for _, s := range p.Specs {
		if len(s.Results) != 10 {
			t.Errorf("spec %q has %d results", s.Query, len(s.Results))
		}
		total += s.Prob
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("spec probs sum to %f", total)
	}
	// Relevance decays with rank.
	if p.Candidates[0].Rel <= p.Candidates[199].Rel {
		t.Error("relevance not decaying")
	}
	// Utilities must be sparse but non-trivial.
	u := core.ComputeUtilities(p)
	useful := 0
	for i := range u.U {
		for j := range u.U[i] {
			if u.U[i][j] > 0 {
				useful++
			}
		}
	}
	if useful == 0 {
		t.Fatal("no positive utilities at all")
	}
	if useful > 200*4/2 {
		t.Errorf("utilities too dense: %d of %d", useful, 200*4)
	}
}

func TestGenerateProblemDeterministic(t *testing.T) {
	a := GenerateProblem(ProblemSpec{Seed: 9, N: 50})
	b := GenerateProblem(ProblemSpec{Seed: 9, N: 50})
	if !reflect.DeepEqual(a.Candidates, b.Candidates) {
		t.Error("same seed produced different problems")
	}
}

func TestLogFeedsDetectionPipeline(t *testing.T) {
	// End-to-end sanity: the generated log must contain the co-occurrence
	// signal (head query followed by specialization in the same session).
	tb := GenerateTestbed(smallSpec())
	l := GenerateLog(tb, AOLLike(13, 800))
	head := "topic01"
	streams := l.UserStreams()
	pairs := 0
	for _, s := range streams {
		for i := 1; i < len(s); i++ {
			if s[i-1].Query == head && len(s[i].Query) > len(head) &&
				s[i].Query[:len(head)] == head {
				pairs++
			}
		}
	}
	if pairs < 5 {
		t.Errorf("only %d head→specialization pairs for %s", pairs, head)
	}
}

func TestGenerateLogRespectsSpanAndClicks(t *testing.T) {
	tb := GenerateTestbed(smallSpec())
	spec := MSNLike(3, 1500)
	l := GenerateLog(tb, spec)
	var first, last int64
	clicked := 0
	for i, r := range l.Records {
		ts := r.Time.UnixMilli()
		if i == 0 || ts < first {
			first = ts
		}
		if ts > last {
			last = ts
		}
		if len(r.Clicks) > 0 {
			clicked++
		}
		if len(r.Results) == 0 {
			t.Fatal("record without SERP results")
		}
	}
	if first < spec.Start.UnixMilli() {
		t.Errorf("record before log start")
	}
	// In-session refinements can run a few minutes past the last session
	// start, never more than ~10 minutes.
	if last > spec.Start.Add(spec.Span+10*60*1e9).UnixMilli() {
		t.Errorf("record far beyond span end")
	}
	rate := float64(clicked) / float64(l.Len())
	if rate < 0.2 || rate > 0.9 {
		t.Errorf("click rate = %.2f, outside plausible band", rate)
	}
}

func TestVaryLengthBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		l := varyLength(rng, 50)
		if l < 30 || l > 80 {
			t.Fatalf("varyLength(50) = %d outside [30,80]", l)
		}
	}
	if varyLength(rng, 1) != 1 {
		t.Error("mean 1 not preserved")
	}
	if varyLength(rng, 0) != 0 {
		t.Error("mean 0 not preserved")
	}
}
