// Package exp implements the experiment harnesses that regenerate every
// table and figure of the paper's evaluation (the per-experiment index
// lives in DESIGN.md §4):
//
//	Table 1  — empirical complexity-exponent fits   (this file)
//	Table 2  — diversification wall-clock times     (this file)
//	Table 3  — α-NDCG / IA-P effectiveness sweep    (table3.go)
//	Figure 1 — utility ratio vs |S_q|               (figure1.go)
//	App. C   — specialization-coverage recall       (recall.go)
//
// The cmd/ tools and the root benchmarks are thin wrappers over these
// runners, so printed tables and testing.B benchmarks share one code path.
package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Table2Spec parameterizes the efficiency experiment of Table 2: time
// OptSelect, xQuAD and IASelect while varying the candidate-set size |R_q|
// and the output size k, at fixed |S_q| — the paper's exact grid is
// |R_q| ∈ {1000, 10000, 100000} × k ∈ {10, 50, 100, 500, 1000}.
type Table2Spec struct {
	Seed     int64
	Ns       []int // |R_q| values
	Ks       []int // k values
	NumSpecs int   // |S_q| (paper: constant, small; default 8)
	PerSpec  int   // |R_q′| (paper: 20)
	Reps     int   // timing repetitions per cell (mean reported)
}

// DefaultTable2Spec returns the paper's full grid.
func DefaultTable2Spec() Table2Spec {
	return Table2Spec{
		Seed:     1,
		Ns:       []int{1000, 10000, 100000},
		Ks:       []int{10, 50, 100, 500, 1000},
		NumSpecs: 8,
		PerSpec:  20,
		Reps:     3,
	}
}

func (s Table2Spec) withDefaults() Table2Spec {
	d := DefaultTable2Spec()
	if s.Ns == nil {
		s.Ns = d.Ns
	}
	if s.Ks == nil {
		s.Ks = d.Ks
	}
	if s.NumSpecs == 0 {
		s.NumSpecs = d.NumSpecs
	}
	if s.PerSpec == 0 {
		s.PerSpec = d.PerSpec
	}
	if s.Reps == 0 {
		s.Reps = d.Reps
	}
	return s
}

// Table2Cell is one timed grid cell.
type Table2Cell struct {
	N      int
	K      int
	Millis float64
}

// Table2Result holds the timed grid per algorithm.
type Table2Result struct {
	Spec  Table2Spec
	Cells map[core.Algorithm][]Table2Cell
}

// table2Algorithms are the three methods the paper times.
var table2Algorithms = []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect}

// RunTable2 generates one synthetic problem per |R_q| value, precomputes
// the utilities once (shared by all three algorithms, as in the paper
// where utilities come from stored snippets), and times each algorithm at
// each k.
func RunTable2(spec Table2Spec) *Table2Result {
	spec = spec.withDefaults()
	res := &Table2Result{
		Spec:  spec,
		Cells: make(map[core.Algorithm][]Table2Cell, len(table2Algorithms)),
	}
	for _, n := range spec.Ns {
		p := synth.GenerateProblem(synth.ProblemSpec{
			Seed:     spec.Seed,
			N:        n,
			K:        spec.Ks[0],
			NumSpecs: spec.NumSpecs,
			PerSpec:  spec.PerSpec,
		})
		u := core.ComputeUtilities(p)
		for _, k := range spec.Ks {
			p.K = k
			for _, alg := range table2Algorithms {
				ms := timeAlgorithm(alg, p, u, spec.Reps)
				res.Cells[alg] = append(res.Cells[alg], Table2Cell{N: n, K: k, Millis: ms})
			}
		}
	}
	return res
}

func timeAlgorithm(alg core.Algorithm, p *core.Problem, u *core.Utilities, reps int) float64 {
	run := func() {
		switch alg {
		case core.AlgOptSelect:
			core.OptSelect(p, u)
		case core.AlgXQuAD:
			core.XQuAD(p, u)
		case core.AlgIASelect:
			core.IASelect(p, u)
		}
	}
	// One warm-up round keeps allocator effects out of the first cell.
	run()
	start := time.Now()
	for r := 0; r < reps; r++ {
		run()
	}
	return float64(time.Since(start).Microseconds()) / 1000.0 / float64(reps)
}

// Cell returns the timing for (alg, n, k).
func (r *Table2Result) Cell(alg core.Algorithm, n, k int) (Table2Cell, bool) {
	for _, c := range r.Cells[alg] {
		if c.N == n && c.K == k {
			return c, true
		}
	}
	return Table2Cell{}, false
}

// Speedup returns the xQuAD/OptSelect wall-clock ratio at (n, k) — the
// "two orders of magnitude" headline of the paper at the large corner.
func (r *Table2Result) Speedup(n, k int) float64 {
	opt, ok1 := r.Cell(core.AlgOptSelect, n, k)
	xq, ok2 := r.Cell(core.AlgXQuAD, n, k)
	if !ok1 || !ok2 || opt.Millis == 0 {
		return 0
	}
	return xq.Millis / opt.Millis
}

// Format writes the grid in the layout of the paper's Table 2.
func (r *Table2Result) Format(w io.Writer) error {
	fmt.Fprintf(w, "Execution time (msec) by |Rq| and k (|Sq|=%d, |Rq'|=%d)\n",
		r.Spec.NumSpecs, r.Spec.PerSpec)
	for _, alg := range table2Algorithms {
		fmt.Fprintf(w, "\n%s\n", algLabel(alg))
		fmt.Fprintf(w, "%10s", "|Rq|\\k")
		for _, k := range r.Spec.Ks {
			fmt.Fprintf(w, " %10d", k)
		}
		fmt.Fprintln(w)
		for _, n := range r.Spec.Ns {
			fmt.Fprintf(w, "%10d", n)
			for _, k := range r.Spec.Ks {
				c, _ := r.Cell(alg, n, k)
				fmt.Fprintf(w, " %10.2f", c.Millis)
			}
			fmt.Fprintln(w)
		}
	}
	nMax := r.Spec.Ns[len(r.Spec.Ns)-1]
	kMax := r.Spec.Ks[len(r.Spec.Ks)-1]
	fmt.Fprintf(w, "\nxQuAD/OptSelect speedup at |Rq|=%d, k=%d: %.1fx\n",
		nMax, kMax, r.Speedup(nMax, kMax))
	return nil
}

func algLabel(a core.Algorithm) string {
	switch a {
	case core.AlgOptSelect:
		return "OptSelect"
	case core.AlgXQuAD:
		return "xQuAD"
	case core.AlgIASelect:
		return "IASelect"
	case core.AlgMMR:
		return "MMR"
	default:
		return string(a)
	}
}

// ComplexityFit is one row of the empirical Table 1: the fitted exponents
// e of time ∝ n^e (at the largest k) and time ∝ k^e (at the largest n).
// The theoretical values are e_n = 1 for all three algorithms, e_k = 1 for
// IASelect/xQuAD and e_k ≈ 0 (logarithmic) for OptSelect.
type ComplexityFit struct {
	Alg        core.Algorithm
	ExponentN  float64
	R2N        float64
	ExponentK  float64
	R2K        float64
	Complexity string // the paper's Table 1 entry
}

// FitComplexity recovers the empirical complexity exponents from a timed
// grid (needs at least two Ns and two Ks).
func FitComplexity(r *Table2Result) ([]ComplexityFit, error) {
	kFix := r.Spec.Ks[len(r.Spec.Ks)-1]
	nFix := r.Spec.Ns[len(r.Spec.Ns)-1]
	var out []ComplexityFit
	for _, alg := range table2Algorithms {
		var xs, ys []float64
		for _, n := range r.Spec.Ns {
			if c, ok := r.Cell(alg, n, kFix); ok && c.Millis > 0 {
				xs = append(xs, float64(n))
				ys = append(ys, c.Millis)
			}
		}
		eN, _, r2N, err := stats.FitPowerLaw(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("exp: fit n for %s: %w", alg, err)
		}
		xs, ys = nil, nil
		for _, k := range r.Spec.Ks {
			if c, ok := r.Cell(alg, nFix, k); ok && c.Millis > 0 {
				xs = append(xs, float64(k))
				ys = append(ys, c.Millis)
			}
		}
		eK, _, r2K, err := stats.FitPowerLaw(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("exp: fit k for %s: %w", alg, err)
		}
		fit := ComplexityFit{Alg: alg, ExponentN: eN, R2N: r2N, ExponentK: eK, R2K: r2K}
		switch alg {
		case core.AlgOptSelect:
			fit.Complexity = "O(n log k)"
		default:
			fit.Complexity = "O(n k)"
		}
		out = append(out, fit)
	}
	return out, nil
}

// FormatComplexity writes the empirical Table 1.
func FormatComplexity(w io.Writer, fits []ComplexityFit) {
	fmt.Fprintf(w, "%-10s %-12s %14s %8s %14s %8s\n",
		"Algorithm", "Theory", "exp(time~n^e)", "R2", "exp(time~k^e)", "R2")
	for _, f := range fits {
		fmt.Fprintf(w, "%-10s %-12s %14.2f %8.3f %14.2f %8.3f\n",
			algLabel(f.Alg), f.Complexity, f.ExponentN, f.R2N, f.ExponentK, f.R2K)
	}
}
