package exp

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/stats"
	"repro/internal/suggest"
	"repro/internal/trec"
)

// Table3Spec parameterizes the effectiveness experiment of Table 3: the
// TREC-2009-Diversity-style evaluation of the DPH baseline and the three
// diversification methods across the utility-threshold sweep
// c ∈ {0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.35, 0.50, 0.75}, with λ = 0.15,
// |R_q′| = 20 and k = 1000, reporting α-NDCG (α=0.5) and IA-P at cutoffs
// {5, 10, 20, 100, 1000}.
type Table3Spec struct {
	Pipeline   repro.Config
	Thresholds []float64
	Cutoffs    []int
	Alpha      float64
	// GroundTruthFallback substitutes the testbed's ground-truth
	// specializations when Algorithm 1 detects nothing for a topic (keeps
	// the sweep comparable across topics; the result records how many
	// topics needed it).
	GroundTruthFallback bool
}

// DefaultTable3Spec mirrors the paper's §5 parameters on the default
// synthetic testbed.
func DefaultTable3Spec() Table3Spec {
	cfg := repro.Config{
		NumCandidates: 25000, // clamped by the corpus; the paper's |R_q|
		PerSpec:       20,
		K:             1000,
		Lambda:        0.15,
		MaxSpecs:      10,
	}
	return Table3Spec{
		Pipeline:            cfg,
		Thresholds:          []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.35, 0.50, 0.75},
		Cutoffs:             []int{5, 10, 20, 100, 1000},
		Alpha:               0.5,
		GroundTruthFallback: true,
	}
}

// Table3Row is one (algorithm, threshold) row of the table.
type Table3Row struct {
	Alg    core.Algorithm
	C      float64
	Report *eval.Report
}

// Table3Result holds the full sweep.
type Table3Result struct {
	Spec           Table3Spec
	Baseline       *eval.Report
	Rows           []Table3Row
	TotalTopics    int
	DetectedTopics int // topics where Algorithm 1 fired (no fallback needed)
}

// table3Algorithms are the three diversifiers of Table 3.
var table3Algorithms = []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect}

// RunTable3 builds the pipeline, diversifies every topic's retrieval under
// every (algorithm, threshold) pair, and evaluates all runs against the
// testbed's diversity qrels.
func RunTable3(spec Table3Spec) (*Table3Result, error) {
	pipe, err := repro.Build(spec.Pipeline)
	if err != nil {
		return nil, err
	}
	qrels := pipe.Testbed.Qrels

	baselineRun := trec.NewRun()
	runs := make(map[core.Algorithm]map[float64]*trec.Run, len(table3Algorithms))
	for _, alg := range table3Algorithms {
		runs[alg] = make(map[float64]*trec.Run, len(spec.Thresholds))
		for _, c := range spec.Thresholds {
			runs[alg][c] = trec.NewRun()
		}
	}

	res := &Table3Result{Spec: spec, TotalTopics: len(pipe.Testbed.Topics)}

	for _, topic := range pipe.Testbed.Topics {
		specs := pipe.DetectSpecializations(topic.Query)
		if len(specs) > 0 {
			res.DetectedTopics++
		} else if spec.GroundTruthFallback {
			specs = groundTruthSpecs(pipe, topic.ID)
		}
		problem := pipe.BuildProblem(topic.Query, specs)
		problem.Threshold = 0
		uRaw := core.ComputeUtilities(problem)

		baselineRun.AddRanking(topic.ID, selIDs(core.Baseline(problem)), "DPH")

		for _, c := range spec.Thresholds {
			u := uRaw.WithThreshold(problem, c)
			for _, alg := range table3Algorithms {
				var sel []core.Selected
				switch alg {
				case core.AlgOptSelect:
					sel = core.OptSelect(problem, u)
				case core.AlgXQuAD:
					sel = core.XQuAD(problem, u)
				case core.AlgIASelect:
					sel = core.IASelect(problem, u)
				}
				runs[alg][c].AddRanking(topic.ID, selIDs(sel), string(alg))
			}
		}
	}

	res.Baseline = eval.EvaluateRun("DPH baseline", baselineRun, qrels, spec.Alpha, spec.Cutoffs)
	for _, alg := range table3Algorithms {
		for _, c := range spec.Thresholds {
			name := fmt.Sprintf("%s c=%.2f", algLabel(alg), c)
			res.Rows = append(res.Rows, Table3Row{
				Alg:    alg,
				C:      c,
				Report: eval.EvaluateRun(name, runs[alg][c], qrels, spec.Alpha, spec.Cutoffs),
			})
		}
	}
	return res, nil
}

// groundTruthSpecs converts the testbed's per-topic sub-topic queries and
// ground-truth popularity into the suggest.Specialization shape.
func groundTruthSpecs(pipe *repro.Pipeline, topicID int) []suggest.Specialization {
	queries := pipe.Testbed.SubtopicQuery[topicID]
	pops := pipe.Testbed.SubtopicPopularity[topicID]
	specs := make([]suggest.Specialization, 0, len(pops))
	for s := 1; s <= len(queries); s++ {
		// Only searched sub-topics exist in the ground truth the log
		// would reveal; the rest have no popularity mass.
		if pops[s] <= 0 {
			continue
		}
		specs = append(specs, suggest.Specialization{
			Query: queries[s],
			Freq:  int(pops[s]*1000) + 1,
			Prob:  pops[s],
		})
	}
	return suggest.TopSpecializations(specs, pipe.Config.MaxSpecs)
}

func selIDs(sel []core.Selected) []string {
	out := make([]string, len(sel))
	for i, s := range sel {
		out[i] = s.ID
	}
	return out
}

// Row returns the report for (alg, c).
func (r *Table3Result) Row(alg core.Algorithm, c float64) (*eval.Report, bool) {
	for _, row := range r.Rows {
		if row.Alg == alg && row.C == c {
			return row.Report, true
		}
	}
	return nil, false
}

// BestRow returns the (c, report) maximizing mean α-NDCG at the cutoff.
func (r *Table3Result) BestRow(alg core.Algorithm, cutoff int) (float64, *eval.Report) {
	bestC, best := 0.0, (*eval.Report)(nil)
	for _, row := range r.Rows {
		if row.Alg != alg {
			continue
		}
		if best == nil || row.Report.MeanAlphaNDCG(cutoff) > best.MeanAlphaNDCG(cutoff) {
			best = row.Report
			bestC = row.C
		}
	}
	return bestC, best
}

// Significance runs the Wilcoxon signed-rank test between two rows on the
// per-topic metric at the cutoff (the paper's §5 significance check).
func (r *Table3Result) Significance(a core.Algorithm, ca float64, b core.Algorithm, cb float64, metric string, cutoff int) (stats.WilcoxonResult, error) {
	ra, ok1 := r.Row(a, ca)
	rb, ok2 := r.Row(b, cb)
	if !ok1 || !ok2 {
		return stats.WilcoxonResult{}, fmt.Errorf("exp: missing rows %s/%.2f or %s/%.2f", a, ca, b, cb)
	}
	return eval.CompareSignificance(ra, rb, metric, cutoff)
}

// Format writes the sweep in the layout of the paper's Table 3.
func (r *Table3Result) Format(w io.Writer) error {
	fmt.Fprintf(w, "%-24s", "method / c")
	for _, k := range r.Spec.Cutoffs {
		fmt.Fprintf(w, " aN@%-4d", k)
	}
	fmt.Fprint(w, " |")
	for _, k := range r.Spec.Cutoffs {
		fmt.Fprintf(w, " IA@%-4d", k)
	}
	fmt.Fprintln(w)

	writeRow := func(rep *eval.Report) {
		fmt.Fprintf(w, "%-24s", rep.Name)
		for _, k := range r.Spec.Cutoffs {
			fmt.Fprintf(w, " %6.3f ", rep.MeanAlphaNDCG(k))
		}
		fmt.Fprint(w, " |")
		for _, k := range r.Spec.Cutoffs {
			fmt.Fprintf(w, " %6.3f ", rep.MeanIAP(k))
		}
		fmt.Fprintln(w)
	}
	writeRow(r.Baseline)
	last := core.Algorithm("")
	for _, row := range r.Rows {
		if row.Alg != last {
			fmt.Fprintln(w)
			last = row.Alg
		}
		writeRow(row.Report)
	}
	fmt.Fprintf(w, "\ntopics: %d (Algorithm 1 fired on %d; ground-truth fallback on %d)\n",
		r.TotalTopics, r.DetectedTopics, r.TotalTopics-r.DetectedTopics)
	return nil
}
