package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/boss"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qfg"
	"repro/internal/suggest"
	"repro/internal/synth"
)

// Figure1Spec parameterizes the Appendix C utility-ratio experiment behind
// Figure 1: for every ambiguous query mined from a log, fetch |R_q| = 200
// results from the (simulated) external engine, diversify with OptSelect
// at |R_q′| = k = 20, and report the ratio
//
//	Σ_{i≤k} Ũ(d_i ∈ S) / Σ_{i≤k} Ũ(d_i ∈ R_q)
//
// bucketed by the number of mined specializations |S_q| (x-axis 2…28 in
// the paper, with one curve per query log).
type Figure1Spec struct {
	Seed     int64
	Corpus   synth.CorpusSpec
	Sessions int      // log sessions per preset
	Presets  []string // "aol", "msn"
	NRq      int      // |R_q| fetched from the external engine (paper: 200)
	PerSpec  int      // |R_q′| (paper: 20)
	K        int      // k (paper: 20)
	MaxSpecs int      // cap on |S_q| (paper's x-axis reaches 28)
	// Threshold is the utility cutoff c applied when computing Ũ — the
	// same cutoff the deployed diversifier uses (§5), which zeroes the
	// weak everything-and-nothing similarities of generic pages. 0 means
	// the default 0.30.
	Threshold float64
}

// DefaultFigure1Spec mirrors the Appendix C parameters; the corpus gives
// topics between 2 and 28 sub-topics so every x-axis bucket is reachable.
func DefaultFigure1Spec() Figure1Spec {
	return Figure1Spec{
		Seed: 1,
		Corpus: synth.CorpusSpec{
			Seed:            1,
			NumTopics:       60,
			MinSubtopics:    2,
			MaxSubtopics:    28,
			DocsPerSubtopic: 12,
			// Ambiguous SERPs on the real web are crowded with generic
			// pages useless for any particular refinement; they are what
			// the utility ratio of Figure 1 feeds on.
			GenericDocsPerTopic: 120,
			NoiseDocs:           500,
			DocLength:           50,
			SearchedFrac:        1, // the figure studies |S_q|, not intent gaps
			BackgroundVocab:     2000,
			TopicVocab:          15,
			SubtopicVocab:       10,
		},
		Sessions:  12000,
		Presets:   []string{"aol", "msn"},
		NRq:       200,
		PerSpec:   20,
		K:         20,
		MaxSpecs:  28,
		Threshold: 0.30,
	}
}

// Figure1Row is one plotted point: the mean utility ratio over queries
// with |S_q| = NumSpecs.
type Figure1Row struct {
	NumSpecs int
	AvgRatio float64
	Queries  int
}

// Figure1Result maps each log preset to its curve.
type Figure1Result struct {
	Spec   Figure1Spec
	Curves map[string][]Figure1Row
}

// RunFigure1 executes the experiment.
func RunFigure1(spec Figure1Spec) (*Figure1Result, error) {
	if spec.NRq == 0 || spec.PerSpec == 0 || spec.K == 0 {
		d := DefaultFigure1Spec()
		if spec.NRq == 0 {
			spec.NRq = d.NRq
		}
		if spec.PerSpec == 0 {
			spec.PerSpec = d.PerSpec
		}
		if spec.K == 0 {
			spec.K = d.K
		}
		if spec.MaxSpecs == 0 {
			spec.MaxSpecs = d.MaxSpecs
		}
		if spec.Sessions == 0 {
			spec.Sessions = d.Sessions
		}
		if len(spec.Presets) == 0 {
			spec.Presets = d.Presets
		}
		if spec.Corpus.NumTopics == 0 {
			spec.Corpus = d.Corpus
		}
	}
	if spec.Threshold == 0 {
		spec.Threshold = DefaultFigure1Spec().Threshold
	}
	if spec.Threshold < 0 {
		spec.Threshold = 0
	}

	tb := synth.GenerateTestbed(spec.Corpus)
	eng, err := engine.Build(tb.Docs, engine.Config{})
	if err != nil {
		return nil, err
	}
	client := boss.New(eng)

	res := &Figure1Result{Spec: spec, Curves: make(map[string][]Figure1Row)}
	for _, preset := range spec.Presets {
		var logSpec synth.LogSpec
		switch preset {
		case "msn":
			logSpec = synth.MSNLike(spec.Seed+7, spec.Sessions)
		default:
			logSpec = synth.AOLLike(spec.Seed+3, spec.Sessions)
		}
		log := synth.GenerateLog(tb, logSpec)
		sessions := qfg.ExtractSessions(log, qfg.Options{})
		rec := suggest.Train(sessions, log.Frequencies(), suggest.TrainOptions{})

		sums := make(map[int]float64)
		counts := make(map[int]int)
		opts := suggest.DefaultDetectOptions()
		opts.MaxCandidates = 200
		// Figure 1 sweeps |S_q| up to 28: the paper mines 20M-query logs
		// where even rank-28 specializations clear the f(q)/s popularity
		// bar. At laptop-scale session counts a strict divisor would prune
		// the tail and empty the right side of the figure, so the filter
		// is opened up for this experiment.
		opts.S = 200

		for _, topic := range tb.Topics {
			specs := suggest.TopSpecializations(
				suggest.AmbiguousQueryDetect(topic.Query, rec, opts), spec.MaxSpecs)
			if len(specs) < 2 {
				continue
			}
			ratio, ok := utilityRatio(client, topic.Query, specs, spec)
			if !ok {
				continue
			}
			sums[len(specs)] += ratio
			counts[len(specs)]++
		}

		var rows []Figure1Row
		for m, c := range counts {
			rows = append(rows, Figure1Row{NumSpecs: m, AvgRatio: sums[m] / float64(c), Queries: c})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].NumSpecs < rows[j].NumSpecs })
		res.Curves[preset] = rows
	}
	return res, nil
}

// utilityRatio performs one Appendix C comparison for a single query.
// Lambda is set to 1 so the overall score of Equation (9) reduces to the
// pure aggregated utility Σ_j P(q′_j|q)·Ũ(d|R_q′_j), the quantity whose
// sums the paper compares.
func utilityRatio(client *boss.Client, query string, specs []suggest.Specialization, spec Figure1Spec) (float64, bool) {
	results := client.Search(query, spec.NRq)
	if len(results) < spec.K {
		return 0, false
	}
	problem := &core.Problem{
		Query:      query,
		Candidates: client.CandidateDocs(results),
		K:          spec.K,
		Lambda:     1.0,
		Threshold:  spec.Threshold,
	}
	for _, s := range specs {
		sr := client.Search(s.Query, spec.PerSpec)
		problem.Specs = append(problem.Specs, core.Specialization{
			Query:   s.Query,
			Prob:    s.Prob,
			Results: client.SpecResults(sr),
		})
	}
	u := core.ComputeUtilities(problem)
	sel := core.OptSelect(problem, u)

	diversified := 0.0
	for _, s := range sel {
		diversified += s.Score
	}
	original := 0.0
	for i := 0; i < spec.K; i++ {
		original += u.Overall[i] // candidates are in rank order
	}
	if original <= 0 {
		return 0, false
	}
	return diversified / original, true
}

// Format prints the two curves in a gnuplot-friendly layout.
func (r *Figure1Result) Format(w io.Writer) error {
	fmt.Fprintf(w, "Average utility ratio per number of specializations (|Rq|=%d, |Rq'|=k=%d)\n",
		r.Spec.NRq, r.Spec.K)
	fmt.Fprintf(w, "%8s", "#specs")
	presets := make([]string, 0, len(r.Curves))
	for p := range r.Curves {
		presets = append(presets, p)
	}
	sort.Strings(presets)
	for _, p := range presets {
		fmt.Fprintf(w, " %12s %8s", p+"-ratio", "queries")
	}
	fmt.Fprintln(w)

	buckets := map[int]bool{}
	for _, rows := range r.Curves {
		for _, row := range rows {
			buckets[row.NumSpecs] = true
		}
	}
	var xs []int
	for x := range buckets {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	for _, x := range xs {
		fmt.Fprintf(w, "%8d", x)
		for _, p := range presets {
			found := false
			for _, row := range r.Curves[p] {
				if row.NumSpecs == x {
					fmt.Fprintf(w, " %12.2f %8d", row.AvgRatio, row.Queries)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(w, " %12s %8s", "-", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
