package exp

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/synth"
)

// smallTable2 keeps test runtime low while preserving the grid structure.
func smallTable2() Table2Spec {
	return Table2Spec{
		Seed:     1,
		Ns:       []int{500, 2000, 8000},
		Ks:       []int{10, 50, 200},
		NumSpecs: 8,
		PerSpec:  10,
		Reps:     2,
	}
}

func TestRunTable2Shape(t *testing.T) {
	res := RunTable2(smallTable2())
	for _, alg := range table2Algorithms {
		if len(res.Cells[alg]) != 9 {
			t.Fatalf("%s cells = %d, want 9", alg, len(res.Cells[alg]))
		}
		for _, c := range res.Cells[alg] {
			if c.Millis < 0 {
				t.Errorf("%s negative time at n=%d k=%d", alg, c.N, c.K)
			}
		}
	}
	if _, ok := res.Cell(core.AlgOptSelect, 500, 10); !ok {
		t.Error("Cell lookup failed")
	}
	if _, ok := res.Cell(core.AlgOptSelect, 999, 10); ok {
		t.Error("Cell lookup for absent config succeeded")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	res := RunTable2(Table2Spec{
		Seed: 1, Ns: []int{2000, 16000}, Ks: []int{10, 640}, NumSpecs: 8, PerSpec: 10, Reps: 3,
	})
	// (i) The O(nk) algorithms slow with n at fixed k. (OptSelect's
	// absolute times are sub-millisecond at these sizes and too noisy for
	// a strict growth assertion; its scaling is covered by TestFitComplexity
	// and by the k-flatness check below.)
	for _, alg := range []core.Algorithm{core.AlgXQuAD, core.AlgIASelect} {
		small, _ := res.Cell(alg, 2000, 640)
		big, _ := res.Cell(alg, 16000, 640)
		if big.Millis <= small.Millis {
			t.Errorf("%s: time did not grow with n (%f vs %f)", alg, small.Millis, big.Millis)
		}
	}
	// (ii) The paper's headline: xQuAD and IASelect grow with k much
	// faster than OptSelect; at the large corner OptSelect wins clearly.
	speedup := res.Speedup(16000, 640)
	if speedup < 5 {
		t.Errorf("xQuAD/OptSelect speedup at large corner = %.1f, want >= 5", speedup)
	}
	// (iii) OptSelect's k-growth must be far below linear: grow k by 64x,
	// time must grow far less than 64x (log factor + constant work).
	o10, _ := res.Cell(core.AlgOptSelect, 16000, 10)
	o640, _ := res.Cell(core.AlgOptSelect, 16000, 640)
	if o10.Millis > 0 && o640.Millis/o10.Millis > 16 {
		t.Errorf("OptSelect k-scaling looks linear: %.2f -> %.2f ms", o10.Millis, o640.Millis)
	}
}

func TestFitComplexity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	res := RunTable2(Table2Spec{
		Seed: 1, Ns: []int{1000, 4000, 16000}, Ks: []int{20, 160, 1280},
		NumSpecs: 8, PerSpec: 10, Reps: 3,
	})
	fits, err := FitComplexity(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 3 {
		t.Fatalf("fits = %d", len(fits))
	}
	for _, f := range fits {
		switch f.Alg {
		case core.AlgOptSelect:
			// OptSelect's absolute times are so small that fixed overhead
			// flattens the n-curve at the low end (sublinear measured
			// exponent); it must still grow with n but far less than the
			// O(nk) competitors, and must be essentially flat in k.
			if f.ExponentN < 0.15 || f.ExponentN > 1.4 {
				t.Errorf("OptSelect n-exponent %.2f outside [0.15,1.4]", f.ExponentN)
			}
			if f.ExponentK > 0.6 {
				t.Errorf("OptSelect k-exponent %.2f, want sublinear (<0.6)", f.ExponentK)
			}
		default:
			if f.ExponentN < 0.7 || f.ExponentN > 1.5 {
				t.Errorf("%s: n-exponent %.2f outside linear band", f.Alg, f.ExponentN)
			}
			if f.ExponentK < 0.5 {
				t.Errorf("%s k-exponent %.2f, want near-linear (>0.5)", f.Alg, f.ExponentK)
			}
		}
	}
	var sb strings.Builder
	FormatComplexity(&sb, fits)
	if !strings.Contains(sb.String(), "OptSelect") {
		t.Error("FormatComplexity missing algorithm label")
	}
}

func TestTable2Format(t *testing.T) {
	res := RunTable2(smallTable2())
	var sb strings.Builder
	if err := res.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"OptSelect", "xQuAD", "IASelect", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

// smallTable3 runs the effectiveness sweep on a tiny testbed.
func smallTable3() Table3Spec {
	spec := DefaultTable3Spec()
	spec.Pipeline.Corpus = synth.CorpusSpec{
		Seed:                3,
		NumTopics:           16,
		MinSubtopics:        3,
		MaxSubtopics:        6,
		DocsPerSubtopic:     12,
		GenericDocsPerTopic: 10,
		NoiseDocs:           150,
		DocLength:           40,
		SearchedFrac:        0.8,
		BackgroundVocab:     500,
		TopicVocab:          10,
		SubtopicVocab:       8,
	}
	spec.Pipeline.Log = synth.AOLLike(4, 3000)
	spec.Pipeline.NumCandidates = 300
	spec.Pipeline.K = 100
	spec.Thresholds = []float64{0, 0.20, 0.75}
	spec.Cutoffs = []int{5, 10, 20}
	return spec
}

func TestRunTable3ShapeMatchesPaper(t *testing.T) {
	res, err := RunTable3(smallTable3())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTopics != 16 {
		t.Fatalf("topics = %d", res.TotalTopics)
	}
	if len(res.Rows) != 3*3 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	base := res.Baseline.MeanAlphaNDCG(20)
	if base <= 0 {
		t.Fatalf("baseline α-NDCG@20 = %f", base)
	}

	base5 := res.Baseline.MeanAlphaNDCG(5)

	// Shape (i): at its best threshold every diversifier improves (or at
	// worst matches) the baseline at the early cutoff the paper
	// emphasizes for the web setting.
	for _, alg := range table3Algorithms {
		_, best := res.BestRow(alg, 5)
		if best.MeanAlphaNDCG(5) < base5*0.98 {
			t.Errorf("%s best α-NDCG@5 = %f below baseline %f",
				alg, best.MeanAlphaNDCG(5), base5)
		}
	}

	// Shape (ii): OptSelect and xQuAD are comparable at @20 ("OptSelect
	// and xQuAD behave similarly"), and OptSelect stays at or above the
	// baseline at its best threshold.
	_, bestOpt := res.BestRow(core.AlgOptSelect, 20)
	_, bestXq := res.BestRow(core.AlgXQuAD, 20)
	if d := bestOpt.MeanAlphaNDCG(20) - bestXq.MeanAlphaNDCG(20); d < -0.05 || d > 0.05 {
		t.Errorf("OptSelect best @20 %f vs xQuAD best %f: not comparable",
			bestOpt.MeanAlphaNDCG(20), bestXq.MeanAlphaNDCG(20))
	}
	if bestOpt.MeanAlphaNDCG(20) < base*0.97 {
		t.Errorf("OptSelect best @20 %f below baseline %f", bestOpt.MeanAlphaNDCG(20), base)
	}

	// Shape (iii): where diversification is actually active (low c),
	// IASelect "performs always worse" than xQuAD at the deeper cutoff —
	// pure coverage saturates once the searched intents are covered and
	// its relevance-blind picks cost it. (At c = 0.75 every method is the
	// baseline, so "best over all c" would compare degenerate rows.)
	iaActive, _ := res.Row(core.AlgIASelect, 0)
	xqActive, _ := res.Row(core.AlgXQuAD, 0)
	if iaActive.MeanAlphaNDCG(20) >= xqActive.MeanAlphaNDCG(20) {
		t.Errorf("IASelect c=0 @20 %f not below xQuAD c=0 %f",
			iaActive.MeanAlphaNDCG(20), xqActive.MeanAlphaNDCG(20))
	}

	// Shape (iv): OptSelect reaches at least the baseline's IA-P at the
	// earliest cutoff (the paper credits it with "the best IA-P values").
	_, bestOptIAP := res.BestRow(core.AlgOptSelect, 5)
	if bestOptIAP.MeanIAP(5) < res.Baseline.MeanIAP(5)-1e-9 {
		t.Errorf("OptSelect best IA-P@5 %f below baseline %f",
			bestOptIAP.MeanIAP(5), res.Baseline.MeanIAP(5))
	}

	// Shape (iii): at c=0.75 effectiveness collapses toward the baseline
	// (the paper: "for c >= 0.75 all the algorithms perform basically as
	// the DPH baseline").
	for _, alg := range table3Algorithms {
		rep, _ := res.Row(alg, 0.75)
		diff := rep.MeanAlphaNDCG(20) - base
		if diff < -0.05 || diff > 0.10 {
			t.Errorf("%s c=0.75 α-NDCG@20 = %f, too far from baseline %f",
				alg, rep.MeanAlphaNDCG(20), base)
		}
	}

	// Significance machinery runs.
	if _, err := res.Significance(core.AlgOptSelect, 0, core.AlgXQuAD, 0, "alpha-ndcg", 20); err != nil {
		t.Errorf("Significance: %v", err)
	}

	var sb strings.Builder
	if err := res.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DPH baseline") {
		t.Error("Table 3 output missing baseline row")
	}
}

func TestRunFigure1SmallShape(t *testing.T) {
	spec := Figure1Spec{
		Seed: 5,
		Corpus: synth.CorpusSpec{
			Seed:                5,
			NumTopics:           10,
			MinSubtopics:        2,
			MaxSubtopics:        6,
			DocsPerSubtopic:     25,
			GenericDocsPerTopic: 25,
			NoiseDocs:           100,
			DocLength:           40,
			BackgroundVocab:     500,
			TopicVocab:          10,
			SubtopicVocab:       8,
		},
		Sessions: 4000,
		Presets:  []string{"aol"},
		NRq:      100,
		PerSpec:  10,
		K:        10,
		MaxSpecs: 10,
	}
	res, err := RunFigure1(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Curves["aol"]
	if len(rows) == 0 {
		t.Fatal("no Figure 1 points produced")
	}
	totalQ := 0
	for _, r := range rows {
		if r.NumSpecs < 2 {
			t.Errorf("bucket with %d specs", r.NumSpecs)
		}
		// The paper's headline: diversification improves utility by a
		// factor clearly above 1 (5-10 in the paper's setup).
		if r.AvgRatio <= 1 {
			t.Errorf("utility ratio at |Sq|=%d is %.2f, want > 1", r.NumSpecs, r.AvgRatio)
		}
		totalQ += r.Queries
	}
	if totalQ < 3 {
		t.Errorf("only %d queries contributed", totalQ)
	}
	var sb strings.Builder
	if err := res.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aol-ratio") {
		t.Error("Figure 1 output missing curve header")
	}
}

func TestRunRecallSmall(t *testing.T) {
	spec := RecallSpec{
		Seed: 9,
		Corpus: synth.CorpusSpec{
			Seed:                9,
			NumTopics:           10,
			MinSubtopics:        2,
			MaxSubtopics:        5,
			DocsPerSubtopic:     6,
			GenericDocsPerTopic: -1,
			NoiseDocs:           50,
			DocLength:           30,
			BackgroundVocab:     300,
			TopicVocab:          8,
			SubtopicVocab:       6,
		},
		Sessions:  6000,
		Presets:   []string{"aol", "msn"},
		TrainFrac: 0.7,
	}
	results, err := RunRecall(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Events < 50 {
			t.Errorf("%s: only %d events", r.Preset, r.Events)
		}
		// Shape: a solid majority of specialization events must be covered
		// (paper: 61-65%); and covered <= detected <= 1.
		if r.Covered < 0.4 || r.Covered > 1 {
			t.Errorf("%s: covered = %.2f outside plausible band", r.Preset, r.Covered)
		}
		if r.Detected < r.Covered {
			t.Errorf("%s: detected %.2f < covered %.2f", r.Preset, r.Detected, r.Covered)
		}
	}
	var sb strings.Builder
	FormatRecall(&sb, results)
	if !strings.Contains(sb.String(), "covered") {
		t.Error("recall output missing header")
	}
}

// Integration guard: the default Table 3 pipeline config builds (tiny
// version) through the public facade.
func TestPipelineConfigIntegration(t *testing.T) {
	cfg := repro.Config{
		Corpus: synth.CorpusSpec{
			Seed: 11, NumTopics: 3, MinSubtopics: 2, MaxSubtopics: 3,
			DocsPerSubtopic: 5, GenericDocsPerTopic: 3, NoiseDocs: 30, DocLength: 30,
			BackgroundVocab: 200, TopicVocab: 6, SubtopicVocab: 5,
		},
		Log:           synth.MSNLike(12, 800),
		NumCandidates: 50,
		PerSpec:       5,
		K:             10,
	}
	pipe, err := repro.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := pipe.Diversify("topic01", core.AlgOptSelect)
	if len(sel) == 0 {
		t.Error("end-to-end diversification empty")
	}
}
