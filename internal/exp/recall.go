package exp

import (
	"fmt"
	"io"

	"repro/internal/qfg"
	"repro/internal/suggest"
	"repro/internal/synth"
)

// RecallSpec parameterizes the Appendix C recall measurement: split each
// log 70/30, train the recommender on the first part, and measure on the
// second "the number of times a user, after submitting an
// ambiguous/faceted query, issued a new query that is a specialization of
// the previous one" for which our system would have provided diversified
// results (paper: 61% on AOL, 65% on MSN).
type RecallSpec struct {
	Seed      int64
	Corpus    synth.CorpusSpec
	Sessions  int
	Presets   []string
	TrainFrac float64
}

// DefaultRecallSpec mirrors Appendix C on the default synthetic testbed.
func DefaultRecallSpec() RecallSpec {
	return RecallSpec{
		Seed:      1,
		Corpus:    synth.DefaultCorpusSpec(),
		Sessions:  12000,
		Presets:   []string{"aol", "msn"},
		TrainFrac: 0.7,
	}
}

// RecallResult is one log's measurement.
type RecallResult struct {
	Preset string
	// Events counts test-set occurrences of (ambiguous query → its
	// specialization) inside a logical session.
	Events int
	// Detected is the fraction of events whose head query Algorithm 1
	// flags as ambiguous (S_q non-empty).
	Detected float64
	// Covered is the fraction of events where, additionally, the
	// specialization the user actually chose is in the mined S_q — the
	// paper's "able to provide diversified results" recall.
	Covered float64
}

// RunRecall executes the measurement for each preset.
func RunRecall(spec RecallSpec) ([]RecallResult, error) {
	if spec.Sessions == 0 {
		d := DefaultRecallSpec()
		spec.Sessions = d.Sessions
		if len(spec.Presets) == 0 {
			spec.Presets = d.Presets
		}
		if spec.TrainFrac == 0 {
			spec.TrainFrac = d.TrainFrac
		}
		if spec.Corpus.NumTopics == 0 {
			spec.Corpus = d.Corpus
		}
	}
	if spec.TrainFrac == 0 {
		spec.TrainFrac = 0.7
	}

	tb := synth.GenerateTestbed(spec.Corpus)
	var out []RecallResult
	for _, preset := range spec.Presets {
		var logSpec synth.LogSpec
		switch preset {
		case "msn":
			logSpec = synth.MSNLike(spec.Seed+7, spec.Sessions)
		default:
			logSpec = synth.AOLLike(spec.Seed+3, spec.Sessions)
		}
		log := synth.GenerateLog(tb, logSpec)
		train, test := log.SplitByTime(spec.TrainFrac)

		trainSessions := qfg.ExtractSessions(train, qfg.Options{})
		rec := suggest.Train(trainSessions, train.Frequencies(), suggest.TrainOptions{})
		opts := suggest.DefaultDetectOptions()
		opts.MaxCandidates = 100

		// Cache detection per distinct head query.
		detected := make(map[string][]suggest.Specialization)
		detect := func(q string) []suggest.Specialization {
			if s, ok := detected[q]; ok {
				return s
			}
			s := suggest.AmbiguousQueryDetect(q, rec, opts)
			detected[q] = s
			return s
		}

		events, detCount, covCount := 0, 0, 0
		for _, session := range qfg.ExtractSessions(test, qfg.Options{}) {
			qs := session.Queries()
			for i := 1; i < len(qs); i++ {
				if !suggest.IsSpecialization(qs[i-1], qs[i]) {
					continue
				}
				events++
				specs := detect(qs[i-1])
				if len(specs) == 0 {
					continue
				}
				detCount++
				for _, s := range specs {
					if s.Query == qs[i] {
						covCount++
						break
					}
				}
			}
		}
		res := RecallResult{Preset: preset, Events: events}
		if events > 0 {
			res.Detected = float64(detCount) / float64(events)
			res.Covered = float64(covCount) / float64(events)
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatRecall prints the Appendix C recall lines.
func FormatRecall(w io.Writer, results []RecallResult) {
	fmt.Fprintf(w, "%-8s %8s %10s %10s\n", "log", "events", "detected", "covered")
	for _, r := range results {
		fmt.Fprintf(w, "%-8s %8d %9.1f%% %9.1f%%\n",
			r.Preset, r.Events, 100*r.Detected, 100*r.Covered)
	}
}
