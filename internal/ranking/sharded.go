package ranking

import (
	"context"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/topk"
)

// Sharded retrieval: the scale-out path of the scoring phase. The main
// query and any number of companion query vectors (the specialization
// queries whose R_q′ lists feed ComputeUtilities) are scored in ONE
// fan-out over the index segments — each shard worker makes a single pass
// over its posting sub-slices, computing every term's model score once
// per posting and scattering it into a dense accumulator per pending
// query — and a deterministic k-way merge gathers the per-shard top-k
// lists. Results are bit-identical to running Retrieve per query on the
// monolithic index (the differential tests in sharded_test.go enforce
// this):
//
//   - term statistics and collection statistics are global (segments
//     share one physical index), so per-posting scores are the very same
//     float64s;
//   - per-query contributions accumulate in ascending term order — each
//     query's sorted term list is a subsequence of the sorted scatter
//     plan — exactly the order Retrieve uses, so the non-associative
//     float additions happen in the same sequence;
//   - the merge orders by (score desc, doc asc), Retrieve's tie-break,
//     and shard doc ranges are disjoint, so no new ties can appear.

// scatterTarget says "query q wants this term with multiplicity mult".
type scatterTarget struct {
	q    int
	mult float64
}

// scatterTerm is one dictionary term of the batch's term union with the
// queries it must be scattered to.
type scatterTerm struct {
	stats   index.TermStats
	targets []scatterTarget
}

// buildScatterPlan resolves the union of all query terms against the
// dictionary, in ascending term order, grouping the queries interested in
// each term. Unindexed terms are dropped (they contribute no postings).
func buildScatterPlan(idx *index.Index, qterms [][]string, qmults [][]float64) []scatterTerm {
	type ref struct {
		term string
		q    int
		mult float64
	}
	var refs []ref
	for q := range qterms {
		for i, t := range qterms[q] {
			refs = append(refs, ref{term: t, q: q, mult: qmults[q][i]})
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].term != refs[j].term {
			return refs[i].term < refs[j].term
		}
		return refs[i].q < refs[j].q
	})
	var plan []scatterTerm
	for i := 0; i < len(refs); {
		j := i
		for j < len(refs) && refs[j].term == refs[i].term {
			j++
		}
		if tstats, ok := idx.Lookup(refs[i].term); ok {
			st := scatterTerm{stats: tstats, targets: make([]scatterTarget, 0, j-i)}
			for _, r := range refs[i:j] {
				st.targets = append(st.targets, scatterTarget{q: r.q, mult: r.mult})
			}
			plan = append(plan, st)
		}
		i = j
	}
	return plan
}

// shardHits is the per-shard output for one query: hits with global Doc
// and final Score, sorted by (score desc, doc asc); DocID and Rank are
// filled after the gather.
type shardHits []Hit

// scoreShard runs the batch's scatter plan over one shard: a single pass
// over the shard's posting sub-slices feeding one pooled accumulator per
// query, then a bounded top-k selection per query. Cancellation is
// checked once per plan term — the natural preemption point between
// posting-list traversals.
//
// Queries flagged in pruned leave the shared scatter pass and run the
// MaxScore evaluator over shard-ranged iterators of the same lists
// instead, each against its own local heap (table carries the per-term
// bounds; global maxima, hence valid for any document sub-range). A
// pruned query gives up the batch's term-score sharing but skips whole
// posting blocks by header; per-shard results are bit-identical either
// way, so the merge cannot tell.
func scoreShard(ctx context.Context, seg *index.Segmented, shard index.Shard, model Model,
	plan []scatterTerm, queries [][]string, ks []int, table []float64, pruned []bool) ([]shardHits, error) {
	idx := seg.Index()
	cstats := idx.Stats()
	lo, _ := shard.DocRange()
	nq := len(queries)

	// Cursor lists for the pruned queries, assembled off the plan: the
	// plan is in ascending term order and each query's term list is a
	// subsequence of it, so append order is the accumulation order. Each
	// cursor gets its OWN shard-ranged iterator (iterators carry decode
	// state and pooled scratch, so they cannot be shared the way the flat
	// sub-slices once were). Ownership passes to maxscoreTopK query by
	// query; the deferred sweep releases whatever an early error leaves
	// behind (Release is a no-op for never-decoded iterators).
	var msCursors [][]msCursor
	bkey := boundKey(model)
	if table != nil {
		msCursors = make([][]msCursor, nq)
		defer func() {
			for _, cs := range msCursors {
				for i := range cs {
					cs[i].it.Release()
				}
			}
		}()
		for ti := range plan {
			st := &plan[ti]
			for _, tgt := range st.targets {
				if !pruned[tgt.q] {
					continue
				}
				it := shard.Iter(st.stats.ID)
				it.SetBlockMax(idx.TermBlockMax(bkey, st.stats.ID))
				msCursors[tgt.q] = append(msCursors[tgt.q], msCursor{
					it:    it,
					stats: st.stats,
					mult:  tgt.mult,
					ub:    tgt.mult * table[st.stats.ID],
					order: len(msCursors[tgt.q]),
				})
			}
		}
	}

	accs := make([]*accumulator, nq)
	anyExhaustive := false
	for q := range accs {
		if len(queries[q]) == 0 || (pruned != nil && pruned[q]) {
			continue
		}
		acc := accPool.Get().(*accumulator)
		acc.reset(shard.NumDocs())
		accs[q] = acc
		anyExhaustive = true
	}
	defer func() {
		for _, acc := range accs {
			if acc != nil {
				accPool.Put(acc)
			}
		}
	}()

	if anyExhaustive {
		for ti := range plan {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			st := &plan[ti]
			targets := st.targets
			if table != nil {
				// Strip pruned queries' targets; skip the traversal when
				// nobody on the exhaustive path wants this term.
				live := targets[:0:0]
				for _, tgt := range targets {
					if !pruned[tgt.q] {
						live = append(live, tgt)
					}
				}
				if len(live) == 0 {
					continue
				}
				targets = live
			}
			it := shard.Iter(st.stats.ID)
			for blk := it.NextBlock(); blk != nil; blk = it.NextBlock() {
				for _, p := range blk {
					s := model.TermScore(float64(p.TF), float64(idx.DocLen(p.Doc)), st.stats, cstats)
					if s == 0 {
						continue
					}
					local := p.Doc - lo
					for _, tgt := range targets {
						accs[tgt.q].add(local, tgt.mult*s)
					}
				}
			}
			it.Release()
		}
	}

	out := make([]shardHits, nq)
	for q, acc := range accs {
		if pruned != nil && pruned[q] {
			// Ownership of the cursors (and their iterators) transfers to
			// maxscoreTopK; drop our reference so the deferred sweep does
			// not double-release.
			cs := msCursors[q]
			msCursors[q] = nil
			items, err := maxscoreTopK(ctx, idx, model, len(queries[q]), cs, ks[q])
			if err != nil {
				return nil, err
			}
			if len(items) == 0 {
				continue
			}
			hits := make(shardHits, len(items))
			for i, it := range items {
				hits[i] = Hit{Doc: it.Value, Score: it.Score}
			}
			out[q] = hits
			continue
		}
		if acc == nil || len(acc.touched) == 0 {
			continue
		}
		qLen := len(queries[q])
		heap := topk.NewBounded[int32](boundFor(ks[q], len(acc.touched)))
		for _, local := range acc.touched {
			doc := local + lo
			score := acc.scores[local] + model.DocAdjust(float64(idx.DocLen(doc)), qLen, cstats)
			heap.Push(doc, score, int64(doc))
		}
		items := heap.Drain()
		hits := make(shardHits, len(items))
		for i, it := range items {
			hits[i] = Hit{Doc: it.Value, Score: it.Score}
		}
		out[q] = hits
	}
	return out, nil
}

// mergeHits performs the deterministic k-way merge of per-shard hit
// lists: each list is already sorted by (score desc, doc asc), and a
// cursor min-heap pops the globally best head until k hits are gathered
// (k <= 0 merges everything). Shard doc ranges are disjoint, so the
// (score, doc) order is total and the output is unique.
func mergeHits(lists []shardHits, k int) []Hit {
	live := lists[:0:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			live = append(live, l)
			total += len(l)
		}
	}
	if len(live) == 0 {
		return nil
	}
	want := total
	if k > 0 && k < want {
		want = k
	}
	if len(live) == 1 {
		out := live[0]
		if len(out) > want {
			out = out[:want]
		}
		return out
	}
	// cursors is a binary min-heap ordered by "head hit wins": higher
	// score first, lower doc on ties.
	cursors := make([]shardHits, len(live))
	copy(cursors, live)
	headBefore := func(a, b shardHits) bool {
		if a[0].Score != b[0].Score {
			return a[0].Score > b[0].Score
		}
		return a[0].Doc < b[0].Doc
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			best := i
			if l < len(cursors) && headBefore(cursors[l], cursors[best]) {
				best = l
			}
			if r < len(cursors) && headBefore(cursors[r], cursors[best]) {
				best = r
			}
			if best == i {
				return
			}
			cursors[i], cursors[best] = cursors[best], cursors[i]
			i = best
		}
	}
	for i := len(cursors)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	out := make([]Hit, 0, want)
	for len(out) < want {
		out = append(out, cursors[0][0])
		if rest := cursors[0][1:]; len(rest) > 0 {
			cursors[0] = rest
		} else {
			cursors[0] = cursors[len(cursors)-1]
			cursors = cursors[:len(cursors)-1]
			if len(cursors) == 0 {
				break
			}
		}
		siftDown(0)
	}
	return out
}

// BatchOptions tunes a RetrieveBatch round.
type BatchOptions struct {
	// Prune enables MaxScore dynamic pruning for the queries it can
	// serve exactly: the model must be Boundable with its max-score
	// table installed on the index, and the query must bound its result
	// size (k > 0 — "all matches" admits no threshold). Everything else
	// keeps the exhaustive shared-scatter path. Results are bit-identical
	// either way; only the work differs.
	Prune bool
}

// RetrieveBatch evaluates a batch of analyzed queries against the
// segmented index in one scatter-gather round: every shard is visited by
// exactly one worker no matter how many queries are pending, and each
// worker computes each (term, posting) model score once, sharing it
// across all queries containing the term. ks[i] bounds query i's result
// size (<= 0 means all matches). The per-query results are bit-identical
// to Retrieve(seg.Index(), model, queries[i], ks[i]).
//
// ctx cancellation aborts the remaining shard work and returns the
// context's error — the serving layer threads request contexts here so
// shed or disconnected requests stop consuming shard workers.
func RetrieveBatch(ctx context.Context, seg *index.Segmented, model Model, queries [][]string, ks []int) ([][]Hit, error) {
	return RetrieveBatchOpts(ctx, seg, model, queries, ks, BatchOptions{})
}

// batchPlan resolves everything about a query batch that is shard-
// independent: per-query sorted terms and multiplicities, the scatter
// plan over the term union, and — when pruning is requested and the
// model's max-score table is installed — the per-query pruned flags.
// Both the all-shards gather (RetrieveBatchOpts) and the single-shard
// worker path (RetrieveShardBatch) build their plan here, so a remote
// worker scores its shard with exactly the plan the in-process fan-out
// would have used — the first half of the distributed tier's
// bit-identity argument (the other half is that per-query accumulation
// order depends only on the query's own sorted terms, never on the rest
// of the batch).
func batchPlan(idx *index.Index, queries [][]string, ks []int, opts BatchOptions, model Model) (qterms [][]string, plan []scatterTerm, table []float64, pruned []bool, any bool) {
	qterms = make([][]string, len(queries))
	qmults := make([][]float64, len(queries))
	for q, toks := range queries {
		if len(toks) == 0 {
			continue
		}
		qterms[q], qmults[q] = termMultiplicities(toks)
		any = true
	}
	if !any {
		return qterms, nil, nil, nil, false
	}
	plan = buildScatterPlan(idx, qterms, qmults)

	if opts.Prune {
		if table = maxScoreTable(idx, model); table != nil {
			pruned = make([]bool, len(queries))
			anyPruned := false
			for q := range queries {
				pruned[q] = ks[q] > 0 && qterms[q] != nil
				anyPruned = anyPruned || pruned[q]
			}
			if !anyPruned {
				table, pruned = nil, nil
			}
		}
	}
	return qterms, plan, table, pruned, true
}

// RetrieveBatchOpts is RetrieveBatch with explicit options — the engine
// comes through here to switch MaxScore pruning on.
func RetrieveBatchOpts(ctx context.Context, seg *index.Segmented, model Model, queries [][]string, ks []int, opts BatchOptions) ([][]Hit, error) {
	if len(queries) != len(ks) {
		panic("ranking: RetrieveBatch queries/ks length mismatch")
	}
	out := make([][]Hit, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	idx := seg.Index()

	qterms, plan, table, pruned, any := batchPlan(idx, queries, ks, opts, model)
	if !any {
		return out, nil
	}

	shards := seg.NumShards()
	perShard := make([][]shardHits, shards)
	if shards == 1 {
		hits, err := scoreShard(ctx, seg, seg.Shard(0), model, plan, queries, ks, table, pruned)
		if err != nil {
			return nil, err
		}
		perShard[0] = hits
	} else {
		var wg sync.WaitGroup
		errs := make([]error, shards)
		for si := 0; si < shards; si++ {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				perShard[si], errs[si] = scoreShard(ctx, seg, seg.Shard(si), model, plan, queries, ks, table, pruned)
			}(si)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	lists := make([]shardHits, 0, shards)
	for q := range queries {
		if qterms[q] == nil {
			continue
		}
		lists = lists[:0]
		for si := 0; si < shards; si++ {
			lists = append(lists, perShard[si][q])
		}
		hits := mergeHits(lists, ks[q])
		for i := range hits {
			hits[i].DocID = idx.DocID(hits[i].Doc)
			hits[i].Rank = i + 1
		}
		out[q] = hits
	}
	return out, nil
}

// MergeSegments merges per-segment hit lists — each already sorted by
// (score desc, doc asc) with globalized Doc numbers and DocIDs filled —
// into one top-k list with the same deterministic order, reassigning
// ranks. It is the cross-segment gather of the live index's search path:
// the same k-way merge the sharded scorer uses, so stitching segment
// results cannot introduce order differences a single-segment run would
// not have.
func MergeSegments(lists [][]Hit, k int) []Hit {
	sh := make([]shardHits, len(lists))
	for i, l := range lists {
		sh[i] = l
	}
	hits := mergeHits(sh, k)
	for i := range hits {
		hits[i].Rank = i + 1
	}
	return hits
}

// RetrieveSharded is the single-query form of RetrieveBatch: Retrieve
// with per-shard parallel scoring and a deterministic merge, bit-identical
// to the monolithic path.
func RetrieveSharded(ctx context.Context, seg *index.Segmented, model Model, queryTokens []string, k int) ([]Hit, error) {
	return RetrieveShardedOpts(ctx, seg, model, queryTokens, k, BatchOptions{})
}

// RetrieveShardedOpts is RetrieveSharded with explicit options.
func RetrieveShardedOpts(ctx context.Context, seg *index.Segmented, model Model, queryTokens []string, k int, opts BatchOptions) ([]Hit, error) {
	res, err := RetrieveBatchOpts(ctx, seg, model, [][]string{queryTokens}, []int{k}, opts)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}
