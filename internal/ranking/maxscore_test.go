package ranking

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
)

// installTables attaches max-score tables for every boundable test model.
func installTables(t testing.TB, idx *index.Index) {
	t.Helper()
	if err := InstallMaxScores(idx, DPH{}, BM25{}, TFIDF{}, LMDirichlet{}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxScoreTableDominatesPostings is the bound property the whole
// algorithm rests on: for every term, every posting's model score is at
// most the table entry.
func TestMaxScoreTableDominatesPostings(t *testing.T) {
	idx := randomCorpusIndex(t, 131, 200)
	installTables(t, idx)
	cstats := idx.Stats()
	for _, m := range []Boundable{DPH{}, BM25{}, TFIDF{}} {
		table := idx.MaxScores(m.BoundKey())
		if table == nil {
			t.Fatalf("%s: no table installed", m.Name())
		}
		for id := int32(0); id < int32(idx.NumTerms()); id++ {
			tstats, plist, _ := idx.LookupPostings(idx.Term(id))
			for _, p := range plist {
				s := m.TermScore(float64(p.TF), float64(idx.DocLen(p.Doc)), tstats, cstats)
				if s > table[id] {
					t.Fatalf("%s term %q: posting score %v exceeds bound %v",
						m.Name(), idx.Term(id), s, table[id])
				}
			}
		}
	}
}

// TestLMDirichletNotPruneable pins the capability gate: the language
// model's negative DocAdjust cannot be bounded, so it must never get a
// table and always fall back to the exhaustive path.
func TestLMDirichletNotPruneable(t *testing.T) {
	idx := randomCorpusIndex(t, 132, 60)
	installTables(t, idx)
	if Pruneable(idx, LMDirichlet{}) {
		t.Fatal("LMDirichlet reported pruneable")
	}
	// And the fallback is literally Retrieve.
	q := []string{"v01", "v02", "v03"}
	if !hitsBitIdentical(RetrievePruned(idx, LMDirichlet{}, q, 10), Retrieve(idx, LMDirichlet{}, q, 10)) {
		t.Fatal("LMDirichlet fallback diverged from Retrieve")
	}
}

// TestRetrievePrunedBitIdentical is the monolithic acceptance
// differential: for the boundable models, across k ∈ {10, 100, all} and
// randomized query shapes, MaxScore must reproduce the exhaustive
// evaluator exactly — same documents, same ranks, same float64 bits.
func TestRetrievePrunedBitIdentical(t *testing.T) {
	idx := randomCorpusIndex(t, 41, 300)
	installTables(t, idx)
	rng := rand.New(rand.NewSource(17))
	for _, m := range []Model{DPH{}, BM25{}, TFIDF{}, LMDirichlet{}} {
		for _, k := range []int{10, 100, 0} {
			for trial := 0; trial < 30; trial++ {
				qn := rng.Intn(6) + 1
				q := make([]string, qn)
				for j := range q {
					q[j] = fmt.Sprintf("v%02d", rng.Intn(40))
				}
				if trial%5 == 0 {
					q = append(q, "never-indexed-term")
				}
				if trial%7 == 0 {
					q = append(q, q[0]) // duplicate-term multiplicity
				}
				want := Retrieve(idx, m, q, k)
				got := RetrievePruned(idx, m, q, k)
				if !hitsBitIdentical(got, want) {
					t.Fatalf("%s k=%d q=%v:\n got %+v\nwant %+v", m.Name(), k, q, got, want)
				}
			}
		}
	}
}

// TestRetrieveBatchPrunedBitIdentical is the sharded acceptance
// differential: pruning rides the scatter plan through per-shard workers,
// and across shard counts N ∈ {1, 2, 4, 7}, boundable models, and
// k ∈ {10, 100, all}, the merged output must equal exhaustive Retrieve
// bit for bit (LMDirichlet exercises the per-batch fallback).
func TestRetrieveBatchPrunedBitIdentical(t *testing.T) {
	idx := randomCorpusIndex(t, 43, 300)
	installTables(t, idx)
	queries := [][]string{
		{"v01", "v02", "v03"},
		{"v01", "v09"},         // shares v01 — scatter-plan overlap
		{"v02", "v02", "v17"},  // duplicate term multiplicity
		{},                     // empty query
		{"never-indexed-term"}, // no postings at all
		{"v03", "v05", "v05", "v07", "v11"},
	}
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 7} {
		seg := index.SegmentIndex(idx, shards)
		for _, m := range []Model{DPH{}, BM25{}, TFIDF{}, LMDirichlet{}} {
			for _, k := range []int{10, 100, 0} {
				ks := make([]int, len(queries))
				for i := range ks {
					ks[i] = k
				}
				// Mixed batch: one query keeps k=0 (exhaustive by rule)
				// while the rest prune, exercising the split pass.
				if k > 0 {
					ks[len(ks)-1] = 0
				}
				got, err := RetrieveBatchOpts(ctx, seg, m, queries, ks, BatchOptions{Prune: true})
				if err != nil {
					t.Fatal(err)
				}
				for qi := range queries {
					want := Retrieve(idx, m, queries[qi], ks[qi])
					if !hitsBitIdentical(got[qi], want) {
						t.Fatalf("shards=%d %s k=%d query %d:\n got %+v\nwant %+v",
							shards, m.Name(), ks[qi], qi, got[qi], want)
					}
				}
			}
		}
	}
}

// TestRetrievePrunedTiesAndEdgeCases forces score ties (identical
// documents) and degenerate inputs through the pruned path.
func TestRetrievePrunedTiesAndEdgeCases(t *testing.T) {
	idx := buildIndex(t, map[string]string{
		"a-doc": "same words here",
		"b-doc": "same words here",
		"c-doc": "same words here",
		"d-doc": "other content entirely",
	})
	installTables(t, idx)
	for _, k := range []int{1, 2, 3} {
		want := Retrieve(idx, BM25{}, []string{"same", "words"}, k)
		got := RetrievePruned(idx, BM25{}, []string{"same", "words"}, k)
		if !hitsBitIdentical(got, want) {
			t.Fatalf("k=%d ties: got %+v want %+v", k, got, want)
		}
	}
	if got := RetrievePruned(idx, BM25{}, nil, 5); got != nil {
		t.Error("empty query returned hits")
	}
	if got := RetrievePruned(idx, BM25{}, []string{"zzz-unindexed"}, 5); got != nil {
		t.Error("unknown-term query returned hits")
	}
}

// TestRetrieveBatchPrunedCanceled pins the preemption contract on the
// pruned path: a canceled request context must abort the MaxScore
// evaluation, exactly as it aborts the exhaustive scatter pass.
func TestRetrieveBatchPrunedCanceled(t *testing.T) {
	idx := randomCorpusIndex(t, 45, 60)
	installTables(t, idx)
	seg := index.SegmentIndex(idx, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RetrieveBatchOpts(ctx, seg, DPH{}, [][]string{{"v01", "v02"}}, []int{10}, BatchOptions{Prune: true})
	if err == nil {
		t.Fatal("canceled context: want error, got nil")
	}
}

// TestInstallMaxScoresRejectsContractViolators: a model claiming
// Boundable with a nonzero DocAdjust must not get a table.
func TestInstallMaxScoresRejectsContractViolators(t *testing.T) {
	idx := randomCorpusIndex(t, 44, 40)
	if err := InstallMaxScores(idx, badBoundable{}); err != nil {
		t.Fatal(err)
	}
	if Pruneable(idx, badBoundable{}) {
		t.Fatal("zero-adjust violator got a max-score table")
	}
}

// badBoundable claims the capability but has a nonzero DocAdjust.
type badBoundable struct{ TFIDF }

func (badBoundable) BoundKey() string { return "BAD" }
func (badBoundable) DocAdjust(docLen float64, qLen int, c index.CollectionStats) float64 {
	return -1
}
