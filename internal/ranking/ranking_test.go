package ranking

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/index"
)

func buildIndex(t testing.TB, docs map[string]string) *index.Index {
	t.Helper()
	b := index.NewBuilder()
	// Deterministic insertion order.
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sortStrings(ids)
	for _, id := range ids {
		if err := b.Add(id, strings.Fields(docs[id])); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func newsIndex(t testing.TB) *index.Index {
	return buildIndex(t, map[string]string{
		"apple-fruit": "apple fruit orchard harvest apple pie recipe fruit sugar",
		"apple-corp":  "apple company mac computer iphone product launch keynote",
		"apple-mixed": "apple apple apple news daily general report",
		"tank-doc":    "leopard tank army military armor battalion",
		"cat-doc":     "leopard cat wildlife africa savanna predator",
		"unrelated":   "weather forecast rain sunny cloud temperature",
		"longpadding": "filler words here that mention apple once among many many many many many many many many other other other tokens tokens tokens to make this document much longer than the rest",
	})
}

func TestRetrieveDPHRanksRelevantFirst(t *testing.T) {
	idx := newsIndex(t)
	hits := Retrieve(idx, DPH{}, []string{"apple", "fruit"}, 10)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].DocID != "apple-fruit" {
		t.Errorf("top hit = %q, want apple-fruit", hits[0].DocID)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Error("hits not sorted by score")
		}
		if hits[i].Rank != i+1 {
			t.Errorf("rank %d = %d", i, hits[i].Rank)
		}
	}
}

func TestRetrieveAllModelsAgreeOnObviousQuery(t *testing.T) {
	idx := newsIndex(t)
	for _, m := range []Model{DPH{}, BM25{}, TFIDF{}, LMDirichlet{}} {
		hits := Retrieve(idx, m, []string{"leopard", "tank", "army"}, 3)
		if len(hits) == 0 {
			t.Fatalf("%s: no hits", m.Name())
		}
		if hits[0].DocID != "tank-doc" {
			t.Errorf("%s: top hit = %q, want tank-doc", m.Name(), hits[0].DocID)
		}
	}
}

func TestRetrieveKTruncation(t *testing.T) {
	idx := newsIndex(t)
	all := Retrieve(idx, DPH{}, []string{"apple"}, 0)
	top2 := Retrieve(idx, DPH{}, []string{"apple"}, 2)
	if len(top2) != 2 {
		t.Fatalf("k=2 returned %d", len(top2))
	}
	if len(all) < 3 {
		t.Fatalf("k=0 should return all matches, got %d", len(all))
	}
	for i := range top2 {
		if top2[i].DocID != all[i].DocID {
			t.Errorf("top-2 disagrees with full ranking at %d", i)
		}
	}
}

func TestRetrieveEmptyAndUnknown(t *testing.T) {
	idx := newsIndex(t)
	if hits := Retrieve(idx, DPH{}, nil, 10); hits != nil {
		t.Error("empty query returned hits")
	}
	if hits := Retrieve(idx, DPH{}, []string{"zzzznotindexed"}, 10); hits != nil {
		t.Error("unknown-term query returned hits")
	}
}

func TestRetrieveDeterministicTieBreak(t *testing.T) {
	// Two identical documents must always appear in doc-number order.
	idx := buildIndex(t, map[string]string{
		"a-doc": "same words here",
		"b-doc": "same words here",
	})
	for trial := 0; trial < 5; trial++ {
		hits := Retrieve(idx, BM25{}, []string{"same", "words"}, 10)
		if len(hits) != 2 || hits[0].DocID != "a-doc" || hits[1].DocID != "b-doc" {
			t.Fatalf("trial %d: hits = %+v", trial, hits)
		}
	}
}

func TestRetrieveBitwiseRepeatable(t *testing.T) {
	// Repeated identical multi-term queries must return bitwise-identical
	// scores: term contributions are accumulated in sorted term order, not
	// map order, because float addition is not associative. (The serving
	// cache's Diversify-equivalence contract depends on this.)
	rng := rand.New(rand.NewSource(9))
	docs := make(map[string]string, 60)
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}
	for i := 0; i < 60; i++ {
		var w []string
		for j := 0; j < 25; j++ {
			w = append(w, vocab[rng.Intn(len(vocab))])
		}
		docs[fmt.Sprintf("doc%02d", i)] = strings.Join(w, " ")
	}
	idx := buildIndex(t, docs)
	query := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	first := Retrieve(idx, DPH{}, query, 0)
	for trial := 0; trial < 10; trial++ {
		again := Retrieve(idx, DPH{}, query, 0)
		if len(again) != len(first) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(again), len(first))
		}
		for i := range first {
			if again[i].DocID != first[i].DocID || again[i].Score != first[i].Score {
				t.Fatalf("trial %d hit %d: %+v != %+v", trial, i, again[i], first[i])
			}
		}
	}
}

func TestDPHProperties(t *testing.T) {
	c := index.CollectionStats{NumDocs: 1000, TotalTokens: 100000, AvgDocLen: 100}
	ts := index.TermStats{DF: 10, CF: 20}
	m := DPH{}
	// Monotone-ish in tf for fixed docLen (over the small-tf regime).
	prev := 0.0
	for tf := 1.0; tf <= 8; tf++ {
		s := m.TermScore(tf, 100, ts, c)
		if s < prev {
			t.Errorf("DPH not increasing at tf=%f: %f < %f", tf, s, prev)
		}
		prev = s
	}
	// Rarer terms (smaller CF) score at least as high.
	rare := m.TermScore(3, 100, index.TermStats{DF: 2, CF: 3}, c)
	common := m.TermScore(3, 100, index.TermStats{DF: 500, CF: 5000}, c)
	if rare <= common {
		t.Errorf("DPH rare %f <= common %f", rare, common)
	}
	// Degenerate inputs.
	if m.TermScore(0, 100, ts, c) != 0 {
		t.Error("tf=0 scored")
	}
	if m.TermScore(5, 5, ts, c) != 0 {
		t.Error("tf==docLen (f=1) must score 0 under Popper normalization")
	}
	if s := m.TermScore(3, 100, ts, index.CollectionStats{}); s != 0 {
		t.Error("empty collection scored")
	}
}

func TestBM25KnownValue(t *testing.T) {
	c := index.CollectionStats{NumDocs: 100, TotalTokens: 10000, AvgDocLen: 100}
	ts := index.TermStats{DF: 10, CF: 50}
	m := BM25{} // k1=1.2, b=0.75
	tf, dl := 3.0, 120.0
	idf := math.Log(1 + (100.0-10+0.5)/(10+0.5))
	denom := tf + 1.2*(1-0.75+0.75*dl/100)
	want := idf * tf * 2.2 / denom
	if got := m.TermScore(tf, dl, ts, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("BM25 = %.12f, want %.12f", got, want)
	}
}

func TestLMDirichletDocAdjust(t *testing.T) {
	c := index.CollectionStats{NumDocs: 100, TotalTokens: 10000, AvgDocLen: 100}
	m := LMDirichlet{Mu: 1000}
	// Longer docs get a more negative adjustment.
	short := m.DocAdjust(10, 2, c)
	long := m.DocAdjust(1000, 2, c)
	if long >= short {
		t.Errorf("DocAdjust long %f >= short %f", long, short)
	}
	// Zero query terms: no adjustment.
	if m.DocAdjust(100, 0, c) != 0 {
		t.Error("qLen=0 adjusted")
	}
}

func TestScoreDocMatchesRetrieve(t *testing.T) {
	idx := newsIndex(t)
	q := []string{"apple", "fruit"}
	hits := Retrieve(idx, DPH{}, q, 0)
	for _, h := range hits {
		s := ScoreDoc(idx, DPH{}, q, h.Doc)
		if math.Abs(s-h.Score) > 1e-9 {
			t.Errorf("ScoreDoc(%s) = %f, Retrieve score %f", h.DocID, s, h.Score)
		}
	}
	// Non-matching doc scores 0.
	var nonMatch int32 = -1
	for d := int32(0); d < int32(idx.NumDocs()); d++ {
		if idx.DocID(d) == "unrelated" {
			nonMatch = d
		}
	}
	if s := ScoreDoc(idx, DPH{}, q, nonMatch); s != 0 {
		t.Errorf("non-matching doc scored %f", s)
	}
}

func TestNormalizeScores(t *testing.T) {
	hits := []Hit{{Score: 4}, {Score: 2}, {Score: 1}}
	norm := NormalizeScores(hits)
	if norm[0].Score != 1 || norm[1].Score != 0.5 || norm[2].Score != 0.25 {
		t.Errorf("normalized = %+v", norm)
	}
	// Original slice untouched.
	if hits[0].Score != 4 {
		t.Error("NormalizeScores mutated input")
	}
	if got := NormalizeScores(nil); got != nil {
		t.Error("nil input mishandled")
	}
	zero := []Hit{{Score: 0}}
	if NormalizeScores(zero)[0].Score != 0 {
		t.Error("all-zero list changed")
	}
}

func TestNormalizeScoresInPlace(t *testing.T) {
	hits := []Hit{{Score: 4}, {Score: 2}, {Score: 1}}
	NormalizeScoresInPlace(hits)
	if hits[0].Score != 1 || hits[1].Score != 0.5 || hits[2].Score != 0.25 {
		t.Errorf("normalized = %+v", hits)
	}
	NormalizeScoresInPlace(nil) // must not panic
	zero := []Hit{{Score: 0}}
	NormalizeScoresInPlace(zero)
	if zero[0].Score != 0 {
		t.Error("all-zero list changed")
	}
	// The copying variant must agree with the in-place one bit for bit.
	a := []Hit{{Score: 3.7}, {Score: 1.1}, {Score: 2.9}}
	b := NormalizeScores(a)
	NormalizeScoresInPlace(a)
	for i := range a {
		if a[i].Score != b[i].Score {
			t.Errorf("variant disagreement at %d: %v != %v", i, a[i].Score, b[i].Score)
		}
	}
}

func TestTermMultiplicitiesFold(t *testing.T) {
	terms, mults := termMultiplicities([]string{"b", "a", "b", "c", "a", "b"})
	wantTerms := []string{"a", "b", "c"}
	wantMults := []float64{2, 3, 1}
	if len(terms) != 3 {
		t.Fatalf("terms = %v", terms)
	}
	for i := range wantTerms {
		if terms[i] != wantTerms[i] || mults[i] != wantMults[i] {
			t.Errorf("fold[%d] = (%q, %v), want (%q, %v)",
				i, terms[i], mults[i], wantTerms[i], wantMults[i])
		}
	}
	// The fold must not mutate the caller's token slice.
	in := []string{"z", "a"}
	termMultiplicities(in)
	if in[0] != "z" || in[1] != "a" {
		t.Errorf("input mutated: %v", in)
	}
}

// retrieveReference is the pre-accumulator implementation of Retrieve —
// the map[int32]float64 DAAT scorer — kept as a differential oracle: the
// dense-array rewrite must reproduce its scores bit for bit.
func retrieveReference(idx *index.Index, model Model, queryTokens []string, k int) []Hit {
	if len(queryTokens) == 0 {
		return nil
	}
	cstats := idx.Stats()
	terms, mults := termMultiplicities(queryTokens)
	acc := make(map[int32]float64, 1024)
	for ti, term := range terms {
		mult := mults[ti]
		tstats, ok := idx.Lookup(term)
		if !ok {
			continue
		}
		for _, p := range idx.Postings(term) {
			s := model.TermScore(float64(p.TF), float64(idx.DocLen(p.Doc)), tstats, cstats)
			if s != 0 {
				acc[p.Doc] += mult * s
			}
		}
	}
	if len(acc) == 0 {
		return nil
	}
	docs := make([]int32, 0, len(acc))
	for doc := range acc {
		docs = append(docs, doc)
	}
	hits := make([]Hit, 0, len(docs))
	for _, doc := range docs {
		score := acc[doc] + model.DocAdjust(float64(idx.DocLen(doc)), len(queryTokens), cstats)
		hits = append(hits, Hit{Doc: doc, DocID: idx.DocID(doc), Score: score})
	}
	// Order: descending score, ascending doc — the heap's contract.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && (hits[j].Score > hits[j-1].Score ||
			(hits[j].Score == hits[j-1].Score && hits[j].Doc < hits[j-1].Doc)); j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	if k > 0 && k < len(hits) {
		hits = hits[:k]
	}
	for i := range hits {
		hits[i].Rank = i + 1
	}
	return hits
}

// TestRetrieveMatchesMapReference is the differential test for the dense-
// accumulator rewrite: across models, query shapes and k values the new
// scorer must agree with the historical map-based scorer exactly.
func TestRetrieveMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	docs := make(map[string]string, 120)
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("v%02d", i)
	}
	for i := 0; i < 120; i++ {
		n := rng.Intn(50) + 1
		w := make([]string, n)
		for j := range w {
			w[j] = vocab[rng.Intn(len(vocab))]
		}
		docs[fmt.Sprintf("doc%03d", i)] = strings.Join(w, " ")
	}
	idx := buildIndex(t, docs)
	for _, m := range []Model{DPH{}, BM25{}, TFIDF{}, LMDirichlet{}} {
		for trial := 0; trial < 40; trial++ {
			qn := rng.Intn(6) + 1
			q := make([]string, qn)
			for j := range q {
				q[j] = vocab[rng.Intn(len(vocab))]
			}
			k := rng.Intn(30)
			got := Retrieve(idx, m, q, k)
			want := retrieveReference(idx, m, q, k)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d q=%v: %d hits, reference %d", m.Name(), k, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s k=%d q=%v hit %d:\n got %+v\nwant %+v", m.Name(), k, q, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRetrieveConcurrent exercises the pooled accumulators from many
// goroutines (meaningful under -race) and checks cross-query isolation.
func TestRetrieveConcurrent(t *testing.T) {
	idx := newsIndex(t)
	queries := [][]string{
		{"apple", "fruit"},
		{"leopard", "tank", "army"},
		{"apple"},
		{"weather", "rain"},
	}
	want := make([][]Hit, len(queries))
	for i, q := range queries {
		want[i] = Retrieve(idx, DPH{}, q, 0)
	}
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for iter := 0; iter < 50; iter++ {
				i := (g + iter) % len(queries)
				got := Retrieve(idx, DPH{}, queries[i], 0)
				if len(got) != len(want[i]) {
					done <- fmt.Errorf("query %d: %d hits, want %d", i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						done <- fmt.Errorf("query %d hit %d: %+v != %+v", i, j, got[j], want[i][j])
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryTermMultiplicity(t *testing.T) {
	idx := newsIndex(t)
	s1 := Retrieve(idx, TFIDF{}, []string{"apple"}, 1)[0].Score
	s2 := Retrieve(idx, TFIDF{}, []string{"apple", "apple"}, 1)[0].Score
	if math.Abs(s2-2*s1) > 1e-9 {
		t.Errorf("duplicate term score %f, want 2x %f", s2, s1)
	}
}

func BenchmarkRetrieveDPH(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	builder := index.NewBuilder()
	vocab := make([]string, 5000)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("t%04d", i)
	}
	for d := 0; d < 20000; d++ {
		toks := make([]string, 60)
		for j := range toks {
			// Zipf-ish skew via squared uniform.
			u := rng.Float64()
			toks[j] = vocab[int(u*u*float64(len(vocab)))]
		}
		builder.Add(fmt.Sprintf("doc%05d", d), toks)
	}
	idx := builder.Build()
	query := []string{"t0000", "t0003", "t0050"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Retrieve(idx, DPH{}, query, 100)
	}
}
