package ranking

import (
	"context"
	"fmt"

	"repro/internal/index"
)

// RetrieveShardBatch evaluates a query batch against ONE shard of the
// segmented index: the worker half of the distributed serving tier. A
// shard-worker process calls this for the shard it owns and ships the
// per-query hit lists to the router, which stitches the per-shard lists
// from all workers back together with MergeSegments — exactly the
// gather RetrieveBatchOpts performs in-process.
//
// The returned lists are what the in-process fan-out holds per shard
// just before its merge: hits with global Doc numbers and final scores,
// sorted by (score desc, doc asc), truncated to ks[q] (<= 0 keeps all
// matches), with DocID resolved. Rank is deliberately left zero — rank
// is a property of the merged list and is assigned by MergeSegments on
// the router.
//
// Bit-identity with the in-process path holds because the scatter plan
// is built by the same batchPlan, per-posting scores depend only on
// collection-global statistics (segments share one physical index), and
// each query's contributions accumulate in ascending term order — an
// order independent of which other queries share the batch. The
// differential test in shardbatch_test.go (and the distributed tier's
// router tests) enforce it.
func RetrieveShardBatch(ctx context.Context, seg *index.Segmented, si int, model Model, queries [][]string, ks []int, opts BatchOptions) ([][]Hit, error) {
	if len(queries) != len(ks) {
		panic("ranking: RetrieveShardBatch queries/ks length mismatch")
	}
	if si < 0 || si >= seg.NumShards() {
		return nil, fmt.Errorf("ranking: shard %d out of range [0,%d)", si, seg.NumShards())
	}
	out := make([][]Hit, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	idx := seg.Index()

	qterms, plan, table, pruned, any := batchPlan(idx, queries, ks, opts, model)
	if !any {
		return out, nil
	}

	hits, err := scoreShard(ctx, seg, seg.Shard(si), model, plan, queries, ks, table, pruned)
	if err != nil {
		return nil, err
	}
	for q := range queries {
		if qterms[q] == nil {
			continue
		}
		hl := []Hit(hits[q])
		for i := range hl {
			hl[i].DocID = idx.DocID(hl[i].Doc)
		}
		out[q] = hl
	}
	return out, nil
}
