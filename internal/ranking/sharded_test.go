package ranking

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/index"
)

// randomCorpusIndex builds the randomized differential corpus shared by
// the sharded tests: enough documents that every shard count in the
// sweep gets non-trivial ranges, with score ties likely (small vocab).
func randomCorpusIndex(t testing.TB, seed int64, numDocs int) *index.Index {
	rng := rand.New(rand.NewSource(seed))
	docs := make(map[string]string, numDocs)
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("v%02d", i)
	}
	for i := 0; i < numDocs; i++ {
		n := rng.Intn(50) + 1
		w := make([]string, n)
		for j := range w {
			w[j] = vocab[rng.Intn(len(vocab))]
		}
		docs[fmt.Sprintf("doc%03d", i)] = strings.Join(w, " ")
	}
	return buildIndex(t, docs)
}

func hitsBitIdentical(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Struct equality compares Score with ==; identical bits for any
		// non-NaN score, and retrieval never produces NaN.
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRetrieveShardedBitIdentical is the acceptance differential: across
// shard counts, models, query shapes and k values, the partitioned
// fan-out + merge must reproduce the monolithic Retrieve exactly —
// same docs, same ranks, same float64 score bits.
func TestRetrieveShardedBitIdentical(t *testing.T) {
	idx := randomCorpusIndex(t, 31, 120)
	rng := rand.New(rand.NewSource(7))
	vocabTerm := func() string { return fmt.Sprintf("v%02d", rng.Intn(40)) }
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 7} {
		seg := index.SegmentIndex(idx, shards)
		for _, m := range []Model{DPH{}, BM25{}, TFIDF{}, LMDirichlet{}} {
			for trial := 0; trial < 25; trial++ {
				qn := rng.Intn(6) + 1
				q := make([]string, qn)
				for j := range q {
					q[j] = vocabTerm()
				}
				if trial%5 == 0 {
					q = append(q, "never-indexed-term")
				}
				k := rng.Intn(30) // 0 = all matches
				want := Retrieve(idx, m, q, k)
				got, err := RetrieveSharded(ctx, seg, m, q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !hitsBitIdentical(got, want) {
					t.Fatalf("shards=%d %s k=%d q=%v:\n got %+v\nwant %+v",
						shards, m.Name(), k, q, got, want)
				}
			}
		}
	}
}

// TestRetrieveBatchMatchesIndividual checks the scatter-gather batch: a
// mixed batch (main query + specialization-style queries, overlapping
// terms, an empty query, distinct ks) must equal per-query Retrieve.
func TestRetrieveBatchMatchesIndividual(t *testing.T) {
	idx := randomCorpusIndex(t, 53, 90)
	queries := [][]string{
		{"v01", "v02", "v03"},
		{"v01", "v09"},         // shares v01 with the main query
		{"v02", "v02", "v17"},  // duplicate term multiplicity
		{},                     // unambiguous / empty
		{"never-indexed-term"}, // no postings at all
		{"v03", "v05", "v05", "v07", "v11"},
	}
	ks := []int{25, 5, 5, 5, 5, 0}
	for _, shards := range []int{1, 2, 4, 7} {
		seg := index.SegmentIndex(idx, shards)
		got, err := RetrieveBatch(context.Background(), seg, DPH{}, queries, ks)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			want := Retrieve(idx, DPH{}, queries[qi], ks[qi])
			if !hitsBitIdentical(got[qi], want) {
				t.Fatalf("shards=%d query %d: \n got %+v\nwant %+v", shards, qi, got[qi], want)
			}
		}
	}
}

func TestRetrieveShardedCanceled(t *testing.T) {
	idx := randomCorpusIndex(t, 11, 60)
	seg := index.SegmentIndex(idx, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RetrieveSharded(ctx, seg, DPH{}, []string{"v01", "v02"}, 10); err == nil {
		t.Fatal("canceled context: want error, got nil")
	}
}

func TestRetrieveShardedEmptyIndex(t *testing.T) {
	seg := index.SegmentIndex(index.NewBuilder().Build(), 3)
	hits, err := RetrieveSharded(context.Background(), seg, DPH{}, []string{"x"}, 10)
	if err != nil || hits != nil {
		t.Fatalf("empty index: hits=%v err=%v", hits, err)
	}
}

// TestRetrieveBatchConcurrent exercises the pooled per-shard accumulators
// under concurrent batches (meaningful with -race).
func TestRetrieveBatchConcurrent(t *testing.T) {
	idx := randomCorpusIndex(t, 97, 80)
	seg := index.SegmentIndex(idx, 4)
	queries := [][]string{{"v00", "v01"}, {"v02"}, {"v03", "v04", "v05"}}
	ks := []int{10, 10, 10}
	want, err := RetrieveBatch(context.Background(), seg, DPH{}, queries, ks)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for iter := 0; iter < 30; iter++ {
				got, err := RetrieveBatch(context.Background(), seg, DPH{}, queries, ks)
				if err != nil {
					done <- err
					return
				}
				for qi := range want {
					if !hitsBitIdentical(got[qi], want[qi]) {
						done <- fmt.Errorf("query %d diverged under concurrency", qi)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
