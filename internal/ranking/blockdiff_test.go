package ranking

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
)

// The block-layout acceptance differential: retrieval over block-
// compressed postings must be BIT-IDENTICAL to retrieval over flat
// []Posting lists — same documents, same ranks, same float64 score bits —
// across block sizes (including the degenerate 1-posting blocks and
// blocks far larger than any list), every weighting model, shard counts,
// and both the exhaustive and the MaxScore/Block-Max evaluators.

// flatCorpusIndex builds the reference index with the flat layout.
func flatCorpusIndex(t testing.TB, seed int64, numDocs int) *index.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := index.NewBuilder()
	b.SetBlockSize(-1)
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("v%02d", i)
	}
	for i := 0; i < numDocs; i++ {
		n := rng.Intn(50) + 1
		w := make([]string, n)
		for j := range w {
			w[j] = vocab[rng.Intn(len(vocab))]
		}
		if err := b.Add(fmt.Sprintf("doc%03d", i), w); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestBlockedRetrievalBitIdenticalToFlat sweeps block sizes {1, 8, 128,
// 1024} × models {DPH, BM25, TFIDF, LMDirichlet} × shards {1, 4} ×
// k {10, 100, all} against the flat-layout reference, through Retrieve,
// RetrievePruned and the sharded batch (pruning on).
func TestBlockedRetrievalBitIdenticalToFlat(t *testing.T) {
	flat := flatCorpusIndex(t, 61, 300)
	if flat.Blocked() {
		t.Fatal("reference index unexpectedly blocked")
	}
	installTables(t, flat)
	models := []Model{DPH{}, BM25{}, TFIDF{}, LMDirichlet{}}
	rng := rand.New(rand.NewSource(19))
	queries := make([][]string, 0, 24)
	for trial := 0; trial < 24; trial++ {
		qn := rng.Intn(6) + 1
		q := make([]string, qn)
		for j := range q {
			q[j] = fmt.Sprintf("v%02d", rng.Intn(40))
		}
		if trial%5 == 0 {
			q = append(q, "never-indexed-term")
		}
		if trial%7 == 0 {
			q = append(q, q[0]) // duplicate-term multiplicity
		}
		queries = append(queries, q)
	}

	for _, bs := range []int{1, 8, 128, 1024} {
		blocked := index.Reblock(flat, bs)
		installTables(t, blocked)
		if index.Reblock(flat, bs).BlockSize() != bs {
			t.Fatalf("Reblock(%d) built block size %d", bs, blocked.BlockSize())
		}
		for _, m := range models {
			for _, k := range []int{10, 100, 0} {
				for qi, q := range queries {
					want := Retrieve(flat, m, q, k)
					if got := Retrieve(blocked, m, q, k); !hitsBitIdentical(got, want) {
						t.Fatalf("bs=%d %s k=%d q=%v: Retrieve diverged\n got %+v\nwant %+v",
							bs, m.Name(), k, q, got, want)
					}
					if got := RetrievePruned(blocked, m, q, k); !hitsBitIdentical(got, want) {
						t.Fatalf("bs=%d %s k=%d q=%v: RetrievePruned diverged\n got %+v\nwant %+v",
							bs, m.Name(), k, q, got, want)
					}
					_ = qi
				}
				for _, shards := range []int{1, 4} {
					seg := index.SegmentIndex(blocked, shards)
					ks := make([]int, len(queries))
					for i := range ks {
						ks[i] = k
					}
					got, err := RetrieveBatchOpts(context.Background(), seg, m, queries, ks, BatchOptions{Prune: true})
					if err != nil {
						t.Fatal(err)
					}
					for qi := range queries {
						want := Retrieve(flat, m, queries[qi], k)
						if !hitsBitIdentical(got[qi], want) {
							t.Fatalf("bs=%d shards=%d %s k=%d query %d: batch diverged\n got %+v\nwant %+v",
								bs, shards, m.Name(), k, qi, got[qi], want)
						}
					}
				}
			}
		}
	}
}

// TestScoreDocBlockedMatchesFlat pins the point-lookup path (SeekGE over
// blocks) against the flat layout.
func TestScoreDocBlockedMatchesFlat(t *testing.T) {
	flat := flatCorpusIndex(t, 67, 150)
	blocked := index.Reblock(flat, 8)
	q := []string{"v01", "v05", "v05", "v11"}
	for d := int32(0); d < int32(flat.NumDocs()); d++ {
		want := ScoreDoc(flat, DPH{}, q, d)
		got := ScoreDoc(blocked, DPH{}, q, d)
		if got != want {
			t.Fatalf("doc %d: ScoreDoc %v != flat %v", d, got, want)
		}
	}
}

// TestRetrieveBatchPrunedConcurrentBlocked exercises the pooled block-
// decode scratch under concurrent pruned batches across shards —
// meaningful under -race: every worker decodes blocks of the same shared
// lists into its own pooled buffers.
func TestRetrieveBatchPrunedConcurrentBlocked(t *testing.T) {
	flat := flatCorpusIndex(t, 71, 200)
	blocked := index.Reblock(flat, 8)
	installTables(t, blocked)
	seg := index.SegmentIndex(blocked, 4)
	queries := [][]string{
		{"v00", "v01", "v02"},
		{"v01", "v09"},
		{"v02", "v02", "v17"},
		{"v03", "v05", "v05", "v07", "v11"},
	}
	ks := []int{10, 25, 10, 100}
	want, err := RetrieveBatchOpts(context.Background(), seg, DPH{}, queries, ks, BatchOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for iter := 0; iter < 30; iter++ {
				got, err := RetrieveBatchOpts(context.Background(), seg, DPH{}, queries, ks, BatchOptions{Prune: true})
				if err != nil {
					done <- err
					return
				}
				for qi := range want {
					if !hitsBitIdentical(got[qi], want[qi]) {
						done <- fmt.Errorf("query %d diverged under concurrency", qi)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
