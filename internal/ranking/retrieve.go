package ranking

import (
	"sort"

	"repro/internal/index"
	"repro/internal/topk"
)

// Hit is one retrieved document.
type Hit struct {
	Doc   int32   // internal document number
	DocID string  // external document ID
	Score float64 // retrieval score under the chosen model
	Rank  int     // 1-based rank in the result list
}

// Retrieve evaluates the analyzed query against the index document-at-a-
// time and returns the top-k hits ranked by descending score (ties broken
// by ascending document number, so results are deterministic). k <= 0
// means "all matching documents".
//
// Duplicate query terms contribute multiplicity: a term appearing twice in
// the query doubles its contribution, the standard bag-of-words treatment.
func Retrieve(idx *index.Index, model Model, queryTokens []string, k int) []Hit {
	if len(queryTokens) == 0 {
		return nil
	}
	cstats := idx.Stats()

	qtf, terms := termMultiplicities(queryTokens)

	acc := make(map[int32]float64, 1024)
	for _, term := range terms {
		mult := qtf[term]
		tstats, ok := idx.Lookup(term)
		if !ok {
			continue
		}
		for _, p := range idx.Postings(term) {
			s := model.TermScore(float64(p.TF), float64(idx.DocLen(p.Doc)), tstats, cstats)
			if s != 0 {
				acc[p.Doc] += mult * s
			}
		}
	}
	if len(acc) == 0 {
		return nil
	}

	qLen := len(queryTokens)
	heap := topk.NewBounded[int32](boundFor(k, len(acc)))
	for doc, score := range acc {
		score += model.DocAdjust(float64(idx.DocLen(doc)), qLen, cstats)
		heap.Push(doc, score, int64(doc))
	}
	items := heap.Drain()
	hits := make([]Hit, len(items))
	for i, it := range items {
		hits[i] = Hit{
			Doc:   it.Value,
			DocID: idx.DocID(it.Value),
			Score: it.Score,
			Rank:  i + 1,
		}
	}
	return hits
}

// termMultiplicities folds duplicate query tokens into multiplicities and
// returns the unique terms in sorted order. Scoring must accumulate terms
// in a fixed order: float addition is not associative, and iterating the
// multiplicity map directly makes repeated identical queries differ in
// the last ulp — enough to flip ties downstream and break the serving
// layer's cache-equivalence guarantee.
func termMultiplicities(queryTokens []string) (map[string]float64, []string) {
	qtf := make(map[string]float64, len(queryTokens))
	for _, t := range queryTokens {
		qtf[t]++
	}
	terms := make([]string, 0, len(qtf))
	for t := range qtf {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return qtf, terms
}

func boundFor(k, matched int) int {
	if k <= 0 || k > matched {
		return matched
	}
	return k
}

// ScoreDoc computes the model score of a single known document for the
// query — used by tests and by re-ranking code that needs P(d|q) for
// documents outside the retrieved top-k.
func ScoreDoc(idx *index.Index, model Model, queryTokens []string, doc int32) float64 {
	cstats := idx.Stats()
	qtf, terms := termMultiplicities(queryTokens)
	total := 0.0
	matched := false
	for _, term := range terms {
		mult := qtf[term]
		tstats, ok := idx.Lookup(term)
		if !ok {
			continue
		}
		plist := idx.Postings(term)
		i := sort.Search(len(plist), func(i int) bool { return plist[i].Doc >= doc })
		if i < len(plist) && plist[i].Doc == doc {
			s := model.TermScore(float64(plist[i].TF), float64(idx.DocLen(doc)), tstats, cstats)
			total += mult * s
			matched = true
		}
	}
	if !matched {
		return 0
	}
	return total + model.DocAdjust(float64(idx.DocLen(doc)), len(queryTokens), cstats)
}

// NormalizeScores maps hit scores to [0,1] by dividing by the maximum
// score (all-zero lists are returned unchanged). The diversification
// algorithms consume P(d|q) as a normalized relevance; this is the
// canonical way the reproduction derives it from retrieval scores.
func NormalizeScores(hits []Hit) []Hit {
	if len(hits) == 0 {
		return hits
	}
	max := hits[0].Score
	for _, h := range hits {
		if h.Score > max {
			max = h.Score
		}
	}
	if max <= 0 {
		return hits
	}
	out := make([]Hit, len(hits))
	copy(out, hits)
	for i := range out {
		out[i].Score /= max
	}
	return out
}
