package ranking

import (
	"math"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/topk"
)

// Hit is one retrieved document.
type Hit struct {
	Doc   int32   // internal document number
	DocID string  // external document ID
	Score float64 // retrieval score under the chosen model
	Rank  int     // 1-based rank in the result list
}

// accumulator is the dense score array behind Retrieve: scores indexed by
// internal document number, with an epoch array instead of per-query
// zeroing (a doc's score is live only when its epoch matches the current
// one) and a touched list so only matching documents are visited when the
// heap is filled. Compared to the map[int32]float64 it replaced, scoring
// becomes a bounds-checked array add — no hashing, no bucket chasing, no
// incremental map growth — and the backing arrays are pooled across
// queries.
type accumulator struct {
	scores  []float64
	epochs  []int32
	epoch   int32
	touched []int32
}

var accPool = sync.Pool{New: func() any { return new(accumulator) }}

// reset prepares the accumulator for a collection of numDocs documents.
func (a *accumulator) reset(numDocs int) {
	if len(a.scores) < numDocs {
		a.scores = make([]float64, numDocs)
		a.epochs = make([]int32, numDocs)
		a.epoch = 0
	}
	if a.epoch == math.MaxInt32 {
		// Epoch wrap: restart the numbering (zeroing is ~once per 2^31 uses).
		for i := range a.epochs {
			a.epochs[i] = 0
		}
		a.epoch = 0
	}
	a.epoch++
	a.touched = a.touched[:0]
}

// add accumulates v into doc's score, registering first touches.
func (a *accumulator) add(doc int32, v float64) {
	if a.epochs[doc] != a.epoch {
		a.epochs[doc] = a.epoch
		a.scores[doc] = v
		a.touched = append(a.touched, doc)
		return
	}
	a.scores[doc] += v
}

// Retrieve evaluates the analyzed query against the index document-at-a-
// time and returns the top-k hits ranked by descending score (ties broken
// by ascending document number, so results are deterministic). k <= 0
// means "all matching documents".
//
// Duplicate query terms contribute multiplicity: a term appearing twice in
// the query doubles its contribution, the standard bag-of-words treatment.
//
// Scores accumulate in a pooled dense array (see accumulator); per-doc
// contributions are added in sorted term order, so repeated identical
// queries produce bit-identical scores — the determinism the serving
// layer's cache-equivalence guarantee needs.
func Retrieve(idx *index.Index, model Model, queryTokens []string, k int) []Hit {
	if len(queryTokens) == 0 {
		return nil
	}
	cstats := idx.Stats()

	terms, mults := termMultiplicities(queryTokens)

	acc := accPool.Get().(*accumulator)
	defer accPool.Put(acc)
	acc.reset(idx.NumDocs())
	for ti, term := range terms {
		mult := mults[ti]
		// One dictionary probe per term: stats and an iterator together.
		// The iterator streams the (possibly block-compressed) posting
		// list one decoded block at a time into pooled scratch; over a
		// flat layout NextBlock degenerates to the whole shared slice, so
		// the inner loop is the classic flat traversal either way.
		tstats, it, ok := idx.LookupIter(term)
		if !ok {
			continue
		}
		for blk := it.NextBlock(); blk != nil; blk = it.NextBlock() {
			for _, p := range blk {
				s := model.TermScore(float64(p.TF), float64(idx.DocLen(p.Doc)), tstats, cstats)
				if s != 0 {
					acc.add(p.Doc, mult*s)
				}
			}
		}
		it.Release()
	}
	if len(acc.touched) == 0 {
		return nil
	}

	qLen := len(queryTokens)
	heap := topk.NewBounded[int32](boundFor(k, len(acc.touched)))
	for _, doc := range acc.touched {
		score := acc.scores[doc] + model.DocAdjust(float64(idx.DocLen(doc)), qLen, cstats)
		heap.Push(doc, score, int64(doc))
	}
	items := heap.Drain()
	hits := make([]Hit, len(items))
	for i, it := range items {
		hits[i] = Hit{
			Doc:   it.Value,
			DocID: idx.DocID(it.Value),
			Score: it.Score,
			Rank:  i + 1,
		}
	}
	return hits
}

// termMultiplicities folds duplicate query tokens into multiplicities,
// returning the unique terms in sorted order with their parallel counts.
// Scoring must accumulate terms in a fixed order: float addition is not
// associative, and an unordered accumulation makes repeated identical
// queries differ in the last ulp — enough to flip ties downstream and
// break the serving layer's cache-equivalence guarantee. The fold works
// on a sorted copy of the token slice, so no map is built per query.
func termMultiplicities(queryTokens []string) ([]string, []float64) {
	terms := make([]string, len(queryTokens))
	copy(terms, queryTokens)
	sort.Strings(terms)
	mults := make([]float64, 0, len(terms))
	out := terms[:0]
	for i, t := range terms {
		if i > 0 && t == out[len(out)-1] {
			mults[len(mults)-1]++
			continue
		}
		out = append(out, t)
		mults = append(mults, 1)
	}
	return out, mults
}

func boundFor(k, matched int) int {
	if k <= 0 || k > matched {
		return matched
	}
	return k
}

// ScoreDoc computes the model score of a single known document for the
// query — used by tests and by re-ranking code that needs P(d|q) for
// documents outside the retrieved top-k.
func ScoreDoc(idx *index.Index, model Model, queryTokens []string, doc int32) float64 {
	cstats := idx.Stats()
	terms, mults := termMultiplicities(queryTokens)
	total := 0.0
	matched := false
	for ti, term := range terms {
		mult := mults[ti]
		tstats, it, ok := idx.LookupIter(term)
		if !ok {
			continue
		}
		if p, found := it.SeekGE(doc); found && p.Doc == doc {
			s := model.TermScore(float64(p.TF), float64(idx.DocLen(doc)), tstats, cstats)
			total += mult * s
			matched = true
		}
		it.Release()
	}
	if !matched {
		return 0
	}
	return total + model.DocAdjust(float64(idx.DocLen(doc)), len(queryTokens), cstats)
}

// NormalizeScores maps hit scores to [0,1] by dividing by the maximum
// score (all-zero lists are returned unchanged). The diversification
// algorithms consume P(d|q) as a normalized relevance; this is the
// canonical way the reproduction derives it from retrieval scores. The
// input is not mutated; callers that own their slice should prefer
// NormalizeScoresInPlace and skip the copy.
func NormalizeScores(hits []Hit) []Hit {
	if len(hits) == 0 {
		return hits
	}
	out := make([]Hit, len(hits))
	copy(out, hits)
	NormalizeScoresInPlace(out)
	return out
}

// NormalizeScoresInPlace is NormalizeScores without the defensive copy,
// for callers normalizing a freshly built hit slice they own. (The
// pipeline's candidate construction normalizes at the engine.Result
// level instead, after snippets are attached, so it does not come
// through here.)
func NormalizeScoresInPlace(hits []Hit) {
	if len(hits) == 0 {
		return
	}
	max := hits[0].Score
	for _, h := range hits {
		if h.Score > max {
			max = h.Score
		}
	}
	if max <= 0 {
		return
	}
	for i := range hits {
		hits[i].Score /= max
	}
}
