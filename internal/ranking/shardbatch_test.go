package ranking

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
)

// TestRetrieveShardBatchMergesToBatch is the process-boundary
// differential of the distributed serving tier, run in-process: scoring
// each shard independently through RetrieveShardBatch (what a remote
// shard worker does) and stitching the lists with MergeSegments (what
// the router does) must reproduce the one-process RetrieveBatchOpts
// bit for bit — same docs, ranks, and float64 score bits — across
// shard counts, models, pruned and exhaustive paths, and k values.
func TestRetrieveShardBatchMergesToBatch(t *testing.T) {
	idx := randomCorpusIndex(t, 71, 130)
	if err := InstallMaxScores(idx, DPH{}, BM25{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 7} {
		seg := index.SegmentIndex(idx, shards)
		for _, m := range []Model{DPH{}, BM25{}, LMDirichlet{}} {
			for _, opts := range []BatchOptions{{}, {Prune: true}} {
				for trial := 0; trial < 10; trial++ {
					queries := make([][]string, rng.Intn(4)+2)
					ks := make([]int, len(queries))
					for qi := range queries {
						qn := rng.Intn(5) + 1
						q := make([]string, qn)
						for j := range q {
							q[j] = fmt.Sprintf("v%02d", rng.Intn(40))
						}
						queries[qi] = q
						ks[qi] = rng.Intn(25) // 0 = all matches
					}
					queries = append(queries, nil) // empty query rides along
					ks = append(ks, 10)

					want, err := RetrieveBatchOpts(ctx, seg, m, queries, ks, opts)
					if err != nil {
						t.Fatal(err)
					}

					perShard := make([][][]Hit, shards)
					for si := 0; si < shards; si++ {
						perShard[si], err = RetrieveShardBatch(ctx, seg, si, m, queries, ks, opts)
						if err != nil {
							t.Fatal(err)
						}
					}
					for qi := range queries {
						lists := make([][]Hit, shards)
						for si := 0; si < shards; si++ {
							lists[si] = perShard[si][qi]
						}
						got := MergeSegments(lists, ks[qi])
						if len(got) == 0 && len(want[qi]) == 0 {
							continue
						}
						if !hitsBitIdentical(got, want[qi]) {
							t.Fatalf("shards=%d %s prune=%v query %d k=%d:\n got %+v\nwant %+v",
								shards, m.Name(), opts.Prune, qi, ks[qi], got, want[qi])
						}
					}
				}
			}
		}
	}
}

// TestRetrieveShardBatchValidation covers the explicit error paths.
func TestRetrieveShardBatchValidation(t *testing.T) {
	idx := randomCorpusIndex(t, 5, 30)
	seg := index.SegmentIndex(idx, 2)
	if _, err := RetrieveShardBatch(context.Background(), seg, 2, DPH{}, [][]string{{"v01"}}, []int{5}, BatchOptions{}); err == nil {
		t.Fatal("out-of-range shard: want error, got nil")
	}
	if _, err := RetrieveShardBatch(context.Background(), seg, -1, DPH{}, [][]string{{"v01"}}, []int{5}, BatchOptions{}); err == nil {
		t.Fatal("negative shard: want error, got nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RetrieveShardBatch(ctx, seg, 0, DPH{}, [][]string{{"v01", "v02"}}, []int{5}, BatchOptions{}); err == nil {
		t.Fatal("canceled context: want error, got nil")
	}
}
