// Package ranking implements the document weighting models and the
// document-at-a-time query evaluator of the search-engine substrate. The
// paper's baseline retrieval (§5) is the parameter-free DPH Divergence
// From Randomness model (Amati et al., TREC 2007), as shipped in Terrier;
// BM25, TF-IDF and a Dirichlet-smoothed language model are provided for
// the base-ranker ablation called out in DESIGN.md.
package ranking

import (
	"fmt"
	"math"

	"repro/internal/index"
)

// Model scores one (term, document) match. Implementations must be
// stateless and safe for concurrent use.
type Model interface {
	// Name identifies the model in run files and benchmark output.
	Name() string
	// TermScore returns the score contribution of a term occurring tf
	// times in a document of length docLen.
	TermScore(tf, docLen float64, t index.TermStats, c index.CollectionStats) float64
	// DocAdjust returns a per-document additive adjustment applied once to
	// every matching document (qLen = number of query terms). Most models
	// return 0; the language model uses it for its length normalization.
	DocAdjust(docLen float64, qLen int, c index.CollectionStats) float64
}

// Boundable marks models whose top-k retrieval admits exact MaxScore
// dynamic pruning. An implementation promises two things:
//
//  1. TermScore is nonnegative for every input, so a per-term maximum
//     over the collection's postings (Index.ComputeMaxScores) is a valid
//     upper bound on any document's per-term contribution;
//  2. DocAdjust is identically zero, so a document's total score is
//     exactly the sum of its per-term contributions and the pruning
//     bound needs no per-document correction.
//
// DPH (clamped at 0), BM25 and TFIDF qualify; LMDirichlet does not — its
// DocAdjust is a negative, length-dependent log-likelihood mass, so it
// keeps the exhaustive path. InstallMaxScores additionally probes the
// DocAdjust contract at install time as a tripwire against future
// implementations that claim the capability without honoring it.
type Boundable interface {
	Model
	// BoundKey identifies the scoring function — name plus every
	// parameter that changes scores — for max-score table lookup and
	// persistence. Two models with equal BoundKeys must score every
	// posting identically.
	BoundKey() string
}

// PrecomputableModels lists the registered boundable models whose
// max-score tables engine builds compute and persist up front (the
// default-parameter family; a non-default model is added on top when it
// is the engine's configured model).
func PrecomputableModels() []Model { return []Model{DPH{}, BM25{}, TFIDF{}} }

const log2e = 1.4426950408889634 // 1/ln(2)

func log2(x float64) float64 { return math.Log(x) * log2e }

// DPH is the hypergeometric DFR model with Popper normalization, the
// parameter-free model used as the paper's retrieval baseline:
//
//	f     = tf/l
//	norm  = (1-f)² / (tf+1)
//	score = norm · ( tf·log₂( tf·(avg_l/l)·(N/CF) ) + 0.5·log₂(2π·tf·(1-f)) )
//
// Negative per-term contributions (possible for terms more frequent in the
// document than the collection model expects) are clamped to 0, matching
// the behaviour of the additive DAAT accumulator.
type DPH struct{}

// Name implements Model.
func (DPH) Name() string { return "DPH" }

// TermScore implements Model.
func (DPH) TermScore(tf, docLen float64, t index.TermStats, c index.CollectionStats) float64 {
	if tf <= 0 || docLen <= 0 || t.CF <= 0 || c.NumDocs == 0 {
		return 0
	}
	f := tf / docLen
	if f >= 1 {
		// Degenerate one-term document: the Popper normalization (1-f)²
		// vanishes.
		return 0
	}
	norm := (1 - f) * (1 - f) / (tf + 1)
	arg := tf * (c.AvgDocLen / docLen) * (float64(c.NumDocs) / float64(t.CF))
	if arg <= 0 {
		return 0
	}
	score := norm * (tf*log2(arg) + 0.5*log2(2*math.Pi*tf*(1-f)))
	if score < 0 {
		return 0
	}
	return score
}

// DocAdjust implements Model.
func (DPH) DocAdjust(docLen float64, qLen int, c index.CollectionStats) float64 { return 0 }

// BoundKey implements Boundable: DPH is parameter-free.
func (DPH) BoundKey() string { return "DPH" }

// BM25 is the Okapi BM25 model with the conventional k1/b parameters.
type BM25 struct {
	K1 float64 // term-frequency saturation; 0 means the default 1.2
	B  float64 // length normalization; 0 means the default 0.75
}

// Name implements Model.
func (BM25) Name() string { return "BM25" }

// TermScore implements Model.
func (m BM25) TermScore(tf, docLen float64, t index.TermStats, c index.CollectionStats) float64 {
	if tf <= 0 || t.DF <= 0 {
		return 0
	}
	k1, b := m.K1, m.B
	if k1 == 0 {
		k1 = 1.2
	}
	if b == 0 {
		b = 0.75
	}
	n := float64(c.NumDocs)
	df := float64(t.DF)
	idf := math.Log(1 + (n-df+0.5)/(df+0.5))
	denom := tf + k1*(1-b+b*docLen/math.Max(c.AvgDocLen, 1e-9))
	return idf * tf * (k1 + 1) / denom
}

// DocAdjust implements Model.
func (BM25) DocAdjust(docLen float64, qLen int, c index.CollectionStats) float64 { return 0 }

// BoundKey implements Boundable, folding in the effective k1/b so tables
// computed under one parameterization are never used under another.
func (m BM25) BoundKey() string {
	k1, b := m.K1, m.B
	if k1 == 0 {
		k1 = 1.2
	}
	if b == 0 {
		b = 0.75
	}
	return fmt.Sprintf("BM25(k1=%g,b=%g)", k1, b)
}

// TFIDF is the classic log-smoothed TF-IDF weighting with cosine-free
// additive accumulation: (1+ln tf) · ln(1 + N/df).
type TFIDF struct{}

// Name implements Model.
func (TFIDF) Name() string { return "TFIDF" }

// TermScore implements Model.
func (TFIDF) TermScore(tf, docLen float64, t index.TermStats, c index.CollectionStats) float64 {
	if tf <= 0 || t.DF <= 0 {
		return 0
	}
	return (1 + math.Log(tf)) * math.Log(1+float64(c.NumDocs)/float64(t.DF))
}

// DocAdjust implements Model.
func (TFIDF) DocAdjust(docLen float64, qLen int, c index.CollectionStats) float64 { return 0 }

// BoundKey implements Boundable: TFIDF is parameter-free.
func (TFIDF) BoundKey() string { return "TFIDF" }

// LMDirichlet is the query-likelihood language model with Dirichlet
// smoothing, in the rank-equivalent "delta" form suited to additive
// accumulators:
//
//	score(d) = Σ_t log(1 + tf/(μ·P(t|C))) + |q|·log(μ/(μ+l))
type LMDirichlet struct {
	Mu float64 // smoothing mass; 0 means the default 2000
}

// Name implements Model.
func (LMDirichlet) Name() string { return "LMDirichlet" }

func (m LMDirichlet) mu() float64 {
	if m.Mu == 0 {
		return 2000
	}
	return m.Mu
}

// TermScore implements Model.
func (m LMDirichlet) TermScore(tf, docLen float64, t index.TermStats, c index.CollectionStats) float64 {
	if tf <= 0 || t.CF <= 0 || c.TotalTokens == 0 {
		return 0
	}
	pc := float64(t.CF) / float64(c.TotalTokens)
	return math.Log(1 + tf/(m.mu()*pc))
}

// DocAdjust implements Model.
func (m LMDirichlet) DocAdjust(docLen float64, qLen int, c index.CollectionStats) float64 {
	mu := m.mu()
	return float64(qLen) * math.Log(mu/(mu+docLen))
}
