package ranking

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/index"
)

// The mapped-storage acceptance differential: retrieval over an RIDX7
// image served in place by OpenMapped must be BIT-IDENTICAL to retrieval
// over the flat []Posting reference — the same sweep the block layout
// passed in PR 5, now with the posting bytes living in a file mapping
// instead of process heap. Models × k × shard counts, exhaustive and
// pruned evaluators, plus the sharded batch path.

// openMappedCopy persists blocked as a mapped image and opens it in
// place. The returned Segmented holds live file-backed memory; the
// t.Cleanup Close drops the test's reference (iterators created by the
// retrieval under test retain/release their own).
func openMappedCopy(t *testing.T, blocked *index.Index) *index.Segmented {
	t.Helper()
	path := filepath.Join(t.TempDir(), "diff.ridx7")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := index.SegmentIndex(blocked, 1).WriteMapped(f, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	seg, err := index.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	return seg
}

// TestMappedRetrievalBitIdenticalToFlat sweeps block sizes {8, 128} ×
// models {DPH, BM25, TFIDF, LMDirichlet} × k {10, 100, all} × shards
// {1, 4} over the mapped image against the flat heap reference. The
// image is written with the max-score and block-max tables of every
// model installed, so the pruned paths run entirely off persisted
// tables — no posting is decoded to recompute a bound.
func TestMappedRetrievalBitIdenticalToFlat(t *testing.T) {
	flat := flatCorpusIndex(t, 61, 300)
	installTables(t, flat)
	models := []Model{DPH{}, BM25{}, TFIDF{}, LMDirichlet{}}
	queries := [][]string{
		{"v00"},
		{"v01", "v09"},
		{"v02", "v02", "v17"}, // duplicate-term multiplicity
		{"v03", "v05", "v07", "v11", "v13", "v19"},
		{"v04", "never-indexed-term"},
		{"never-indexed-term"},
		{"v06", "v26", "v36"},
		{"v07", "v00", "v21", "v21"},
	}

	for _, bs := range []int{8, 128} {
		blocked := index.Reblock(flat, bs)
		installTables(t, blocked)
		mappedSeg := openMappedCopy(t, blocked)
		mapped := mappedSeg.Index()
		if !mapped.Mapped() {
			t.Fatalf("bs=%d: OpenMapped index not mapped", bs)
		}
		for _, m := range models {
			for _, k := range []int{10, 100, 0} {
				for _, q := range queries {
					want := Retrieve(flat, m, q, k)
					if got := Retrieve(mapped, m, q, k); !hitsBitIdentical(got, want) {
						t.Fatalf("bs=%d %s k=%d q=%v: mapped Retrieve diverged\n got %+v\nwant %+v",
							bs, m.Name(), k, q, got, want)
					}
					if got := RetrievePruned(mapped, m, q, k); !hitsBitIdentical(got, want) {
						t.Fatalf("bs=%d %s k=%d q=%v: mapped RetrievePruned diverged\n got %+v\nwant %+v",
							bs, m.Name(), k, q, got, want)
					}
				}
				for _, shards := range []int{1, 4} {
					seg := mappedSeg.Resegment(shards)
					ks := make([]int, len(queries))
					for i := range ks {
						ks[i] = k
					}
					got, err := RetrieveBatchOpts(context.Background(), seg, m, queries, ks, BatchOptions{Prune: true})
					if err != nil {
						t.Fatal(err)
					}
					for qi := range queries {
						want := Retrieve(flat, m, queries[qi], k)
						if !hitsBitIdentical(got[qi], want) {
							t.Fatalf("bs=%d shards=%d %s k=%d query %d: mapped batch diverged\n got %+v\nwant %+v",
								bs, shards, m.Name(), k, qi, got[qi], want)
						}
					}
				}
			}
		}
	}
}

// TestMappedPointLookupMatchesFlat pins ScoreDoc (SeekGE over mapped
// blocks) against the flat layout for every document.
func TestMappedPointLookupMatchesFlat(t *testing.T) {
	flat := flatCorpusIndex(t, 67, 150)
	mappedSeg := openMappedCopy(t, index.Reblock(flat, 8))
	mapped := mappedSeg.Index()
	q := []string{"v01", "v05", "v05", "v11"}
	for d := int32(0); d < int32(flat.NumDocs()); d++ {
		want := ScoreDoc(flat, DPH{}, q, d)
		got := ScoreDoc(mapped, DPH{}, q, d)
		if got != want {
			t.Fatalf("doc %d: mapped ScoreDoc %v != flat %v", d, got, want)
		}
	}
}
