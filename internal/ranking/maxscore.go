package ranking

import (
	"context"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/topk"
)

// MaxScore dynamic pruning (Turtle & Flood's algorithm, the classic of
// the top-k retrieval literature the paper's efficiency framing leans
// on): with a per-term upper bound on any single document's contribution
// — the max-score table the index precomputes — the evaluator keeps the
// query's posting lists ordered by bound and partitions them against the
// running top-k threshold into *essential* lists, which can still lift a
// document into the heap, and *non-essential* ones, which alone cannot.
// Candidates are drawn from the essential lists only; each candidate's
// remaining bound is re-checked before every non-essential probe, so
// whole posting ranges of the frequent (low-bound) terms are skipped by
// block-header search instead of scored.
//
// Over the block-compressed posting layout the pruning is Block-Max
// MaxScore: posting lists are traversed through index.PostingIterator,
// seeks skip whole blocks by header binary search without decoding them,
// and before a non-essential list is probed its term-level bound is
// refined to the maximum of the one block that could contain the
// candidate (index.TermBlockMax). When even that refined bound cannot
// lift the candidate past the threshold, the block's bytes are never
// decoded — the bailout that makes frequent terms nearly free.
//
// The pruning is EXACT, not approximate: the returned top-k is
// bit-identical to the exhaustive evaluator's, enforced by differential
// tests. Four properties make that work:
//
//   - Boundable models have nonnegative term scores and zero DocAdjust,
//     so "sum of per-term bounds" really bounds the total score;
//   - a block-max entry is the exact float maximum of the block's
//     computed scores, so refining a bound with it never under-bounds;
//   - a surviving document's final score is re-accumulated in ascending
//     term order — the exhaustive evaluator's exact float addition
//     sequence — from the per-term contributions recorded while probing;
//   - documents arrive in ascending document order, so every candidate
//     loses score ties against everything already in the heap, and a
//     candidate whose (slack-inflated, see msSlack) bound does not
//     exceed the threshold can be dropped even on equality.

// msCursor is one query term's traversal state in the MaxScore
// evaluator. The iterator owns pooled decode scratch; maxscoreTopK takes
// ownership of the cursors it is handed and releases every iterator
// exactly once.
type msCursor struct {
	it    index.PostingIterator
	stats index.TermStats
	mult  float64 // query-term multiplicity
	ub    float64 // upper bound on the term's per-doc contribution: mult · max score
	order int     // position in ascending term order — the accumulation order
	// cur/ok cache the iterator's current posting so the per-candidate
	// loops read struct fields instead of paying an iterator call per
	// cursor per candidate. The cache is maintained only while the
	// cursor is ESSENTIAL (the min-selection and match loops are the
	// only readers, and they only touch essential cursors); once a list
	// goes non-essential — a one-way transition, the threshold only
	// rises — it is probed through BlockUpperBound/SeekGE and the stale
	// cache is never read again.
	cur index.Posting
	ok  bool
	// hasBM caches it.HasBlockMax(): probes consult the block-max bound
	// only when a table is attached, so flat (or tableless) lists pay no
	// BlockUpperBound call — SeekGE alone answers "no posting >= d".
	hasBM bool
}

// msSlack returns the multiplicative safety factor applied to pruning
// bounds. Floating-point sums are order-sensitive: the exhaustive
// evaluator accumulates contributions in sorted term order while the
// bound sums upper bounds in bound order, so the two can disagree by a
// few ulps. Inflating the (nonnegative) bound by a handful of machine
// epsilons per list guarantees bound >= exhaustive score, keeping the
// pruning exact; the slack is ~1e-15 relative, far too small to cost
// pruning power.
func msSlack(nLists int) float64 {
	const eps = 2.220446049250313e-16 // 2^-52
	return 1 + float64(nLists+2)*8*eps
}

// maxScoreTable returns the model's per-term upper-bound table from the
// index, or nil when the model is not Boundable or the index carries no
// table under its key — the callers' signal to keep the exhaustive path.
func maxScoreTable(idx *index.Index, model Model) []float64 {
	b, ok := model.(Boundable)
	if !ok {
		return nil
	}
	return idx.MaxScores(b.BoundKey())
}

// boundKey returns the model's max-score table key, or "" when the model
// is not Boundable.
func boundKey(model Model) string {
	if b, ok := model.(Boundable); ok {
		return b.BoundKey()
	}
	return ""
}

// Pruneable reports whether MaxScore pruning can serve (idx, model):
// the model is Boundable and idx carries its max-score table.
func Pruneable(idx *index.Index, model Model) bool {
	return maxScoreTable(idx, model) != nil
}

// InstallMaxScores computes and attaches max-score tables — per-term
// always, per-BLOCK additionally when the index stores postings block-
// compressed — for every Boundable model among models whose tables idx
// does not already carry. The per-term table is derived from the block
// table (exact float maximum over the term's blocks), so the two can
// never disagree. Engine build and load call this while the index is
// still privately owned; it is NOT safe once the index is shared. Models
// that are not Boundable are skipped, as is any model whose DocAdjust
// probes nonzero — a Boundable implementation violating its zero-adjust
// contract must not get a table, or pruning would silently turn inexact.
func InstallMaxScores(idx *index.Index, models ...Model) error {
	for _, m := range models {
		b, ok := m.(Boundable)
		if !ok || violatesZeroAdjust(b, idx.Stats()) {
			continue
		}
		key := b.BoundKey()
		wantTerm := idx.MaxScores(key) == nil
		wantBlock := idx.Blocked() && idx.BlockMaxScores(key) == nil
		if !wantTerm && !wantBlock {
			continue
		}
		if idx.Blocked() {
			blockTable := idx.BlockMaxScores(key)
			if blockTable == nil {
				blockTable = idx.ComputeBlockMaxScores(b.TermScore)
				if err := idx.SetBlockMaxScores(key, blockTable); err != nil {
					return err
				}
			}
			if wantTerm {
				term := make([]float64, idx.NumTerms())
				for id := range term {
					for _, v := range idx.TermBlockMax(key, int32(id)) {
						if v > term[id] {
							term[id] = v
						}
					}
				}
				if err := idx.SetMaxScores(key, term); err != nil {
					return err
				}
			}
			continue
		}
		if err := idx.SetMaxScores(key, idx.ComputeMaxScores(b.TermScore)); err != nil {
			return err
		}
	}
	return nil
}

// violatesZeroAdjust probes the Boundable zero-DocAdjust contract at a
// few document/query shapes. Not a proof, but a cheap tripwire.
func violatesZeroAdjust(m Model, c index.CollectionStats) bool {
	for _, docLen := range []float64{1, math.Max(c.AvgDocLen, 1), 10*c.AvgDocLen + 1} {
		for _, qLen := range []int{1, 5} {
			if m.DocAdjust(docLen, qLen, c) != 0 {
				return true
			}
		}
	}
	return false
}

// maxscoreTopK runs MaxScore over the given cursors (one per indexed
// query term, orders assigned in ascending term order, iterators possibly
// shard-ranged but carrying global document numbers) and returns the k
// best documents exactly as the exhaustive evaluator would: score
// descending, document ascending, scores bit-identical. k must be
// positive; callers handle the k <= 0 "all matches" form via the
// exhaustive path, where no threshold ever forms.
//
// Ownership: maxscoreTopK releases every cursor's iterator, on every
// path; callers must not touch the cursors afterwards.
//
// ctx is polled every few hundred candidates — the pruned counterpart
// of the exhaustive pass's between-posting-lists preemption — so a shed
// or disconnected request stops mid-evaluation instead of finishing a
// top-k nobody will read.
func maxscoreTopK(ctx context.Context, idx *index.Index, model Model, qLen int, cursors []msCursor, k int) ([]topk.Item[int32], error) {
	cstats := idx.Stats()
	// Compact to the live (non-empty) cursors in place, releasing dead
	// iterators immediately. After this, each iterator's pooled scratch is
	// reachable through exactly one struct — the one in live — which the
	// deferred loop releases; the tail of the original array is dead
	// copies that are never touched again.
	live := cursors[:0]
	for i := range cursors {
		if p, ok := cursors[i].it.Cur(); ok {
			cursors[i].cur, cursors[i].ok = p, true
			cursors[i].hasBM = cursors[i].it.HasBlockMax()
			live = append(live, cursors[i])
		} else {
			cursors[i].it.Release()
		}
	}
	defer func() {
		for i := range live {
			live[i].it.Release()
		}
	}()
	if len(live) == 0 {
		return nil, nil
	}
	// Ascending upper bound (ties by term order, for determinism);
	// prefix[i] bounds the total contribution of lists 0..i.
	sort.Slice(live, func(i, j int) bool {
		if live[i].ub != live[j].ub {
			return live[i].ub < live[j].ub
		}
		return live[i].order < live[j].order
	})
	prefix := make([]float64, len(live))
	sum := 0.0
	for i := range live {
		sum += live[i].ub
		prefix[i] = sum
	}
	slack := msSlack(len(live))

	heap := topk.NewBounded[int32](k)
	threshold := math.Inf(-1)
	firstEss := 0 // live[firstEss:] are the essential lists
	contrib := make([]float64, len(cursors))
	touched := make([]int, 0, len(cursors))
	for candidates := 0; ; candidates++ {
		// Poll on entry (a canceled request must not start) and then
		// every 256 candidates.
		if candidates&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Grow the non-essential prefix against the current threshold.
		for firstEss < len(live) && prefix[firstEss]*slack <= threshold {
			firstEss++
		}
		if firstEss >= len(live) {
			break // no remaining document can enter the heap
		}
		// Next candidate: the minimum current document among essential
		// lists (documents appearing only in non-essential lists are
		// bounded by prefix[firstEss-1] and provably out).
		d := int32(math.MaxInt32)
		for i := firstEss; i < len(live); i++ {
			if c := &live[i]; c.ok && c.cur.Doc < d {
				d = c.cur.Doc
			}
		}
		if d == math.MaxInt32 {
			break // essential lists exhausted
		}
		docLen := float64(idx.DocLen(d))
		partial := 0.0
		matched := false
		for i := firstEss; i < len(live); i++ {
			c := &live[i]
			if c.ok && c.cur.Doc == d {
				tf := float64(c.cur.TF)
				c.it.Advance()
				c.cur, c.ok = c.it.Cur()
				if s := model.TermScore(tf, docLen, c.stats, cstats); s != 0 {
					v := c.mult * s
					contrib[c.order] = v
					touched = append(touched, c.order)
					partial += v
					matched = true
				}
			}
		}
		// Non-essential lists, highest bound first: probe while the
		// candidate can still reach the threshold, prune the moment it
		// provably cannot. Before each probe the term-level bound is
		// refined to the block that could contain the candidate (read off
		// the header, no decode) — the Block-Max bailout: a bound that
		// fails here kills the candidate without ever touching the
		// block's bytes.
		pruned := false
		for i := firstEss - 1; i >= 0; i-- {
			if (partial+prefix[i])*slack <= threshold {
				pruned = true
				break
			}
			c := &live[i]
			if c.hasBM {
				bub, any := c.it.BlockUpperBound(d)
				if !any {
					// The list has no posting at or beyond d: it contributes
					// nothing to this candidate; keep probing cheaper lists.
					continue
				}
				if v := c.mult * bub; v < c.ub {
					below := 0.0
					if i > 0 {
						below = prefix[i-1]
					}
					if (partial+below+v)*slack <= threshold {
						pruned = true
						break
					}
				}
			}
			if p, ok := c.it.SeekGE(d); ok && p.Doc == d {
				if s := model.TermScore(float64(p.TF), docLen, c.stats, cstats); s != 0 {
					v := c.mult * s
					contrib[c.order] = v
					touched = append(touched, c.order)
					partial += v
					matched = true
				}
			}
		}
		if !pruned && matched {
			// Final score: the exhaustive accumulation order — ascending
			// term order, zero contributions skipped — then the document
			// adjustment (identically zero for Boundable models; applied
			// anyway so the formula matches Retrieve's to the letter).
			score := 0.0
			for o := 0; o < len(contrib); o++ {
				if v := contrib[o]; v != 0 {
					score += v
				}
			}
			score += model.DocAdjust(docLen, qLen, cstats)
			heap.Push(d, score, int64(d))
			if t, full := heap.Threshold(); full {
				threshold = t
			}
		}
		for _, o := range touched {
			contrib[o] = 0
		}
		touched = touched[:0]
	}
	return heap.Drain(), nil
}

// RetrievePruned is Retrieve with MaxScore dynamic pruning: identical
// results (bit-identical scores, same order), fewer postings scored — and
// over the block-compressed layout, fewer blocks even decoded. When
// pruning cannot apply — k <= 0 requests every match, the model is not
// Boundable, or the index carries no max-score table for it — it falls
// back to the exhaustive Retrieve.
func RetrievePruned(idx *index.Index, model Model, queryTokens []string, k int) []Hit {
	table := maxScoreTable(idx, model)
	if table == nil || k <= 0 || len(queryTokens) == 0 {
		return Retrieve(idx, model, queryTokens, k)
	}
	bkey := boundKey(model)
	terms, mults := termMultiplicities(queryTokens)
	cursors := make([]msCursor, 0, len(terms))
	for ti, term := range terms {
		tstats, it, ok := idx.LookupIter(term)
		if !ok {
			continue
		}
		it.SetBlockMax(idx.TermBlockMax(bkey, tstats.ID))
		cursors = append(cursors, msCursor{
			it:    it,
			stats: tstats,
			mult:  mults[ti],
			ub:    mults[ti] * table[tstats.ID],
			order: len(cursors),
		})
	}
	// Background context: the monolithic entry point has no request
	// scope to honor (the sharded path threads the real one through).
	items, _ := maxscoreTopK(context.Background(), idx, model, len(queryTokens), cursors, k)
	if len(items) == 0 {
		return nil
	}
	hits := make([]Hit, len(items))
	for i, it := range items {
		hits[i] = Hit{Doc: it.Value, DocID: idx.DocID(it.Value), Score: it.Score, Rank: i + 1}
	}
	return hits
}
