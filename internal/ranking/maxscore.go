package ranking

import (
	"context"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/topk"
)

// MaxScore dynamic pruning (Turtle & Flood's algorithm, the classic of
// the top-k retrieval literature the paper's efficiency framing leans
// on): with a per-term upper bound on any single document's contribution
// — the max-score table the index precomputes — the evaluator keeps the
// query's posting lists ordered by bound and partitions them against the
// running top-k threshold into *essential* lists, which can still lift a
// document into the heap, and *non-essential* ones, which alone cannot.
// Candidates are drawn from the essential lists only; each candidate's
// remaining bound is re-checked before every non-essential probe, so
// whole posting ranges of the frequent (low-bound) terms are skipped by
// binary search instead of scored.
//
// The pruning is EXACT, not approximate: the returned top-k is
// bit-identical to the exhaustive evaluator's, enforced by differential
// tests. Three properties make that work:
//
//   - Boundable models have nonnegative term scores and zero DocAdjust,
//     so "sum of per-term bounds" really bounds the total score;
//   - a surviving document's final score is re-accumulated in ascending
//     term order — the exhaustive evaluator's exact float addition
//     sequence — from the per-term contributions recorded while probing;
//   - documents arrive in ascending document order, so every candidate
//     loses score ties against everything already in the heap, and a
//     candidate whose (slack-inflated, see msSlack) bound does not
//     exceed the threshold can be dropped even on equality.

// msCursor is one query term's traversal state in the MaxScore
// evaluator.
type msCursor struct {
	postings []index.Posting
	pos      int
	stats    index.TermStats
	mult     float64 // query-term multiplicity
	ub       float64 // upper bound on the term's per-doc contribution: mult · max score
	order    int     // position in ascending term order — the accumulation order
}

// msSlack returns the multiplicative safety factor applied to pruning
// bounds. Floating-point sums are order-sensitive: the exhaustive
// evaluator accumulates contributions in sorted term order while the
// bound sums upper bounds in bound order, so the two can disagree by a
// few ulps. Inflating the (nonnegative) bound by a handful of machine
// epsilons per list guarantees bound >= exhaustive score, keeping the
// pruning exact; the slack is ~1e-15 relative, far too small to cost
// pruning power.
func msSlack(nLists int) float64 {
	const eps = 2.220446049250313e-16 // 2^-52
	return 1 + float64(nLists+2)*8*eps
}

// maxScoreTable returns the model's per-term upper-bound table from the
// index, or nil when the model is not Boundable or the index carries no
// table under its key — the callers' signal to keep the exhaustive path.
func maxScoreTable(idx *index.Index, model Model) []float64 {
	b, ok := model.(Boundable)
	if !ok {
		return nil
	}
	return idx.MaxScores(b.BoundKey())
}

// Pruneable reports whether MaxScore pruning can serve (idx, model):
// the model is Boundable and idx carries its max-score table.
func Pruneable(idx *index.Index, model Model) bool {
	return maxScoreTable(idx, model) != nil
}

// InstallMaxScores computes and attaches max-score tables for every
// Boundable model among models whose table idx does not already carry.
// Engine build and load call this while the index is still privately
// owned; it is NOT safe once the index is shared. Models that are not
// Boundable are skipped, as is any model whose DocAdjust probes nonzero
// — a Boundable implementation violating its zero-adjust contract must
// not get a table, or pruning would silently turn inexact.
func InstallMaxScores(idx *index.Index, models ...Model) error {
	for _, m := range models {
		b, ok := m.(Boundable)
		if !ok || violatesZeroAdjust(b, idx.Stats()) {
			continue
		}
		key := b.BoundKey()
		if idx.MaxScores(key) != nil {
			continue
		}
		if err := idx.SetMaxScores(key, idx.ComputeMaxScores(b.TermScore)); err != nil {
			return err
		}
	}
	return nil
}

// violatesZeroAdjust probes the Boundable zero-DocAdjust contract at a
// few document/query shapes. Not a proof, but a cheap tripwire.
func violatesZeroAdjust(m Model, c index.CollectionStats) bool {
	for _, docLen := range []float64{1, math.Max(c.AvgDocLen, 1), 10*c.AvgDocLen + 1} {
		for _, qLen := range []int{1, 5} {
			if m.DocAdjust(docLen, qLen, c) != 0 {
				return true
			}
		}
	}
	return false
}

// seekPosting returns the smallest position >= pos whose posting's Doc is
// >= d. Galloping search: probes at exponentially growing strides from
// the cursor before binary-searching the bracketed range, so short hops
// (the common case — candidates arrive in ascending document order) cost
// O(1) and long skips stay O(log n), without sort.Search's closure calls.
func seekPosting(postings []index.Posting, pos int, d int32) int {
	n := len(postings)
	if pos >= n || postings[pos].Doc >= d {
		return pos
	}
	step := 1
	lo := pos + 1 // postings[pos].Doc < d
	hi := pos + step
	for hi < n && postings[hi].Doc < d {
		lo = hi + 1
		step <<= 1
		hi = pos + step
	}
	if hi > n {
		hi = n
	}
	// Invariant: postings[lo-1].Doc < d, postings[hi].Doc >= d (or hi==n).
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if postings[mid].Doc < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// maxscoreTopK runs MaxScore over the given cursors (one per indexed
// query term, orders assigned in ascending term order, posting lists
// possibly shard sub-slices carrying global document numbers) and
// returns the k best documents exactly as the exhaustive evaluator
// would: score descending, document ascending, scores bit-identical.
// k must be positive; callers handle the k <= 0 "all matches" form via
// the exhaustive path, where no threshold ever forms.
//
// ctx is polled every few hundred candidates — the pruned counterpart
// of the exhaustive pass's between-posting-lists preemption — so a shed
// or disconnected request stops mid-evaluation instead of finishing a
// top-k nobody will read.
func maxscoreTopK(ctx context.Context, idx *index.Index, model Model, qLen int, cursors []msCursor, k int) ([]topk.Item[int32], error) {
	cstats := idx.Stats()
	live := cursors[:0]
	for _, c := range cursors {
		if len(c.postings) > 0 {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return nil, nil
	}
	// Ascending upper bound (ties by term order, for determinism);
	// prefix[i] bounds the total contribution of lists 0..i.
	sort.Slice(live, func(i, j int) bool {
		if live[i].ub != live[j].ub {
			return live[i].ub < live[j].ub
		}
		return live[i].order < live[j].order
	})
	prefix := make([]float64, len(live))
	sum := 0.0
	for i := range live {
		sum += live[i].ub
		prefix[i] = sum
	}
	slack := msSlack(len(live))

	heap := topk.NewBounded[int32](k)
	threshold := math.Inf(-1)
	firstEss := 0 // live[firstEss:] are the essential lists
	contrib := make([]float64, len(cursors))
	touched := make([]int, 0, len(cursors))
	for candidates := 0; ; candidates++ {
		// Poll on entry (a canceled request must not start) and then
		// every 256 candidates.
		if candidates&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Grow the non-essential prefix against the current threshold.
		for firstEss < len(live) && prefix[firstEss]*slack <= threshold {
			firstEss++
		}
		if firstEss >= len(live) {
			break // no remaining document can enter the heap
		}
		// Next candidate: the minimum current document among essential
		// lists (documents appearing only in non-essential lists are
		// bounded by prefix[firstEss-1] and provably out).
		d := int32(math.MaxInt32)
		for i := firstEss; i < len(live); i++ {
			if c := &live[i]; c.pos < len(c.postings) && c.postings[c.pos].Doc < d {
				d = c.postings[c.pos].Doc
			}
		}
		if d == math.MaxInt32 {
			break // essential lists exhausted
		}
		docLen := float64(idx.DocLen(d))
		partial := 0.0
		matched := false
		for i := firstEss; i < len(live); i++ {
			c := &live[i]
			if c.pos < len(c.postings) && c.postings[c.pos].Doc == d {
				tf := float64(c.postings[c.pos].TF)
				c.pos++
				if s := model.TermScore(tf, docLen, c.stats, cstats); s != 0 {
					v := c.mult * s
					contrib[c.order] = v
					touched = append(touched, c.order)
					partial += v
					matched = true
				}
			}
		}
		// Non-essential lists, highest bound first: probe while the
		// candidate can still reach the threshold, prune the moment it
		// provably cannot.
		pruned := false
		for i := firstEss - 1; i >= 0; i-- {
			if (partial+prefix[i])*slack <= threshold {
				pruned = true
				break
			}
			c := &live[i]
			c.pos = seekPosting(c.postings, c.pos, d)
			if c.pos < len(c.postings) && c.postings[c.pos].Doc == d {
				tf := float64(c.postings[c.pos].TF)
				if s := model.TermScore(tf, docLen, c.stats, cstats); s != 0 {
					v := c.mult * s
					contrib[c.order] = v
					touched = append(touched, c.order)
					partial += v
					matched = true
				}
			}
		}
		if !pruned && matched {
			// Final score: the exhaustive accumulation order — ascending
			// term order, zero contributions skipped — then the document
			// adjustment (identically zero for Boundable models; applied
			// anyway so the formula matches Retrieve's to the letter).
			score := 0.0
			for o := 0; o < len(contrib); o++ {
				if v := contrib[o]; v != 0 {
					score += v
				}
			}
			score += model.DocAdjust(docLen, qLen, cstats)
			heap.Push(d, score, int64(d))
			if t, full := heap.Threshold(); full {
				threshold = t
			}
		}
		for _, o := range touched {
			contrib[o] = 0
		}
		touched = touched[:0]
	}
	return heap.Drain(), nil
}

// RetrievePruned is Retrieve with MaxScore dynamic pruning: identical
// results (bit-identical scores, same order), fewer postings scored.
// When pruning cannot apply — k <= 0 requests every match, the model is
// not Boundable, or the index carries no max-score table for it — it
// falls back to the exhaustive Retrieve.
func RetrievePruned(idx *index.Index, model Model, queryTokens []string, k int) []Hit {
	table := maxScoreTable(idx, model)
	if table == nil || k <= 0 || len(queryTokens) == 0 {
		return Retrieve(idx, model, queryTokens, k)
	}
	terms, mults := termMultiplicities(queryTokens)
	cursors := make([]msCursor, 0, len(terms))
	for ti, term := range terms {
		tstats, plist, ok := idx.LookupPostings(term)
		if !ok {
			continue
		}
		cursors = append(cursors, msCursor{
			postings: plist,
			stats:    tstats,
			mult:     mults[ti],
			ub:       mults[ti] * table[tstats.ID],
			order:    len(cursors),
		})
	}
	// Background context: the monolithic entry point has no request
	// scope to honor (the sharded path threads the real one through).
	items, _ := maxscoreTopK(context.Background(), idx, model, len(queryTokens), cursors, k)
	if len(items) == 0 {
		return nil
	}
	hits := make([]Hit, len(items))
	for i, it := range items {
		hits[i] = Hit{Doc: it.Value, DocID: idx.DocID(it.Value), Score: it.Score, Rank: i + 1}
	}
	return hits
}
