package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/stats"
	"repro/internal/textsim"
)

// computeUtilitiesReference is the pre-accumulator implementation of
// ComputeUtilities — the per-pair string-vector merge join — kept verbatim
// as the differential oracle: the interned accumulator rewrite must
// reproduce this matrix bit for bit.
func computeUtilitiesReference(p *Problem) *Utilities {
	n := len(p.Candidates)
	s := len(p.Specs)
	u := &Utilities{
		U:       make([][]float64, n),
		Overall: make([]float64, n),
	}
	flat := make([]float64, n*s)

	norm := make([]float64, s)
	for j, spec := range p.Specs {
		norm[j] = stats.Harmonic(len(spec.Results))
	}

	for i := range p.Candidates {
		row := flat[i*s : (i+1)*s : (i+1)*s]
		d := &p.Candidates[i]
		for j := range p.Specs {
			spec := &p.Specs[j]
			if len(spec.Results) == 0 || norm[j] == 0 {
				continue
			}
			sum := 0.0
			for r := range spec.Results {
				dr := &spec.Results[r]
				var sim float64
				if dr.ID == d.ID {
					sim = 1
				} else {
					sim = textsim.Cosine(d.Vector, dr.Vector)
				}
				if sim <= 0 {
					continue
				}
				rank := dr.Rank
				if rank <= 0 {
					rank = r + 1
				}
				sum += sim / float64(rank)
			}
			util := sum / norm[j]
			if util < p.Threshold {
				util = 0
			}
			row[j] = util
		}
		u.U[i] = row
		u.Overall[i] = overallScore(p, row, d.Rel)
	}
	return u
}

// randomProblem builds a random diversification problem with string
// vectors only (the legacy construction), exercising shared-term overlap,
// same-ID candidate/result pairs, zero vectors, rank fallbacks, and a
// threshold.
func randomDiffProblem(rng *rand.Rand) *Problem {
	vocab := make([]string, 60)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("t%02d", rng.Intn(90))
	}
	randVec := func(maxLen int) textsim.Vector {
		n := rng.Intn(maxLen + 1)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = vocab[rng.Intn(len(vocab))]
		}
		return textsim.FromTokens(toks)
	}

	s := rng.Intn(5) + 1
	specs := make([]Specialization, s)
	probSum := 0.0
	for j := range specs {
		nr := rng.Intn(8) // occasionally zero results
		results := make([]SpecResult, nr)
		for r := range results {
			rank := r + 1
			if rng.Intn(5) == 0 {
				rank = 0 // exercise the rank fallback
			}
			results[r] = SpecResult{
				ID:     fmt.Sprintf("s%02d-r%02d", j, r),
				Rank:   rank,
				Vector: randVec(12),
			}
		}
		prob := rng.Float64() + 0.05
		probSum += prob
		specs[j] = Specialization{Query: fmt.Sprintf("spec %d", j), Prob: prob, Results: results}
	}
	for j := range specs {
		specs[j].Prob /= probSum
	}

	n := rng.Intn(40) + 5
	cands := make([]Doc, n)
	for i := range cands {
		id := fmt.Sprintf("d%03d", i)
		if rng.Intn(10) == 0 && s > 0 && len(specs[0].Results) > 0 {
			// Same document appears in a specialization's results.
			id = specs[0].Results[rng.Intn(len(specs[0].Results))].ID
		}
		cands[i] = Doc{
			ID:     id,
			Rank:   i + 1,
			Rel:    rng.Float64(),
			Vector: randVec(12),
		}
	}

	return &Problem{
		Query:      "diff test",
		Candidates: cands,
		Specs:      specs,
		K:          rng.Intn(n+5) + 1,
		Lambda:     0.15,
		Threshold:  []float64{0, 0, 0.2, 0.5}[rng.Intn(4)],
	}
}

// TestComputeUtilitiesMatchesReference is the tentpole differential test:
// on random problems, the interned accumulator scorer must reproduce the
// legacy per-pair merge-join matrix exactly (==, not within an epsilon).
func TestComputeUtilitiesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 300; trial++ {
		p := randomDiffProblem(rng)
		want := computeUtilitiesReference(p)
		got := ComputeUtilities(p)
		for i := range want.U {
			if want.Overall[i] != got.Overall[i] {
				t.Fatalf("trial %d: Overall[%d] = %v, reference %v (diff %g)",
					trial, i, got.Overall[i], want.Overall[i], got.Overall[i]-want.Overall[i])
			}
			for j := range want.U[i] {
				if want.U[i][j] != got.U[i][j] {
					t.Fatalf("trial %d: U[%d][%d] = %v, reference %v (diff %g)",
						trial, i, j, got.U[i][j], want.U[i][j], got.U[i][j]-want.U[i][j])
				}
			}
		}
	}
}

// TestDiversifyBitIdenticalToReference runs every algorithm on the pooled
// Diversify path and on the reference utilities, asserting the selections
// agree document-for-document with bitwise-equal scores — the end-to-end
// guarantee the serving cache's Diversify-equivalence contract needs.
func TestDiversifyBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		p := randomDiffProblem(rng)
		ref := computeUtilitiesReference(p)
		for _, alg := range Algorithms {
			var want []Selected
			switch alg {
			case AlgBaseline:
				want = Baseline(p)
			case AlgOptSelect:
				want = OptSelect(p, ref)
			case AlgXQuAD:
				want = XQuAD(p, ref)
			case AlgIASelect:
				want = IASelect(p, ref)
			case AlgMMR:
				want = MMR(p)
			}
			got := Diversify(alg, p)
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %d selected, reference %d", trial, alg, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
					t.Fatalf("trial %d %s sel %d: (%s, %v) != reference (%s, %v)",
						trial, alg, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				}
			}
		}
	}
}

// TestDiversifyConcurrentPooledScratch hammers the pooled utility
// matrices and scratch buffers from many goroutines — the shape of the
// serving worker pool — and checks results stay correct and isolated.
// Run under -race this is the safety net for the sync.Pool plumbing.
func TestDiversifyConcurrentPooledScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	problems := make([]*Problem, 6)
	want := make([][]Selected, len(problems))
	for i := range problems {
		problems[i] = randomDiffProblem(rng)
		problems[i].EnsureInterned() // shared problems must be pre-interned
		want[i] = Diversify(AlgOptSelect, problems[i])
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 30; iter++ {
				i := (g + iter) % len(problems)
				got := Diversify(AlgOptSelect, problems[i])
				if len(got) != len(want[i]) {
					errc <- fmt.Errorf("problem %d: %d selected, want %d", i, len(got), len(want[i]))
					return
				}
				for x := range got {
					if got[x].ID != want[i][x].ID || got[x].Score != want[i][x].Score {
						errc <- fmt.Errorf("problem %d sel %d: (%s,%v) != (%s,%v)",
							i, x, got[x].ID, got[x].Score, want[i][x].ID, want[i][x].Score)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
