package core

// XQuAD is the greedy algorithm of the xQuAD framework (Santos et al.,
// WWW'10) as formulated in §3.1.2: it iteratively moves into S the
// document d* ∈ R_q \ S maximizing Equation (5),
//
//	(1−λ)·P(d|q) + λ·P(d,S̄|q),
//
// where the diversity component of Equation (6) is
//
//	P(d,S̄|q) = Σ_{q′∈S_q} P(q′|q) · P(d|q′) · Π_{dj∈S} (1 − P(dj|q′)),
//
// with P(d|q′) measured by the paper's normalized utility Ũ(d|R_q′).
// Like IASelect it rescans the remaining candidates for each of the k
// insertions: O(n·k) (Table 1).
func XQuAD(p *Problem, u *Utilities) []Selected {
	k := p.clampK()
	if k == 0 {
		return nil
	}
	if len(p.Specs) == 0 {
		return Baseline(p)
	}
	n := len(p.Candidates)
	s := len(p.Specs)

	// residual[j] = Π_{dj∈S}(1 − Ũ(dj|R_q′_j)): how uncovered
	// specialization j still is.
	residual := make([]float64, s)
	for j := range residual {
		residual[j] = 1
	}
	selected := make([]bool, n)
	out := make([]Selected, 0, k)

	for len(out) < k {
		best := -1
		bestScore := 0.0
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			div := 0.0
			row := u.U[i]
			for j := 0; j < s; j++ {
				div += p.Specs[j].Prob * row[j] * residual[j]
			}
			score := (1-p.Lambda)*p.Candidates[i].Rel + p.Lambda*div
			if best < 0 || score > bestScore ||
				(score == bestScore && p.Candidates[i].Rank < p.Candidates[best].Rank) {
				bestScore = score
				best = i
			}
		}
		if best < 0 {
			break
		}
		selected[best] = true
		row := u.U[best]
		for j := 0; j < s; j++ {
			residual[j] *= 1 - row[j]
		}
		out = append(out, Selected{Doc: p.Candidates[best], Score: bestScore})
	}
	return out
}
