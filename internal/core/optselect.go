package core

import (
	"sort"

	"repro/internal/topk"
)

// OptSelect solves MaxUtility Diversify(k) (§3.1.3) with the paper's
// Algorithm 2. Because Equation (8) makes the objective additive —
// Ũ(S|q) = Σ_{d∈S} Ũ(d|q) — the optimum is the top-k candidates by
// overall score Ũ(d|q), subject to the proportional-coverage constraint
// |R_q ⋈ q′| ≥ ⌊k·P(q′|q)⌋ for every specialization.
//
// The implementation follows the published data-structure design: one
// bounded heap of size ⌊k·P(q′|q)⌋+1 per specialization holding its most
// useful candidates, plus one global k-heap M for candidates useful to no
// specialization. Selection first pops per-specialization heaps until each
// specialization's coverage quota ⌊k·P(q′|q)⌋ is met (most probable
// specialization first), then fills the remaining slots with the best
// unselected candidates overall. Every heap operation is O(log k), giving
// the O(n·|S_q|·log k) bound of Table 1.
//
// The printed pseudocode pops a single document per specialization before
// filling from M; as discussed in DESIGN.md we implement the constraint
// stated in the problem definition (coverage proportional to P(q′|q)),
// which the one-pop reading cannot guarantee. The returned set is ordered
// by descending overall score — the re-ranked SERP order.
func OptSelect(p *Problem, u *Utilities) []Selected {
	k := p.clampK()
	if k == 0 {
		return nil
	}
	if len(p.Specs) == 0 {
		return Baseline(p)
	}
	n := len(p.Candidates)

	// Specialization processing order: descending probability, matching
	// "the more popular a specialization, the greater the number of
	// results relevant for it". Ties break on declaration order.
	order := make([]int, len(p.Specs))
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Specs[order[a]].Prob > p.Specs[order[b]].Prob
	})

	// Build the heaps: M_q′ per specialization (size ⌊k·P⌋+1), M for
	// documents useful to no specialization (size k). Heap keys are the
	// overall score Ũ(d|q) of Equation (9); ties break toward the better
	// original rank.
	quota := make([]int, len(p.Specs))
	specHeaps := make([]*topk.Bounded[int], len(p.Specs))
	for j := range p.Specs {
		quota[j] = int(float64(k) * p.Specs[j].Prob)
		specHeaps[j] = topk.NewBounded[int](quota[j] + 1)
	}
	global := topk.NewBounded[int](k)

	// Line 05–06 of Algorithm 2: for each q′ and each d, push d onto M_q′
	// when Ũ(d|R_q′) > 0 and onto M otherwise. We strengthen M slightly:
	// every document is offered to M exactly once, making M the global
	// top-k reservoir by overall score. This keeps the O(log k) per-push
	// cost but guarantees the fill phase always sees the best unselected
	// candidates (a document useful for every specialization can be
	// evicted from all bounded spec heaps; under the literal "else" rule
	// it would vanish from the selectable pool).
	for i := 0; i < n; i++ {
		for j := range p.Specs {
			if u.U[i][j] > 0 {
				specHeaps[j].Push(i, u.Overall[i], int64(p.Candidates[i].Rank))
			}
		}
		global.Push(i, u.Overall[i], int64(p.Candidates[i].Rank))
	}

	selected := make([]bool, n)
	cover := make([]int, len(p.Specs)) // |S ⋈ q′_j| so far
	out := make([]Selected, 0, k)

	add := func(i int) {
		selected[i] = true
		for j := range p.Specs {
			if u.U[i][j] > 0 {
				cover[j]++
			}
		}
		out = append(out, Selected{Doc: p.Candidates[i], Score: u.Overall[i]})
	}

	// Phase 1 — proportional coverage. Drain gives each heap's contents
	// best-first. Documents already selected for an earlier specialization
	// count toward this quota when useful for it too (cover[] tracks that).
	drained := make([][]topk.Item[int], len(p.Specs))
	for j := range p.Specs {
		drained[j] = specHeaps[j].Drain()
	}
	for _, j := range order {
		pos := 0
		for cover[j] < quota[j] && len(out) < k && pos < len(drained[j]) {
			i := drained[j][pos].Value
			pos++
			if !selected[i] {
				add(i)
			}
		}
		drained[j] = drained[j][pos:]
	}

	// Phase 2 — fill: best remaining candidates by overall score, drawn
	// from the leftovers of every specialization heap and from M.
	fill := topk.NewMax[int](k)
	for j := range drained {
		for _, it := range drained[j] {
			if !selected[it.Value] {
				fill.PushItem(it)
			}
		}
	}
	for _, it := range global.Drain() {
		fill.PushItem(it)
	}
	for len(out) < k {
		it, ok := fill.Pop()
		if !ok {
			break
		}
		if selected[it.Value] {
			continue
		}
		add(it.Value)
	}

	// Fallback sweep: a document useful to every specialization but evicted
	// from all bounded heaps is unreachable through them; when the fill
	// pool underflows, complete S from the remaining candidates by overall
	// score so the algorithm always returns min(k, n) documents.
	if len(out) < k {
		rest := topk.NewBounded[int](k - len(out))
		for i := 0; i < n; i++ {
			if !selected[i] {
				rest.Push(i, u.Overall[i], int64(p.Candidates[i].Rank))
			}
		}
		for _, it := range rest.Drain() {
			add(it.Value)
		}
	}

	// Final SERP order: descending overall score (stable, rank tie-break).
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Rank < out[b].Rank
	})
	return out
}
