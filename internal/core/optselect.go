package core

import (
	"sort"

	"repro/internal/topk"
)

// OptSelect solves MaxUtility Diversify(k) (§3.1.3) with the paper's
// Algorithm 2. Because Equation (8) makes the objective additive —
// Ũ(S|q) = Σ_{d∈S} Ũ(d|q) — the optimum is the top-k candidates by
// overall score Ũ(d|q), subject to the proportional-coverage constraint
// |R_q ⋈ q′| ≥ ⌊k·P(q′|q)⌋ for every specialization.
//
// The implementation follows the published data-structure design: one
// bounded heap of size ⌊k·P(q′|q)⌋+1 per specialization holding its most
// useful candidates, plus one global k-heap M for candidates useful to no
// specialization. Selection first pops per-specialization heaps until each
// specialization's coverage quota ⌊k·P(q′|q)⌋ is met (most probable
// specialization first), then fills the remaining slots with the best
// unselected candidates overall. Every heap operation is O(log k), giving
// the O(n·|S_q|·log k) bound of Table 1.
//
// The printed pseudocode pops a single document per specialization before
// filling from M; as discussed in DESIGN.md we implement the constraint
// stated in the problem definition (coverage proportional to P(q′|q)),
// which the one-pop reading cannot guarantee. The returned set is ordered
// by descending overall score — the re-ranked SERP order.
func OptSelect(p *Problem, u *Utilities) []Selected {
	k := p.clampK()
	if k == 0 {
		return nil
	}
	if len(p.Specs) == 0 {
		return Baseline(p)
	}
	h := NewOptSelectHeaps(p, k)
	for i := range p.Candidates {
		h.Offer(i, u.U[i], u.Overall[i], p.Candidates[i].Rank)
	}
	return OptSelectFrom(p, u, h)
}

// OptSelectHeaps is the heap state of Algorithm 2, split out so it can be
// populated incrementally: the staged path fills it in one loop over a
// completed Utilities matrix (OptSelect above), while the fused execution
// plan offers each candidate as the retrieval scan materializes it —
// M_q′ per specialization (size ⌊k·P(q′|q)⌋+1) and the global reservoir M
// (size k). Heap keys are the overall score Ũ(d|q) of Equation (9); ties
// break toward the better original rank. Offer order must be candidate
// order (ascending index), which both paths produce.
type OptSelectHeaps struct {
	k     int
	quota []int
	specs []*topk.Bounded[int]
	m     *topk.Bounded[int]
}

// NewOptSelectHeaps sizes the heaps of Algorithm 2 for result size k
// (already clamped to the candidate count).
func NewOptSelectHeaps(p *Problem, k int) *OptSelectHeaps {
	h := &OptSelectHeaps{
		k:     k,
		quota: make([]int, len(p.Specs)),
		specs: make([]*topk.Bounded[int], len(p.Specs)),
	}
	for j := range p.Specs {
		h.quota[j] = int(float64(k) * p.Specs[j].Prob)
		h.specs[j] = topk.NewBounded[int](h.quota[j] + 1)
	}
	h.m = topk.NewBounded[int](k)
	return h
}

// Offer is line 05–06 of Algorithm 2 for one candidate: push i onto M_q′
// for every specialization with Ũ(i|R_q′_j) > 0, and onto M. We strengthen
// M slightly: every document is offered to M exactly once, making M the
// global top-k reservoir by overall score. This keeps the O(log k)
// per-push cost but guarantees the fill phase always sees the best
// unselected candidates (a document useful for every specialization can be
// evicted from all bounded spec heaps; under the literal "else" rule it
// would vanish from the selectable pool).
func (h *OptSelectHeaps) Offer(i int, row []float64, overall float64, rank int) {
	for j, uj := range row {
		if uj > 0 {
			h.specs[j].Push(i, overall, int64(rank))
		}
	}
	h.m.Push(i, overall, int64(rank))
}

// SpecEvictions reports the total full-heap evictions across the
// per-specialization heaps — the fused-path /stats counter showing how
// contended the aspect heaps were.
func (h *OptSelectHeaps) SpecEvictions() uint64 {
	var n uint64
	for _, sh := range h.specs {
		n += sh.Evictions()
	}
	return n
}

// OptSelectFrom runs the selection phases of Algorithm 2 over prebuilt
// heaps: proportional coverage first, then fill from the leftovers and M.
// Every candidate must have been Offered exactly once, in candidate order;
// h must have been sized with k = p.clampK().
func OptSelectFrom(p *Problem, u *Utilities, h *OptSelectHeaps) []Selected {
	k := h.k
	if k == 0 {
		return nil
	}
	n := len(p.Candidates)
	quota, specHeaps, global := h.quota, h.specs, h.m

	// Specialization processing order: descending probability, matching
	// "the more popular a specialization, the greater the number of
	// results relevant for it". Ties break on declaration order.
	order := make([]int, len(p.Specs))
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Specs[order[a]].Prob > p.Specs[order[b]].Prob
	})

	selected := make([]bool, n)
	cover := make([]int, len(p.Specs)) // |S ⋈ q′_j| so far
	out := make([]Selected, 0, k)

	add := func(i int) {
		selected[i] = true
		for j := range p.Specs {
			if u.U[i][j] > 0 {
				cover[j]++
			}
		}
		out = append(out, Selected{Doc: p.Candidates[i], Score: u.Overall[i]})
	}

	// Phase 1 — proportional coverage. Drain gives each heap's contents
	// best-first. Documents already selected for an earlier specialization
	// count toward this quota when useful for it too (cover[] tracks that).
	drained := make([][]topk.Item[int], len(p.Specs))
	for j := range p.Specs {
		drained[j] = specHeaps[j].Drain()
	}
	for _, j := range order {
		pos := 0
		for cover[j] < quota[j] && len(out) < k && pos < len(drained[j]) {
			i := drained[j][pos].Value
			pos++
			if !selected[i] {
				add(i)
			}
		}
		drained[j] = drained[j][pos:]
	}

	// Phase 2 — fill: best remaining candidates by overall score, drawn
	// from the leftovers of every specialization heap and from M.
	fill := topk.NewMax[int](k)
	for j := range drained {
		for _, it := range drained[j] {
			if !selected[it.Value] {
				fill.PushItem(it)
			}
		}
	}
	for _, it := range global.Drain() {
		fill.PushItem(it)
	}
	for len(out) < k {
		it, ok := fill.Pop()
		if !ok {
			break
		}
		if selected[it.Value] {
			continue
		}
		add(it.Value)
	}

	// Fallback sweep: a document useful to every specialization but evicted
	// from all bounded heaps is unreachable through them; when the fill
	// pool underflows, complete S from the remaining candidates by overall
	// score so the algorithm always returns min(k, n) documents.
	if len(out) < k {
		rest := topk.NewBounded[int](k - len(out))
		for i := 0; i < n; i++ {
			if !selected[i] {
				rest.Push(i, u.Overall[i], int64(p.Candidates[i].Rank))
			}
		}
		for _, it := range rest.Drain() {
			add(it.Value)
		}
	}

	// Final SERP order: descending overall score (stable, rank tie-break).
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Rank < out[b].Rank
	})
	return out
}
