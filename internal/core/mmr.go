package core

// MMR is Maximal Marginal Relevance (Carbonell & Goldstein, SIGIR'98), the
// pioneering diversification re-ranker discussed in the paper's related
// work (§2). It greedily selects
//
//	d* = argmax_{d∈R\S} [ λ·P(d|q) − (1−λ)·max_{dj∈S} sim(d,dj) ]
//
// with sim = cosine over document surrogates. Unlike the three query-log
// methods it needs no specializations — it diversifies purely on
// inter-document similarity — which makes it the natural
// taxonomy/log-free baseline for the ablation benches. Cost: O(n·k)
// similarity updates.
func MMR(p *Problem) []Selected {
	k := p.clampK()
	if k == 0 {
		return nil
	}
	p.EnsureInterned()
	n := len(p.Candidates)
	lambda := p.Lambda
	if lambda == 0 {
		lambda = 0.5
	}

	selected := make([]bool, n)
	// maxSim[i] = max similarity of candidate i to any selected document.
	maxSim := make([]float64, n)
	out := make([]Selected, 0, k)

	for len(out) < k {
		best := -1
		bestScore := 0.0
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			score := lambda*p.Candidates[i].Rel - (1-lambda)*maxSim[i]
			if best < 0 || score > bestScore ||
				(score == bestScore && p.Candidates[i].Rank < p.Candidates[best].Rank) {
				bestScore = score
				best = i
			}
		}
		if best < 0 {
			break
		}
		selected[best] = true
		out = append(out, Selected{Doc: p.Candidates[best], Score: bestScore})
		// Incremental update keeps the whole run at O(n) per insertion.
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			if sim := p.Candidates[i].IVec.Cosine(p.Candidates[best].IVec); sim > maxSim[i] {
				maxSim[i] = sim
			}
		}
	}
	return out
}
