// Package core implements §3 of the paper: the result-diversification
// problem over query-log-mined specializations, the paper's utility
// measure (Definition 2), and the three algorithms compared in the
// evaluation — OptSelect (the paper's contribution, Algorithm 2 solving
// MaxUtility Diversify(k)), IASelect (the greedy approximation of
// Agrawal et al.'s QL Diversify(k)), and xQuAD (Santos et al.) — plus the
// classic MMR re-ranker as an additional baseline.
//
// All algorithms consume the same Problem and the same precomputed
// Utilities, so efficiency comparisons time exactly the selection logic
// the paper's Table 2 measures.
package core

import (
	"sort"

	"repro/internal/textsim"
)

// Doc is one candidate result d ∈ R_q.
type Doc struct {
	ID string
	// Rank is the 1-based position of d in the original ranking R_q.
	Rank int
	// Rel is P(d|q): the normalized relevance of d for q in [0,1]
	// (retrieval score divided by the maximum score of R_q).
	Rel float64
	// Vector is the term vector of the document surrogate (snippet) used
	// by the distance function δ.
	Vector textsim.Vector
}

// SpecResult is one entry of R_q′, the result list of a specialization.
type SpecResult struct {
	ID     string
	Rank   int // 1-based rank in R_q′
	Vector textsim.Vector
}

// Specialization is one mined specialization q′ ∈ S_q with its probability
// P(q′|q) (Definition 1) and its result list R_q′.
type Specialization struct {
	Query   string
	Prob    float64 // P(q′|q); the Probs over a Problem's Specs sum to 1
	Results []SpecResult
}

// Problem is the diversification input: the ambiguous query q, its
// candidates R_q, its specializations S_q, and the paper's parameters.
type Problem struct {
	Query      string
	Candidates []Doc
	Specs      []Specialization
	// K is the size of the diversified result set S.
	K int
	// Lambda is the relevance/diversity mixing parameter λ ∈ [0,1] of
	// Equations (5) and (7). The paper uses λ = 0.15.
	Lambda float64
	// Threshold is the utility cutoff c of §5: utilities strictly below c
	// are forced to 0 before the algorithms run.
	Threshold float64
}

// Selected is one document of the diversified set S, with the score under
// which the algorithm selected it.
type Selected struct {
	Doc
	Score float64
}

// IDs extracts the document IDs of a selection, in order.
func IDs(sel []Selected) []string {
	out := make([]string, len(sel))
	for i, s := range sel {
		out[i] = s.ID
	}
	return out
}

// clampK returns the effective k: non-positive K selects nothing; K larger
// than the candidate set selects everything.
func (p *Problem) clampK() int {
	k := p.K
	if k < 0 {
		k = 0
	}
	if k > len(p.Candidates) {
		k = len(p.Candidates)
	}
	return k
}

// Baseline returns the top-k candidates of R_q in their original retrieval
// order — the "no diversification" row of Table 3.
func Baseline(p *Problem) []Selected {
	k := p.clampK()
	docs := make([]Doc, len(p.Candidates))
	copy(docs, p.Candidates)
	sort.SliceStable(docs, func(i, j int) bool { return docs[i].Rank < docs[j].Rank })
	out := make([]Selected, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, Selected{Doc: docs[i], Score: docs[i].Rel})
	}
	return out
}

// Algorithm names the diversification methods of the evaluation.
type Algorithm string

// The diversification methods compared in the paper's evaluation, plus the
// no-op baseline and the classic MMR re-ranker.
const (
	AlgBaseline  Algorithm = "baseline"
	AlgOptSelect Algorithm = "optselect"
	AlgXQuAD     Algorithm = "xquad"
	AlgIASelect  Algorithm = "iaselect"
	AlgMMR       Algorithm = "mmr"
)

// Algorithms lists the selectable methods in evaluation order.
var Algorithms = []Algorithm{AlgBaseline, AlgOptSelect, AlgXQuAD, AlgIASelect, AlgMMR}

// Valid reports whether a names one of the selectable methods — the
// shared validation behind every user-facing algorithm knob (CLI flags,
// HTTP parameters).
func (a Algorithm) Valid() bool {
	for _, known := range Algorithms {
		if a == known {
			return true
		}
	}
	return false
}

// Diversify runs the named algorithm on the problem, computing utilities
// as needed. It is the high-level entry point; harnesses that time the
// algorithms precompute Utilities once and call the algorithm functions
// directly.
func Diversify(alg Algorithm, p *Problem) []Selected {
	switch alg {
	case AlgBaseline:
		return Baseline(p)
	case AlgMMR:
		return MMR(p)
	}
	u := ComputeUtilities(p)
	switch alg {
	case AlgOptSelect:
		return OptSelect(p, u)
	case AlgXQuAD:
		return XQuAD(p, u)
	case AlgIASelect:
		return IASelect(p, u)
	default:
		return Baseline(p)
	}
}
