// Package core implements §3 of the paper: the result-diversification
// problem over query-log-mined specializations, the paper's utility
// measure (Definition 2), and the three algorithms compared in the
// evaluation — OptSelect (the paper's contribution, Algorithm 2 solving
// MaxUtility Diversify(k)), IASelect (the greedy approximation of
// Agrawal et al.'s QL Diversify(k)), and xQuAD (Santos et al.) — plus the
// classic MMR re-ranker as an additional baseline.
//
// All algorithms consume the same Problem and the same precomputed
// Utilities, so efficiency comparisons time exactly the selection logic
// the paper's Table 2 measures.
package core

import (
	"sort"
	"sync"

	"repro/internal/textsim"
)

// Doc is one candidate result d ∈ R_q.
type Doc struct {
	ID string
	// Rank is the 1-based position of d in the original ranking R_q.
	Rank int
	// Rel is P(d|q): the normalized relevance of d for q in [0,1]
	// (retrieval score divided by the maximum score of R_q).
	Rel float64
	// Vector is the string-term vector of the document surrogate
	// (snippet) used by the distance function δ — the compatibility
	// representation. Problem builders may leave it empty and supply IVec
	// directly (the engine pipeline does).
	Vector textsim.Vector
	// IVec is the interned twin of Vector under Problem.Lex; the scoring
	// hot paths operate exclusively on it. Populated by the problem
	// builder or lazily by (*Problem).EnsureInterned.
	IVec textsim.IVector
}

// SpecResult is one entry of R_q′, the result list of a specialization.
type SpecResult struct {
	ID     string
	Rank   int // 1-based rank in R_q′
	Vector textsim.Vector
	// IVec is the interned twin of Vector; see Doc.IVec.
	IVec textsim.IVector
}

// Specialization is one mined specialization q′ ∈ S_q with its probability
// P(q′|q) (Definition 1) and its result list R_q′.
type Specialization struct {
	Query   string
	Prob    float64 // P(q′|q); the Probs over a Problem's Specs sum to 1
	Results []SpecResult
}

// Problem is the diversification input: the ambiguous query q, its
// candidates R_q, its specializations S_q, and the paper's parameters.
type Problem struct {
	Query      string
	Candidates []Doc
	Specs      []Specialization
	// K is the size of the diversified result set S.
	K int
	// Lambda is the relevance/diversity mixing parameter λ ∈ [0,1] of
	// Equations (5) and (7). The paper uses λ = 0.15.
	Lambda float64
	// Threshold is the utility cutoff c of §5: utilities strictly below c
	// are forced to 0 before the algorithms run.
	Threshold float64
	// Lex is the term lexicon all IVec fields are interned under. When
	// set, every candidate and specialization result must already carry
	// its IVec (the engine pipeline builds problems this way, and the
	// serving layer's cached R_q′ lists store interned vectors only).
	// When nil, EnsureInterned derives a problem-local sorted lexicon
	// from the string Vectors on first use.
	Lex *textsim.Lexicon
}

// EnsureInterned makes the problem ready for interned-term scoring: a nil
// Lex means the problem was built from string Vectors (tests, the
// synthetic generators, external callers), so a problem-local lexicon is
// derived from the union of all terms — sorted, which keeps interned
// merges in string order and scoring bit-identical to the legacy path —
// and every vector is interned under it, in place.
//
// The lazy path mutates the problem; it must not run concurrently for a
// shared problem. Builders that share result lists across goroutines (the
// serving cache) pre-intern and set Lex, making this a no-op.
func (p *Problem) EnsureInterned() {
	if p.Lex != nil {
		return
	}
	var terms []string
	for i := range p.Candidates {
		terms = append(terms, p.Candidates[i].Vector.Terms...)
	}
	for j := range p.Specs {
		results := p.Specs[j].Results
		for r := range results {
			terms = append(terms, results[r].Vector.Terms...)
		}
	}
	lex := textsim.NewSortedLexicon(terms)
	for i := range p.Candidates {
		p.Candidates[i].IVec = textsim.Intern(lex, p.Candidates[i].Vector)
	}
	for j := range p.Specs {
		results := p.Specs[j].Results
		for r := range results {
			results[r].IVec = textsim.Intern(lex, results[r].Vector)
		}
	}
	p.Lex = lex
}

// Selected is one document of the diversified set S, with the score under
// which the algorithm selected it.
type Selected struct {
	Doc
	Score float64
}

// IDs extracts the document IDs of a selection, in order.
func IDs(sel []Selected) []string {
	out := make([]string, len(sel))
	for i, s := range sel {
		out[i] = s.ID
	}
	return out
}

// clampK returns the effective k: non-positive K selects nothing; K larger
// than the candidate set selects everything.
func (p *Problem) clampK() int {
	k := p.K
	if k < 0 {
		k = 0
	}
	if k > len(p.Candidates) {
		k = len(p.Candidates)
	}
	return k
}

// Baseline returns the top-k candidates of R_q in their original retrieval
// order — the "no diversification" row of Table 3.
func Baseline(p *Problem) []Selected {
	k := p.clampK()
	docs := make([]Doc, len(p.Candidates))
	copy(docs, p.Candidates)
	sort.SliceStable(docs, func(i, j int) bool { return docs[i].Rank < docs[j].Rank })
	out := make([]Selected, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, Selected{Doc: docs[i], Score: docs[i].Rel})
	}
	return out
}

// Algorithm names the diversification methods of the evaluation.
type Algorithm string

// The diversification methods compared in the paper's evaluation, plus the
// no-op baseline and the classic MMR re-ranker.
const (
	AlgBaseline  Algorithm = "baseline"
	AlgOptSelect Algorithm = "optselect"
	AlgXQuAD     Algorithm = "xquad"
	AlgIASelect  Algorithm = "iaselect"
	AlgMMR       Algorithm = "mmr"
)

// Algorithms lists the selectable methods in evaluation order.
var Algorithms = []Algorithm{AlgBaseline, AlgOptSelect, AlgXQuAD, AlgIASelect, AlgMMR}

// Valid reports whether a names one of the selectable methods — the
// shared validation behind every user-facing algorithm knob (CLI flags,
// HTTP parameters).
func (a Algorithm) Valid() bool {
	for _, known := range Algorithms {
		if a == known {
			return true
		}
	}
	return false
}

// Diversify runs the named algorithm on the problem, computing utilities
// as needed. It is the high-level entry point; harnesses that time the
// algorithms precompute Utilities once and call the algorithm functions
// directly.
//
// The utility matrix lives only for the duration of the call, so it is
// drawn from a pool instead of allocated: the serving path stops paying a
// fresh n×|S_q| matrix per query. The selection algorithms read the
// matrix and copy what they keep (Doc + Score), never retaining it.
//
// Concurrency: a problem with Lex == nil is interned lazily on first use
// (see EnsureInterned), which mutates it — concurrent Diversify/
// ComputeUtilities/MMR calls on a shared Lex-nil problem race. Call
// EnsureInterned once (or build the problem pre-interned, as the engine
// pipeline does) before sharing a problem across goroutines.
func Diversify(alg Algorithm, p *Problem) []Selected {
	switch alg {
	case AlgBaseline:
		return Baseline(p)
	case AlgMMR:
		return MMR(p)
	}
	u := utilitiesPool.Get().(*Utilities)
	defer utilitiesPool.Put(u)
	computeUtilitiesInto(p, u)
	switch alg {
	case AlgOptSelect:
		return OptSelect(p, u)
	case AlgXQuAD:
		return XQuAD(p, u)
	case AlgIASelect:
		return IASelect(p, u)
	default:
		return Baseline(p)
	}
}

var utilitiesPool = sync.Pool{New: func() any { return new(Utilities) }}
