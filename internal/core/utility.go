package core

import (
	"repro/internal/stats"
	"repro/internal/textsim"
)

// Utilities holds the precomputed normalized utilities of Definition 2 and
// the overall per-document scores of Equation (9). Building it costs
// O(n·|S_q|·|R_q′|) vector operations; every algorithm then reads it in
// O(1) per (document, specialization) pair — mirroring the paper's setup,
// where utilities come from snippet similarity and the timed algorithms
// operate on them.
type Utilities struct {
	// U[i][j] = Ũ(candidate i | R_q′ of specialization j) ∈ [0,1], already
	// thresholded: values below Problem.Threshold are 0.
	U [][]float64
	// Overall[i] = Ũ(d_i|q) per Equation (9):
	// Σ_j [(1−λ)·P(d|q) + λ·P(q′_j|q)·U[i][j]].
	Overall []float64
}

// ComputeUtilities evaluates Definition 2 for every (candidate,
// specialization) pair:
//
//	U(d|R_q′) = Σ_{d′∈R_q′} (1−δ(d,d′)) / rank(d′,R_q′)
//	Ũ(d|R_q′) = U(d|R_q′) / H_{|R_q′|}
//
// with δ(d,d′) = 1 − cosine(d,d′) (Equation (2)), computed on document
// surrogates. A pair with identical IDs is the same document (δ = 0)
// regardless of surrogate quality. Utilities strictly below the threshold
// c are forced to 0, as in §5: "we forced its returning value to be 0
// when it is below a given threshold c".
func ComputeUtilities(p *Problem) *Utilities {
	n := len(p.Candidates)
	s := len(p.Specs)
	u := &Utilities{
		U:       make([][]float64, n),
		Overall: make([]float64, n),
	}
	flat := make([]float64, n*s)

	// Precompute per-specialization normalization H_{|R_q'|}.
	norm := make([]float64, s)
	for j, spec := range p.Specs {
		norm[j] = stats.Harmonic(len(spec.Results))
	}

	for i := range p.Candidates {
		row := flat[i*s : (i+1)*s : (i+1)*s]
		d := &p.Candidates[i]
		for j := range p.Specs {
			spec := &p.Specs[j]
			if len(spec.Results) == 0 || norm[j] == 0 {
				continue
			}
			sum := 0.0
			for r := range spec.Results {
				dr := &spec.Results[r]
				var sim float64
				if dr.ID == d.ID {
					sim = 1 // δ(d,d) = 0
				} else {
					sim = textsim.Cosine(d.Vector, dr.Vector)
				}
				if sim <= 0 {
					continue
				}
				rank := dr.Rank
				if rank <= 0 {
					rank = r + 1
				}
				sum += sim / float64(rank)
			}
			util := sum / norm[j]
			if util < p.Threshold {
				util = 0
			}
			row[j] = util
		}
		u.U[i] = row
		u.Overall[i] = overallScore(p, row, d.Rel)
	}
	return u
}

// overallScore evaluates Equation (9) for one document given its utility
// row: Ũ(d|q) = (1−λ)·|S_q|·P(d|q) + λ·Σ_j P(q′_j|q)·Ũ(d|R_q′_j).
func overallScore(p *Problem, row []float64, rel float64) float64 {
	sum := 0.0
	for j := range p.Specs {
		sum += p.Specs[j].Prob * row[j]
	}
	return (1-p.Lambda)*float64(len(p.Specs))*rel + p.Lambda*sum
}

// UtilityOf returns Ũ(candidate i | specialization j), for callers probing
// the matrix (tests, the coverage-constraint checker).
func (u *Utilities) UtilityOf(i, j int) float64 { return u.U[i][j] }

// WithThreshold derives a new Utilities with cutoff c applied to this
// matrix and the overall scores recomputed for p. It lets the Table 3
// harness sweep the threshold without re-running the O(n·|S_q|·|R_q′|)
// cosine computation: u must have been computed with threshold 0 (raw
// utilities) on the same problem.
func (u *Utilities) WithThreshold(p *Problem, c float64) *Utilities {
	n := len(u.U)
	s := 0
	if n > 0 {
		s = len(u.U[0])
	}
	out := &Utilities{
		U:       make([][]float64, n),
		Overall: make([]float64, n),
	}
	flat := make([]float64, n*s)
	for i := 0; i < n; i++ {
		row := flat[i*s : (i+1)*s : (i+1)*s]
		for j := 0; j < s; j++ {
			v := u.U[i][j]
			if v < c {
				v = 0
			}
			row[j] = v
		}
		out.U[i] = row
		out.Overall[i] = overallScore(p, row, p.Candidates[i].Rel)
	}
	return out
}
