package core

import (
	"slices"
	"sync"

	"repro/internal/stats"
)

// Utilities holds the precomputed normalized utilities of Definition 2 and
// the overall per-document scores of Equation (9). Building it costs
// O(n·|S_q|·|R_q′|) vector operations; every algorithm then reads it in
// O(1) per (document, specialization) pair — mirroring the paper's setup,
// where utilities come from snippet similarity and the timed algorithms
// operate on them.
type Utilities struct {
	// U[i][j] = Ũ(candidate i | R_q′ of specialization j) ∈ [0,1], already
	// thresholded: values below Problem.Threshold are 0.
	U [][]float64
	// Overall[i] = Ũ(d_i|q) per Equation (9):
	// Σ_j [(1−λ)·P(d|q) + λ·P(q′_j|q)·U[i][j]].
	Overall []float64

	// flat backs the U rows, so the whole matrix is one allocation and the
	// struct can be pooled (Diversify reuses matrices across queries).
	flat []float64
}

// ComputeUtilities evaluates Definition 2 for every (candidate,
// specialization) pair:
//
//	U(d|R_q′) = Σ_{d′∈R_q′} (1−δ(d,d′)) / rank(d′,R_q′)
//	Ũ(d|R_q′) = U(d|R_q′) / H_{|R_q′|}
//
// with δ(d,d′) = 1 − cosine(d,d′) (Equation (2)), computed on document
// surrogates. A pair with identical IDs is the same document (δ = 0)
// regardless of surrogate quality. Utilities strictly below the threshold
// c are forced to 0, as in §5: "we forced its returning value to be 0
// when it is below a given threshold c".
//
// The cosines are evaluated with accumulator scoring over interned term
// vectors (EnsureInterned): per specialization, a tiny inverted index over
// the R_q′ surrogates is built once, and each candidate is scored against
// all of a specialization's results in a single pass over the candidate's
// terms — one posting traversal instead of |R_q′| string-compare merge
// joins. Per-pair dot products accumulate in ascending term-ID order,
// which under a sorted lexicon is exactly the string-sorted merge order of
// the legacy path, so the matrix is bit-identical to the one the
// string-vector code produced (see the differential tests).
//
// A problem with Lex == nil is interned in place on first use; see the
// concurrency note on Diversify before sharing such a problem across
// goroutines.
func ComputeUtilities(p *Problem) *Utilities {
	u := &Utilities{}
	computeUtilitiesInto(p, u)
	return u
}

// specPosting is one (term, result, weight) triple while a specialization
// index is being built.
type specPosting struct {
	id int32
	r  int32
	w  float64
}

// specIndex is the per-specialization inverted index over the R_q′
// surrogate vectors: for each term ID (sorted ascending), the results it
// occurs in and its weight there, flattened into parallel arrays.
type specIndex struct {
	termIDs []int32
	starts  []int32 // len(termIDs)+1 offsets into postRes/postW
	postRes []int32
	postW   []float64
}

// build (re)fills the index from a result list, reusing posts as the
// triple scratch buffer and returning it (possibly regrown).
func (si *specIndex) build(results []SpecResult, posts []specPosting) []specPosting {
	posts = posts[:0]
	for r := range results {
		iv := &results[r].IVec
		for t, id := range iv.IDs {
			posts = append(posts, specPosting{id: id, r: int32(r), w: iv.Weights[t]})
		}
	}
	slices.SortFunc(posts, func(a, b specPosting) int {
		if a.id != b.id {
			return int(a.id) - int(b.id)
		}
		return int(a.r) - int(b.r)
	})
	si.termIDs = si.termIDs[:0]
	si.starts = si.starts[:0]
	si.postRes = si.postRes[:0]
	si.postW = si.postW[:0]
	for pi := range posts {
		if len(si.termIDs) == 0 || posts[pi].id != si.termIDs[len(si.termIDs)-1] {
			si.termIDs = append(si.termIDs, posts[pi].id)
			si.starts = append(si.starts, int32(len(si.postRes)))
		}
		si.postRes = append(si.postRes, posts[pi].r)
		si.postW = append(si.postW, posts[pi].w)
	}
	si.starts = append(si.starts, int32(len(si.postRes)))
	return posts
}

// utilScratch is the pooled per-call working set of computeUtilitiesInto:
// the specialization indexes, the triple buffer they are built through,
// the per-result dot-product accumulator, and the per-spec normalizers.
// Pooling it makes utility computation allocation-free in steady state on
// the serving path.
type utilScratch struct {
	specs []specIndex
	posts []specPosting
	acc   []float64
	norm  []float64
}

var utilScratchPool = sync.Pool{New: func() any { return new(utilScratch) }}

// prepare sizes the scratch for p and builds the per-spec indexes.
func (sc *utilScratch) prepare(p *Problem) {
	s := len(p.Specs)
	if cap(sc.specs) < s {
		sc.specs = make([]specIndex, s)
	} else {
		sc.specs = sc.specs[:s]
	}
	if cap(sc.norm) < s {
		sc.norm = make([]float64, s)
	} else {
		sc.norm = sc.norm[:s]
	}
	maxResults := 0
	for j := range p.Specs {
		results := p.Specs[j].Results
		sc.posts = sc.specs[j].build(results, sc.posts)
		sc.norm[j] = stats.Harmonic(len(results))
		if len(results) > maxResults {
			maxResults = len(results)
		}
	}
	if cap(sc.acc) < maxResults {
		sc.acc = make([]float64, maxResults)
	} else {
		sc.acc = sc.acc[:maxResults]
	}
}

// UtilityScorer evaluates Definition 2 one candidate at a time — the
// streaming form of ComputeUtilities the fused execution plan uses to
// score candidates as the retrieval scan materializes them, instead of in
// a separate pass over a completed candidate list. The per-specialization
// inverted indexes are built once at construction; ScoreInto then runs
// exactly the inner loop of the batch path, so a matrix assembled row by
// row through a scorer is bit-identical to ComputeUtilities output.
//
// A scorer borrows pooled scratch; Close returns it. The scorer reads only
// p.Specs (which must not change while it is alive) — candidates may be
// appended to p.Candidates between ScoreInto calls, which is precisely how
// the fused operator streams them in.
type UtilityScorer struct {
	p  *Problem
	sc *utilScratch
}

// NewUtilityScorer prepares a streaming scorer for the problem's
// specializations. The problem must be interned first (EnsureInterned is
// called here; problems built by the engine pipeline carry Lex and this is
// a no-op).
func NewUtilityScorer(p *Problem) *UtilityScorer {
	p.EnsureInterned()
	sc := utilScratchPool.Get().(*utilScratch)
	sc.prepare(p)
	return &UtilityScorer{p: p, sc: sc}
}

// ScoreInto fills row (length |S_q|) with the thresholded utilities
// Ũ(d|R_q′_j) of one candidate and returns its overall score (Equation
// (9)). d.IVec must be interned under the same lexicon as the
// specialization results.
func (us *UtilityScorer) ScoreInto(d *Doc, row []float64) float64 {
	p, sc := us.p, us.sc
	cids := d.IVec.IDs
	cw := d.IVec.Weights
	dn := d.IVec.Norm()
	for j := range p.Specs {
		spec := &p.Specs[j]
		if len(spec.Results) == 0 || sc.norm[j] == 0 {
			row[j] = 0
			continue
		}
		si := &sc.specs[j]
		acc := sc.acc[:len(spec.Results)]
		for r := range acc {
			acc[r] = 0
		}
		// One merge of the candidate's terms against the spec index
		// scores the candidate against every result of R_q′ at once.
		ci, ti := 0, 0
		for ci < len(cids) && ti < len(si.termIDs) {
			switch {
			case cids[ci] == si.termIDs[ti]:
				w := cw[ci]
				for pi := si.starts[ti]; pi < si.starts[ti+1]; pi++ {
					acc[si.postRes[pi]] += w * si.postW[pi]
				}
				ci++
				ti++
			case cids[ci] < si.termIDs[ti]:
				ci++
			default:
				ti++
			}
		}
		sum := 0.0
		for r := range spec.Results {
			dr := &spec.Results[r]
			var sim float64
			if dr.ID == d.ID {
				sim = 1 // δ(d,d) = 0
			} else if dn != 0 && dr.IVec.Norm() != 0 {
				// Same operation order as textsim cosine: merged dot,
				// then one division by the norm product, then clamp.
				c := acc[r] / (dn * dr.IVec.Norm())
				if c > 1 {
					c = 1
				}
				if c < -1 {
					c = -1
				}
				sim = c
			}
			if sim <= 0 {
				continue
			}
			rank := dr.Rank
			if rank <= 0 {
				rank = r + 1
			}
			sum += sim / float64(rank)
		}
		util := sum / sc.norm[j]
		if util < p.Threshold {
			util = 0
		}
		row[j] = util
	}
	return overallScore(p, row, d.Rel)
}

// Close returns the scorer's scratch to the pool. The scorer must not be
// used afterwards.
func (us *UtilityScorer) Close() {
	if us.sc != nil {
		utilScratchPool.Put(us.sc)
		us.sc = nil
	}
}

func computeUtilitiesInto(p *Problem, u *Utilities) {
	p.EnsureInterned()
	n := len(p.Candidates)
	s := len(p.Specs)

	u.flat = resizeFloats(u.flat, n*s)
	u.U = resizeRows(u.U, n)
	u.Overall = resizeFloats(u.Overall, n)

	us := NewUtilityScorer(p)
	defer us.Close()

	for i := range p.Candidates {
		row := u.flat[i*s : (i+1)*s : (i+1)*s]
		u.U[i] = row
		u.Overall[i] = us.ScoreInto(&p.Candidates[i], row)
	}
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeRows(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		return make([][]float64, n)
	}
	return s[:n]
}

// overallScore evaluates Equation (9) for one document given its utility
// row: Ũ(d|q) = (1−λ)·|S_q|·P(d|q) + λ·Σ_j P(q′_j|q)·Ũ(d|R_q′_j).
func overallScore(p *Problem, row []float64, rel float64) float64 {
	sum := 0.0
	for j := range p.Specs {
		sum += p.Specs[j].Prob * row[j]
	}
	return (1-p.Lambda)*float64(len(p.Specs))*rel + p.Lambda*sum
}

// UtilityOf returns Ũ(candidate i | specialization j), for callers probing
// the matrix (tests, the coverage-constraint checker).
func (u *Utilities) UtilityOf(i, j int) float64 { return u.U[i][j] }

// WithThreshold derives a new Utilities with cutoff c applied to this
// matrix and the overall scores recomputed for p. It lets the Table 3
// harness sweep the threshold without re-running the O(n·|S_q|·|R_q′|)
// cosine computation: u must have been computed with threshold 0 (raw
// utilities) on the same problem.
func (u *Utilities) WithThreshold(p *Problem, c float64) *Utilities {
	n := len(u.U)
	s := 0
	if n > 0 {
		s = len(u.U[0])
	}
	out := &Utilities{
		U:       make([][]float64, n),
		Overall: make([]float64, n),
	}
	flat := make([]float64, n*s)
	for i := 0; i < n; i++ {
		row := flat[i*s : (i+1)*s : (i+1)*s]
		for j := 0; j < s; j++ {
			v := u.U[i][j]
			if v < c {
				v = 0
			}
			row[j] = v
		}
		out.U[i] = row
		out.Overall[i] = overallScore(p, row, p.Candidates[i].Rel)
	}
	return out
}
