package core

// IASelect is the greedy approximation of QL Diversify(k) (§3.1.1), the
// query-log adaptation of Agrawal et al.'s Diversify(k). The objective of
// Equation (4),
//
//	P(S|q) = Σ_{q′∈S_q} P(q′|q) · (1 − Π_{d∈S} (1 − Ũ(d|R_q′))),
//
// is submodular, so the greedy algorithm that repeatedly inserts the
// document with the largest marginal gain achieves a (1−1/e)
// approximation (Nemhauser et al.). Each of the k insertions rescans all
// remaining candidates against every specialization, giving the O(n·k)
// cost of Table 1 (with the constant |S_q| factor).
func IASelect(p *Problem, u *Utilities) []Selected {
	k := p.clampK()
	if k == 0 {
		return nil
	}
	if len(p.Specs) == 0 {
		return Baseline(p)
	}
	n := len(p.Candidates)
	s := len(p.Specs)

	// residual[j] = Π_{d∈S}(1 − Ũ(d|R_q′_j)): the probability that
	// specialization j is still unsatisfied by the current solution.
	residual := make([]float64, s)
	for j := range residual {
		residual[j] = 1
	}
	selected := make([]bool, n)
	out := make([]Selected, 0, k)

	for len(out) < k {
		best := -1
		bestGain := -1.0
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			gain := 0.0
			row := u.U[i]
			for j := 0; j < s; j++ {
				gain += p.Specs[j].Prob * residual[j] * row[j]
			}
			if gain > bestGain ||
				(gain == bestGain && best >= 0 && p.Candidates[i].Rank < p.Candidates[best].Rank) {
				bestGain = gain
				best = i
			}
		}
		if best < 0 {
			break
		}
		selected[best] = true
		row := u.U[best]
		for j := 0; j < s; j++ {
			residual[j] *= 1 - row[j]
		}
		out = append(out, Selected{Doc: p.Candidates[best], Score: bestGain})
	}
	return out
}

// ObjectiveQL evaluates Equation (4) for a given selection — used by tests
// to verify greedy improvement and by the ablation harness.
func ObjectiveQL(p *Problem, u *Utilities, sel []Selected) float64 {
	idx := indexByID(p)
	residual := make([]float64, len(p.Specs))
	for j := range residual {
		residual[j] = 1
	}
	for _, d := range sel {
		i, ok := idx[d.ID]
		if !ok {
			continue
		}
		for j := range p.Specs {
			residual[j] *= 1 - u.U[i][j]
		}
	}
	total := 0.0
	for j := range p.Specs {
		total += p.Specs[j].Prob * (1 - residual[j])
	}
	return total
}

func indexByID(p *Problem) map[string]int {
	m := make(map[string]int, len(p.Candidates))
	for i := range p.Candidates {
		m[p.Candidates[i].ID] = i
	}
	return m
}
