package core

import "sort"

// OptSelectSort is the ablation counterpart of OptSelect called out in
// DESIGN.md §5: it solves the same MaxUtility Diversify(k) problem by
// fully sorting the candidates per specialization instead of maintaining
// the bounded heaps of Algorithm 2 — O(n·|S_q|·log n) instead of
// O(n·|S_q|·log k). The output must be the same diversified set (verified
// by property test); the run-time gap between the two is the measurable
// value of the paper's heap-based design, benchmarked by
// BenchmarkAblationHeapVsSort.
func OptSelectSort(p *Problem, u *Utilities) []Selected {
	k := p.clampK()
	if k == 0 {
		return nil
	}
	if len(p.Specs) == 0 {
		return Baseline(p)
	}
	n := len(p.Candidates)

	order := make([]int, len(p.Specs))
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Specs[order[a]].Prob > p.Specs[order[b]].Prob
	})

	// Full per-specialization candidate lists, sorted by overall score —
	// the naive replacement for the bounded heaps.
	better := func(a, b int) bool {
		if u.Overall[a] != u.Overall[b] {
			return u.Overall[a] > u.Overall[b]
		}
		return p.Candidates[a].Rank < p.Candidates[b].Rank
	}
	quota := make([]int, len(p.Specs))
	perSpec := make([][]int, len(p.Specs))
	for j := range p.Specs {
		quota[j] = int(float64(k) * p.Specs[j].Prob)
		for i := 0; i < n; i++ {
			if u.U[i][j] > 0 {
				perSpec[j] = append(perSpec[j], i)
			}
		}
		list := perSpec[j]
		sort.SliceStable(list, func(x, y int) bool { return better(list[x], list[y]) })
	}

	selected := make([]bool, n)
	cover := make([]int, len(p.Specs))
	out := make([]Selected, 0, k)
	add := func(i int) {
		selected[i] = true
		for j := range p.Specs {
			if u.U[i][j] > 0 {
				cover[j]++
			}
		}
		out = append(out, Selected{Doc: p.Candidates[i], Score: u.Overall[i]})
	}

	// Phase 1 — proportional coverage, most probable specialization first.
	for _, j := range order {
		pos := 0
		for cover[j] < quota[j] && len(out) < k && pos < len(perSpec[j]) {
			i := perSpec[j][pos]
			pos++
			if !selected[i] {
				add(i)
			}
		}
	}

	// Phase 2 — fill with the globally best remaining candidates.
	if len(out) < k {
		rest := make([]int, 0, n-len(out))
		for i := 0; i < n; i++ {
			if !selected[i] {
				rest = append(rest, i)
			}
		}
		sort.SliceStable(rest, func(x, y int) bool { return better(rest[x], rest[y]) })
		for _, i := range rest {
			if len(out) >= k {
				break
			}
			add(i)
		}
	}

	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Rank < out[b].Rank
	})
	return out
}
