package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/textsim"
)

func v(tokens ...string) textsim.Vector { return textsim.FromTokens(tokens) }

// twoIntentProblem builds a small, fully hand-checkable problem:
// query "leopard" with two specializations, "mac os" (P=0.75) and "tank"
// (P=0.25). Candidates: two OS docs, two tank docs, one off-topic doc.
func twoIntentProblem(k int) *Problem {
	osVec1 := v("leopard", "mac", "os", "apple")
	osVec2 := v("mac", "os", "apple", "upgrade")
	tankVec1 := v("leopard", "tank", "army")
	tankVec2 := v("tank", "army", "military")
	offVec := v("pizza", "recipe")

	return &Problem{
		Query: "leopard",
		Candidates: []Doc{
			{ID: "os1", Rank: 1, Rel: 1.0, Vector: osVec1},
			{ID: "tank1", Rank: 2, Rel: 0.9, Vector: tankVec1},
			{ID: "os2", Rank: 3, Rel: 0.8, Vector: osVec2},
			{ID: "tank2", Rank: 4, Rel: 0.7, Vector: tankVec2},
			{ID: "off", Rank: 5, Rel: 0.6, Vector: offVec},
		},
		Specs: []Specialization{
			{
				Query: "leopard mac os x",
				Prob:  0.75,
				Results: []SpecResult{
					{ID: "s-os1", Rank: 1, Vector: osVec1},
					{ID: "s-os2", Rank: 2, Vector: osVec2},
				},
			},
			{
				Query: "leopard tank",
				Prob:  0.25,
				Results: []SpecResult{
					{ID: "s-tank1", Rank: 1, Vector: tankVec1},
					{ID: "s-tank2", Rank: 2, Vector: tankVec2},
				},
			},
		},
		K:      k,
		Lambda: 0.15,
	}
}

func TestComputeUtilitiesBasics(t *testing.T) {
	p := twoIntentProblem(4)
	u := ComputeUtilities(p)
	if len(u.U) != 5 || len(u.Overall) != 5 {
		t.Fatalf("dims = %d/%d", len(u.U), len(u.Overall))
	}
	// OS docs useful for spec 0, useless for pizza doc everywhere.
	if u.U[0][0] <= u.U[0][1] {
		t.Errorf("os1: U(spec os)=%f <= U(spec tank)=%f", u.U[0][0], u.U[0][1])
	}
	if u.U[1][1] <= u.U[1][0] {
		t.Errorf("tank1: U(spec tank)=%f <= U(spec os)=%f", u.U[1][1], u.U[1][0])
	}
	for j := 0; j < 2; j++ {
		if u.U[4][j] != 0 {
			t.Errorf("off-topic doc has utility %f for spec %d", u.U[4][j], j)
		}
	}
	// Utilities normalized to [0,1].
	for i := range u.U {
		for j := range u.U[i] {
			if u.U[i][j] < 0 || u.U[i][j] > 1+1e-9 {
				t.Errorf("U[%d][%d] = %f out of range", i, j, u.U[i][j])
			}
		}
	}
}

func TestComputeUtilitiesIdenticalDocIsPerfect(t *testing.T) {
	// A candidate that IS the top result of a one-element R_q' has
	// Ũ = (1/1)/H_1 = 1 regardless of vectors.
	p := &Problem{
		Candidates: []Doc{{ID: "same", Rank: 1, Rel: 1}},
		Specs: []Specialization{{
			Query: "q'", Prob: 1,
			Results: []SpecResult{{ID: "same", Rank: 1}},
		}},
		K: 1,
	}
	u := ComputeUtilities(p)
	if math.Abs(u.U[0][0]-1) > 1e-12 {
		t.Errorf("self utility = %f, want 1", u.U[0][0])
	}
}

func TestComputeUtilitiesThreshold(t *testing.T) {
	p := twoIntentProblem(4)
	u0 := ComputeUtilities(p)
	// Pick a threshold above the cross-intent utility but below same-intent.
	cross := u0.U[0][1] // os1 against tank spec
	same := u0.U[0][0]
	if cross >= same {
		t.Fatalf("test premise broken: cross %f >= same %f", cross, same)
	}
	p.Threshold = (cross + same) / 2
	u := ComputeUtilities(p)
	if u.U[0][1] != 0 {
		t.Errorf("cross-intent utility %f not zeroed by threshold", u.U[0][1])
	}
	if u.U[0][0] == 0 {
		t.Error("same-intent utility wrongly zeroed")
	}
}

func TestComputeUtilitiesEmptySpecResults(t *testing.T) {
	p := &Problem{
		Candidates: []Doc{{ID: "d", Rank: 1, Rel: 1, Vector: v("x")}},
		Specs:      []Specialization{{Query: "q'", Prob: 1}},
		K:          1,
	}
	u := ComputeUtilities(p)
	if u.U[0][0] != 0 {
		t.Errorf("utility against empty R_q' = %f", u.U[0][0])
	}
}

func TestOverallScoreEquation9(t *testing.T) {
	p := twoIntentProblem(4)
	u := ComputeUtilities(p)
	// Recompute Eq. 9 by hand for candidate 0.
	want := (1-p.Lambda)*2*p.Candidates[0].Rel +
		p.Lambda*(p.Specs[0].Prob*u.U[0][0]+p.Specs[1].Prob*u.U[0][1])
	if math.Abs(u.Overall[0]-want) > 1e-12 {
		t.Errorf("Overall[0] = %f, want %f", u.Overall[0], want)
	}
}

func TestBaselineOrder(t *testing.T) {
	p := twoIntentProblem(3)
	sel := Baseline(p)
	if len(sel) != 3 {
		t.Fatalf("len = %d", len(sel))
	}
	want := []string{"os1", "tank1", "os2"}
	for i, id := range want {
		if sel[i].ID != id {
			t.Errorf("baseline[%d] = %s, want %s", i, sel[i].ID, id)
		}
	}
}

func TestOptSelectCoversBothIntents(t *testing.T) {
	p := twoIntentProblem(4)
	sel := OptSelect(p, ComputeUtilities(p))
	if len(sel) != 4 {
		t.Fatalf("len = %d, want 4", len(sel))
	}
	ids := map[string]bool{}
	for _, s := range sel {
		ids[s.ID] = true
	}
	if !ids["tank1"] && !ids["tank2"] {
		t.Errorf("tank intent uncovered: %v", IDs(sel))
	}
	if !ids["os1"] && !ids["os2"] {
		t.Errorf("os intent uncovered: %v", IDs(sel))
	}
	if ids["off"] && len(sel) == 4 {
		// all four intent docs beat the off-topic one
		t.Errorf("off-topic doc selected over intent docs: %v", IDs(sel))
	}
}

func TestOptSelectCoverageConstraint(t *testing.T) {
	// With k=4, P(os)=0.75 → quota 3, P(tank)=0.25 → quota 1.
	p := twoIntentProblem(4)
	u := ComputeUtilities(p)
	sel := OptSelect(p, u)
	idx := indexByID(p)
	for j, spec := range p.Specs {
		quota := int(float64(p.clampK()) * spec.Prob)
		// Count available candidates with positive utility.
		avail := 0
		for i := range p.Candidates {
			if u.U[i][j] > 0 {
				avail++
			}
		}
		if avail < quota {
			quota = avail
		}
		got := 0
		for _, s := range sel {
			if u.U[idx[s.ID]][j] > 0 {
				got++
			}
		}
		if got < quota {
			t.Errorf("spec %d (%s): coverage %d < quota %d", j, spec.Query, got, quota)
		}
	}
}

func TestOptSelectOrderedByOverallScore(t *testing.T) {
	p := twoIntentProblem(5)
	sel := OptSelect(p, ComputeUtilities(p))
	for i := 1; i < len(sel); i++ {
		if sel[i].Score > sel[i-1].Score+1e-12 {
			t.Errorf("selection not ordered by score at %d: %f > %f", i, sel[i].Score, sel[i-1].Score)
		}
	}
}

func TestXQuADFirstPickMixesRelevanceAndDiversity(t *testing.T) {
	p := twoIntentProblem(3)
	u := ComputeUtilities(p)
	sel := XQuAD(p, u)
	if len(sel) != 3 {
		t.Fatalf("len = %d", len(sel))
	}
	// os1 has highest relevance and highest utility for the dominant
	// specialization: it must be picked first.
	if sel[0].ID != "os1" {
		t.Errorf("first pick = %s, want os1", sel[0].ID)
	}
	// Once os intent is covered, a tank doc must appear by position 3.
	seen := map[string]bool{}
	for _, s := range sel {
		seen[s.ID] = true
	}
	if !seen["tank1"] && !seen["tank2"] {
		t.Errorf("xQuAD never covered tank intent: %v", IDs(sel))
	}
}

func TestXQuADScoresNonIncreasing(t *testing.T) {
	p := twoIntentProblem(5)
	sel := XQuAD(p, ComputeUtilities(p))
	for i := 1; i < len(sel); i++ {
		if sel[i].Score > sel[i-1].Score+1e-12 {
			t.Errorf("greedy score increased at %d", i)
		}
	}
}

func TestIASelectGreedyImprovesObjective(t *testing.T) {
	p := twoIntentProblem(4)
	u := ComputeUtilities(p)
	sel := IASelect(p, u)
	if len(sel) != 4 {
		t.Fatalf("len = %d", len(sel))
	}
	// Objective must increase monotonically with each greedy insertion.
	prev := 0.0
	for i := 1; i <= len(sel); i++ {
		obj := ObjectiveQL(p, u, sel[:i])
		if obj < prev-1e-12 {
			t.Errorf("objective decreased at %d: %f < %f", i, obj, prev)
		}
		prev = obj
	}
	// And the greedy set must beat the redundant all-OS set of equal size.
	redundant := []Selected{
		{Doc: p.Candidates[0]}, {Doc: p.Candidates[2]},
	}
	if ObjectiveQL(p, u, sel[:2]) < ObjectiveQL(p, u, redundant)-1e-12 {
		t.Error("greedy 2-set worse than redundant 2-set")
	}
}

func TestIASelectIgnoresRelevance(t *testing.T) {
	// IASelect optimizes pure coverage: with one dominant spec it can pick
	// a lower-ranked but more useful doc first. Construct: doc B has lower
	// Rel but higher utility for the only... use two specs to stay valid.
	p := twoIntentProblem(1)
	u := ComputeUtilities(p)
	sel := IASelect(p, u)
	if len(sel) != 1 {
		t.Fatalf("len = %d", len(sel))
	}
	// Must be an OS doc (dominant spec), regardless of Rel ordering.
	if sel[0].ID != "os1" && sel[0].ID != "os2" {
		t.Errorf("first pick = %s, want an os doc", sel[0].ID)
	}
}

func TestMMRPicksMostRelevantFirstThenDiversifies(t *testing.T) {
	p := twoIntentProblem(2)
	p.Lambda = 0.5
	sel := MMR(p)
	if len(sel) != 2 {
		t.Fatalf("len = %d", len(sel))
	}
	if sel[0].ID != "os1" {
		t.Errorf("MMR first pick = %s, want os1 (highest Rel)", sel[0].ID)
	}
	// Second pick should avoid the similar os2 in favour of a tank doc.
	if sel[1].ID == "os2" {
		t.Errorf("MMR picked redundant os2 second: %v", IDs(sel))
	}
}

func TestAlgorithmsDegenerateInputs(t *testing.T) {
	p := twoIntentProblem(0)
	u := ComputeUtilities(p)
	if len(OptSelect(p, u)) != 0 || len(XQuAD(p, u)) != 0 || len(IASelect(p, u)) != 0 || len(MMR(p)) != 0 {
		t.Error("k=0 selected documents")
	}
	p.K = -3
	if len(OptSelect(p, u)) != 0 {
		t.Error("negative k selected documents")
	}
	// k beyond n clamps.
	p.K = 100
	if got := len(OptSelect(p, ComputeUtilities(p))); got != 5 {
		t.Errorf("k>n selected %d, want 5", got)
	}
	// No specializations: all query-log methods fall back to baseline.
	p2 := twoIntentProblem(3)
	p2.Specs = nil
	u2 := ComputeUtilities(p2)
	base := IDs(Baseline(p2))
	for name, sel := range map[string][]Selected{
		"optselect": OptSelect(p2, u2),
		"xquad":     XQuAD(p2, u2),
		"iaselect":  IASelect(p2, u2),
	} {
		got := IDs(sel)
		if fmt.Sprint(got) != fmt.Sprint(base) {
			t.Errorf("%s without specs = %v, want baseline %v", name, got, base)
		}
	}
}

func TestDiversifyDispatch(t *testing.T) {
	p := twoIntentProblem(3)
	for _, alg := range Algorithms {
		sel := Diversify(alg, p)
		if len(sel) != 3 {
			t.Errorf("%s returned %d docs", alg, len(sel))
		}
		seen := map[string]bool{}
		for _, s := range sel {
			if seen[s.ID] {
				t.Errorf("%s returned duplicate %s", alg, s.ID)
			}
			seen[s.ID] = true
		}
	}
	if got := Diversify(Algorithm("bogus"), p); len(got) != 3 {
		t.Errorf("unknown algorithm did not fall back to baseline")
	}
}

// randomProblem generates a random but well-formed problem for property
// tests: nSpecs specializations with Zipf-ish probabilities, candidates
// with vectors drawn from per-spec vocabularies so utilities are
// meaningful.
func randomProblem(rng *rand.Rand, n, nSpecs, k int) *Problem {
	specVocab := make([][]string, nSpecs)
	for j := range specVocab {
		base := []string{fmt.Sprintf("spec%d", j), fmt.Sprintf("topic%d", j), "shared"}
		specVocab[j] = base
	}
	probs := make([]float64, nSpecs)
	total := 0.0
	for j := range probs {
		probs[j] = 1 / float64(j+1)
		total += probs[j]
	}
	specs := make([]Specialization, nSpecs)
	for j := range specs {
		results := make([]SpecResult, rng.Intn(3)+1)
		for r := range results {
			results[r] = SpecResult{
				ID:     fmt.Sprintf("spec%d-res%d", j, r),
				Rank:   r + 1,
				Vector: textsim.FromTokens(specVocab[j]),
			}
		}
		specs[j] = Specialization{
			Query:   fmt.Sprintf("query spec %d", j),
			Prob:    probs[j] / total,
			Results: results,
		}
	}
	cands := make([]Doc, n)
	for i := range cands {
		j := rng.Intn(nSpecs + 1)
		var vec textsim.Vector
		if j < nSpecs {
			toks := append([]string{}, specVocab[j]...)
			if rng.Intn(2) == 0 {
				toks = append(toks, "extra", fmt.Sprintf("w%d", rng.Intn(5)))
			}
			vec = textsim.FromTokens(toks)
		} else {
			vec = textsim.FromTokens([]string{fmt.Sprintf("noise%d", i), "junk"})
		}
		cands[i] = Doc{
			ID:     fmt.Sprintf("d%03d", i),
			Rank:   i + 1,
			Rel:    1 - float64(i)/float64(n+1),
			Vector: vec,
		}
	}
	return &Problem{
		Query:      "ambiguous",
		Candidates: cands,
		Specs:      specs,
		K:          k,
		Lambda:     0.15,
	}
}

// Property: on random problems every algorithm returns exactly
// min(k, n) distinct documents drawn from the candidate set.
func TestAlgorithmsWellFormedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(40) + 1
		nSpecs := rng.Intn(5) + 1
		k := rng.Intn(n + 5)
		p := randomProblem(rng, n, nSpecs, k)
		u := ComputeUtilities(p)
		wantLen := k
		if n < k {
			wantLen = n
		}
		for name, sel := range map[string][]Selected{
			"optselect": OptSelect(p, u),
			"xquad":     XQuAD(p, u),
			"iaselect":  IASelect(p, u),
			"mmr":       MMR(p),
			"baseline":  Baseline(p),
		} {
			if len(sel) != wantLen {
				t.Fatalf("trial %d: %s returned %d, want %d", trial, name, len(sel), wantLen)
			}
			seen := map[string]bool{}
			for _, s := range sel {
				if seen[s.ID] {
					t.Fatalf("trial %d: %s duplicated %s", trial, name, s.ID)
				}
				seen[s.ID] = true
			}
		}
	}
}

// Property: OptSelect satisfies the MaxUtility coverage constraint
// |S ⋈ q′| ≥ min(⌊k·P(q′|q)⌋, candidates useful for q′) on random inputs.
func TestOptSelectCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60) + 5
		nSpecs := rng.Intn(6) + 2
		k := rng.Intn(n) + 1
		p := randomProblem(rng, n, nSpecs, k)
		u := ComputeUtilities(p)
		sel := OptSelect(p, u)
		idx := indexByID(p)
		for j, spec := range p.Specs {
			quota := int(float64(min(k, n)) * spec.Prob)
			avail := 0
			for i := range p.Candidates {
				if u.U[i][j] > 0 {
					avail++
				}
			}
			if avail < quota {
				quota = avail
			}
			got := 0
			for _, s := range sel {
				if u.U[idx[s.ID]][j] > 0 {
					got++
				}
			}
			if got < quota {
				t.Fatalf("trial %d: spec %d coverage %d < quota %d (P=%f k=%d n=%d)",
					trial, j, got, quota, spec.Prob, k, n)
			}
		}
	}
}

// Property: OptSelect maximizes Σ Ũ(d|q) among coverage-respecting sets —
// verify at least that it never falls below the plain top-k by overall
// score *when that top-k already satisfies coverage* (in which case the
// two must have equal objective value).
func TestOptSelectObjectiveOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) + 5
		nSpecs := rng.Intn(4) + 2
		k := rng.Intn(n) + 1
		p := randomProblem(rng, n, nSpecs, k)
		u := ComputeUtilities(p)
		sel := OptSelect(p, u)

		objSel := 0.0
		for _, s := range sel {
			objSel += s.Score
		}
		// Unconstrained optimum: top-k by Overall.
		overall := append([]float64{}, u.Overall...)
		sortDesc(overall)
		objTop := 0.0
		for i := 0; i < min(k, n); i++ {
			objTop += overall[i]
		}
		if objSel > objTop+1e-9 {
			t.Fatalf("trial %d: objective %f exceeds unconstrained optimum %f", trial, objSel, objTop)
		}
		// The coverage phase can cost utility, but never more than the
		// quota-forced swaps allow; sanity bound: within nSpecs·max gap...
		// here we only assert the sane direction above plus non-negativity.
		if objSel < 0 {
			t.Fatalf("negative objective %f", objSel)
		}
	}
}

func sortDesc(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// When every candidate is useful for some specialization and coverage is
// free (quotas trivially met by top-k), OptSelect must return exactly the
// top-k by overall score.
func TestOptSelectEqualsTopKWhenCoverageFree(t *testing.T) {
	p := twoIntentProblem(2)
	// Make quotas 0 by shrinking k·P below 1: k=2, P=0.75 → quota 1;
	// set equal probabilities so quotas are 1 and 1 — both met by the two
	// best overall docs from different intents... simpler: force quota 0
	// with k=1.
	p.K = 1
	u := ComputeUtilities(p)
	sel := OptSelect(p, u)
	bestIdx := 0
	for i := range u.Overall {
		if u.Overall[i] > u.Overall[bestIdx] {
			bestIdx = i
		}
	}
	if sel[0].ID != p.Candidates[bestIdx].ID {
		t.Errorf("k=1 pick = %s, want argmax overall %s", sel[0].ID, p.Candidates[bestIdx].ID)
	}
}

func BenchmarkComputeUtilities(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 1000, 8, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeUtilities(p)
	}
}

func TestWithThresholdMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 30, 3, 10)
		raw := ComputeUtilities(p) // p.Threshold == 0
		for _, c := range []float64{0, 0.05, 0.2, 0.5, 0.75} {
			pc := *p
			pc.Threshold = c
			want := ComputeUtilities(&pc)
			got := raw.WithThreshold(p, c)
			for i := range want.U {
				if math.Abs(want.Overall[i]-got.Overall[i]) > 1e-12 {
					t.Fatalf("c=%f overall[%d]: %f vs %f", c, i, got.Overall[i], want.Overall[i])
				}
				for j := range want.U[i] {
					if math.Abs(want.U[i][j]-got.U[i][j]) > 1e-12 {
						t.Fatalf("c=%f U[%d][%d]: %f vs %f", c, i, j, got.U[i][j], want.U[i][j])
					}
				}
			}
		}
	}
}

// Ablation: the full-sort variant must satisfy the same coverage
// constraint and achieve at least the heap version's objective (it
// considers every candidate, so it can only do better on the rare inputs
// where bounded-heap eviction hides a universally useful document).
func TestOptSelectSortEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(60) + 5
		nSpecs := rng.Intn(5) + 2
		k := rng.Intn(n) + 1
		p := randomProblem(rng, n, nSpecs, k)
		u := ComputeUtilities(p)
		heapSel := OptSelect(p, u)
		sortSel := OptSelectSort(p, u)
		if len(heapSel) != len(sortSel) {
			t.Fatalf("trial %d: sizes differ %d vs %d", trial, len(heapSel), len(sortSel))
		}
		objHeap, objSort := 0.0, 0.0
		for i := range heapSel {
			objHeap += heapSel[i].Score
			objSort += sortSel[i].Score
		}
		if objSort < objHeap-1e-9 {
			t.Fatalf("trial %d: sort objective %f below heap %f", trial, objSort, objHeap)
		}
		if objHeap < objSort*0.95 {
			t.Fatalf("trial %d: heap objective %f far below sort %f", trial, objHeap, objSort)
		}
		// Both satisfy the coverage constraint.
		idx := indexByID(p)
		for j, spec := range p.Specs {
			quota := int(float64(min(k, n)) * spec.Prob)
			avail := 0
			for i := range p.Candidates {
				if u.U[i][j] > 0 {
					avail++
				}
			}
			if avail < quota {
				quota = avail
			}
			for name, sel := range map[string][]Selected{"heap": heapSel, "sort": sortSel} {
				got := 0
				for _, s := range sel {
					if u.U[idx[s.ID]][j] > 0 {
						got++
					}
				}
				if got < quota {
					t.Fatalf("trial %d: %s coverage %d < quota %d for spec %d", trial, name, got, quota, j)
				}
			}
		}
	}
}

func BenchmarkAblationHeapVsSort(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	p := randomProblem(rng, 20000, 8, 100)
	u := ComputeUtilities(p)
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			OptSelect(p, u)
		}
	})
	b.Run("sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			OptSelectSort(p, u)
		}
	})
}

// λ = 1 removes the relevance term from xQuAD: the first pick must be the
// candidate with the highest probability-weighted utility, regardless of
// its retrieval rank.
func TestXQuADLambdaExtremes(t *testing.T) {
	p := twoIntentProblem(3)
	u := ComputeUtilities(p)

	p.Lambda = 0 // pure relevance: greedy degenerates to baseline order
	sel := XQuAD(p, u)
	base := Baseline(p)
	for i := range sel {
		if sel[i].ID != base[i].ID {
			t.Fatalf("lambda=0: pick %d = %s, want baseline %s", i, sel[i].ID, base[i].ID)
		}
	}

	p.Lambda = 1 // pure diversity
	sel = XQuAD(p, u)
	bestUtil, bestIdx := -1.0, -1
	for i := range p.Candidates {
		w := 0.0
		for j := range p.Specs {
			w += p.Specs[j].Prob * u.U[i][j]
		}
		if w > bestUtil {
			bestUtil, bestIdx = w, i
		}
	}
	if sel[0].ID != p.Candidates[bestIdx].ID {
		t.Errorf("lambda=1: first pick %s, want max-utility %s", sel[0].ID, p.Candidates[bestIdx].ID)
	}
}

// MMR at high diversity weight must not pick two near-duplicate documents
// consecutively when a dissimilar alternative exists.
func TestMMRAvoidsNearDuplicates(t *testing.T) {
	dup := v("same", "words", "vector")
	p := &Problem{
		Candidates: []Doc{
			{ID: "a", Rank: 1, Rel: 1.00, Vector: dup},
			{ID: "a-dup", Rank: 2, Rel: 0.99, Vector: dup},
			{ID: "other", Rank: 3, Rel: 0.50, Vector: v("different", "topic")},
		},
		K:      2,
		Lambda: 0.5,
	}
	sel := MMR(p)
	if sel[0].ID != "a" || sel[1].ID != "other" {
		t.Errorf("MMR = %v, want [a other]", IDs(sel))
	}
}

// Property: MMR output size and uniqueness on arbitrary problems, and the
// first pick is always the most relevant candidate.
func TestMMRFirstPickProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(30) + 1
		p := randomProblem(rng, n, 2, rng.Intn(n)+1)
		p.Lambda = 0.3 + 0.6*rng.Float64()
		sel := MMR(p)
		if len(sel) == 0 {
			t.Fatal("empty MMR selection")
		}
		bestRel, bestIdx := -1.0, 0
		for i := range p.Candidates {
			if p.Candidates[i].Rel > bestRel {
				bestRel, bestIdx = p.Candidates[i].Rel, i
			}
		}
		if sel[0].ID != p.Candidates[bestIdx].ID {
			t.Fatalf("trial %d: first pick %s not max-Rel %s", trial, sel[0].ID, p.Candidates[bestIdx].ID)
		}
	}
}

// Specialization probabilities that do not sum to one (e.g. truncated
// S_q without renormalization) must not break the coverage quotas: quotas
// are floor(k*P) and the fill phase absorbs the slack.
func TestOptSelectUnnormalizedProbs(t *testing.T) {
	p := twoIntentProblem(4)
	p.Specs[0].Prob = 0.4
	p.Specs[1].Prob = 0.1 // sums to 0.5
	sel := OptSelect(p, ComputeUtilities(p))
	if len(sel) != 4 {
		t.Fatalf("len = %d, want 4", len(sel))
	}
	seen := map[string]bool{}
	for _, s := range sel {
		if seen[s.ID] {
			t.Fatalf("duplicate %s", s.ID)
		}
		seen[s.ID] = true
	}
}
