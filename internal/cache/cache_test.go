package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestGetPutBasic(t *testing.T) {
	c := New[int](10, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	c.Put("a", 3) // overwrite
	if v, _ := c.Get("a"); v != 3 {
		t.Fatalf("after overwrite Get(a) = %d, want 3", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	// Single shard so the global LRU order is exact.
	c := New[int](3, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a")    // a is now MRU; b is LRU
	c.Put("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should still be cached", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCapacityBoundHolds(t *testing.T) {
	const capacity, shards = 64, 8
	c := New[int](capacity, shards)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprintf("k%04d", i), i)
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("Len = %d, exceeds capacity %d", n, capacity)
	}
	st := c.Stats()
	if st.Entries != c.Len() {
		t.Errorf("Stats.Entries = %d, Len = %d", st.Entries, c.Len())
	}
	if st.Evictions == 0 {
		t.Error("expected evictions after 10x-capacity inserts")
	}
}

func TestCapacityNeverExceededWhenNotDivisible(t *testing.T) {
	for _, tc := range []struct{ capacity, shards int }{
		{10, 4}, // 10/4 → 2 per shard over 4 shards
		{3, 16}, // more shards than capacity: stripes collapse to ≤3
		{1000, 16},
	} {
		c := New[int](tc.capacity, tc.shards)
		for i := 0; i < 20*tc.capacity; i++ {
			c.Put(fmt.Sprintf("k%05d", i), i)
		}
		if n := c.Len(); n > tc.capacity {
			t.Errorf("New(%d, %d): Len = %d exceeds capacity", tc.capacity, tc.shards, n)
		}
		if st := c.Stats(); st.Capacity > tc.capacity {
			t.Errorf("New(%d, %d): Stats.Capacity = %d exceeds requested", tc.capacity, tc.shards, st.Capacity)
		}
	}
}

func TestStatsHitRate(t *testing.T) {
	c := New[string](8, 2)
	c.Put("q", "v")
	c.Get("q")
	c.Get("q")
	c.Get("absent")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if got, want := st.HitRate(), 2.0/3.0; got != want {
		t.Errorf("HitRate = %f, want %f", got, want)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("zero-activity HitRate should be 0")
	}
}

func TestDegenerateSizes(t *testing.T) {
	c := New[int](0, 0) // clamps to 1 entry, 1 shard
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("most recent key should survive in a 1-entry cache")
	}
}

// TestConcurrentAccess hammers the cache from many goroutines with a
// Zipf-ish skewed key set; run with -race. Correctness check: every hit
// must return the value written for that key.
func TestConcurrentAccess(t *testing.T) {
	c := New[int](128, 8)
	const workers = 16
	const opsPerWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWorker; i++ {
				// Skewed key space: low ids are hot, tail forces eviction.
				id := rng.Intn(1 + rng.Intn(512))
				key := fmt.Sprintf("k%04d", id)
				if rng.Intn(2) == 0 {
					c.Put(key, id)
				} else if v, ok := c.Get(key); ok && v != id {
					t.Errorf("Get(%s) = %d, want %d", key, v, id)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Hits == 0 {
		t.Error("expected some hits on a skewed workload")
	}
}
