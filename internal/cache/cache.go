// Package cache provides the sharded, mutex-striped LRU cache behind the
// serving layer. The paper's efficiency argument (§4.1) is that the
// per-query diversification knowledge — the specializations S_q mined by
// Algorithm 1 and their R_q′ surrogate result lists — is small enough to
// precompute and keep in memory for the ambiguous head of the query
// stream. This cache is the dynamic version of that store: entries are
// admitted on first sight and evicted least-recently-used, so a Zipf-
// skewed query mix (the shape of real logs, Appendix B) converges to
// exactly the hot set the paper proposes to materialize.
//
// The cache is striped across shards, each guarded by its own mutex, so
// concurrent readers on different shards never contend; within a shard a
// hand-rolled doubly-linked list gives O(1) lookup, insert and eviction.
package cache

import (
	"sync"
)

// Cache is a sharded LRU mapping string keys (normalized queries) to
// values of type V. All methods are safe for concurrent use. The zero
// value is not usable; construct with New.
type Cache[V any] struct {
	shards []*shard[V]
	mask   uint64
}

// Stats is an aggregated snapshot of cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// New builds a cache holding at most capacity entries, striped over the
// given number of shards (rounded up to a power of two, then down so no
// shard is left with zero capacity). capacity < 1 is treated as 1;
// shards < 1 as 1. Capacity is enforced per shard (⌊capacity/shards⌋
// each), the standard striped-LRU approximation: a pathological key skew
// can evict slightly early, never late, and the total never exceeds
// capacity.
func New[V any](capacity, shards int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for n > capacity {
		n >>= 1
	}
	perShard := capacity / n
	c := &Cache[V]{
		shards: make([]*shard[V], n),
		mask:   uint64(n - 1),
	}
	for i := range c.shards {
		c.shards[i] = newShard[V](perShard)
	}
	return c
}

// Get returns the value cached under key and whether it was present,
// promoting the entry to most-recently-used.
func (c *Cache[V]) Get(key string) (V, bool) {
	return c.shard(key).get(key)
}

// Put stores value under key (inserting or overwriting), promoting it to
// most-recently-used and evicting the shard's least-recently-used entry
// if the shard is over capacity.
func (c *Cache[V]) Put(key string, value V) {
	c.shard(key).put(key, value)
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		n += s.len()
	}
	return n
}

// Stats aggregates activity counters across all shards.
func (c *Cache[V]) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += len(s.items)
		st.Capacity += s.capacity
		s.mu.Unlock()
	}
	return st
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return c.shards[fnv1a(key)&c.mask]
}

// fnv1a is the 64-bit FNV-1a string hash, inlined to keep the hot path
// allocation-free.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// node is one entry in a shard's intrusive LRU list.
type node[V any] struct {
	key        string
	value      V
	prev, next *node[V]
}

// shard is one mutex-guarded stripe: a map for O(1) lookup and a
// sentinel-rooted doubly-linked list ordered most- to least-recently used.
type shard[V any] struct {
	mu        sync.Mutex
	capacity  int
	items     map[string]*node[V]
	root      node[V] // sentinel: root.next = MRU, root.prev = LRU
	hits      int64
	misses    int64
	evictions int64
}

func newShard[V any](capacity int) *shard[V] {
	s := &shard[V]{
		capacity: capacity,
		items:    make(map[string]*node[V], capacity+1),
	}
	s.root.next = &s.root
	s.root.prev = &s.root
	return s
}

func (s *shard[V]) get(key string) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.items[key]
	if !ok {
		s.misses++
		var zero V
		return zero, false
	}
	s.hits++
	s.moveToFront(n)
	return n.value, true
}

func (s *shard[V]) put(key string, value V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.items[key]; ok {
		n.value = value
		s.moveToFront(n)
		return
	}
	n := &node[V]{key: key, value: value}
	s.items[key] = n
	s.pushFront(n)
	if len(s.items) > s.capacity {
		lru := s.root.prev
		s.unlink(lru)
		delete(s.items, lru.key)
		s.evictions++
	}
}

func (s *shard[V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

func (s *shard[V]) pushFront(n *node[V]) {
	n.prev = &s.root
	n.next = s.root.next
	n.prev.next = n
	n.next.prev = n
}

func (s *shard[V]) unlink(n *node[V]) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

func (s *shard[V]) moveToFront(n *node[V]) {
	if s.root.next == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}
