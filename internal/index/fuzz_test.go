package index

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeedStream builds a small valid v4 stream (with a max-score table)
// for the fuzzer to mutate.
func fuzzSeedStream(tb testing.TB) []byte {
	b := NewBuilder()
	docs := [][2]string{
		{"d1", "apple fruit pie apple"},
		{"d2", "apple mac os"},
		{"d3", "tank army leopard"},
	}
	for _, d := range docs {
		if err := b.Add(d[0], strings.Fields(d[1])); err != nil {
			tb.Fatal(err)
		}
	}
	x := b.Build()
	table := x.ComputeMaxScores(func(tf, docLen float64, _ TermStats, _ CollectionStats) float64 {
		return tf / (1 + docLen)
	})
	if err := x.SetMaxScores("DPH", table); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := SegmentIndex(x, 2).WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadIndex drives both codec entry points with arbitrary bytes: any
// input may be rejected with an error, but none may panic or hang —
// truncated or corrupt streams (including mangled max-score blocks, the
// RIDX4 addition) must degrade to ErrBadFormat-wrapped errors. CI runs
// this for a short fixed budget next to the deterministic corrupt-stream
// cases in the codec tests.
func FuzzReadIndex(f *testing.F) {
	valid := fuzzSeedStream(f)
	f.Add(valid)
	// Truncations at structurally interesting depths: inside the magic,
	// the dictionary, the manifest, and the max-score block.
	for _, cut := range []int{1, 4, 7, len(valid) / 2, len(valid) - 9, len(valid) - 1} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Legacy magics with junk bodies, and a bare v4 header.
	f.Add([]byte("RIDX1\n\xff\xff\xff\xff"))
	f.Add([]byte("RIDX4\n"))
	f.Add([]byte("RIDX4\n\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if x, err := Read(bytes.NewReader(data)); err == nil {
			// Accepted streams must produce a usable index: exercise the
			// accessors the rest of the system leans on.
			for id := int32(0); id < int32(x.NumTerms()); id++ {
				_ = x.Term(id)
				_ = x.PostingsByID(id)
			}
			for _, key := range x.MaxScoreKeys() {
				if len(x.MaxScores(key)) != x.NumTerms() {
					t.Fatalf("table %q has %d entries for %d terms", key, len(x.MaxScores(key)), x.NumTerms())
				}
			}
		}
		if seg, err := ReadSegmented(bytes.NewReader(data)); err == nil {
			for i := 0; i < seg.NumShards(); i++ {
				lo, hi := seg.Shard(i).DocRange()
				if lo > hi || int(hi) > seg.Index().NumDocs() {
					t.Fatalf("shard %d range [%d,%d) out of bounds", i, lo, hi)
				}
			}
		}
	})
}
