package index

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeedStream builds a small valid v5 stream (block-compressed
// postings plus max-score and block-max tables) for the fuzzer to mutate.
func fuzzSeedStream(tb testing.TB, blockSize int) []byte {
	b := NewBuilder()
	b.SetBlockSize(blockSize)
	docs := [][2]string{
		{"d1", "apple fruit pie apple"},
		{"d2", "apple mac os"},
		{"d3", "tank army leopard"},
	}
	for _, d := range docs {
		if err := b.Add(d[0], strings.Fields(d[1])); err != nil {
			tb.Fatal(err)
		}
	}
	x := b.Build()
	score := func(tf, docLen float64, _ TermStats, _ CollectionStats) float64 {
		return tf / (1 + docLen)
	}
	if err := x.SetMaxScores("DPH", x.ComputeMaxScores(score)); err != nil {
		tb.Fatal(err)
	}
	if x.Blocked() {
		if err := x.SetBlockMaxScores("DPH", x.ComputeBlockMaxScores(score)); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := SegmentIndex(x, 2).WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedManifest builds a small valid RIDX6 manifest — two segments
// (one block-compressed with a max-score table, one flat) plus
// tombstones — for the fuzzer to mutate.
func fuzzSeedManifest(tb testing.TB) []byte {
	b := NewBuilder()
	b.SetBlockSize(-1)
	for _, d := range [][2]string{{"d4", "banana bread"}, {"d2", "apple watch"}} {
		if err := b.Add(d[0], strings.Fields(d[1])); err != nil {
			tb.Fatal(err)
		}
	}
	var base *Segmented
	if seg, err := ReadSegmented(bytes.NewReader(fuzzSeedStream(tb, 2))); err != nil {
		tb.Fatal(err)
	} else {
		base = seg
	}
	man := &Manifest{
		Epoch:      3,
		Segments:   []*Segmented{base, b.BuildSegmented(1)},
		Tombstones: []string{"d3"},
	}
	var buf bytes.Buffer
	if _, err := man.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedMapped builds a small valid RIDX7 mapped-layout file image for
// the fuzzer to mutate.
func fuzzSeedMapped(tb testing.TB, payload func(int32) string) []byte {
	seg, err := ReadSegmented(bytes.NewReader(fuzzSeedStream(tb, 2)))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := seg.WriteMapped(&buf, payload); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadIndex drives both codec entry points with arbitrary bytes: any
// input may be rejected with an error, but none may panic or hang —
// truncated or corrupt streams (including mangled RIDX5 block headers —
// hostile block counts and byte lengths — and mangled score tables) must
// degrade to ErrBadFormat-wrapped errors. CI runs this for a short fixed
// budget next to the deterministic corrupt-stream cases in the codec
// tests.
func FuzzReadIndex(f *testing.F) {
	valid := fuzzSeedStream(f, 2) // tiny blocks: boundaries everywhere
	f.Add(valid)
	f.Add(fuzzSeedStream(f, -1))  // flat transport (blockCap 0)
	f.Add(fuzzSeedStream(f, 128)) // default layout
	// Truncations at structurally interesting depths: inside the magic,
	// the block headers, the manifest, and the score tables.
	for _, cut := range []int{1, 4, 7, 9, len(valid) / 3, len(valid) / 2, len(valid) - 9, len(valid) - 1} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Legacy magics with junk bodies, and bare v4/v5 headers.
	f.Add([]byte("RIDX1\n\xff\xff\xff\xff"))
	f.Add([]byte("RIDX4\n"))
	f.Add([]byte("RIDX4\n\x00\x00\x00\x00\x00"))
	f.Add([]byte("RIDX5\n"))
	f.Add([]byte("RIDX5\n\x00\x00\x00\x00\x00\x00"))
	// Hostile v5 block shapes: huge block count, huge byte length.
	f.Add([]byte("RIDX5\n\x02\x01\x01x\x01\x01\x01\x01a\x01\x01\xff\xff\xff\xff\x0f"))
	f.Add([]byte("RIDX5\n\x02\x01\x01x\x01\x01\x01\x01a\x01\x01\x01\x01\xff\xff\xff\xff\x0f"))
	// RIDX6 manifests: a valid two-segment manifest with tombstones, the
	// legacy lift of a bare v5 stream, and hostile segment/tombstone
	// counts (huge varints where the counts go).
	// RIDX7 mapped layouts: a valid file (with and without payloads), its
	// truncations at the header / section table / block region, a bare
	// header, and hostile section offsets. Read() parses v7 through the
	// same validator as OpenMapped, so heap fuzzing covers the mapped
	// open path's structural checks too.
	v7 := fuzzSeedMapped(f, nil)
	f.Add(v7)
	f.Add(fuzzSeedMapped(f, func(d int32) string { return strings.Repeat("x", int(d)+1) }))
	for _, cut := range []int{7, 95, v7HeaderSize - 1, v7HeaderSize, v7HeaderSize + 64, len(v7) / 2, len(v7) - 1} {
		if cut > 0 && cut < len(v7) {
			f.Add(v7[:cut])
		}
	}
	f.Add([]byte(magicV7))
	f.Add(append([]byte(magicV7), make([]byte, v7HeaderSize)...)) // zeroed header
	hostile := append([]byte(nil), v7...)
	for i := 104; i < v7HeaderSize; i += 8 {
		hostile[i] = 0xff // section offsets/lengths far past EOF
	}
	f.Add(hostile)
	f.Add(fuzzSeedManifest(f))
	f.Add([]byte("RIDX6\n"))
	f.Add([]byte("RIDX6\n\x01\x00"))                                     // zero segments
	f.Add([]byte("RIDX6\n\x01\xff\xff\xff\xff\x0f"))                     // hostile segment count
	f.Add([]byte("RIDX6\n\x01\x01" + "RIDX5\n"))                         // truncated embedded segment
	f.Add(append(fuzzSeedManifest(f)[:8], 0xff, 0xff, 0xff, 0xff, 0x0f)) // mangled counts mid-header
	f.Fuzz(func(t *testing.T, data []byte) {
		if x, err := Read(bytes.NewReader(data)); err == nil {
			// Accepted streams must produce a usable index: exercise the
			// accessors the rest of the system leans on, including a full
			// iterator traversal of every (possibly block-compressed) list.
			for id := int32(0); id < int32(x.NumTerms()); id++ {
				_ = x.Term(id)
				_ = x.PostingsByID(id)
				it := x.PostingIter(id)
				n := 0
				for _, ok := it.Next(); ok; _, ok = it.Next() {
					n++
				}
				it.Release()
				if n != x.DF(id) {
					t.Fatalf("term %d: iterator yielded %d postings, DF %d", id, n, x.DF(id))
				}
			}
			for _, key := range x.MaxScoreKeys() {
				if len(x.MaxScores(key)) != x.NumTerms() {
					t.Fatalf("table %q has %d entries for %d terms", key, len(x.MaxScores(key)), x.NumTerms())
				}
			}
			for _, key := range x.BlockMaxKeys() {
				if len(x.BlockMaxScores(key)) != x.NumBlocks() {
					t.Fatalf("block table %q has %d entries for %d blocks", key, len(x.BlockMaxScores(key)), x.NumBlocks())
				}
			}
		}
		if seg, err := ReadSegmented(bytes.NewReader(data)); err == nil {
			for i := 0; i < seg.NumShards(); i++ {
				lo, hi := seg.Shard(i).DocRange()
				if lo > hi || int(hi) > seg.Index().NumDocs() {
					t.Fatalf("shard %d range [%d,%d) out of bounds", i, lo, hi)
				}
			}
		}
		if man, err := ReadManifest(bytes.NewReader(data)); err == nil {
			// An accepted manifest must uphold the invariants the engine's
			// live-state loader trusts: at least one segment, every segment
			// a usable index with an in-bounds shard partition.
			if len(man.Segments) == 0 {
				t.Fatal("accepted manifest with no segments")
			}
			for si, seg := range man.Segments {
				x := seg.Index()
				for id := int32(0); id < int32(x.NumTerms()); id++ {
					_ = x.PostingsByID(id)
				}
				for i := 0; i < seg.NumShards(); i++ {
					lo, hi := seg.Shard(i).DocRange()
					if lo > hi || int(hi) > x.NumDocs() {
						t.Fatalf("segment %d shard %d range [%d,%d) out of bounds", si, i, lo, hi)
					}
				}
			}
		}
	})
}
