package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Binary serialization of an Index. Layout (all integers unsigned varints
// unless noted):
//
//	magic  "RIDX2\n"
//	numDocs, then per doc: idLen, idBytes, docLen
//	totalTokens
//	numTerms, then per term (in term-id order):
//	    termLen, termBytes, cf, df,
//	    df postings as (docDelta, tf) with docDelta = doc - prevDoc
//	    (first delta = doc + 1 so deltas are always >= 1)
//
// The format is self-contained and versioned by the magic string.
//
// Version 2 keeps the v1 byte layout but guarantees the dictionary is
// written in lexicographic term order (the Build invariant): loaders can
// seed a sorted term lexicon straight from the stream without re-sorting.
// v1 streams — written before the invariant existed — are still read;
// their dictionaries are renumbered into sorted order on load, so a
// loaded index behaves identically regardless of the stream version.

const (
	magic   = "RIDX2\n"
	magicV1 = "RIDX1\n"
)

// ErrBadFormat reports a corrupt or foreign index stream.
var ErrBadFormat = errors.New("index: bad index format")

// WriteTo serializes the index to w.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		m := binary.PutUvarint(buf[:], v)
		return write(buf[:m])
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		return write([]byte(s))
	}

	if err := write([]byte(magic)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(x.docIDs))); err != nil {
		return n, err
	}
	for i, id := range x.docIDs {
		if err := writeString(id); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(x.docLens[i])); err != nil {
			return n, err
		}
	}
	if err := writeUvarint(uint64(x.total)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(x.termList))); err != nil {
		return n, err
	}
	for id, term := range x.termList {
		if err := writeString(term); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(x.cf[id])); err != nil {
			return n, err
		}
		plist := x.postings[id]
		if err := writeUvarint(uint64(len(plist))); err != nil {
			return n, err
		}
		prev := int32(-1)
		for _, p := range plist {
			if err := writeUvarint(uint64(p.Doc - prev)); err != nil {
				return n, err
			}
			if err := writeUvarint(uint64(p.TF)); err != nil {
				return n, err
			}
			prev = p.Doc
		}
	}
	return n, bw.Flush()
}

// Read deserializes an index written by WriteTo — current (v2) streams
// and pre-bump v1 streams alike; see the format comment above.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	version := 0
	switch string(head) {
	case magic:
		version = 2
	case magicV1:
		version = 1
	default:
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head)
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readString := func() (string, error) {
		l, err := readUvarint()
		if err != nil {
			return "", err
		}
		if l > 1<<24 {
			return "", fmt.Errorf("%w: string too long (%d)", ErrBadFormat, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	numDocs, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: numDocs: %v", ErrBadFormat, err)
	}
	if numDocs > 1<<31 {
		return nil, fmt.Errorf("%w: numDocs %d too large", ErrBadFormat, numDocs)
	}
	x := &Index{
		docIDs:  make([]string, numDocs),
		docLens: make([]int32, numDocs),
		terms:   make(map[string]int32, 1024),
	}
	for i := range x.docIDs {
		if x.docIDs[i], err = readString(); err != nil {
			return nil, fmt.Errorf("%w: docID %d: %v", ErrBadFormat, i, err)
		}
		dl, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: docLen %d: %v", ErrBadFormat, i, err)
		}
		x.docLens[i] = int32(dl)
	}
	total, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: totalTokens: %v", ErrBadFormat, err)
	}
	x.total = int64(total)
	numTerms, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: numTerms: %v", ErrBadFormat, err)
	}
	if numTerms > 1<<31 {
		return nil, fmt.Errorf("%w: numTerms %d too large", ErrBadFormat, numTerms)
	}
	x.termList = make([]string, numTerms)
	x.postings = make([][]Posting, numTerms)
	x.cf = make([]int64, numTerms)
	for id := range x.termList {
		term, err := readString()
		if err != nil {
			return nil, fmt.Errorf("%w: term %d: %v", ErrBadFormat, id, err)
		}
		x.termList[id] = term
		x.terms[term] = int32(id)
		cf, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: cf: %v", ErrBadFormat, err)
		}
		x.cf[id] = int64(cf)
		df, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: df: %v", ErrBadFormat, err)
		}
		if df > numDocs {
			return nil, fmt.Errorf("%w: df %d > numDocs %d", ErrBadFormat, df, numDocs)
		}
		plist := make([]Posting, df)
		prev := int32(-1)
		for j := range plist {
			delta, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("%w: posting delta: %v", ErrBadFormat, err)
			}
			if delta == 0 {
				return nil, fmt.Errorf("%w: zero doc delta", ErrBadFormat)
			}
			tf, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("%w: posting tf: %v", ErrBadFormat, err)
			}
			doc := prev + int32(delta)
			if doc < 0 || uint64(doc) >= numDocs {
				return nil, fmt.Errorf("%w: doc %d out of range", ErrBadFormat, doc)
			}
			plist[j] = Posting{Doc: doc, TF: int32(tf)}
			prev = doc
		}
		x.postings[id] = plist
	}
	switch version {
	case 2:
		// v2 promises a sorted dictionary; a violation means corruption.
		if !sort.StringsAreSorted(x.termList) {
			return nil, fmt.Errorf("%w: v2 dictionary not in sorted order", ErrBadFormat)
		}
	case 1:
		// Pre-bump streams carry insertion-ordered dictionaries; restore
		// the sorted-ID invariant the rest of the system relies on.
		x.termList, x.postings, x.cf = sortDictionary(x.termList, x.postings, x.cf, x.terms)
	}
	return x, nil
}
