package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary serialization of an Index. Layout (all integers unsigned varints
// unless noted):
//
//	magic  "RIDX4\n"
//	numDocs, then per doc: idLen, idBytes, docLen
//	totalTokens
//	numTerms, then per term (in term-id order):
//	    termLen, termBytes, cf, df,
//	    df postings as (docDelta, tf) with docDelta = doc - prevDoc
//	    (first delta = doc + 1 so deltas are always >= 1)
//	numShards, then per shard: shard document count (v3+)
//	numTables, then per table (in sorted key order):
//	    keyLen, keyBytes, numTerms float64s (8-byte little-endian) (v4 only)
//
// The format is self-contained and versioned by the magic string.
//
// Version 2 keeps the v1 byte layout but guarantees the dictionary is
// written in lexicographic term order (the Build invariant): loaders can
// seed a sorted term lexicon straight from the stream without re-sorting.
// v1 streams — written before the invariant existed — are still read;
// their dictionaries are renumbered into sorted order on load, so a
// loaded index behaves identically regardless of the stream version.
//
// Version 3 appends the shard manifest: the document counts of the
// contiguous segments a Segmented index was partitioned into, so a
// sharded deployment reloads with the same partitioning it was built
// with. v1/v2 streams predate segmentation and load as a single-shard
// manifest; the loaded index itself is identical across all three
// versions, and Resegment can re-partition a loaded index at any shard
// count without touching the stream.
//
// Version 4 appends the max-score block: the per-term score upper-bound
// tables MaxScore dynamic pruning consumes (one table per registered
// scoring function, see SetMaxScores), so a served index prunes from its
// first query without a rebuild pass. v1–v3 streams simply carry no
// tables; the engine recomputes the ones its model needs at load time,
// so a loaded index *serves* identically across all four versions.

const (
	magicV4 = "RIDX4\n"
	magicV3 = "RIDX3\n"
	magicV2 = "RIDX2\n"
	magicV1 = "RIDX1\n"
)

// ErrBadFormat reports a corrupt or foreign index stream.
var ErrBadFormat = errors.New("index: bad index format")

// WriteTo serializes the index to w as a single-shard v4 stream.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	return x.writeStream(w, nil)
}

// WriteTo serializes the segmented index to w, recording the shard
// partition in the stream's manifest.
func (s *Segmented) WriteTo(w io.Writer) (int64, error) {
	return s.idx.writeStream(w, s.bounds)
}

// writeStream emits the v4 stream. bounds carries the shard boundaries of
// a Segmented (len shards+1); nil means a single shard covering every
// document.
func (x *Index) writeStream(w io.Writer, bounds []int32) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		m := binary.PutUvarint(buf[:], v)
		return write(buf[:m])
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		return write([]byte(s))
	}

	if err := write([]byte(magicV4)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(x.docIDs))); err != nil {
		return n, err
	}
	for i, id := range x.docIDs {
		if err := writeString(id); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(x.docLens[i])); err != nil {
			return n, err
		}
	}
	if err := writeUvarint(uint64(x.total)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(x.termList))); err != nil {
		return n, err
	}
	for id, term := range x.termList {
		if err := writeString(term); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(x.cf[id])); err != nil {
			return n, err
		}
		plist := x.postings[id]
		if err := writeUvarint(uint64(len(plist))); err != nil {
			return n, err
		}
		prev := int32(-1)
		for _, p := range plist {
			if err := writeUvarint(uint64(p.Doc - prev)); err != nil {
				return n, err
			}
			if err := writeUvarint(uint64(p.TF)); err != nil {
				return n, err
			}
			prev = p.Doc
		}
	}
	// Shard manifest: per-shard document counts in shard order.
	if bounds == nil {
		if err := writeUvarint(1); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(len(x.docIDs))); err != nil {
			return n, err
		}
	} else {
		if err := writeUvarint(uint64(len(bounds) - 1)); err != nil {
			return n, err
		}
		for i := 1; i < len(bounds); i++ {
			if err := writeUvarint(uint64(bounds[i] - bounds[i-1])); err != nil {
				return n, err
			}
		}
	}
	// Max-score block: the per-term upper-bound tables, in sorted key
	// order so the stream is canonical.
	keys := x.MaxScoreKeys()
	if err := writeUvarint(uint64(len(keys))); err != nil {
		return n, err
	}
	var f64 [8]byte
	for _, key := range keys {
		if err := writeString(key); err != nil {
			return n, err
		}
		for _, v := range x.maxScores[key] {
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(v))
			if err := write(f64[:]); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read deserializes an index written by WriteTo — current (v4) streams
// and pre-bump v1–v3 streams alike; see the format comment above. The
// shard manifest, if any, is consumed and dropped: callers that care
// about the partition use ReadSegmented.
func Read(r io.Reader) (*Index, error) {
	x, _, err := readStream(r)
	return x, err
}

// ReadSegmented deserializes an index together with its shard manifest.
// v1/v2 streams predate the manifest and come back as a single shard.
// The max-score block of a v4 stream loads with either entry point.
func ReadSegmented(r io.Reader) (*Segmented, error) {
	x, sizes, err := readStream(r)
	if err != nil {
		return nil, err
	}
	seg, ok := segmentedFromSizes(x, sizes)
	if !ok {
		return nil, fmt.Errorf("%w: shard manifest %v does not cover %d docs",
			ErrBadFormat, sizes, x.NumDocs())
	}
	return seg, nil
}

// readStream parses any stream version, returning the index and the
// manifest's per-shard document counts ({numDocs} for v1/v2 streams).
func readStream(r io.Reader) (*Index, []int64, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicV3))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	version := 0
	switch string(head) {
	case magicV4:
		version = 4
	case magicV3:
		version = 3
	case magicV2:
		version = 2
	case magicV1:
		version = 1
	default:
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head)
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readString := func() (string, error) {
		l, err := readUvarint()
		if err != nil {
			return "", err
		}
		if l > 1<<24 {
			return "", fmt.Errorf("%w: string too long (%d)", ErrBadFormat, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	numDocs, err := readUvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: numDocs: %v", ErrBadFormat, err)
	}
	if numDocs > 1<<31 {
		return nil, nil, fmt.Errorf("%w: numDocs %d too large", ErrBadFormat, numDocs)
	}
	// Counts are untrusted until that many entries have actually been
	// parsed: grow from a capped capacity instead of pre-allocating, so a
	// corrupt count fails with a parse error, not an OOM. (Every entry is
	// at least one byte, so a truncated stream runs out of input long
	// before the slices grow pathological.)
	x := &Index{
		docIDs:  make([]string, 0, capHint(numDocs)),
		docLens: make([]int32, 0, capHint(numDocs)),
		terms:   make(map[string]int32, 1024),
	}
	for i := uint64(0); i < numDocs; i++ {
		id, err := readString()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: docID %d: %v", ErrBadFormat, i, err)
		}
		dl, err := readUvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: docLen %d: %v", ErrBadFormat, i, err)
		}
		x.docIDs = append(x.docIDs, id)
		x.docLens = append(x.docLens, int32(dl))
	}
	total, err := readUvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: totalTokens: %v", ErrBadFormat, err)
	}
	x.total = int64(total)
	numTerms, err := readUvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: numTerms: %v", ErrBadFormat, err)
	}
	if numTerms > 1<<31 {
		return nil, nil, fmt.Errorf("%w: numTerms %d too large", ErrBadFormat, numTerms)
	}
	x.termList = make([]string, 0, capHint(numTerms))
	x.postings = make([][]Posting, 0, capHint(numTerms))
	x.cf = make([]int64, 0, capHint(numTerms))
	for id := uint64(0); id < numTerms; id++ {
		term, err := readString()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: term %d: %v", ErrBadFormat, id, err)
		}
		x.termList = append(x.termList, term)
		x.terms[term] = int32(id)
		cf, err := readUvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: cf: %v", ErrBadFormat, err)
		}
		x.cf = append(x.cf, int64(cf))
		df, err := readUvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: df: %v", ErrBadFormat, err)
		}
		if df > numDocs {
			return nil, nil, fmt.Errorf("%w: df %d > numDocs %d", ErrBadFormat, df, numDocs)
		}
		plist := make([]Posting, 0, capHint(df))
		prev := int32(-1)
		for j := uint64(0); j < df; j++ {
			delta, err := readUvarint()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: posting delta: %v", ErrBadFormat, err)
			}
			if delta == 0 {
				return nil, nil, fmt.Errorf("%w: zero doc delta", ErrBadFormat)
			}
			tf, err := readUvarint()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: posting tf: %v", ErrBadFormat, err)
			}
			doc := prev + int32(delta)
			if doc < 0 || uint64(doc) >= numDocs {
				return nil, nil, fmt.Errorf("%w: doc %d out of range", ErrBadFormat, doc)
			}
			plist = append(plist, Posting{Doc: doc, TF: int32(tf)})
			prev = doc
		}
		x.postings = append(x.postings, plist)
	}
	sizes := []int64{int64(numDocs)}
	if version >= 2 {
		// v2+ promise a sorted dictionary; a violation means corruption.
		if !sort.StringsAreSorted(x.termList) {
			return nil, nil, fmt.Errorf("%w: v%d dictionary not in sorted order", ErrBadFormat, version)
		}
	} else {
		// Pre-bump streams carry insertion-ordered dictionaries; restore
		// the sorted-ID invariant the rest of the system relies on.
		x.termList, x.postings, x.cf = sortDictionary(x.termList, x.postings, x.cf, x.terms)
	}
	if version >= 3 {
		numShards, err := readUvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: shard manifest: %v", ErrBadFormat, err)
		}
		if numShards == 0 || numShards > numDocs+1 {
			return nil, nil, fmt.Errorf("%w: shard count %d out of range", ErrBadFormat, numShards)
		}
		sizes = make([]int64, 0, capHint(numShards))
		for i := uint64(0); i < numShards; i++ {
			sz, err := readUvarint()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: shard size %d: %v", ErrBadFormat, i, err)
			}
			sizes = append(sizes, int64(sz))
		}
	}
	if version >= 4 {
		if err := readMaxScoreBlock(br, x); err != nil {
			return nil, nil, err
		}
	}
	return x, sizes, nil
}

// capHint bounds the initial capacity allocated for an untrusted element
// count: enough to avoid regrowth on every real-world stream, small
// enough that a hostile count cannot allocate beyond it before parsing
// fails.
func capHint(n uint64) int {
	const max = 1 << 16
	if n > max {
		return max
	}
	return int(n)
}

// readMaxScoreBlock parses the v4 max-score tables into x. Corrupt or
// truncated blocks error (never panic): counts, key uniqueness and the
// finite-nonnegative value contract are all validated before the table
// is attached.
func readMaxScoreBlock(br *bufio.Reader, x *Index) error {
	numTables, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: max-score table count: %v", ErrBadFormat, err)
	}
	if numTables > 1<<12 {
		return fmt.Errorf("%w: %d max-score tables", ErrBadFormat, numTables)
	}
	var f64 [8]byte
	for ti := uint64(0); ti < numTables; ti++ {
		keyLen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: max-score key: %v", ErrBadFormat, err)
		}
		if keyLen == 0 || keyLen > 1<<10 {
			return fmt.Errorf("%w: max-score key length %d", ErrBadFormat, keyLen)
		}
		kb := make([]byte, keyLen)
		if _, err := io.ReadFull(br, kb); err != nil {
			return fmt.Errorf("%w: max-score key: %v", ErrBadFormat, err)
		}
		key := string(kb)
		if _, dup := x.maxScores[key]; dup {
			return fmt.Errorf("%w: duplicate max-score table %q", ErrBadFormat, key)
		}
		scores := make([]float64, 0, capHint(uint64(x.NumTerms())))
		for i := 0; i < x.NumTerms(); i++ {
			if _, err := io.ReadFull(br, f64[:]); err != nil {
				return fmt.Errorf("%w: max-score table %q entry %d: %v", ErrBadFormat, key, i, err)
			}
			scores = append(scores, math.Float64frombits(binary.LittleEndian.Uint64(f64[:])))
		}
		if err := x.SetMaxScores(key, scores); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	return nil
}
