package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary serialization of an Index. Layout (all integers unsigned varints
// unless noted):
//
//	magic  "RIDX5\n"
//	blockCap (0 = the index was laid out flat; loaders materialize)
//	numDocs, then per doc: idLen, idBytes, docLen
//	totalTokens
//	numTerms, then per term (in term-id order):
//	    termLen, termBytes, cf, df,
//	    numBlocks, then per block: count, byteLen, byteLen raw bytes —
//	    the block's postings as (docDelta, tf) varints with
//	    docDelta = doc - prevDoc (first delta of the whole term = doc + 1,
//	    the chain running continuously across blocks)
//	numShards, then per shard: shard document count (v3+)
//	numTables, then per table (in sorted key order):
//	    keyLen, keyBytes, numTerms float64s (8-byte little-endian) (v4+)
//	numBlockTables, then per table (in sorted key order):
//	    keyLen, keyBytes, totalBlocks float64s (v5 only)
//
// The format is self-contained and versioned by the magic string.
//
// Version 2 keeps the v1 byte layout but guarantees the dictionary is
// written in lexicographic term order (the Build invariant): loaders can
// seed a sorted term lexicon straight from the stream without re-sorting.
// v1 streams — written before the invariant existed — are still read;
// their dictionaries are renumbered into sorted order on load, so a
// loaded index behaves identically regardless of the stream version.
//
// Version 3 appends the shard manifest: the document counts of the
// contiguous segments a Segmented index was partitioned into, so a
// sharded deployment reloads with the same partitioning it was built
// with. v1/v2 streams predate segmentation and load as a single-shard
// manifest; the loaded index itself is identical across all three
// versions, and Resegment can re-partition a loaded index at any shard
// count without touching the stream.
//
// Version 4 appends the max-score block: the per-term score upper-bound
// tables MaxScore dynamic pruning consumes (one table per registered
// scoring function, see SetMaxScores), so a served index prunes from its
// first query without a rebuild pass. v1–v3 streams simply carry no
// tables; the engine recomputes the ones its model needs at load time,
// so a loaded index *serves* identically across all four versions.
//
// Version 5 turns the posting section into explicit blocks — the on-disk
// twin of the in-memory block-compressed layout, written verbatim so
// loading re-encodes nothing — and appends the block-max tables (per-
// block score maxima, SetBlockMaxScores) after the max-score block.
// v1–v4 streams carry one implicit run per term in the very same delta
// encoding; they load fine and are re-blocked at DefaultBlockSize, so a
// loaded index serves identically across all five versions.

const (
	magicV6 = "RIDX6\n"
	magicV5 = "RIDX5\n"
	magicV4 = "RIDX4\n"
	magicV3 = "RIDX3\n"
	magicV2 = "RIDX2\n"
	magicV1 = "RIDX1\n"
)

// ErrBadFormat reports a corrupt or foreign index stream.
var ErrBadFormat = errors.New("index: bad index format")

// WriteTo serializes the index to w as a single-shard v5 stream.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	return x.writeStream(w, nil)
}

// WriteTo serializes the segmented index to w, recording the shard
// partition in the stream's manifest.
func (s *Segmented) WriteTo(w io.Writer) (int64, error) {
	return s.idx.writeStream(w, s.bounds)
}

// writeStream emits the v5 stream. bounds carries the shard boundaries of
// a Segmented (len shards+1); nil means a single shard covering every
// document. A flat-layout index is transported in DefaultBlockSize blocks
// with blockCap recorded as 0, so the loader restores the flat layout.
func (x *Index) writeStream(w io.Writer, bounds []int32) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		m := binary.PutUvarint(buf[:], v)
		return write(buf[:m])
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		return write([]byte(s))
	}

	if err := write([]byte(magicV5)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(x.blockCap)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(x.docIDs))); err != nil {
		return n, err
	}
	for i, id := range x.docIDs {
		if err := writeString(id); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(x.docLens[i])); err != nil {
			return n, err
		}
	}
	if err := writeUvarint(uint64(x.total)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(x.termList))); err != nil {
		return n, err
	}
	for id, term := range x.termList {
		if err := writeString(term); err != nil {
			return n, err
		}
		pl := &x.plists[id]
		if err := writeUvarint(uint64(x.cf[id])); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(pl.n)); err != nil {
			return n, err
		}
		data, blocks := pl.data, pl.blocks
		if pl.flat != nil {
			// Transport encoding for the flat layout.
			data, blocks = appendBlocks(nil, pl.flat, DefaultBlockSize)
		}
		if err := writeUvarint(uint64(len(blocks))); err != nil {
			return n, err
		}
		for bi, h := range blocks {
			end := uint32(len(data))
			if bi+1 < len(blocks) {
				end = blocks[bi+1].off
			}
			if err := writeUvarint(uint64(h.n)); err != nil {
				return n, err
			}
			if err := writeUvarint(uint64(end - h.off)); err != nil {
				return n, err
			}
			if err := write(data[h.off:end]); err != nil {
				return n, err
			}
		}
	}
	// Shard manifest: per-shard document counts in shard order.
	if bounds == nil {
		if err := writeUvarint(1); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(len(x.docIDs))); err != nil {
			return n, err
		}
	} else {
		if err := writeUvarint(uint64(len(bounds) - 1)); err != nil {
			return n, err
		}
		for i := 1; i < len(bounds); i++ {
			if err := writeUvarint(uint64(bounds[i] - bounds[i-1])); err != nil {
				return n, err
			}
		}
	}
	// Max-score and block-max blocks: the score upper-bound tables, in
	// sorted key order so the stream is canonical.
	var f64 [8]byte
	writeTables := func(keys []string, tables map[string][]float64) error {
		if err := writeUvarint(uint64(len(keys))); err != nil {
			return err
		}
		for _, key := range keys {
			if err := writeString(key); err != nil {
				return err
			}
			for _, v := range tables[key] {
				binary.LittleEndian.PutUint64(f64[:], math.Float64bits(v))
				if err := write(f64[:]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := writeTables(x.MaxScoreKeys(), x.maxScores); err != nil {
		return n, err
	}
	if err := writeTables(x.BlockMaxKeys(), x.blockMax); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// Read deserializes an index written by WriteTo — current (v5) streams
// and pre-bump v1–v4 streams alike; see the format comment above. The
// shard manifest, if any, is consumed and dropped: callers that care
// about the partition use ReadSegmented.
func Read(r io.Reader) (*Index, error) {
	x, _, err := readStream(r)
	return x, err
}

// ReadSegmented deserializes an index together with its shard manifest.
// v1/v2 streams predate the manifest and come back as a single shard.
// The max-score (v4+) and block-max (v5) tables load with either entry
// point.
func ReadSegmented(r io.Reader) (*Segmented, error) {
	x, sizes, err := readStream(r)
	if err != nil {
		return nil, err
	}
	seg, ok := segmentedFromSizes(x, sizes)
	if !ok {
		return nil, fmt.Errorf("%w: shard manifest %v does not cover %d docs",
			ErrBadFormat, sizes, x.NumDocs())
	}
	return seg, nil
}

// readStream parses any stream version, returning the index and the
// manifest's per-shard document counts ({numDocs} for v1/v2 streams).
func readStream(r io.Reader) (*Index, []int64, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicV5))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	version := 0
	switch string(head) {
	case magicV7:
		// The mapped layout arriving through the streaming entry point:
		// slurp the remaining bytes and parse them as an owned slab —
		// same in-place views, no refcounted mapping, GC-managed
		// lifetime. (OpenMapped is the zero-copy path; this one exists
		// so every RIDX version loads through Read/ReadSegmented/
		// ReadManifest alike.)
		rest, err := io.ReadAll(io.LimitReader(br, 1<<33))
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		buf := make([]byte, 0, len(head)+len(rest))
		buf = append(buf, head...)
		buf = append(buf, rest...)
		return parseV7(buf, nil)
	case magicV5:
		version = 5
	case magicV4:
		version = 4
	case magicV3:
		version = 3
	case magicV2:
		version = 2
	case magicV1:
		version = 1
	default:
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head)
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readString := func() (string, error) {
		l, err := readUvarint()
		if err != nil {
			return "", err
		}
		if l > 1<<24 {
			return "", fmt.Errorf("%w: string too long (%d)", ErrBadFormat, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	blockCap := uint64(0)
	if version >= 5 {
		var err error
		blockCap, err = readUvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: blockCap: %v", ErrBadFormat, err)
		}
		if blockCap > MaxBlockSize {
			return nil, nil, fmt.Errorf("%w: blockCap %d out of range", ErrBadFormat, blockCap)
		}
	}
	numDocs, err := readUvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: numDocs: %v", ErrBadFormat, err)
	}
	if numDocs > 1<<31 {
		return nil, nil, fmt.Errorf("%w: numDocs %d too large", ErrBadFormat, numDocs)
	}
	// Counts are untrusted until that many entries have actually been
	// parsed: grow from a capped capacity instead of pre-allocating, so a
	// corrupt count fails with a parse error, not an OOM. (Every entry is
	// at least one byte, so a truncated stream runs out of input long
	// before the slices grow pathological.)
	x := &Index{
		docIDs:  make([]string, 0, capHint(numDocs)),
		docLens: make([]int32, 0, capHint(numDocs)),
		terms:   make(map[string]int32, 1024),
	}
	for i := uint64(0); i < numDocs; i++ {
		id, err := readString()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: docID %d: %v", ErrBadFormat, i, err)
		}
		dl, err := readUvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: docLen %d: %v", ErrBadFormat, i, err)
		}
		x.docIDs = append(x.docIDs, id)
		x.docLens = append(x.docLens, int32(dl))
	}
	total, err := readUvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: totalTokens: %v", ErrBadFormat, err)
	}
	x.total = int64(total)
	numTerms, err := readUvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: numTerms: %v", ErrBadFormat, err)
	}
	if numTerms > 1<<31 {
		return nil, nil, fmt.Errorf("%w: numTerms %d too large", ErrBadFormat, numTerms)
	}
	x.termList = make([]string, 0, capHint(numTerms))
	x.cf = make([]int64, 0, capHint(numTerms))
	// v1–v4 postings accumulate flat and are re-blocked after the (v1)
	// dictionary renumbering; v5 reads blocks directly.
	var flatPostings [][]Posting
	if version < 5 {
		flatPostings = make([][]Posting, 0, capHint(numTerms))
	} else {
		x.plists = make([]postingList, 0, capHint(numTerms))
	}
	for id := uint64(0); id < numTerms; id++ {
		term, err := readString()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: term %d: %v", ErrBadFormat, id, err)
		}
		x.termList = append(x.termList, term)
		x.terms[term] = int32(id)
		cf, err := readUvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: cf: %v", ErrBadFormat, err)
		}
		x.cf = append(x.cf, int64(cf))
		df, err := readUvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: df: %v", ErrBadFormat, err)
		}
		if df > numDocs {
			return nil, nil, fmt.Errorf("%w: df %d > numDocs %d", ErrBadFormat, df, numDocs)
		}
		if version >= 5 {
			pl, err := readBlockedPostings(br, df, numDocs)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: term %q: %v", ErrBadFormat, term, err)
			}
			x.plists = append(x.plists, pl)
			continue
		}
		plist := make([]Posting, 0, capHint(df))
		prev := int32(-1)
		for j := uint64(0); j < df; j++ {
			delta, err := readUvarint()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: posting delta: %v", ErrBadFormat, err)
			}
			if delta == 0 {
				return nil, nil, fmt.Errorf("%w: zero doc delta", ErrBadFormat)
			}
			tf, err := readUvarint()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: posting tf: %v", ErrBadFormat, err)
			}
			doc := prev + int32(delta)
			if doc < 0 || uint64(doc) >= numDocs {
				return nil, nil, fmt.Errorf("%w: doc %d out of range", ErrBadFormat, doc)
			}
			plist = append(plist, Posting{Doc: doc, TF: int32(tf)})
			prev = doc
		}
		flatPostings = append(flatPostings, plist)
	}
	sizes := []int64{int64(numDocs)}
	if version >= 2 {
		// v2+ promise a sorted dictionary; a violation means corruption.
		if !sort.StringsAreSorted(x.termList) {
			return nil, nil, fmt.Errorf("%w: v%d dictionary not in sorted order", ErrBadFormat, version)
		}
	} else {
		// Pre-bump streams carry insertion-ordered dictionaries; restore
		// the sorted-ID invariant the rest of the system relies on.
		x.termList, flatPostings, x.cf = sortDictionary(x.termList, flatPostings, x.cf, x.terms)
	}
	if version < 5 {
		// Re-block legacy streams at the default layout.
		x.blockCap = DefaultBlockSize
		x.plists, x.nBlocks = assemblePostings(flatPostings, x.blockCap)
	} else if blockCap == 0 {
		// The stream says the index was flat: restore that layout from the
		// transport blocks.
		x.blockCap = 0
		for id := range x.plists {
			pl := &x.plists[id]
			*pl = postingList{n: pl.n, flat: pl.materialize(false)}
		}
	} else {
		x.blockCap = int(blockCap)
		nBlocks := 0
		for id := range x.plists {
			pl := &x.plists[id]
			if int(pl.n) > 0 {
				for _, h := range pl.blocks {
					if int(h.n) > x.blockCap {
						return nil, nil, fmt.Errorf("%w: block of %d postings exceeds blockCap %d",
							ErrBadFormat, h.n, x.blockCap)
					}
				}
			}
			pl.blk0 = int32(nBlocks)
			nBlocks += len(pl.blocks)
		}
		x.nBlocks = nBlocks
	}
	if version >= 3 {
		numShards, err := readUvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: shard manifest: %v", ErrBadFormat, err)
		}
		if numShards == 0 || numShards > numDocs+1 {
			return nil, nil, fmt.Errorf("%w: shard count %d out of range", ErrBadFormat, numShards)
		}
		sizes = make([]int64, 0, capHint(numShards))
		for i := uint64(0); i < numShards; i++ {
			sz, err := readUvarint()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: shard size %d: %v", ErrBadFormat, i, err)
			}
			sizes = append(sizes, int64(sz))
		}
	}
	if version >= 4 {
		if err := readScoreTables(br, x, "max-score", x.NumTerms(), x.SetMaxScores); err != nil {
			return nil, nil, err
		}
	}
	if version >= 5 {
		// SetBlockMaxScores enforces the layout contract: tables on a
		// flat index are rejected, zero-entry tables on a blocked-but-
		// empty index (nBlocks 0) round-trip — the writer emits them.
		if err := readScoreTables(br, x, "block-max", x.nBlocks, x.SetBlockMaxScores); err != nil {
			return nil, nil, err
		}
	}
	return x, sizes, nil
}

// readBlockedPostings parses one term's v5 posting blocks, validating
// every count, length and decoded document before the list is accepted:
// hostile block counts or byte lengths error, never panic or OOM, and an
// accepted list upholds the invariants the branch-lean hot-path decoder
// trusts (terminating varints, strictly ascending in-range documents).
func readBlockedPostings(br *bufio.Reader, df, numDocs uint64) (postingList, error) {
	numBlocks, err := binary.ReadUvarint(br)
	if err != nil {
		return postingList{}, fmt.Errorf("block count: %v", err)
	}
	pl := postingList{n: int32(df)}
	if df == 0 {
		if numBlocks != 0 {
			return postingList{}, fmt.Errorf("%d blocks for empty posting list", numBlocks)
		}
		return pl, nil
	}
	if numBlocks == 0 || numBlocks > df {
		return postingList{}, fmt.Errorf("block count %d out of range for df %d", numBlocks, df)
	}
	blocks := make([]blockHeader, 0, capHint(numBlocks))
	data := make([]byte, 0, capHint(2*df))
	var seen uint64
	prev := int32(-1)
	for bi := uint64(0); bi < numBlocks; bi++ {
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return postingList{}, fmt.Errorf("block %d count: %v", bi, err)
		}
		if cnt == 0 || seen+cnt > df {
			return postingList{}, fmt.Errorf("block %d count %d overflows df %d", bi, cnt, df)
		}
		byteLen, err := binary.ReadUvarint(br)
		if err != nil {
			return postingList{}, fmt.Errorf("block %d length: %v", bi, err)
		}
		// Each posting is at least 2 bytes and at most two 5-byte varints.
		if byteLen < 2*cnt || byteLen > 10*cnt {
			return postingList{}, fmt.Errorf("block %d byte length %d implausible for %d postings", bi, byteLen, cnt)
		}
		off := uint32(len(data))
		data = append(data, make([]byte, byteLen)...)
		if _, err := io.ReadFull(br, data[off:]); err != nil {
			return postingList{}, fmt.Errorf("block %d bytes: %v", bi, err)
		}
		// Validation decode: the bytes must contain exactly cnt postings
		// with strictly ascending in-range documents and in-range TFs.
		rest := data[off:]
		blkPrev := prev
		for j := uint64(0); j < cnt; j++ {
			delta, m := binary.Uvarint(rest)
			if m <= 0 || delta == 0 || delta > uint64(math.MaxInt32) {
				return postingList{}, fmt.Errorf("block %d posting %d: bad doc delta", bi, j)
			}
			rest = rest[m:]
			doc := int64(blkPrev) + int64(delta)
			if doc >= int64(numDocs) {
				return postingList{}, fmt.Errorf("block %d: doc %d out of range", bi, doc)
			}
			tf, m := binary.Uvarint(rest)
			if m <= 0 || tf > uint64(math.MaxInt32) {
				return postingList{}, fmt.Errorf("block %d posting %d: bad tf", bi, j)
			}
			rest = rest[m:]
			blkPrev = int32(doc)
		}
		if len(rest) != 0 {
			return postingList{}, fmt.Errorf("block %d: %d trailing bytes", bi, len(rest))
		}
		blocks = append(blocks, blockHeader{maxDoc: blkPrev, off: off, n: int32(cnt)})
		prev = blkPrev
		seen += cnt
	}
	if seen != df {
		return postingList{}, fmt.Errorf("blocks carry %d postings, df says %d", seen, df)
	}
	pl.data = data
	pl.blocks = blocks
	return pl, nil
}

// A Manifest is the multi-segment epoch the v6 stream persists: the
// sealed segments of an LSM-style live index (oldest first), the epoch
// counter of the snapshot, and the tombstoned document IDs whose segment
// copies are dead. Each segment is embedded as a self-delimiting v5
// stream, so the v6 format is the v5 format lifted from one index to a
// segment list. Version 1–5 streams read back as a single-segment
// manifest at epoch 0 with no tombstones, so every pre-v6 index is a
// valid (frozen) epoch.
type Manifest struct {
	Epoch      uint64
	Segments   []*Segmented
	Tombstones []string
}

// maxManifestSegments bounds the segment count a manifest may declare —
// far above what any real lifecycle accumulates between compactions, low
// enough that a hostile count fails fast.
const maxManifestSegments = 1 << 10

// WriteTo serializes the manifest as a v6 stream. Layout:
//
//	magic "RIDX6\n"
//	epoch
//	numSegments, then per segment: a complete v5 stream (see writeStream)
//	numTombstones, then per tombstone: idLen, idBytes
func (m *Manifest) WriteTo(w io.Writer) (int64, error) {
	// bufio.NewWriter returns bw itself for the nested writeStream calls,
	// so the embedded segments share this buffer.
	bw := bufio.NewWriter(w)
	n := int64(0)
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		k, err := bw.Write(buf[:k])
		n += int64(k)
		return err
	}
	k, err := bw.WriteString(magicV6)
	n += int64(k)
	if err != nil {
		return n, err
	}
	if err := writeUvarint(m.Epoch); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(m.Segments))); err != nil {
		return n, err
	}
	for _, seg := range m.Segments {
		k, err := seg.idx.writeStream(bw, seg.bounds)
		n += k
		if err != nil {
			return n, err
		}
	}
	if err := writeUvarint(uint64(len(m.Tombstones))); err != nil {
		return n, err
	}
	for _, id := range m.Tombstones {
		if err := writeUvarint(uint64(len(id))); err != nil {
			return n, err
		}
		k, err := bw.WriteString(id)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadManifest deserializes a manifest written by Manifest.WriteTo, or
// lifts a v1–v5 single-index stream into a single-segment manifest at
// epoch 0. Hostile segment or tombstone counts error — never panic or
// OOM: counts are untrusted until that many entries have parsed, and every
// embedded segment goes through the fully validating v5 reader.
func ReadManifest(r io.Reader) (*Manifest, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magicV6))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head) != magicV6 {
		// Pre-v6 stream: one frozen segment, epoch 0. readStream consumes
		// from br directly (bufio.NewReader returns br itself), so the
		// magic dispatch costs nothing.
		seg, err := ReadSegmented(br)
		if err != nil {
			return nil, err
		}
		return &Manifest{Segments: []*Segmented{seg}}, nil
	}
	if _, err := br.Discard(len(magicV6)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	epoch, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: manifest epoch: %v", ErrBadFormat, err)
	}
	numSegs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: segment count: %v", ErrBadFormat, err)
	}
	if numSegs == 0 || numSegs > maxManifestSegments {
		return nil, fmt.Errorf("%w: segment count %d out of range", ErrBadFormat, numSegs)
	}
	man := &Manifest{Epoch: epoch, Segments: make([]*Segmented, 0, capHint(numSegs))}
	for i := uint64(0); i < numSegs; i++ {
		x, sizes, err := readStream(br)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		seg, ok := segmentedFromSizes(x, sizes)
		if !ok {
			return nil, fmt.Errorf("%w: segment %d: shard manifest %v does not cover %d docs",
				ErrBadFormat, i, sizes, x.NumDocs())
		}
		man.Segments = append(man.Segments, seg)
	}
	numTombs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: tombstone count: %v", ErrBadFormat, err)
	}
	if numTombs > 1<<31 {
		return nil, fmt.Errorf("%w: tombstone count %d out of range", ErrBadFormat, numTombs)
	}
	man.Tombstones = make([]string, 0, capHint(numTombs))
	for i := uint64(0); i < numTombs; i++ {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: tombstone %d: %v", ErrBadFormat, i, err)
		}
		if l > 1<<24 {
			return nil, fmt.Errorf("%w: tombstone %d: id too long (%d)", ErrBadFormat, i, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("%w: tombstone %d: %v", ErrBadFormat, i, err)
		}
		man.Tombstones = append(man.Tombstones, string(b))
	}
	return man, nil
}

// capHint bounds the initial capacity allocated for an untrusted element
// count: enough to avoid regrowth on every real-world stream, small
// enough that a hostile count cannot allocate beyond it before parsing
// fails.
func capHint(n uint64) int {
	const max = 1 << 16
	if n > max {
		return max
	}
	return int(n)
}

// readScoreTables parses a score-table section (the v4 max-score block
// and the v5 block-max block share the format): numTables, then per table
// a key and entries float64 values, attached through set. Corrupt or
// truncated sections error (never panic): counts, key uniqueness and the
// finite-nonnegative value contract are all validated before the table is
// attached — set is the validator of last resort.
func readScoreTables(br *bufio.Reader, x *Index, what string, entries int, set func(string, []float64) error) error {
	numTables, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: %s table count: %v", ErrBadFormat, what, err)
	}
	if numTables > 1<<12 {
		return fmt.Errorf("%w: %d %s tables", ErrBadFormat, numTables, what)
	}
	var f64 [8]byte
	for ti := uint64(0); ti < numTables; ti++ {
		keyLen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: %s key: %v", ErrBadFormat, what, err)
		}
		if keyLen == 0 || keyLen > 1<<10 {
			return fmt.Errorf("%w: %s key length %d", ErrBadFormat, what, keyLen)
		}
		kb := make([]byte, keyLen)
		if _, err := io.ReadFull(br, kb); err != nil {
			return fmt.Errorf("%w: %s key: %v", ErrBadFormat, what, err)
		}
		key := string(kb)
		if _, dup := x.maxScores[key]; dup && what == "max-score" {
			return fmt.Errorf("%w: duplicate max-score table %q", ErrBadFormat, key)
		}
		if _, dup := x.blockMax[key]; dup && what == "block-max" {
			return fmt.Errorf("%w: duplicate block-max table %q", ErrBadFormat, key)
		}
		scores := make([]float64, 0, capHint(uint64(entries)))
		for i := 0; i < entries; i++ {
			if _, err := io.ReadFull(br, f64[:]); err != nil {
				return fmt.Errorf("%w: %s table %q entry %d: %v", ErrBadFormat, what, key, i, err)
			}
			scores = append(scores, math.Float64frombits(binary.LittleEndian.Uint64(f64[:])))
		}
		if err := set(key, scores); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	return nil
}
