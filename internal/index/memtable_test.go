package index

import (
	"reflect"
	"strings"
	"testing"
)

func memdoc(id, text string) MemDoc {
	return MemDoc{ID: id, Tokens: strings.Fields(text), Payload: text}
}

func TestMemtableLifecycle(t *testing.T) {
	m := NewMemtable(0)
	if v := m.View(); v != nil {
		t.Fatalf("empty memtable view = %v, want nil", v)
	}
	if m.Add(memdoc("a", "apple pie")) {
		t.Fatal("first Add reported replaced")
	}
	m.Add(memdoc("b", "banana split"))
	m.Add(memdoc("c", "cherry tart"))
	if got := m.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}

	v := m.View()
	if v == nil || v.NumDocs() != 3 || v.Seg.Index().NumDocs() != 3 {
		t.Fatalf("view over 3 docs came back wrong: %+v", v)
	}
	if !v.Has("b") || v.Has("zz") {
		t.Fatal("view membership wrong")
	}
	if p, ok := v.Payload("c"); !ok || p != "cherry tart" {
		t.Fatalf("payload(c) = %q, %v", p, ok)
	}
	if m.View() != v {
		t.Fatal("unmutated memtable rebuilt its view")
	}

	// Update = delete + append: "a" moves to the end of insertion order.
	if !m.Add(memdoc("a", "apple crumble")) {
		t.Fatal("update did not report replaced")
	}
	if got := m.Len(); got != 3 {
		t.Fatalf("Len after update = %d, want 3", got)
	}
	if m.View() == v {
		t.Fatal("mutation did not invalidate the cached view")
	}
	ids := func() []string {
		var out []string
		for _, d := range m.LiveDocs() {
			out = append(out, d.ID)
		}
		return out
	}
	if got, want := ids(), []string{"b", "c", "a"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LiveDocs order %v, want %v", got, want)
	}

	if !m.Delete("b") || m.Delete("b") {
		t.Fatal("Delete semantics wrong")
	}
	if !m.Has("a") || m.Has("b") {
		t.Fatal("Has after delete wrong")
	}
	if got, want := ids(), []string{"c", "a"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LiveDocs after delete %v, want %v", got, want)
	}
	v2 := m.View()
	if v2.NumDocs() != 2 || v2.Has("b") {
		t.Fatalf("view after delete wrong: %d docs", v2.NumDocs())
	}
	// Deleted-then-reingested doc is live again, at the end.
	m.Add(memdoc("b", "banana bread"))
	if got, want := ids(), []string{"c", "a", "b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LiveDocs after re-add %v, want %v", got, want)
	}
	if p, _ := m.View().Payload("b"); p != "banana bread" {
		t.Fatalf("re-added payload %q", p)
	}
}

// TestMemtableViewMatchesBatchBuild: a sealed view's index must be
// bit-identical to a Builder fed the same live docs in the same order —
// the property flushing relies on.
func TestMemtableViewMatchesBatchBuild(t *testing.T) {
	m := NewMemtable(2)
	m.Add(memdoc("a", "x y z"))
	m.Add(memdoc("b", "x q"))
	m.Add(memdoc("a", "y y w"))
	m.Delete("b")
	m.Add(memdoc("c", "w z"))

	b := NewBuilder()
	b.SetBlockSize(2)
	for _, d := range m.LiveDocs() {
		if err := b.Add(d.ID, d.Tokens); err != nil {
			t.Fatal(err)
		}
	}
	want := b.Build()
	got := m.View().Seg.Index()
	if got.NumDocs() != want.NumDocs() || got.NumTerms() != want.NumTerms() {
		t.Fatalf("shape mismatch: %d/%d docs, %d/%d terms",
			got.NumDocs(), want.NumDocs(), got.NumTerms(), want.NumTerms())
	}
	for id := int32(0); id < int32(want.NumTerms()); id++ {
		if got.Term(id) != want.Term(id) {
			t.Fatalf("term %d: %q vs %q", id, got.Term(id), want.Term(id))
		}
		if !reflect.DeepEqual(got.PostingsByID(id), want.PostingsByID(id)) {
			t.Fatalf("postings of %q differ", want.Term(id))
		}
	}
}
