//go:build !linux && !darwin

package index

import (
	"io"
	"os"
)

// mmapFile on platforms without the mmap syscall surface reads the file
// into one owned heap slab. OpenMapped still works — same refcounted
// lifecycle, same zero-copy views into the slab — it just pays O(index)
// read time and private RSS, like the heap codec path.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func munmapBytes(b []byte) error { return nil }

func madviseBytes(b []byte, a Advice) error { return nil }
