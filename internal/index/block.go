package index

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Block-compressed posting storage: each term's posting list is split into
// fixed-capacity blocks of (docID delta, term frequency) pairs encoded as
// unsigned varints — the same delta chain the codec has always written,
// with headers marking block boundaries so the list can be traversed (and
// skipped) block at a time without touching the bytes in between. A flat
// []Posting posting costs 8 bytes; the compressed form lands around 2–3
// bytes plus ~0.1 bytes of header per posting at the default block size,
// which is what lets a node hold a several-times-larger corpus in the
// same memory.
//
// Every block header carries the block's largest document number, so
// SeekGE lands on block starts by binary search over headers and decodes
// only the one block that can contain the target — the skip structure
// Block-Max evaluation (ranking's MaxScore path) rides on. Per-block
// score maxima live index-wide in Index.blockMax, keyed like the per-term
// max-score tables.

// DefaultBlockSize is the posting-block capacity used when a Builder or
// loader is not told otherwise. 128 is the standard operating point of
// the block-max literature: blocks are small enough that a skipped block
// saves real work and large enough that header overhead stays below a
// bit per posting.
const DefaultBlockSize = 128

// MaxBlockSize caps the posting-block capacity. The codec reader rejects
// streams claiming a larger blockCap as hostile, so the builder-side
// convention (normBlockSize) clamps here — any configured size builds an
// index that can round-trip through the codec.
const MaxBlockSize = 1 << 20

// blockHeader describes one encoded block of a term's posting list.
type blockHeader struct {
	maxDoc int32  // largest document number in the block
	off    uint32 // byte offset of the block's first posting in the term's data
	n      int32  // number of postings in the block
}

// blockHeaderBytes is the in-memory footprint of a blockHeader (three
// 4-byte fields, no padding) — used by Storage accounting.
const blockHeaderBytes = 12

// postingList is the per-term posting storage: exactly one of flat
// (uncompressed 8-byte structs) or data+blocks (block-compressed) is
// populated for a non-empty list.
type postingList struct {
	n      int32     // document frequency
	flat   []Posting // uncompressed layout; nil when compressed
	data   []byte    // delta-varint (doc, tf) stream
	blocks []blockHeader
	blk0   int32 // index of blocks[0] in the index-wide block numbering
}

// appendBlocks encodes flat into blocks of at most blockSize postings,
// appending to data (the term's byte stream) and returning the grown
// stream plus the headers. The delta chain is continuous across blocks —
// block i's first delta is relative to block i-1's last document (-1
// before the first block) — so the concatenated bytes are exactly the
// legacy flat encoding and a block decodes independently given the
// previous header's maxDoc.
func appendBlocks(data []byte, flat []Posting, blockSize int) ([]byte, []blockHeader) {
	if len(flat) == 0 {
		return data, nil
	}
	blocks := make([]blockHeader, 0, (len(flat)+blockSize-1)/blockSize)
	prev := int32(-1)
	for start := 0; start < len(flat); start += blockSize {
		end := start + blockSize
		if end > len(flat) {
			end = len(flat)
		}
		h := blockHeader{off: uint32(len(data)), n: int32(end - start), maxDoc: flat[end-1].Doc}
		for _, p := range flat[start:end] {
			data = binary.AppendUvarint(data, uint64(p.Doc-prev))
			data = binary.AppendUvarint(data, uint64(p.TF))
			prev = p.Doc
		}
		blocks = append(blocks, h)
	}
	return data, blocks
}

// decodeBlock appends the postings of block h to dst. base is the last
// document of the preceding block (-1 for the first). The byte stream is
// validated at build/load time, so decoding is branch-lean and trusts the
// invariants: every varint terminates and every delta is positive.
func decodeBlock(dst []Posting, data []byte, h blockHeader, base int32) []Posting {
	off := int(h.off)
	prev := base
	for i := int32(0); i < h.n; i++ {
		b := data[off]
		off++
		d := uint32(b & 0x7f)
		if b >= 0x80 {
			shift := 7
			for {
				b = data[off]
				off++
				d |= uint32(b&0x7f) << shift
				if b < 0x80 {
					break
				}
				shift += 7
			}
		}
		prev += int32(d)
		b = data[off]
		off++
		tf := uint32(b & 0x7f)
		if b >= 0x80 {
			shift := 7
			for {
				b = data[off]
				off++
				tf |= uint32(b&0x7f) << shift
				if b < 0x80 {
					break
				}
				shift += 7
			}
		}
		dst = append(dst, Posting{Doc: prev, TF: int32(tf)})
	}
	return dst
}

// decodeBlockSafe decodes block h from an UNVERIFIED byte region —
// mapped storage is served in place, so its posting bytes were never
// validation-decoded at load the way the v5 stream reader does. end is
// the block's end offset within data (the next header's off, or the
// term's data length for the last block). Every structural property the
// branch-lean decoder trusts is checked here instead: terminating
// varints inside the block's byte range, positive in-range deltas, an
// exact posting count, and a final document matching the header's
// maxDoc (which open-time validation bounded by numDocs). ok=false
// means the block is corrupt; dst then holds garbage to discard.
func decodeBlockSafe(dst []Posting, data []byte, h blockHeader, base int32, end uint64) ([]Posting, bool) {
	if uint64(h.off) > end || end > uint64(len(data)) {
		return dst, false
	}
	b := data[h.off:end]
	at := 0
	prev := base
	for i := int32(0); i < h.n; i++ {
		d, n := binary.Uvarint(b[at:])
		if n <= 0 || d == 0 || d > uint64(math.MaxInt32) {
			return dst, false
		}
		at += n
		doc := int64(prev) + int64(d)
		if doc > int64(math.MaxInt32) {
			return dst, false
		}
		tf, n2 := binary.Uvarint(b[at:])
		if n2 <= 0 || tf > uint64(math.MaxInt32) {
			return dst, false
		}
		at += n2
		prev = int32(doc)
		dst = append(dst, Posting{Doc: prev, TF: int32(tf)})
	}
	if at != len(b) || prev != h.maxDoc {
		return dst, false
	}
	return dst, true
}

// materialize returns the full posting list as a flat slice. Flat lists
// come back shared (zero copy); compressed lists decode into a fresh
// allocation — use iterators on hot paths. unverified selects the
// defensive decoder (mapped storage); a corrupt mapped block truncates
// the materialized list at the corruption point.
func (pl *postingList) materialize(unverified bool) []Posting {
	if pl.flat != nil || pl.n == 0 {
		return pl.flat
	}
	out := make([]Posting, 0, pl.n)
	base := int32(-1)
	for i, h := range pl.blocks {
		if i > 0 {
			base = pl.blocks[i-1].maxDoc
		}
		if unverified {
			end := uint64(len(pl.data))
			if i+1 < len(pl.blocks) {
				end = uint64(pl.blocks[i+1].off)
			}
			dec, ok := decodeBlockSafe(out, pl.data, h, base, end)
			if !ok {
				return out
			}
			out = dec
			continue
		}
		out = decodeBlock(out, pl.data, h, base)
	}
	return out
}

// assemblePostings converts per-term flat posting slices into the index's
// posting storage at the given layout (blockCap 0 = keep flat), numbering
// blocks index-wide. Shared by Build, the codec loaders, and Reblock.
func assemblePostings(postings [][]Posting, blockCap int) ([]postingList, int) {
	plists := make([]postingList, len(postings))
	nBlocks := 0
	for id, flat := range postings {
		pl := &plists[id]
		pl.n = int32(len(flat))
		if blockCap <= 0 {
			pl.flat = flat
			continue
		}
		data, blocks := appendBlocks(nil, flat, blockCap)
		pl.data = data
		pl.blocks = blocks
		pl.blk0 = int32(nBlocks)
		nBlocks += len(blocks)
	}
	return plists, nBlocks
}

// seekPostings returns the smallest position >= pos whose posting's Doc
// is >= d. Galloping search: probes at exponentially growing strides from
// the cursor before binary-searching the bracketed range, so short hops
// (the common case — candidates arrive in ascending document order) cost
// O(1) and long skips stay O(log n).
func seekPostings(postings []Posting, pos int, d int32) int {
	n := len(postings)
	if pos >= n || postings[pos].Doc >= d {
		return pos
	}
	step := 1
	lo := pos + 1 // postings[pos].Doc < d
	hi := pos + step
	for hi < n && postings[hi].Doc < d {
		lo = hi + 1
		step <<= 1
		hi = pos + step
	}
	if hi > n {
		hi = n
	}
	// Invariant: postings[lo-1].Doc < d, postings[hi].Doc >= d (or hi==n).
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if postings[mid].Doc < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// blockScratch pools block-decode buffers. Buffers grow to the largest
// block capacity they ever decode and stay grown, so steady-state
// traversal allocates nothing.
var blockScratch = sync.Pool{New: func() any {
	s := make([]Posting, 0, DefaultBlockSize)
	return &s
}}

// Index-wide block I/O counters, flushed from per-iterator tallies on
// Release so the hot loops pay no atomic per block.
var (
	blocksDecodedTotal atomic.Int64
	blocksSkippedTotal atomic.Int64
)

// BlockIOStats reports process-wide block traversal counters: blocks
// decoded versus blocks skipped over by header (SeekGE/BlockUpperBound
// passing a block without touching its bytes). The serving layer surfaces
// the pair in /stats as the observable win of block-max skipping.
func BlockIOStats() (decoded, skipped int64) {
	return blocksDecodedTotal.Load(), blocksSkippedTotal.Load()
}

// PostingIterator streams one term's posting list — or the sub-range of
// it falling inside a shard's document range — block at a time, decoding
// lazily into pooled scratch. Zero-copy over flat lists. An iterator is
// single-use and not safe for concurrent use; call Release when done to
// return its scratch to the pool (forgetting Release leaks nothing — the
// buffer just falls to the garbage collector).
//
// Traversal is forward-only: Next/SeekGE/NextBlock never move backwards,
// and slices returned by NextBlock are valid only until the next method
// call or Release.
type PostingIterator struct {
	data   []byte
	blocks []blockHeader
	bmax   []float64 // optional per-block score maxima (aligned with blocks)

	lo, hi int32

	cb    int  // block whose postings cur holds (or will, once decoded)
	curOK bool // cur is decoded and clipped
	done  bool
	safe  bool // data is unverified (mapped): decode defensively
	cur   []Posting
	pos   int
	buf   *[]Posting // pooled scratch backing cur in compressed mode

	// m, when non-nil, is the mapping retained on the iterator's behalf:
	// the pages behind data stay addressable until Release even if the
	// index is Closed or its engine epoch is retired mid-traversal.
	m *Mapping

	nDecoded int32
	nSkipped int32
}

// iter builds an iterator over the document range [lo, hi). The range
// lands on block starts: a compressed list is positioned by binary search
// over block headers, never by element offset into the byte stream.
func (pl *postingList) iter(lo, hi int32) PostingIterator {
	it := PostingIterator{lo: lo, hi: hi}
	if pl.n == 0 {
		it.done = true
		return it
	}
	if pl.flat != nil {
		f := pl.flat
		if lo > 0 {
			f = f[seekPostings(f, 0, lo):]
		}
		if len(f) > 0 && f[len(f)-1].Doc >= hi {
			f = f[:seekPostings(f, 0, hi)]
		}
		if len(f) == 0 {
			it.done = true
			return it
		}
		it.cur = f
		it.curOK = true
		return it
	}
	it.data = pl.data
	it.blocks = pl.blocks
	if lo > 0 {
		j := sort.Search(len(pl.blocks), func(i int) bool { return pl.blocks[i].maxDoc >= lo })
		if j == len(pl.blocks) {
			it.done = true
			return it
		}
		it.cb = j
	}
	return it
}

// SetBlockMax attaches the term's per-block score maxima (the slice
// Index.TermBlockMax returns) so BlockUpperBound can answer with a
// block-local bound. A nil or misaligned table is ignored.
func (it *PostingIterator) SetBlockMax(bmax []float64) {
	if len(bmax) == len(it.blocks) && len(bmax) > 0 {
		it.bmax = bmax
	}
}

// HasBlockMax reports whether a block-max table is attached — whether
// BlockUpperBound can ever answer with anything tighter than +Inf.
// Evaluators check it once per cursor and skip the per-probe
// BlockUpperBound call entirely on flat (or tableless) lists.
func (it *PostingIterator) HasBlockMax() bool { return it.bmax != nil }

// decodeCur decodes block cb into scratch and clips it to [lo, hi),
// advancing past blocks that fall entirely below lo and flagging
// exhaustion when the range ends.
func (it *PostingIterator) decodeCur() {
	for {
		if it.cb >= len(it.blocks) {
			it.done = true
			return
		}
		h := it.blocks[it.cb]
		if h.maxDoc < it.lo {
			it.cb++
			it.nSkipped++
			continue
		}
		if it.buf == nil {
			it.buf = blockScratch.Get().(*[]Posting)
		}
		var buf []Posting
		if it.safe {
			end := uint64(len(it.data))
			if it.cb+1 < len(it.blocks) {
				end = uint64(it.blocks[it.cb+1].off)
			}
			dec, ok := decodeBlockSafe((*it.buf)[:0], it.data, h, it.base(), end)
			if !ok {
				// Corrupt mapped block: end the list here rather than
				// serve garbage. Structurally impossible for owned
				// storage, whose bytes were validated at build/load.
				*it.buf = dec[:0]
				it.nDecoded++
				it.done = true
				return
			}
			buf = dec
		} else {
			buf = decodeBlock((*it.buf)[:0], it.data, h, it.base())
		}
		*it.buf = buf[:0]
		it.nDecoded++
		s := buf
		if it.lo > 0 && s[0].Doc < it.lo {
			s = s[seekPostings(s, 0, it.lo):]
		}
		if len(s) > 0 && s[len(s)-1].Doc >= it.hi {
			s = s[:seekPostings(s, 0, it.hi)]
			if len(s) == 0 {
				// Every remaining posting (this block's tail and all later
				// blocks) is >= hi.
				it.done = true
				return
			}
		}
		it.cur = s
		it.pos = 0
		it.curOK = true
		return
	}
}

// base returns the decode base of block cb: the previous block's last
// document, or -1 for the first block.
func (it *PostingIterator) base() int32 {
	if it.cb == 0 {
		return -1
	}
	return it.blocks[it.cb-1].maxDoc
}

// advanceBlock moves past the current block.
func (it *PostingIterator) advanceBlock() {
	if it.blocks == nil {
		it.done = true // flat lists are one clipped run
		return
	}
	if it.curOK && it.blocks[it.cb].maxDoc >= it.hi {
		it.done = true // later blocks lie entirely beyond the range
		return
	}
	it.cb++
	it.curOK = false
	if it.cb >= len(it.blocks) {
		it.done = true
	}
}

// NextBlock returns the remaining postings of the current block and
// advances to the next one, or nil when the list (range) is exhausted.
// Bulk traversals — the exhaustive evaluators — loop over NextBlock and
// range the returned slice: per-posting that is exactly the flat-slice
// loop, with one decode per block in between. The slice is valid only
// until the next iterator call.
func (it *PostingIterator) NextBlock() []Posting {
	for !it.done {
		if !it.curOK {
			it.decodeCur()
			continue
		}
		blk := it.cur[it.pos:]
		it.pos = len(it.cur)
		it.advanceBlock()
		if len(blk) > 0 {
			return blk
		}
	}
	return nil
}

// Cur returns the posting at the current position without advancing,
// decoding lazily. ok is false once the iterator is exhausted. The
// common case — a decoded block with postings left — is a branch and a
// bounds check, small enough to inline into the evaluators' per-
// candidate loops; block transitions take the slow path.
func (it *PostingIterator) Cur() (Posting, bool) {
	if it.curOK && it.pos < len(it.cur) {
		return it.cur[it.pos], true
	}
	return it.curSlow()
}

// curSlow is Cur off the fast path: decode the pending block or step
// over exhausted ones until a posting is available.
func (it *PostingIterator) curSlow() (Posting, bool) {
	for !it.done {
		if !it.curOK {
			it.decodeCur()
			continue
		}
		if it.pos < len(it.cur) {
			return it.cur[it.pos], true
		}
		it.advanceBlock()
	}
	return Posting{}, false
}

// Advance steps one posting forward. Call only after Cur reported ok.
func (it *PostingIterator) Advance() { it.pos++ }

// Next returns the current posting and advances past it.
func (it *PostingIterator) Next() (Posting, bool) {
	p, ok := it.Cur()
	if ok {
		it.pos++
	}
	return p, ok
}

// curContains reports whether the current decoded block still has
// unconsumed postings and its last document reaches d — the shared fast
// path of SeekGE and BlockUpperBound.
func (it *PostingIterator) curContains(d int32) bool {
	return it.curOK && it.pos < len(it.cur) && it.cur[len(it.cur)-1].Doc >= d
}

// advanceToBlock parks the block cursor on the first not-yet-passed
// block whose header promises a document >= d, WITHOUT decoding it —
// headers in between are skipped and tallied. Precondition (the
// curContains fast path): the current decoded block, if any, has no
// unconsumed posting >= d. Returns false — flagging exhaustion — when no
// such block remains; flat lists are one decoded run, so they exhaust
// here. SeekGE and BlockUpperBound share this so the block cursor can
// never desynchronize between a bound probe and the decode trusting it.
func (it *PostingIterator) advanceToBlock(d int32) bool {
	if it.blocks == nil {
		it.done = true
		return false
	}
	s := it.cb
	if it.curOK {
		s = it.cb + 1 // the decoded block is spent for targets >= d
	}
	j := s + sort.Search(len(it.blocks)-s, func(i int) bool { return it.blocks[s+i].maxDoc >= d })
	if j == len(it.blocks) {
		it.done = true
		return false
	}
	it.nSkipped += int32(j - s)
	it.cb = j
	it.curOK = false
	return true
}

// SeekGE positions the iterator at the first posting with Doc >= d and
// returns it. Within the current decoded block it gallops from the
// cursor; beyond it, it binary-searches block headers — skipping whole
// blocks without decoding them — and decodes only the landing block.
// Like all traversal, seeks must be monotone (d never decreases).
func (it *PostingIterator) SeekGE(d int32) (Posting, bool) {
	if it.done {
		return Posting{}, false
	}
	if it.curContains(d) {
		it.pos = seekPostings(it.cur, it.pos, d)
		return it.cur[it.pos], true
	}
	if !it.advanceToBlock(d) {
		return Posting{}, false
	}
	it.decodeCur()
	if it.done {
		return Posting{}, false
	}
	it.pos = seekPostings(it.cur, 0, d)
	if it.pos >= len(it.cur) {
		// The landing block's header promised a doc >= d but the range
		// clip removed it: everything from here on is >= hi.
		it.done = true
		return Posting{}, false
	}
	return it.cur[it.pos], true
}

// BlockUpperBound returns an upper bound on the model score any posting
// with Doc >= d can contribute, by advancing the block cursor to the
// first block that can contain d WITHOUT decoding it and reading the
// attached block-max table. ok=false means the list has no posting >= d
// (its contribution is exactly zero). Without a table the bound is +Inf —
// callers fall back to their term-level bound. A subsequent SeekGE(d)
// decodes the block the cursor parked on; when the bound already proves
// the block useless, that decode never happens — the Block-Max bailout.
func (it *PostingIterator) BlockUpperBound(d int32) (float64, bool) {
	if it.done {
		return 0, false
	}
	if !it.curContains(d) && !it.advanceToBlock(d) {
		return 0, false
	}
	if it.bmax != nil {
		return it.bmax[it.cb], true
	}
	return math.Inf(1), true
}

// Release returns the iterator's scratch buffer to the pool, flushes
// its block I/O tallies, and drops the iterator's reference on the
// backing mapping (mapped indexes only — the reference that keeps an
// epoch swap from unmapping pages mid-traversal). The iterator must not
// be used afterwards. Releasing an iterator that never decoded (or
// twice, as long as the struct was not copied in between) is a no-op;
// on mapped indexes Release is mandatory, since a leaked reference
// keeps the file mapped.
func (it *PostingIterator) Release() {
	if it.buf != nil {
		blockScratch.Put(it.buf)
		it.buf = nil
	}
	it.cur = nil
	it.data = nil
	it.curOK = false
	it.done = true
	if it.m != nil {
		it.m.release()
		it.m = nil
	}
	if it.nDecoded != 0 {
		blocksDecodedTotal.Add(int64(it.nDecoded))
		it.nDecoded = 0
	}
	if it.nSkipped != 0 {
		blocksSkippedTotal.Add(int64(it.nSkipped))
		it.nSkipped = 0
	}
}

// Reblock returns an index with the same logical content laid out at the
// given posting block size: n > 0 sets the block capacity, 0 means
// DefaultBlockSize, n < 0 means flat (uncompressed) postings. Document
// store, dictionary, statistics and the per-term max-score tables are
// shared with x (they are layout-independent); per-BLOCK max tables are
// layout-bound and therefore dropped — ranking.InstallMaxScores rebuilds
// them for the new layout.
func Reblock(x *Index, blockSize int) *Index {
	flat := make([][]Posting, len(x.plists))
	for id := range x.plists {
		flat[id] = x.plists[id].materialize(x.unverified)
	}
	plists, nBlocks := assemblePostings(flat, normBlockSize(blockSize))
	out := &Index{
		docIDs:   x.docIDs,
		docLens:  x.docLens,
		terms:    x.terms,
		termList: x.termList,
		plists:   plists,
		blockCap: normBlockSize(blockSize),
		nBlocks:  nBlocks,
		cf:       x.cf,
		total:    x.total,
	}
	if x.mapping != nil {
		// The reblocked index is owned and outlives the mapping: clone
		// every numeric slice that is a view into the mapped region.
		// (docIDs/termList strings were heap-copied at open already.)
		out.docLens = append([]int32(nil), x.docLens...)
		out.cf = append([]int64(nil), x.cf...)
	}
	if x.maxScores != nil {
		out.maxScores = make(map[string][]float64, len(x.maxScores))
		for k, v := range x.maxScores {
			if x.mapping != nil {
				v = append([]float64(nil), v...)
			}
			out.maxScores[k] = v
		}
	}
	return out
}

// ReblockSegmented is Reblock over a segmented index, preserving the
// shard partition exactly (the manifest, not a re-split).
func ReblockSegmented(s *Segmented, blockSize int) *Segmented {
	return &Segmented{idx: Reblock(s.idx, blockSize), bounds: s.bounds}
}

// normBlockSize maps the public block-size convention (0 default, < 0
// flat) onto the internal one (blockCap 0 = flat), clamping to
// MaxBlockSize so every built layout stays codec-readable.
func normBlockSize(n int) int {
	if n == 0 {
		return DefaultBlockSize
	}
	if n < 0 {
		return 0
	}
	if n > MaxBlockSize {
		return MaxBlockSize
	}
	return n
}

// StorageStats describes the posting-storage footprint of an index.
type StorageStats struct {
	Postings int64 // total postings across the dictionary
	Blocks   int64 // posting blocks (0 for a flat layout)
	// Bytes is the posting payload: encoded bytes plus block headers for
	// the compressed layout, 8 bytes per posting for the flat one.
	Bytes           int64
	BlockSize       int     // block capacity; 0 = flat
	BytesPerPosting float64 // Bytes / Postings (0 for an empty index)
}

// Storage reports the posting-storage footprint — the number the
// compression exists to shrink. /stats, cmd/buildindex and cmd/footprint
// surface it; benchmarks report BytesPerPosting next to ns/op.
func (x *Index) Storage() StorageStats {
	st := StorageStats{BlockSize: x.blockCap}
	for id := range x.plists {
		pl := &x.plists[id]
		st.Postings += int64(pl.n)
		if pl.flat != nil {
			st.Bytes += int64(len(pl.flat)) * 8
			continue
		}
		st.Blocks += int64(len(pl.blocks))
		st.Bytes += int64(len(pl.data)) + int64(len(pl.blocks))*blockHeaderBytes
	}
	if st.Postings > 0 {
		st.BytesPerPosting = float64(st.Bytes) / float64(st.Postings)
	}
	return st
}
