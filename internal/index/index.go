// Package index implements the inverted-index substrate of the search
// engine: a document-at-a-time index with term dictionary, frequency
// postings, document lengths and collection statistics — everything the
// DFR ranking models of package ranking need. It replaces the Terrier
// index of the paper's experimental setup (§5).
//
// The index is token-agnostic: callers analyze text (package text) before
// adding documents, so index and query processing are guaranteed to agree
// on the analysis chain.
package index

import (
	"errors"
	"fmt"
	"sort"
)

// Posting records one (document, term frequency) pair. Doc is the internal
// document number assigned in insertion order.
type Posting struct {
	Doc int32
	TF  int32
}

// TermStats carries the per-term statistics ranking models consume.
type TermStats struct {
	ID int32 // internal term number
	DF int64 // document frequency: #docs containing the term
	CF int64 // collection frequency: total occurrences in the collection
}

// CollectionStats carries the collection-wide statistics ranking models
// consume.
type CollectionStats struct {
	NumDocs     int64
	TotalTokens int64
	AvgDocLen   float64
}

// Builder accumulates documents and produces an immutable Index.
type Builder struct {
	docIDs   []string
	docLens  []int32
	seen     map[string]bool
	terms    map[string]int32
	postings [][]Posting
	cf       []int64
	total    int64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		seen:  make(map[string]bool),
		terms: make(map[string]int32),
	}
}

// ErrDuplicateDoc is returned when the same external document ID is added
// twice.
var ErrDuplicateDoc = errors.New("index: duplicate document ID")

// Add indexes one document given its external ID and analyzed tokens.
// Documents are assigned consecutive internal numbers in insertion order.
func (b *Builder) Add(docID string, tokens []string) error {
	if b.seen[docID] {
		return fmt.Errorf("%w: %q", ErrDuplicateDoc, docID)
	}
	b.seen[docID] = true
	doc := int32(len(b.docIDs))
	b.docIDs = append(b.docIDs, docID)
	b.docLens = append(b.docLens, int32(len(tokens)))
	b.total += int64(len(tokens))

	// Per-document term counts.
	counts := make(map[string]int32, len(tokens))
	for _, t := range tokens {
		counts[t]++
	}
	// Deterministic term-id assignment: sort new terms of this doc.
	newTerms := make([]string, 0)
	for t := range counts {
		if _, ok := b.terms[t]; !ok {
			newTerms = append(newTerms, t)
		}
	}
	sort.Strings(newTerms)
	for _, t := range newTerms {
		b.terms[t] = int32(len(b.postings))
		b.postings = append(b.postings, nil)
		b.cf = append(b.cf, 0)
	}
	for t, tf := range counts {
		id := b.terms[t]
		b.postings[id] = append(b.postings[id], Posting{Doc: doc, TF: tf})
		b.cf[id] += int64(tf)
	}
	return nil
}

// NumDocs returns the number of documents added so far.
func (b *Builder) NumDocs() int { return len(b.docIDs) }

// Build finalizes the index. The Builder must not be used afterwards.
//
// Term IDs are renumbered so the dictionary is lexicographically sorted:
// ascending term ID order equals ascending string order. The similarity
// substrate (textsim.Lexicon seeded from this dictionary) depends on that
// invariant to keep interned-vector merges in the same order as
// string-sorted merges, and the v2 codec persists it.
func (b *Builder) Build() *Index {
	// Postings were appended in doc order already (Add assigns increasing
	// doc numbers), so no per-term sort is needed; assert order in debug
	// builds by construction.
	termList := make([]string, len(b.terms))
	for t, id := range b.terms {
		termList[id] = t
	}
	termList, b.postings, b.cf = sortDictionary(termList, b.postings, b.cf, b.terms)
	idx := &Index{
		docIDs:   b.docIDs,
		docLens:  b.docLens,
		terms:    b.terms,
		termList: termList,
		postings: b.postings,
		cf:       b.cf,
		total:    b.total,
	}
	return idx
}

// sortDictionary renumbers term IDs so termList is lexicographically
// sorted, permuting postings and cf to match and rewriting the ids map
// values in place. Already-sorted dictionaries pass through untouched.
func sortDictionary(termList []string, postings [][]Posting, cf []int64, ids map[string]int32) ([]string, [][]Posting, []int64) {
	if sort.StringsAreSorted(termList) {
		return termList, postings, cf
	}
	sorted := make([]string, len(termList))
	copy(sorted, termList)
	sort.Strings(sorted)
	newPostings := make([][]Posting, len(sorted))
	newCF := make([]int64, len(sorted))
	for newID, t := range sorted {
		old := ids[t]
		newPostings[newID] = postings[old]
		newCF[newID] = cf[old]
		ids[t] = int32(newID)
	}
	return sorted, newPostings, newCF
}

// Index is an immutable inverted index.
type Index struct {
	docIDs   []string
	docLens  []int32
	terms    map[string]int32
	termList []string
	postings [][]Posting
	cf       []int64
	total    int64
}

// NumDocs returns the number of indexed documents.
func (x *Index) NumDocs() int { return len(x.docIDs) }

// NumTerms returns the dictionary size.
func (x *Index) NumTerms() int { return len(x.termList) }

// DocID maps an internal document number to its external ID.
func (x *Index) DocID(doc int32) string { return x.docIDs[doc] }

// DocLen returns the token count of the document.
func (x *Index) DocLen(doc int32) int32 { return x.docLens[doc] }

// Stats returns the collection statistics.
func (x *Index) Stats() CollectionStats {
	n := int64(len(x.docIDs))
	avg := 0.0
	if n > 0 {
		avg = float64(x.total) / float64(n)
	}
	return CollectionStats{NumDocs: n, TotalTokens: x.total, AvgDocLen: avg}
}

// Lookup returns the statistics of term, if indexed.
func (x *Index) Lookup(term string) (TermStats, bool) {
	id, ok := x.terms[term]
	if !ok {
		return TermStats{}, false
	}
	return TermStats{ID: id, DF: int64(len(x.postings[id])), CF: x.cf[id]}, true
}

// Postings returns the postings list of term (nil if absent). The returned
// slice is shared and must not be modified.
func (x *Index) Postings(term string) []Posting {
	id, ok := x.terms[term]
	if !ok {
		return nil
	}
	return x.postings[id]
}

// PostingsByID returns the postings list for an internal term number.
func (x *Index) PostingsByID(id int32) []Posting { return x.postings[id] }

// Term returns the term string for an internal term number.
func (x *Index) Term(id int32) string { return x.termList[id] }

// Terms returns the dictionary in term-ID order, which Build guarantees
// is lexicographic. The slice is shared with the index and must not be
// modified — it exists so the similarity layer can seed a term lexicon
// without copying the dictionary.
func (x *Index) Terms() []string { return x.termList }

// DF returns the document frequency of an internal term number: the
// length of its posting list. Together with NumTerms/NumDocs it is the
// allocation-free way to walk the dictionary's frequency statistics
// (it satisfies textsim.DocFreqSource).
func (x *Index) DF(id int32) int { return len(x.postings[id]) }

// DocFreqs returns a term→document-frequency map (for IDF computations
// over the whole collection).
//
// Deprecated: the map costs one allocation per dictionary term. Walk the
// dictionary with NumTerms/Term/DF instead (textsim.ComputeIDFFromIndex
// does, with zero map allocation); DocFreqs remains for external callers
// and tests.
func (x *Index) DocFreqs() map[string]int {
	df := make(map[string]int, len(x.termList))
	for id, t := range x.termList {
		df[t] = len(x.postings[id])
	}
	return df
}
