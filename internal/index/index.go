// Package index implements the inverted-index substrate of the search
// engine: a document-at-a-time index with term dictionary, frequency
// postings, document lengths and collection statistics — everything the
// DFR ranking models of package ranking need. It replaces the Terrier
// index of the paper's experimental setup (§5).
//
// Postings are stored block-compressed by default (see block.go): fixed-
// capacity blocks of delta-varint (docID, tf) pairs behind per-block
// max-doc headers, traversed through PostingIterator. A flat []Posting
// layout remains available (Builder.SetBlockSize(-1), engine
// DisableCompression) and is bit-identical in retrieval output — only
// memory and traversal cost differ.
//
// The index is token-agnostic: callers analyze text (package text) before
// adding documents, so index and query processing are guaranteed to agree
// on the analysis chain.
package index

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Posting records one (document, term frequency) pair. Doc is the internal
// document number assigned in insertion order.
type Posting struct {
	Doc int32
	TF  int32
}

// TermStats carries the per-term statistics ranking models consume.
type TermStats struct {
	ID int32 // internal term number
	DF int64 // document frequency: #docs containing the term
	CF int64 // collection frequency: total occurrences in the collection
}

// CollectionStats carries the collection-wide statistics ranking models
// consume.
type CollectionStats struct {
	NumDocs     int64
	TotalTokens int64
	AvgDocLen   float64
}

// Builder accumulates documents and produces an immutable Index.
type Builder struct {
	docIDs    []string
	docLens   []int32
	seen      map[string]bool
	terms     map[string]int32
	postings  [][]Posting
	cf        []int64
	total     int64
	blockSize int
}

// NewBuilder returns an empty Builder producing the default
// block-compressed posting layout.
func NewBuilder() *Builder {
	return &Builder{
		seen:  make(map[string]bool),
		terms: make(map[string]int32),
	}
}

// SetBlockSize tunes the posting layout of the built index: n > 0 sets
// the block capacity, 0 keeps DefaultBlockSize, n < 0 builds flat
// (uncompressed) []Posting lists. Retrieval output is bit-identical at
// any setting; only memory footprint and traversal cost differ.
func (b *Builder) SetBlockSize(n int) { b.blockSize = n }

// ErrDuplicateDoc is returned when the same external document ID is added
// twice.
var ErrDuplicateDoc = errors.New("index: duplicate document ID")

// Add indexes one document given its external ID and analyzed tokens.
// Documents are assigned consecutive internal numbers in insertion order.
func (b *Builder) Add(docID string, tokens []string) error {
	if b.seen[docID] {
		return fmt.Errorf("%w: %q", ErrDuplicateDoc, docID)
	}
	b.seen[docID] = true
	doc := int32(len(b.docIDs))
	b.docIDs = append(b.docIDs, docID)
	b.docLens = append(b.docLens, int32(len(tokens)))
	b.total += int64(len(tokens))

	// Per-document term counts.
	counts := make(map[string]int32, len(tokens))
	for _, t := range tokens {
		counts[t]++
	}
	// Deterministic term-id assignment: sort new terms of this doc.
	newTerms := make([]string, 0)
	for t := range counts {
		if _, ok := b.terms[t]; !ok {
			newTerms = append(newTerms, t)
		}
	}
	sort.Strings(newTerms)
	for _, t := range newTerms {
		b.terms[t] = int32(len(b.postings))
		b.postings = append(b.postings, nil)
		b.cf = append(b.cf, 0)
	}
	for t, tf := range counts {
		id := b.terms[t]
		b.postings[id] = append(b.postings[id], Posting{Doc: doc, TF: tf})
		b.cf[id] += int64(tf)
	}
	return nil
}

// NumDocs returns the number of documents added so far.
func (b *Builder) NumDocs() int { return len(b.docIDs) }

// Build finalizes the index. The Builder must not be used afterwards.
//
// Term IDs are renumbered so the dictionary is lexicographically sorted:
// ascending term ID order equals ascending string order. The similarity
// substrate (textsim.Lexicon seeded from this dictionary) depends on that
// invariant to keep interned-vector merges in the same order as
// string-sorted merges, and the v2 codec persists it. Postings are then
// laid out per SetBlockSize (block-compressed by default).
func (b *Builder) Build() *Index {
	// Postings were appended in doc order already (Add assigns increasing
	// doc numbers), so no per-term sort is needed; assert order in debug
	// builds by construction.
	termList := make([]string, len(b.terms))
	for t, id := range b.terms {
		termList[id] = t
	}
	termList, b.postings, b.cf = sortDictionary(termList, b.postings, b.cf, b.terms)
	blockCap := normBlockSize(b.blockSize)
	plists, nBlocks := assemblePostings(b.postings, blockCap)
	idx := &Index{
		docIDs:   b.docIDs,
		docLens:  b.docLens,
		terms:    b.terms,
		termList: termList,
		plists:   plists,
		blockCap: blockCap,
		nBlocks:  nBlocks,
		cf:       b.cf,
		total:    b.total,
	}
	return idx
}

// sortDictionary renumbers term IDs so termList is lexicographically
// sorted, permuting postings and cf to match and rewriting the ids map
// values in place. Already-sorted dictionaries pass through untouched.
func sortDictionary(termList []string, postings [][]Posting, cf []int64, ids map[string]int32) ([]string, [][]Posting, []int64) {
	if sort.StringsAreSorted(termList) {
		return termList, postings, cf
	}
	sorted := make([]string, len(termList))
	copy(sorted, termList)
	sort.Strings(sorted)
	newPostings := make([][]Posting, len(sorted))
	newCF := make([]int64, len(sorted))
	for newID, t := range sorted {
		old := ids[t]
		newPostings[newID] = postings[old]
		newCF[newID] = cf[old]
		ids[t] = int32(newID)
	}
	return sorted, newPostings, newCF
}

// Index is an immutable inverted index. The one exception to the
// immutability is the max-score table sets (SetMaxScores and
// SetBlockMaxScores), which must be populated while the index is still
// privately owned — at build or load time, before it is shared across
// goroutines.
type Index struct {
	docIDs   []string
	docLens  []int32
	terms    map[string]int32
	termList []string
	plists   []postingList
	blockCap int // posting block capacity; 0 = flat layout
	nBlocks  int // total blocks across the dictionary
	cf       []int64
	total    int64
	// maxScores holds per-term upper bounds on a single posting's model
	// score contribution, keyed by the scoring function's identity
	// (ranking.Boundable.BoundKey()). MaxScore dynamic pruning consumes
	// these; the codec persists them (since v4).
	maxScores map[string][]float64
	// blockMax refines maxScores to block granularity: per key, one upper
	// bound per posting block, indexed by the index-wide block numbering
	// (postingList.blk0). Only meaningful for the compressed layout; the
	// v5 codec persists it.
	blockMax map[string][]float64

	// Mapped-storage state (RIDX7, see mapped.go / codec_v7.go). An
	// owned index leaves all of this zero. mapping refcounts the backing
	// byte region; unverified marks posting bytes that were never
	// validation-decoded at load, switching iterators to the defensive
	// block decoder; terms is nil in this layout (termID binary-searches
	// the sorted termList instead); payOffs/payBlob are the optional
	// per-document payload sections.
	mapping    *Mapping
	closed     atomic.Bool
	unverified bool
	payOffs    []uint64
	payBlob    []byte
}

// iterRange builds a posting iterator over [lo, hi) of the term's list,
// wiring the index's storage contract into it: mapped indexes are
// retained for the iterator's lifetime (Release drops the reference)
// and decode blocks defensively.
func (x *Index) iterRange(id, lo, hi int32) PostingIterator {
	it := x.plists[id].iter(lo, hi)
	it.safe = x.unverified
	if x.mapping != nil {
		x.mapping.retain()
		it.m = x.mapping
	}
	return it
}

// NumDocs returns the number of indexed documents.
func (x *Index) NumDocs() int { return len(x.docIDs) }

// NumTerms returns the dictionary size.
func (x *Index) NumTerms() int { return len(x.termList) }

// Blocked reports whether postings are stored block-compressed.
func (x *Index) Blocked() bool { return x.blockCap > 0 }

// BlockSize returns the posting block capacity (0 for the flat layout).
func (x *Index) BlockSize() int { return x.blockCap }

// NumBlocks returns the total posting-block count across the dictionary
// (0 for the flat layout) — the length of every block-max table.
func (x *Index) NumBlocks() int { return x.nBlocks }

// DocID maps an internal document number to its external ID.
func (x *Index) DocID(doc int32) string { return x.docIDs[doc] }

// DocLen returns the token count of the document.
func (x *Index) DocLen(doc int32) int32 { return x.docLens[doc] }

// Stats returns the collection statistics.
func (x *Index) Stats() CollectionStats {
	n := int64(len(x.docIDs))
	avg := 0.0
	if n > 0 {
		avg = float64(x.total) / float64(n)
	}
	return CollectionStats{NumDocs: n, TotalTokens: x.total, AvgDocLen: avg}
}

// Lookup returns the statistics of term, if indexed.
func (x *Index) Lookup(term string) (TermStats, bool) {
	id, ok := x.termID(term)
	if !ok {
		return TermStats{}, false
	}
	return TermStats{ID: id, DF: int64(x.plists[id].n), CF: x.cf[id]}, true
}

// LookupIter returns the statistics and a posting iterator for term in
// ONE dictionary probe — the hot-path entry every evaluator uses. The
// iterator must be Released when traversal ends.
func (x *Index) LookupIter(term string) (TermStats, PostingIterator, bool) {
	id, ok := x.termID(term)
	if !ok {
		return TermStats{}, PostingIterator{done: true}, false
	}
	pl := &x.plists[id]
	return TermStats{ID: id, DF: int64(pl.n), CF: x.cf[id]}, x.iterRange(id, 0, math.MaxInt32), true
}

// PostingIter returns an iterator over the full posting list of an
// internal term number. Release it when done.
func (x *Index) PostingIter(id int32) PostingIterator {
	return x.iterRange(id, 0, math.MaxInt32)
}

// LookupPostings returns the statistics and postings of term in one
// dictionary probe, materializing the list. Flat layouts return the
// shared slice (do not modify); the compressed layout decodes into a
// fresh allocation per call — evaluators use LookupIter instead and
// stream block at a time.
func (x *Index) LookupPostings(term string) (TermStats, []Posting, bool) {
	id, ok := x.termID(term)
	if !ok {
		return TermStats{}, nil, false
	}
	pl := &x.plists[id]
	return TermStats{ID: id, DF: int64(pl.n), CF: x.cf[id]}, pl.materialize(x.unverified), true
}

// Postings returns the postings of term (nil if absent), materializing
// under the compressed layout — see LookupPostings. The flat layout's
// slice is shared and must not be modified.
func (x *Index) Postings(term string) []Posting {
	id, ok := x.termID(term)
	if !ok {
		return nil
	}
	return x.plists[id].materialize(x.unverified)
}

// PostingsByID returns the postings for an internal term number,
// materializing under the compressed layout.
func (x *Index) PostingsByID(id int32) []Posting { return x.plists[id].materialize(x.unverified) }

// Term returns the term string for an internal term number.
func (x *Index) Term(id int32) string { return x.termList[id] }

// Terms returns the dictionary in term-ID order, which Build guarantees
// is lexicographic. The slice is shared with the index and must not be
// modified — it exists so the similarity layer can seed a term lexicon
// without copying the dictionary.
func (x *Index) Terms() []string { return x.termList }

// DF returns the document frequency of an internal term number: the
// length of its posting list. Together with NumTerms/NumDocs it is the
// allocation-free way to walk the dictionary's frequency statistics
// (it satisfies textsim.DocFreqSource).
func (x *Index) DF(id int32) int { return int(x.plists[id].n) }

// MaxScores returns the per-term maximum score-contribution table
// registered under key, or nil if none is. The table is indexed by
// internal term ID: entry t is an upper bound on the score any single
// posting of term t can contribute under the scoring function key
// identifies. The returned slice is shared and must not be modified.
func (x *Index) MaxScores(key string) []float64 { return x.maxScores[key] }

// MaxScoreKeys returns the registered max-score table keys in sorted
// order (stats endpoints and the codec rely on the determinism).
func (x *Index) MaxScoreKeys() []string {
	keys := make([]string, 0, len(x.maxScores))
	for k := range x.maxScores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SetMaxScores registers a max-score table under key, replacing any
// previous table with that key. The table must have one entry per
// dictionary term, and every entry must be a finite nonnegative bound —
// the pruning machinery treats the values as proof that postings beyond
// them cannot exist. Like the rest of index construction this is NOT safe
// for concurrent use: call it while the index is still privately owned
// (engine build/load time), never after the index is shared.
func (x *Index) SetMaxScores(key string, scores []float64) error {
	if len(scores) != len(x.termList) {
		return fmt.Errorf("index: max-score table %q has %d entries for %d terms",
			key, len(scores), len(x.termList))
	}
	for i, v := range scores {
		if !(v >= 0) || v > math.MaxFloat64 {
			return fmt.Errorf("index: max-score table %q entry %d is %v, want finite >= 0", key, i, v)
		}
	}
	if x.maxScores == nil {
		x.maxScores = make(map[string][]float64, 4)
	}
	x.maxScores[key] = scores
	return nil
}

// BlockMaxScores returns the per-block maximum score-contribution table
// registered under key (indexed by the index-wide block numbering), or
// nil. The returned slice is shared and must not be modified.
func (x *Index) BlockMaxScores(key string) []float64 { return x.blockMax[key] }

// BlockMaxKeys returns the registered block-max table keys in sorted
// order.
func (x *Index) BlockMaxKeys() []string {
	keys := make([]string, 0, len(x.blockMax))
	for k := range x.blockMax {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TermBlockMax returns the slice of key's block-max table covering the
// given term's blocks (aligned with the term's block sequence), or nil
// when the table or the compressed layout is absent. Evaluators attach it
// to the term's iterator via SetBlockMax.
func (x *Index) TermBlockMax(key string, id int32) []float64 {
	t := x.blockMax[key]
	if t == nil {
		return nil
	}
	pl := &x.plists[id]
	if pl.blocks == nil {
		return nil
	}
	return t[pl.blk0 : int(pl.blk0)+len(pl.blocks)]
}

// SetBlockMaxScores registers a block-max table under key: one finite
// nonnegative upper bound per posting block, in index-wide block order.
// Only valid on the compressed layout. Same ownership contract as
// SetMaxScores: call while the index is privately owned.
func (x *Index) SetBlockMaxScores(key string, scores []float64) error {
	if !x.Blocked() {
		return fmt.Errorf("index: block-max table %q on a flat-layout index", key)
	}
	if len(scores) != x.nBlocks {
		return fmt.Errorf("index: block-max table %q has %d entries for %d blocks",
			key, len(scores), x.nBlocks)
	}
	for i, v := range scores {
		if !(v >= 0) || v > math.MaxFloat64 {
			return fmt.Errorf("index: block-max table %q entry %d is %v, want finite >= 0", key, i, v)
		}
	}
	if x.blockMax == nil {
		x.blockMax = make(map[string][]float64, 4)
	}
	x.blockMax[key] = scores
	return nil
}

// ComputeMaxScores walks every posting once and returns the per-term
// maximum of score(tf, docLen, termStats, collectionStats) — the table
// MaxScore pruning consumes. Negative scores are floored at 0 so the
// result is always a valid SetMaxScores table; scoring functions meant
// for pruning are nonnegative anyway (ranking.Boundable's contract).
func (x *Index) ComputeMaxScores(score func(tf, docLen float64, t TermStats, c CollectionStats) float64) []float64 {
	c := x.Stats()
	out := make([]float64, len(x.termList))
	for id := range x.plists {
		pl := &x.plists[id]
		t := TermStats{ID: int32(id), DF: int64(pl.n), CF: x.cf[id]}
		max := 0.0
		it := x.iterRange(int32(id), 0, math.MaxInt32)
		for blk := it.NextBlock(); blk != nil; blk = it.NextBlock() {
			for _, p := range blk {
				if s := score(float64(p.TF), float64(x.docLens[p.Doc]), t, c); s > max {
					max = s
				}
			}
		}
		it.Release()
		out[id] = max
	}
	return out
}

// ComputeBlockMaxScores is ComputeMaxScores at block granularity: one
// pass over every posting producing, per block, the maximum score any of
// its postings can contribute (floored at 0), in index-wide block order —
// a valid SetBlockMaxScores table. The per-term maximum is the max over
// the term's entries, so callers needing both tables can derive one from
// the other exactly. Returns nil on a flat layout.
func (x *Index) ComputeBlockMaxScores(score func(tf, docLen float64, t TermStats, c CollectionStats) float64) []float64 {
	if !x.Blocked() {
		return nil
	}
	c := x.Stats()
	out := make([]float64, x.nBlocks)
	scratch := blockScratch.Get().(*[]Posting)
	defer blockScratch.Put(scratch)
	for id := range x.plists {
		pl := &x.plists[id]
		t := TermStats{ID: int32(id), DF: int64(pl.n), CF: x.cf[id]}
		base := int32(-1)
		for bi, h := range pl.blocks {
			if bi > 0 {
				base = pl.blocks[bi-1].maxDoc
			}
			var blk []Posting
			if x.unverified {
				end := uint64(len(pl.data))
				if bi+1 < len(pl.blocks) {
					end = uint64(pl.blocks[bi+1].off)
				}
				dec, ok := decodeBlockSafe((*scratch)[:0], pl.data, h, base, end)
				if !ok {
					// Corrupt mapped block: the iterator path ends the
					// list at this block, so no posting of it is ever
					// served and a 0 bound stays sound.
					*scratch = dec[:0]
					continue
				}
				blk = dec
			} else {
				blk = decodeBlock((*scratch)[:0], pl.data, h, base)
			}
			*scratch = blk[:0]
			max := 0.0
			for _, p := range blk {
				if s := score(float64(p.TF), float64(x.docLens[p.Doc]), t, c); s > max {
					max = s
				}
			}
			out[int(pl.blk0)+bi] = max
		}
	}
	return out
}

// DocFreqs returns a term→document-frequency map (for IDF computations
// over the whole collection).
//
// Deprecated: the map costs one allocation per dictionary term. Walk the
// dictionary with NumTerms/Term/DF instead (textsim.ComputeIDFFromIndex
// does, with zero map allocation); DocFreqs remains for external callers
// and tests.
func (x *Index) DocFreqs() map[string]int {
	df := make(map[string]int, len(x.termList))
	for id, t := range x.termList {
		df[t] = int(x.plists[id].n)
	}
	return df
}
