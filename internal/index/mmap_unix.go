//go:build linux || darwin

package index

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared (one page-cache
// copy across every worker process mapping the same file). Returns the
// region and true; the caller owns the munmap.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func munmapBytes(b []byte) error { return syscall.Munmap(b) }

// madviseBytes applies the access-pattern hint to the region. The base
// address must be page-aligned, which mmap regions are by construction.
func madviseBytes(b []byte, a Advice) error {
	if len(b) == 0 {
		return nil
	}
	adv := syscall.MADV_NORMAL
	switch a {
	case AdviseRandom:
		adv = syscall.MADV_RANDOM
	case AdviseSequential:
		adv = syscall.MADV_SEQUENTIAL
	case AdviseWillNeed:
		adv = syscall.MADV_WILLNEED
	}
	return syscall.Madvise(b, adv)
}
