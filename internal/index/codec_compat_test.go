package index

import (
	"bytes"
	"encoding/binary"
	"sort"
	"strings"
	"testing"
)

// writeLegacy emits a pre-bump RIDX1/RIDX2 stream for a hand-described
// index: the same byte layout as WriteTo but with the given legacy magic
// and no shard manifest, and the dictionary in whatever order the caller
// gives (v1 writers never sorted it; v2 writers did, so v2 callers must
// pass sorted terms). This is the frozen fixture generator for the
// backward-compatibility contract.
func writeLegacy(w *bytes.Buffer, magic string, docIDs []string, docLens []int32, total int64,
	terms []string, cf []int64, postings [][]Posting) {
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		w.Write(buf[:n])
	}
	writeString := func(s string) {
		writeUvarint(uint64(len(s)))
		w.WriteString(s)
	}
	w.WriteString(magic)
	writeUvarint(uint64(len(docIDs)))
	for i, id := range docIDs {
		writeString(id)
		writeUvarint(uint64(docLens[i]))
	}
	writeUvarint(uint64(total))
	writeUvarint(uint64(len(terms)))
	for id, term := range terms {
		writeString(term)
		writeUvarint(uint64(cf[id]))
		writeUvarint(uint64(len(postings[id])))
		prev := int32(-1)
		for _, p := range postings[id] {
			writeUvarint(uint64(p.Doc - prev))
			writeUvarint(uint64(p.TF))
			prev = p.Doc
		}
	}
}

// TestReadLegacyV1Fixture reads a pre-bump stream whose dictionary is
// deliberately NOT sorted (v1 writers used insertion order) and checks
// that the loaded index carries the sorted-dictionary invariant and the
// same logical content.
func TestReadLegacyV1Fixture(t *testing.T) {
	// Two docs, insertion-ordered dictionary: pie < apple is false, so the
	// stream order {pie, apple, mac} exercises the renumbering path.
	var buf bytes.Buffer
	writeLegacy(&buf, magicV1,
		[]string{"d1", "d2"}, []int32{3, 2}, 5,
		[]string{"pie", "apple", "mac"},
		[]int64{1, 3, 1},
		[][]Posting{
			{{Doc: 0, TF: 1}},                  // pie
			{{Doc: 0, TF: 2}, {Doc: 1, TF: 1}}, // apple
			{{Doc: 1, TF: 1}},                  // mac
		})

	x, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Terms(); !sort.StringsAreSorted(got) {
		t.Fatalf("loaded v1 dictionary not renumbered to sorted order: %v", got)
	}
	if x.NumDocs() != 2 || x.NumTerms() != 3 {
		t.Fatalf("shape: %d docs, %d terms", x.NumDocs(), x.NumTerms())
	}
	ts, ok := x.Lookup("apple")
	if !ok || ts.DF != 2 || ts.CF != 3 {
		t.Errorf("Lookup(apple) = %+v, %v", ts, ok)
	}
	if ts.ID != 0 {
		t.Errorf("apple should be term 0 after renumbering, got %d", ts.ID)
	}
	pl := x.Postings("apple")
	if len(pl) != 2 || pl[0] != (Posting{Doc: 0, TF: 2}) || pl[1] != (Posting{Doc: 1, TF: 1}) {
		t.Errorf("Postings(apple) = %v", pl)
	}
	if x.Term(2) != "pie" {
		t.Errorf("Term(2) = %q, want pie", x.Term(2))
	}
	if x.Stats().TotalTokens != 5 {
		t.Errorf("TotalTokens = %d", x.Stats().TotalTokens)
	}
}

// TestLegacyV1MatchesRebuild round-trips: an index built today, its terms
// re-serialized in a scrambled v1 layout, must load back logically equal
// to the original.
func TestLegacyV1MatchesRebuild(t *testing.T) {
	x := buildSmall(t)
	// Scramble the dictionary order (reverse-sorted) for the v1 stream.
	n := x.NumTerms()
	terms := make([]string, n)
	cf := make([]int64, n)
	postings := make([][]Posting, n)
	for i := 0; i < n; i++ {
		src := int32(n - 1 - i)
		terms[i] = x.Term(src)
		postings[i] = x.PostingsByID(src)
		st, _ := x.Lookup(terms[i])
		cf[i] = st.CF
	}
	docIDs := make([]string, x.NumDocs())
	docLens := make([]int32, x.NumDocs())
	for d := int32(0); d < int32(x.NumDocs()); d++ {
		docIDs[d] = x.DocID(d)
		docLens[d] = x.DocLen(d)
	}
	var buf bytes.Buffer
	writeLegacy(&buf, magicV1, docIDs, docLens, x.Stats().TotalTokens, terms, cf, postings)

	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !indexesEqual(x, got) {
		t.Error("v1 stream did not load back equal to the freshly built index")
	}
}

func TestWriteToEmitsV5(t *testing.T) {
	x := buildSmall(t)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), magicV5) {
		t.Errorf("stream starts with %q, want %q", buf.String()[:6], magicV5)
	}
}

// legacyStream serializes x in the given pre-bump layout: v2/v3 keep the
// built (sorted) dictionary order, v1 scrambles it (reverse-sorted) to
// also exercise the renumbering path. v3 additionally carries a
// single-shard manifest (the shape every v3 WriteTo without explicit
// segmentation produced); none of the three has a max-score block.
func legacyStream(t *testing.T, x *Index, magic string) *bytes.Buffer {
	t.Helper()
	n := x.NumTerms()
	terms := make([]string, n)
	cf := make([]int64, n)
	postings := make([][]Posting, n)
	for i := 0; i < n; i++ {
		src := int32(i)
		if magic == magicV1 {
			src = int32(n - 1 - i)
		}
		terms[i] = x.Term(src)
		postings[i] = x.PostingsByID(src)
		st, _ := x.Lookup(terms[i])
		cf[i] = st.CF
	}
	docIDs := make([]string, x.NumDocs())
	docLens := make([]int32, x.NumDocs())
	for d := int32(0); d < int32(x.NumDocs()); d++ {
		docIDs[d] = x.DocID(d)
		docLens[d] = x.DocLen(d)
	}
	var buf bytes.Buffer
	writeLegacy(&buf, magic, docIDs, docLens, x.Stats().TotalTokens, terms, cf, postings)
	if magic == magicV3 || magic == magicV4 {
		buf.WriteByte(1) // numShards = 1
		var vbuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(vbuf[:], uint64(len(docIDs)))
		buf.Write(vbuf[:n])
	}
	if magic == magicV4 {
		buf.WriteByte(0) // no max-score tables
	}
	return &buf
}

// TestLegacyStreamsLoadAsSingleShard is the read-compat half of the v3
// contract: RIDX1 and RIDX2 streams carry no shard manifest, so
// ReadSegmented must present them as one shard spanning the whole
// collection, logically equal to the source index.
func TestLegacyStreamsLoadAsSingleShard(t *testing.T) {
	x := buildSmall(t)
	for _, magic := range []string{magicV1, magicV2} {
		seg, err := ReadSegmented(legacyStream(t, x, magic))
		if err != nil {
			t.Fatalf("%q: %v", magic, err)
		}
		if seg.NumShards() != 1 {
			t.Fatalf("%q: NumShards = %d, want 1", magic, seg.NumShards())
		}
		lo, hi := seg.Shard(0).DocRange()
		if lo != 0 || int(hi) != x.NumDocs() {
			t.Errorf("%q: shard 0 covers [%d,%d), want [0,%d)", magic, lo, hi, x.NumDocs())
		}
		if !indexesEqual(x, seg.Index()) {
			t.Errorf("%q: loaded index differs from source", magic)
		}
	}
}

// TestLegacyStreamsCarryNoMaxScores is the read-compat half of the v4
// contract: RIDX1–RIDX3 streams predate the max-score block, so they load
// with an empty table set (the engine rebuilds the tables its model
// needs), logically equal to the source index otherwise.
func TestLegacyStreamsCarryNoMaxScores(t *testing.T) {
	x := buildSmall(t)
	for _, magic := range []string{magicV1, magicV2, magicV3} {
		got, err := Read(legacyStream(t, x, magic))
		if err != nil {
			t.Fatalf("%q: %v", magic, err)
		}
		if keys := got.MaxScoreKeys(); len(keys) != 0 {
			t.Errorf("%q: loaded with max-score tables %v, want none", magic, keys)
		}
		if !indexesEqual(x, got) {
			t.Errorf("%q: loaded index differs from source", magic)
		}
	}
}

// TestV4StreamLoadsReblocked is the read-compat half of the v5 contract:
// RIDX1–RIDX4 streams carry one implicit delta run per term, so loading
// must re-block them at DefaultBlockSize — logically equal to the source
// index, ready for block-level traversal, with no block-max tables (the
// engine rebuilds the ones its model needs).
func TestV4StreamLoadsReblocked(t *testing.T) {
	x := buildSmall(t)
	for _, magic := range []string{magicV1, magicV2, magicV3, magicV4} {
		got, err := Read(legacyStream(t, x, magic))
		if err != nil {
			t.Fatalf("%q: %v", magic, err)
		}
		if !got.Blocked() || got.BlockSize() != DefaultBlockSize {
			t.Errorf("%q: loaded layout blocked=%v size=%d, want re-blocked at %d",
				magic, got.Blocked(), got.BlockSize(), DefaultBlockSize)
		}
		if keys := got.BlockMaxKeys(); len(keys) != 0 {
			t.Errorf("%q: loaded with block-max tables %v, want none", magic, keys)
		}
		if !indexesEqual(x, got) {
			t.Errorf("%q: loaded index differs from source", magic)
		}
	}
}

// TestMaxScoreTablesRoundTrip writes an index carrying max-score tables
// and checks keys and values survive the round trip bit for bit, at
// several shard counts.
func TestMaxScoreTablesRoundTrip(t *testing.T) {
	x := buildSmall(t)
	tfTable := x.ComputeMaxScores(func(tf, docLen float64, _ TermStats, _ CollectionStats) float64 {
		return tf / (1 + docLen)
	})
	if err := x.SetMaxScores("TF", tfTable); err != nil {
		t.Fatal(err)
	}
	constTable := make([]float64, x.NumTerms())
	for i := range constTable {
		constTable[i] = 0.5 * float64(i)
	}
	if err := x.SetMaxScores("CONST", constTable); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		var buf bytes.Buffer
		if _, err := SegmentIndex(x, shards).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSegmented(&buf)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if keys := got.Index().MaxScoreKeys(); len(keys) != 2 || keys[0] != "CONST" || keys[1] != "TF" {
			t.Fatalf("shards=%d: keys = %v", shards, keys)
		}
		for key, want := range map[string][]float64{"TF": tfTable, "CONST": constTable} {
			gotTable := got.Index().MaxScores(key)
			if len(gotTable) != len(want) {
				t.Fatalf("shards=%d %q: %d entries, want %d", shards, key, len(gotTable), len(want))
			}
			for i := range want {
				if gotTable[i] != want[i] {
					t.Errorf("shards=%d %q[%d] = %v, want %v", shards, key, i, gotTable[i], want[i])
				}
			}
		}
	}
}

// TestCorruptMaxScoreBlocksRejected feeds a valid stream with its score-
// table tail (max-score block, block-max block) truncated or corrupted at
// various points: every variant must error, never panic.
func TestCorruptMaxScoreBlocksRejected(t *testing.T) {
	x := buildSmall(t)
	table := make([]float64, x.NumTerms())
	for i := range table {
		table[i] = float64(i) + 0.25
	}
	if err := x.SetMaxScores("T", table); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// The tail: max-score table count byte, key ("T" + length byte), the
	// float64 entries, then the block-max table count byte.
	blockLen := 1 + 2 + 8*x.NumTerms() + 1
	for cut := 1; cut <= blockLen; cut++ {
		if _, err := Read(bytes.NewReader(full[:len(full)-cut])); err == nil {
			t.Errorf("stream truncated by %d bytes accepted", cut)
		}
	}
	// A NaN entry violates the finite-nonnegative contract. The last
	// max-score float sits just before the trailing block-max count byte.
	nan := append([]byte(nil), full...)
	for i := 0; i < 8; i++ {
		nan[len(nan)-2-i] = 0xff
	}
	if _, err := Read(bytes.NewReader(nan)); err == nil {
		t.Error("NaN max-score entry accepted")
	}
}

// TestSegmentedRoundTripV3 writes a multi-shard index and checks the
// manifest and the index both survive the v3 round trip.
func TestSegmentedRoundTripV3(t *testing.T) {
	x := buildSmall(t)
	for _, shards := range []int{1, 2, 3} {
		seg := SegmentIndex(x, shards)
		var buf bytes.Buffer
		if _, err := seg.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSegmented(&buf)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.NumShards() != seg.NumShards() {
			t.Fatalf("shards=%d: NumShards = %d", shards, got.NumShards())
		}
		for i := 0; i < seg.NumShards(); i++ {
			wlo, whi := seg.Shard(i).DocRange()
			glo, ghi := got.Shard(i).DocRange()
			if wlo != glo || whi != ghi {
				t.Errorf("shards=%d: shard %d range [%d,%d) != [%d,%d)", shards, i, glo, ghi, wlo, whi)
			}
		}
		if !indexesEqual(x, got.Index()) {
			t.Errorf("shards=%d: index did not round-trip", shards)
		}
	}
}

func TestBuildSortedDictionaryInvariant(t *testing.T) {
	x := buildSmall(t)
	terms := x.Terms()
	if !sort.StringsAreSorted(terms) {
		t.Fatalf("Build dictionary not sorted: %v", terms)
	}
	// IDs must agree with positions in the sorted list.
	for i, term := range terms {
		ts, ok := x.Lookup(term)
		if !ok || ts.ID != int32(i) {
			t.Errorf("Lookup(%q).ID = %d, want %d", term, ts.ID, i)
		}
	}
}
