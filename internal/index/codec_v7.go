package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"unsafe"
)

// RIDX7: the mapped layout. Unlike RIDX1–RIDX6 (varint streams decoded
// into heap structures at load), a v7 file stores every section in its
// exact in-memory wire shape at 8-byte-aligned offsets so OpenMapped can
// mmap the file and serve it in place: block headers, numeric tables and
// max-score tables are reinterpreted (not parsed), the delta-varint
// posting region is iterated lazily exactly like the heap layout, and
// the only per-open heap cost is one copy of the two string blobs
// (document IDs and the term dictionary) plus O(terms + blocks)
// validation — no posting byte is read at open.
//
// File layout (all integers little-endian):
//
//	0    magic "RIDX7\n" + 2 zero bytes
//	8    eleven u64 header fields:
//	         headerVersion (1), flags (bit 0: payload sections present),
//	         blockCap, numDocs, numTerms, nBlocks, totalTokens,
//	         numShards, numMaxTables, numBlockTables, fileSize
//	96   u64 section count (14), then 14 × {offset u64, length u64}
//	328  the sections, each at an 8-byte-aligned offset (the posting
//	     block region at a 4096-byte page-aligned offset), padded with
//	     zeros in between:
//
//	  docLens    numDocs × i32            document token counts
//	  docOffs    (numDocs+1) × u64        docID blob offsets
//	  docBlob    bytes                    concatenated external doc IDs
//	  termOffs   (numTerms+1) × u64       dictionary blob offsets
//	  termBlob   bytes                    concatenated terms, sorted
//	  cf         numTerms × i64           collection frequencies
//	  termRecs   numTerms × 32 B          {dataOff u64, dataLen u64,
//	                                       blk0 u32, nBlk u32, df u32, pad}
//	  blockHdrs  nBlocks × 12 B           {maxDoc i32, off u32, n i32},
//	                                      off relative to the term's data
//	  blockData  bytes (page-aligned)     delta-varint posting blocks,
//	                                      identical bytes to the v5 stream
//	  shards     numShards × i64          shard document counts
//	  maxTables  packed                   per table: keyLen u64, key,
//	                                      zero-pad to 8, numTerms × f64
//	  blkTables  packed                   same shape, nBlocks × f64
//	  payOffs    (numDocs+1) × u64        document payload offsets (flagged)
//	  payBlob    bytes                    concatenated document payloads
//
// The dictionary has no hash map in this layout: terms is left nil and
// lookups binary-search the sorted termList (the Build invariant v2+
// streams already guarantee, validated at open).
//
// Open-time validation is structural only — section bounds, alignment,
// monotone offset arrays, per-term block accounting (contiguous blk0,
// counts summing to df, strictly increasing in-range maxDocs, plausible
// byte spans) and table keys — never the posting bytes themselves.
// Posting blocks are therefore decoded DEFENSIVELY at query time
// (decodeBlockSafe): a hostile or corrupt block ends its iterator early
// instead of panicking. A truncated file fails the fileSize/section
// bounds checks at open, so no lazily-touched page can lie beyond EOF.

// MagicMapped is the RIDX7 file magic — the mapped layout OpenMapped
// serves in place. Callers (engine.OpenIndexFile, cmd tooling) sniff it
// to pick the mapped open path.
const MagicMapped = magicV7

const (
	magicV7         = "RIDX7\n"
	v7HeaderVersion = 1
	v7FlagPayload   = 1 << 0
	v7PageAlign     = 4096
	v7TermRecBytes  = 32
	v7NumSections   = 14
	// v7HeaderSize: 8 magic+pad, 11 u64 fields, section count, table.
	v7HeaderSize = 8 + 11*8 + 8 + v7NumSections*16
)

// Section indices into the v7 section table.
const (
	secDocLens = iota
	secDocOffs
	secDocBlob
	secTermOffs
	secTermBlob
	secCF
	secTermRecs
	secBlockHdrs
	secBlockData
	secShards
	secMaxTables
	secBlockTables
	secPayOffs
	secPayBlob
)

func roundUp(n, align int64) int64 { return (n + align - 1) / align * align }

// WriteMapped serializes the segmented index as a mappable RIDX7 file.
// payload, when non-nil, supplies a per-document body stored in the
// payload sections (the engine persists document bodies this way so a
// mapped index can snippet); nil writes no payload sections. A flat
// (uncompressed) index is re-blocked at DefaultBlockSize first — the
// mapped layout is always block-compressed.
func (s *Segmented) WriteMapped(w io.Writer, payload func(doc int32) string) (int64, error) {
	x := s.idx
	if !x.Blocked() {
		x = Reblock(x, 0)
	}
	numDocs := int64(x.NumDocs())
	numTerms := int64(x.NumTerms())

	// Gather blob and payload sizes.
	var docBlobLen int64
	for _, id := range x.docIDs {
		docBlobLen += int64(len(id))
	}
	var termBlobLen int64
	for _, t := range x.termList {
		termBlobLen += int64(len(t))
	}
	var blockDataLen int64
	for i := range x.plists {
		blockDataLen += int64(len(x.plists[i].data))
	}
	var payloads []string
	var payBlobLen int64
	flags := uint64(0)
	if payload != nil {
		flags |= v7FlagPayload
		payloads = make([]string, numDocs)
		for d := int64(0); d < numDocs; d++ {
			payloads[d] = payload(int32(d))
			payBlobLen += int64(len(payloads[d]))
		}
	}
	maxKeys := x.MaxScoreKeys()
	blkKeys := x.BlockMaxKeys()
	tableRegion := func(keys []string, entries int64) int64 {
		var n int64
		for _, k := range keys {
			n += 8 + roundUp(int64(len(k)), 8) + entries*8
		}
		return n
	}

	// Place the sections.
	type section struct{ off, len int64 }
	var secs [v7NumSections]section
	off := int64(v7HeaderSize)
	place := func(i int, n, align int64) {
		off = roundUp(off, align)
		secs[i] = section{off: off, len: n}
		off += n
	}
	place(secDocLens, 4*numDocs, 8)
	place(secDocOffs, 8*(numDocs+1), 8)
	place(secDocBlob, docBlobLen, 8)
	place(secTermOffs, 8*(numTerms+1), 8)
	place(secTermBlob, termBlobLen, 8)
	place(secCF, 8*numTerms, 8)
	place(secTermRecs, v7TermRecBytes*numTerms, 8)
	place(secBlockHdrs, blockHeaderBytes*int64(x.nBlocks), 8)
	place(secBlockData, blockDataLen, v7PageAlign)
	place(secShards, 8*int64(s.NumShards()), 8)
	place(secMaxTables, tableRegion(maxKeys, numTerms), 8)
	place(secBlockTables, tableRegion(blkKeys, int64(x.nBlocks)), 8)
	if payload != nil {
		place(secPayOffs, 8*(numDocs+1), 8)
		place(secPayBlob, payBlobLen, 8)
	} else {
		place(secPayOffs, 0, 8)
		place(secPayBlob, 0, 8)
	}
	fileSize := off

	bw := bufio.NewWriterSize(w, 1<<16)
	written := int64(0)
	var scratch [8]byte
	wr := func(p []byte) error {
		n, err := bw.Write(p)
		written += int64(n)
		return err
	}
	wu64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		return wr(scratch[:8])
	}
	wu32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		return wr(scratch[:4])
	}
	var zeros [v7PageAlign]byte
	padTo := func(target int64) error {
		for written < target {
			n := target - written
			if n > int64(len(zeros)) {
				n = int64(len(zeros))
			}
			if err := wr(zeros[:n]); err != nil {
				return err
			}
		}
		return nil
	}

	// Header.
	if err := wr([]byte(magicV7 + "\x00\x00")); err != nil {
		return written, err
	}
	for _, v := range []uint64{
		v7HeaderVersion, flags, uint64(x.blockCap), uint64(numDocs),
		uint64(numTerms), uint64(x.nBlocks), uint64(x.total),
		uint64(s.NumShards()), uint64(len(maxKeys)), uint64(len(blkKeys)),
		uint64(fileSize),
	} {
		if err := wu64(v); err != nil {
			return written, err
		}
	}
	if err := wu64(v7NumSections); err != nil {
		return written, err
	}
	for i := range secs {
		if err := wu64(uint64(secs[i].off)); err != nil {
			return written, err
		}
		if err := wu64(uint64(secs[i].len)); err != nil {
			return written, err
		}
	}

	begin := func(i int) error { return padTo(secs[i].off) }

	// docLens / docOffs / docBlob.
	if err := begin(secDocLens); err != nil {
		return written, err
	}
	for _, l := range x.docLens {
		if err := wu32(uint32(l)); err != nil {
			return written, err
		}
	}
	if err := begin(secDocOffs); err != nil {
		return written, err
	}
	at := uint64(0)
	for _, id := range x.docIDs {
		if err := wu64(at); err != nil {
			return written, err
		}
		at += uint64(len(id))
	}
	if err := wu64(at); err != nil {
		return written, err
	}
	if err := begin(secDocBlob); err != nil {
		return written, err
	}
	for _, id := range x.docIDs {
		if err := wr([]byte(id)); err != nil {
			return written, err
		}
	}

	// termOffs / termBlob.
	if err := begin(secTermOffs); err != nil {
		return written, err
	}
	at = 0
	for _, t := range x.termList {
		if err := wu64(at); err != nil {
			return written, err
		}
		at += uint64(len(t))
	}
	if err := wu64(at); err != nil {
		return written, err
	}
	if err := begin(secTermBlob); err != nil {
		return written, err
	}
	for _, t := range x.termList {
		if err := wr([]byte(t)); err != nil {
			return written, err
		}
	}

	// cf.
	if err := begin(secCF); err != nil {
		return written, err
	}
	for _, v := range x.cf {
		if err := wu64(uint64(v)); err != nil {
			return written, err
		}
	}

	// termRecs.
	if err := begin(secTermRecs); err != nil {
		return written, err
	}
	dataAt := uint64(0)
	for i := range x.plists {
		pl := &x.plists[i]
		if err := wu64(dataAt); err != nil {
			return written, err
		}
		if err := wu64(uint64(len(pl.data))); err != nil {
			return written, err
		}
		for _, v := range []uint32{uint32(pl.blk0), uint32(len(pl.blocks)), uint32(pl.n), 0} {
			if err := wu32(v); err != nil {
				return written, err
			}
		}
		dataAt += uint64(len(pl.data))
	}

	// blockHdrs.
	if err := begin(secBlockHdrs); err != nil {
		return written, err
	}
	for i := range x.plists {
		for _, h := range x.plists[i].blocks {
			if err := wu32(uint32(h.maxDoc)); err != nil {
				return written, err
			}
			if err := wu32(h.off); err != nil {
				return written, err
			}
			if err := wu32(uint32(h.n)); err != nil {
				return written, err
			}
		}
	}

	// blockData (page-aligned).
	if err := begin(secBlockData); err != nil {
		return written, err
	}
	for i := range x.plists {
		if err := wr(x.plists[i].data); err != nil {
			return written, err
		}
	}

	// shards.
	if err := begin(secShards); err != nil {
		return written, err
	}
	for i := 0; i < s.NumShards(); i++ {
		if err := wu64(uint64(s.bounds[i+1] - s.bounds[i])); err != nil {
			return written, err
		}
	}

	// Score-table regions.
	writeTables := func(i int, keys []string, tables map[string][]float64) error {
		if err := begin(i); err != nil {
			return err
		}
		for _, key := range keys {
			if err := wu64(uint64(len(key))); err != nil {
				return err
			}
			if err := wr([]byte(key)); err != nil {
				return err
			}
			if pad := roundUp(int64(len(key)), 8) - int64(len(key)); pad > 0 {
				if err := wr(zeros[:pad]); err != nil {
					return err
				}
			}
			for _, v := range tables[key] {
				if err := wu64(math.Float64bits(v)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := writeTables(secMaxTables, maxKeys, x.maxScores); err != nil {
		return written, err
	}
	if err := writeTables(secBlockTables, blkKeys, x.blockMax); err != nil {
		return written, err
	}

	// Payload sections.
	if payload != nil {
		if err := begin(secPayOffs); err != nil {
			return written, err
		}
		at = 0
		for _, p := range payloads {
			if err := wu64(at); err != nil {
				return written, err
			}
			at += uint64(len(p))
		}
		if err := wu64(at); err != nil {
			return written, err
		}
		if err := begin(secPayBlob); err != nil {
			return written, err
		}
		for _, p := range payloads {
			if err := wr([]byte(p)); err != nil {
				return written, err
			}
		}
	}
	if err := padTo(fileSize); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// OpenMapped maps the RIDX7 file at path and serves it in place: the
// returned index's posting iterators, block-max tables and dictionary
// read directly off the mapping. Open cost is O(terms + blocks)
// validation plus one heap copy of the two string blobs — the posting
// region is never touched. The caller owns one reference; Close drops
// it, and the region stays mapped until the last iterator or Retain
// holder drops too. A truncated or hostile file errors here — the
// section bounds are checked against the real file size so no lazy read
// can fault past EOF.
func OpenMapped(path string) (*Segmented, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < v7HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than a v7 header", ErrBadFormat, size)
	}
	const maxInt = int64(^uint(0) >> 1)
	if size > maxInt {
		return nil, fmt.Errorf("%w: file too large to map (%d bytes)", ErrBadFormat, size)
	}
	data, osMapped, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("index: mmap %s: %w", path, err)
	}
	m := &Mapping{data: data, os: osMapped}
	m.refs.Store(1)
	activeMappings.Add(1)
	x, sizes, err := parseV7(data, m)
	if err != nil {
		m.release()
		return nil, err
	}
	seg, ok := segmentedFromSizes(x, sizes)
	if !ok {
		m.release()
		return nil, fmt.Errorf("%w: shard manifest %v does not cover %d docs", ErrBadFormat, sizes, x.NumDocs())
	}
	// Posting blocks are reached by skip-heavy traversal; tell the
	// kernel not to read ahead. Advisory — errors are irrelevant.
	x.Advise(AdviseRandom)
	return seg, nil
}

// parseV7 builds an Index over a complete v7 byte region. m is the
// refcounted mapping backing data, or nil when data is an owned heap
// slab (the io.Reader compat path) — the index layout is identical
// either way, including defensive posting decode, since the posting
// bytes are not validated here. Validation is structural: every section
// bound, alignment and accounting invariant the in-place readers trust
// is checked before the index is returned, and a failure never panics.
func parseV7(data []byte, m *Mapping) (*Index, []int64, error) {
	fail := func(format string, args ...any) (*Index, []int64, error) {
		return nil, nil, fmt.Errorf("%w: v7: %s", ErrBadFormat, fmt.Sprintf(format, args...))
	}
	if len(data) < v7HeaderSize {
		return fail("%d bytes is smaller than the header", len(data))
	}
	if string(data[:len(magicV7)]) != magicV7 || data[6] != 0 || data[7] != 0 {
		return fail("bad magic")
	}
	u64at := func(off int) uint64 { return binary.LittleEndian.Uint64(data[off:]) }
	var h [11]uint64
	for i := range h {
		h[i] = u64at(8 + 8*i)
	}
	version, flags := h[0], h[1]
	blockCap, numDocs, numTerms, nBlocks := h[2], h[3], h[4], h[5]
	totalTokens, numShards, numMaxTables, numBlockTables := h[6], h[7], h[8], h[9]
	fileSize := h[10]
	if version != v7HeaderVersion {
		return fail("unknown header version %d", version)
	}
	if flags&^uint64(v7FlagPayload) != 0 {
		return fail("unknown flags %#x", flags)
	}
	if blockCap == 0 || blockCap > MaxBlockSize {
		return fail("blockCap %d out of range", blockCap)
	}
	if numDocs > 1<<31 || numTerms > 1<<31 || nBlocks > 1<<40 {
		return fail("implausible counts (docs %d, terms %d, blocks %d)", numDocs, numTerms, nBlocks)
	}
	if totalTokens > 1<<62 {
		return fail("implausible totalTokens %d", totalTokens)
	}
	if numShards == 0 || numShards > numDocs+1 {
		return fail("shard count %d out of range", numShards)
	}
	if numMaxTables > 1<<12 || numBlockTables > 1<<12 {
		return fail("implausible table counts (%d, %d)", numMaxTables, numBlockTables)
	}
	if fileSize < v7HeaderSize || fileSize > uint64(len(data)) {
		return fail("recorded fileSize %d vs %d real bytes", fileSize, len(data))
	}
	if n := u64at(96); n != v7NumSections {
		return fail("section count %d, want %d", n, v7NumSections)
	}
	type section struct{ off, len uint64 }
	var secs [v7NumSections]section
	for i := range secs {
		secs[i] = section{off: u64at(104 + 16*i), len: u64at(104 + 16*i + 8)}
		s := secs[i]
		if s.len > fileSize || s.off < v7HeaderSize || s.off > fileSize-s.len {
			return fail("section %d [%d,+%d) outside file of %d bytes", i, s.off, s.len, fileSize)
		}
		if s.off%8 != 0 {
			return fail("section %d offset %d not 8-aligned", i, s.off)
		}
	}
	if secs[secBlockData].len > 0 && secs[secBlockData].off%v7PageAlign != 0 {
		return fail("block data offset %d not page-aligned", secs[secBlockData].off)
	}
	want := func(i int, length uint64, what string) error {
		if secs[i].len != length {
			return fmt.Errorf("%w: v7: %s section is %d bytes, want %d", ErrBadFormat, what, secs[i].len, length)
		}
		return nil
	}
	payOffsLen := uint64(0)
	if flags&v7FlagPayload != 0 {
		payOffsLen = 8 * (numDocs + 1)
	}
	for _, c := range []struct {
		i    int
		len  uint64
		what string
	}{
		{secDocLens, 4 * numDocs, "docLens"},
		{secDocOffs, 8 * (numDocs + 1), "docOffs"},
		{secTermOffs, 8 * (numTerms + 1), "termOffs"},
		{secCF, 8 * numTerms, "cf"},
		{secTermRecs, v7TermRecBytes * numTerms, "termRecs"},
		{secBlockHdrs, blockHeaderBytes * nBlocks, "blockHdrs"},
		{secShards, 8 * numShards, "shards"},
		{secPayOffs, payOffsLen, "payOffs"},
	} {
		if err := want(c.i, c.len, c.what); err != nil {
			return nil, nil, err
		}
	}
	if flags&v7FlagPayload == 0 && secs[secPayBlob].len != 0 {
		return fail("payload blob without payload flag")
	}
	bytesOf := func(i int) []byte { return data[secs[i].off : secs[i].off+secs[i].len] }

	// Strings: one heap copy per blob, sliced into per-entry string
	// headers — document IDs and terms must not dangle off the mapping
	// (they escape into results, caches and the similarity lexicon).
	splitBlob := func(offsSec, blobSec int, n uint64, what string) ([]string, error) {
		offs := viewU64(bytesOf(offsSec))
		blob := bytesOf(blobSec)
		if offs[0] != 0 || offs[n] != uint64(len(blob)) {
			return nil, fmt.Errorf("%w: v7: %s offsets do not cover the blob", ErrBadFormat, what)
		}
		heap := string(blob)
		out := make([]string, n)
		for i := uint64(0); i < n; i++ {
			if offs[i+1] < offs[i] || offs[i+1] > uint64(len(heap)) {
				return nil, fmt.Errorf("%w: v7: %s offsets not monotone at %d", ErrBadFormat, what, i)
			}
			out[i] = heap[offs[i]:offs[i+1]]
		}
		return out, nil
	}
	docIDs, err := splitBlob(secDocOffs, secDocBlob, numDocs, "docID")
	if err != nil {
		return nil, nil, err
	}
	termList, err := splitBlob(secTermOffs, secTermBlob, numTerms, "term")
	if err != nil {
		return nil, nil, err
	}
	for i := 1; i < len(termList); i++ {
		if termList[i] <= termList[i-1] {
			return fail("dictionary not strictly sorted at term %d", i)
		}
	}
	docLens := viewI32(bytesOf(secDocLens))
	for i, l := range docLens {
		if l < 0 {
			return fail("negative docLen at doc %d", i)
		}
	}

	// Per-term posting records over the shared block header and data
	// sections. blk0 must tile the header section exactly and every
	// header must uphold what the lazy decoder trusts about structure
	// (never about the posting bytes — those stay defensive).
	hdrs := viewHeaders(bytesOf(secBlockHdrs))
	blockData := bytesOf(secBlockData)
	recs := bytesOf(secTermRecs)
	plists := make([]postingList, numTerms)
	cf := viewI64(bytesOf(secCF))
	runBlk := uint64(0)
	for t := uint64(0); t < numTerms; t++ {
		rec := recs[t*v7TermRecBytes:]
		dataOff := binary.LittleEndian.Uint64(rec)
		dataLen := binary.LittleEndian.Uint64(rec[8:])
		blk0 := binary.LittleEndian.Uint32(rec[16:])
		nBlk := binary.LittleEndian.Uint32(rec[20:])
		df := binary.LittleEndian.Uint32(rec[24:])
		if df == 0 {
			if nBlk != 0 || dataLen != 0 {
				return fail("term %d: empty df with %d blocks, %d bytes", t, nBlk, dataLen)
			}
			continue
		}
		if uint64(df) > numDocs || uint64(nBlk) > uint64(df) || nBlk == 0 {
			return fail("term %d: df %d / %d blocks out of range", t, df, nBlk)
		}
		if uint64(blk0) != runBlk || runBlk+uint64(nBlk) > nBlocks {
			return fail("term %d: block numbering broken (blk0 %d, run %d)", t, blk0, runBlk)
		}
		if dataLen > math.MaxUint32 || dataOff > uint64(len(blockData)) || dataLen > uint64(len(blockData))-dataOff {
			return fail("term %d: data [%d,+%d) outside block region of %d bytes", t, dataOff, dataLen, len(blockData))
		}
		hs := hdrs[runBlk : runBlk+uint64(nBlk)]
		var seen uint64
		prevMax := int32(-1)
		for i := range hs {
			bh := hs[i]
			if bh.n <= 0 || uint64(bh.n) > blockCap {
				return fail("term %d block %d: count %d vs blockCap %d", t, i, bh.n, blockCap)
			}
			start := uint64(bh.off)
			end := dataLen
			if i+1 < len(hs) {
				end = uint64(hs[i+1].off)
			}
			if i == 0 && start != 0 {
				return fail("term %d: first block at offset %d", t, start)
			}
			if end <= start || end > dataLen {
				return fail("term %d block %d: byte range [%d,%d) invalid", t, i, start, end)
			}
			if span := end - start; span < 2*uint64(bh.n) || span > 10*uint64(bh.n) {
				return fail("term %d block %d: %d bytes implausible for %d postings", t, i, span, bh.n)
			}
			if bh.maxDoc <= prevMax || uint64(bh.maxDoc) >= numDocs {
				return fail("term %d block %d: maxDoc %d out of order or range", t, i, bh.maxDoc)
			}
			prevMax = bh.maxDoc
			seen += uint64(bh.n)
		}
		if seen != uint64(df) {
			return fail("term %d: blocks carry %d postings, df says %d", t, seen, df)
		}
		plists[t] = postingList{
			n:      int32(df),
			data:   blockData[dataOff : dataOff+dataLen],
			blocks: hs,
			blk0:   int32(blk0),
		}
		runBlk += uint64(nBlk)
	}
	if runBlk != nBlocks {
		return fail("terms use %d blocks, header says %d", runBlk, nBlocks)
	}

	x := &Index{
		docIDs:     docIDs,
		docLens:    docLens,
		terms:      nil, // mapped dictionaries binary-search termList
		termList:   termList,
		plists:     plists,
		blockCap:   int(blockCap),
		nBlocks:    int(nBlocks),
		cf:         cf,
		total:      int64(totalTokens),
		mapping:    m,
		unverified: true,
	}

	// Score tables, served in place (SetMaxScores/SetBlockMaxScores
	// validate the finite-nonnegative contract over the mapped values).
	parseTables := func(i int, count uint64, entries uint64, what string, set func(string, []float64) error) error {
		b := bytesOf(i)
		at := uint64(0)
		prevKey := ""
		for t := uint64(0); t < count; t++ {
			if uint64(len(b))-at < 8 {
				return fmt.Errorf("%w: v7: %s region truncated at table %d", ErrBadFormat, what, t)
			}
			keyLen := binary.LittleEndian.Uint64(b[at:])
			at += 8
			if keyLen == 0 || keyLen > 1<<10 {
				return fmt.Errorf("%w: v7: %s key length %d", ErrBadFormat, what, keyLen)
			}
			padded := uint64(roundUp(int64(keyLen), 8))
			if uint64(len(b))-at < padded || uint64(len(b))-at-padded < 8*entries {
				return fmt.Errorf("%w: v7: %s table %d truncated", ErrBadFormat, what, t)
			}
			key := string(b[at : at+keyLen])
			at += padded
			if t > 0 && key <= prevKey {
				return fmt.Errorf("%w: v7: %s keys not strictly sorted at %q", ErrBadFormat, what, key)
			}
			prevKey = key
			vals := viewF64(b[at : at+8*entries])
			at += 8 * entries
			if err := set(key, vals); err != nil {
				return fmt.Errorf("%w: %v", ErrBadFormat, err)
			}
		}
		if at != uint64(len(b)) {
			return fmt.Errorf("%w: v7: %d trailing bytes in %s region", ErrBadFormat, uint64(len(b))-at, what)
		}
		return nil
	}
	if err := parseTables(secMaxTables, numMaxTables, numTerms, "max-score", x.SetMaxScores); err != nil {
		return nil, nil, err
	}
	if err := parseTables(secBlockTables, numBlockTables, nBlocks, "block-max", x.SetBlockMaxScores); err != nil {
		return nil, nil, err
	}

	// Payload sections (optional document bodies, served in place).
	if flags&v7FlagPayload != 0 {
		offs := viewU64(bytesOf(secPayOffs))
		blob := bytesOf(secPayBlob)
		if offs[0] != 0 || offs[numDocs] != uint64(len(blob)) {
			return fail("payload offsets do not cover the blob")
		}
		for i := uint64(0); i < numDocs; i++ {
			if offs[i+1] < offs[i] {
				return fail("payload offsets not monotone at %d", i)
			}
		}
		x.payOffs = offs
		x.payBlob = blob
	}

	sizes := make([]int64, numShards)
	shardVals := viewI64(bytesOf(secShards))
	copy(sizes, shardVals)
	return x, sizes, nil
}

// viewU64 reinterprets a little-endian byte section as []uint64 — zero
// copy when the host matches the wire order and the base is aligned,
// copy-decode otherwise (big-endian hosts, odd slabs).
func viewU64(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return make([]uint64, 0, 1)
	}
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func viewI64(b []byte) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func viewF64(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func viewI32(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// viewHeaders reinterprets the header section as []blockHeader when the
// in-memory struct layout matches the 12-byte wire record, copy-decoding
// otherwise.
func viewHeaders(b []byte) []blockHeader {
	n := len(b) / blockHeaderBytes
	if n == 0 {
		return nil
	}
	if hostLittleEndian && headerLayoutOK && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*blockHeader)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]blockHeader, n)
	for i := range out {
		out[i] = blockHeader{
			maxDoc: int32(binary.LittleEndian.Uint32(b[i*blockHeaderBytes:])),
			off:    binary.LittleEndian.Uint32(b[i*blockHeaderBytes+4:]),
			n:      int32(binary.LittleEndian.Uint32(b[i*blockHeaderBytes+8:])),
		}
	}
	return out
}

// termID resolves a term to its internal number: a hash probe on owned
// indexes, a binary search over the sorted dictionary on mapped ones
// (which carry no map — the dictionary IS the sorted blob).
func (x *Index) termID(term string) (int32, bool) {
	if x.terms != nil {
		id, ok := x.terms[term]
		return id, ok
	}
	i := sort.SearchStrings(x.termList, term)
	if i < len(x.termList) && x.termList[i] == term {
		return int32(i), true
	}
	return 0, false
}

// HasPayloads reports whether the index carries per-document payloads
// (RIDX7 payload sections — the engine's document bodies).
func (x *Index) HasPayloads() bool { return x.payOffs != nil }

// Payload returns the stored payload of a document. The string is a
// zero-copy view into the mapped region: it is valid only while the
// mapping is retained (for engine states, until the state is unpinned).
// Callers that let the bytes outlive their snapshot must strings.Clone.
func (x *Index) Payload(doc int32) (string, bool) {
	if x.payOffs == nil || doc < 0 || int(doc) >= len(x.payOffs)-1 {
		return "", false
	}
	lo, hi := x.payOffs[doc], x.payOffs[doc+1]
	if lo == hi {
		return "", true
	}
	b := x.payBlob[lo:hi]
	return unsafe.String(&b[0], len(b)), true
}
