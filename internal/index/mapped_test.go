package index

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeMappedFile serializes s as a RIDX7 file under t.TempDir.
func writeMappedFile(t *testing.T, s *Segmented, payload func(int32) string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.ridx7")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteMapped(f, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// testScore is a deterministic scoring function for table round-trips.
func testScore(tf, docLen float64, ts TermStats, c CollectionStats) float64 {
	return tf / (1 + docLen) * math.Log(1+float64(c.NumDocs)/float64(ts.DF))
}

func buildMappedFixture(t *testing.T) *Segmented {
	t.Helper()
	x := buildRandom(t, 23, 400, 16)
	if err := x.SetMaxScores("test", x.ComputeMaxScores(testScore)); err != nil {
		t.Fatal(err)
	}
	if err := x.SetBlockMaxScores("test", x.ComputeBlockMaxScores(testScore)); err != nil {
		t.Fatal(err)
	}
	return SegmentIndex(x, 3)
}

func TestWriteMappedRoundTrip(t *testing.T) {
	base := ActiveMappings()
	src := buildMappedFixture(t)
	path := writeMappedFile(t, src, nil)

	got, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if ActiveMappings() != base+1 {
		t.Fatalf("ActiveMappings = %d, want %d", ActiveMappings(), base+1)
	}
	if !got.Index().Mapped() {
		t.Fatal("OpenMapped index does not report Mapped")
	}
	if !indexesEqual(src.Index(), got.Index()) {
		t.Fatal("mapped index differs from source")
	}
	if !reflect.DeepEqual(src.ShardSizes(), got.ShardSizes()) {
		t.Fatalf("shard sizes %v, want %v", got.ShardSizes(), src.ShardSizes())
	}
	wantMax := src.Index().MaxScores("test")
	gotMax := got.Index().MaxScores("test")
	if !reflect.DeepEqual(append([]float64(nil), wantMax...), append([]float64(nil), gotMax...)) {
		t.Fatal("max-score table differs through the mapped layout")
	}
	wantBlk := src.Index().BlockMaxScores("test")
	gotBlk := got.Index().BlockMaxScores("test")
	if !reflect.DeepEqual(append([]float64(nil), wantBlk...), append([]float64(nil), gotBlk...)) {
		t.Fatal("block-max table differs through the mapped layout")
	}
	// Dictionary lookups (binary search — no map on the mapped layout).
	for id := int32(0); int(id) < src.Index().NumTerms(); id++ {
		term := src.Index().Term(id)
		ts, ok := got.Index().Lookup(term)
		if !ok || ts.ID != id {
			t.Fatalf("Lookup(%q) = %+v, %v", term, ts, ok)
		}
	}
	if _, ok := got.Index().Lookup("never-indexed"); ok {
		t.Fatal("Lookup invented a term")
	}
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	if ActiveMappings() != base {
		t.Fatalf("ActiveMappings = %d after Close, want %d", ActiveMappings(), base)
	}
}

// TestReadV7Stream checks the io.Reader compat path: a v7 byte stream
// loads through Read/ReadSegmented/ReadManifest like any other version.
func TestReadV7Stream(t *testing.T) {
	src := buildMappedFixture(t)
	var buf bytes.Buffer
	if _, err := src.WriteMapped(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegmented(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Index().Mapped() {
		t.Fatal("stream-read v7 index claims to be mapped")
	}
	if !indexesEqual(src.Index(), got.Index()) {
		t.Fatal("stream-read v7 index differs from source")
	}
	if !reflect.DeepEqual(src.ShardSizes(), got.ShardSizes()) {
		t.Fatalf("shard sizes %v, want %v", got.ShardSizes(), src.ShardSizes())
	}
	man, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) != 1 || man.Epoch != 0 {
		t.Fatalf("v7 manifest lift: %d segments, epoch %d", len(man.Segments), man.Epoch)
	}
}

// TestOpenMappedZeroDecode is the acceptance assertion: opening a mapped
// index must not decode a single posting block.
func TestOpenMappedZeroDecode(t *testing.T) {
	src := buildMappedFixture(t)
	path := writeMappedFile(t, src, nil)
	before, _ := BlockIOStats()
	got, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	after, _ := BlockIOStats()
	if after != before {
		t.Fatalf("OpenMapped decoded %d posting blocks, want 0", after-before)
	}
	// And traversal still works after the zero-decode open.
	it := got.Index().PostingIter(0)
	n := 0
	for blk := it.NextBlock(); blk != nil; blk = it.NextBlock() {
		n += len(blk)
	}
	it.Release()
	if n != got.Index().DF(0) {
		t.Fatalf("iterated %d postings, df %d", n, got.Index().DF(0))
	}
}

// TestMappedIteratorSurvivesClose: the refcount must hold the mapping
// until the last iterator drops, even after the index is Closed.
func TestMappedIteratorSurvivesClose(t *testing.T) {
	base := ActiveMappings()
	src := buildMappedFixture(t)
	want := src.Index().PostingsByID(1)
	path := writeMappedFile(t, src, nil)
	got, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	it := got.Index().PostingIter(1)
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	if ActiveMappings() != base+1 {
		t.Fatalf("mapping dropped while an iterator is live (ActiveMappings=%d)", ActiveMappings())
	}
	var have []Posting
	for p, ok := it.Next(); ok; p, ok = it.Next() {
		have = append(have, p)
	}
	if !reflect.DeepEqual(have, want) {
		t.Fatal("iterator over a closed index returned wrong postings")
	}
	it.Release()
	if ActiveMappings() != base {
		t.Fatalf("ActiveMappings = %d after last Release, want %d", ActiveMappings(), base)
	}
}

func TestMappedPayloads(t *testing.T) {
	src := buildMappedFixture(t)
	bodies := make([]string, src.Index().NumDocs())
	for d := range bodies {
		if d%7 != 0 { // leave some empty
			bodies[d] = "body of " + src.Index().DocID(int32(d))
		}
	}
	path := writeMappedFile(t, src, func(d int32) string { return bodies[d] })
	got, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if !got.Index().HasPayloads() {
		t.Fatal("payload sections missing")
	}
	for d := range bodies {
		p, ok := got.Index().Payload(int32(d))
		if !ok || p != bodies[d] {
			t.Fatalf("Payload(%d) = %q, %v; want %q", d, p, ok, bodies[d])
		}
	}
	if _, ok := got.Index().Payload(int32(len(bodies))); ok {
		t.Fatal("Payload out of range succeeded")
	}
	// Without payloads the accessor must answer not-ok.
	plain, err := OpenMapped(writeMappedFile(t, src, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Index().HasPayloads() {
		t.Fatal("payload sections present without a payload writer")
	}
	if _, ok := plain.Index().Payload(0); ok {
		t.Fatal("Payload answered on a payload-less index")
	}
}

// TestWriteMappedFlatSource: a flat index is re-blocked for transport —
// the mapped layout is always block-compressed.
func TestWriteMappedFlatSource(t *testing.T) {
	flat := buildRandom(t, 5, 120, -1)
	src := SegmentIndex(flat, 2)
	got, err := OpenMapped(writeMappedFile(t, src, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if !got.Index().Blocked() || got.Index().BlockSize() != DefaultBlockSize {
		t.Fatalf("flat source mapped as blockCap %d", got.Index().BlockSize())
	}
	if !indexesEqual(flat, got.Index()) {
		t.Fatal("flat-source mapped index differs")
	}
}

// TestOpenMappedHostile: truncations and targeted corruptions of a valid
// v7 file must error at open (or truncate reads safely) — never panic.
func TestOpenMappedHostile(t *testing.T) {
	src := buildMappedFixture(t)
	var buf bytes.Buffer
	if _, err := src.WriteMapped(&buf, nil); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	write := func(b []byte) string {
		path := filepath.Join(dir, "hostile.ridx7")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Truncations at every structurally interesting size must error.
	for _, n := range []int{0, 1, 6, 8, v7HeaderSize - 1, v7HeaderSize, v7HeaderSize + 100, len(good) / 2, len(good) - 1} {
		if seg, err := OpenMapped(write(good[:n])); err == nil {
			seg.Close()
			t.Fatalf("OpenMapped of %d-byte truncation succeeded", n)
		}
	}

	// Targeted header corruptions.
	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), good...)
		mutate(b)
		if seg, err := OpenMapped(write(b)); err == nil {
			seg.Close()
			t.Errorf("%s: OpenMapped succeeded on corrupt file", name)
		}
	}
	p64 := func(b []byte, at int, v uint64) { binary.LittleEndian.PutUint64(b[at:], v) }
	corrupt("bad magic", func(b []byte) { b[0] = 'X' })
	corrupt("bad version", func(b []byte) { p64(b, 8, 99) })
	corrupt("unknown flags", func(b []byte) { p64(b, 16, 1<<7) })
	corrupt("zero blockCap", func(b []byte) { p64(b, 24, 0) })
	corrupt("huge numDocs", func(b []byte) { p64(b, 32, 1<<62) })
	corrupt("fileSize beyond EOF", func(b []byte) { p64(b, 88, uint64(len(b))+4096) })
	corrupt("section count", func(b []byte) { p64(b, 96, 3) })
	corrupt("section offset beyond file", func(b []byte) { p64(b, 104, uint64(len(b))+8) })
	corrupt("section offset misaligned", func(b []byte) { p64(b, 104+16*secDocOffs, binary.LittleEndian.Uint64(b[104+16*secDocOffs:])+4) })
	corrupt("block data unaligned", func(b []byte) {
		p64(b, 104+16*secBlockData, binary.LittleEndian.Uint64(b[104+16*secBlockData:])+8)
	})
	corrupt("docOffs blob overrun", func(b []byte) {
		off := binary.LittleEndian.Uint64(b[104+16*secDocOffs:])
		p64(b, int(off)+8, 1<<40) // second doc offset far past the blob
	})
	corrupt("termRec df lies", func(b []byte) {
		off := binary.LittleEndian.Uint64(b[104+16*secTermRecs:])
		binary.LittleEndian.PutUint32(b[int(off)+24:], binary.LittleEndian.Uint32(b[int(off)+24:])+1)
	})
	corrupt("block header count zero", func(b []byte) {
		off := binary.LittleEndian.Uint64(b[104+16*secBlockHdrs:])
		binary.LittleEndian.PutUint32(b[int(off)+8:], 0)
	})

	// Corrupt POSTING BYTES pass open (they are not validated there) but
	// must end iterators early instead of panicking or serving garbage.
	b := append([]byte(nil), good...)
	off := binary.LittleEndian.Uint64(b[104+16*secBlockData:])
	length := binary.LittleEndian.Uint64(b[104+16*secBlockData+8:])
	for i := uint64(0); i < length; i++ {
		b[off+i] = 0xff // non-terminating varints everywhere
	}
	seg, err := OpenMapped(write(b))
	if err != nil {
		t.Fatalf("corrupt posting bytes must pass structural open, got %v", err)
	}
	defer seg.Close()
	x := seg.Index()
	for id := int32(0); int(id) < x.NumTerms(); id++ {
		it := x.PostingIter(id)
		for p, ok := it.Next(); ok; p, ok = it.Next() {
			if p.Doc < 0 || int(p.Doc) >= x.NumDocs() {
				t.Fatalf("corrupt block served doc %d", p.Doc)
			}
		}
		it.Release()
		if got := x.PostingsByID(id); len(got) > x.DF(id) {
			t.Fatalf("materialize served %d postings for df %d", len(got), x.DF(id))
		}
	}
}
