package index

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func buildTestSegment(t *testing.T, blockSize, shards int, docs [][2]string) *Segmented {
	t.Helper()
	b := NewBuilder()
	b.SetBlockSize(blockSize)
	for _, d := range docs {
		if err := b.Add(d[0], strings.Fields(d[1])); err != nil {
			t.Fatal(err)
		}
	}
	return b.BuildSegmented(shards)
}

func sameIndex(t *testing.T, got, want *Index) {
	t.Helper()
	if got.NumDocs() != want.NumDocs() || got.NumTerms() != want.NumTerms() {
		t.Fatalf("shape mismatch: %d/%d docs, %d/%d terms",
			got.NumDocs(), want.NumDocs(), got.NumTerms(), want.NumTerms())
	}
	for d := int32(0); d < int32(want.NumDocs()); d++ {
		if got.DocID(d) != want.DocID(d) || got.DocLen(d) != want.DocLen(d) {
			t.Fatalf("doc %d mismatch", d)
		}
	}
	for id := int32(0); id < int32(want.NumTerms()); id++ {
		if got.Term(id) != want.Term(id) {
			t.Fatalf("term %d: %q vs %q", id, got.Term(id), want.Term(id))
		}
		if !reflect.DeepEqual(got.PostingsByID(id), want.PostingsByID(id)) {
			t.Fatalf("postings of %q differ", want.Term(id))
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	base := buildTestSegment(t, 2, 3, [][2]string{
		{"d1", "apple fruit pie apple"},
		{"d2", "apple mac os"},
		{"d3", "tank army leopard"},
		{"d4", "leopard print coat"},
		{"d5", "fruit salad bowl"},
	})
	score := func(tf, docLen float64, _ TermStats, _ CollectionStats) float64 {
		return tf / (1 + docLen)
	}
	if err := base.Index().SetMaxScores("DPH", base.Index().ComputeMaxScores(score)); err != nil {
		t.Fatal(err)
	}
	extra := buildTestSegment(t, 128, 1, [][2]string{
		{"d6", "banana bread recipe"},
		{"d2", "apple watch band"}, // updated copy of d2: duplicate IDs across segments are legal
	})
	in := &Manifest{
		Epoch:      42,
		Segments:   []*Segmented{base, extra},
		Tombstones: []string{"d2", "d3"},
	}
	var buf bytes.Buffer
	if _, err := in.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 42 {
		t.Fatalf("epoch %d, want 42", out.Epoch)
	}
	if !reflect.DeepEqual(out.Tombstones, in.Tombstones) {
		t.Fatalf("tombstones %v, want %v", out.Tombstones, in.Tombstones)
	}
	if len(out.Segments) != 2 {
		t.Fatalf("%d segments, want 2", len(out.Segments))
	}
	if out.Segments[0].NumShards() != 3 || out.Segments[1].NumShards() != 1 {
		t.Fatalf("shard counts %d/%d, want 3/1",
			out.Segments[0].NumShards(), out.Segments[1].NumShards())
	}
	sameIndex(t, out.Segments[0].Index(), base.Index())
	sameIndex(t, out.Segments[1].Index(), extra.Index())
	if got := out.Segments[0].Index().MaxScores("DPH"); got == nil {
		t.Fatal("max-score table lost in the round trip")
	}
}

// TestManifestLegacyReadCompat: every pre-v6 stream is a valid manifest —
// one frozen segment at epoch 0, no tombstones.
func TestManifestLegacyReadCompat(t *testing.T) {
	seg := buildTestSegment(t, 0, 2, [][2]string{
		{"d1", "apple fruit pie"},
		{"d2", "tank army leopard"},
	})
	var buf bytes.Buffer
	if _, err := seg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 0 || len(man.Tombstones) != 0 || len(man.Segments) != 1 {
		t.Fatalf("legacy lift wrong: %+v", man)
	}
	if man.Segments[0].NumShards() != 2 {
		t.Fatalf("legacy shard manifest lost: %d shards", man.Segments[0].NumShards())
	}
	sameIndex(t, man.Segments[0].Index(), seg.Index())
}

// TestManifestHostileInputs: corrupt counts, truncations and junk must
// error (wrapped in ErrBadFormat for structural problems), never panic.
func TestManifestHostileInputs(t *testing.T) {
	valid := func() []byte {
		seg := buildTestSegment(t, 2, 1, [][2]string{{"d1", "a b c"}, {"d2", "b d"}})
		var buf bytes.Buffer
		if _, err := (&Manifest{Epoch: 7, Segments: []*Segmented{seg}, Tombstones: []string{"x"}}).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"empty":                 {},
		"bare magic":            []byte("RIDX6\n"),
		"zero segments":         []byte("RIDX6\n\x01\x00"),
		"huge segment count":    []byte("RIDX6\n\x01\xff\xff\xff\xff\x0f"),
		"segment count no body": []byte("RIDX6\n\x01\x02"),
		"junk segment":          []byte("RIDX6\n\x01\x01JUNKJUNKJUNK"),
		"huge tombstone count":  append(append([]byte{}, valid[:len(valid)-3]...), 0xff, 0xff, 0xff, 0xff, 0x0f),
		"foreign magic":         []byte("RIDX9\nxxxx"),
	}
	for i := 1; i < len(valid); i += 7 {
		cases[fmt.Sprintf("truncated-at-%d", i)] = valid[:i]
	}
	for name, data := range cases {
		if _, err := ReadManifest(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Structural errors carry ErrBadFormat.
	if _, err := ReadManifest(bytes.NewReader([]byte("RIDX6\n\x01\x00"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("zero segments: err = %v, want ErrBadFormat", err)
	}
	// The valid bytes still parse (guard against over-strictness).
	if _, err := ReadManifest(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}
