package index

// Segmented partitions an Index's document space into contiguous shards —
// the scale-out unit of the retrieval layer. The segments share one
// physical index (dictionary, postings, document store, collection
// statistics), so term statistics and per-document scores are computed
// against the *global* collection no matter which shard a document lives
// in: per-shard scoring followed by a deterministic merge is bit-identical
// to scoring the monolithic index. A Shard view exposes the slice of each
// posting list that falls inside its document range, which per-shard
// workers traverse independently and in parallel.
//
// Segmented is immutable and safe for concurrent use, like Index.
type Segmented struct {
	idx    *Index
	bounds []int32 // len = shards+1; bounds[0] = 0, bounds[last] = NumDocs
}

// SegmentIndex partitions x into n contiguous, near-equal document ranges.
// n is clamped to [1, NumDocs] (an empty index gets one empty shard), so
// the result always has at least one shard and no shard is empty unless
// the collection is.
func SegmentIndex(x *Index, n int) *Segmented {
	docs := x.NumDocs()
	if n < 1 {
		n = 1
	}
	if n > docs && docs > 0 {
		n = docs
	}
	if docs == 0 {
		n = 1
	}
	bounds := make([]int32, n+1)
	for i := 1; i <= n; i++ {
		bounds[i] = int32(i * docs / n)
	}
	return &Segmented{idx: x, bounds: bounds}
}

// BuildSegmented is Build followed by SegmentIndex: the segmented build
// path for callers that know their shard count up front (cmd/buildindex,
// the engine). The Builder must not be used afterwards.
func (b *Builder) BuildSegmented(shards int) *Segmented {
	return SegmentIndex(b.Build(), shards)
}

// segmentedFromSizes reassembles a Segmented from the shard sizes a codec
// manifest records. The sizes must be non-negative and sum to NumDocs.
func segmentedFromSizes(x *Index, sizes []int64) (*Segmented, bool) {
	if len(sizes) == 0 {
		return nil, false
	}
	bounds := make([]int32, len(sizes)+1)
	var at int64
	for i, sz := range sizes {
		if sz < 0 {
			return nil, false
		}
		at += sz
		if at > int64(x.NumDocs()) {
			return nil, false
		}
		bounds[i+1] = int32(at)
	}
	if at != int64(x.NumDocs()) {
		return nil, false
	}
	return &Segmented{idx: x, bounds: bounds}, true
}

// Index returns the shared physical index.
func (s *Segmented) Index() *Index { return s.idx }

// NumShards returns the number of segments.
func (s *Segmented) NumShards() int { return len(s.bounds) - 1 }

// Shard returns the i-th segment view.
func (s *Segmented) Shard(i int) Shard {
	return Shard{idx: s.idx, lo: s.bounds[i], hi: s.bounds[i+1]}
}

// ShardSizes returns the per-shard document counts (for stats endpoints
// and the codec manifest).
func (s *Segmented) ShardSizes() []int {
	sizes := make([]int, s.NumShards())
	for i := range sizes {
		sizes[i] = int(s.bounds[i+1] - s.bounds[i])
	}
	return sizes
}

// Resegment returns a view of the same physical index partitioned into n
// shards. Repartitioning is O(n): only the boundary list is rebuilt.
func (s *Segmented) Resegment(n int) *Segmented { return SegmentIndex(s.idx, n) }

// Shard is one contiguous document range [Lo, Hi) of a segmented index.
// It is a view: copying it is cheap and no state is owned.
type Shard struct {
	idx    *Index
	lo, hi int32
}

// DocRange returns the half-open internal document range [lo, hi) the
// shard covers. Document numbers are global: a shard-local accumulator
// index plus lo recovers the collection-wide document number.
func (sh Shard) DocRange() (lo, hi int32) { return sh.lo, sh.hi }

// NumDocs returns the number of documents in the shard.
func (sh Shard) NumDocs() int { return int(sh.hi - sh.lo) }

// Iter returns a posting iterator over the portion of the term's list
// whose documents fall inside the shard — the hot-path shard view. The
// range is located at BLOCK granularity: a binary search over block
// headers lands on the first block that can contain the shard's lower
// bound, and decoded blocks are clipped to the document range, so a block
// straddling a shard boundary is handled by clipping, never by byte-level
// offsets into the compressed stream. Release the iterator when done.
func (sh Shard) Iter(id int32) PostingIterator {
	return sh.idx.iterRange(id, sh.lo, sh.hi)
}

// Postings returns the portion of the term's posting list whose documents
// fall inside the shard. Under the flat layout this is a zero-copy
// sub-slice (shared; do not modify); the compressed layout decodes the
// range into a fresh slice. Hot paths stream through Iter instead.
func (sh Shard) Postings(id int32) []Posting {
	pl := &sh.idx.plists[id]
	if pl.flat != nil || pl.n == 0 {
		f := pl.flat
		a := seekPostings(f, 0, sh.lo)
		f = f[a:]
		return f[:seekPostings(f, 0, sh.hi)]
	}
	var out []Posting
	it := sh.idx.iterRange(id, sh.lo, sh.hi)
	for blk := it.NextBlock(); blk != nil; blk = it.NextBlock() {
		out = append(out, blk...)
	}
	it.Release()
	return out
}
