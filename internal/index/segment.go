package index

import "sort"

// Segmented partitions an Index's document space into contiguous shards —
// the scale-out unit of the retrieval layer. The segments share one
// physical index (dictionary, postings, document store, collection
// statistics), so term statistics and per-document scores are computed
// against the *global* collection no matter which shard a document lives
// in: per-shard scoring followed by a deterministic merge is bit-identical
// to scoring the monolithic index. A Shard view exposes the slice of each
// posting list that falls inside its document range, which per-shard
// workers traverse independently and in parallel.
//
// Segmented is immutable and safe for concurrent use, like Index.
type Segmented struct {
	idx    *Index
	bounds []int32 // len = shards+1; bounds[0] = 0, bounds[last] = NumDocs
}

// SegmentIndex partitions x into n contiguous, near-equal document ranges.
// n is clamped to [1, NumDocs] (an empty index gets one empty shard), so
// the result always has at least one shard and no shard is empty unless
// the collection is.
func SegmentIndex(x *Index, n int) *Segmented {
	docs := x.NumDocs()
	if n < 1 {
		n = 1
	}
	if n > docs && docs > 0 {
		n = docs
	}
	if docs == 0 {
		n = 1
	}
	bounds := make([]int32, n+1)
	for i := 1; i <= n; i++ {
		bounds[i] = int32(i * docs / n)
	}
	return &Segmented{idx: x, bounds: bounds}
}

// BuildSegmented is Build followed by SegmentIndex: the segmented build
// path for callers that know their shard count up front (cmd/buildindex,
// the engine). The Builder must not be used afterwards.
func (b *Builder) BuildSegmented(shards int) *Segmented {
	return SegmentIndex(b.Build(), shards)
}

// segmentedFromSizes reassembles a Segmented from the shard sizes a codec
// manifest records. The sizes must be non-negative and sum to NumDocs.
func segmentedFromSizes(x *Index, sizes []int64) (*Segmented, bool) {
	if len(sizes) == 0 {
		return nil, false
	}
	bounds := make([]int32, len(sizes)+1)
	var at int64
	for i, sz := range sizes {
		if sz < 0 {
			return nil, false
		}
		at += sz
		if at > int64(x.NumDocs()) {
			return nil, false
		}
		bounds[i+1] = int32(at)
	}
	if at != int64(x.NumDocs()) {
		return nil, false
	}
	return &Segmented{idx: x, bounds: bounds}, true
}

// Index returns the shared physical index.
func (s *Segmented) Index() *Index { return s.idx }

// NumShards returns the number of segments.
func (s *Segmented) NumShards() int { return len(s.bounds) - 1 }

// Shard returns the i-th segment view.
func (s *Segmented) Shard(i int) Shard {
	return Shard{idx: s.idx, lo: s.bounds[i], hi: s.bounds[i+1]}
}

// ShardSizes returns the per-shard document counts (for stats endpoints
// and the codec manifest).
func (s *Segmented) ShardSizes() []int {
	sizes := make([]int, s.NumShards())
	for i := range sizes {
		sizes[i] = int(s.bounds[i+1] - s.bounds[i])
	}
	return sizes
}

// Resegment returns a view of the same physical index partitioned into n
// shards. Repartitioning is O(n): only the boundary list is rebuilt.
func (s *Segmented) Resegment(n int) *Segmented { return SegmentIndex(s.idx, n) }

// Shard is one contiguous document range [Lo, Hi) of a segmented index.
// It is a view: copying it is cheap and no state is owned.
type Shard struct {
	idx    *Index
	lo, hi int32
}

// DocRange returns the half-open internal document range [lo, hi) the
// shard covers. Document numbers are global: a shard-local accumulator
// index plus lo recovers the collection-wide document number.
func (sh Shard) DocRange() (lo, hi int32) { return sh.lo, sh.hi }

// NumDocs returns the number of documents in the shard.
func (sh Shard) NumDocs() int { return int(sh.hi - sh.lo) }

// Postings returns the portion of the term's posting list whose documents
// fall inside the shard. Postings are sorted by document number, so the
// portion is a sub-slice located by binary search — no copying. The
// returned slice is shared and must not be modified.
func (sh Shard) Postings(id int32) []Posting {
	pl := sh.idx.postings[id]
	a := sort.Search(len(pl), func(i int) bool { return pl[i].Doc >= sh.lo })
	rest := pl[a:]
	b := sort.Search(len(rest), func(i int) bool { return rest[i].Doc >= sh.hi })
	return rest[:b]
}
