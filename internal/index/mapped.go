package index

import (
	"sync/atomic"
	"unsafe"
)

// Mapped storage: an Index can be backed either by heap slices it owns
// (every path that existed before RIDX7 — Build, Read, Reblock) or by one
// contiguous read-only byte region served in place — an mmap'ed RIDX7
// file (OpenMapped). The Mapping below is the ownership unit of the
// second kind: a refcount on the region that keeps the bytes addressable
// until the last reader drops.
//
// The refcount protocol has exactly three classes of holder:
//
//   - the Index itself: one reference taken at open, dropped by Close;
//   - every PostingIterator created from a mapped index: retained at
//     creation, dropped by Release — so a search that raced an unmap
//     (engine epoch swap retiring a mapped segment) keeps the pages
//     alive until its last iterator drops;
//   - the engine's state snapshots, which retain whole mapped indexes
//     for the duration of a pinned search (see package engine).
//
// Releasing a mapped iterator is therefore mandatory, not just a pool
// courtesy: a leaked reference keeps the file mapped. All hot paths
// already Release for scratch-pool reasons.
//
// Unmapping runs when the count hits zero; after that any dangling view
// into the region is a bug the refcount exists to prevent. The owned
// (heap) layout has a nil Mapping and none of this applies — the garbage
// collector is the refcount.

// Mapping is one refcounted byte region backing a mapped index. The zero
// reference point unmaps (for OS mappings) or drops (for the portable
// heap-slab fallback) the region.
type Mapping struct {
	data []byte
	os   bool // true: data came from mmap and must be munmapped
	refs atomic.Int64
}

// activeMappings counts live Mapping regions process-wide (created by
// OpenMapped, destroyed when their refcount drains). Tests assert it
// returns to baseline to prove no mapping leaks or early unmaps.
var activeMappings atomic.Int64

// ActiveMappings reports the number of live mapped index regions in the
// process. It exists for tests and stats endpoints.
func ActiveMappings() int64 { return activeMappings.Load() }

func (m *Mapping) retain() { m.refs.Add(1) }

func (m *Mapping) release() {
	if m.refs.Add(-1) != 0 {
		return
	}
	if m.os {
		munmapBytes(m.data)
	}
	m.data = nil
	activeMappings.Add(-1)
}

// Advice hints the kernel about the expected access pattern of a mapped
// index region (madvise). Owned indexes ignore advice.
type Advice int

const (
	// AdviseNormal resets to the default readahead behavior.
	AdviseNormal Advice = iota
	// AdviseRandom disables readahead — right for posting blocks reached
	// by block-max skipping, where touching one page predicts nothing
	// about the next.
	AdviseRandom
	// AdviseSequential doubles down on readahead — right for a one-pass
	// scan (ComputeBlockMaxScores over a freshly opened index).
	AdviseSequential
	// AdviseWillNeed asks the kernel to start faulting the region in now.
	AdviseWillNeed
)

// Advise applies an access-pattern hint to the whole mapped region.
// On an owned (heap) index, or on platforms without madvise, it is a
// no-op. Errors are advisory and can be ignored.
func (x *Index) Advise(a Advice) error {
	if x.mapping == nil || !x.mapping.os || len(x.mapping.data) == 0 {
		return nil
	}
	return madviseBytes(x.mapping.data, a)
}

// Mapped reports whether the index is served off a mapped (or
// slab-loaded RIDX7) region rather than owned heap structures.
func (x *Index) Mapped() bool { return x.mapping != nil }

// Retain takes an additional reference on the index's backing region,
// keeping it addressable until the matching Release — the hook the
// engine's epoch snapshots use so a swap never unmaps under a reader.
// No-op on owned indexes.
func (x *Index) Retain() {
	if x.mapping != nil {
		x.mapping.retain()
	}
}

// Release drops a reference taken by Retain.
func (x *Index) Release() {
	if x.mapping != nil {
		x.mapping.release()
	}
}

// Close drops the index's own reference to its backing region. The
// region stays addressable while iterators or Retain holders remain;
// the last of them unmaps. Close is idempotent and a no-op on owned
// indexes. After Close the index must not create new iterators.
func (x *Index) Close() error {
	if x.mapping != nil && x.closed.CompareAndSwap(false, true) {
		x.mapping.release()
	}
	return nil
}

// Close closes the underlying index (see Index.Close).
func (s *Segmented) Close() error { return s.idx.Close() }

// hostLittleEndian reports whether the host stores integers little-
// endian — the RIDX7 wire order. On the (rare) big-endian host every
// numeric section falls back to copy-decode at open.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// headerLayoutOK reports whether blockHeader's in-memory layout matches
// the 12-byte RIDX7 wire record {maxDoc i32, off u32, n i32} — the
// precondition for viewing the header section in place. The gc compiler
// lays consecutive 4-byte fields out exactly like this; the check keeps
// a hypothetical layout change from silently corrupting reads.
var headerLayoutOK = unsafe.Sizeof(blockHeader{}) == blockHeaderBytes &&
	unsafe.Offsetof(blockHeader{}.maxDoc) == 0 &&
	unsafe.Offsetof(blockHeader{}.off) == 4 &&
	unsafe.Offsetof(blockHeader{}.n) == 8

// aligned8 reports whether the slice's base address is 8-byte aligned
// (required before reinterpreting it as 8-byte numerics).
func aligned8(b []byte) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%8 == 0
}
