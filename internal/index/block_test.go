package index

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// buildRandom builds a randomized index at the given block size, with
// enough documents and a small enough vocabulary that posting lists span
// many blocks.
func buildRandom(t testing.TB, seed int64, numDocs, blockSize int) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	b.SetBlockSize(blockSize)
	vocab := make([]string, 25)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%02d", i)
	}
	for d := 0; d < numDocs; d++ {
		n := rng.Intn(20) + 1
		toks := make([]string, n)
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))]
		}
		if err := b.Add(fmt.Sprintf("doc%04d", d), toks); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestBlockedMatchesFlat is the layout differential at the index level:
// materialized postings, stats and storage invariants must agree between
// the flat layout and every block size.
func TestBlockedMatchesFlat(t *testing.T) {
	flat := buildRandom(t, 7, 300, -1)
	if flat.Blocked() {
		t.Fatal("SetBlockSize(-1) still built a blocked index")
	}
	for _, bs := range []int{1, 3, 8, 128, 1024} {
		blocked := buildRandom(t, 7, 300, bs)
		if !blocked.Blocked() || blocked.BlockSize() != bs {
			t.Fatalf("bs=%d: Blocked=%v BlockSize=%d", bs, blocked.Blocked(), blocked.BlockSize())
		}
		if !indexesEqual(flat, blocked) {
			t.Fatalf("bs=%d: blocked index differs from flat", bs)
		}
		st := blocked.Storage()
		if st.Postings == 0 || st.Blocks == 0 {
			t.Fatalf("bs=%d: storage stats empty: %+v", bs, st)
		}
		wantBlocks := int64(0)
		for id := int32(0); int(id) < blocked.NumTerms(); id++ {
			wantBlocks += int64((blocked.DF(id) + bs - 1) / bs)
		}
		if st.Blocks != wantBlocks || blocked.NumBlocks() != int(wantBlocks) {
			t.Fatalf("bs=%d: %d blocks, want %d", bs, st.Blocks, wantBlocks)
		}
	}
	// The default layout must compress: well under the flat 8 B/posting
	// on this corpus (the acceptance bar is >= 2x).
	def := buildRandom(t, 7, 300, 0)
	if bpp := def.Storage().BytesPerPosting; bpp > 4 {
		t.Errorf("default layout bytes/posting = %.2f, want <= 4 (2x vs flat's 8)", bpp)
	}
	if flatBpp := flat.Storage().BytesPerPosting; flatBpp != 8 {
		t.Errorf("flat layout bytes/posting = %.2f, want 8", flatBpp)
	}
}

// TestPostingIteratorTraversal checks Next/NextBlock against the
// materialized list across layouts.
func TestPostingIteratorTraversal(t *testing.T) {
	for _, bs := range []int{-1, 1, 4, 128} {
		x := buildRandom(t, 11, 200, bs)
		for id := int32(0); int(id) < x.NumTerms(); id++ {
			want := x.PostingsByID(id)
			it := x.PostingIter(id)
			var got []Posting
			for p, ok := it.Next(); ok; p, ok = it.Next() {
				got = append(got, p)
			}
			it.Release()
			if len(got) != len(want) {
				t.Fatalf("bs=%d term %d: Next yielded %d postings, want %d", bs, id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bs=%d term %d posting %d: %+v != %+v", bs, id, i, got[i], want[i])
				}
			}
			it = x.PostingIter(id)
			got = got[:0]
			for blk := it.NextBlock(); blk != nil; blk = it.NextBlock() {
				got = append(got, blk...)
			}
			it.Release()
			if len(got) != len(want) {
				t.Fatalf("bs=%d term %d: NextBlock yielded %d postings, want %d", bs, id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bs=%d term %d block posting %d: %+v != %+v", bs, id, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPostingIteratorSeekGE drives monotone seek sequences against a
// linear-scan reference, across layouts and block sizes.
func TestPostingIteratorSeekGE(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, bs := range []int{-1, 1, 4, 128} {
		x := buildRandom(t, 17, 250, bs)
		for trial := 0; trial < 20; trial++ {
			id := int32(rng.Intn(x.NumTerms()))
			want := x.PostingsByID(id)
			it := x.PostingIter(id)
			d := int32(0)
			for d < int32(x.NumDocs()) {
				d += int32(rng.Intn(40))
				j := seekPostings(want, 0, d)
				p, ok := it.SeekGE(d)
				if j >= len(want) {
					if ok {
						t.Fatalf("bs=%d term %d SeekGE(%d) = %+v, want exhausted", bs, id, d, p)
					}
					break
				}
				if !ok || p != want[j] {
					t.Fatalf("bs=%d term %d SeekGE(%d) = %+v ok=%v, want %+v", bs, id, d, p, ok, want[j])
				}
				d = p.Doc + 1
			}
			it.Release()
		}
	}
}

// TestShardIterBlockBoundaries is the shard/block-boundary regression
// test: shard bounds that land mid-block must still produce exactly the
// flat sub-range — the doc-range search lands on block starts and clips
// decoded blocks, never slices into the byte stream.
func TestShardIterBlockBoundaries(t *testing.T) {
	for _, bs := range []int{1, 3, 7, 128} {
		x := buildRandom(t, 23, 150, bs)
		for _, n := range []int{1, 2, 3, 4, 9, 150} {
			seg := SegmentIndex(x, n)
			for id := int32(0); int(id) < x.NumTerms(); id++ {
				global := x.PostingsByID(id)
				var merged []Posting
				for si := 0; si < seg.NumShards(); si++ {
					sh := seg.Shard(si)
					lo, hi := sh.DocRange()
					// Iterator view.
					it := sh.Iter(id)
					var viaIter []Posting
					for blk := it.NextBlock(); blk != nil; blk = it.NextBlock() {
						viaIter = append(viaIter, blk...)
					}
					it.Release()
					// Materialized view must agree.
					viaSlice := sh.Postings(id)
					if len(viaIter) != len(viaSlice) {
						t.Fatalf("bs=%d n=%d shard %d term %d: iter %d postings, slice %d",
							bs, n, si, id, len(viaIter), len(viaSlice))
					}
					for j := range viaIter {
						if viaIter[j] != viaSlice[j] {
							t.Fatalf("bs=%d n=%d shard %d term %d posting %d: %+v != %+v",
								bs, n, si, id, j, viaIter[j], viaSlice[j])
						}
						if viaIter[j].Doc < lo || viaIter[j].Doc >= hi {
							t.Fatalf("bs=%d n=%d shard %d term %d: doc %d outside [%d,%d)",
								bs, n, si, id, viaIter[j].Doc, lo, hi)
						}
					}
					merged = append(merged, viaIter...)
				}
				if len(merged) != len(global) {
					t.Fatalf("bs=%d n=%d term %d: shards carry %d postings, global %d",
						bs, n, id, len(merged), len(global))
				}
				for j := range merged {
					if merged[j] != global[j] {
						t.Fatalf("bs=%d n=%d term %d posting %d: %+v != %+v",
							bs, n, id, j, merged[j], global[j])
					}
				}
			}
		}
	}
}

// TestReblock checks layout conversion both ways preserves content and
// shares the layout-independent tables.
func TestReblock(t *testing.T) {
	x := buildRandom(t, 29, 200, 0)
	table := x.ComputeMaxScores(func(tf, docLen float64, _ TermStats, _ CollectionStats) float64 {
		return tf / (1 + docLen)
	})
	if err := x.SetMaxScores("T", table); err != nil {
		t.Fatal(err)
	}
	bm := x.ComputeBlockMaxScores(func(tf, docLen float64, _ TermStats, _ CollectionStats) float64 {
		return tf / (1 + docLen)
	})
	if err := x.SetBlockMaxScores("T", bm); err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{-1, 1, 64, 0} {
		y := Reblock(x, bs)
		if !indexesEqual(x, y) {
			t.Fatalf("bs=%d: Reblock changed content", bs)
		}
		if got := y.MaxScores("T"); len(got) != len(table) {
			t.Fatalf("bs=%d: per-term max-score table not carried over", bs)
		}
		if got := y.BlockMaxKeys(); len(got) != 0 {
			t.Fatalf("bs=%d: layout-bound block-max tables must be dropped, got %v", bs, got)
		}
	}
	if Reblock(x, -1).Blocked() {
		t.Error("Reblock(-1) still blocked")
	}
	if got := Reblock(x, 64).BlockSize(); got != 64 {
		t.Errorf("Reblock(64).BlockSize = %d", got)
	}
}

// TestBlockMaxDominatesBlocks pins the block-max bound property: every
// posting's score is at most its block's table entry, and the per-term
// maximum equals the max over the term's block entries.
func TestBlockMaxDominatesBlocks(t *testing.T) {
	x := buildRandom(t, 31, 220, 8)
	score := func(tf, docLen float64, _ TermStats, _ CollectionStats) float64 {
		return tf / (1 + docLen)
	}
	bm := x.ComputeBlockMaxScores(score)
	if err := x.SetBlockMaxScores("S", bm); err != nil {
		t.Fatal(err)
	}
	terms := x.ComputeMaxScores(score)
	c := x.Stats()
	for id := int32(0); int(id) < x.NumTerms(); id++ {
		tb := x.TermBlockMax("S", id)
		if tb == nil {
			t.Fatalf("term %d: no block-max slice", id)
		}
		ts := TermStats{ID: id, DF: int64(x.DF(id)), CF: 0}
		it := x.PostingIter(id)
		bi, seen := 0, 0
		blkMax := 0.0
		for p, ok := it.Next(); ok; p, ok = it.Next() {
			if seen == 8 {
				if blkMax != tb[bi] {
					t.Fatalf("term %d block %d: recomputed max %v != table %v", id, bi, blkMax, tb[bi])
				}
				bi++
				seen, blkMax = 0, 0
			}
			if s := score(float64(p.TF), float64(x.DocLen(p.Doc)), ts, c); s > blkMax {
				blkMax = s
			}
			seen++
		}
		it.Release()
		if seen > 0 && blkMax != tb[bi] {
			t.Fatalf("term %d final block: recomputed max %v != table %v", id, bi, blkMax)
		}
		termMax := 0.0
		for _, v := range tb {
			if v > termMax {
				termMax = v
			}
		}
		if termMax != terms[id] {
			t.Fatalf("term %d: max over blocks %v != per-term table %v", id, termMax, terms[id])
		}
	}
}

// TestBlockUpperBoundSkipsWithoutDecode checks the header-guided bound:
// it must be a true upper bound for the landing region and report
// exhaustion exactly when no posting >= d remains.
func TestBlockUpperBoundSkipsWithoutDecode(t *testing.T) {
	x := buildRandom(t, 37, 200, 4)
	score := func(tf, docLen float64, _ TermStats, _ CollectionStats) float64 {
		return tf / (1 + docLen)
	}
	bm := x.ComputeBlockMaxScores(score)
	if err := x.SetBlockMaxScores("S", bm); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	c := x.Stats()
	for trial := 0; trial < 40; trial++ {
		id := int32(rng.Intn(x.NumTerms()))
		it := x.PostingIter(id)
		it.SetBlockMax(x.TermBlockMax("S", id))
		want := x.PostingsByID(id)
		d := int32(rng.Intn(x.NumDocs() + 5))
		ub, any := it.BlockUpperBound(d)
		j := seekPostings(want, 0, d)
		if (j < len(want)) != any {
			t.Fatalf("term %d BlockUpperBound(%d): any=%v, reference %v", id, d, any, j < len(want))
		}
		if any {
			p, ok := it.SeekGE(d)
			if !ok || p != want[j] {
				t.Fatalf("term %d SeekGE(%d) after bound = %+v ok=%v, want %+v", id, d, p, ok, want[j])
			}
			if p.Doc == d {
				ts := TermStats{ID: id, DF: int64(len(want)), CF: 0}
				if s := score(float64(p.TF), float64(x.DocLen(p.Doc)), ts, c); s > ub {
					t.Fatalf("term %d doc %d: score %v exceeds block bound %v", id, d, s, ub)
				}
			}
		}
		it.Release()
	}
	// Without a table the bound degrades to +Inf, never blocking probes.
	it := x.PostingIter(0)
	if ub, any := it.BlockUpperBound(0); !any || !math.IsInf(ub, 1) {
		t.Errorf("tableless BlockUpperBound = %v, %v; want +Inf, true", ub, any)
	}
	it.Release()
}

// TestCodecRoundTripBlocked round-trips blocked layouts (several block
// sizes, with block-max tables) and the flat layout through the v5
// codec, checking the layout and the tables survive byte for byte.
func TestCodecRoundTripBlocked(t *testing.T) {
	score := func(tf, docLen float64, _ TermStats, _ CollectionStats) float64 {
		return tf / (1 + docLen)
	}
	for _, bs := range []int{-1, 1, 8, 128} {
		x := buildRandom(t, 41, 180, bs)
		if err := x.SetMaxScores("S", x.ComputeMaxScores(score)); err != nil {
			t.Fatal(err)
		}
		if bs > 0 {
			if err := x.SetBlockMaxScores("S", x.ComputeBlockMaxScores(score)); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if _, err := SegmentIndex(x, 3).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSegmented(&buf)
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		y := got.Index()
		if y.BlockSize() != x.BlockSize() || y.NumBlocks() != x.NumBlocks() {
			t.Fatalf("bs=%d: layout did not round-trip: size %d/%d blocks %d/%d",
				bs, y.BlockSize(), x.BlockSize(), y.NumBlocks(), x.NumBlocks())
		}
		if !indexesEqual(x, y) {
			t.Fatalf("bs=%d: content did not round-trip", bs)
		}
		wantMS := x.MaxScores("S")
		gotMS := y.MaxScores("S")
		for i := range wantMS {
			if wantMS[i] != gotMS[i] {
				t.Fatalf("bs=%d: max-score entry %d %v != %v", bs, i, gotMS[i], wantMS[i])
			}
		}
		if bs > 0 {
			wantBM := x.BlockMaxScores("S")
			gotBM := y.BlockMaxScores("S")
			if len(gotBM) != len(wantBM) {
				t.Fatalf("bs=%d: block-max table %d entries, want %d", bs, len(gotBM), len(wantBM))
			}
			for i := range wantBM {
				if wantBM[i] != gotBM[i] {
					t.Fatalf("bs=%d: block-max entry %d %v != %v", bs, i, gotBM[i], wantBM[i])
				}
			}
		} else if keys := y.BlockMaxKeys(); len(keys) != 0 {
			t.Fatalf("flat round-trip grew block-max tables %v", keys)
		}
	}
}

// TestCorruptBlockStreamsRejected hand-corrupts the v5 posting blocks:
// hostile block counts, byte lengths and truncations must all error,
// never panic or over-allocate.
func TestCorruptBlockStreamsRejected(t *testing.T) {
	b := NewBuilder()
	b.SetBlockSize(2)
	for _, d := range []struct{ id, toks string }{
		{"d1", "aa bb aa"}, {"d2", "aa cc"}, {"d3", "aa bb"}, {"d4", "aa"},
	} {
		if err := b.Add(d.id, strings.Fields(d.toks)); err != nil {
			t.Fatal(err)
		}
	}
	x := b.Build()
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader(full)); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	// Every truncation must error.
	for cut := 1; cut < len(full); cut++ {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("stream truncated to %d bytes accepted", cut)
		}
	}
	// Every single-byte corruption must either error or produce a
	// logically consistent index — never panic. (Some flips only touch
	// doc IDs or TFs and stay self-consistent.)
	for i := len(magicV5); i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d flipped: reader panicked: %v", i, r)
				}
			}()
			if y, err := Read(bytes.NewReader(mut)); err == nil {
				for id := int32(0); int(id) < y.NumTerms(); id++ {
					_ = y.PostingsByID(id)
				}
			}
		}()
	}
	// Hostile block count: claims 2^60 blocks for a 4-doc term.
	hostile := append([]byte(nil), full[:len(magicV5)]...)
	hostile = appendUvarintBytes(hostile, 2)     // blockCap
	hostile = appendUvarintBytes(hostile, 1)     // numDocs
	hostile = appendUvarintBytes(hostile, 1)     // idLen
	hostile = append(hostile, 'x')               // id
	hostile = appendUvarintBytes(hostile, 1)     // docLen
	hostile = appendUvarintBytes(hostile, 1)     // totalTokens
	hostile = appendUvarintBytes(hostile, 1)     // numTerms
	hostile = appendUvarintBytes(hostile, 1)     // termLen
	hostile = append(hostile, 'a')               // term
	hostile = appendUvarintBytes(hostile, 1)     // cf
	hostile = appendUvarintBytes(hostile, 1)     // df
	hostile = appendUvarintBytes(hostile, 1<<60) // numBlocks: hostile
	if _, err := Read(bytes.NewReader(hostile)); err == nil {
		t.Error("hostile block count accepted")
	}
}

func appendUvarintBytes(dst []byte, v uint64) []byte {
	var tmp [16]byte
	n := 0
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		tmp[n] = b
		n++
		if v == 0 {
			break
		}
	}
	return append(dst, tmp[:n]...)
}
