package index

import "sync"

// Memtable is the mutable in-memory write buffer of the LSM-style segment
// lifecycle: live documents accumulate here between flushes and are
// searchable in place through View, which seals the current contents into
// a throwaway single-shard Segmented index. An update is delete + append —
// the document keeps its external ID but moves to the end of the insertion
// order, exactly the order a later flush (and ultimately a compaction
// replay) preserves, so a quiesced live index is bit-identical to a batch
// build over the surviving documents.
//
// The engine serializes mutations, but searches call View and Has
// concurrently with them, so every method locks. The sealed view is cached
// per generation: it is rebuilt lazily on the first View after a mutation
// and shared by every search until the next one.
type Memtable struct {
	mu        sync.Mutex
	blockSize int // Builder.SetBlockSize convention for sealed views
	entries   []memEntry
	byID      map[string]int // docID → index of its live entry
	gen       uint64         // bumped on every mutation
	viewGen   uint64
	view      *MemView
}

// MemDoc is one buffered document: its external ID, analyzed tokens, and
// an opaque payload the caller wants carried alongside (the engine stores
// the raw body for snippet extraction).
type MemDoc struct {
	ID      string
	Tokens  []string
	Payload string
}

type memEntry struct {
	doc  MemDoc
	dead bool
}

// NewMemtable returns an empty memtable whose sealed views use the given
// block-size convention (> 0 capacity, 0 default, < 0 flat).
func NewMemtable(blockSize int) *Memtable {
	return &Memtable{blockSize: blockSize, byID: make(map[string]int)}
}

// Add upserts a document: a live entry with the same ID is marked dead and
// the new version appended (delete + append ordering). Reports whether an
// existing live entry was replaced.
func (m *Memtable) Add(d MemDoc) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, replaced := m.byID[d.ID]
	if replaced {
		m.entries[m.byID[d.ID]].dead = true
	}
	m.byID[d.ID] = len(m.entries)
	m.entries = append(m.entries, memEntry{doc: d})
	m.gen++
	return replaced
}

// Delete marks the live entry for id dead. Reports whether one existed.
func (m *Memtable) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	at, ok := m.byID[id]
	if !ok {
		return false
	}
	m.entries[at].dead = true
	delete(m.byID, id)
	m.gen++
	return true
}

// Has reports whether a live entry for id is buffered.
func (m *Memtable) Has(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.byID[id]
	return ok
}

// Len returns the number of live buffered documents.
func (m *Memtable) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byID)
}

// Gen returns the mutation generation counter (monotonic; for tests).
func (m *Memtable) Gen() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// LiveDocs returns the live documents in insertion order — the replay
// order a flush seals into a segment. The slice is fresh; the MemDoc
// contents (tokens, payload) are shared and must not be modified.
func (m *Memtable) LiveDocs() []MemDoc {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemDoc, 0, len(m.byID))
	for _, e := range m.entries {
		if !e.dead {
			out = append(out, e.doc)
		}
	}
	return out
}

// MemView is a sealed, immutable snapshot of a memtable's live documents:
// a single-shard index over them plus the ID → payload map searches use
// for membership filtering and snippet extraction. Views are cached per
// generation and shared across searches; they must not be modified.
type MemView struct {
	Seg      *Segmented
	payloads map[string]string
}

// Has reports whether the view contains a document with the external id.
func (v *MemView) Has(id string) bool {
	if v == nil {
		return false
	}
	_, ok := v.payloads[id]
	return ok
}

// Payload returns the payload stored with id, if present.
func (v *MemView) Payload(id string) (string, bool) {
	if v == nil {
		return "", false
	}
	p, ok := v.payloads[id]
	return p, ok
}

// NumDocs returns the number of documents in the view.
func (v *MemView) NumDocs() int {
	if v == nil {
		return 0
	}
	return len(v.payloads)
}

// View seals the current live documents into a searchable snapshot, or
// returns nil when the memtable is empty. The snapshot is rebuilt only
// when the memtable has mutated since the last call; concurrent searches
// between mutations share one view. The view's index carries no max-score
// tables — retrieval over it takes the exhaustive path, which is exact.
func (m *Memtable) View() *MemView {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.byID) == 0 {
		return nil
	}
	if m.view != nil && m.viewGen == m.gen {
		return m.view
	}
	b := NewBuilder()
	b.SetBlockSize(m.blockSize)
	payloads := make(map[string]string, len(m.byID))
	for _, e := range m.entries {
		if e.dead {
			continue
		}
		if err := b.Add(e.doc.ID, e.doc.Tokens); err != nil {
			// Unreachable: byID guarantees live IDs are unique.
			panic(err)
		}
		payloads[e.doc.ID] = e.doc.Payload
	}
	m.view = &MemView{Seg: b.BuildSegmented(1), payloads: payloads}
	m.viewGen = m.gen
	return m.view
}
