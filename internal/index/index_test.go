package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Index {
	t.Helper()
	b := NewBuilder()
	docs := []struct {
		id   string
		toks string
	}{
		{"d1", "apple fruit pie apple"},
		{"d2", "apple mac os"},
		{"d3", "tank army leopard"},
		{"d4", "leopard mac os apple"},
	}
	for _, d := range docs {
		if err := b.Add(d.id, strings.Fields(d.toks)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuildBasics(t *testing.T) {
	x := buildSmall(t)
	if x.NumDocs() != 4 {
		t.Errorf("NumDocs = %d, want 4", x.NumDocs())
	}
	st := x.Stats()
	if st.NumDocs != 4 || st.TotalTokens != 14 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgDocLen != 3.5 {
		t.Errorf("AvgDocLen = %f, want 3.5", st.AvgDocLen)
	}
	if x.DocID(0) != "d1" || x.DocLen(0) != 4 {
		t.Errorf("doc 0 = %q len %d", x.DocID(0), x.DocLen(0))
	}
}

func TestTermStats(t *testing.T) {
	x := buildSmall(t)
	ts, ok := x.Lookup("apple")
	if !ok {
		t.Fatal("apple not found")
	}
	if ts.DF != 3 {
		t.Errorf("DF(apple) = %d, want 3", ts.DF)
	}
	if ts.CF != 4 {
		t.Errorf("CF(apple) = %d, want 4 (doubled in d1)", ts.CF)
	}
	if _, ok := x.Lookup("zebra"); ok {
		t.Error("lookup of absent term succeeded")
	}
}

func TestPostingsSortedWithTF(t *testing.T) {
	x := buildSmall(t)
	pl := x.Postings("apple")
	if len(pl) != 3 {
		t.Fatalf("postings = %v", pl)
	}
	wantDocs := []int32{0, 1, 3}
	wantTFs := []int32{2, 1, 1}
	for i, p := range pl {
		if p.Doc != wantDocs[i] || p.TF != wantTFs[i] {
			t.Errorf("postings[%d] = %+v, want doc %d tf %d", i, p, wantDocs[i], wantTFs[i])
		}
		if i > 0 && pl[i].Doc <= pl[i-1].Doc {
			t.Error("postings not strictly increasing by doc")
		}
	}
	if pl := x.Postings("nosuch"); pl != nil {
		t.Error("postings of absent term non-nil")
	}
}

func TestDuplicateDocRejected(t *testing.T) {
	b := NewBuilder()
	if err := b.Add("d1", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("d1", []string{"b"}); err == nil {
		t.Error("duplicate doc ID accepted")
	}
}

func TestEmptyDocument(t *testing.T) {
	b := NewBuilder()
	if err := b.Add("empty", nil); err != nil {
		t.Fatal(err)
	}
	x := b.Build()
	if x.NumDocs() != 1 || x.DocLen(0) != 0 {
		t.Errorf("empty doc handling: docs=%d len=%d", x.NumDocs(), x.DocLen(0))
	}
	if x.Stats().AvgDocLen != 0 {
		t.Errorf("AvgDocLen = %f", x.Stats().AvgDocLen)
	}
}

func TestEmptyIndexStats(t *testing.T) {
	x := NewBuilder().Build()
	st := x.Stats()
	if st.NumDocs != 0 || st.AvgDocLen != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestDocFreqs(t *testing.T) {
	x := buildSmall(t)
	df := x.DocFreqs()
	if df["apple"] != 3 || df["leopard"] != 2 || df["pie"] != 1 {
		t.Errorf("DocFreqs = %v", df)
	}
}

func TestTermByID(t *testing.T) {
	x := buildSmall(t)
	ts, _ := x.Lookup("leopard")
	if x.Term(ts.ID) != "leopard" {
		t.Errorf("Term(%d) = %q", ts.ID, x.Term(ts.ID))
	}
	if got := x.PostingsByID(ts.ID); len(got) != 2 {
		t.Errorf("PostingsByID = %v", got)
	}
}

func indexesEqual(a, b *Index) bool {
	if a.NumDocs() != b.NumDocs() || a.NumTerms() != b.NumTerms() {
		return false
	}
	if a.Stats() != b.Stats() {
		return false
	}
	for i := int32(0); i < int32(a.NumDocs()); i++ {
		if a.DocID(i) != b.DocID(i) || a.DocLen(i) != b.DocLen(i) {
			return false
		}
	}
	for id := int32(0); id < int32(a.NumTerms()); id++ {
		if a.Term(id) != b.Term(id) {
			return false
		}
		if !reflect.DeepEqual(a.PostingsByID(id), b.PostingsByID(id)) {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	x := buildSmall(t)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !indexesEqual(x, got) {
		t.Error("round-trip index differs")
	}
	// Lookups must work on the decoded index.
	ts, ok := got.Lookup("apple")
	if !ok || ts.CF != 4 {
		t.Errorf("decoded Lookup(apple) = %+v, %v", ts, ok)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "XXXX1\n", "RIDX1\n\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded", in)
		}
	}
}

func TestCodecRoundTripRandomized(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		nDocs := rng.Intn(40) + 1
		vocab := []string{"a", "b", "c", "dd", "ee", "fff", "unicodeé"}
		for i := 0; i < nDocs; i++ {
			n := rng.Intn(30)
			toks := make([]string, n)
			for j := range toks {
				toks[j] = vocab[rng.Intn(len(vocab))]
			}
			if err := b.Add(fmt.Sprintf("doc-%d", i), toks); err != nil {
				return false
			}
		}
		x := b.Build()
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return indexesEqual(x, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	docs := make([][]string, 1000)
	vocab := make([]string, 2000)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%04d", i)
	}
	for i := range docs {
		toks := make([]string, 80)
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))]
		}
		docs[i] = toks
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder()
		for d, toks := range docs {
			bl.Add(fmt.Sprintf("d%d", d), toks)
		}
		bl.Build()
	}
}
