package index

import (
	"strings"
	"testing"
)

func TestSegmentIndexBounds(t *testing.T) {
	x := buildSmall(t)
	for _, n := range []int{1, 2, 3, 4, 9, 0, -1} {
		seg := SegmentIndex(x, n)
		want := n
		if want < 1 {
			want = 1
		}
		if want > x.NumDocs() {
			want = x.NumDocs()
		}
		if seg.NumShards() != want {
			t.Fatalf("n=%d: NumShards = %d, want %d", n, seg.NumShards(), want)
		}
		covered := 0
		var prevHi int32
		for i := 0; i < seg.NumShards(); i++ {
			lo, hi := seg.Shard(i).DocRange()
			if lo != prevHi || hi < lo {
				t.Fatalf("n=%d: shard %d range [%d,%d) not contiguous after %d", n, i, lo, hi, prevHi)
			}
			if seg.Shard(i).NumDocs() == 0 {
				t.Errorf("n=%d: shard %d empty over non-empty collection", n, i)
			}
			covered += seg.Shard(i).NumDocs()
			prevHi = hi
		}
		if covered != x.NumDocs() {
			t.Errorf("n=%d: shards cover %d docs, want %d", n, covered, x.NumDocs())
		}
	}
}

func TestSegmentIndexEmpty(t *testing.T) {
	seg := SegmentIndex(NewBuilder().Build(), 4)
	if seg.NumShards() != 1 || seg.Shard(0).NumDocs() != 0 {
		t.Fatalf("empty index: %d shards, shard 0 has %d docs", seg.NumShards(), seg.Shard(0).NumDocs())
	}
}

// TestShardPostingsPartition checks the core shard-view invariant: for
// every term, concatenating the per-shard posting sub-slices in shard
// order reproduces the global posting list exactly.
func TestShardPostingsPartition(t *testing.T) {
	x := buildSmall(t)
	for _, n := range []int{1, 2, 3, 4} {
		seg := SegmentIndex(x, n)
		for id := int32(0); int(id) < x.NumTerms(); id++ {
			var merged []Posting
			for i := 0; i < seg.NumShards(); i++ {
				sh := seg.Shard(i)
				lo, hi := sh.DocRange()
				for _, p := range sh.Postings(id) {
					if p.Doc < lo || p.Doc >= hi {
						t.Fatalf("n=%d term %d: posting doc %d outside shard [%d,%d)", n, id, p.Doc, lo, hi)
					}
				}
				merged = append(merged, sh.Postings(id)...)
			}
			global := x.PostingsByID(id)
			if len(merged) != len(global) {
				t.Fatalf("n=%d term %q: %d shard postings, %d global", n, x.Term(id), len(merged), len(global))
			}
			for j := range merged {
				if merged[j] != global[j] {
					t.Fatalf("n=%d term %q: posting %d = %v, want %v", n, x.Term(id), j, merged[j], global[j])
				}
			}
		}
	}
}

func TestBuildSegmented(t *testing.T) {
	b := NewBuilder()
	for _, d := range []struct{ id, toks string }{
		{"a", "x y"}, {"b", "y z"}, {"c", "z x"},
	} {
		if err := b.Add(d.id, strings.Fields(d.toks)); err != nil {
			t.Fatal(err)
		}
	}
	seg := b.BuildSegmented(2)
	if seg.NumShards() != 2 || seg.Index().NumDocs() != 3 {
		t.Fatalf("BuildSegmented: %d shards over %d docs", seg.NumShards(), seg.Index().NumDocs())
	}
	sizes := seg.ShardSizes()
	if sizes[0]+sizes[1] != 3 {
		t.Errorf("ShardSizes = %v", sizes)
	}
}

func TestResegment(t *testing.T) {
	x := buildSmall(t)
	seg := SegmentIndex(x, 1).Resegment(4)
	if seg.NumShards() != 4 {
		t.Fatalf("Resegment(4): %d shards", seg.NumShards())
	}
	if seg.Index() != x {
		t.Error("Resegment must share the physical index")
	}
}
