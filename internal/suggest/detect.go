package suggest

import "sort"

// Specialization is one mined specialization q' of an ambiguous query q,
// with its log popularity f(q') and the probability P(q'|q) of
// Definition 1.
type Specialization struct {
	Query string
	Freq  int
	Prob  float64
}

// DetectOptions configures AmbiguousQueryDetect.
type DetectOptions struct {
	// S is the popularity divisor s of Algorithm 1: a candidate q' is kept
	// only if f(q') >= f(q)/s. Default 10.
	S float64
	// MaxCandidates bounds the A(q) call. Default 50.
	MaxCandidates int
	// RequireSpecialization additionally filters candidates through the
	// lexical IsSpecialization predicate (on by default), keeping only
	// true refinements of q among the session followers.
	RequireSpecialization bool
	// ClickWeight implements the paper's §6 (ii) future-work extension:
	// the probability of a specialization is computed from
	// f(q') + ClickWeight·clicks(q') instead of raw frequency, rewarding
	// refinements users were actually satisfied by. 0 disables it
	// (the paper's published Definition 1).
	ClickWeight float64
}

// DefaultDetectOptions returns the configuration used in the reproduction
// experiments.
func DefaultDetectOptions() DetectOptions {
	return DetectOptions{S: 10, MaxCandidates: 50, RequireSpecialization: true}
}

func (o DetectOptions) withDefaults() DetectOptions {
	if o.S == 0 {
		o.S = 10
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 50
	}
	return o
}

// AmbiguousQueryDetect is the paper's Algorithm 1. Given the submitted
// query q, a trained recommendation algorithm A and the popularity
// function f mined from the log, it computes the set S_q of popular
// specializations of q:
//
//  1. Ŝ_q ← A(q)
//  2. S_q ← { q' ∈ Ŝ_q | f(q') ≥ f(q)/s }
//  3. if |S_q| ≥ 2 return S_q, else return ∅
//
// and attaches the Definition 1 probabilities
// P(q'|q) = f(q') / Σ_{q”∈S_q} f(q”). A non-empty return value means q
// is ambiguous/faceted and its results should be diversified.
func AmbiguousQueryDetect(q string, rec *Recommender, opts DetectOptions) []Specialization {
	opts = opts.withDefaults()
	candidates := rec.Recommend(q, opts.MaxCandidates)
	fq := float64(rec.Freq().Of(q))
	threshold := fq / opts.S

	var specs []Specialization
	for _, c := range candidates {
		if opts.RequireSpecialization && !IsSpecialization(q, c.Query) {
			continue
		}
		if float64(c.Freq) >= threshold && c.Freq > 0 {
			specs = append(specs, Specialization{Query: c.Query, Freq: c.Freq})
		}
	}
	if len(specs) < 2 {
		return nil
	}
	// Definition 1 probabilities, optionally click-weighted (§6 ii).
	weight := func(s Specialization) float64 {
		return float64(s.Freq) + opts.ClickWeight*float64(rec.Clicks(s.Query))
	}
	total := 0.0
	for _, s := range specs {
		total += weight(s)
	}
	for i := range specs {
		specs[i].Prob = weight(specs[i]) / total
	}
	// Deterministic order: by probability descending, then query.
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].Prob != specs[j].Prob {
			return specs[i].Prob > specs[j].Prob
		}
		return specs[i].Query < specs[j].Query
	})
	return specs
}

// TopSpecializations truncates specs to the k most probable and
// renormalizes the probabilities. §3.1.3: "if |S_q| > k we select from S_q
// the k specializations with the largest probabilities."
func TopSpecializations(specs []Specialization, k int) []Specialization {
	if k <= 0 || len(specs) <= k {
		return specs
	}
	out := make([]Specialization, k)
	copy(out, specs[:k])
	total := 0
	for _, s := range out {
		total += s.Freq
	}
	if total > 0 {
		for i := range out {
			out[i].Prob = float64(out[i].Freq) / float64(total)
		}
	}
	return out
}
