package suggest

import (
	"math"
	"testing"
	"time"

	"repro/internal/qfg"
	"repro/internal/querylog"
)

func at(min int) time.Time {
	return time.Date(2006, 3, 1, 10, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute)
}

func rec(user string, min int, q string, clicks ...string) querylog.Record {
	return querylog.Record{User: user, Time: at(min), Query: q, Clicks: clicks}
}

// trainingLog builds a log where "leopard" is ambiguous with three
// specializations of decreasing popularity: mac os x (3 users), tank (2),
// pictures (1); plus an unambiguous query.
func trainingLog() *querylog.Log {
	var recs []querylog.Record
	add := func(user string, min int, q string, clicks ...string) {
		recs = append(recs, rec(user, min, q, clicks...))
	}
	add("u1", 0, "leopard")
	add("u1", 1, "leopard mac os x", "u1.example/osx")
	add("u2", 0, "leopard")
	add("u2", 2, "leopard mac os x", "u2.example/osx")
	add("u3", 0, "leopard")
	add("u3", 1, "leopard mac os x")
	add("u4", 0, "leopard")
	add("u4", 1, "leopard tank", "u4.example/tank")
	add("u5", 0, "leopard")
	add("u5", 2, "leopard tank")
	add("u6", 0, "leopard")
	add("u6", 1, "leopard pictures")
	add("u7", 0, "weather boston", "u7.example/weather")
	return querylog.New(recs)
}

func trained(t *testing.T) (*Recommender, *querylog.Log) {
	t.Helper()
	l := trainingLog()
	sessions := qfg.ExtractSessions(l, qfg.DefaultOptions())
	r := Train(sessions, l.Frequencies(), TrainOptions{})
	return r, l
}

func TestRecommendDirectEvidence(t *testing.T) {
	r, _ := trained(t)
	sugg := r.Recommend("leopard", 10)
	if len(sugg) != 3 {
		t.Fatalf("suggestions = %+v, want 3", sugg)
	}
	if sugg[0].Query != "leopard mac os x" {
		t.Errorf("top suggestion = %q, want mac os x", sugg[0].Query)
	}
	if sugg[0].Score <= sugg[1].Score || sugg[1].Score <= sugg[2].Score {
		t.Errorf("scores not strictly ordered: %+v", sugg)
	}
	if sugg[0].Freq != 3 {
		t.Errorf("f(mac os x) = %d, want 3", sugg[0].Freq)
	}
}

func TestRecommendMaxTruncates(t *testing.T) {
	r, _ := trained(t)
	if got := r.Recommend("leopard", 2); len(got) != 2 {
		t.Errorf("len = %d, want 2", len(got))
	}
}

func TestRecommendUnknownQueryFallback(t *testing.T) {
	r, _ := trained(t)
	// "leopard os" never occurs in the log, but shares the term "leopard"
	// with satisfactory sessions whose final queries become candidates.
	sugg := r.Recommend("leopard os", 10)
	if len(sugg) == 0 {
		t.Fatal("term fallback returned nothing")
	}
	for _, s := range sugg {
		if s.Query == "leopard os" {
			t.Error("fallback suggested the query itself")
		}
	}
}

func TestRecommendNoEvidenceAtAll(t *testing.T) {
	r, _ := trained(t)
	if got := r.Recommend("quantum chromodynamics", 10); len(got) != 0 {
		t.Errorf("suggestions for alien query = %+v", got)
	}
}

func TestIsSpecialization(t *testing.T) {
	cases := []struct {
		q1, q2 string
		want   bool
	}{
		{"leopard", "leopard tank", true},
		{"leopard", "leopard mac os x", true},
		{"leopard tank", "leopard", false},    // generalization
		{"leopard", "leopard", false},         // identical
		{"leopard", "jaguar pictures", false}, // disjoint
		{"apple", "APPLE iPod!", true},        // normalization applies
		{"", "anything", false},
		{"a b", "a c b", true},
	}
	for _, c := range cases {
		if got := IsSpecialization(c.q1, c.q2); got != c.want {
			t.Errorf("IsSpecialization(%q,%q) = %v, want %v", c.q1, c.q2, got, c.want)
		}
	}
}

func TestAmbiguousQueryDetect(t *testing.T) {
	r, _ := trained(t)
	specs := AmbiguousQueryDetect("leopard", r, DefaultDetectOptions())
	if len(specs) != 3 {
		t.Fatalf("specs = %+v, want 3", specs)
	}
	// Probabilities: 3/6, 2/6, 1/6 by Definition 1.
	want := []struct {
		q string
		p float64
	}{
		{"leopard mac os x", 0.5},
		{"leopard tank", 2.0 / 6},
		{"leopard pictures", 1.0 / 6},
	}
	total := 0.0
	for i, w := range want {
		if specs[i].Query != w.q {
			t.Errorf("specs[%d] = %q, want %q", i, specs[i].Query, w.q)
		}
		if math.Abs(specs[i].Prob-w.p) > 1e-12 {
			t.Errorf("P(%q) = %f, want %f", w.q, specs[i].Prob, w.p)
		}
		total += specs[i].Prob
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probabilities sum to %f", total)
	}
}

func TestDetectUnambiguousReturnsNil(t *testing.T) {
	r, _ := trained(t)
	if specs := AmbiguousQueryDetect("weather boston", r, DefaultDetectOptions()); specs != nil {
		t.Errorf("unambiguous query detected as ambiguous: %+v", specs)
	}
}

func TestDetectPopularityFilter(t *testing.T) {
	r, _ := trained(t)
	// f(leopard) = 6; with s = 3 the threshold is 2, dropping "pictures"
	// (f=1).
	opts := DefaultDetectOptions()
	opts.S = 3
	specs := AmbiguousQueryDetect("leopard", r, opts)
	if len(specs) != 2 {
		t.Fatalf("specs = %+v, want 2 after popularity filter", specs)
	}
	for _, s := range specs {
		if s.Query == "leopard pictures" {
			t.Error("low-popularity specialization survived the filter")
		}
	}
	// Probabilities renormalized over survivors: 3/5, 2/5.
	if math.Abs(specs[0].Prob-0.6) > 1e-12 || math.Abs(specs[1].Prob-0.4) > 1e-12 {
		t.Errorf("renormalized probs = %f, %f", specs[0].Prob, specs[1].Prob)
	}
}

func TestDetectRequiresTwoSpecializations(t *testing.T) {
	// A query with exactly one refinement must not be flagged (|S_q| >= 2).
	l := querylog.New([]querylog.Record{
		rec("u1", 0, "golang"),
		rec("u1", 1, "golang generics tutorial", "x.example/a"),
	})
	sessions := qfg.ExtractSessions(l, qfg.DefaultOptions())
	r := Train(sessions, l.Frequencies(), TrainOptions{})
	if specs := AmbiguousQueryDetect("golang", r, DefaultDetectOptions()); specs != nil {
		t.Errorf("single-specialization query flagged ambiguous: %+v", specs)
	}
}

func TestTopSpecializations(t *testing.T) {
	specs := []Specialization{
		{Query: "a", Freq: 5, Prob: 0.5},
		{Query: "b", Freq: 3, Prob: 0.3},
		{Query: "c", Freq: 2, Prob: 0.2},
	}
	top := TopSpecializations(specs, 2)
	if len(top) != 2 {
		t.Fatalf("len = %d, want 2", len(top))
	}
	if math.Abs(top[0].Prob-5.0/8) > 1e-12 || math.Abs(top[1].Prob-3.0/8) > 1e-12 {
		t.Errorf("renormalized probs = %f, %f", top[0].Prob, top[1].Prob)
	}
	// k >= len or k <= 0: unchanged.
	if got := TopSpecializations(specs, 10); len(got) != 3 {
		t.Error("k > len truncated")
	}
	if got := TopSpecializations(specs, 0); len(got) != 3 {
		t.Error("k = 0 truncated")
	}
}

func TestSatisfactorySessionsWeighMore(t *testing.T) {
	// Two users refine "jaguar" to different queries; only one session ends
	// with a click. With equal frequencies the clicked refinement must rank
	// first.
	l := querylog.New([]querylog.Record{
		rec("u1", 0, "jaguar"),
		rec("u1", 1, "jaguar car", "x.example/car"),
		rec("u2", 0, "jaguar"),
		rec("u2", 1, "jaguar animal"),
	})
	sessions := qfg.ExtractSessions(l, qfg.DefaultOptions())
	r := Train(sessions, l.Frequencies(), TrainOptions{})
	sugg := r.Recommend("jaguar", 10)
	if len(sugg) != 2 {
		t.Fatalf("suggestions = %+v", sugg)
	}
	if sugg[0].Query != "jaguar car" {
		t.Errorf("clicked refinement should rank first, got %q", sugg[0].Query)
	}
}

func TestClicksTracking(t *testing.T) {
	r, _ := trained(t)
	// "leopard mac os x" received clicks from u1 and u2.
	if got := r.Clicks("leopard mac os x"); got != 2 {
		t.Errorf("Clicks(mac os x) = %d, want 2", got)
	}
	if got := r.Clicks("leopard pictures"); got != 0 {
		t.Errorf("Clicks(pictures) = %d, want 0", got)
	}
	if got := r.Clicks("never seen"); got != 0 {
		t.Errorf("Clicks(unseen) = %d", got)
	}
}

func TestDetectClickWeighted(t *testing.T) {
	r, _ := trained(t)
	plain := AmbiguousQueryDetect("leopard", r, DefaultDetectOptions())
	opts := DefaultDetectOptions()
	opts.ClickWeight = 2
	clicked := AmbiguousQueryDetect("leopard", r, opts)
	if len(plain) != len(clicked) {
		t.Fatalf("click weighting changed the set: %d vs %d", len(plain), len(clicked))
	}
	// mac os x: f=3, clicks=2 -> weight 7; tank: f=2, clicks=1 -> 4;
	// pictures: f=1, clicks=0 -> 1. Its probability must rise vs plain.
	var plainP, clickP float64
	for _, s := range plain {
		if s.Query == "leopard mac os x" {
			plainP = s.Prob
		}
	}
	total := 0.0
	for _, s := range clicked {
		total += s.Prob
		if s.Query == "leopard mac os x" {
			clickP = s.Prob
		}
	}
	if clickP <= plainP {
		t.Errorf("click weighting did not boost clicked spec: %f <= %f", clickP, plainP)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("click-weighted probs sum to %f", total)
	}
	if math.Abs(clickP-7.0/12) > 1e-12 {
		t.Errorf("P(mac os x) = %f, want 7/12", clickP)
	}
}
