// Package suggest implements the query-recommendation substrate of §3.1
// and the paper's Algorithm 1 (AmbiguousQueryDetect).
//
// The recommender follows the "search shortcuts" approach of Broccolo et
// al. (the algorithm the paper uses, cited as [7]): it learns, from the
// logical sessions mined by package qfg, which queries users eventually
// reached after submitting a given query — giving, for each query q, the
// set of candidate refinements together with the log-derived popularity
// f(q') Algorithm 1 filters on. Candidates are, by construction, queries
// present in the log, "for which related probabilities can be, thus,
// easily computed" (§3.1).
package suggest

import (
	"sort"

	"repro/internal/qfg"
	"repro/internal/querylog"
	"repro/internal/text"
)

// Suggestion is one candidate refinement returned by the recommender.
type Suggestion struct {
	Query string
	Score float64 // session-evidence score (higher = stronger refinement)
	Freq  int     // f(q'): popularity of the suggestion in the training log
}

// Recommender is a session-based query recommender: the A(q) of
// Algorithm 1.
type Recommender struct {
	freq querylog.Freq
	// follow[q][q'] accumulates evidence that q' refines q: one unit per
	// session in which q' follows q, discounted by distance and boosted
	// for satisfactory (clicked) sessions.
	follow map[string]map[string]float64
	// shortcut index: term → final queries of satisfactory sessions, the
	// fallback route for queries with no direct session evidence.
	byTerm map[string]map[string]float64
	// clicks[q] counts submissions of q that received at least one click —
	// the click-through signal of the paper's future work (§6 ii).
	clicks map[string]int
}

// TrainOptions tunes recommender training.
type TrainOptions struct {
	// PositionDecay discounts pairs (q, q') that are d>1 steps apart in a
	// session by PositionDecay^(d-1). Default 0.8.
	PositionDecay float64
	// SatisfactoryBoost multiplies evidence from sessions that end with a
	// click. Default 1.5.
	SatisfactoryBoost float64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.PositionDecay == 0 {
		o.PositionDecay = 0.8
	}
	if o.SatisfactoryBoost == 0 {
		o.SatisfactoryBoost = 1.5
	}
	return o
}

// Train builds a Recommender from logical sessions and the training-log
// popularity function.
func Train(sessions []qfg.Session, freq querylog.Freq, opts TrainOptions) *Recommender {
	opts = opts.withDefaults()
	r := &Recommender{
		freq:   freq,
		follow: make(map[string]map[string]float64),
		byTerm: make(map[string]map[string]float64),
		clicks: make(map[string]int),
	}
	for _, s := range sessions {
		boost := 1.0
		if s.Satisfactory() {
			boost = opts.SatisfactoryBoost
		}
		for _, rec := range s.Records {
			if len(rec.Clicks) > 0 {
				r.clicks[rec.Query]++
			}
		}
		qs := s.Queries()
		for i := 0; i < len(qs); i++ {
			decay := 1.0
			for j := i + 1; j < len(qs); j++ {
				if qs[j] == qs[i] {
					continue
				}
				r.addFollow(qs[i], qs[j], boost*decay)
				decay *= opts.PositionDecay
			}
		}
		// Shortcut index: the session's final query, keyed by the terms of
		// every query in the session.
		if s.Satisfactory() && len(qs) > 1 {
			final := qs[len(qs)-1]
			for _, q := range qs[:len(qs)-1] {
				for _, term := range text.Tokenize(q) {
					row := r.byTerm[term]
					if row == nil {
						row = make(map[string]float64)
						r.byTerm[term] = row
					}
					row[final] += boost
				}
			}
		}
	}
	return r
}

func (r *Recommender) addFollow(q, next string, w float64) {
	row := r.follow[q]
	if row == nil {
		row = make(map[string]float64)
		r.follow[q] = row
	}
	row[next] += w
}

// Freq exposes the popularity function f(·) the recommender was trained
// with.
func (r *Recommender) Freq() querylog.Freq { return r.freq }

// Clicks returns the number of clicked submissions of q observed in the
// training sessions.
func (r *Recommender) Clicks(q string) int { return r.clicks[q] }

// Recommend returns up to max candidate refinements of q, the A(q) call of
// Algorithm 1. Direct session evidence is preferred; if q produced no
// session transitions (e.g. a slightly different surface form), the
// term-based shortcut index provides fallback candidates. Results are
// ordered by descending score with a deterministic tie-break.
func (r *Recommender) Recommend(q string, max int) []Suggestion {
	scores := make(map[string]float64)
	for to, w := range r.follow[q] {
		scores[to] += w
	}
	if len(scores) == 0 {
		// Fallback: aggregate shortcut evidence over q's terms.
		for _, term := range text.Tokenize(q) {
			for final, w := range r.byTerm[term] {
				if final == q {
					continue
				}
				scores[final] += w * 0.5
			}
		}
	}
	out := make([]Suggestion, 0, len(scores))
	for s, w := range scores {
		out = append(out, Suggestion{Query: s, Score: w, Freq: r.freq.Of(s)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Query < out[j].Query
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// IsSpecialization reports whether q2 states the information need of q1
// "more precisely" (the Boldi et al. terminology adopted in §3.1). The
// predicate is purely lexical: q2 must contain every token of q1 and add
// at least one token. The session evidence the recommender is trained on
// supplies the behavioural part of the definition.
func IsSpecialization(q1, q2 string) bool {
	t1, t2 := text.Tokenize(q1), text.Tokenize(q2)
	if len(t2) <= len(t1) || len(t1) == 0 {
		return false
	}
	set := make(map[string]bool, len(t2))
	for _, t := range t2 {
		set[t] = true
	}
	for _, t := range t1 {
		if !set[t] {
			return false
		}
	}
	return true
}
