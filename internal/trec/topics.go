// Package trec models the TREC 2009 Web track Diversity Task testbed the
// paper evaluates on (§5, Appendix B): topics with 3–8 manually identified
// sub-topics, relevance judgements at sub-topic level (diversity qrels),
// and TREC-format run files. Parsing and formatting follow the flat-text
// conventions of the track so artifacts are interchangeable with standard
// tooling (ndeval-style qrels, trec_eval-style runs).
package trec

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Subtopic is one aspect of an ambiguous/faceted topic, e.g. for TREC
// topic 1 ("obama family tree"): "Where did Barack Obama's parents and
// grandparents come from?".
type Subtopic struct {
	ID          int    // 1-based within the topic
	Type        string // "inf" (informational) or "nav" (navigational)
	Description string
}

// Topic is one diversity-task topic.
type Topic struct {
	ID          int
	Query       string // the ambiguous/faceted query submitted to the engine
	Description string
	Subtopics   []Subtopic
}

// Topics is an ordered topic collection.
type Topics []Topic

// ByID returns the topic with the given ID.
func (ts Topics) ByID(id int) (Topic, bool) {
	for _, t := range ts {
		if t.ID == id {
			return t, true
		}
	}
	return Topic{}, false
}

// WriteTopics serializes topics in a line-oriented format:
//
//	topic <id> <query>
//	desc <description>
//	sub <id> <type> <description>
func WriteTopics(w io.Writer, topics Topics) error {
	bw := bufio.NewWriter(w)
	for _, t := range topics {
		if _, err := fmt.Fprintf(bw, "topic %d %s\n", t.ID, t.Query); err != nil {
			return err
		}
		if t.Description != "" {
			if _, err := fmt.Fprintf(bw, "desc %s\n", t.Description); err != nil {
				return err
			}
		}
		for _, s := range t.Subtopics {
			typ := s.Type
			if typ == "" {
				typ = "inf"
			}
			if _, err := fmt.Fprintf(bw, "sub %d %s %s\n", s.ID, typ, s.Description); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTopics parses the WriteTopics format. Blank lines and '#' comments
// are ignored.
func ReadTopics(r io.Reader) (Topics, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var topics Topics
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trec: topics line %d: malformed %q", lineNo, line)
		}
		switch fields[0] {
		case "topic":
			rest := strings.SplitN(fields[1], " ", 2)
			if len(rest) < 2 {
				return nil, fmt.Errorf("trec: topics line %d: topic needs id and query", lineNo)
			}
			id, err := strconv.Atoi(rest[0])
			if err != nil {
				return nil, fmt.Errorf("trec: topics line %d: bad topic id %q", lineNo, rest[0])
			}
			topics = append(topics, Topic{ID: id, Query: rest[1]})
		case "desc":
			if len(topics) == 0 {
				return nil, fmt.Errorf("trec: topics line %d: desc before topic", lineNo)
			}
			topics[len(topics)-1].Description = fields[1]
		case "sub":
			if len(topics) == 0 {
				return nil, fmt.Errorf("trec: topics line %d: sub before topic", lineNo)
			}
			rest := strings.SplitN(fields[1], " ", 3)
			if len(rest) < 3 {
				return nil, fmt.Errorf("trec: topics line %d: sub needs id, type, description", lineNo)
			}
			id, err := strconv.Atoi(rest[0])
			if err != nil {
				return nil, fmt.Errorf("trec: topics line %d: bad sub id %q", lineNo, rest[0])
			}
			t := &topics[len(topics)-1]
			t.Subtopics = append(t.Subtopics, Subtopic{ID: id, Type: rest[1], Description: rest[2]})
		default:
			return nil, fmt.Errorf("trec: topics line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return topics, nil
}

// Qrels holds diversity-task relevance judgements: binary (or graded)
// relevance per (topic, subtopic, document).
type Qrels struct {
	// judgments[topic][subtopic][doc] = relevance (> 0 means relevant)
	judgments map[int]map[int]map[string]int
}

// NewQrels returns an empty judgement set.
func NewQrels() *Qrels {
	return &Qrels{judgments: make(map[int]map[int]map[string]int)}
}

// Add records a judgement. Later calls overwrite earlier ones for the same
// triple.
func (q *Qrels) Add(topic, subtopic int, docID string, rel int) {
	t := q.judgments[topic]
	if t == nil {
		t = make(map[int]map[string]int)
		q.judgments[topic] = t
	}
	s := t[subtopic]
	if s == nil {
		s = make(map[string]int)
		t[subtopic] = s
	}
	s[docID] = rel
}

// Rel returns the judgement for (topic, subtopic, docID); unjudged
// documents return 0.
func (q *Qrels) Rel(topic, subtopic int, docID string) int {
	return q.judgments[topic][subtopic][docID]
}

// Relevant reports whether the document is relevant (> 0) to the subtopic.
func (q *Qrels) Relevant(topic, subtopic int, docID string) bool {
	return q.Rel(topic, subtopic, docID) > 0
}

// RelevantToAny reports whether the document is relevant to at least one
// subtopic of the topic.
func (q *Qrels) RelevantToAny(topic int, docID string) bool {
	for _, sub := range q.judgments[topic] {
		if sub[docID] > 0 {
			return true
		}
	}
	return false
}

// Subtopics returns the sorted subtopic IDs judged for the topic.
func (q *Qrels) Subtopics(topic int) []int {
	subs := q.judgments[topic]
	out := make([]int, 0, len(subs))
	for s := range subs {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Topics returns the sorted topic IDs present in the judgement set.
func (q *Qrels) Topics() []int {
	out := make([]int, 0, len(q.judgments))
	for t := range q.judgments {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// NumRelevant returns the number of documents relevant to (topic, subtopic).
func (q *Qrels) NumRelevant(topic, subtopic int) int {
	n := 0
	for _, rel := range q.judgments[topic][subtopic] {
		if rel > 0 {
			n++
		}
	}
	return n
}

// RelevantDocs returns the sorted IDs of documents relevant to the
// subtopic.
func (q *Qrels) RelevantDocs(topic, subtopic int) []string {
	var out []string
	for doc, rel := range q.judgments[topic][subtopic] {
		if rel > 0 {
			out = append(out, doc)
		}
	}
	sort.Strings(out)
	return out
}

// JudgedPool returns the sorted IDs of all documents judged (relevant to
// any subtopic) for the topic — the pool the ideal-gain computation of
// α-NDCG greedily selects from.
func (q *Qrels) JudgedPool(topic int) []string {
	set := make(map[string]bool)
	for _, sub := range q.judgments[topic] {
		for doc, rel := range sub {
			if rel > 0 {
				set[doc] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for doc := range set {
		out = append(out, doc)
	}
	sort.Strings(out)
	return out
}

// WriteQrels serializes judgements in the diversity-qrels format
// "topic subtopic docno rel", sorted for determinism.
func WriteQrels(w io.Writer, q *Qrels) error {
	bw := bufio.NewWriter(w)
	for _, t := range q.Topics() {
		for _, s := range q.Subtopics(t) {
			docs := make([]string, 0, len(q.judgments[t][s]))
			for d := range q.judgments[t][s] {
				docs = append(docs, d)
			}
			sort.Strings(docs)
			for _, d := range docs {
				if _, err := fmt.Fprintf(bw, "%d %d %s %d\n", t, s, d, q.judgments[t][s][d]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ErrBadQrels reports a malformed qrels line.
var ErrBadQrels = errors.New("trec: malformed qrels")

// ReadQrels parses the diversity-qrels format.
func ReadQrels(r io.Reader) (*Qrels, error) {
	q := NewQrels()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("%w: line %d: %d fields", ErrBadQrels, lineNo, len(f))
		}
		topic, err1 := strconv.Atoi(f[0])
		sub, err2 := strconv.Atoi(f[1])
		rel, err3 := strconv.Atoi(f[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: line %d: non-numeric field", ErrBadQrels, lineNo)
		}
		q.Add(topic, sub, f[2], rel)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return q, nil
}
