package trec

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleTopics() Topics {
	return Topics{
		{
			ID:          1,
			Query:       "obama family tree",
			Description: "Users want genealogy information about Barack Obama.",
			Subtopics: []Subtopic{
				{ID: 1, Type: "nav", Description: "Find the TIME magazine photo essay Barack Obama's Family Tree"},
				{ID: 2, Type: "inf", Description: "Where did Barack Obama's parents and grandparents come from?"},
				{ID: 3, Type: "inf", Description: "Find biographical information on Barack Obama's mother"},
			},
		},
		{
			ID:        2,
			Query:     "leopard",
			Subtopics: []Subtopic{{ID: 1, Type: "inf", Description: "mac os x"}, {ID: 2, Type: "inf", Description: "tank"}},
		},
	}
}

func TestTopicsRoundTrip(t *testing.T) {
	topics := sampleTopics()
	var buf bytes.Buffer
	if err := WriteTopics(&buf, topics); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTopics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, topics) {
		t.Errorf("round trip:\ngot  %+v\nwant %+v", got, topics)
	}
}

func TestTopicsByID(t *testing.T) {
	topics := sampleTopics()
	got, ok := topics.ByID(2)
	if !ok || got.Query != "leopard" {
		t.Errorf("ByID(2) = %+v, %v", got, ok)
	}
	if _, ok := topics.ByID(99); ok {
		t.Error("ByID(99) found a topic")
	}
}

func TestReadTopicsErrors(t *testing.T) {
	bad := []string{
		"sub 1 inf orphan subtopic\n",
		"desc orphan description\n",
		"topic notanumber query\n",
		"topic 1\n",
		"bogus directive here\n",
		"topic 1 q\nsub x inf broken\n",
	}
	for _, in := range bad {
		if _, err := ReadTopics(strings.NewReader(in)); err == nil {
			t.Errorf("ReadTopics(%q) succeeded", in)
		}
	}
}

func TestReadTopicsSkipsComments(t *testing.T) {
	in := "# comment\n\ntopic 7 some query\nsub 1 inf aspect one\n"
	got, err := ReadTopics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 7 || len(got[0].Subtopics) != 1 {
		t.Errorf("got %+v", got)
	}
}

func sampleQrels() *Qrels {
	q := NewQrels()
	q.Add(1, 1, "docA", 1)
	q.Add(1, 1, "docB", 0)
	q.Add(1, 2, "docB", 1)
	q.Add(1, 2, "docC", 1)
	q.Add(2, 1, "docX", 2)
	return q
}

func TestQrelsAccessors(t *testing.T) {
	q := sampleQrels()
	if !q.Relevant(1, 1, "docA") {
		t.Error("docA not relevant to 1.1")
	}
	if q.Relevant(1, 1, "docB") {
		t.Error("docB judged 0 but relevant")
	}
	if q.Rel(2, 1, "docX") != 2 {
		t.Errorf("graded rel = %d", q.Rel(2, 1, "docX"))
	}
	if q.Rel(9, 9, "none") != 0 {
		t.Error("unjudged rel != 0")
	}
	if !q.RelevantToAny(1, "docC") || q.RelevantToAny(1, "docZ") {
		t.Error("RelevantToAny wrong")
	}
	if got := q.Subtopics(1); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Subtopics = %v", got)
	}
	if got := q.Topics(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Topics = %v", got)
	}
	if q.NumRelevant(1, 2) != 2 {
		t.Errorf("NumRelevant(1,2) = %d", q.NumRelevant(1, 2))
	}
	if got := q.RelevantDocs(1, 2); !reflect.DeepEqual(got, []string{"docB", "docC"}) {
		t.Errorf("RelevantDocs = %v", got)
	}
	if got := q.JudgedPool(1); !reflect.DeepEqual(got, []string{"docA", "docB", "docC"}) {
		t.Errorf("JudgedPool = %v", got)
	}
}

func TestQrelsRoundTrip(t *testing.T) {
	q := sampleQrels()
	var buf bytes.Buffer
	if err := WriteQrels(&buf, q); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := ReadQrels(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteQrels(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if first != buf2.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", first, buf2.String())
	}
}

func TestReadQrelsErrors(t *testing.T) {
	for _, in := range []string{"1 1 doc\n", "a 1 doc 1\n", "1 b doc 1\n", "1 1 doc x\n"} {
		if _, err := ReadQrels(strings.NewReader(in)); err == nil {
			t.Errorf("ReadQrels(%q) succeeded", in)
		}
	}
}

func TestRunRoundTrip(t *testing.T) {
	r := NewRun()
	r.AddRanking(1, []string{"d3", "d1", "d2"}, "sys")
	r.AddRanking(2, []string{"dX"}, "sys")
	var buf bytes.Buffer
	if err := WriteRun(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ranking(1), []string{"d3", "d1", "d2"}) {
		t.Errorf("Ranking(1) = %v", got.Ranking(1))
	}
	if !reflect.DeepEqual(got.Topics(), []int{1, 2}) {
		t.Errorf("Topics = %v", got.Topics())
	}
	e := got.Entries(1)[0]
	if e.Rank != 1 || e.Tag != "sys" || e.Score != 3 {
		t.Errorf("entry = %+v", e)
	}
}

func TestRunNormalize(t *testing.T) {
	r := NewRun()
	r.Add(RunEntry{Topic: 1, DocID: "low", Rank: 1, Score: 1})
	r.Add(RunEntry{Topic: 1, DocID: "high", Rank: 2, Score: 9})
	r.Add(RunEntry{Topic: 1, DocID: "mid", Rank: 3, Score: 5})
	r.Normalize()
	if got := r.Ranking(1); !reflect.DeepEqual(got, []string{"high", "mid", "low"}) {
		t.Errorf("normalized ranking = %v", got)
	}
	for i, e := range r.Entries(1) {
		if e.Rank != i+1 {
			t.Errorf("rank[%d] = %d", i, e.Rank)
		}
	}
}

func TestReadRunErrors(t *testing.T) {
	for _, in := range []string{
		"1 Q0 doc 1 2.5\n",        // 5 fields
		"x Q0 doc 1 2.5 tag\n",    // bad topic
		"1 Q0 doc r 2.5 tag\n",    // bad rank
		"1 Q0 doc 1 notnum tag\n", // bad score
	} {
		if _, err := ReadRun(strings.NewReader(in)); err == nil {
			t.Errorf("ReadRun(%q) succeeded", in)
		}
	}
}

func TestEmptyRunAndQrels(t *testing.T) {
	r := NewRun()
	if len(r.Topics()) != 0 || len(r.Ranking(5)) != 0 {
		t.Error("empty run misbehaves")
	}
	q := NewQrels()
	if len(q.Topics()) != 0 || len(q.JudgedPool(1)) != 0 {
		t.Error("empty qrels misbehaves")
	}
}
