package trec

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// RunEntry is one line of a TREC run: a retrieved document for a topic.
type RunEntry struct {
	Topic int
	DocID string
	Rank  int // 1-based
	Score float64
	Tag   string // system identifier
}

// Run maps topics to their ranked result lists.
type Run struct {
	byTopic map[int][]RunEntry
}

// NewRun returns an empty run.
func NewRun() *Run { return &Run{byTopic: make(map[int][]RunEntry)} }

// Add appends an entry to its topic's list (entries should be added in
// rank order; Ranking is re-derived by Normalize).
func (r *Run) Add(e RunEntry) {
	r.byTopic[e.Topic] = append(r.byTopic[e.Topic], e)
}

// AddRanking appends a whole ranked list of document IDs for a topic,
// assigning ranks 1..n and descending synthetic scores when none are
// provided.
func (r *Run) AddRanking(topic int, docIDs []string, tag string) {
	for i, d := range docIDs {
		r.Add(RunEntry{
			Topic: topic,
			DocID: d,
			Rank:  i + 1,
			Score: float64(len(docIDs) - i),
			Tag:   tag,
		})
	}
}

// Topics returns the sorted topic IDs present in the run.
func (r *Run) Topics() []int {
	out := make([]int, 0, len(r.byTopic))
	for t := range r.byTopic {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Ranking returns the ranked document IDs for a topic.
func (r *Run) Ranking(topic int) []string {
	entries := r.byTopic[topic]
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.DocID
	}
	return out
}

// Entries returns the raw entries for a topic (rank order).
func (r *Run) Entries(topic int) []RunEntry { return r.byTopic[topic] }

// Normalize sorts every topic's entries by descending score (stable, with
// rank and doc ID tie-breaks) and reassigns ranks 1..n, enforcing the
// TREC convention that rank order and score order agree.
func (r *Run) Normalize() {
	for t, entries := range r.byTopic {
		sort.SliceStable(entries, func(i, j int) bool {
			if entries[i].Score != entries[j].Score {
				return entries[i].Score > entries[j].Score
			}
			if entries[i].Rank != entries[j].Rank {
				return entries[i].Rank < entries[j].Rank
			}
			return entries[i].DocID < entries[j].DocID
		})
		for i := range entries {
			entries[i].Rank = i + 1
		}
		r.byTopic[t] = entries
	}
}

// WriteRun serializes the run in the classic six-column TREC format:
// "topic Q0 docno rank score tag".
func WriteRun(w io.Writer, r *Run) error {
	bw := bufio.NewWriter(w)
	for _, t := range r.Topics() {
		for _, e := range r.byTopic[t] {
			tag := e.Tag
			if tag == "" {
				tag = "run"
			}
			if _, err := fmt.Fprintf(bw, "%d Q0 %s %d %g %s\n", e.Topic, e.DocID, e.Rank, e.Score, tag); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ErrBadRun reports a malformed run line.
var ErrBadRun = errors.New("trec: malformed run")

// ReadRun parses the six-column TREC run format.
func ReadRun(rd io.Reader) (*Run, error) {
	r := NewRun()
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 6 {
			return nil, fmt.Errorf("%w: line %d: %d fields", ErrBadRun, lineNo, len(f))
		}
		topic, err1 := strconv.Atoi(f[0])
		rank, err2 := strconv.Atoi(f[3])
		score, err3 := strconv.ParseFloat(f[4], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: line %d: non-numeric field", ErrBadRun, lineNo)
		}
		r.Add(RunEntry{Topic: topic, DocID: f[2], Rank: rank, Score: score, Tag: f[5]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return r, nil
}
