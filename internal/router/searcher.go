package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/engine"
	"repro/internal/ranking"
)

// ReplicaSpec declares one worker endpoint of a shard's pool. Weight
// biases the smooth weighted round-robin (<= 0 means 1): a replica with
// weight 2 takes twice the traffic of a weight-1 peer.
type ReplicaSpec struct {
	URL    string
	Weight int
}

// Config assembles a distributed Searcher. Only Shards is required.
type Config struct {
	// Shards[i] is the replica pool serving shard i; every pool needs at
	// least one replica. The shard count must match the workers'
	// partition (-shards), which probes verify via /readyz.
	Shards [][]ReplicaSpec

	// Transport carries all worker traffic (nil: http.DefaultTransport).
	// Tests inject an in-memory fault-injecting RoundTripper here.
	Transport http.RoundTripper

	// AttemptTimeout bounds one scatter attempt against one replica
	// (default 2s); on expiry the searcher fails over to the next
	// healthy replica. Retrying is safe unconditionally: /shard/search
	// is a pure read of an immutable snapshot.
	AttemptTimeout time.Duration
	// MaxAttempts bounds the attempts (primary + hedges + failover
	// retries) per shard per request (default: the pool size — each
	// replica at most once).
	MaxAttempts int

	// HedgeAfter enables hedged requests: when a shard's attempt has
	// been in flight this long without answering, a second attempt is
	// fired at the next-best replica and the first success wins, with
	// the loser promptly canceled (default 0: hedging disabled). Hedge
	// cancellations never count as breaker failures.
	HedgeAfter time.Duration
	// HedgeQuantile, when in (0,1), replaces the fixed trigger with the
	// online per-shard latency quantile (e.g. 0.95 hedges anything
	// slower than the pool's recent p95) once the pool's window has
	// latMinSamples successes. Ignored while HedgeAfter is 0.
	HedgeQuantile float64

	// ExtraRatio and ExtraBurst parameterize the global token bucket
	// bounding extra attempts (hedges + failover retries): each primary
	// attempt earns ExtraRatio tokens (capped at ExtraBurst), each extra
	// attempt spends one. An exhausted bucket degrades to single-attempt
	// behavior instead of amplifying a brownout into a retry storm.
	// Defaults 0.2 and 10.
	ExtraRatio float64
	ExtraBurst float64

	// AllowPartial opts SearchBatchPartial into graceful degradation:
	// when a whole pool is down (or a shard's sub-budget expires) but at
	// least one shard answered, the survivors are merged and the
	// response marked degraded instead of failing. SearchBatch is always
	// strict — bit-identity gates run through it.
	AllowPartial bool

	// ScatterFraction carves the scatter sub-budget from the remaining
	// request budget when the caller's context carries a deadline:
	// attempts get fraction*remaining, reserving the rest for the merge
	// and diversification stages (default 0.65; >= 1 disables
	// sub-budgeting). The remaining attempt budget is propagated to
	// workers via the X-Budget-Ms header.
	ScatterFraction float64

	// FailThreshold consecutive failures open a replica's breaker
	// (default 3; a failure during half-open probation reopens
	// immediately).
	FailThreshold int
	// CooldownBase is the first open cooldown; each consecutive open
	// cycle doubles it up to CooldownMax (defaults 500ms, 30s).
	// CooldownJitter adds up to that fraction of random extra cooldown
	// after capping (default 0: deterministic schedule), decorrelating
	// re-probes across a router fleet; JitterSeed pins the per-pool RNG
	// for tests (0: seeded from the clock).
	CooldownBase   time.Duration
	CooldownMax    time.Duration
	CooldownJitter float64
	JitterSeed     int64

	// ProbeInterval spaces the health-check rounds (default 1s);
	// ProbeTimeout bounds each GET /readyz (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// Now overrides the clock (tests drive breaker cooldowns without
	// sleeping). Nil: time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.ExtraRatio <= 0 {
		c.ExtraRatio = 0.2
	}
	if c.ExtraBurst <= 0 {
		c.ExtraBurst = 10
	}
	if c.ScatterFraction <= 0 {
		c.ScatterFraction = 0.65
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.CooldownBase <= 0 {
		c.CooldownBase = 500 * time.Millisecond
	}
	if c.CooldownMax <= 0 {
		c.CooldownMax = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Searcher is the distributed document scoring phase: a repro.Searcher
// that scatters each query batch over one replica per shard, gathers
// the per-shard hit lists, and k-way merges them with the same
// deterministic merge the in-process fan-out uses — so its output is
// bit-identical to engine.SearchBatch over the same world. It is also a
// repro.PartialSearcher: with AllowPartial set, a dead shard degrades
// the response instead of failing it.
type Searcher struct {
	cfg    Config
	pools  []*pool
	client *http.Client

	// extra is the global budget for hedges + failover retries; tail
	// holds the tail-tolerance counters surfaced at /stats.
	extra *tokenBucket
	tail  tailCounters

	// expectedEpoch pins the fleet to the first snapshot epoch seen; a
	// replica answering from a diverged snapshot is treated as failed
	// rather than have its lists merged with the rest of the fleet's.
	mu         sync.Mutex
	epochSet   bool
	epochValue uint64

	stopOnce sync.Once
	stop     chan struct{}
	probes   sync.WaitGroup
}

// NewSearcher validates the topology and builds the pools. Probing does
// not start until Start; call ProbeOnce for a synchronous first round.
func NewSearcher(cfg Config) (*Searcher, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	s := &Searcher{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		extra:  newTokenBucket(cfg.ExtraRatio, cfg.ExtraBurst),
		stop:   make(chan struct{}),
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	bcfg := breakerConfig{
		threshold: cfg.FailThreshold,
		base:      cfg.CooldownBase,
		max:       cfg.CooldownMax,
		jitter:    cfg.CooldownJitter,
	}
	for si, specs := range cfg.Shards {
		if len(specs) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", si)
		}
		p := &pool{
			shard: si,
			bcfg:  bcfg,
			rng:   rand.New(rand.NewSource(seed + int64(si))),
		}
		for _, spec := range specs {
			w := spec.Weight
			if w <= 0 {
				w = 1
			}
			p.replicas = append(p.replicas, &replica{url: spec.URL, weight: w})
		}
		s.pools = append(s.pools, p)
	}
	return s, nil
}

// Start launches the periodic probe loop (stop with Close).
func (s *Searcher) Start() {
	s.probes.Add(1)
	go func() {
		defer s.probes.Done()
		t := time.NewTicker(s.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.ProbeOnce(context.Background())
			}
		}
	}()
}

// Close stops the probe loop. Idempotent.
func (s *Searcher) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.probes.Wait()
}

// ProbeOnce health-checks every replica of every pool concurrently and
// feeds the outcomes into membership and the breakers. A probe passes
// when /readyz answers 200 ready:true AND the worker's shard count
// matches the router's topology — a worker partitioned differently
// would return per-shard lists that merge into silently wrong results,
// so it is treated as down, not as degraded.
func (s *Searcher) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range s.pools {
		for _, r := range p.replicas {
			wg.Add(1)
			go func(p *pool, r *replica) {
				defer wg.Done()
				ok := s.probe(ctx, r)
				if !ok {
					r.probeFail.Add(1)
				}
				p.onProbe(r, ok, s.cfg.Now())
			}(p, r)
		}
	}
	wg.Wait()
}

func (s *Searcher) probe(ctx context.Context, r *replica) bool {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var wr WorkerReady
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return false
	}
	r.epoch.Store(wr.Epoch)
	return resp.StatusCode == http.StatusOK && wr.Ready && wr.Shards == len(s.pools)
}

// Ready reports whether every shard's pool has at least one
// probe-confirmed replica whose breaker admits traffic — the router's
// readiness condition.
func (s *Searcher) Ready() bool {
	now := s.cfg.Now()
	for _, p := range s.pools {
		if !p.ready(now) {
			return false
		}
	}
	return true
}

// Stats snapshots every pool for the router's /stats.
func (s *Searcher) Stats() []PoolStats {
	now := s.cfg.Now()
	out := make([]PoolStats, len(s.pools))
	for i, p := range s.pools {
		out[i] = p.stats(now)
	}
	return out
}

// SearchBatch implements repro.Searcher: scatter the batch to one
// replica per shard (hedging and failing over as configured), gather,
// and deterministically merge. Strict: the error is either ctx.Err() or
// "shard i: ..." — partial answers are never returned through this
// method, because a missing shard silently changes results and the
// bit-identity gates run through here.
func (s *Searcher) SearchBatch(ctx context.Context, queries []string, ks []int) ([][]engine.Result, error) {
	lists, _, err := s.searchBatch(ctx, queries, ks, false)
	return lists, err
}

// SearchBatchPartial implements repro.PartialSearcher: like SearchBatch,
// but when AllowPartial is set a shard whose whole pool is down (or
// whose sub-budget expired) is dropped from the merge instead of
// failing the request, and the response is marked Degraded. At least
// one shard must answer — an empty SERP helps nobody — and a canceled
// client context still fails strictly.
func (s *Searcher) SearchBatchPartial(ctx context.Context, queries []string, ks []int) ([][]engine.Result, repro.SearchInfo, error) {
	return s.searchBatch(ctx, queries, ks, s.cfg.AllowPartial)
}

// searchBatch is the shared scatter-gather-merge. When the caller's
// context carries a deadline, the scatter runs under a sub-budget of
// ScatterFraction*remaining so the merge and the diversification stages
// downstream keep their share of the request budget.
func (s *Searcher) searchBatch(ctx context.Context, queries []string, ks []int, partial bool) ([][]engine.Result, repro.SearchInfo, error) {
	var info repro.SearchInfo
	scatterCtx := ctx
	if dl, ok := ctx.Deadline(); ok && s.cfg.ScatterFraction < 1 {
		sub := time.Duration(s.cfg.ScatterFraction * float64(time.Until(dl)))
		var cancel context.CancelFunc
		scatterCtx, cancel = context.WithTimeout(ctx, sub)
		defer cancel()
	}

	perShard := make([][][]WireHit, len(s.pools))
	hedgedBy := make([]bool, len(s.pools))
	errs := make([]error, len(s.pools))
	var wg sync.WaitGroup
	for si := range s.pools {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			perShard[si], hedgedBy[si], errs[si] = s.searchShard(scatterCtx, si, queries, ks)
		}(si)
	}
	wg.Wait()
	for _, h := range hedgedBy {
		if h {
			info.Hedged = true
		}
	}
	survivors := 0
	for _, err := range errs {
		if err == nil {
			survivors++
		}
	}
	for si, err := range errs {
		if err == nil {
			continue
		}
		if ctx.Err() != nil {
			return nil, info, ctx.Err()
		}
		if partial && survivors > 0 {
			// Degrade: drop the shard, merge the survivors. The caller
			// sees Degraded and must not treat the lists as complete
			// (they are never cached, and bit-identity gates don't
			// apply).
			perShard[si] = nil
			info.Degraded = true
			s.tail.shardsDropped.Add(1)
			continue
		}
		return nil, info, fmt.Errorf("shard %d: %w", si, err)
	}
	if info.Degraded {
		s.tail.degraded.Add(1)
	}

	out := make([][]engine.Result, len(queries))
	lists := make([][]ranking.Hit, len(s.pools))
	for q := range queries {
		snippets := make(map[string]string)
		for si := range s.pools {
			var wire []WireHit
			if perShard[si] != nil { // nil: shard dropped from a degraded merge
				wire = perShard[si][q]
			}
			hl := make([]ranking.Hit, len(wire))
			for j, wh := range wire {
				hl[j] = ranking.Hit{Doc: wh.Doc, DocID: wh.ID, Score: wh.Score}
				snippets[wh.ID] = wh.Snippet
			}
			lists[si] = hl
		}
		merged := ranking.MergeSegments(lists, ks[q])
		res := make([]engine.Result, len(merged))
		for j, h := range merged {
			res[j] = engine.Result{DocID: h.DocID, Rank: h.Rank, Score: h.Score, Snippet: snippets[h.DocID]}
		}
		out[q] = res
	}
	return out, info, nil
}

// attemptDone is one finished attempt in searchShard's event loop.
type attemptDone struct {
	r     *replica
	lists [][]WireHit
	err   error
	hedge bool
	began time.Time
}

// searchShard answers one shard with a hedged, budgeted attempt state
// machine. One primary attempt launches immediately; if hedging is
// enabled and the primary outlives the hedge trigger, a second attempt
// races it on the next-best replica and the first success wins — the
// loser is promptly canceled, and because its result is simply never
// read, a hedge cancellation can never feed a breaker. Failures fall
// back to the bounded failover loop. Every extra attempt (hedge or
// retry) spends the global token budget; when the bucket is empty the
// shard degrades to single-attempt behavior.
//
// Parent-context cancellation aborts without penalizing the replica in
// flight — a client hanging up is not evidence the worker is sick — and
// a worker-side 504 (propagated budget ran out) is likewise charged to
// the deadline, not the replica.
func (s *Searcher) searchShard(ctx context.Context, si int, queries []string, ks []int) ([][]WireHit, bool, error) {
	body, err := json.Marshal(ShardSearchRequest{Shard: si, Queries: queries, Ks: ks})
	if err != nil {
		return nil, false, err
	}
	p := s.pools[si]
	maxAttempts := s.cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(p.replicas)
	}

	// Buffered to maxAttempts so a canceled loser's goroutine can always
	// deposit its (unread) result and exit: no goroutine leaks, no
	// accounting for attempts that lost a race they didn't fail.
	results := make(chan attemptDone, maxAttempts)
	tried := make(map[*replica]bool, maxAttempts)
	cancels := make([]context.CancelFunc, 0, 2)
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	started, inflight := 0, 0
	hedged := false

	launch := func(hedge bool) bool {
		r := p.pick(s.cfg.Now(), tried)
		if r == nil {
			return false // every replica tried
		}
		tried[r] = true
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		started++
		inflight++
		began := s.cfg.Now()
		go func() {
			lists, err := s.attempt(actx, r, body, len(queries))
			results <- attemptDone{r: r, lists: lists, err: err, hedge: hedge, began: began}
		}()
		return true
	}

	if !launch(false) {
		return nil, false, errors.New("all replicas failed: no replica available")
	}
	s.extra.earn() // primaries fund the extra-attempt budget

	var hedgeCh <-chan time.Time
	if delay, ok := s.hedgeDelay(p); ok && started < maxAttempts {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeCh = t.C
	}

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, hedged, ctx.Err()
		case <-hedgeCh:
			hedgeCh = nil
			if !s.extra.take() {
				s.tail.extraDenied.Add(1)
				continue
			}
			if launch(true) {
				hedged = true
				s.tail.hedges.Add(1)
			}
		case d := <-results:
			inflight--
			if d.err == nil {
				p.onResult(d.r, true, s.cfg.Now())
				p.lat.observe(s.cfg.Now().Sub(d.began))
				if d.hedge {
					s.tail.hedgeWins.Add(1)
				}
				return d.lists, hedged, nil
			}
			if ctx.Err() != nil {
				return nil, hedged, ctx.Err()
			}
			if errors.Is(d.err, errBudgetExpired) {
				// The propagated budget ran out worker-side: the
				// deadline's fault, never the replica's.
				s.tail.budgetExpired.Add(1)
			} else {
				d.r.failures.Add(1)
				p.onResult(d.r, false, s.cfg.Now())
			}
			lastErr = fmt.Errorf("%s: %w", d.r.url, d.err)
			if inflight > 0 {
				continue // a racing hedge may still win
			}
			if started >= maxAttempts {
				return nil, hedged, fmt.Errorf("all replicas failed: %w", lastErr)
			}
			if !s.extra.take() {
				s.tail.extraDenied.Add(1)
				return nil, hedged, fmt.Errorf("all replicas failed (retry budget exhausted): %w", lastErr)
			}
			if !launch(false) {
				return nil, hedged, fmt.Errorf("all replicas failed: %w", lastErr)
			}
			s.tail.retries.Add(1)
		}
	}
}

// attempt runs one scatter call against one replica, propagating the
// remaining attempt budget to the worker via X-Budget-Ms.
func (s *Searcher) attempt(ctx context.Context, r *replica, body []byte, nq int) ([][]WireHit, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url+"/shard/search", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(HeaderBudgetMs, strconv.FormatInt(ms, 10))
		}
	}
	r.requests.Add(1)
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusGatewayTimeout {
		return nil, errBudgetExpired
	}
	if resp.StatusCode != http.StatusOK {
		// Read a little of the error body for the failover trail.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var sr ShardSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	if len(sr.Lists) != nq {
		return nil, fmt.Errorf("got %d lists for %d queries", len(sr.Lists), nq)
	}
	r.epoch.Store(sr.Epoch)
	if err := s.checkEpoch(sr.Epoch); err != nil {
		return nil, err
	}
	return sr.Lists, nil
}

// checkEpoch pins the fleet to the first snapshot epoch observed;
// replicas answering from any other epoch are failed over, never
// merged.
func (s *Searcher) checkEpoch(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.epochSet {
		s.epochSet = true
		s.epochValue = epoch
		return nil
	}
	if epoch != s.epochValue {
		return fmt.Errorf("replica epoch %d diverges from fleet epoch %d", epoch, s.epochValue)
	}
	return nil
}
