package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/ranking"
)

// ReplicaSpec declares one worker endpoint of a shard's pool. Weight
// biases the smooth weighted round-robin (<= 0 means 1): a replica with
// weight 2 takes twice the traffic of a weight-1 peer.
type ReplicaSpec struct {
	URL    string
	Weight int
}

// Config assembles a distributed Searcher. Only Shards is required.
type Config struct {
	// Shards[i] is the replica pool serving shard i; every pool needs at
	// least one replica. The shard count must match the workers'
	// partition (-shards), which probes verify via /readyz.
	Shards [][]ReplicaSpec

	// Transport carries all worker traffic (nil: http.DefaultTransport).
	// Tests inject an in-memory fault-injecting RoundTripper here.
	Transport http.RoundTripper

	// AttemptTimeout bounds one scatter attempt against one replica
	// (default 2s); on expiry the searcher fails over to the next
	// healthy replica. Retrying is safe unconditionally: /shard/search
	// is a pure read of an immutable snapshot.
	AttemptTimeout time.Duration
	// MaxAttempts bounds the failover loop per shard per request
	// (default: the pool size — each replica at most once).
	MaxAttempts int

	// FailThreshold consecutive failures open a replica's breaker
	// (default 3; a failure during half-open probation reopens
	// immediately).
	FailThreshold int
	// CooldownBase is the first open cooldown; each consecutive open
	// cycle doubles it up to CooldownMax (defaults 500ms, 30s).
	CooldownBase time.Duration
	CooldownMax  time.Duration

	// ProbeInterval spaces the health-check rounds (default 1s);
	// ProbeTimeout bounds each GET /readyz (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// Now overrides the clock (tests drive breaker cooldowns without
	// sleeping). Nil: time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.CooldownBase <= 0 {
		c.CooldownBase = 500 * time.Millisecond
	}
	if c.CooldownMax <= 0 {
		c.CooldownMax = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Searcher is the distributed document scoring phase: a repro.Searcher
// that scatters each query batch over one replica per shard, gathers
// the per-shard hit lists, and k-way merges them with the same
// deterministic merge the in-process fan-out uses — so its output is
// bit-identical to engine.SearchBatch over the same world.
type Searcher struct {
	cfg    Config
	pools  []*pool
	client *http.Client

	// expectedEpoch pins the fleet to the first snapshot epoch seen; a
	// replica answering from a diverged snapshot is treated as failed
	// rather than have its lists merged with the rest of the fleet's.
	mu         sync.Mutex
	epochSet   bool
	epochValue uint64

	stopOnce sync.Once
	stop     chan struct{}
	probes   sync.WaitGroup
}

// NewSearcher validates the topology and builds the pools. Probing does
// not start until Start; call ProbeOnce for a synchronous first round.
func NewSearcher(cfg Config) (*Searcher, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	s := &Searcher{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		stop:   make(chan struct{}),
	}
	for si, specs := range cfg.Shards {
		if len(specs) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", si)
		}
		p := &pool{shard: si}
		for _, spec := range specs {
			w := spec.Weight
			if w <= 0 {
				w = 1
			}
			p.replicas = append(p.replicas, &replica{url: spec.URL, weight: w})
		}
		s.pools = append(s.pools, p)
	}
	return s, nil
}

// Start launches the periodic probe loop (stop with Close).
func (s *Searcher) Start() {
	s.probes.Add(1)
	go func() {
		defer s.probes.Done()
		t := time.NewTicker(s.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.ProbeOnce(context.Background())
			}
		}
	}()
}

// Close stops the probe loop. Idempotent.
func (s *Searcher) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.probes.Wait()
}

// ProbeOnce health-checks every replica of every pool concurrently and
// feeds the outcomes into membership and the breakers. A probe passes
// when /readyz answers 200 ready:true AND the worker's shard count
// matches the router's topology — a worker partitioned differently
// would return per-shard lists that merge into silently wrong results,
// so it is treated as down, not as degraded.
func (s *Searcher) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range s.pools {
		for _, r := range p.replicas {
			wg.Add(1)
			go func(p *pool, r *replica) {
				defer wg.Done()
				ok := s.probe(ctx, r)
				if !ok {
					r.probeFail.Add(1)
				}
				p.onProbe(r, ok, s.cfg.Now(), s.cfg.FailThreshold, s.cfg.CooldownBase, s.cfg.CooldownMax)
			}(p, r)
		}
	}
	wg.Wait()
}

func (s *Searcher) probe(ctx context.Context, r *replica) bool {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var wr WorkerReady
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return false
	}
	r.epoch.Store(wr.Epoch)
	return resp.StatusCode == http.StatusOK && wr.Ready && wr.Shards == len(s.pools)
}

// Ready reports whether every shard's pool has at least one
// probe-confirmed replica whose breaker admits traffic — the router's
// readiness condition.
func (s *Searcher) Ready() bool {
	now := s.cfg.Now()
	for _, p := range s.pools {
		if !p.ready(now) {
			return false
		}
	}
	return true
}

// Stats snapshots every pool for the router's /stats.
func (s *Searcher) Stats() []PoolStats {
	now := s.cfg.Now()
	out := make([]PoolStats, len(s.pools))
	for i, p := range s.pools {
		out[i] = p.stats(now)
	}
	return out
}

// SearchBatch implements repro.Searcher: scatter the batch to one
// replica per shard (with failover), gather, and deterministically
// merge. The error is either ctx.Err() or "shard i: all replicas
// failed" — partial answers are never returned, because a missing shard
// silently changes results.
func (s *Searcher) SearchBatch(ctx context.Context, queries []string, ks []int) ([][]engine.Result, error) {
	perShard := make([][][]WireHit, len(s.pools))
	errs := make([]error, len(s.pools))
	var wg sync.WaitGroup
	for si := range s.pools {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			perShard[si], errs[si] = s.searchShard(ctx, si, queries, ks)
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
	}

	out := make([][]engine.Result, len(queries))
	lists := make([][]ranking.Hit, len(s.pools))
	for q := range queries {
		snippets := make(map[string]string)
		for si := range s.pools {
			wire := perShard[si][q]
			hl := make([]ranking.Hit, len(wire))
			for j, wh := range wire {
				hl[j] = ranking.Hit{Doc: wh.Doc, DocID: wh.ID, Score: wh.Score}
				snippets[wh.ID] = wh.Snippet
			}
			lists[si] = hl
		}
		merged := ranking.MergeSegments(lists, ks[q])
		res := make([]engine.Result, len(merged))
		for j, h := range merged {
			res[j] = engine.Result{DocID: h.DocID, Rank: h.Rank, Score: h.Score, Snippet: snippets[h.DocID]}
		}
		out[q] = res
	}
	return out, nil
}

// searchShard runs the bounded failover loop for one shard: pick the
// best untried replica, attempt with a per-attempt timeout, and on
// failure feed the breaker and move to the next. Parent-context
// cancellation aborts without penalizing the replica in flight — a
// client hanging up is not evidence the worker is sick.
func (s *Searcher) searchShard(ctx context.Context, si int, queries []string, ks []int) ([][]WireHit, error) {
	body, err := json.Marshal(ShardSearchRequest{Shard: si, Queries: queries, Ks: ks})
	if err != nil {
		return nil, err
	}
	p := s.pools[si]
	maxAttempts := s.cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(p.replicas)
	}
	tried := make(map[*replica]bool, maxAttempts)
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := p.pick(s.cfg.Now(), tried)
		if r == nil {
			break // every replica tried
		}
		tried[r] = true
		lists, err := s.attempt(ctx, r, body, len(queries))
		if err == nil {
			p.onResult(r, true, s.cfg.Now(), s.cfg.FailThreshold, s.cfg.CooldownBase, s.cfg.CooldownMax)
			return lists, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		r.failures.Add(1)
		p.onResult(r, false, s.cfg.Now(), s.cfg.FailThreshold, s.cfg.CooldownBase, s.cfg.CooldownMax)
		lastErr = fmt.Errorf("%s: %w", r.url, err)
	}
	if lastErr == nil {
		lastErr = errors.New("no replica available")
	}
	return nil, fmt.Errorf("all replicas failed: %w", lastErr)
}

// attempt runs one scatter call against one replica.
func (s *Searcher) attempt(ctx context.Context, r *replica, body []byte, nq int) ([][]WireHit, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url+"/shard/search", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	r.requests.Add(1)
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		// Read a little of the error body for the failover trail.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var sr ShardSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	if len(sr.Lists) != nq {
		return nil, fmt.Errorf("got %d lists for %d queries", len(sr.Lists), nq)
	}
	r.epoch.Store(sr.Epoch)
	if err := s.checkEpoch(sr.Epoch); err != nil {
		return nil, err
	}
	return sr.Lists, nil
}

// checkEpoch pins the fleet to the first snapshot epoch observed;
// replicas answering from any other epoch are failed over, never
// merged.
func (s *Searcher) checkEpoch(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.epochSet {
		s.epochSet = true
		s.epochValue = epoch
		return nil
	}
	if epoch != s.epochValue {
		return fmt.Errorf("replica epoch %d diverges from fleet epoch %d", epoch, s.epochValue)
	}
	return nil
}
