package router

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestTokenBucket pins the Finagle-style retry-budget arithmetic: the
// bucket starts full, takes spend whole tokens, earns credit fractional
// ones capped at the burst, and an empty bucket denies without going
// negative.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(0.5, 2)
	if b.level() != 2 {
		t.Fatalf("new bucket level = %v, want full burst 2", b.level())
	}
	if !b.take() || !b.take() {
		t.Fatal("full bucket denied a take")
	}
	if b.take() {
		t.Fatal("empty bucket granted a take")
	}
	if b.level() != 0 {
		t.Fatalf("level after denial = %v, want 0 (denial must not spend)", b.level())
	}
	b.earn() // +0.5: still below 1, still denied
	if b.take() {
		t.Fatal("take granted with 0.5 tokens (extra attempts cost a whole token)")
	}
	b.earn() // 1.0: one extra attempt affordable again
	if !b.take() {
		t.Fatal("take denied with 1.0 tokens")
	}
	for i := 0; i < 10; i++ {
		b.earn()
	}
	if b.level() != 2 {
		t.Fatalf("level after over-earning = %v, want capped at burst 2", b.level())
	}
}

// TestLatWindowQuantile: the online estimator stays cold below
// latMinSamples, then tracks order statistics over the ring.
func TestLatWindowQuantile(t *testing.T) {
	var w latWindow
	for i := 0; i < latMinSamples-1; i++ {
		w.observe(time.Duration(i+1) * time.Millisecond)
	}
	if _, ok := w.quantile(0.95); ok {
		t.Fatalf("quantile warm after %d samples, want cold below %d", latMinSamples-1, latMinSamples)
	}
	w.observe(time.Duration(latMinSamples) * time.Millisecond)
	// Samples are now 1ms..16ms: the 0.95-quantile index over n=16 is
	// int(0.95*15)=14, i.e. the 15ms sample; the median index is 7 -> 8ms.
	if d, ok := w.quantile(0.95); !ok || d != 15*time.Millisecond {
		t.Errorf("p95 over 1..16ms = %v/%v, want 15ms warm", d, ok)
	}
	if d, _ := w.quantile(0.5); d != 8*time.Millisecond {
		t.Errorf("p50 over 1..16ms = %v, want 8ms", d)
	}
	// Flood the ring with a new regime: the estimate must follow, because
	// old samples are overwritten rather than averaged in forever.
	for i := 0; i < latWindowSize; i++ {
		w.observe(100 * time.Millisecond)
	}
	if d, _ := w.quantile(0.95); d != 100*time.Millisecond {
		t.Errorf("p95 after regime change = %v, want 100ms", d)
	}
}

// TestHedgeDelayResolution: hedging is off while HedgeAfter is 0; the
// fixed trigger serves until the pool's window warms; then the online
// quantile (clamped to >= 1ms) takes over.
func TestHedgeDelayResolution(t *testing.T) {
	p := &pool{}
	s := &Searcher{cfg: Config{HedgeQuantile: 0.95}}
	if _, ok := s.hedgeDelay(p); ok {
		t.Fatal("hedging enabled with HedgeAfter 0")
	}

	s.cfg.HedgeAfter = 40 * time.Millisecond
	if d, ok := s.hedgeDelay(p); !ok || d != 40*time.Millisecond {
		t.Fatalf("cold pool trigger = %v/%v, want fixed 40ms", d, ok)
	}

	for i := 0; i < latMinSamples; i++ {
		p.lat.observe(10 * time.Millisecond)
	}
	if d, ok := s.hedgeDelay(p); !ok || d != 10*time.Millisecond {
		t.Fatalf("warm pool trigger = %v/%v, want online p95 10ms", d, ok)
	}

	// A microsecond-fast pool must not hedge every request: the online
	// trigger clamps at 1ms.
	fast := &pool{}
	for i := 0; i < latMinSamples; i++ {
		fast.lat.observe(50 * time.Microsecond)
	}
	if d, _ := s.hedgeDelay(fast); d != time.Millisecond {
		t.Fatalf("fast-pool trigger = %v, want clamped to 1ms", d)
	}

	// Quantile 0 disables the online refinement: fixed trigger forever.
	s.cfg.HedgeQuantile = 0
	if d, _ := s.hedgeDelay(p); d != 40*time.Millisecond {
		t.Fatalf("quantile-off trigger = %v, want fixed 40ms", d)
	}
}

// TestRetryBudgetExhaustedSingleAttempt: with the extra-attempt bucket
// drained, a failing shard gets exactly ONE attempt — no failover retry
// — and the error says why. This is the anti-retry-storm contract: a
// brownout cannot multiply load.
func TestRetryBudgetExhaustedSingleAttempt(t *testing.T) {
	w := newChaosWorld(t, Config{
		AttemptTimeout: 200 * time.Millisecond,
		FailThreshold:  100, // keep breakers out of the picture
		ProbeInterval:  time.Hour,
	})
	w.net.setFault("s0a", fault500)
	w.net.setFault("s0b", fault500)

	for w.searcher.extra.take() { // drain the budget
	}
	s0aBefore := w.replicaStats(t, 0, "http://s0a").Requests + w.replicaStats(t, 0, "http://s0b").Requests

	_, err := w.searcher.SearchBatch(context.Background(), []string{"topic01"}, []int{5})
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want a retry-budget-exhausted failure", err)
	}
	attempts := w.replicaStats(t, 0, "http://s0a").Requests + w.replicaStats(t, 0, "http://s0b").Requests - s0aBefore
	if attempts != 1 {
		t.Errorf("shard 0 saw %d attempts with an empty budget, want exactly 1 (no retry amplification)", attempts)
	}
	if ts := w.searcher.TailStats(); ts.ExtraDenied == 0 {
		t.Errorf("tail stats %+v, want extra_denied > 0", ts)
	}

	// Earning replenishes: once primaries refill the bucket past one
	// token, failover works again and the request succeeds.
	w.net.setFault("s0a", faultNone)
	w.net.setFault("s0b", fault500)
	for i := 0; i < 10; i++ {
		w.searcher.extra.earn()
	}
	if _, err := w.searcher.SearchBatch(context.Background(), []string{"topic01"}, []int{5}); err != nil {
		t.Fatalf("after refill: %v, want failover success", err)
	}
}
