package router

import (
	"net/http"

	"repro/internal/server"
)

// Router fronts the serving tier: it owns a full local pipeline wrapped
// by internal/server (so /search, /queries, /stats behave exactly like
// the single-process binary) with the pipeline's Searcher swapped for
// the distributed scatter-gatherer. Only readiness and stats change
// shape: the router is ready when its own pipeline is published AND
// every shard pool has a healthy replica, and /stats grows the
// per-replica breaker table.
type Router struct {
	inner    *server.Server
	searcher *Searcher
}

// NewRouter composes the inner serving surface with the distributed
// searcher.
func NewRouter(inner *server.Server, s *Searcher) *Router {
	return &Router{inner: inner, searcher: s}
}

// RouterStats is the router's /stats body: the usual serving stats
// (present once the local pipeline is up) plus the replica pools.
type RouterStats struct {
	Serving *server.StatsResponse `json:"serving,omitempty"`
	Shards  []PoolStats           `json:"shards"`
	Tail    TailStats             `json:"tail"`
}

// RouterReady is the router's /readyz body.
type RouterReady struct {
	Ready    bool   `json:"ready"`
	Reason   string `json:"reason,omitempty"`
	Pipeline bool   `json:"pipeline"` // local pipeline published
	Backends bool   `json:"backends"` // every shard pool has a healthy replica
}

// Handler shadows /readyz and /stats over the inner server's routes;
// everything else — /search, /healthz, /queries, the mutation endpoints
// (which reject, as router pipelines serve batch-built worlds) — passes
// through.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.Handle("/", rt.inner.Handler())
	return mux
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := RouterReady{Pipeline: rt.inner.Ready(), Backends: rt.searcher.Ready()}
	st.Ready = st.Pipeline && st.Backends
	code := http.StatusOK
	switch {
	case !st.Pipeline:
		st.Reason = "pipeline still loading"
		code = http.StatusServiceUnavailable
	case !st.Backends:
		st.Reason = "a shard has no healthy replica"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	st := RouterStats{Shards: rt.searcher.Stats(), Tail: rt.searcher.TailStats()}
	if snap, ok := rt.inner.StatsSnapshot(); ok {
		st.Serving = &snap
	}
	writeJSON(w, http.StatusOK, st)
}
