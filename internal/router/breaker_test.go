package router

import (
	"math/rand"
	"testing"
	"time"
)

// TestBreakerBackoffSchedule drives one replica through fail/recover
// cycles on a fake clock and pins the exponential re-admission
// schedule: cooldowns double per consecutive open cycle, cap at the
// max, and reset on success.
func TestBreakerBackoffSchedule(t *testing.T) {
	const (
		threshold = 2
		base      = 100 * time.Millisecond
		max       = 400 * time.Millisecond
	)
	now := time.Unix(0, 0)
	r := &replica{url: "x", weight: 1}
	p := &pool{
		shard:    0,
		bcfg:     breakerConfig{threshold: threshold, base: base, max: max},
		replicas: []*replica{r},
	}

	fail := func() { p.onResult(r, false, now) }
	succeed := func() { p.onResult(r, true, now) }

	fail()
	if r.state != breakerClosed {
		t.Fatalf("after 1/%d failures: %s, want closed", threshold, r.state)
	}
	fail()
	if r.state != breakerOpen || r.cooldown != base {
		t.Fatalf("after threshold: state=%s cooldown=%v, want open/%v", r.state, r.cooldown, base)
	}
	if r.selectable(now.Add(base - 1)) {
		t.Fatal("selectable before cooldown elapsed")
	}
	now = now.Add(base)
	if !r.selectable(now) || r.state != breakerHalfOpen {
		t.Fatalf("after cooldown: state=%s, want half_open and selectable", r.state)
	}

	// Probation is one strike: a failure in half-open reopens at once,
	// with a doubled cooldown.
	fail()
	if r.state != breakerOpen || r.cooldown != 2*base {
		t.Fatalf("reopen #2: state=%s cooldown=%v, want open/%v", r.state, r.cooldown, 2*base)
	}
	now = now.Add(2 * base)
	r.selectable(now)
	fail()
	if r.cooldown != 4*base {
		t.Fatalf("reopen #3: cooldown=%v, want %v", r.cooldown, 4*base)
	}
	now = now.Add(4 * base)
	r.selectable(now)
	fail()
	if r.cooldown != max {
		t.Fatalf("reopen #4: cooldown=%v, want capped at %v", r.cooldown, max)
	}

	// Success from half-open closes the breaker and resets the backoff:
	// the next open starts from base again.
	now = now.Add(max)
	r.selectable(now)
	succeed()
	if r.state != breakerClosed || r.fails != 0 || r.openCount != 0 {
		t.Fatalf("after recovery: %+v, want closed with reset counters", r)
	}
	fail()
	fail()
	if r.cooldown != base {
		t.Fatalf("open after recovery: cooldown=%v, want %v (backoff reset)", r.cooldown, base)
	}
}

// TestBreakerCooldownJitter pins the jittered re-admission schedule on
// the same fake clock: with a seeded RNG the exact cooldowns replay
// deterministically, and structurally every cooldown lands in
// [d, d*(1+jitter)] where d is the CAPPED deterministic backoff — the
// jitter is added after capping, so even max-cooldown replicas get
// decorrelated re-probe times across a fleet.
func TestBreakerCooldownJitter(t *testing.T) {
	const (
		base   = 100 * time.Millisecond
		max    = 400 * time.Millisecond
		jitter = 0.5
		seed   = 7
	)
	now := time.Unix(0, 0)
	r := &replica{url: "x", weight: 1}
	p := &pool{
		shard:    0,
		bcfg:     breakerConfig{threshold: 1, base: base, max: max, jitter: jitter},
		rng:      rand.New(rand.NewSource(seed)),
		replicas: []*replica{r},
	}

	// Replay the schedule with an independent RNG seeded identically:
	// the pool must consume exactly one Float64 per open cycle.
	ref := rand.New(rand.NewSource(seed))
	for cycle := 1; cycle <= 5; cycle++ {
		p.onResult(r, false, now)
		d := base << (cycle - 1)
		if d > max {
			d = max
		}
		want := d + time.Duration(jitter*ref.Float64()*float64(d))
		if r.cooldown != want {
			t.Fatalf("cycle %d: cooldown = %v, want %v (seeded replay)", cycle, r.cooldown, want)
		}
		if r.cooldown < d || r.cooldown > d+time.Duration(jitter*float64(d)) {
			t.Fatalf("cycle %d: cooldown %v outside [%v, %v]", cycle, r.cooldown, d, d+time.Duration(jitter*float64(d)))
		}
		// Sit out the jittered cooldown so the next failure reopens from
		// half-open probation with a doubled (then capped) backoff.
		now = now.Add(r.cooldown)
		if !r.selectable(now) {
			t.Fatalf("cycle %d: not selectable after its full jittered cooldown", cycle)
		}
	}

	// Jitter 0 (the library default) stays exactly deterministic even
	// with an RNG wired up — nothing is drawn from it.
	r2 := &replica{url: "y", weight: 1}
	p2 := &pool{
		bcfg:     breakerConfig{threshold: 1, base: base, max: max},
		rng:      rand.New(rand.NewSource(seed)),
		replicas: []*replica{r2},
	}
	p2.onResult(r2, false, now)
	if r2.cooldown != base {
		t.Fatalf("jitter-0 cooldown = %v, want exactly %v", r2.cooldown, base)
	}
}

// TestSmoothWRRDistribution pins both the long-run proportions and the
// interleaving property that distinguishes smooth WRR from naive WRR:
// weights 2:1 yield a,b,a / a,b,a — never a,a,b bursts.
func TestSmoothWRRDistribution(t *testing.T) {
	a := &replica{url: "a", weight: 2}
	b := &replica{url: "b", weight: 1}
	cands := []*replica{a, b}

	var seq []string
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		r := pickSmoothWRR(cands)
		counts[r.url]++
		if i < 6 {
			seq = append(seq, r.url)
		}
	}
	if counts["a"] != 200 || counts["b"] != 100 {
		t.Errorf("counts = %v, want a:200 b:100", counts)
	}
	want := []string{"a", "b", "a", "a", "b", "a"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence = %v, want %v (smooth interleaving)", seq, want)
		}
	}
}

// TestPickTierOrder: the selector prefers probe-confirmed closed
// replicas over unprobed ones over half-open ones, uses an open replica
// only as a last resort, and returns nil once every replica was tried.
func TestPickTierOrder(t *testing.T) {
	now := time.Unix(0, 0)
	healthy := &replica{url: "healthy", weight: 1, probed: true, healthy: true}
	unprobed := &replica{url: "unprobed", weight: 1}
	halfOpen := &replica{url: "half", weight: 1, state: breakerHalfOpen, probed: true, healthy: true}
	open := &replica{url: "open", weight: 1, state: breakerOpen, openedAt: now, cooldown: time.Hour}
	p := &pool{replicas: []*replica{open, halfOpen, unprobed, healthy}}

	tried := map[*replica]bool{}
	for _, want := range []string{"healthy", "unprobed", "half", "open"} {
		r := p.pick(now, tried)
		if r == nil || r.url != want {
			t.Fatalf("pick order: got %v, want %s (tried %d)", r, want, len(tried))
		}
		tried[r] = true
	}
	if r := p.pick(now, tried); r != nil {
		t.Fatalf("pick with all tried = %v, want nil", r)
	}
}
