package router

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ranking"
	"repro/internal/server"
)

// ---- fault-injection harness -----------------------------------------

type faultMode int

const (
	faultNone    faultMode = iota
	faultRefused           // connection refused: the replica process is dead
	faultHang              // accepts, never answers: hung process / black-holed network
	fault500               // answers HTTP 500: sick but alive
	faultSlow              // answers after a delay: degraded but correct
	fault504               // answers HTTP 504: the propagated budget expired worker-side
)

// fakeNet is an in-memory transport: requests route to registered
// worker handlers by URL host, and per-host fault injection synthesizes
// the failure classes a real deployment sees — without real sockets, so
// chaos tests are fast and deterministic.
type fakeNet struct {
	mu     sync.Mutex
	hosts  map[string]http.Handler
	faults map[string]faultMode
	delay  time.Duration // faultSlow's added latency
}

func newFakeNet() *fakeNet {
	return &fakeNet{hosts: make(map[string]http.Handler), faults: make(map[string]faultMode)}
}

func (f *fakeNet) register(host string, h http.Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hosts[host] = h
}

func (f *fakeNet) setFault(host string, m faultMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[host] = m
}

func (f *fakeNet) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	h := f.hosts[req.URL.Host]
	mode := f.faults[req.URL.Host]
	delay := f.delay
	f.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("fakeNet: unknown host %q", req.URL.Host)
	}
	switch mode {
	case faultRefused:
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connect: connection refused")}
	case faultHang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case fault500:
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Header:     http.Header{"Content-Type": {"application/json"}},
			Body:       io.NopCloser(strings.NewReader(`{"error":"injected fault"}`)),
			Request:    req,
		}, nil
	case faultSlow:
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	case fault504:
		return &http.Response{
			StatusCode: http.StatusGatewayTimeout,
			Header:     http.Header{"Content-Type": {"application/json"}},
			Body:       io.NopCloser(strings.NewReader(`{"error":"search budget expired"}`)),
			Request:    req,
		}, nil
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// chaosWorld wires 2 shards x 2 replicas over the in-memory transport,
// with a single-process reference server alongside.
type chaosWorld struct {
	net      *fakeNet
	searcher *Searcher
	router   *httptest.Server
	single   *httptest.Server
}

func newChaosWorld(t *testing.T, cfg Config) *chaosWorld {
	t.Helper()
	p := testPipeline(t)
	fn := newFakeNet()
	for _, host := range []string{"s0a", "s0b", "s1a", "s1b"} {
		fn.register(host, NewWorker(p.Engine).Handler())
	}
	cfg.Shards = [][]ReplicaSpec{
		{{URL: "http://s0a"}, {URL: "http://s0b"}},
		{{URL: "http://s1a"}, {URL: "http://s1b"}},
	}
	cfg.Transport = fn
	s, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ProbeOnce(context.Background())
	if !s.Ready() {
		t.Fatalf("not ready after first probe: %+v", s.Stats())
	}
	w := &chaosWorld{
		net:      fn,
		searcher: s,
		router:   httptest.NewServer(NewRouter(server.New(routedPipeline(p, s).NewServeHandle(64, 2), server.Config{}), s).Handler()),
		single:   httptest.NewServer(server.New(p.NewServeHandle(64, 2), server.Config{}).Handler()),
	}
	t.Cleanup(w.router.Close)
	t.Cleanup(w.single.Close)
	return w
}

// expectSame sends the identical request to the router and the
// single-process reference (in lockstep, so cache state matches) and
// requires 200 + byte-identical bodies.
func (w *chaosWorld) expectSame(t *testing.T, q string, extra url.Values) {
	t.Helper()
	wantCode, want := fetch(t, searchURL(w.single.URL, q, extra))
	gotCode, got := fetch(t, searchURL(w.router.URL, q, extra))
	if wantCode != http.StatusOK {
		t.Fatalf("reference server failed: %d %s", wantCode, want)
	}
	if gotCode != http.StatusOK {
		t.Fatalf("client request failed through router: %d %s\nstats: %+v", gotCode, got, w.searcher.Stats())
	}
	if want != got {
		t.Fatalf("router response diverged:\nsingle: %s\nrouter: %s", want, got)
	}
}

// replicaStats digs one replica's row out of the stats snapshot.
func (w *chaosWorld) replicaStats(t *testing.T, shard int, url string) ReplicaStats {
	t.Helper()
	for _, ps := range w.searcher.Stats() {
		if ps.Shard != shard {
			continue
		}
		for _, rs := range ps.Replicas {
			if rs.URL == url {
				return rs
			}
		}
	}
	t.Fatalf("replica %s not in shard %d stats", url, shard)
	return ReplicaStats{}
}

// ---- the chaos gates -------------------------------------------------

// TestChaosZeroFailedRequests is the fault-injection gate: with 2
// shards x 2 replicas, killing (connection refused), hanging, 5xx-ing,
// or slowing one replica mid-run must produce ZERO failed client
// requests — every response stays 200 and byte-identical to the
// single-process reference, because the router fails over to the
// surviving replica within its per-attempt timeout budget.
func TestChaosZeroFailedRequests(t *testing.T) {
	w := newChaosWorld(t, Config{
		AttemptTimeout: 300 * time.Millisecond,
		FailThreshold:  2,
		CooldownBase:   50 * time.Millisecond,
		CooldownMax:    200 * time.Millisecond,
		ProbeInterval:  time.Hour, // probes driven manually
	})
	w.net.delay = 30 * time.Millisecond
	p := testPipeline(t)
	queries := []string{p.Testbed.TopicQuery(1), p.Testbed.TopicQuery(3)}

	warm := func(tag string) {
		for i, q := range queries {
			alg := core.Algorithms[i%len(core.Algorithms)]
			w.expectSame(t, q, url.Values{"alg": {string(alg)}, "k": {"8"}})
		}
		_ = tag
	}
	warm("healthy")

	for _, tc := range []struct {
		name string
		mode faultMode
	}{
		{"killed", faultRefused},
		{"hung", faultHang},
		{"http-500", fault500},
		{"slow-but-alive", faultSlow},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w.net.setFault("s0a", tc.mode)
			defer w.net.setFault("s0a", faultNone)
			// Several rounds: the first may burn the failing replica's
			// breaker threshold, later ones should route straight to the
			// healthy peer. All must succeed, bit-identically.
			for round := 0; round < 3; round++ {
				for _, q := range queries {
					for _, alg := range []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD} {
						w.expectSame(t, q, url.Values{"alg": {string(alg)}, "k": {"8"}})
					}
				}
			}
			if tc.mode != faultSlow { // slow-but-alive never trips the breaker
				// The short cooldown may already have lapsed the breaker
				// into half_open by snapshot time; OpenCycles records that
				// it tripped.
				if rs := w.replicaStats(t, 0, "http://s0a"); rs.OpenCycles == 0 {
					t.Errorf("faulted replica breaker never opened (stats %+v)", rs)
				}
			}
			// Recover: clear the fault, sit out the cooldown, probe. The
			// breaker must re-admit the replica (half-open -> closed).
			w.net.setFault("s0a", faultNone)
			time.Sleep(w.searcher.cfg.CooldownMax + 20*time.Millisecond)
			w.searcher.ProbeOnce(context.Background())
			if rs := w.replicaStats(t, 0, "http://s0a"); rs.State != "closed" || !rs.Healthy {
				t.Fatalf("replica not re-admitted after recovery: %+v", rs)
			}
			warm("recovered")
		})
	}
}

// TestChaosReAdmissionTakesTraffic verifies re-admission end to end: a
// killed replica's breaker opens, and after recovery + cooldown +
// probe, live traffic actually reaches it again (its request counter
// advances), with responses still bit-identical throughout.
func TestChaosReAdmissionTakesTraffic(t *testing.T) {
	w := newChaosWorld(t, Config{
		AttemptTimeout: 300 * time.Millisecond,
		FailThreshold:  1, // first failure opens
		CooldownBase:   30 * time.Millisecond,
		CooldownMax:    100 * time.Millisecond,
		ProbeInterval:  time.Hour,
	})
	p := testPipeline(t)
	q := p.Testbed.TopicQuery(2)

	w.net.setFault("s0a", faultRefused)
	for i := 0; i < 4; i++ {
		w.expectSame(t, q, url.Values{"k": {"6"}})
	}
	down := w.replicaStats(t, 0, "http://s0a")
	if down.OpenCycles == 0 || down.Failures == 0 {
		t.Fatalf("killed replica: %+v, want a tripped breaker with failures", down)
	}

	w.net.setFault("s0a", faultNone)
	time.Sleep(150 * time.Millisecond)
	w.searcher.ProbeOnce(context.Background())
	readmitted := w.replicaStats(t, 0, "http://s0a")
	if readmitted.State != "closed" || !readmitted.Healthy {
		t.Fatalf("after cooldown+probe: %+v, want closed+healthy", readmitted)
	}

	before := readmitted.Requests
	for i := 0; i < 8; i++ { // WRR over two weight-1 replicas: ~half land here
		w.expectSame(t, q, url.Values{"k": {"6"}})
	}
	if after := w.replicaStats(t, 0, "http://s0a").Requests; after <= before {
		t.Errorf("re-admitted replica took no traffic (requests %d -> %d)", before, after)
	}
}

// TestChaosWholeShardDown: with EVERY replica of a shard dead the
// request cannot be answered — the router must shed it cleanly (503,
// not a hang or a partial result), and recover as soon as a replica
// returns.
func TestChaosWholeShardDown(t *testing.T) {
	w := newChaosWorld(t, Config{
		AttemptTimeout: 100 * time.Millisecond,
		FailThreshold:  1,
		CooldownBase:   20 * time.Millisecond,
		CooldownMax:    50 * time.Millisecond,
		ProbeInterval:  time.Hour,
	})
	p := testPipeline(t)
	q := p.Testbed.TopicQuery(1)
	w.expectSame(t, q, nil)

	w.net.setFault("s1a", faultRefused)
	w.net.setFault("s1b", faultRefused)
	code, body := fetch(t, searchURL(w.router.URL, q, url.Values{"k": {"5"}}))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("whole shard down: %d %s, want 503", code, body)
	}
	if !strings.Contains(body, "retrieval aborted") {
		t.Errorf("error body %q lacks the shed marker", body)
	}
	if w.searcher.Ready() {
		t.Error("searcher still Ready with a whole pool down")
	}

	w.net.setFault("s1a", faultNone)
	w.net.setFault("s1b", faultNone)
	time.Sleep(70 * time.Millisecond)
	w.searcher.ProbeOnce(context.Background())
	if !w.searcher.Ready() {
		t.Fatalf("searcher not ready after recovery: %+v", w.searcher.Stats())
	}
	w.expectSame(t, q, url.Values{"k": {"5"}})
}

// TestChaosClientCancelNotPenalized: a client hanging up mid-scatter
// must not count against the replica's breaker — otherwise impatient
// clients could eject healthy workers.
func TestChaosClientCancelNotPenalized(t *testing.T) {
	w := newChaosWorld(t, Config{
		AttemptTimeout: time.Hour, // only the client's context can end the attempt
		FailThreshold:  1,
		ProbeInterval:  time.Hour,
	})
	w.net.setFault("s0a", faultHang)
	w.net.setFault("s0b", faultHang)
	w.net.setFault("s1a", faultHang)
	w.net.setFault("s1b", faultHang)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := w.searcher.SearchBatch(ctx, []string{"topic01"}, []int{5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	for _, ps := range w.searcher.Stats() {
		for _, rs := range ps.Replicas {
			if rs.State != "closed" {
				t.Errorf("replica %s breaker %s after client cancel, want closed", rs.URL, rs.State)
			}
		}
	}
}

// TestChaosSlowReplicaHedged is the tail-tolerance gate: one replica
// hangs (the SIGSTOP scenario — TCP accepts, nothing answers) while the
// attempt timeout is far too long to save the request. Every request
// must still succeed bit-identically and fast, because the hedge fires
// at the trigger and the healthy peer answers; and the hung replica —
// which never *failed*, it just lost races — must show ZERO breaker
// failures and zero open cycles.
func TestChaosSlowReplicaHedged(t *testing.T) {
	w := newChaosWorld(t, Config{
		AttemptTimeout: 5 * time.Second, // never the rescuer: only hedging can keep requests fast
		HedgeAfter:     30 * time.Millisecond,
		HedgeQuantile:  0, // fixed trigger: deterministic test
		ExtraBurst:     64,
		FailThreshold:  2,
		ProbeInterval:  time.Hour,
	})
	p := testPipeline(t)
	queries := []string{p.Testbed.TopicQuery(1), p.Testbed.TopicQuery(3)}
	for _, q := range queries { // warm both artifact caches while healthy
		w.expectSame(t, q, url.Values{"k": {"8"}})
	}

	w.net.setFault("s0a", faultHang)
	defer w.net.setFault("s0a", faultNone)
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			began := time.Now()
			w.expectSame(t, q, url.Values{"k": {"8"}})
			// Well under the 5s attempt timeout a hedge-less router would
			// pay whenever WRR picks the hung replica first.
			if took := time.Since(began); took > 3*time.Second {
				t.Fatalf("request took %v despite hedging (trigger 30ms)", took)
			}
		}
	}

	ts := w.searcher.TailStats()
	if ts.Hedges == 0 || ts.HedgeWins == 0 {
		t.Errorf("tail stats %+v, want hedges and hedge wins > 0", ts)
	}
	// The hung replica lost hedge races; it never failed an attempt. A
	// single breaker penalty here would mean hedge losers are being
	// punished for losing.
	if rs := w.replicaStats(t, 0, "http://s0a"); rs.Failures != 0 || rs.OpenCycles != 0 || rs.State != "closed" {
		t.Errorf("hung replica penalized by hedging: %+v, want 0 failures, 0 open cycles, closed", rs)
	}
}

// TestChaosBudgetExpiredNotPenalized: a worker answering 504 (its
// propagated X-Budget-Ms ran out mid-scoring) is the deadline's victim,
// not a sick process — with FailThreshold 1 even a single mischarged
// attempt would open the breaker, so a closed breaker after several
// rescued requests proves 504s never feed it.
func TestChaosBudgetExpiredNotPenalized(t *testing.T) {
	w := newChaosWorld(t, Config{
		AttemptTimeout: 300 * time.Millisecond,
		FailThreshold:  1, // one miscounted failure would open it — sharpest possible assertion
		ProbeInterval:  time.Hour,
	})
	p := testPipeline(t)
	q := p.Testbed.TopicQuery(2)

	w.net.setFault("s0a", fault504)
	defer w.net.setFault("s0a", faultNone)
	for i := 0; i < 6; i++ { // WRR alternates: half the primaries land on the 504er
		if _, err := w.searcher.SearchBatch(context.Background(), []string{q}, []int{5}); err != nil {
			t.Fatalf("request %d: %v (failover from a 504 should succeed)", i, err)
		}
	}

	ts := w.searcher.TailStats()
	if ts.BudgetExpired == 0 || ts.Retries == 0 {
		t.Errorf("tail stats %+v, want budget_expired and retries > 0", ts)
	}
	if rs := w.replicaStats(t, 0, "http://s0a"); rs.OpenCycles != 0 || rs.State != "closed" {
		t.Errorf("504ing replica's breaker tripped: %+v, want closed with 0 open cycles", rs)
	}
}

// TestChaosWholeShardDownPartial: the graceful-degradation gate. With
// partial results opted in and a whole pool dead, the router must keep
// answering 200 — never 503 — with the surviving shards correctly
// merged and the response honestly marked degraded (wire field + HTTP
// header + counters), then return to bit-identity once the shard heals.
func TestChaosWholeShardDownPartial(t *testing.T) {
	w := newChaosWorld(t, Config{
		AttemptTimeout: 100 * time.Millisecond,
		AllowPartial:   true,
		FailThreshold:  1,
		CooldownBase:   20 * time.Millisecond,
		CooldownMax:    50 * time.Millisecond,
		ProbeInterval:  time.Hour,
	})
	p := testPipeline(t)
	q := p.Testbed.TopicQuery(1)
	// Partial mode enabled + healthy fleet: still bit-identical.
	w.expectSame(t, q, url.Values{"k": {"5"}})

	w.net.setFault("s1a", faultRefused)
	w.net.setFault("s1b", faultRefused)

	for i := 0; i < 4; i++ {
		resp, err := http.Get(searchURL(w.router.URL, q, url.Values{"k": {"5"}}))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d with a whole shard down: %d %s, want 200 degraded (never 503)", i, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"degraded":true`) {
			t.Fatalf("request %d body lacks the degraded marker: %s", i, body)
		}
		if resp.Header.Get(server.HeaderDegraded) != "true" {
			t.Errorf("request %d: %s header = %q, want true", i, server.HeaderDegraded, resp.Header.Get(server.HeaderDegraded))
		}
	}

	// The degraded merge must be exactly the surviving shard's lists —
	// shard 0 merged against nothing — not garbage or a partial blend.
	lists, info, err := w.searcher.SearchBatchPartial(context.Background(), []string{q}, []int{8})
	if err != nil || !info.Degraded {
		t.Fatalf("SearchBatchPartial: err=%v degraded=%v, want nil/true", err, info.Degraded)
	}
	shardLists, _, err := p.Engine.SearchShardBatch(context.Background(), 0, []string{q}, []int{8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits := make([]ranking.Hit, len(shardLists[0]))
	for i, sr := range shardLists[0] {
		hits[i] = ranking.Hit{Doc: sr.Doc, DocID: sr.DocID, Score: sr.Score}
	}
	want := ranking.MergeSegments([][]ranking.Hit{hits, nil}, 8)
	if len(lists[0]) != len(want) {
		t.Fatalf("degraded merge has %d hits, want %d (shard 0 only)", len(lists[0]), len(want))
	}
	for i := range want {
		if lists[0][i].DocID != want[i].DocID || lists[0][i].Score != want[i].Score {
			t.Fatalf("degraded merge[%d] = %s/%g, want %s/%g", i, lists[0][i].DocID, lists[0][i].Score, want[i].DocID, want[i].Score)
		}
	}
	if ts := w.searcher.TailStats(); ts.Degraded == 0 || ts.ShardsDropped == 0 {
		t.Errorf("tail stats %+v, want degraded and shards_dropped > 0", ts)
	}

	// Heal: full-fidelity bit-identical service resumes (degraded
	// artifacts were never cached, so nothing stale survives recovery).
	w.net.setFault("s1a", faultNone)
	w.net.setFault("s1b", faultNone)
	time.Sleep(70 * time.Millisecond)
	w.searcher.ProbeOnce(context.Background())
	w.expectSame(t, q, url.Values{"k": {"5"}})
}

// TestChaosClientCancelMidHedge: a client hanging up while a hedge race
// is in flight must not leak the attempt goroutines (both racers are
// blocked in hung workers) and must not charge any replica's breaker.
func TestChaosClientCancelMidHedge(t *testing.T) {
	w := newChaosWorld(t, Config{
		AttemptTimeout: time.Hour,
		HedgeAfter:     20 * time.Millisecond,
		HedgeQuantile:  0,
		FailThreshold:  1,
		ProbeInterval:  time.Hour,
	})
	for _, host := range []string{"s0a", "s0b", "s1a", "s1b"} {
		w.net.setFault(host, faultHang)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	_, err := w.searcher.SearchBatch(ctx, []string{"topic01"}, []int{5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if ts := w.searcher.TailStats(); ts.Hedges == 0 {
		t.Errorf("tail stats %+v: no hedge launched before the cancel (trigger 20ms, deadline 120ms)", ts)
	}

	// All four attempt goroutines (2 primaries + up to 2 hedges) were
	// parked in hung workers; cancellation must unwind every one.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines %d -> %d after cancel mid-hedge: attempts leaked", before, n)
	}
	for _, ps := range w.searcher.Stats() {
		for _, rs := range ps.Replicas {
			if rs.State != "closed" || rs.Failures != 0 {
				t.Errorf("replica %s after cancel mid-hedge: state=%s failures=%d, want closed/0", rs.URL, rs.State, rs.Failures)
			}
		}
	}
}
