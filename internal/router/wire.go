// Package router is the distributed serving tier: a fault-tolerant
// scatter-gather front end over replicated shard-worker processes.
//
// The topology splits the single-process serving stack along the line
// the deterministic k-way merge already draws: every worker builds the
// same deterministic world (same seed => same index, same
// collection-global statistics => the very same score float64s) and
// answers per-shard retrieval over POST /shard/search; the router runs
// the rest of the pipeline — Algorithm 1, the query-flow graph
// recommender, utilities, selection — locally, swapping only the
// document scoring phase for a remote fan-out (repro.Searcher). Because
// per-shard scores are bit-identical to the in-process fan-out and
// ranking.MergeSegments is the same deterministic merge, a router
// /search response is byte-identical to a single-process /search
// response; the differential tests in this package enforce that.
//
// Fault tolerance lives in the replica pools: each shard is served by
// one or more replicas with health-check-driven membership (periodic
// /readyz probes plus passive failure detection from live traffic),
// per-replica circuit breaking with exponential-backoff cooldown on
// re-admission, per-attempt timeouts, and bounded failover to the next
// healthy replica. A request fails only when every replica of some
// shard is down.
//
// The tail-tolerance layer rides on top: hedged requests (a slow
// attempt races a second replica, first success wins, the loser is
// canceled without breaker penalty), deadline propagation (the client's
// total budget is carved into a scatter sub-budget and advertised to
// workers via X-Budget-Ms so they stop work that cannot make the
// deadline), a global token bucket bounding extra attempts, and an
// opt-in partial-results mode that merges surviving shards with an
// explicit degraded marker instead of 503ing when a whole pool is down.
package router

// HeaderBudgetMs propagates the attempt's remaining deadline budget
// from the router to a worker: an integer count of milliseconds. The
// worker stops scoring when it runs out and answers 504, which the
// router charges to the deadline, never to the replica's breaker.
const HeaderBudgetMs = "X-Budget-Ms"

// ShardSearchRequest is the wire form of one scatter call: score every
// query of the batch against one shard of the deterministic index.
// Queries are raw (pre-analysis) strings — the worker runs the same
// analyzer the router would, so the token streams match by construction.
type ShardSearchRequest struct {
	Shard   int      `json:"shard"`
	Queries []string `json:"queries"`
	Ks      []int    `json:"ks"`
}

// WireHit is one per-shard retrieval hit in transit. Doc is the global
// internal document number (the deterministic merge tie-break), ID the
// external document ID, Score the raw model score — JSON encodes
// float64 with Go's shortest-round-trip representation, so the exact
// bits survive the wire — and Snippet the query-biased snippet computed
// worker-side (the router needs it for surrogate vectors and the
// response body, and only workers hold document text).
type WireHit struct {
	Doc     int32   `json:"doc"`
	ID      string  `json:"id"`
	Score   float64 `json:"score"`
	Snippet string  `json:"snippet,omitempty"`
}

// ShardSearchResponse carries the per-query hit lists plus the epoch of
// the snapshot they were scored against; the router rejects replicas
// whose epoch diverges from the rest of the fleet rather than merge
// lists from different worlds.
type ShardSearchResponse struct {
	Epoch uint64      `json:"epoch"`
	Lists [][]WireHit `json:"lists"`
}

// WorkerReady is the worker's /readyz body. Shards lets the router's
// probe reject a worker partitioned differently than the router expects
// (merging a 4-shard worker's shard 1 into a 2-shard plan would be
// silently wrong); Epoch lets operators spot diverged replicas at a
// glance.
type WorkerReady struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	Docs   int    `json:"docs,omitempty"`
	Shards int    `json:"shards,omitempty"`
	Epoch  uint64 `json:"epoch"`
}

// errorBody is the JSON error envelope shared by worker and router
// endpoints (mirrors internal/server's {"error": ...} convention).
type errorBody struct {
	Error string `json:"error"`
}
