package router

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// errBudgetExpired marks a worker 504: the attempt's propagated budget
// ran out while the worker was still scoring. That is the deadline's
// fault, not the replica's, so — like a client hang-up — it never feeds
// the circuit breaker.
var errBudgetExpired = errors.New("budget expired at worker")

// tokenBucket is the global extra-attempt budget (Finagle-style retry
// budget): every primary attempt earns ratio tokens (capped at burst),
// every extra attempt — a hedge or a failover retry — spends one. Under
// a brownout the spend rate exceeds the earn rate, the bucket drains,
// and the searcher falls back to single-attempt behavior instead of
// amplifying the overload into a retry storm. The bucket starts full so
// cold-start failovers are never starved.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

func newTokenBucket(ratio, burst float64) *tokenBucket {
	return &tokenBucket{tokens: burst, ratio: ratio, burst: burst}
}

// earn credits one primary attempt's worth of budget.
func (b *tokenBucket) earn() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// take spends one token for an extra attempt; false means the budget is
// exhausted (nothing is spent).
func (b *tokenBucket) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// level reads the current balance (for /stats).
func (b *tokenBucket) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

const (
	// latWindowSize bounds the per-pool latency ring; 128 successful
	// samples is enough for a stable p95 while still tracking regime
	// changes within a few hundred requests.
	latWindowSize = 128
	// latMinSamples gates the online quantile: below this the fixed
	// HedgeAfter trigger is used, so a cold router doesn't hedge off two
	// noisy samples.
	latMinSamples = 16
)

// latWindow is a fixed-size ring of recent successful attempt latencies
// for one shard's pool; the hedge trigger reads a high quantile of it.
type latWindow struct {
	mu      sync.Mutex
	samples [latWindowSize]time.Duration
	n       int // total observed; ring index is n % latWindowSize
}

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.n%latWindowSize] = d
	w.n++
	w.mu.Unlock()
}

// quantile returns the q-quantile over the window, or false before
// latMinSamples observations have warmed it up.
func (w *latWindow) quantile(q float64) (time.Duration, bool) {
	w.mu.Lock()
	if w.n < latMinSamples {
		w.mu.Unlock()
		return 0, false
	}
	n := w.n
	if n > latWindowSize {
		n = latWindowSize
	}
	buf := make([]time.Duration, n)
	copy(buf, w.samples[:n])
	w.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx], true
}

// hedgeDelay resolves the hedge trigger for one pool. Hedging is enabled
// iff HedgeAfter > 0; once the pool's latency window is warm and
// HedgeQuantile is set, the online per-shard quantile estimate replaces
// the fixed duration (clamped to >= 1ms so a microsecond-fast fleet
// doesn't hedge every request).
func (s *Searcher) hedgeDelay(p *pool) (time.Duration, bool) {
	if s.cfg.HedgeAfter <= 0 {
		return 0, false
	}
	if q := s.cfg.HedgeQuantile; q > 0 && q < 1 {
		if d, ok := p.lat.quantile(q); ok {
			if d < time.Millisecond {
				d = time.Millisecond
			}
			return d, true
		}
	}
	return s.cfg.HedgeAfter, true
}

// tailCounters aggregates the searcher-wide tail-tolerance telemetry
// (atomic: bumped from scatter goroutines, read lock-free by /stats).
type tailCounters struct {
	hedges        atomic.Int64 // hedge attempts launched
	hedgeWins     atomic.Int64 // hedges that answered first
	retries       atomic.Int64 // failover retries launched
	extraDenied   atomic.Int64 // extra attempts suppressed by the budget
	budgetExpired atomic.Int64 // attempts answered 504 (budget ran out worker-side)
	degraded      atomic.Int64 // partial-mode responses served degraded
	shardsDropped atomic.Int64 // shards omitted from degraded merges
}

// TailStats is the wire form of the tail-tolerance counters in the
// router's /stats.
type TailStats struct {
	Hedges        int64   `json:"hedges"`
	HedgeWins     int64   `json:"hedge_wins"`
	Retries       int64   `json:"retries"`
	ExtraDenied   int64   `json:"extra_denied"`
	BudgetExpired int64   `json:"budget_expired"`
	Degraded      int64   `json:"degraded"`
	ShardsDropped int64   `json:"shards_dropped"`
	ExtraTokens   float64 `json:"extra_tokens"` // current retry-budget balance
}

// TailStats snapshots the tail-tolerance counters.
func (s *Searcher) TailStats() TailStats {
	return TailStats{
		Hedges:        s.tail.hedges.Load(),
		HedgeWins:     s.tail.hedgeWins.Load(),
		Retries:       s.tail.retries.Load(),
		ExtraDenied:   s.tail.extraDenied.Load(),
		BudgetExpired: s.tail.budgetExpired.Load(),
		Degraded:      s.tail.degraded.Load(),
		ShardsDropped: s.tail.shardsDropped.Load(),
		ExtraTokens:   s.extra.level(),
	}
}
