package router

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Worker is the shard-serving half of the distributed tier: a thin HTTP
// facade over engine.SearchShardBatch. It holds no pipeline — no query
// log, no recommender — because workers only run the document scoring
// phase; everything query-understanding-shaped stays on the router.
//
// The engine is published atomically so a worker can bind its listener
// (and answer liveness probes) before the deterministic build finishes;
// until Publish, /readyz reports not-ready and /shard/search sheds 503.
type Worker struct {
	eng           atomic.Pointer[engine.Engine]
	searches      atomic.Int64
	shed          atomic.Int64
	budgetExpired atomic.Int64 // searches cut short by a propagated budget
}

// NewWorker returns a worker with no engine yet (not ready). Pass a
// non-nil engine to start ready.
func NewWorker(e *engine.Engine) *Worker {
	w := &Worker{}
	if e != nil {
		w.eng.Store(e)
	}
	return w
}

// Publish atomically installs the engine; the worker reports ready and
// serves shard searches from this point on.
func (w *Worker) Publish(e *engine.Engine) { w.eng.Store(e) }

// Ready reports whether the engine has been published.
func (w *Worker) Ready() bool { return w.eng.Load() != nil }

// Handler returns the worker's route table: /healthz (liveness),
// /readyz (readiness), POST /shard/search (per-shard retrieval).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", w.handleHealthz)
	mux.HandleFunc("GET /readyz", w.handleReadyz)
	mux.HandleFunc("POST /shard/search", w.handleShardSearch)
	return mux
}

func (w *Worker) handleHealthz(wr http.ResponseWriter, r *http.Request) {
	writeJSON(wr, http.StatusOK, map[string]any{
		"status":         "ok",
		"ready":          w.Ready(),
		"searches":       w.searches.Load(),
		"shed":           w.shed.Load(),
		"budget_expired": w.budgetExpired.Load(),
	})
}

func (w *Worker) handleReadyz(wr http.ResponseWriter, r *http.Request) {
	e := w.eng.Load()
	if e == nil {
		writeJSON(wr, http.StatusServiceUnavailable, WorkerReady{Ready: false, Reason: "index still loading"})
		return
	}
	writeJSON(wr, http.StatusOK, WorkerReady{
		Ready:  true,
		Docs:   e.NumDocs(),
		Shards: e.Segments().NumShards(),
		Epoch:  e.Epoch(),
	})
}

func (w *Worker) handleShardSearch(wr http.ResponseWriter, r *http.Request) {
	e := w.eng.Load()
	if e == nil {
		w.shed.Add(1)
		writeJSON(wr, http.StatusServiceUnavailable, errorBody{Error: "warming up: index still loading"})
		return
	}
	var req ShardSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(wr, http.StatusBadRequest, errorBody{Error: "invalid request body: " + err.Error()})
		return
	}
	if len(req.Queries) != len(req.Ks) {
		writeJSON(wr, http.StatusBadRequest, errorBody{Error: "queries and ks length mismatch"})
		return
	}
	// Deadline propagation: the router advertises the attempt's
	// remaining budget in X-Budget-Ms; work that cannot make the
	// deadline is stopped here rather than scored into a response
	// nobody will read. A budget expiry answers 504 so the router can
	// tell "the deadline ran out" (no breaker penalty) apart from "the
	// replica is sick" (500).
	ctx := r.Context()
	if h := r.Header.Get(HeaderBudgetMs); h != "" {
		if ms, perr := strconv.ParseInt(h, 10, 64); perr == nil && ms > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
			defer cancel()
		}
	}
	lists, epoch, err := e.SearchShardBatch(ctx, req.Shard, req.Queries, req.Ks, nil)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case r.Context().Err() != nil:
			code = 499 // client closed request; the scatter was aborted, not broken
		case ctx.Err() != nil:
			code = http.StatusGatewayTimeout // propagated budget ran out mid-search
			w.budgetExpired.Add(1)
		}
		writeJSON(wr, code, errorBody{Error: err.Error()})
		return
	}
	w.searches.Add(1)
	resp := ShardSearchResponse{Epoch: epoch, Lists: make([][]WireHit, len(lists))}
	for i, hits := range lists {
		wire := make([]WireHit, len(hits))
		for j, h := range hits {
			wire[j] = WireHit{Doc: h.Doc, ID: h.DocID, Score: h.Score, Snippet: h.Snippet}
		}
		resp.Lists[i] = wire
	}
	writeJSON(wr, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
