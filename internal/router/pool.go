package router

import (
	"math/rand"
	"sync"
	"time"
)

// pool is the replica set serving one shard. It owns the breaker tuning
// (shared across its replicas), a seeded RNG for cooldown jitter, and
// the latency window feeding the hedge trigger.
type pool struct {
	shard int
	bcfg  breakerConfig

	// lat records successful attempt latencies for the online hedge
	// quantile (own lock; updated outside pool.mu).
	lat latWindow

	mu       sync.Mutex
	rng      *rand.Rand // jitters cooldowns; guarded by mu
	replicas []*replica
}

// pick selects the next replica under smooth weighted round-robin,
// preferring the healthiest tier that has any candidate:
//
//  1. closed breaker + last probe healthy — the normal path;
//  2. closed breaker, not (yet) probe-confirmed — cold start, before
//     the first probe round completes;
//  3. half-open — cooldown elapsed, probation traffic re-admits it;
//  4. any untried replica — last resort: with every breaker open,
//     trying a probably-dead replica still beats failing the request
//     without a single attempt.
//
// tried excludes replicas this request already failed over from, so a
// bounded retry loop never burns two attempts on the same endpoint.
// Returns nil when every replica has been tried.
func (p *pool) pick(now time.Time, tried map[*replica]bool) *replica {
	p.mu.Lock()
	defer p.mu.Unlock()

	tiers := [4]func(r *replica) bool{
		func(r *replica) bool { return r.selectable(now) && r.state == breakerClosed && r.healthy },
		func(r *replica) bool { return r.selectable(now) && r.state == breakerClosed },
		func(r *replica) bool { return r.selectable(now) },
		func(r *replica) bool { return true },
	}
	for _, ok := range tiers {
		var cands []*replica
		for _, r := range p.replicas {
			if !tried[r] && ok(r) {
				cands = append(cands, r)
			}
		}
		if len(cands) > 0 {
			return pickSmoothWRR(cands)
		}
	}
	return nil
}

// pickSmoothWRR runs one step of nginx's smooth weighted round-robin
// over the candidate set: each candidate gains its weight, the largest
// accumulator wins and pays back the total. Deterministic, and spreads
// a weight-2:1 pair as a-b-a rather than a-a-b. Callers hold pool.mu.
func pickSmoothWRR(cands []*replica) *replica {
	total := 0
	var best *replica
	for _, r := range cands {
		r.current += r.weight
		total += r.weight
		if best == nil || r.current > best.current {
			best = r
		}
	}
	best.current -= total
	return best
}

// onResult feeds a request outcome into the replica's breaker (passive
// failure detection: live traffic updates health, not just probes).
func (p *pool) onResult(r *replica, ok bool, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ok {
		r.onSuccess()
	} else {
		r.onFailure(now, p.bcfg, p.rng)
	}
}

// onProbe feeds a probe outcome into membership and the breaker. A
// successful probe marks the replica healthy and — when the breaker is
// half-open (cooldown elapsed) — closes it, so a recovered replica is
// re-admitted by the probe loop even with zero live traffic. A failed
// probe marks it unhealthy and counts as a breaker failure, so a dead
// replica is ejected even when no request has touched it yet.
func (p *pool) onProbe(r *replica, ok bool, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r.probed = true
	r.healthy = ok
	if ok {
		if r.selectable(now) { // lazily open->half_open first
			r.onSuccess()
		}
		// Probe success during an unexpired cooldown does NOT short-
		// circuit re-admission: the backoff schedule is the contract.
	} else {
		r.onFailure(now, p.bcfg, p.rng)
	}
}

// ready reports whether the pool can serve: at least one replica has
// passed a probe and is not sitting in an open breaker.
func (p *pool) ready(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.replicas {
		if r.probed && r.healthy && r.selectable(now) {
			return true
		}
	}
	return false
}

// ReplicaStats is one replica's row in the router's /stats.
type ReplicaStats struct {
	URL        string `json:"url"`
	Weight     int    `json:"weight"`
	State      string `json:"state"` // closed | open | half_open
	Healthy    bool   `json:"healthy"`
	Requests   int64  `json:"requests"`
	Failures   int64  `json:"failures"`
	ProbeFails int64  `json:"probe_failures"`
	OpenCycles int    `json:"open_cycles"`
	CooldownMs int64  `json:"cooldown_ms,omitempty"` // remaining, when open
	Epoch      uint64 `json:"epoch"`
}

// PoolStats is one shard's row in the router's /stats.
type PoolStats struct {
	Shard    int            `json:"shard"`
	Ready    bool           `json:"ready"`
	Replicas []ReplicaStats `json:"replicas"`
}

func (p *pool) stats(now time.Time) PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	ps := PoolStats{Shard: p.shard, Replicas: make([]ReplicaStats, len(p.replicas))}
	for i, r := range p.replicas {
		sel := r.selectable(now) // applies the lazy open->half_open transition
		rs := ReplicaStats{
			URL:        r.url,
			Weight:     r.weight,
			State:      r.state.String(),
			Healthy:    r.healthy,
			Requests:   r.requests.Load(),
			Failures:   r.failures.Load(),
			ProbeFails: r.probeFail.Load(),
			OpenCycles: r.openCount,
			Epoch:      r.epoch.Load(),
		}
		if r.state == breakerOpen {
			if left := r.cooldown - now.Sub(r.openedAt); left > 0 {
				rs.CooldownMs = left.Milliseconds()
			}
		}
		ps.Replicas[i] = rs
		if r.probed && r.healthy && sel {
			ps.Ready = true
		}
	}
	return ps
}
