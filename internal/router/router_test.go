package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/synth"
)

var (
	testPipe     *repro.Pipeline
	testPipeOnce sync.Once
)

// testPipeline builds one small deterministic world with a 2-shard
// index partition — the same spec the server tests use, so behavior
// differences between tiers cannot hide behind corpus differences.
// Tests only read it.
func testPipeline(t testing.TB) *repro.Pipeline {
	t.Helper()
	testPipeOnce.Do(func() {
		p, err := repro.Build(repro.Config{
			Corpus: synth.CorpusSpec{
				Seed:                11,
				NumTopics:           6,
				MinSubtopics:        2,
				MaxSubtopics:        4,
				DocsPerSubtopic:     10,
				GenericDocsPerTopic: 5,
				NoiseDocs:           100,
				DocLength:           40,
				BackgroundVocab:     400,
				TopicVocab:          10,
				SubtopicVocab:       8,
			},
			Log:           synth.AOLLike(12, 2500),
			Engine:        engine.Config{Shards: 2},
			NumCandidates: 100,
			PerSpec:       10,
			K:             10,
		})
		if err != nil {
			t.Fatal(err)
		}
		testPipe = p
	})
	return testPipe
}

// routedPipeline shallow-copies the shared pipeline with the
// distributed searcher swapped in: every component (engine, lexicon,
// recommender) is the shared immutable one, only document scoring goes
// remote.
func routedPipeline(p *repro.Pipeline, s *Searcher) *repro.Pipeline {
	rp := *p
	rp.Searcher = s
	return &rp
}

func searchURL(base, q string, extra url.Values) string {
	v := url.Values{}
	v.Set("q", q)
	for key, vals := range extra {
		for _, val := range vals {
			v.Add(key, val)
		}
	}
	return base + "/search?" + v.Encode()
}

// tookUs strips the only inherently timing-dependent field from a
// /search body so the remainder can be compared byte for byte.
var tookUs = regexp.MustCompile(`"took_us":\d+`)

func normalizeBody(b []byte) string {
	return tookUs.ReplaceAllString(string(b), `"took_us":0`)
}

func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, normalizeBody(b)
}

// TestRouterDifferential is the tentpole gate: a router fronting shard
// workers must answer /search byte-identically (modulo took_us) to the
// single-process server over the same deterministic world, across
// topologies (one worker serving every shard; two shards with two
// replicas each), every algorithm, and several k. Both servers get
// identical request sequences from fresh caches, so even cache_hit
// fields must line up.
func TestRouterDifferential(t *testing.T) {
	p := testPipeline(t)
	eng := p.Engine

	worker := func() *httptest.Server {
		ts := httptest.NewServer(NewWorker(eng).Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	w1, w2, w3 := worker(), worker(), worker()

	topologies := []struct {
		name   string
		shards [][]ReplicaSpec
	}{
		{"one-worker-all-shards", [][]ReplicaSpec{
			{{URL: w1.URL}},
			{{URL: w1.URL}},
		}},
		{"two-shards-two-replicas", [][]ReplicaSpec{
			{{URL: w1.URL}, {URL: w2.URL, Weight: 2}},
			{{URL: w2.URL}, {URL: w3.URL}},
		}},
	}

	queries := []string{
		p.Testbed.TopicQuery(1),
		p.Testbed.TopicQuery(2),
		p.Testbed.TopicQuery(4),
	}

	for _, topo := range topologies {
		t.Run(topo.name, func(t *testing.T) {
			s, err := NewSearcher(Config{Shards: topo.shards})
			if err != nil {
				t.Fatal(err)
			}
			s.ProbeOnce(context.Background())
			if !s.Ready() {
				t.Fatalf("searcher not ready after probe: %+v", s.Stats())
			}

			// Fresh caches on BOTH sides so the nth request of every
			// sequence sees the same hit/miss state.
			single := httptest.NewServer(server.New(p.NewServeHandle(64, 2), server.Config{}).Handler())
			defer single.Close()
			routed := httptest.NewServer(NewRouter(server.New(routedPipeline(p, s).NewServeHandle(64, 2), server.Config{}), s).Handler())
			defer routed.Close()

			for _, q := range queries {
				for _, alg := range core.Algorithms {
					for _, k := range []string{"5", "10"} {
						v := url.Values{"alg": {string(alg)}, "k": {k}}
						wantCode, want := fetch(t, searchURL(single.URL, q, v))
						gotCode, got := fetch(t, searchURL(routed.URL, q, v))
						if wantCode != gotCode || want != got {
							t.Fatalf("q=%q alg=%s k=%s:\nsingle (%d): %s\nrouter (%d): %s",
								q, alg, k, wantCode, want, gotCode, got)
						}
					}
				}
			}
		})
	}
}

// TestRouterReadyz pins the router's composite readiness: not ready
// until the local pipeline is published AND every pool has a healthy
// probed replica; /healthz stays 200 (liveness) throughout.
func TestRouterReadyz(t *testing.T) {
	p := testPipeline(t)
	w := NewWorker(nil) // worker up, index not loaded
	wts := httptest.NewServer(w.Handler())
	defer wts.Close()

	s, err := NewSearcher(Config{Shards: [][]ReplicaSpec{{{URL: wts.URL}}, {{URL: wts.URL}}}})
	if err != nil {
		t.Fatal(err)
	}
	inner := server.New(nil, server.Config{})
	rts := httptest.NewServer(NewRouter(inner, s).Handler())
	defer rts.Close()

	get := func(path string) (int, RouterReady) {
		resp, err := http.Get(rts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr RouterReady
		if path == "/readyz" {
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, rr
	}

	if code, rr := get("/readyz"); code != http.StatusServiceUnavailable || rr.Ready {
		t.Fatalf("readyz before anything: %d %+v", code, rr)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz must stay 200 (liveness): %d", code)
	}

	// Pipeline up, backends still cold.
	inner.Publish(p.NewServeHandle(16, 1))
	if code, rr := get("/readyz"); code != http.StatusServiceUnavailable || rr.Backends || !rr.Pipeline {
		t.Fatalf("readyz with cold backends: %d %+v", code, rr)
	}

	// Worker publishes; a probe round flips backends.
	w.Publish(p.Engine)
	s.ProbeOnce(context.Background())
	if code, rr := get("/readyz"); code != http.StatusOK || !rr.Ready {
		t.Fatalf("readyz after publish+probe: %d %+v", code, rr)
	}
}

// TestProbeRejectsShardMismatch: a worker partitioned differently than
// the router's topology must never pass a probe — merging its lists
// would be silently wrong.
func TestProbeRejectsShardMismatch(t *testing.T) {
	p := testPipeline(t) // 2-shard engine
	wts := httptest.NewServer(NewWorker(p.Engine).Handler())
	defer wts.Close()

	// Router configured for 3 shards; worker partitions into 2.
	s, err := NewSearcher(Config{Shards: [][]ReplicaSpec{
		{{URL: wts.URL}}, {{URL: wts.URL}}, {{URL: wts.URL}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.ProbeOnce(context.Background())
	if s.Ready() {
		t.Fatalf("searcher ready despite shard-count mismatch: %+v", s.Stats())
	}
	for _, ps := range s.Stats() {
		for _, rs := range ps.Replicas {
			if rs.Healthy {
				t.Fatalf("replica marked healthy despite shard mismatch: %+v", rs)
			}
		}
	}
}

// TestSearcherValidation covers topology construction errors.
func TestSearcherValidation(t *testing.T) {
	if _, err := NewSearcher(Config{}); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := NewSearcher(Config{Shards: [][]ReplicaSpec{{{URL: "http://a"}}, {}}}); err == nil {
		t.Error("shard with no replicas accepted")
	}
}

// TestWorkerShardSearchErrors pins the worker's error envelope: shed
// while loading, reject malformed bodies and out-of-range shards.
func TestWorkerShardSearchErrors(t *testing.T) {
	p := testPipeline(t)
	w := NewWorker(nil)
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/shard/search", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if code := post(`{"shard":0,"queries":["x"],"ks":[5]}`); code != http.StatusServiceUnavailable {
		t.Errorf("search while loading: %d, want 503", code)
	}
	w.Publish(p.Engine)
	if code := post(`{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", code)
	}
	if code := post(`{"shard":0,"queries":["x"],"ks":[5,6]}`); code != http.StatusBadRequest {
		t.Errorf("length mismatch: %d, want 400", code)
	}
	if code := post(fmt.Sprintf(`{"shard":%d,"queries":["x"],"ks":[5]}`, 99)); code != http.StatusInternalServerError {
		t.Errorf("out-of-range shard: %d, want 500", code)
	}
	if code := post(`{"shard":0,"queries":["x"],"ks":[5]}`); code != http.StatusOK {
		t.Errorf("valid search: %d, want 200", code)
	}
}
