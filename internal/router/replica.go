package router

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// breakerConfig is the pool-owned breaker tuning: threshold consecutive
// failures open a breaker, cooldowns grow base<<(cycle-1) capped at max,
// and jitter adds up to that fraction of extra random cooldown AFTER the
// cap — so a fleet of routers that all saw the same outage doesn't
// re-probe the recovering replica in lockstep.
type breakerConfig struct {
	threshold int
	base      time.Duration
	max       time.Duration
	jitter    float64
}

// breakerState is a replica's circuit-breaker state.
type breakerState int

const (
	// breakerClosed: healthy, takes traffic.
	breakerClosed breakerState = iota
	// breakerOpen: recently failing; no traffic until the cooldown
	// elapses. Cooldown grows exponentially with consecutive open
	// cycles, so a flapping replica is re-admitted ever more cautiously.
	breakerOpen
	// breakerHalfOpen: cooldown elapsed; probation. The replica takes
	// trial traffic (and probes); one failure reopens it, one success
	// closes it.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// replica is one worker endpoint in a shard's pool. Breaker and
// weighted-round-robin state are guarded by the owning pool's mutex;
// the counters are atomic so /stats can read them without the lock.
type replica struct {
	url    string // base URL, e.g. http://127.0.0.1:9101
	weight int

	// Circuit breaker (pool.mu).
	state     breakerState
	fails     int           // consecutive failures since last success
	openCount int           // consecutive open cycles (backoff exponent)
	openedAt  time.Time     // when the breaker last opened
	cooldown  time.Duration // current cooldown (base << (openCount-1), capped)

	// Probe-driven membership (pool.mu).
	probed  bool // at least one probe completed
	healthy bool // last probe succeeded (ready, shard count matched)

	// Smooth weighted round-robin (pool.mu).
	current int

	// Counters (atomic; read lock-free by stats).
	requests  atomic.Int64 // attempts routed here (probes excluded)
	failures  atomic.Int64 // failed attempts (probes excluded)
	probeFail atomic.Int64 // failed probes
	epoch     atomic.Uint64
}

// selectable reports whether the replica may take traffic now, lazily
// moving open->half_open once the cooldown has elapsed. Callers hold
// pool.mu.
func (r *replica) selectable(now time.Time) bool {
	if r.state == breakerOpen && now.Sub(r.openedAt) >= r.cooldown {
		r.state = breakerHalfOpen
	}
	return r.state != breakerOpen
}

// onSuccess records a successful attempt or probe: the breaker closes
// and the backoff resets. Callers hold pool.mu.
func (r *replica) onSuccess() {
	r.fails = 0
	r.openCount = 0
	r.state = breakerClosed
}

// onFailure records a failed attempt or probe under the pool's breaker
// thresholds. A half-open replica reopens on its first failure
// (probation is one strike); a closed replica opens after threshold
// consecutive failures. Callers hold pool.mu.
func (r *replica) onFailure(now time.Time, cfg breakerConfig, rng *rand.Rand) {
	r.fails++
	if r.state == breakerOpen {
		return
	}
	if r.state == breakerHalfOpen || r.fails >= cfg.threshold {
		r.open(now, cfg, rng)
	}
}

func (r *replica) open(now time.Time, cfg breakerConfig, rng *rand.Rand) {
	r.state = breakerOpen
	r.openedAt = now
	r.openCount++
	d := cfg.base << (r.openCount - 1)
	if d > cfg.max || d <= 0 { // <= 0 guards shift overflow
		d = cfg.max
	}
	// Jitter after capping: even replicas pinned at the max cooldown get
	// decorrelated re-probe times across a router fleet.
	if cfg.jitter > 0 && rng != nil {
		d += time.Duration(cfg.jitter * rng.Float64() * float64(d))
	}
	r.cooldown = d
}
