package stats

import (
	"errors"
	"math"
	"sort"
)

// WilcoxonResult reports the outcome of a Wilcoxon signed-rank test.
type WilcoxonResult struct {
	N      int     // number of non-zero paired differences
	WPlus  float64 // sum of ranks of positive differences
	WMinus float64 // sum of ranks of negative differences
	W      float64 // test statistic: min(WPlus, WMinus)
	P      float64 // two-sided p-value
	Exact  bool    // true if P comes from the exact permutation distribution
}

// ErrNoDifferences is returned when every paired difference is zero, in
// which case the test is undefined (the systems are identical on the data).
var ErrNoDifferences = errors.New("stats: wilcoxon: all paired differences are zero")

// Wilcoxon performs the two-sided Wilcoxon signed-rank test on paired
// samples x and y, the significance test the paper applies to the per-topic
// effectiveness scores of Table 3 ("none of these differences can be
// classified as statistically significant according to the Wilcoxon
// signed-rank test at 0.05 level").
//
// Zero differences are dropped (Wilcoxon's original procedure). Tied
// absolute differences receive average ranks. For n <= 25 with no ties the
// exact permutation distribution is used; otherwise a normal approximation
// with continuity and tie corrections is applied.
func Wilcoxon(x, y []float64) (WilcoxonResult, error) {
	if len(x) != len(y) {
		return WilcoxonResult{}, errors.New("stats: wilcoxon: length mismatch")
	}
	type diff struct {
		abs  float64
		sign int
	}
	diffs := make([]diff, 0, len(x))
	for i := range x {
		d := x[i] - y[i]
		if d == 0 {
			continue
		}
		s := 1
		if d < 0 {
			s = -1
		}
		diffs = append(diffs, diff{abs: math.Abs(d), sign: s})
	}
	n := len(diffs)
	if n == 0 {
		return WilcoxonResult{}, ErrNoDifferences
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].abs < diffs[j].abs })

	// Average ranks for ties; collect tie-group sizes for the variance
	// correction of the normal approximation.
	ranks := make([]float64, n)
	hasTies := false
	var tieGroups []int
	for i := 0; i < n; {
		j := i
		for j < n && diffs[j].abs == diffs[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // mean of ranks i+1..j
		for t := i; t < j; t++ {
			ranks[t] = avg
		}
		if j-i > 1 {
			hasTies = true
			tieGroups = append(tieGroups, j-i)
		}
		i = j
	}

	wPlus, wMinus := 0.0, 0.0
	for i, d := range diffs {
		if d.sign > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w := math.Min(wPlus, wMinus)
	res := WilcoxonResult{N: n, WPlus: wPlus, WMinus: wMinus, W: w}

	if n <= 25 && !hasTies {
		res.Exact = true
		res.P = wilcoxonExactP(n, w)
		return res, nil
	}

	mean := float64(n*(n+1)) / 4
	variance := float64(n*(n+1)*(2*n+1)) / 24
	for _, t := range tieGroups {
		variance -= float64(t*t*t-t) / 48
	}
	if variance <= 0 {
		// All differences tied to a single value; the statistic is
		// degenerate. Fall back to p = 1 when perfectly balanced.
		res.P = 1
		return res, nil
	}
	// Continuity correction toward the mean.
	z := (w - mean + 0.5) / math.Sqrt(variance)
	p := 2 * normalCDF(z)
	if p > 1 {
		p = 1
	}
	res.P = p
	return res, nil
}

// wilcoxonExactP returns the exact two-sided p-value
// P(W <= w) + P(W >= n(n+1)/2 - w) for the null distribution of the
// signed-rank sum over ranks 1..n (no ties). Computed by dynamic
// programming over the 2^n equally likely sign assignments.
func wilcoxonExactP(n int, w float64) float64 {
	total := n * (n + 1) / 2
	// counts[s] = number of subsets of {1..n} with rank sum s.
	counts := make([]float64, total+1)
	counts[0] = 1
	for r := 1; r <= n; r++ {
		for s := total; s >= r; s-- {
			counts[s] += counts[s-r]
		}
	}
	nAssign := math.Pow(2, float64(n))
	wi := int(math.Floor(w))
	lower := 0.0
	for s := 0; s <= wi && s <= total; s++ {
		lower += counts[s]
	}
	upper := 0.0
	for s := total - wi; s <= total; s++ {
		upper += counts[s]
	}
	p := (lower + upper) / nAssign
	if p > 1 {
		p = 1
	}
	return p
}

// normalCDF returns P(Z <= z) for a standard normal variable.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// SignificantlyDifferent reports whether the two paired samples differ at
// the given significance level alpha according to the Wilcoxon signed-rank
// test. It returns false (not an error) when the samples are identical.
func SignificantlyDifferent(x, y []float64, alpha float64) bool {
	res, err := Wilcoxon(x, y)
	if err != nil {
		return false
	}
	return res.P < alpha
}
