// Package stats provides the statistical machinery the paper's evaluation
// relies on: descriptive statistics, harmonic numbers (the normalization
// constant of the paper's utility function, Definition 2), the Wilcoxon
// signed-rank test (used in Section 5 to assess significance of the
// effectiveness differences), and least-squares fitting used by the
// Table 1 empirical-complexity harness.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if fewer than two
// samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two central values for
// even-length input), or 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// harmonicCache memoizes small harmonic numbers; H_n for the paper's
// utility normalization is always bounded by the (small) size of the
// per-specialization result lists R_q', so the cache covers the common case.
var harmonicCache = func() []float64 {
	c := make([]float64, 257)
	for i := 1; i < len(c); i++ {
		c[i] = c[i-1] + 1/float64(i)
	}
	return c
}()

// Harmonic returns the n-th harmonic number H_n = sum_{i=1..n} 1/i.
// H_0 = 0. This is the normalization factor of the paper's Definition 2:
// U~(d|R_q') = U(d|R_q') / H_{|R_q'|}.
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n < len(harmonicCache) {
		return harmonicCache[n]
	}
	h := harmonicCache[len(harmonicCache)-1]
	for i := len(harmonicCache); i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// Linear holds the result of an ordinary least-squares fit y = a + b*x.
type Linear struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// ErrDegenerateFit is returned when a regression has fewer than two
// distinct x values.
var ErrDegenerateFit = errors.New("stats: degenerate regression input")

// FitLinear computes an ordinary least-squares fit of y on x.
func FitLinear(x, y []float64) (Linear, error) {
	if len(x) != len(y) || len(x) < 2 {
		return Linear{}, ErrDegenerateFit
	}
	mx, my := Mean(x), Mean(y)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, ErrDegenerateFit
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range x {
			r := y[i] - (a + b*x[i])
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return Linear{Intercept: a, Slope: b, R2: r2}, nil
}

// FitPowerLaw fits y = c * x^e by least squares in log-log space and
// returns the exponent e, the constant c, and the log-space R^2. It is used
// to recover the empirical complexity exponents of Table 1 (e.g. time vs k
// should fit e ~= 1 for IASelect/xQuAD and e ~= 0 for OptSelect's log k
// term). All inputs must be strictly positive.
func FitPowerLaw(x, y []float64) (exponent, constant, r2 float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0, ErrDegenerateFit
	}
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return 0, 0, 0, errors.New("stats: FitPowerLaw requires positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	fit, err := FitLinear(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return fit.Slope, math.Exp(fit.Intercept), fit.R2, nil
}
