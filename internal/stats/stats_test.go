package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean = %f, want 5", m)
	}
	// Sample variance of the classic dataset: ss = 32, n-1 = 7.
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %f, want %f", v, 32.0/7.0)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %f", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single sample != 0")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{nil, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %f, want %f", c.in, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %f/%f", Min(xs), Max(xs))
	}
	defer func() {
		if recover() == nil {
			t.Error("Min(empty) did not panic")
		}
	}()
	Min(nil)
}

func TestHarmonic(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{-3, 0},
		{1, 1},
		{2, 1.5},
		{3, 1 + 0.5 + 1.0/3},
		{20, 3.597739657143682},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Harmonic(%d) = %.15f, want %.15f", c.n, got, c.want)
		}
	}
	// Beyond the cache.
	h1000 := Harmonic(1000)
	// H_1000 ~= ln(1000) + gamma + 1/2000
	approx := math.Log(1000) + 0.5772156649 + 1.0/2000
	if !almostEq(h1000, approx, 1e-4) {
		t.Errorf("Harmonic(1000) = %f, approx %f", h1000, approx)
	}
}

func TestHarmonicMonotone(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 600; n++ {
		h := Harmonic(n)
		if h <= prev {
			t.Fatalf("Harmonic not strictly increasing at n=%d", n)
		}
		if diff := h - prev; !almostEq(diff, 1/float64(n), 1e-12) {
			t.Fatalf("Harmonic(%d)-Harmonic(%d) = %g, want %g", n, n-1, diff, 1/float64(n))
		}
		prev = h
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %f, want 1", fit.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point fit did not fail")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant-x fit did not fail")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch did not fail")
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3 * x^1.7
	x := []float64{1, 2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * math.Pow(x[i], 1.7)
	}
	e, c, r2, err := FitPowerLaw(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e, 1.7, 1e-9) || !almostEq(c, 3, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Errorf("power fit = e %f c %f r2 %f", e, c, r2)
	}
	if _, _, _, err := FitPowerLaw([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("non-positive input did not fail")
	}
}

func TestWilcoxonKnownExample(t *testing.T) {
	// Classic textbook example (n=10, no ties after differencing).
	x := []float64{125, 115, 130, 140, 140, 115, 140, 125, 140, 135}
	y := []float64{110, 122, 125, 120, 140, 124, 123, 137, 135, 145}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 9 { // one zero difference dropped
		t.Errorf("N = %d, want 9", res.N)
	}
	// The |differences| contain ties (two 5s), so the implementation must
	// fall back to the tie-corrected normal approximation.
	if res.Exact {
		t.Error("expected normal approximation: |d| values are tied")
	}
	if res.WPlus+res.WMinus != float64(res.N*(res.N+1))/2 {
		t.Errorf("rank sums %f+%f != n(n+1)/2", res.WPlus, res.WMinus)
	}
	if res.P <= 0 || res.P > 1 {
		t.Errorf("p = %f out of range", res.P)
	}
	if res.P < 0.05 {
		t.Errorf("p = %f; this example is famously non-significant", res.P)
	}
}

func TestWilcoxonIdenticalSamples(t *testing.T) {
	x := []float64{1, 2, 3}
	if _, err := Wilcoxon(x, x); err != ErrNoDifferences {
		t.Errorf("err = %v, want ErrNoDifferences", err)
	}
	if SignificantlyDifferent(x, x, 0.05) {
		t.Error("identical samples reported significant")
	}
}

func TestWilcoxonLengthMismatch(t *testing.T) {
	if _, err := Wilcoxon([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not rejected")
	}
}

func TestWilcoxonClearDifference(t *testing.T) {
	// x uniformly much larger than y: should be significant.
	x := make([]float64, 20)
	y := make([]float64, 20)
	for i := range x {
		x[i] = float64(i) + 100
		y[i] = float64(i)
	}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Errorf("p = %f, want < 0.01 for a uniform +100 shift", res.P)
	}
	if res.WMinus != 0 {
		t.Errorf("WMinus = %f, want 0", res.WMinus)
	}
}

func TestWilcoxonExactMatchesKnownTable(t *testing.T) {
	// For n=5, the exact null distribution of W+ over 32 assignments:
	// P(W <= 0) two-sided = 2/32 = 0.0625.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10} // all differences negative, distinct magnitudes
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 0 {
		t.Fatalf("W = %f, want 0", res.W)
	}
	if !almostEq(res.P, 0.0625, 1e-12) {
		t.Errorf("p = %f, want 0.0625", res.P)
	}
}

func TestWilcoxonNormalApproxLargeN(t *testing.T) {
	// n=30 forces the normal approximation path.
	x := make([]float64, 30)
	y := make([]float64, 30)
	for i := range x {
		x[i] = float64(i%7) + 0.1*float64(i)
		y[i] = x[i]
		if i%2 == 0 {
			y[i] += 0.5
		} else {
			y[i] -= 0.5
		}
	}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("expected normal approximation for n=30 with ties")
	}
	if res.P < 0.5 {
		t.Errorf("balanced +-0.5 shifts should be far from significant, p = %f", res.P)
	}
}

// Property: the p-value is always in (0, 1], and rank sums account for all
// n(n+1)/2 rank mass.
func TestWilcoxonProperty(t *testing.T) {
	prop := func(seedVals []float64) bool {
		if len(seedVals) < 2 {
			return true
		}
		if len(seedVals) > 40 {
			seedVals = seedVals[:40]
		}
		x := make([]float64, len(seedVals))
		y := make([]float64, len(seedVals))
		for i, v := range seedVals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			x[i] = v
			y[i] = -v / 2
		}
		res, err := Wilcoxon(x, y)
		if err == ErrNoDifferences {
			return true
		}
		if err != nil {
			return false
		}
		if res.P <= 0 || res.P > 1 {
			return false
		}
		want := float64(res.N*(res.N+1)) / 2
		return almostEq(res.WPlus+res.WMinus, want, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := normalCDF(c.z); !almostEq(got, c.want, 1e-4) {
			t.Errorf("normalCDF(%f) = %f, want %f", c.z, got, c.want)
		}
	}
}

// Verify the exact null distribution against published Wilcoxon critical
// values: for a two-sided test at alpha = 0.05, the critical W is 0 for
// n=6, 2 for n=8, 8 for n=10, 13 for n=12 (Wilcoxon tables). A statistic
// at the critical value must be significant (p <= 0.05), one just above
// must not.
func TestWilcoxonCriticalValues(t *testing.T) {
	cases := []struct {
		n        int
		critical float64
	}{
		{6, 0}, {8, 3}, {10, 8}, {12, 13}, {14, 21},
	}
	for _, c := range cases {
		atCrit := wilcoxonExactP(c.n, c.critical)
		if atCrit > 0.05 {
			t.Errorf("n=%d: p(W=%g) = %f, want <= 0.05", c.n, c.critical, atCrit)
		}
		above := wilcoxonExactP(c.n, c.critical+2)
		if above <= 0.05 {
			t.Errorf("n=%d: p(W=%g) = %f, want > 0.05", c.n, c.critical+2, above)
		}
	}
}

// The exact distribution must be symmetric: P(W <= w) computed from below
// equals P(W >= total - w) from above, so p(w) is monotone in w.
func TestWilcoxonExactMonotone(t *testing.T) {
	for n := 3; n <= 12; n++ {
		prev := 0.0
		for w := 0; w <= n*(n+1)/4; w++ {
			p := wilcoxonExactP(n, float64(w))
			if p < prev-1e-12 {
				t.Fatalf("n=%d: p decreased at w=%d", n, w)
			}
			prev = p
		}
		// The full-range statistic gives p = 1.
		if p := wilcoxonExactP(n, float64(n*(n+1)/2)); p != 1 {
			t.Fatalf("n=%d: p at max W = %f", n, p)
		}
	}
}

// Property: FitPowerLaw recovers exponents from noise-free power laws for
// arbitrary positive constants and exponents.
func TestFitPowerLawProperty(t *testing.T) {
	prop := func(eRaw, cRaw uint16) bool {
		e := -2 + 4*float64(eRaw)/65535.0 // e in [-2, 2]
		c := 0.1 + 10*float64(cRaw)/65535.0
		x := []float64{1, 2, 4, 8, 16}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = c * math.Pow(x[i], e)
		}
		gotE, gotC, r2, err := FitPowerLaw(x, y)
		if err != nil {
			return false
		}
		return almostEq(gotE, e, 1e-6) && almostEq(gotC, c, 1e-6) && almostEq(r2, 1, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
