package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Durability: when Config.WALDir is set, every SEALED epoch — the initial
// build/load, each flush, each compaction — is persisted as a full engine
// stream `epoch-<n>.eng` in that directory before the in-memory swap
// (write to a temp file, fsync, atomic rename). Recovery takes the newest
// file that parses, so a crash mid-write (torn temp file, or a garbage or
// truncated epoch file) falls back to the last durable epoch. The two
// newest epoch files are kept; older ones are pruned opportunistically.
//
// Ingest/Delete epochs between seals are deliberately NOT persisted: the
// memtable is the volatile tail, and a crash rolls it back to the last
// sealed epoch — the classic LSM trade, made explicit here.

const epochFilePattern = "epoch-*.eng"

func epochFileName(epoch uint64) string {
	return fmt.Sprintf("epoch-%016d.eng", epoch)
}

// openWAL attaches the configured WAL directory at Build/Load time: if it
// holds a recoverable epoch, that state replaces the freshly built one
// (the directory is the durable truth across restarts); otherwise the
// current state is sealed into it as the first durable epoch.
func (e *Engine) openWAL() error {
	if e.cfg.WALDir == "" {
		return nil
	}
	if err := os.MkdirAll(e.cfg.WALDir, 0o755); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := recoverNewest(e.cfg); ok {
		old := e.cur.Load()
		e.cur.Store(st)
		old.unpin()
		e.durable = st.epoch
		return nil
	}
	return e.persistLocked(e.cur.Load())
}

// recoverNewest loads the newest parseable epoch file, newest first.
func recoverNewest(cfg Config) (*state, bool) {
	names, err := filepath.Glob(filepath.Join(cfg.WALDir, epochFilePattern))
	if err != nil || len(names) == 0 {
		return nil, false
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			continue
		}
		st, err := loadState(f, cfg)
		f.Close()
		if err == nil {
			return st, true
		}
	}
	return nil, false
}

// persistLocked seals a state into the WAL directory (no-op without one).
// Called with e.mu held, BEFORE the state is swapped in: on any error the
// caller keeps the old state, so a failed seal never publishes an epoch
// that is not durable.
func (e *Engine) persistLocked(st *state) error {
	if e.cfg.WALDir == "" {
		return nil
	}
	f, err := os.CreateTemp(e.cfg.WALDir, "epoch-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := saveState(st, f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	final := filepath.Join(e.cfg.WALDir, epochFileName(st.epoch))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	pruneEpochs(e.cfg.WALDir)
	e.durable = st.epoch
	return nil
}

// pruneEpochs keeps the two newest epoch files (the newest plus one
// fallback against a torn newest). Best-effort: errors are ignored — a
// failed prune costs disk, not correctness.
func pruneEpochs(dir string) {
	names, err := filepath.Glob(filepath.Join(dir, epochFilePattern))
	if err != nil || len(names) <= 2 {
		return
	}
	sort.Strings(names)
	for _, name := range names[:len(names)-2] {
		os.Remove(name)
	}
}
