package engine

import (
	"sort"

	"repro/internal/textsim"
)

// Surrogate is one stored document surrogate: the snippet (and its vector)
// of a document highly relevant to some specialization.
type Surrogate struct {
	DocID   string
	Rank    int // 1-based rank in R_q′
	Snippet string
	Vector  textsim.Vector
	// IVec is Vector interned under the owning engine's lexicon — the
	// representation the scoring paths consume.
	IVec textsim.IVector
}

// SurrogateStore holds, for every known ambiguous query, the R_q′ result
// surrogates of each of its specializations — the only per-query state the
// paper's method needs at query time ("the ambiguous queries, the list of
// their possible specializations ..., the probabilities ..., and the sets
// R_q′ of documents highly relevant for each specialization", §4.1).
type SurrogateStore struct {
	// lists[ambiguousQuery][specializationQuery] = surrogates
	lists map[string]map[string][]Surrogate
}

// NewSurrogateStore returns an empty store.
func NewSurrogateStore() *SurrogateStore {
	return &SurrogateStore{lists: make(map[string]map[string][]Surrogate)}
}

// Put stores the surrogate list R_q′ for (ambiguous query q,
// specialization q′).
func (s *SurrogateStore) Put(q, spec string, surrogates []Surrogate) {
	row := s.lists[q]
	if row == nil {
		row = make(map[string][]Surrogate)
		s.lists[q] = row
	}
	row[spec] = surrogates
}

// Get returns the stored R_q′ for (q, q′), nil when absent.
func (s *SurrogateStore) Get(q, spec string) []Surrogate { return s.lists[q][spec] }

// AmbiguousQueries returns the sorted ambiguous queries with stored lists.
func (s *SurrogateStore) AmbiguousQueries() []string {
	out := make([]string, 0, len(s.lists))
	for q := range s.lists {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// Specializations returns the sorted specialization queries stored for q.
func (s *SurrogateStore) Specializations(q string) []string {
	row := s.lists[q]
	out := make([]string, 0, len(row))
	for spec := range row {
		out = append(out, spec)
	}
	sort.Strings(out)
	return out
}

// PopulateFromEngine fills the store by querying the engine for each
// specialization of q and keeping the top perList surrogates.
func (s *SurrogateStore) PopulateFromEngine(e *Engine, q string, specs []string, perList int) {
	for _, spec := range specs {
		results := e.Search(spec, perList)
		surrogates := make([]Surrogate, len(results))
		for i, r := range results {
			vec := e.VectorOfText(r.Snippet)
			surrogates[i] = Surrogate{
				DocID:   r.DocID,
				Rank:    r.Rank,
				Snippet: r.Snippet,
				Vector:  vec,
				IVec:    textsim.Intern(e.Lexicon(), vec),
			}
		}
		s.Put(q, spec, surrogates)
	}
}

// Footprint is the §4.1 memory accounting of the store.
type Footprint struct {
	AmbiguousQueries  int   // N
	MaxSpecs          int   // |S_q̂|: specializations of the widest query
	MaxListLen        int   // |R_q̂′|: longest stored surrogate list
	AvgSurrogateBytes int   // L: mean snippet length in bytes
	ActualBytes       int64 // measured: Σ snippet bytes over the store
	// BoundBytes is the paper's back-of-the-envelope upper bound
	// N·|S_q̂|·|R_q̂′|·L.
	BoundBytes int64
}

// ComputeFootprint measures the store and evaluates the paper's bound.
func (s *SurrogateStore) ComputeFootprint() Footprint {
	var f Footprint
	f.AmbiguousQueries = len(s.lists)
	var snippetBytes int64
	var snippetCount int64
	for _, row := range s.lists {
		if len(row) > f.MaxSpecs {
			f.MaxSpecs = len(row)
		}
		for _, surrogates := range row {
			if len(surrogates) > f.MaxListLen {
				f.MaxListLen = len(surrogates)
			}
			for _, sur := range surrogates {
				snippetBytes += int64(len(sur.Snippet))
				snippetCount++
			}
		}
	}
	f.ActualBytes = snippetBytes
	if snippetCount > 0 {
		f.AvgSurrogateBytes = int(snippetBytes / snippetCount)
	}
	f.BoundBytes = int64(f.AmbiguousQueries) * int64(f.MaxSpecs) *
		int64(f.MaxListLen) * int64(f.AvgSurrogateBytes)
	return f
}
