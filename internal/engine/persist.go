package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/index"
)

// Engine persistence: a built engine can be written to a single stream and
// reloaded without re-analyzing the corpus — the index goes through the
// index codec, the raw document text (needed for snippet extraction)
// follows as length-prefixed pairs, and the IDF table and term lexicon
// are reconstructed from the index at load time (the codec's sorted-
// dictionary invariant makes the lexicon a zero-copy wrap). Layout:
//
//	magic "RENG1\n"
//	index (index codec)
//	numDocs, then per doc: idLen, idBytes, bodyLen, bodyBytes
//
// The weighting model and analyzer are code, not data: the loader supplies
// them through Config exactly as Build does.

const engineMagic = "RENG1\n"

// ErrBadEngineFormat reports a corrupt or foreign engine stream.
var ErrBadEngineFormat = errors.New("engine: bad engine format")

// SaveTo serializes the engine's index and document store. The index
// goes through the segmented codec, so the shard partition survives the
// round trip (Load keeps it unless Config.Shards overrides).
func (e *Engine) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(engineMagic); err != nil {
		return err
	}
	if _, err := e.seg.WriteTo(bw); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	idx := e.seg.Index()
	if err := writeUvarint(uint64(idx.NumDocs())); err != nil {
		return err
	}
	// Iterate in internal doc order so the stream is canonical.
	for d := int32(0); d < int32(idx.NumDocs()); d++ {
		id := idx.DocID(d)
		if err := writeString(id); err != nil {
			return err
		}
		if err := writeString(e.rawBody[id]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reconstructs an engine written by SaveTo. cfg supplies the model
// and analyzer (they must match the ones used at build time for query
// analysis to agree with the stored index).
func Load(r io.Reader, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	br := bufio.NewReader(r)
	head := make([]byte, len(engineMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEngineFormat, err)
	}
	if string(head) != engineMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadEngineFormat, head)
	}
	seg, err := index.ReadSegmented(br)
	if err != nil {
		return nil, fmt.Errorf("engine: loading index: %w", err)
	}
	if cfg.Shards > 0 {
		// Shard count is a deployment knob, not corpus data: an explicit
		// Config.Shards overrides whatever partition the stream recorded.
		seg = seg.Resegment(cfg.Shards)
	}
	// Posting layout is a deployment knob too: an explicit block size
	// (negative = flat, Build's convention) or DisableCompression
	// re-lays the loaded postings (preserving the shard partition);
	// Config zero values keep the stream's layout.
	switch {
	case (cfg.DisableCompression || cfg.BlockSize < 0) && seg.Index().Blocked():
		seg = index.ReblockSegmented(seg, -1)
	case !cfg.DisableCompression && cfg.BlockSize > 0 && seg.Index().BlockSize() != cfg.BlockSize:
		seg = index.ReblockSegmented(seg, cfg.BlockSize)
	}
	idx := seg.Index()
	numDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: doc count: %v", ErrBadEngineFormat, err)
	}
	if numDocs != uint64(idx.NumDocs()) {
		return nil, fmt.Errorf("%w: doc store has %d docs, index %d",
			ErrBadEngineFormat, numDocs, idx.NumDocs())
	}
	readString := func() (string, error) {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if l > 1<<28 {
			return "", fmt.Errorf("%w: string too long (%d)", ErrBadEngineFormat, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	raw := make(map[string]string, numDocs)
	for i := uint64(0); i < numDocs; i++ {
		id, err := readString()
		if err != nil {
			return nil, fmt.Errorf("%w: doc id %d: %v", ErrBadEngineFormat, i, err)
		}
		body, err := readString()
		if err != nil {
			return nil, fmt.Errorf("%w: doc body %d: %v", ErrBadEngineFormat, i, err)
		}
		raw[id] = body
	}
	return newEngine(cfg, seg, raw), nil
}
