package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/index"
	"repro/internal/textsim"
)

// Engine persistence: an engine state can be written to a single stream
// and reloaded without re-analyzing the corpus. Two formats:
//
//	RENG1 (legacy, read-only): one segmented index, then the raw document
//	store — numDocs, then per doc: idLen, idBytes, bodyLen, bodyBytes.
//
//	RENG2: the full segment lifecycle state —
//	  magic "RENG2\n"
//	  index manifest (index codec RIDX6: epoch, segments, tombstones)
//	  per segment, per doc in internal order: bodyLen, bodyBytes
//	    (doc IDs come from the segment's index, so only bodies repeat)
//	  memtable: numDocs, then per doc: idLen, idBytes, bodyLen, bodyBytes
//	    (tokens are re-derived by analysis at load time)
//
// SaveTo always writes RENG2; Load dispatches on the magic, lifting an
// RENG1 stream to a quiet single-segment state at epoch 0. The weighting
// model and analyzer are code, not data: the loader supplies them through
// Config exactly as Build does. The IDF table and term lexicon are
// reconstructed from the base index at load time (the codec's sorted-
// dictionary invariant makes the lexicon a zero-copy wrap).

const (
	engineMagic   = "RENG1\n"
	engineMagicV2 = "RENG2\n"
)

// ErrBadEngineFormat reports a corrupt or foreign engine stream.
var ErrBadEngineFormat = errors.New("engine: bad engine format")

// SaveTo serializes the engine's current state — segments, tombstones and
// buffered memtable documents included. Shard partitions and posting
// layouts survive the round trip (Load keeps them unless Config
// overrides).
func (e *Engine) SaveTo(w io.Writer) error {
	return saveState(e.cur.Load(), w)
}

func saveState(st *state, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(engineMagicV2); err != nil {
		return err
	}
	man := &index.Manifest{Epoch: st.epoch}
	for _, sg := range st.segs {
		man.Segments = append(man.Segments, sg.seg)
	}
	for id := range st.dead {
		man.Tombstones = append(man.Tombstones, id)
	}
	sort.Strings(man.Tombstones)
	if _, err := man.WriteTo(bw); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	// Per-segment bodies in internal doc order: the stream is canonical
	// and IDs need not repeat (the index carries them).
	for _, sg := range st.segs {
		idx := sg.seg.Index()
		for d := int32(0); d < int32(idx.NumDocs()); d++ {
			body, _ := sg.docs.Body(idx.DocID(d))
			if err := writeString(body); err != nil {
				return err
			}
		}
	}
	docs := st.mem.LiveDocs()
	if err := writeUvarint(uint64(len(docs))); err != nil {
		return err
	}
	for _, d := range docs {
		if err := writeString(d.ID); err != nil {
			return err
		}
		if err := writeString(d.Payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reconstructs an engine written by SaveTo (either format). cfg
// supplies the model and analyzer (they must match the ones used at build
// time for query analysis to agree with the stored index).
func Load(r io.Reader, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	st, err := loadState(r, cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg}
	e.cur.Store(st)
	if err := e.openWAL(); err != nil {
		return nil, err
	}
	return e, nil
}

func loadState(r io.Reader, cfg Config) (*state, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(engineMagic))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEngineFormat, err)
	}
	switch string(head) {
	case engineMagic:
		return loadStateV1(br, cfg)
	case engineMagicV2:
		return loadStateV2(br, cfg)
	}
	return nil, fmt.Errorf("%w: bad magic %q", ErrBadEngineFormat, head)
}

// reshape applies the deployment knobs — shard count, posting layout —
// to a loaded segment. Config zero values keep the stream's choices.
func reshape(seg *index.Segmented, cfg Config) *index.Segmented {
	if cfg.Shards > 0 {
		// Shard count is a deployment knob, not corpus data: an explicit
		// Config.Shards overrides whatever partition the stream recorded.
		seg = seg.Resegment(cfg.Shards)
	}
	// Posting layout is a deployment knob too: an explicit block size
	// (negative = flat, Build's convention) or DisableCompression
	// re-lays the loaded postings (preserving the shard partition).
	switch {
	case (cfg.DisableCompression || cfg.BlockSize < 0) && seg.Index().Blocked():
		seg = index.ReblockSegmented(seg, -1)
	case !cfg.DisableCompression && cfg.BlockSize > 0 && seg.Index().BlockSize() != cfg.BlockSize:
		seg = index.ReblockSegmented(seg, cfg.BlockSize)
	}
	return seg
}

func loadStateV1(br *bufio.Reader, cfg Config) (*state, error) {
	if _, err := br.Discard(len(engineMagic)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEngineFormat, err)
	}
	seg, err := index.ReadSegmented(br)
	if err != nil {
		return nil, fmt.Errorf("engine: loading index: %w", err)
	}
	seg = reshape(seg, cfg)
	idx := seg.Index()
	numDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: doc count: %v", ErrBadEngineFormat, err)
	}
	if numDocs != uint64(idx.NumDocs()) {
		return nil, fmt.Errorf("%w: doc store has %d docs, index %d",
			ErrBadEngineFormat, numDocs, idx.NumDocs())
	}
	raw := make(map[string]string, numDocs)
	for i := uint64(0); i < numDocs; i++ {
		id, err := readLenString(br)
		if err != nil {
			return nil, fmt.Errorf("%w: doc id %d: %v", ErrBadEngineFormat, i, err)
		}
		body, err := readLenString(br)
		if err != nil {
			return nil, fmt.Errorf("%w: doc body %d: %v", ErrBadEngineFormat, i, err)
		}
		raw[id] = body
	}
	return freshState(cfg, seg, heapDocs(raw), 0), nil
}

func loadStateV2(br *bufio.Reader, cfg Config) (*state, error) {
	if _, err := br.Discard(len(engineMagicV2)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEngineFormat, err)
	}
	man, err := index.ReadManifest(br)
	if err != nil {
		return nil, fmt.Errorf("engine: loading manifest: %w", err)
	}
	segs := make([]*segment, len(man.Segments))
	for si, sg := range man.Segments {
		if si == 0 {
			// Deployment knobs reshape the base segment only: flushed
			// segments were already laid out under this config, and their
			// single-shard partition is part of the lifecycle's shape.
			sg = reshape(sg, cfg)
		}
		installTables(cfg, sg.Index())
		idx := sg.Index()
		raw := make(map[string]string, idx.NumDocs())
		for d := int32(0); d < int32(idx.NumDocs()); d++ {
			body, err := readLenString(br)
			if err != nil {
				return nil, fmt.Errorf("%w: segment %d body %d: %v", ErrBadEngineFormat, si, d, err)
			}
			raw[idx.DocID(d)] = body
		}
		segs[si] = &segment{seg: sg, docs: heapDocs(raw)}
	}
	memN, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: memtable count: %v", ErrBadEngineFormat, err)
	}
	if memN > 1<<24 {
		return nil, fmt.Errorf("%w: memtable count %d too large", ErrBadEngineFormat, memN)
	}
	mem := index.NewMemtable(cfg.blockLayout())
	for i := uint64(0); i < memN; i++ {
		id, err := readLenString(br)
		if err != nil {
			return nil, fmt.Errorf("%w: memtable id %d: %v", ErrBadEngineFormat, i, err)
		}
		body, err := readLenString(br)
		if err != nil {
			return nil, fmt.Errorf("%w: memtable body %d: %v", ErrBadEngineFormat, i, err)
		}
		mem.Add(index.MemDoc{ID: id, Tokens: cfg.Analyzer.Tokens(body), Payload: body})
	}
	dead := make(map[string]bool, len(man.Tombstones))
	for _, id := range man.Tombstones {
		if !mem.Has(id) { // defensive: the invariant keeps these disjoint
			dead[id] = true
		}
	}
	st := &state{
		stateData: stateData{
			epoch: man.Epoch,
			segs:  segs,
			dead:  dead,
			mem:   mem,
		},
		refs: 1,
	}
	st.retainMapped()
	// Recount liveness: a sealed copy is shadowed when deleted or
	// superseded by a newer source; everything else is live.
	st.live = mem.Len()
	mv := mem.View()
	for si, sg := range segs {
		idx := sg.seg.Index()
		for d := int32(0); d < int32(idx.NumDocs()); d++ {
			if st.sealedLive(si, idx.DocID(d), mv) {
				st.live++
			} else {
				st.shadowed++
			}
		}
	}
	base := segs[0].seg.Index()
	st.lex = textsim.WrapSortedTerms(base.Terms())
	st.idf = textsim.ComputeIDFFromIndex(base, st.lex)
	return st, nil
}

func readLenString(br *bufio.Reader) (string, error) {
	l, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if l > 1<<28 {
		return "", fmt.Errorf("string too long (%d)", l)
	}
	b := make([]byte, l)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
