package engine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ranking"
	"repro/internal/textsim"
)

func smallCorpus() []Document {
	return []Document{
		{ID: "osx", Title: "Mac OS X Leopard", Body: "Apple released the Leopard operating system for Mac computers with many new features for the desktop and developer tools included"},
		{ID: "tank", Title: "Leopard 2 tank", Body: "The Leopard 2 is a main battle tank developed for the German army with advanced armor and a powerful cannon used by many countries"},
		{ID: "cat", Title: "Leopard cat", Body: "The leopard is a wild cat species living in Africa and Asia known for its spotted coat and climbing ability in savanna habitats"},
		{ID: "pie", Title: "Apple pie", Body: "A classic apple pie recipe with cinnamon sugar and a flaky butter crust baked until golden brown and served warm with cream"},
	}
}

func buildEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := Build(smallCorpus(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBuildAndSearch(t *testing.T) {
	e := buildEngine(t)
	if e.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", e.NumDocs())
	}
	results := e.Search("leopard tank army", 10)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if results[0].DocID != "tank" {
		t.Errorf("top result = %s, want tank", results[0].DocID)
	}
	for i, r := range results {
		if r.Rank != i+1 {
			t.Errorf("rank[%d] = %d", i, r.Rank)
		}
		if r.Snippet == "" {
			t.Errorf("empty snippet for %s", r.DocID)
		}
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	docs := []Document{{ID: "a", Body: "x"}, {ID: "a", Body: "y"}}
	if _, err := Build(docs, Config{}); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestSearchKLimit(t *testing.T) {
	e := buildEngine(t)
	if got := e.Search("leopard", 2); len(got) != 2 {
		t.Errorf("k=2 returned %d", len(got))
	}
	all := e.Search("leopard", 0)
	if len(all) != 3 {
		t.Errorf("k=0 returned %d, want 3 leopard docs", len(all))
	}
}

func TestSnippetQueryBiased(t *testing.T) {
	// Long document where the query terms appear only near the end.
	long := Document{
		ID:    "long",
		Title: "padding",
		Body: strings.Repeat("filler words about nothing in particular ", 30) +
			"the secret treasure map location is here " +
			strings.Repeat("more filler content after the important part ", 10),
	}
	e, err := Build(append(smallCorpus(), long), Config{SnippetWindow: 12})
	if err != nil {
		t.Fatal(err)
	}
	snip := e.Snippet("long", "secret treasure map")
	if !strings.Contains(snip, "treasure") {
		t.Errorf("snippet missed query region: %q", snip)
	}
	if got := len(strings.Fields(snip)); got != 12 {
		t.Errorf("snippet window = %d tokens, want 12", got)
	}
}

func TestSnippetEdgeCases(t *testing.T) {
	e := buildEngine(t)
	if s := e.Snippet("nosuchdoc", "query"); s != "" {
		t.Errorf("unknown doc snippet = %q", s)
	}
	// Doc shorter than window: whole text.
	short := Document{ID: "tiny", Body: "just three words"}
	e2, err := Build([]Document{short}, Config{SnippetWindow: 30})
	if err != nil {
		t.Fatal(err)
	}
	if s := e2.Snippet("tiny", "anything"); s != "just three words" {
		t.Errorf("short doc snippet = %q", s)
	}
	// No match: leading window.
	if s := e.Snippet("pie", "quantum physics"); s == "" {
		t.Error("no-match snippet empty")
	}
}

func TestSurrogateVectorDiscriminates(t *testing.T) {
	e := buildEngine(t)
	osV := e.SurrogateVector("osx", "leopard mac os x")
	tankV := e.SurrogateVector("tank", "leopard tank")
	pieV := e.SurrogateVector("pie", "apple pie recipe")
	if osV.IsZero() || tankV.IsZero() || pieV.IsZero() {
		t.Fatal("zero surrogate vector")
	}
	// OS and tank snippets share "leopard" but IDF weighting must keep
	// cross-intent similarity well below same-intent self-similarity.
	if sim := textsim.Cosine(osV, tankV); sim > 0.6 {
		t.Errorf("os~tank similarity = %f, suspiciously high", sim)
	}
	if self := textsim.Cosine(osV, osV); self < 0.999 {
		t.Errorf("self similarity = %f", self)
	}
}

func TestCustomModel(t *testing.T) {
	e, err := Build(smallCorpus(), Config{Model: ranking.BM25{}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Model().Name() != "BM25" {
		t.Errorf("model = %s", e.Model().Name())
	}
	got := e.Search("apple pie recipe", 1)
	if len(got) != 1 || got[0].DocID != "pie" {
		t.Errorf("BM25 search = %+v", got)
	}
}

func TestSurrogateStorePutGet(t *testing.T) {
	s := NewSurrogateStore()
	s.Put("leopard", "leopard tank", []Surrogate{{DocID: "tank", Rank: 1, Snippet: "snippet text"}})
	s.Put("leopard", "leopard mac os x", []Surrogate{{DocID: "osx", Rank: 1, Snippet: "os snippet"}})
	if got := s.Get("leopard", "leopard tank"); len(got) != 1 || got[0].DocID != "tank" {
		t.Errorf("Get = %+v", got)
	}
	if got := s.Get("leopard", "missing"); got != nil {
		t.Errorf("missing spec = %+v", got)
	}
	if got := s.AmbiguousQueries(); len(got) != 1 || got[0] != "leopard" {
		t.Errorf("AmbiguousQueries = %v", got)
	}
	specs := s.Specializations("leopard")
	if len(specs) != 2 || specs[0] != "leopard mac os x" {
		t.Errorf("Specializations = %v", specs)
	}
}

func TestPopulateFromEngine(t *testing.T) {
	e := buildEngine(t)
	s := NewSurrogateStore()
	s.PopulateFromEngine(e, "leopard", []string{"leopard tank", "leopard mac os x"}, 2)
	tankList := s.Get("leopard", "leopard tank")
	if len(tankList) == 0 {
		t.Fatal("no surrogates for leopard tank")
	}
	if tankList[0].DocID != "tank" {
		t.Errorf("top surrogate = %s, want tank", tankList[0].DocID)
	}
	if tankList[0].Vector.IsZero() {
		t.Error("surrogate vector is zero")
	}
	if tankList[0].Rank != 1 {
		t.Errorf("surrogate rank = %d", tankList[0].Rank)
	}
}

func TestFootprint(t *testing.T) {
	s := NewSurrogateStore()
	s.Put("q1", "q1 a", []Surrogate{{Snippet: strings.Repeat("x", 100)}, {Snippet: strings.Repeat("y", 100)}})
	s.Put("q1", "q1 b", []Surrogate{{Snippet: strings.Repeat("z", 100)}})
	s.Put("q2", "q2 a", []Surrogate{{Snippet: strings.Repeat("w", 100)}})
	f := s.ComputeFootprint()
	if f.AmbiguousQueries != 2 || f.MaxSpecs != 2 || f.MaxListLen != 2 {
		t.Errorf("footprint = %+v", f)
	}
	if f.ActualBytes != 400 {
		t.Errorf("ActualBytes = %d, want 400", f.ActualBytes)
	}
	if f.AvgSurrogateBytes != 100 {
		t.Errorf("AvgSurrogateBytes = %d", f.AvgSurrogateBytes)
	}
	// Bound: N(2) * maxSpecs(2) * maxList(2) * L(100) = 800 >= actual.
	if f.BoundBytes != 800 {
		t.Errorf("BoundBytes = %d, want 800", f.BoundBytes)
	}
	if f.BoundBytes < f.ActualBytes {
		t.Error("paper bound below actual usage")
	}
	// Empty store.
	empty := NewSurrogateStore().ComputeFootprint()
	if empty.BoundBytes != 0 || empty.ActualBytes != 0 {
		t.Errorf("empty footprint = %+v", empty)
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	e, err := Build(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumDocs() != 0 {
		t.Errorf("NumDocs = %d", e.NumDocs())
	}
	if got := e.Search("anything", 5); len(got) != 0 {
		t.Errorf("search on empty corpus = %v", got)
	}
}

func TestSurrogateStoreOverwrite(t *testing.T) {
	s := NewSurrogateStore()
	s.Put("q", "q a", []Surrogate{{DocID: "old"}})
	s.Put("q", "q a", []Surrogate{{DocID: "new1"}, {DocID: "new2"}})
	got := s.Get("q", "q a")
	if len(got) != 2 || got[0].DocID != "new1" {
		t.Errorf("overwrite failed: %+v", got)
	}
}

func TestVectorOfTextConsistentWithSearchAnalysis(t *testing.T) {
	e := buildEngine(t)
	// The same raw text must vectorize identically regardless of path.
	v1 := e.VectorOfText("Apple released the Leopard operating system")
	v2 := e.VectorOfText("apple RELEASED the leopard OPERATING system!!")
	if textsim.Cosine(v1, v2) < 0.999 {
		t.Errorf("case/punctuation changed the vector: cos = %f", textsim.Cosine(v1, v2))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := buildEngine(t)
	var buf bytes.Buffer
	if err := e.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != e.NumDocs() {
		t.Fatalf("NumDocs = %d, want %d", loaded.NumDocs(), e.NumDocs())
	}
	// Identical search results, scores and snippets.
	for _, q := range []string{"leopard tank army", "apple pie recipe", "leopard"} {
		want := e.Search(q, 10)
		got := loaded.Search(q, 10)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Search(%q) differs after reload:\ngot  %+v\nwant %+v", q, got, want)
		}
	}
	// Surrogate vectors identical (IDF recomputed from the index).
	v1 := e.SurrogateVector("osx", "leopard mac")
	v2 := loaded.SurrogateVector("osx", "leopard mac")
	if textsim.Cosine(v1, v2) < 0.999999 {
		t.Error("surrogate vectors differ after reload")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "XENG1\n", "RENG1\nnot an index"} {
		if _, err := Load(strings.NewReader(in), Config{}); err == nil {
			t.Errorf("Load(%q) succeeded", in)
		}
	}
}

func TestLoadTruncatedDocStore(t *testing.T) {
	e := buildEngine(t)
	var buf bytes.Buffer
	if err := e.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Load(bytes.NewReader(full[:len(full)-10]), Config{}); err == nil {
		t.Error("truncated stream accepted")
	}
}
