package engine

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/index"
)

// OpenIndexFile constructs a serving engine from any persisted file the
// system writes, dispatching on the magic:
//
//	RENG1/RENG2  engine streams — decoded through Load (full lifecycle
//	             state, heap-owned).
//	RIDX7        the mapped layout. With cfg.Mmap the file is mmap'ed and
//	             served in place: no posting decode, no heap copy of the
//	             block region, O(dictionary) open cost — the instant-
//	             startup path workers use. Without cfg.Mmap it is decoded
//	             onto the heap like any other index stream.
//	RIDX1–RIDX6  legacy index streams, decoded onto the heap.
//
// Index files carry no analyzed corpus, so the engine serves bodies from
// the file's payload section when present (RIDX7) and empty snippets
// otherwise. The analyzer and model come from cfg, exactly as for Load,
// and must match the ones used at build time. cfg.Shards resegments the
// loaded partition; posting-layout overrides (BlockSize,
// DisableCompression) are ignored for index files — the file's layout is
// authoritative (relayout with buildindex instead).
func OpenIndexFile(path string, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [6]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	switch string(magic[:]) {
	case engineMagic, engineMagicV2:
		defer f.Close()
		return Load(f, cfg)
	}
	if cfg.Mmap && string(magic[:]) == index.MagicMapped {
		f.Close()
		seg, err := index.OpenMapped(path)
		if err != nil {
			return nil, err
		}
		return engineAroundIndex(cfg, seg)
	}
	defer f.Close()
	seg, err := index.ReadSegmented(f)
	if err != nil {
		return nil, err
	}
	return engineAroundIndex(cfg, seg)
}

// advise applies a madvise access-pattern hint to idx's backing mapping
// unless the engine was configured with DisableMadvise. Hints are
// advisory — errors are ignored — and on owned (heap) indexes or
// platforms without madvise the call is a no-op.
func (e *Engine) advise(idx *index.Index, a index.Advice) {
	if e.cfg.DisableMadvise {
		return
	}
	_ = idx.Advise(a)
}

// engineAroundIndex wraps a loaded (possibly mapped) segmented index in a
// quiet single-segment engine whose document store is the index's payload
// section.
func engineAroundIndex(cfg Config, seg *index.Segmented) (*Engine, error) {
	if cfg.Shards > 0 {
		// O(shards) boundary rebuild over the same physical index — cheap
		// even when mapped, unlike a posting relayout.
		seg = seg.Resegment(cfg.Shards)
	}
	installTables(cfg, seg.Index())
	if cfg.DisableMadvise {
		// OpenMapped defaults the region to MADV_RANDOM (the serving
		// pattern); an engine opting out restores normal readahead.
		_ = seg.Index().Advise(index.AdviseNormal)
	}
	e := &Engine{cfg: cfg}
	e.cur.Store(freshState(cfg, seg, &mappedDocs{idx: seg.Index()}, 0))
	// The state took its own reference on the mapping; drop the open one
	// so the last unpin (or last live iterator) unmaps.
	seg.Close()
	if err := e.openWAL(); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// WriteMappedTo serializes the engine's base segment — postings, shard
// partition, max-score tables, raw bodies — as one RIDX7 mapped-layout
// file that OpenIndexFile (with Config.Mmap) serves in place. The state
// must be quiescent: a single sealed segment with no buffered documents
// and no tombstones (Flush + Compact first). Returns the bytes written.
func (e *Engine) WriteMappedTo(w io.Writer) (int64, error) {
	st := e.snapshot()
	defer st.unpin()
	mv := st.mem.View()
	if !st.quiet(mv) || len(st.dead) != 0 {
		return 0, errors.New("engine: mapped export requires a quiescent single-segment state (Flush and Compact first)")
	}
	sg := st.segs[0]
	idx := sg.seg.Index()
	// The export is one sequential pass over postings and payload: hint
	// readahead for the scan, then restore the serving pattern (the
	// segment keeps answering searches throughout).
	e.advise(idx, index.AdviseSequential)
	defer e.advise(idx, index.AdviseRandom)
	return sg.seg.WriteMapped(w, func(d int32) string {
		body, _ := sg.docs.Body(idx.DocID(d))
		return body
	})
}

// Close retires the engine: the current state's reference is dropped, so
// once in-flight pinned searches and their iterators finish, any mapped
// segments are unmapped. Searching after Close is a bug (on a mapped
// engine the pages may be gone). Idempotent; heap-backed engines only
// drop references to garbage-collected memory.
func (e *Engine) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		e.cur.Load().unpin()
	}
	return nil
}
