package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Crash-consistency tests: a writer that dies mid-stream must never
// corrupt what a reader later sees, and a process restart must recover
// the newest durable epoch — never a torn or partial one.

// failingWriter errors after n bytes, simulating a crash mid-write.
type failingWriter struct {
	n       int
	written int
}

var errDiskGone = errors.New("simulated crash: disk gone")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		allowed := w.n - w.written
		if allowed < 0 {
			allowed = 0
		}
		w.written += allowed
		return allowed, errDiskGone
	}
	w.written += len(p)
	return len(p), nil
}

// midLifecycleEngine builds an engine that exercises every RENG2 section:
// multiple sealed segments, tombstones, and a non-empty memtable.
func midLifecycleEngine(t *testing.T) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var docs []Document
	for i := 0; i < 12; i++ {
		docs = append(docs, liveDoc(rng, fmt.Sprintf("d%04d", i), 0))
	}
	e, err := Build(docs, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 18; i++ {
		if _, err := e.Ingest(liveDoc(rng, fmt.Sprintf("d%04d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Delete("d0003"); !ok {
		t.Fatal("delete d0003 missed")
	}
	if _, err := e.Ingest(liveDoc(rng, "d0005", 7)); err != nil { // supersede a sealed doc
		t.Fatal(err)
	}
	if _, err := e.Ingest(liveDoc(rng, "d0100", 0)); err != nil { // brand-new, memtable only
		t.Fatal(err)
	}
	return e
}

// TestSaveToFailingWriter cuts the save stream at every prefix length:
// SaveTo must surface the write error (never panic, never succeed), and
// Load of the truncated prefix must fail cleanly too.
func TestSaveToFailingWriter(t *testing.T) {
	e := midLifecycleEngine(t)
	var full bytes.Buffer
	if err := e.SaveTo(&full); err != nil {
		t.Fatal(err)
	}
	if e.Live().MemDocs == 0 || e.Live().Tombstones == 0 || e.Live().Segments < 2 {
		t.Fatalf("fixture is not mid-lifecycle: %+v", e.Live())
	}
	for cut := 0; cut < full.Len(); cut += 1 + cut/10 {
		if err := e.SaveTo(&failingWriter{n: cut}); err == nil {
			t.Fatalf("SaveTo with writer dying at byte %d reported success", cut)
		}
		if _, err := Load(bytes.NewReader(full.Bytes()[:cut]), Config{}); err == nil {
			t.Fatalf("Load of %d-byte truncated stream reported success", cut)
		}
	}
	// The untruncated stream round-trips to an identical search surface.
	e2, err := Load(bytes.NewReader(full.Bytes()), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{liveVocab[0], "uniqd0005", "uniqd0003", "uniqd0100"} {
		if got, want := e2.Search(q, 10), e.Search(q, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %q after reload: %+v, want %+v", q, got, want)
		}
	}
	// Flushes/Compactions are process-lifetime counters, not persisted.
	got, want := e2.Live(), e.Live()
	got.Flushes, got.Compactions = want.Flushes, want.Compactions
	if got != want {
		t.Fatalf("LiveStats after reload: %+v, want %+v", got, want)
	}
}

// TestWALRecoversNewestValidEpoch seals several epochs into a WAL dir,
// then corrupts the newest files in the ways a crash can leave them —
// pure garbage, a truncated tail — and checks a rebuild adopts the
// newest epoch that still parses.
func TestWALRecoversNewestValidEpoch(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	var docs []Document
	for i := 0; i < 10; i++ {
		docs = append(docs, liveDoc(rng, fmt.Sprintf("d%04d", i), 0))
	}
	cfg := Config{WALDir: dir}
	e, err := Build(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch A: ingest + flush. Epoch B: delete + flush.
	if _, err := e.Ingest(liveDoc(rng, "d0100", 0)); err != nil {
		t.Fatal(err)
	}
	epochA, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Delete("d0002"); !ok {
		t.Fatal("delete d0002 missed")
	}
	epochB, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if epochB <= epochA {
		t.Fatalf("epochs not monotonic: flush gave %d then %d", epochA, epochB)
	}
	wantB := e.Search(liveVocab[0], 10)

	// Restart: the newest epoch (B) is intact and must be adopted.
	r1, err := Build(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Epoch() != epochB {
		t.Fatalf("recovered epoch %d, want %d", r1.Epoch(), epochB)
	}
	if got := r1.Search(liveVocab[0], 10); !reflect.DeepEqual(got, wantB) {
		t.Fatalf("recovered search differs from pre-crash epoch B")
	}
	if len(r1.Search("uniqd0002", 5)) != 0 {
		t.Fatal("doc deleted in epoch B resurfaced after recovery")
	}

	// Corrupt epoch B's file with garbage: recovery must fall back to A.
	fileB := filepath.Join(dir, epochFileName(epochB))
	if err := os.WriteFile(fileB, []byte("not an engine stream at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Build(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch() != epochA {
		t.Fatalf("after garbage newest file: recovered epoch %d, want fallback %d", r2.Epoch(), epochA)
	}
	if len(r2.Search("uniqd0002", 5)) == 0 {
		t.Fatal("epoch A should still contain d0002 (deleted only in B)")
	}

	// Truncate epoch B instead (torn write): same fallback.
	good, err := os.ReadFile(filepath.Join(dir, epochFileName(epochA)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fileB, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r3, err := Build(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Epoch() != epochA {
		t.Fatalf("after truncated newest file: recovered epoch %d, want %d", r3.Epoch(), epochA)
	}

	// With every file corrupted, recovery gives up and the engine starts
	// from the freshly built state (epoch 0 lineage), not an error.
	entries, err := filepath.Glob(filepath.Join(dir, "epoch-*.eng"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range entries {
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r4, err := Build(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r4.NumDocs(), len(docs); got != want {
		t.Fatalf("fresh start after total WAL loss: %d docs, want %d", got, want)
	}
}

// TestFlushFailureKeepsServing removes the WAL directory out from under
// the engine: the seal cannot become durable, so Flush must fail WITHOUT
// swapping state — the buffered document stays searchable, the epoch does
// not advance — and once the directory returns, Flush succeeds.
func TestFlushFailureKeepsServing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	rng := rand.New(rand.NewSource(9))
	var docs []Document
	for i := 0; i < 8; i++ {
		docs = append(docs, liveDoc(rng, fmt.Sprintf("d%04d", i), 0))
	}
	e, err := Build(docs, Config{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(liveDoc(rng, "d0200", 0)); err != nil {
		t.Fatal(err)
	}
	epochBefore := e.Epoch()
	memBefore := e.Live().MemDocs

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(); err == nil {
		t.Fatal("Flush with missing WAL dir reported success")
	}
	if e.Epoch() != epochBefore {
		t.Fatalf("failed flush advanced the epoch: %d -> %d", epochBefore, e.Epoch())
	}
	if got := e.Live().MemDocs; got != memBefore {
		t.Fatalf("failed flush changed the memtable: %d docs -> %d", memBefore, got)
	}
	if len(e.Search("uniqd0200", 5)) == 0 {
		t.Fatal("buffered doc unsearchable after failed flush")
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatalf("Flush after restoring WAL dir: %v", err)
	}
	if e.Epoch() <= epochBefore {
		t.Fatal("successful flush did not advance the epoch")
	}
	if len(e.Search("uniqd0200", 5)) == 0 {
		t.Fatal("doc lost across the recovered flush")
	}
	// Exactly one durable epoch file exists for the recovered seal.
	files, err := filepath.Glob(filepath.Join(dir, "epoch-*.eng"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("WAL dir has %d epoch files, want 1: %v", len(files), files)
	}
}
