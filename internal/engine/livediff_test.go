package engine

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ranking"
	"repro/internal/textsim"
)

// The generative mutation differential: random interleavings of ingest,
// update, delete, flush and compact against the live engine, mirrored in
// a trivial shadow model (surviving documents in last-write order). After
// quiescing (a final compaction), the live engine must be bit-identical
// to a batch Build over the shadow — retrieval (exhaustive, pruned and
// sharded), search results with scores and snippets, and the downstream
// diversification — across weighting models, shard counts and ks.
// Mid-run, membership is checked: a unique per-document token finds its
// document iff the shadow says it is alive.

// shadowCorpus is the reference model: documents in last-write order,
// updates move to the end — the order Build would be fed.
type shadowCorpus struct {
	order []string
	docs  map[string]Document
}

func newShadow() *shadowCorpus {
	return &shadowCorpus{docs: make(map[string]Document)}
}

func (s *shadowCorpus) upsert(d Document) {
	if _, ok := s.docs[d.ID]; ok {
		for i, id := range s.order {
			if id == d.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.order = append(s.order, d.ID)
	s.docs[d.ID] = d
}

func (s *shadowCorpus) remove(id string) bool {
	if _, ok := s.docs[id]; !ok {
		return false
	}
	delete(s.docs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return true
}

func (s *shadowCorpus) list() []Document {
	out := make([]Document, len(s.order))
	for i, id := range s.order {
		out[i] = s.docs[id]
	}
	return out
}

var liveVocab = []string{
	"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
	"iota", "kappa", "lambda", "mu", "nu", "xi", "omicron", "pi",
	"rho", "sigma", "tau", "upsilon",
}

// liveDoc builds a deterministic document: a handful of vocabulary words
// plus a token unique to the document ID, so membership is probeable.
func liveDoc(rng *rand.Rand, id string, rev int) Document {
	n := 5 + rng.Intn(8)
	body := fmt.Sprintf("uniq%s rev%d", id, rev)
	for i := 0; i < n; i++ {
		body += " " + liveVocab[rng.Intn(len(liveVocab))]
	}
	return Document{ID: id, Title: "doc " + id, Body: body}
}

// applyLiveOps drives one seeded interleaving against engine and shadow.
func applyLiveOps(t *testing.T, e *Engine, sh *shadowCorpus, rng *rand.Rand, nextID *int, ops int) {
	t.Helper()
	for op := 0; op < ops; op++ {
		switch roll := rng.Intn(100); {
		case roll < 35: // ingest a new document
			id := fmt.Sprintf("d%04d", *nextID)
			*nextID++
			d := liveDoc(rng, id, 0)
			if _, err := e.Ingest(d); err != nil {
				t.Fatalf("op %d: ingest %s: %v", op, id, err)
			}
			sh.upsert(d)
		case roll < 55: // update an existing document
			if len(sh.order) == 0 {
				continue
			}
			id := sh.order[rng.Intn(len(sh.order))]
			d := liveDoc(rng, id, 1+rng.Intn(9))
			if _, err := e.Ingest(d); err != nil {
				t.Fatalf("op %d: update %s: %v", op, id, err)
			}
			sh.upsert(d)
		case roll < 72: // delete (sometimes a miss on purpose)
			id := fmt.Sprintf("d%04d", rng.Intn(*nextID+2))
			_, deleted := e.Delete(id)
			if want := sh.remove(id); deleted != want {
				t.Fatalf("op %d: delete %s reported %v, shadow %v", op, id, deleted, want)
			}
		case roll < 88: // flush
			if _, err := e.Flush(); err != nil {
				t.Fatalf("op %d: flush: %v", op, err)
			}
		default: // compact
			if _, err := e.Compact(); err != nil {
				t.Fatalf("op %d: compact: %v", op, err)
			}
		}

		if got, want := e.NumDocs(), len(sh.order); got != want {
			t.Fatalf("op %d: NumDocs = %d, shadow has %d", op, got, want)
		}
		if op%10 == 9 {
			probeMembership(t, e, sh, rng, *nextID)
		}
	}
}

// probeMembership checks a present and an absent document through the
// live search path via their unique tokens.
func probeMembership(t *testing.T, e *Engine, sh *shadowCorpus, rng *rand.Rand, nextID int) {
	t.Helper()
	if len(sh.order) > 0 {
		id := sh.order[rng.Intn(len(sh.order))]
		res := e.Search("uniq"+id, 5)
		found := false
		for _, r := range res {
			if r.DocID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("live doc %s not found via its unique token (got %+v)", id, res)
		}
	}
	// Any ID outside the shadow must be unfindable — deleted or never born.
	for tries := 0; tries < 4; tries++ {
		id := fmt.Sprintf("d%04d", rng.Intn(nextID+4))
		if _, alive := sh.docs[id]; alive {
			continue
		}
		for _, r := range e.Search("uniq"+id, 5) {
			if r.DocID == id {
				t.Fatalf("dead doc %s resurfaced in search results", id)
			}
		}
	}
}

// diffProblem builds a diversification problem from an engine's own
// search output — candidates from the main query, two specialization
// lists — entirely through exported API, so the live and batch engines
// can be compared end to end through core.Diversify.
func diffProblem(e *Engine, query string, k int) *core.Problem {
	results := e.Search(query, 20)
	cands := make([]core.Doc, len(results))
	maxScore := 1.0
	if len(results) > 0 {
		maxScore = results[0].Score
	}
	for i, r := range results {
		cands[i] = core.Doc{
			ID:   r.DocID,
			Rank: r.Rank,
			Rel:  r.Score / maxScore,
			IVec: e.IVectorOfText(r.Snippet),
		}
	}
	specs := make([]core.Specialization, 0, 2)
	for si, sq := range []string{liveVocab[0] + " " + liveVocab[1], liveVocab[2]} {
		sres := e.Search(sq, 10)
		sr := make([]core.SpecResult, len(sres))
		for i, r := range sres {
			sr[i] = core.SpecResult{ID: r.DocID, Rank: r.Rank, IVec: e.IVectorOfText(r.Snippet)}
		}
		specs = append(specs, core.Specialization{Query: sq, Prob: 0.6 - 0.2*float64(si), Results: sr})
	}
	return &core.Problem{
		Query:      query,
		Candidates: cands,
		Specs:      specs,
		K:          k,
		Lambda:     0.15,
		Threshold:  0.30,
		Lex:        e.Lexicon(),
	}
}

func TestLiveMutationDifferentialSweep(t *testing.T) {
	models := []struct {
		name  string
		model ranking.Model
	}{
		{"DPH", ranking.DPH{}},
		{"BM25", ranking.BM25{}},
		{"TFIDF", ranking.TFIDF{}},
		{"LMDirichlet", ranking.LMDirichlet{}},
	}
	queries := []string{
		liveVocab[0], liveVocab[3], liveVocab[7] + " " + liveVocab[12],
		liveVocab[1] + " " + liveVocab[1] + " " + liveVocab[5], "unindexedword",
	}
	for _, m := range models {
		for _, shards := range []int{1, 4} {
			for _, k := range []int{10, 100} {
				t.Run(fmt.Sprintf("%s/shards=%d/k=%d", m.name, shards, k), func(t *testing.T) {
					cfg := Config{Model: m.model, Shards: shards, BlockSize: 4}
					seed := int64(shards*1000 + k)
					rng := rand.New(rand.NewSource(seed))

					sh := newShadow()
					var initial []Document
					nextID := 0
					for i := 0; i < 30; i++ {
						id := fmt.Sprintf("d%04d", nextID)
						nextID++
						d := liveDoc(rng, id, 0)
						initial = append(initial, d)
						sh.upsert(d)
					}
					live, err := Build(initial, cfg)
					if err != nil {
						t.Fatal(err)
					}

					applyLiveOps(t, live, sh, rng, &nextID, 50)

					// Quiesce, then rebuild the reference from the shadow.
					if _, err := live.Compact(); err != nil {
						t.Fatal(err)
					}
					batch, err := Build(sh.list(), cfg)
					if err != nil {
						t.Fatal(err)
					}

					if live.NumDocs() != batch.NumDocs() {
						t.Fatalf("NumDocs: live %d, batch %d", live.NumDocs(), batch.NumDocs())
					}
					for _, q := range queries {
						qTokens := cfg.withDefaults().Analyzer.Tokens(q)

						gotR := ranking.Retrieve(live.Index(), m.model, qTokens, k)
						wantR := ranking.Retrieve(batch.Index(), m.model, qTokens, k)
						if !reflect.DeepEqual(gotR, wantR) {
							t.Fatalf("query %q: Retrieve differs\nlive:  %+v\nbatch: %+v", q, gotR, wantR)
						}

						gotP := ranking.RetrievePruned(live.Index(), m.model, qTokens, k)
						wantP := ranking.RetrievePruned(batch.Index(), m.model, qTokens, k)
						if !reflect.DeepEqual(gotP, wantP) {
							t.Fatalf("query %q: RetrievePruned differs", q)
						}

						gotS, err := ranking.RetrieveShardedOpts(context.Background(), live.Segments(), m.model, qTokens, k, ranking.BatchOptions{Prune: true})
						if err != nil {
							t.Fatal(err)
						}
						wantS, err := ranking.RetrieveShardedOpts(context.Background(), batch.Segments(), m.model, qTokens, k, ranking.BatchOptions{Prune: true})
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(gotS, wantS) {
							t.Fatalf("query %q: sharded retrieval differs", q)
						}

						gotRes := live.Search(q, k)
						wantRes := batch.Search(q, k)
						if !reflect.DeepEqual(gotRes, wantRes) {
							t.Fatalf("query %q: Search differs\nlive:  %+v\nbatch: %+v", q, gotRes, wantRes)
						}
					}

					// Downstream diversification: identical problems (the
					// quiesced dictionaries agree, so interned IDs agree) and
					// identical selections.
					for _, alg := range []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD} {
						gotSel := core.Diversify(alg, diffProblem(live, liveVocab[0], 5))
						wantSel := core.Diversify(alg, diffProblem(batch, liveVocab[0], 5))
						// The problems carry different *Lexicon pointers; compare
						// the selections' value content.
						if !selectedEqual(gotSel, wantSel) {
							t.Fatalf("alg %s: diversified selection differs\nlive:  %+v\nbatch: %+v", alg, gotSel, wantSel)
						}
					}
				})
			}
		}
	}
}

// selectedEqual compares selections by value: IDs, ranks, relevances,
// scores, and interned vectors (IDs and weights).
func selectedEqual(a, b []core.Selected) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Rank != b[i].Rank ||
			a[i].Rel != b[i].Rel || a[i].Score != b[i].Score {
			return false
		}
		if !ivecEqual(a[i].IVec, b[i].IVec) {
			return false
		}
	}
	return true
}

func ivecEqual(a, b textsim.IVector) bool {
	return reflect.DeepEqual(a.IDs, b.IDs) && reflect.DeepEqual(a.Weights, b.Weights) && a.Norm() == b.Norm()
}

// TestLiveUpdateOrderMatchesBatch pins the delete+append ordering: after
// updating and re-ingesting across flush boundaries, internal doc order
// of the quiesced index equals the shadow's last-write order exactly.
func TestLiveUpdateOrderMatchesBatch(t *testing.T) {
	cfg := Config{}
	docs := []Document{
		{ID: "a", Body: "alpha beta"},
		{ID: "b", Body: "gamma delta"},
		{ID: "c", Body: "epsilon zeta"},
	}
	e, err := Build(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest := func(d Document) {
		t.Helper()
		if _, err := e.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	mustIngest(Document{ID: "a", Body: "alpha rewritten"}) // a moves last
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, deleted := e.Delete("b"); !deleted {
		t.Fatal("delete b missed")
	}
	mustIngest(Document{ID: "d", Body: "eta theta"})
	mustIngest(Document{ID: "c", Body: "epsilon rewritten"}) // c moves last
	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}

	idx := e.Index()
	var order []string
	for d := int32(0); d < int32(idx.NumDocs()); d++ {
		order = append(order, idx.DocID(d))
	}
	want := []string{"a", "d", "c"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("quiesced doc order %v, want %v", order, want)
	}
	if e.Snippet("b", "gamma") != "" {
		t.Fatal("deleted doc b still has a snippet")
	}
	if got := e.Snippet("c", "epsilon"); got != "epsilon rewritten" {
		t.Fatalf("snippet of updated c = %q", got)
	}
}
