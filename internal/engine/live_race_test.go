package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestLiveConcurrentSearchMutate runs searches concurrently with ingests,
// deletes, flushes, compactions and their epoch swaps. Run under -race it
// is the data-race detector for the snapshot design; beyond that it
// asserts two consistency properties per result batch:
//
//   - Monotonic epochs: each reader's observed epoch stamp never goes
//     backwards (cur is swapped atomically, never torn).
//   - Delete visibility: once Delete(id) returns at epoch d, no search
//     stamped >= d may return id. (A search stamped earlier may — it ran
//     against an older snapshot, which is the documented semantics.)
func TestLiveConcurrentSearchMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var initial []Document
	for i := 0; i < 40; i++ {
		initial = append(initial, liveDoc(rng, fmt.Sprintf("d%04d", i), 0))
	}
	e, err := Build(initial, Config{Shards: 2, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	// deletedAt maps id -> epoch at which Delete returned true. An entry
	// is stored only AFTER Delete returns (so the bound is sound) and
	// removed BEFORE a re-ingest of the same id (so resurrection does not
	// trip the assertion).
	var deletedAt sync.Map
	stop := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mutator
		defer wg.Done()
		defer close(stop)
		mrng := rand.New(rand.NewSource(11))
		nextID := 40
		for op := 0; op < 400; op++ {
			switch roll := mrng.Intn(100); {
			case roll < 40:
				id := fmt.Sprintf("d%04d", nextID)
				nextID++
				deletedAt.Delete(id)
				if _, err := e.Ingest(liveDoc(mrng, id, 0)); err != nil {
					t.Errorf("ingest %s: %v", id, err)
					return
				}
			case roll < 60:
				id := fmt.Sprintf("d%04d", mrng.Intn(nextID))
				deletedAt.Delete(id)
				if _, err := e.Ingest(liveDoc(mrng, id, 1+mrng.Intn(5))); err != nil {
					t.Errorf("update %s: %v", id, err)
					return
				}
			case roll < 80:
				id := fmt.Sprintf("d%04d", mrng.Intn(nextID))
				if epoch, ok := e.Delete(id); ok {
					deletedAt.Store(id, epoch)
				}
			case roll < 92:
				if _, err := e.Flush(); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
			default:
				if _, err := e.Compact(); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()

	queries := []string{
		liveVocab[0], liveVocab[5], liveVocab[2] + " " + liveVocab[9], liveVocab[17],
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) { // reader
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, epoch, err := e.SearchStamped(context.Background(), queries[(r+i)%len(queries)], 20, nil)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if epoch < lastEpoch {
					t.Errorf("reader %d: epoch went backwards: %d after %d", r, epoch, lastEpoch)
					return
				}
				lastEpoch = epoch
				for _, h := range res {
					if d, ok := deletedAt.Load(h.DocID); ok && epoch >= d.(uint64) {
						t.Errorf("reader %d: doc %s deleted at epoch %d returned by search stamped %d",
							r, h.DocID, d.(uint64), epoch)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	// Quiesce and sanity-check the survivors are still searchable.
	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.NumDocs() == 0 {
		t.Fatal("all documents vanished")
	}
	stats := e.Live()
	if stats.Segments != 1 || stats.MemDocs != 0 || stats.Tombstones != 0 {
		t.Fatalf("not quiesced after final compact: %+v", stats)
	}
	if stats.LiveDocs != e.NumDocs() {
		t.Fatalf("LiveStats.LiveDocs %d != NumDocs %d", stats.LiveDocs, e.NumDocs())
	}
}
