package engine

import (
	"sync"

	"repro/internal/index"
)

// docStore is the raw-body side of a sealed segment: the store snippets
// are extracted from and compaction replays. Two implementations exist —
// an owned map (the batch/ingest path) and a view over an index's
// payload section (the mapped path, where bodies live in the mapped file
// and are served in place).
type docStore interface {
	// Has reports whether the store holds a document with this ID.
	Has(id string) bool
	// Body returns the raw body of the document. For a mapped store the
	// string aliases the mapped region: it is valid only while the
	// backing mapping is retained (a pinned state or live iterator), and
	// anything that outlives the pin must copy it (see Mapped).
	Body(id string) (string, bool)
	// Len returns the number of documents in the store.
	Len() int
	// Mapped reports whether Body strings alias a mapped region and must
	// be cloned before escaping the current state pin.
	Mapped() bool
}

// heapDocs is the owned docID → raw body map every build, load and flush
// produces. Strings are garbage-collected Go heap data; nothing to clone.
type heapDocs map[string]string

func (h heapDocs) Has(id string) bool            { _, ok := h[id]; return ok }
func (h heapDocs) Body(id string) (string, bool) { b, ok := h[id]; return b, ok }
func (h heapDocs) Len() int                      { return len(h) }
func (h heapDocs) Mapped() bool                  { return false }

// mappedDocs serves bodies straight out of an index's payload section —
// the zero-copy document store of an engine opened over an index file.
// The docID → ordinal map is built lazily on the first by-ID access, so
// opening stays O(1) in the corpus and a pure serving workload (which
// looks bodies up by ordinal through the index) never pays for it.
//
// An index without payloads still answers Has (liveness is an index
// property) but serves empty bodies — searches work, snippets are empty.
type mappedDocs struct {
	idx  *index.Index
	once sync.Once
	byID map[string]int32
}

func (m *mappedDocs) ordinal(id string) (int32, bool) {
	m.once.Do(func() {
		m.byID = make(map[string]int32, m.idx.NumDocs())
		for d := int32(0); d < int32(m.idx.NumDocs()); d++ {
			m.byID[m.idx.DocID(d)] = d
		}
	})
	d, ok := m.byID[id]
	return d, ok
}

func (m *mappedDocs) Has(id string) bool { _, ok := m.ordinal(id); return ok }

func (m *mappedDocs) Body(id string) (string, bool) {
	d, ok := m.ordinal(id)
	if !ok {
		return "", false
	}
	p, _ := m.idx.Payload(d) // empty when the file carries no payloads
	return p, true
}

func (m *mappedDocs) Len() int { return m.idx.NumDocs() }

func (m *mappedDocs) Mapped() bool { return m.idx.Mapped() }
