package engine

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/textsim"
)

// shardCorpus is a larger synthetic corpus so shard sweeps get
// non-trivial document ranges.
func shardCorpus(n int) []Document {
	rng := rand.New(rand.NewSource(41))
	vocab := []string{"apple", "leopard", "tank", "mac", "pie", "army", "cat",
		"africa", "recipe", "armor", "desktop", "savanna", "crust", "cannon"}
	docs := make([]Document, n)
	for i := range docs {
		w := make([]string, rng.Intn(30)+5)
		for j := range w {
			w[j] = vocab[rng.Intn(len(vocab))]
		}
		docs[i] = Document{ID: fmt.Sprintf("doc%03d", i), Body: strings.Join(w, " ")}
	}
	return docs
}

// TestSearchShardSweepBitIdentical: the same corpus built at shard counts
// 1/2/4/7 must answer every query with deeply equal results (ranks,
// float64 score bits, snippets).
func TestSearchShardSweepBitIdentical(t *testing.T) {
	docs := shardCorpus(60)
	base, err := Build(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"apple pie recipe", "leopard tank", "savanna cat africa", "apple apple mac", "nosuchterm"}
	for _, shards := range []int{1, 2, 4, 7} {
		e, err := Build(docs, Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if e.Segments().NumShards() != shards {
			t.Fatalf("shards=%d: NumShards = %d", shards, e.Segments().NumShards())
		}
		for _, q := range queries {
			want := base.Search(q, 20)
			got := e.Search(q, 20)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d q=%q:\n got %+v\nwant %+v", shards, q, got, want)
			}
		}
	}
}

// TestSearchBatchMatchesSearch: one scatter-gather round must equal
// per-query Search, including per-query k limits and empty queries.
func TestSearchBatchMatchesSearch(t *testing.T) {
	e, err := Build(shardCorpus(60), Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"apple pie", "leopard tank army", "", "mac desktop", "cat africa savanna"}
	ks := []int{15, 5, 5, 0, 3}
	batch, err := e.SearchBatch(context.Background(), queries, ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := e.Search(q, ks[i])
		if !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("query %d (%q):\n got %+v\nwant %+v", i, q, batch[i], want)
		}
	}
}

func TestSearchCtxCanceled(t *testing.T) {
	e, err := Build(shardCorpus(40), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SearchCtx(ctx, "apple pie", 10); err == nil {
		t.Fatal("canceled context: want error")
	}
}

// TestSaveLoadKeepsShardManifest: the RIDX3 manifest must survive the
// engine round trip, Config.Shards must override it, and search results
// must be bit-identical either way.
func TestSaveLoadKeepsShardManifest(t *testing.T) {
	e, err := Build(shardCorpus(50), Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	loaded, err := Load(bytes.NewReader(stream), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Segments().NumShards() != 4 {
		t.Fatalf("manifest shards = %d, want 4", loaded.Segments().NumShards())
	}
	reshard, err := Load(bytes.NewReader(stream), Config{Shards: 7})
	if err != nil {
		t.Fatal(err)
	}
	if reshard.Segments().NumShards() != 7 {
		t.Fatalf("override shards = %d, want 7", reshard.Segments().NumShards())
	}
	for _, q := range []string{"apple pie", "leopard tank", "savanna"} {
		want := e.Search(q, 10)
		if got := loaded.Search(q, 10); !reflect.DeepEqual(got, want) {
			t.Errorf("loaded engine differs on %q", q)
		}
		if got := reshard.Search(q, 10); !reflect.DeepEqual(got, want) {
			t.Errorf("resharded engine differs on %q", q)
		}
	}
}

// TestSliceIDFMatchesMapIDF is the differential for the DocFreqs
// replacement: the ID-indexed IDF table must reweight vectors with the
// same float64 bits as the deprecated map path, including overflow
// (out-of-collection) terms falling back to weight 1.
func TestSliceIDFMatchesMapIDF(t *testing.T) {
	e := buildEngine(t)
	idx := e.Index()
	legacy := textsim.ComputeIDF(idx.DocFreqs(), idx.NumDocs())
	texts := []string{
		"apple pie with cinnamon sugar crust",
		"leopard tank armor cannon",
		"completely unindexed surprising zebra words",
		"apple apple apple leopard",
		"",
	}
	for _, s := range texts {
		toks := e.cfg.Analyzer.Tokens(s)
		want := legacy.Apply(textsim.FromTokens(toks))
		got := e.cur.Load().idf.Apply(textsim.FromTokens(toks))
		if !reflect.DeepEqual(got.Terms, want.Terms) {
			t.Fatalf("%q: terms %v, want %v", s, got.Terms, want.Terms)
		}
		for i := range want.Weights {
			if got.Weights[i] != want.Weights[i] {
				t.Fatalf("%q term %q: weight %v, want %v", s, want.Terms[i], got.Weights[i], want.Weights[i])
			}
		}
		if got.Norm() != want.Norm() {
			t.Fatalf("%q: norm %v, want %v", s, got.Norm(), want.Norm())
		}
	}
}

// TestPruningBitIdenticalAndPersisted covers the engine-level MaxScore
// contract: pruned and exhaustive engines answer identically at every
// shard count, the max-score tables survive a save/load round trip, and
// a stream written without tables gets them rebuilt at load time.
func TestPruningBitIdenticalAndPersisted(t *testing.T) {
	docs := shardCorpus(80)
	exhaustive, err := Build(docs, Config{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive.PruningEnabled() {
		t.Fatal("DisablePruning engine reports pruning enabled")
	}
	if keys := exhaustive.Index().MaxScoreKeys(); len(keys) != 0 {
		t.Fatalf("DisablePruning build computed tables %v", keys)
	}
	queries := []string{"apple pie recipe", "leopard tank", "apple apple mac", "nosuchterm"}
	for _, shards := range []int{1, 2, 4, 7} {
		pruning, err := Build(docs, Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if !pruning.PruningEnabled() {
			t.Fatalf("shards=%d: pruning not enabled for the default DPH engine", shards)
		}
		for _, q := range queries {
			want := exhaustive.Search(q, 20)
			got := pruning.Search(q, 20)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d q=%q:\n got %+v\nwant %+v", shards, q, got, want)
			}
		}
	}

	// Save/load keeps the tables (no rebuild needed) and the answers.
	built, err := Build(docs, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.PruningEnabled() {
		t.Fatal("loaded engine lost pruning")
	}
	if !reflect.DeepEqual(loaded.Index().MaxScoreKeys(), built.Index().MaxScoreKeys()) {
		t.Fatalf("table keys did not round-trip: %v vs %v",
			loaded.Index().MaxScoreKeys(), built.Index().MaxScoreKeys())
	}
	for _, q := range queries {
		if !reflect.DeepEqual(loaded.Search(q, 20), built.Search(q, 20)) {
			t.Fatalf("loaded engine diverged on %q", q)
		}
	}

	// A tableless stream (written by a DisablePruning build — the same
	// shape as a pre-v4 stream) rebuilds its tables on load.
	var bare bytes.Buffer
	if err := exhaustive.SaveTo(&bare); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := Load(&bare, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.PruningEnabled() {
		t.Fatal("load did not rebuild the missing max-score tables")
	}
	for _, q := range queries {
		if !reflect.DeepEqual(rebuilt.Search(q, 20), exhaustive.Search(q, 20)) {
			t.Fatalf("rebuilt-table engine diverged on %q", q)
		}
	}
}
