package engine

import (
	"math"
	"strings"

	"repro/internal/index"
)

// Live mutation API: the LSM-style segment lifecycle.
//
//	Ingest/Delete → memtable (+ tombstones)      epoch++, O(1) swap
//	Flush         → seal memtable into a segment epoch++, swap
//	Compact       → fold everything into one fresh base segment
//
// Mutators run under e.mu, build the next state, and publish it with one
// atomic store; searches load the pointer once and never block. Liveness
// is structural: the newest copy of a document ID wins (memtable over
// segments, newer segments over older), and the dead set holds only fully
// deleted IDs. The shadowed counter tracks how many sealed copies lost
// that race — the exact over-fetch searches need to keep top-k exact.
//
// The memtable is intentionally SHARED between consecutive states of one
// flush interval: an Ingest is visible to a search that loaded the
// pointer just before it (a bounded read-ahead — the search still stamps
// the older epoch). Deletes never read ahead: a document deleted at epoch
// d is filtered through the state's dead set or memtable view, both owned
// by states with epoch >= d, so a search stamped s < d may return it and
// a search stamped s >= d cannot — the invariant the race tests pin down.

// LiveStats is a point-in-time snapshot of the segment lifecycle, as
// surfaced by the serving layer's /stats.
type LiveStats struct {
	Epoch       uint64 `json:"epoch"`
	Segments    int    `json:"segments"`
	MemDocs     int    `json:"mem_docs"`
	Tombstones  int    `json:"tombstones"`
	Shadowed    int    `json:"shadowed"`
	LiveDocs    int    `json:"live_docs"`
	Flushes     uint64 `json:"flushes"`
	Compactions uint64 `json:"compactions"`
}

// Live returns the current lifecycle snapshot.
func (e *Engine) Live() LiveStats {
	st := e.cur.Load()
	return LiveStats{
		Epoch:       st.epoch,
		Segments:    len(st.segs),
		MemDocs:     st.mem.Len(),
		Tombstones:  len(st.dead),
		Shadowed:    st.shadowed,
		LiveDocs:    st.live,
		Flushes:     e.flushes.Load(),
		Compactions: e.compactions.Load(),
	}
}

// Epoch returns the current state's epoch: bumped by every successful
// mutation, constant across searches.
func (e *Engine) Epoch() uint64 { return e.cur.Load().epoch }

// memCap returns the auto-flush threshold.
func (e *Engine) memCap() int {
	switch {
	case e.cfg.MemtableCap > 0:
		return e.cfg.MemtableCap
	case e.cfg.MemtableCap < 0:
		return math.MaxInt
	}
	return 1024
}

// Ingest adds or replaces one document in the live index and returns the
// epoch at which it became visible. A replaced version — buffered or
// sealed — is superseded immediately; a tombstone on the ID is cleared.
// When the memtable reaches MemtableCap the ingest triggers a flush; a
// flush (persistence) failure leaves the document searchable in the
// memtable and returns the error.
func (e *Engine) Ingest(doc Document) (uint64, error) {
	full := doc.Title + " " + doc.Body
	toks := e.cfg.Analyzer.Tokens(full)
	payload := strings.TrimSpace(full)

	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.cur.Load()
	ns := st.clone()
	memHad := ns.mem.Has(doc.ID)
	_, sealed := ns.sealedHas(doc.ID)
	wasLive := memHad || (sealed && !ns.dead[doc.ID])
	if sealed && !ns.dead[doc.ID] && !memHad {
		// The newest sealed copy was the live version; it is superseded
		// from this epoch on. (If memHad, it was superseded already; if
		// dead, it was already counted when the delete landed.)
		ns.shadowed++
	}
	delete(ns.dead, doc.ID)
	ns.mem.Add(index.MemDoc{ID: doc.ID, Tokens: toks, Payload: payload})
	if !wasLive {
		ns.live++
	}
	ns.epoch = st.epoch + 1
	e.cur.Store(ns)
	st.unpin()
	if ns.mem.Len() >= e.memCap() {
		if err := e.flushLocked(); err != nil {
			return ns.epoch, err
		}
	}
	return e.cur.Load().epoch, nil
}

// Delete removes the live version of a document. It reports whether one
// existed and the epoch of the removal (the current epoch on a miss).
func (e *Engine) Delete(id string) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.cur.Load()
	memHad := st.mem.Has(id)
	_, sealed := st.sealedHas(id)
	if !memHad && (!sealed || st.dead[id]) {
		return st.epoch, false
	}
	ns := st.clone()
	if memHad {
		ns.mem.Delete(id)
		if sealed {
			// The sealed copy was superseded by the buffered one (already
			// in shadowed); now the whole ID is dead.
			ns.dead[id] = true
		}
	} else {
		ns.dead[id] = true
		ns.shadowed++
	}
	ns.live--
	ns.epoch = st.epoch + 1
	e.cur.Store(ns)
	st.unpin()
	return ns.epoch, true
}

// Flush seals the memtable into an immutable single-shard segment with
// the same posting layout and max-score tables a batch build would give
// it, appends it to the segment list, and swaps in the new state (after
// persisting it when a WAL is configured). With an empty memtable there is
// nothing to seal, but a not-yet-durable epoch (a delete-only interval) is
// still persisted. Returns the resulting epoch.
func (e *Engine) Flush() (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.flushLocked()
	return e.cur.Load().epoch, err
}

func (e *Engine) flushLocked() error {
	st := e.cur.Load()
	docs := st.mem.LiveDocs()
	if len(docs) == 0 {
		// Nothing to seal — but the current epoch may still owe the WAL a
		// write: a delete-only interval changes the tombstone set without
		// touching the memtable, and "flush" promises durability for it.
		if e.cfg.WALDir != "" && st.epoch > e.durable {
			return e.persistLocked(st)
		}
		return nil
	}
	b := index.NewBuilder()
	b.SetBlockSize(e.cfg.blockLayout())
	raw := make(map[string]string, len(docs))
	for _, d := range docs {
		if err := b.Add(d.ID, d.Tokens); err != nil {
			return err // unreachable: memtable live IDs are unique
		}
		raw[d.ID] = d.Payload
	}
	seg := b.BuildSegmented(1)
	installTables(e.cfg, seg.Index())
	ns := st.clone()
	ns.segs = append(append(make([]*segment, 0, len(st.segs)+1), st.segs...), &segment{seg: seg, docs: heapDocs(raw)})
	ns.mem = index.NewMemtable(e.cfg.blockLayout())
	ns.epoch = st.epoch + 1
	// Counters carry over: every buffered doc became a sealed doc in the
	// newest segment, preserving exactly the supersession relationships
	// (and the dead set is disjoint from the memtable by invariant).
	if err := e.persistLocked(ns); err != nil {
		ns.unpin() // discard the unpublished state
		return err // no swap: the memtable stays searchable and mutable
	}
	e.cur.Store(ns)
	st.unpin()
	e.flushes.Add(1)
	return nil
}

// Compact folds the sealed segments, tombstones and memtable into one
// freshly built base segment — the batch-built shape: re-analyzed raw
// bodies, re-blocked postings, recomputed max-score tables, a fresh
// lexicon and IDF table, no tombstones, empty memtable. Replay order is
// segments oldest-first (skipping dead and superseded copies) then the
// memtable, i.e. every surviving document ordered by its last write —
// exactly the order a batch Build over the surviving corpus uses, which
// is what makes a quiesced live index bit-identical to one. Returns the
// resulting epoch; a quiet state is a no-op.
func (e *Engine) Compact() (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.cur.Load()
	mv := st.mem.View()
	if st.quiet(mv) && len(st.dead) == 0 {
		return st.epoch, nil
	}
	b := index.NewBuilder()
	b.SetBlockSize(e.cfg.blockLayout())
	raw := make(map[string]string, st.live)
	for si, sg := range st.segs {
		idx := sg.seg.Index()
		// Body replay is one sequential pass over the segment in docID
		// order: hint readahead for the scan and restore the serving
		// pattern after (the segment keeps answering searches until the
		// swap below lands).
		e.advise(idx, index.AdviseSequential)
		for d := int32(0); d < int32(idx.NumDocs()); d++ {
			id := idx.DocID(d)
			if !st.sealedLive(si, id, mv) {
				continue
			}
			body, _ := sg.docs.Body(id)
			if sg.docs.Mapped() {
				// The compacted state outlives the mapped segment it
				// replaces (the swap below unmaps it once readers drain),
				// so bodies must move onto the heap.
				body = strings.Clone(body)
			}
			if err := b.Add(id, e.cfg.Analyzer.Tokens(body)); err != nil {
				e.advise(idx, index.AdviseRandom)
				return st.epoch, err
			}
			raw[id] = body
		}
		e.advise(idx, index.AdviseRandom)
	}
	for _, d := range st.mem.LiveDocs() {
		if err := b.Add(d.ID, d.Tokens); err != nil {
			return st.epoch, err
		}
		raw[d.ID] = d.Payload
	}
	shards := e.cfg.Shards
	if shards < 1 {
		shards = 1
	}
	ns := freshState(e.cfg, b.BuildSegmented(shards), heapDocs(raw), st.epoch+1)
	if err := e.persistLocked(ns); err != nil {
		return st.epoch, err
	}
	e.cur.Store(ns)
	st.unpin()
	e.compactions.Add(1)
	return ns.epoch, nil
}
