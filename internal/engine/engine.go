// Package engine assembles the search-engine substrate: it indexes a
// corpus through the text analysis chain, retrieves ranked result lists
// under a pluggable weighting model (DPH by default, as in §5), and
// produces the query-biased snippets that serve as document surrogates —
// "actually only short summaries, and not whole documents, can be used
// without significative loss in the precision of our method" (§4.1). It
// also implements the surrogate store whose memory footprint §4.1
// estimates as N·|S_q̂|·|R_q̂′|·L bytes.
package engine

import (
	"context"
	"strings"

	"repro/internal/index"
	"repro/internal/ranking"
	"repro/internal/text"
	"repro/internal/textsim"
)

// Document is one raw corpus document.
type Document struct {
	ID    string
	Title string
	Body  string
}

// Result is one retrieved document with its display snippet.
type Result struct {
	DocID   string
	Rank    int // 1-based
	Score   float64
	Snippet string
}

// Config tunes engine construction.
type Config struct {
	// Model is the weighting model; nil means DPH (the paper's baseline).
	Model ranking.Model
	// Analyzer is the analysis chain; nil means stopwords + Porter.
	Analyzer *text.Analyzer
	// SnippetWindow is the surrogate length in raw tokens. 0 means 30.
	SnippetWindow int
	// Shards is the number of index segments retrieval fans out over.
	// 0 means 1 at build time; at Load time 0 keeps the partition the
	// stream's shard manifest records. Results are bit-identical at any
	// shard count — only parallelism changes.
	Shards int
	// DisablePruning forces the exhaustive scoring path. By default the
	// engine retrieves with MaxScore dynamic pruning whenever the model
	// is ranking.Boundable: per-term score upper bounds are computed at
	// build time (or read back from a v4+ index stream, or rebuilt when
	// loading an older one) and top-k evaluation skips postings that
	// provably cannot enter the result. Over the block-compressed layout
	// the bounds extend to block granularity (Block-Max MaxScore) and
	// whole blocks go undecoded. Results are bit-identical either way —
	// the toggle exists for benchmarking and as an escape hatch.
	// Disabling it also skips computing/persisting the max-score tables
	// for fresh builds.
	DisablePruning bool
	// BlockSize tunes the block-compressed posting layout: the number of
	// postings per block. 0 keeps the default (index.DefaultBlockSize at
	// build time; at Load time, whatever layout the stream records).
	// Ignored when DisableCompression is set. Results are bit-identical
	// at any block size — only memory footprint and skip granularity
	// change.
	BlockSize int
	// DisableCompression stores postings as flat 8-byte structs instead
	// of delta-varint blocks: ~3-4x the posting memory, no block-max
	// skipping, identical results. The escape hatch for profiling the
	// layouts against each other.
	DisableCompression bool
}

// blockLayout maps the config onto the index package's block-size
// convention (> 0 capacity, 0 default, < 0 flat).
func (c Config) blockLayout() int {
	if c.DisableCompression {
		return -1
	}
	return c.BlockSize
}

func (c Config) withDefaults() Config {
	if c.Model == nil {
		c.Model = ranking.DPH{}
	}
	if c.Analyzer == nil {
		c.Analyzer = text.NewAnalyzer()
	}
	if c.SnippetWindow == 0 {
		c.SnippetWindow = 30
	}
	return c
}

// Engine is an immutable built search engine.
type Engine struct {
	cfg Config
	// seg owns the index as a set of contiguous document segments; every
	// retrieval is a fan-out over its shards (one shard degenerates to
	// the sequential path). The physical index is shared across shards,
	// so statistics — and therefore scores — stay collection-global.
	seg     *index.Segmented
	rawBody map[string]string // docID → raw body (for snippets)
	idf     textsim.SliceIDF
	// lex interns surrogate terms for the similarity hot paths. Its
	// sorted base is the index dictionary (lexicographic by the Build
	// invariant), so every term of every indexed document — hence every
	// snippet term — gets an ID whose order equals string order, keeping
	// interned cosines bit-identical to the string path. Terms of
	// out-of-collection text land in the dynamic overflow region.
	lex *textsim.Lexicon
}

// Build analyzes and indexes the corpus. Duplicate document IDs are an
// error (propagated from the index builder).
func Build(docs []Document, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	b := index.NewBuilder()
	b.SetBlockSize(cfg.blockLayout())
	raw := make(map[string]string, len(docs))
	for _, d := range docs {
		full := d.Title + " " + d.Body
		if err := b.Add(d.ID, cfg.Analyzer.Tokens(full)); err != nil {
			return nil, err
		}
		raw[d.ID] = strings.TrimSpace(full)
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	seg := b.BuildSegmented(shards)
	return newEngine(cfg, seg, raw), nil
}

// newEngine assembles an Engine around a segmented index and its raw
// document store — shared by Build and Load. The lexicon wraps the index
// dictionary (sorted by the Build invariant), and the IDF table is the
// ID-indexed walk of the same dictionary. Max-score tables for the
// registered boundable models plus the configured one are installed
// here, while the index is still privately owned: fresh builds compute
// them, v4 streams arrive with them, and older streams get them rebuilt
// — so pruning works identically whichever way the engine came to be.
func newEngine(cfg Config, seg *index.Segmented, raw map[string]string) *Engine {
	idx := seg.Index()
	if !cfg.DisablePruning {
		models := append(ranking.PrecomputableModels(), cfg.Model)
		if err := ranking.InstallMaxScores(idx, models...); err != nil {
			// Only reachable through a table/dictionary size mismatch,
			// which InstallMaxScores cannot produce from its own
			// ComputeMaxScores output.
			panic(err)
		}
	}
	lex := textsim.WrapSortedTerms(idx.Terms())
	return &Engine{
		cfg:     cfg,
		seg:     seg,
		rawBody: raw,
		idf:     textsim.ComputeIDFFromIndex(idx, lex),
		lex:     lex,
	}
}

// Index exposes the underlying inverted index (read-only use).
func (e *Engine) Index() *index.Index { return e.seg.Index() }

// Segments exposes the index's shard partition (read-only use): the
// serving layer reports it in /stats, and benchmarks resegment it to
// sweep shard counts.
func (e *Engine) Segments() *index.Segmented { return e.seg }

// Model returns the engine's weighting model.
func (e *Engine) Model() ranking.Model { return e.cfg.Model }

// PruningEnabled reports whether retrieval runs with MaxScore dynamic
// pruning: the config allows it and the index carries the model's
// max-score table. The serving layer surfaces this in /stats.
func (e *Engine) PruningEnabled() bool {
	return !e.cfg.DisablePruning && ranking.Pruneable(e.seg.Index(), e.cfg.Model)
}

// batchOpts returns the retrieval options every search path shares.
func (e *Engine) batchOpts() ranking.BatchOptions {
	return ranking.BatchOptions{Prune: !e.cfg.DisablePruning}
}

// NumDocs returns the collection size.
func (e *Engine) NumDocs() int { return e.seg.Index().NumDocs() }

// Search retrieves the top-k documents for the raw query and attaches
// query-biased snippets. k <= 0 retrieves all matches.
func (e *Engine) Search(query string, k int) []Result {
	out, _ := e.SearchCtx(context.Background(), query, k) // cannot fail: Background never cancels
	return out
}

// SearchCtx is Search with request-scoped cancellation: the retrieval
// fan-out checks ctx between posting-list traversals, so a shed or
// disconnected request stops consuming shard workers instead of running
// to completion. The only possible error is ctx.Err().
func (e *Engine) SearchCtx(ctx context.Context, query string, k int) ([]Result, error) {
	qTokens := e.cfg.Analyzer.Tokens(query)
	hits, err := ranking.RetrieveShardedOpts(ctx, e.seg, e.cfg.Model, qTokens, k, e.batchOpts())
	if err != nil {
		return nil, err
	}
	return e.resultsFor(hits, qTokens), nil
}

// SearchBatch answers a batch of queries in ONE scatter-gather round over
// the index segments: each shard is traversed by a single worker that
// scores every pending query per pass (see ranking.RetrieveBatch). ks[i]
// bounds query i's result size. Per-query output is bit-identical to
// Search(queries[i], ks[i]) — the serving pipeline batches the main query
// with all its specialization retrievals through here.
func (e *Engine) SearchBatch(ctx context.Context, queries []string, ks []int) ([][]Result, error) {
	qTokens := make([][]string, len(queries))
	for i, q := range queries {
		qTokens[i] = e.cfg.Analyzer.Tokens(q)
	}
	hitLists, err := ranking.RetrieveBatchOpts(ctx, e.seg, e.cfg.Model, qTokens, ks, e.batchOpts())
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(queries))
	for i, hits := range hitLists {
		out[i] = e.resultsFor(hits, qTokens[i])
	}
	return out, nil
}

// resultsFor attaches query-biased snippets to retrieval hits.
func (e *Engine) resultsFor(hits []ranking.Hit, qTokens []string) []Result {
	out := make([]Result, len(hits))
	for i, h := range hits {
		out[i] = Result{
			DocID:   h.DocID,
			Rank:    h.Rank,
			Score:   h.Score,
			Snippet: e.snippetFor(h.DocID, qTokens),
		}
	}
	return out
}

// Snippet returns the query-biased snippet of a document: the
// SnippetWindow-token window of the raw text containing the most query
// term matches (earliest such window on ties). An unknown document yields
// the empty string; a document with no match yields its leading window.
func (e *Engine) Snippet(docID, query string) string {
	return e.snippetFor(docID, e.cfg.Analyzer.Tokens(query))
}

func (e *Engine) snippetFor(docID string, qTokens []string) string {
	body, ok := e.rawBody[docID]
	if !ok {
		return ""
	}
	raw := strings.Fields(body)
	if len(raw) == 0 {
		return ""
	}
	w := e.cfg.SnippetWindow
	if len(raw) <= w {
		return strings.Join(raw, " ")
	}
	qset := make(map[string]bool, len(qTokens))
	for _, t := range qTokens {
		qset[t] = true
	}
	// match[i] = 1 when raw token i analyzes to a query term.
	match := make([]int, len(raw))
	for i, tok := range raw {
		ts := e.cfg.Analyzer.Tokens(tok)
		for _, t := range ts {
			if qset[t] {
				match[i] = 1
				break
			}
		}
	}
	// Sliding window of width w maximizing matches.
	cur := 0
	for i := 0; i < w; i++ {
		cur += match[i]
	}
	best, bestAt := cur, 0
	for i := w; i < len(raw); i++ {
		cur += match[i] - match[i-w]
		if cur > best {
			best = cur
			bestAt = i - w + 1
		}
	}
	return strings.Join(raw[bestAt:bestAt+w], " ")
}

// SurrogateVector returns the IDF-weighted term vector of the document's
// query-biased snippet: the representation the paper's utility function
// operates on.
func (e *Engine) SurrogateVector(docID, query string) textsim.Vector {
	snip := e.Snippet(docID, query)
	return e.VectorOfText(snip)
}

// VectorOfText analyzes arbitrary text and returns its IDF-weighted vector
// under the engine's collection statistics.
func (e *Engine) VectorOfText(s string) textsim.Vector {
	return e.idf.Apply(textsim.FromTokens(e.cfg.Analyzer.Tokens(s)))
}

// Lexicon returns the engine's term lexicon — the interning dictionary
// every IVectorOfText result is expressed in. Problems built from this
// engine's vectors must carry it as their Problem.Lex.
func (e *Engine) Lexicon() *textsim.Lexicon { return e.lex }

// IVectorOfText is VectorOfText in interned form: the representation the
// scoring hot paths consume. Equivalent to interning VectorOfText(s)
// under Lexicon(), weights and norm bit-identical.
func (e *Engine) IVectorOfText(s string) textsim.IVector {
	return textsim.Intern(e.lex, e.VectorOfText(s))
}
