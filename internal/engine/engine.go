// Package engine assembles the search-engine substrate: it indexes a
// corpus through the text analysis chain, retrieves ranked result lists
// under a pluggable weighting model (DPH by default, as in §5), and
// produces the query-biased snippets that serve as document surrogates —
// "actually only short summaries, and not whole documents, can be used
// without significative loss in the precision of our method" (§4.1). It
// also implements the surrogate store whose memory footprint §4.1
// estimates as N·|S_q̂|·|R_q̂′|·L bytes.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/ranking"
	"repro/internal/text"
	"repro/internal/textsim"
)

// Document is one raw corpus document.
type Document struct {
	ID    string
	Title string
	Body  string
}

// Result is one retrieved document with its display snippet.
type Result struct {
	DocID   string
	Rank    int // 1-based
	Score   float64
	Snippet string
}

// Config tunes engine construction.
type Config struct {
	// Model is the weighting model; nil means DPH (the paper's baseline).
	Model ranking.Model
	// Analyzer is the analysis chain; nil means stopwords + Porter.
	Analyzer *text.Analyzer
	// SnippetWindow is the surrogate length in raw tokens. 0 means 30.
	SnippetWindow int
	// Shards is the number of index segments retrieval fans out over.
	// 0 means 1 at build time; at Load time 0 keeps the partition the
	// stream's shard manifest records. Results are bit-identical at any
	// shard count — only parallelism changes.
	Shards int
	// DisablePruning forces the exhaustive scoring path. By default the
	// engine retrieves with MaxScore dynamic pruning whenever the model
	// is ranking.Boundable: per-term score upper bounds are computed at
	// build time (or read back from a v4+ index stream, or rebuilt when
	// loading an older one) and top-k evaluation skips postings that
	// provably cannot enter the result. Over the block-compressed layout
	// the bounds extend to block granularity (Block-Max MaxScore) and
	// whole blocks go undecoded. Results are bit-identical either way —
	// the toggle exists for benchmarking and as an escape hatch.
	// Disabling it also skips computing/persisting the max-score tables
	// for fresh builds.
	DisablePruning bool
	// BlockSize tunes the block-compressed posting layout: the number of
	// postings per block. 0 keeps the default (index.DefaultBlockSize at
	// build time; at Load time, whatever layout the stream records).
	// Ignored when DisableCompression is set. Results are bit-identical
	// at any block size — only memory footprint and skip granularity
	// change.
	BlockSize int
	// DisableCompression stores postings as flat 8-byte structs instead
	// of delta-varint blocks: ~3-4x the posting memory, no block-max
	// skipping, identical results. The escape hatch for profiling the
	// layouts against each other.
	DisableCompression bool
	// MemtableCap bounds the in-memory write buffer: once Ingest has
	// buffered this many live documents the memtable is flushed into an
	// immutable segment automatically. 0 means 1024; negative disables
	// auto-flush (explicit Flush/Compact only).
	MemtableCap int
	// Mmap makes OpenIndexFile serve RIDX7 index files in place from a
	// read-only file mapping instead of decoding them onto the heap:
	// instant startup (no posting decode, no copy of the block region)
	// and page-cache-shared memory across processes serving the same
	// file. Ignored by Build/Load (they own their heap state).
	Mmap bool
	// DisableMadvise turns off the access-pattern hints (madvise) the
	// engine issues for mapped index regions: MADV_RANDOM while serving
	// (posting blocks are reached by block-max skipping, so readahead is
	// wasted I/O) and MADV_SEQUENTIAL bracketing the one-pass scans —
	// compaction body replay and mapped export. Hints are advisory,
	// errors are ignored, and on heap-backed indexes or platforms
	// without madvise they are no-ops either way; the toggle exists for
	// benchmarking and as an escape hatch (serve -madvise=false).
	DisableMadvise bool
	// WALDir, when non-empty, makes flushes and compactions durable: each
	// sealed epoch is persisted to an engine stream in this directory
	// (written to a temp file, fsynced, atomically renamed) BEFORE the
	// in-memory swap, and Build/Load recover the newest parseable epoch on
	// startup. Ingest/Delete epochs between seals are not persisted — a
	// crash rolls the buffered tail back to the last sealed epoch.
	WALDir string
}

// blockLayout maps the config onto the index package's block-size
// convention (> 0 capacity, 0 default, < 0 flat).
func (c Config) blockLayout() int {
	if c.DisableCompression {
		return -1
	}
	return c.BlockSize
}

func (c Config) withDefaults() Config {
	if c.Model == nil {
		c.Model = ranking.DPH{}
	}
	if c.Analyzer == nil {
		c.Analyzer = text.NewAnalyzer()
	}
	if c.SnippetWindow == 0 {
		c.SnippetWindow = 30
	}
	return c
}

// Engine is a search engine over an LSM-style segment lifecycle: an
// immutable base state built (or loaded) up front, a mutable in-memory
// write buffer fed by Ingest/Delete, flushes that seal the buffer into
// immutable segments, and compactions that fold everything back into one
// freshly built base. Searches never block on mutations — they load the
// current state once (an atomic pointer) and run entirely against that
// snapshot, while mutators build the next state and publish it with a
// single atomic swap.
type Engine struct {
	cfg Config
	// mu serializes mutations (Ingest/Delete/Flush/Compact). Searches
	// never take it.
	mu  sync.Mutex
	cur atomic.Pointer[state]

	// durable is the newest epoch sealed into the WAL (guarded by mu;
	// meaningful only when cfg.WALDir is set). Flush consults it so a
	// delete-only interval — empty memtable, fresh tombstones — still
	// reaches disk.
	durable uint64

	// closed latches Close: the current state's reference has been
	// dropped and no further searches may start.
	closed atomic.Bool

	flushes     atomic.Uint64
	compactions atomic.Uint64
}

// segment is one immutable sealed segment: its index plus the raw bodies
// of its documents (for snippet extraction and compaction replay).
type segment struct {
	// seg owns the segment's index as a set of contiguous document
	// shards; retrieval fans out over them (one shard degenerates to the
	// sequential path). The physical index is shared across shards, so
	// statistics — and therefore scores — stay collection-global within
	// the segment.
	seg *index.Segmented
	// docs serves raw bodies by docID — an owned map for built/loaded
	// segments, a payload view for mapped ones (see docStore).
	docs docStore
}

// state is one consistent snapshot of the engine: the sealed segments
// (oldest first), the delete set, and the live write buffer. A document's
// LIVE version is its newest copy: the memtable's if buffered there,
// otherwise the newest segment's — and only if its ID is not in dead.
// Older copies are superseded structurally (a newer source holds the ID);
// dead holds only fully deleted IDs, so re-ingesting clears the tombstone.
type state struct {
	// stateData is embedded, not inlined, so clone can copy the logical
	// snapshot wholesale WITHOUT touching refs: a plain struct copy of
	// the whole state would read refs non-atomically while a concurrent
	// search's pin CASes it — a data race (mixed atomic/non-atomic
	// access to one word), even though the copied value is discarded.
	stateData
	// refs counts holders of this state: 1 for being the engine's
	// current state, plus 1 per in-flight pinned search. Each state also
	// holds one reference on every mapped segment index it contains
	// (taken at construction/clone); the last unpin releases them, so an
	// epoch swap retiring a mapped segment never unmaps under a reader.
	refs int32
}

// stateData is the logical snapshot content — everything immutable once
// the state is published, safe to copy with a struct assignment.
type stateData struct {
	epoch uint64
	segs  []*segment
	// dead is the tombstone set: IDs whose sealed copies are all deleted.
	// Invariant: no ID in dead is live in the memtable.
	dead map[string]bool
	mem  *index.Memtable
	// shadowed counts sealed document copies that are dead or superseded
	// — exactly the hits a search may have to filter, so retrieving
	// k+shadowed per source keeps top-k exact.
	shadowed int
	live     int // live documents across segments and memtable
	idf      textsim.SliceIDF
	// lex interns surrogate terms for the similarity hot paths. Its
	// sorted base is the base segment's dictionary (lexicographic by the
	// Build invariant), so every term of every base document — hence
	// every snippet term — gets an ID whose order equals string order,
	// keeping interned cosines bit-identical to the string path. Terms
	// of out-of-collection text (including memtable-only terms) land in
	// the dynamic overflow region.
	lex *textsim.Lexicon
}

// pin takes a read reference on the state. It fails once refs hit zero —
// the state was retired and its mapped segments may already be unmapped —
// in which case the caller must reload the current state and retry.
func (st *state) pin() bool {
	for {
		r := atomic.LoadInt32(&st.refs)
		if r <= 0 {
			return false
		}
		if atomic.CompareAndSwapInt32(&st.refs, r, r+1) {
			return true
		}
	}
}

// unpin drops a reference; the last one releases the state's hold on its
// mapped segments (the matching Retain was taken at construction).
func (st *state) unpin() {
	if atomic.AddInt32(&st.refs, -1) != 0 {
		return
	}
	for _, sg := range st.segs {
		sg.seg.Index().Release()
	}
}

// retainMapped takes this state's reference on every mapped segment it
// holds (no-ops for heap segments). Called once per state, at
// construction — the matching Release runs at the final unpin.
func (st *state) retainMapped() {
	for _, sg := range st.segs {
		sg.seg.Index().Retain()
	}
}

// snapshot loads and pins the current state. Searches run entirely
// against the returned snapshot and must unpin it when done. The retry
// loop covers the race where a mutator retires the loaded state between
// Load and pin; if the engine is Closed the drained state is returned
// unpinned (searching a closed engine is a documented bug — this only
// keeps the failure mode tame).
func (e *Engine) snapshot() *state {
	for {
		st := e.cur.Load()
		if st.pin() {
			return st
		}
		if e.cur.Load() == st {
			return st
		}
	}
}

// clone returns a mutable copy of the state sharing the immutable pieces:
// the segments slice (copied before append), the memtable pointer (the
// shared live tail between flushes), and the lexicon/IDF of the base
// segment. The dead set is deep-copied. Only stateData is copied — refs
// belongs to the old state's readers and is CASed concurrently.
func (st *state) clone() *state {
	ns := &state{stateData: st.stateData, refs: 1}
	ns.dead = make(map[string]bool, len(st.dead))
	for k, v := range st.dead {
		ns.dead[k] = v
	}
	ns.retainMapped()
	return ns
}

// sealedHas returns the newest segment holding a copy of id.
func (st *state) sealedHas(id string) (int, bool) {
	for j := len(st.segs) - 1; j >= 0; j-- {
		if st.segs[j].docs.Has(id) {
			return j, true
		}
	}
	return 0, false
}

// sealedLive reports whether segment si's copy of id is the live version:
// not deleted, and not superseded by a newer segment or the memtable view.
func (st *state) sealedLive(si int, id string, mv *index.MemView) bool {
	if st.dead[id] || mv.Has(id) {
		return false
	}
	for j := si + 1; j < len(st.segs); j++ {
		if st.segs[j].docs.Has(id) {
			return false
		}
	}
	return true
}

// isLive reports whether any live version of id exists in the snapshot.
func (st *state) isLive(id string, mv *index.MemView) bool {
	if mv.Has(id) {
		return true
	}
	_, ok := st.sealedHas(id)
	return ok && !st.dead[id]
}

// body returns the raw body of id's newest copy, plus whether that body
// aliases a mapped region (and so must be cloned before escaping the
// caller's state pin).
func (st *state) body(id string, mv *index.MemView) (body string, mapped, ok bool) {
	if p, ok := mv.Payload(id); ok {
		return p, false, true
	}
	for j := len(st.segs) - 1; j >= 0; j-- {
		if p, ok := st.segs[j].docs.Body(id); ok {
			return p, st.segs[j].docs.Mapped(), true
		}
	}
	return "", false, false
}

// quiet reports whether the snapshot degenerates to a single immutable
// segment with nothing to filter — the batch-built shape, searched on the
// exact pre-lifecycle code path.
func (st *state) quiet(mv *index.MemView) bool {
	return len(st.segs) == 1 && st.shadowed == 0 && mv == nil
}

// Build analyzes and indexes the corpus. Duplicate document IDs are an
// error (propagated from the index builder).
func Build(docs []Document, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	b := index.NewBuilder()
	b.SetBlockSize(cfg.blockLayout())
	raw := make(map[string]string, len(docs))
	for _, d := range docs {
		full := d.Title + " " + d.Body
		if err := b.Add(d.ID, cfg.Analyzer.Tokens(full)); err != nil {
			return nil, err
		}
		raw[d.ID] = strings.TrimSpace(full)
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	seg := b.BuildSegmented(shards)
	e := newEngine(cfg, seg, heapDocs(raw))
	if err := e.openWAL(); err != nil {
		return nil, err
	}
	return e, nil
}

// newEngine assembles an Engine around a segmented index and its raw
// document store — shared by Build and Load. The lexicon wraps the index
// dictionary (sorted by the Build invariant), and the IDF table is the
// ID-indexed walk of the same dictionary. Max-score tables for the
// registered boundable models plus the configured one are installed
// here, while the index is still privately owned: fresh builds compute
// them, v4 streams arrive with them, and older streams get them rebuilt
// — so pruning works identically whichever way the engine came to be.
func newEngine(cfg Config, seg *index.Segmented, docs docStore) *Engine {
	e := &Engine{cfg: cfg}
	e.cur.Store(freshState(cfg, seg, docs, 0))
	return e
}

// freshState builds the single-segment state every engine starts (and
// every compaction ends) in: max-score tables installed while the index
// is still privately owned, lexicon wrapped around the dictionary, IDF
// table derived from it, empty tombstones, empty memtable.
func freshState(cfg Config, seg *index.Segmented, docs docStore, epoch uint64) *state {
	idx := seg.Index()
	installTables(cfg, idx)
	lex := textsim.WrapSortedTerms(idx.Terms())
	st := &state{
		stateData: stateData{
			epoch: epoch,
			segs:  []*segment{{seg: seg, docs: docs}},
			dead:  make(map[string]bool),
			mem:   index.NewMemtable(cfg.blockLayout()),
			live:  idx.NumDocs(),
			idf:   textsim.ComputeIDFFromIndex(idx, lex),
			lex:   lex,
		},
		refs: 1,
	}
	st.retainMapped()
	return st
}

// installTables installs max-score tables for the registered boundable
// models plus the configured one: fresh builds compute them, v4+ streams
// arrive with them, and older streams get them rebuilt — so pruning works
// identically whichever way the segment came to be.
func installTables(cfg Config, idx *index.Index) {
	if cfg.DisablePruning {
		return
	}
	models := append(ranking.PrecomputableModels(), cfg.Model)
	if err := ranking.InstallMaxScores(idx, models...); err != nil {
		// Only reachable through a table/dictionary size mismatch,
		// which InstallMaxScores cannot produce from its own
		// ComputeMaxScores output.
		panic(err)
	}
}

// Index exposes the base segment's inverted index (read-only use).
func (e *Engine) Index() *index.Index { return e.cur.Load().segs[0].seg.Index() }

// Segments exposes the base segment's shard partition (read-only use):
// the serving layer reports it in /stats, and benchmarks resegment it to
// sweep shard counts.
func (e *Engine) Segments() *index.Segmented { return e.cur.Load().segs[0].seg }

// Model returns the engine's weighting model.
func (e *Engine) Model() ranking.Model { return e.cfg.Model }

// PruningEnabled reports whether retrieval runs with MaxScore dynamic
// pruning: the config allows it and the base index carries the model's
// max-score table. The serving layer surfaces this in /stats.
func (e *Engine) PruningEnabled() bool {
	return !e.cfg.DisablePruning && ranking.Pruneable(e.Index(), e.cfg.Model)
}

// batchOpts returns the retrieval options every search path shares.
func (e *Engine) batchOpts() ranking.BatchOptions {
	return ranking.BatchOptions{Prune: !e.cfg.DisablePruning}
}

// NumDocs returns the number of live documents across segments and the
// write buffer. For a batch-built engine this is the collection size.
func (e *Engine) NumDocs() int { return e.cur.Load().live }

// Search retrieves the top-k documents for the raw query and attaches
// query-biased snippets. k <= 0 retrieves all matches.
func (e *Engine) Search(query string, k int) []Result {
	out, _ := e.SearchCtx(context.Background(), query, k) // cannot fail: Background never cancels
	return out
}

// SearchCtx is Search with request-scoped cancellation: the retrieval
// fan-out checks ctx between posting-list traversals, so a shed or
// disconnected request stops consuming shard workers instead of running
// to completion. The only possible error is ctx.Err().
func (e *Engine) SearchCtx(ctx context.Context, query string, k int) ([]Result, error) {
	res, _, err := e.SearchStamped(ctx, query, k, nil)
	return res, err
}

// SearchStamped is SearchCtx plus the epoch of the snapshot the search
// ran against: the whole search — retrieval, filtering, merging, snippet
// extraction — uses one atomically loaded state, so the stamp certifies
// which mutations the results reflect.
//
// plan selects the execution plan; nil (or a staged plan) runs the
// default staged path. A fused plan routes through SearchFusedStamped —
// the query and k arguments override the plan's — and renders the
// diversified selection as Results: DocID/Rank/Score carry the SERP
// order and the selection score, while Snippet stays empty (the fused
// operator consumes surrogates internally and does not build display
// strings; callers wanting both run the staged plan).
func (e *Engine) SearchStamped(ctx context.Context, query string, k int, plan *exec.Plan) ([]Result, uint64, error) {
	if plan.Fused() {
		pl := *plan
		pl.Query = query
		if k > 0 {
			pl.K = k
		}
		sel, epoch, err := e.SearchFusedStamped(ctx, &pl)
		if err != nil {
			return nil, epoch, err
		}
		out := make([]Result, len(sel))
		for i, s := range sel {
			out[i] = Result{DocID: s.ID, Rank: i + 1, Score: s.Score}
		}
		return out, epoch, nil
	}
	st := e.snapshot()
	defer st.unpin()
	out, err := e.searchBatchState(ctx, st, []string{query}, []int{k})
	if err != nil {
		return nil, st.epoch, err
	}
	return out[0], st.epoch, nil
}

// ShardResult is one per-shard retrieval hit with its surrogate
// snippet: the unit the distributed serving tier ships from a shard
// worker to the router. Doc is the global internal document number
// (shard doc ranges are disjoint), which the router's k-way merge uses
// as its deterministic tie-break; Rank is a property of the merged list
// and is assigned router-side.
type ShardResult struct {
	Doc     int32
	DocID   string
	Score   float64
	Snippet string
}

// SearchShardBatch answers a query batch against ONE shard of the base
// segment — the worker half of the distributed serving tier. The
// returned lists are sorted by (score desc, doc asc) and truncated to
// ks[i] (<= 0 keeps all matches); merging the lists of every shard with
// ranking.MergeSegments reproduces SearchBatch bit for bit (scores
// depend only on collection-global statistics, so a worker holding the
// full deterministic index computes the very same float64s the
// in-process fan-out would).
//
// Workers serve immutable replicas: the engine must be quiescent (a
// fresh Build/Load with no pending mutations), because the live
// lifecycle's shadowed-copy filtering is a cross-segment property the
// per-shard path cannot apply exactly. A non-quiescent engine returns
// an error rather than silently approximate results. The second return
// is the snapshot epoch, so a router can detect replicas that have
// diverged from the common world.
//
// plan must be nil or staged: diversification fusion is a post-merge
// global operator (the per-aspect heaps consume the deterministically
// merged hit stream of ALL shards), so a single shard cannot run it —
// distributed deployments diversify router-side over staged shard
// results, and a fused plan here is a caller bug, reported as an error.
func (e *Engine) SearchShardBatch(ctx context.Context, si int, queries []string, ks []int, plan *exec.Plan) ([][]ShardResult, uint64, error) {
	st := e.snapshot()
	defer st.unpin()
	if plan.Fused() {
		return nil, st.epoch, errors.New("engine: fused plans are post-merge operators; shard workers serve staged plans only")
	}
	mv := st.mem.View()
	if !st.quiet(mv) {
		return nil, st.epoch, errors.New("engine: shard search requires a quiescent index (no pending mutations)")
	}
	seg := st.segs[0].seg
	if si < 0 || si >= seg.NumShards() {
		return nil, st.epoch, fmt.Errorf("engine: shard %d out of range [0,%d)", si, seg.NumShards())
	}
	qTokens := make([][]string, len(queries))
	for i, q := range queries {
		qTokens[i] = e.cfg.Analyzer.Tokens(q)
	}
	hitLists, err := ranking.RetrieveShardBatch(ctx, seg, si, e.cfg.Model, qTokens, ks, e.batchOpts())
	if err != nil {
		return nil, st.epoch, err
	}
	out := make([][]ShardResult, len(queries))
	for i, hits := range hitLists {
		rs := make([]ShardResult, len(hits))
		for j, h := range hits {
			rs[j] = ShardResult{
				Doc:     h.Doc,
				DocID:   h.DocID,
				Score:   h.Score,
				Snippet: e.snippetFor(st, mv, h.DocID, qTokens[i]),
			}
		}
		out[i] = rs
	}
	return out, st.epoch, nil
}

// SearchBatch answers a batch of queries in ONE scatter-gather round over
// the index segments: each shard is traversed by a single worker that
// scores every pending query per pass (see ranking.RetrieveBatch). ks[i]
// bounds query i's result size. Per-query output is bit-identical to
// Search(queries[i], ks[i]) — the serving pipeline batches the main query
// with all its specialization retrievals through here.
func (e *Engine) SearchBatch(ctx context.Context, queries []string, ks []int) ([][]Result, error) {
	st := e.snapshot()
	defer st.unpin()
	return e.searchBatchState(ctx, st, queries, ks)
}

// searchBatchState answers a query batch against one loaded snapshot.
// The quiet fast path is the exact pre-lifecycle code; the general path
// retrieves k+shadowed per source (sealed segments plus the memtable
// view), filters superseded and deleted sealed copies, globalizes doc
// numbers by source offset and k-way merges — exact top-k, because at
// most `shadowed` hits per source can be filtered away.
func (e *Engine) searchBatchState(ctx context.Context, st *state, queries []string, ks []int) ([][]Result, error) {
	qTokens := make([][]string, len(queries))
	for i, q := range queries {
		qTokens[i] = e.cfg.Analyzer.Tokens(q)
	}
	mv := st.mem.View()
	if st.quiet(mv) {
		hitLists, err := ranking.RetrieveBatchOpts(ctx, st.segs[0].seg, e.cfg.Model, qTokens, ks, e.batchOpts())
		if err != nil {
			return nil, err
		}
		out := make([][]Result, len(queries))
		for i, hits := range hitLists {
			out[i] = e.resultsFor(st, mv, hits, qTokens[i])
		}
		return out, nil
	}

	sources := make([]*index.Segmented, 0, len(st.segs)+1)
	segN := len(st.segs)
	for _, sg := range st.segs {
		sources = append(sources, sg.seg)
	}
	if mv != nil {
		sources = append(sources, mv.Seg)
	}
	kp := make([]int, len(ks))
	for i, k := range ks {
		kp[i] = k
		if k > 0 {
			kp[i] = k + st.shadowed
		}
	}
	lists := make([][][]ranking.Hit, len(queries))
	for i := range lists {
		lists[i] = make([][]ranking.Hit, 0, len(sources))
	}
	off := int32(0)
	for si, src := range sources {
		res, err := ranking.RetrieveBatchOpts(ctx, src, e.cfg.Model, qTokens, kp, e.batchOpts())
		if err != nil {
			return nil, err
		}
		for q, hl := range res {
			if si < segN {
				kept := hl[:0]
				for _, h := range hl {
					if st.sealedLive(si, h.DocID, mv) {
						kept = append(kept, h)
					}
				}
				hl = kept
			}
			for j := range hl {
				hl[j].Doc += off
			}
			lists[q] = append(lists[q], hl)
		}
		off += int32(src.Index().NumDocs())
	}
	out := make([][]Result, len(queries))
	for q := range queries {
		out[q] = e.resultsFor(st, mv, ranking.MergeSegments(lists[q], ks[q]), qTokens[q])
	}
	return out, nil
}

// resultsFor attaches query-biased snippets to retrieval hits.
func (e *Engine) resultsFor(st *state, mv *index.MemView, hits []ranking.Hit, qTokens []string) []Result {
	out := make([]Result, len(hits))
	for i, h := range hits {
		out[i] = Result{
			DocID:   h.DocID,
			Rank:    h.Rank,
			Score:   h.Score,
			Snippet: e.snippetFor(st, mv, h.DocID, qTokens),
		}
	}
	return out
}

// Snippet returns the query-biased snippet of a document: the
// SnippetWindow-token window of the raw text containing the most query
// term matches (earliest such window on ties). An unknown or deleted
// document yields the empty string; a document with no match yields its
// leading window.
func (e *Engine) Snippet(docID, query string) string {
	st := e.snapshot()
	defer st.unpin()
	mv := st.mem.View()
	if !st.isLive(docID, mv) {
		return ""
	}
	return e.snippetFor(st, mv, docID, e.cfg.Analyzer.Tokens(query))
}

func (e *Engine) snippetFor(st *state, mv *index.MemView, docID string, qTokens []string) string {
	body, mapped, ok := st.body(docID, mv)
	if !ok {
		return ""
	}
	raw := strings.Fields(body)
	if len(raw) == 0 {
		return ""
	}
	w := e.cfg.SnippetWindow
	if len(raw) <= w {
		return cloneIfMapped(mapped, strings.Join(raw, " "))
	}
	qset := make(map[string]bool, len(qTokens))
	for _, t := range qTokens {
		qset[t] = true
	}
	// match[i] = 1 when raw token i analyzes to a query term.
	match := make([]int, len(raw))
	for i, tok := range raw {
		ts := e.cfg.Analyzer.Tokens(tok)
		for _, t := range ts {
			if qset[t] {
				match[i] = 1
				break
			}
		}
	}
	// Sliding window of width w maximizing matches.
	cur := 0
	for i := 0; i < w; i++ {
		cur += match[i]
	}
	best, bestAt := cur, 0
	for i := w; i < len(raw); i++ {
		cur += match[i] - match[i-w]
		if cur > best {
			best = cur
			bestAt = i - w + 1
		}
	}
	return cloneIfMapped(mapped, strings.Join(raw[bestAt:bestAt+w], " "))
}

// cloneIfMapped copies a snippet off a mapped region. strings.Fields
// substrings alias their input (and strings.Join degenerates to an alias
// for single-element input), and snippets outlive the search's state pin
// — the serving layer caches them in artifacts that survive a compaction
// unmapping the source segment — so mapped-backed snippets are always
// copied onto the heap.
func cloneIfMapped(mapped bool, s string) string {
	if mapped {
		return strings.Clone(s)
	}
	return s
}

// SurrogateVector returns the IDF-weighted term vector of the document's
// query-biased snippet: the representation the paper's utility function
// operates on.
func (e *Engine) SurrogateVector(docID, query string) textsim.Vector {
	snip := e.Snippet(docID, query)
	return e.VectorOfText(snip)
}

// VectorOfText analyzes arbitrary text and returns its IDF-weighted vector
// under the base segment's collection statistics.
func (e *Engine) VectorOfText(s string) textsim.Vector {
	return e.cur.Load().idf.Apply(textsim.FromTokens(e.cfg.Analyzer.Tokens(s)))
}

// Lexicon returns the engine's term lexicon — the interning dictionary
// every IVectorOfText result is expressed in. Problems built from this
// engine's vectors must carry it as their Problem.Lex. Compaction swaps
// in a fresh lexicon over the rebuilt dictionary; interned vectors from
// different epochs compare safely (the similarity kernels are sorted-ID
// merge joins), though cross-epoch cosines are not bit-stable — the
// serving layer keys its caches by epoch for exactly this reason.
func (e *Engine) Lexicon() *textsim.Lexicon { return e.cur.Load().lex }

// IVectorOfText is VectorOfText in interned form: the representation the
// scoring hot paths consume. Equivalent to interning VectorOfText(s)
// under Lexicon(), weights and norm bit-identical.
func (e *Engine) IVectorOfText(s string) textsim.IVector {
	st := e.cur.Load()
	return textsim.Intern(st.lex, st.idf.Apply(textsim.FromTokens(e.cfg.Analyzer.Tokens(s))))
}
