package engine

import (
	"context"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/ranking"
	"repro/internal/textsim"
)

// SearchFusedStamped runs the fused execution plan: ONE Block-Max
// MaxScore pass over the base segment produces the diversified SERP for
// an ambiguous query. As the scan's merged hit stream is materialized,
// each document's snippet surrogate is built directly in interned form
// (no snippet string, no second tokenization), streamed through the
// utility scorer against the plan's cached aspect vectors, and offered to
// the per-specialization bounded heaps of Algorithm 2 — retrieval,
// materialization, scoring and selection over one shared cursor/heap
// state (exec.FusedState) instead of four passes.
//
// Output is bit-identical to the staged plan over the same snapshot at
// any shard count: the scatter-gather inside RetrieveBatchOpts merges
// shard hit lists deterministically (score desc, doc asc) BEFORE the
// fused operator sees them, so the per-aspect heaps consume the same
// globally ordered stream regardless of how the index is partitioned.
//
// Requires a quiescent snapshot (the batch-built shape); a snapshot with
// pending mutations returns exec.ErrNotFusable and the caller falls back
// to the staged plan. The second return is the snapshot epoch, as in
// SearchStamped.
func (e *Engine) SearchFusedStamped(ctx context.Context, plan *exec.Plan) ([]core.Selected, uint64, error) {
	st := e.snapshot()
	defer st.unpin()
	mv := st.mem.View()
	if !st.quiet(mv) {
		return nil, st.epoch, exec.ErrNotFusable
	}

	qTokens := e.cfg.Analyzer.Tokens(plan.Query)
	hitLists, err := ranking.RetrieveBatchOpts(ctx, st.segs[0].seg, e.cfg.Model,
		[][]string{qTokens}, []int{plan.NumCandidates}, e.batchOpts())
	if err != nil {
		return nil, st.epoch, err
	}
	hits := hitLists[0]

	// P(d|q) normalization needs the min/max of the FULL score column, so
	// it runs over the completed hit list — the structural reason
	// per-aspect thresholds cannot feed back into this scan's block
	// skipping (see docs/ARCHITECTURE.md, "Query execution plan").
	var rn exec.RelNormalizer
	for i := range hits {
		rn.Observe(hits[i].Score)
	}

	// The plan's aspect vectors were interned under the facade's view of
	// the lexicon; pin the operator to this snapshot's (the same object
	// for the quiescent engine the fusability check just certified).
	pl := *plan
	pl.Lex = st.lex
	fs := exec.NewFusedState(&pl, len(hits))
	for i := range hits {
		if i&63 == 0 && ctx.Err() != nil {
			fs.Close()
			return nil, st.epoch, ctx.Err()
		}
		h := &hits[i]
		fs.Push(core.Doc{
			ID:   h.DocID,
			Rank: h.Rank,
			Rel:  rn.Rel(h.Score),
			IVec: e.surrogateIVec(st, mv, h.DocID, qTokens),
		})
	}
	return fs.Finish(), st.epoch, nil
}

// surrogateIVec builds the interned surrogate vector of a document's
// query-biased snippet without materializing the snippet string. The
// window selection mirrors snippetFor exactly; the analyzed tokens of the
// winning window then feed the same FromTokens → IDF → Intern chain
// IVectorOfText runs. The result is bit-identical to
// IVectorOfText(snippetFor(...)): tokenization distributes over the
// single-space joins snippetFor emits (any non-alphanumeric rune
// separates tokens), token counting is order-insensitive, and
// FromCounts/SliceIDF.Apply accumulate weights and norms in sorted term
// order — so skipping the join and the re-tokenization changes no bits.
func (e *Engine) surrogateIVec(st *state, mv *index.MemView, docID string, qTokens []string) textsim.IVector {
	body, mapped, ok := st.body(docID, mv)
	if !ok {
		return internTokens(st, nil)
	}
	raw := strings.Fields(body)
	if len(raw) == 0 {
		return internTokens(st, nil)
	}
	w := e.cfg.SnippetWindow

	// Analyze each raw token once; the slices serve both the match pass
	// and the winning window's token stream (snippetFor analyzes twice —
	// once for matching, once implicitly via IVectorOfText).
	fieldToks := make([][]string, len(raw))
	for i, tok := range raw {
		fieldToks[i] = e.cfg.Analyzer.Tokens(tok)
	}

	lo, hi := 0, len(raw)
	if len(raw) > w {
		qset := make(map[string]bool, len(qTokens))
		for _, t := range qTokens {
			qset[t] = true
		}
		// match[i] = 1 when raw token i analyzes to a query term.
		match := make([]int, len(raw))
		for i, ts := range fieldToks {
			for _, t := range ts {
				if qset[t] {
					match[i] = 1
					break
				}
			}
		}
		// Sliding window of width w maximizing matches (earliest on ties).
		cur := 0
		for i := 0; i < w; i++ {
			cur += match[i]
		}
		best, bestAt := cur, 0
		for i := w; i < len(raw); i++ {
			cur += match[i] - match[i-w]
			if cur > best {
				best = cur
				bestAt = i - w + 1
			}
		}
		lo, hi = bestAt, bestAt+w
	}

	n := 0
	for _, ts := range fieldToks[lo:hi] {
		n += len(ts)
	}
	toks := make([]string, 0, n)
	for _, ts := range fieldToks[lo:hi] {
		toks = append(toks, ts...)
	}
	if mapped {
		// Analyzer output can alias the body (lower-casing and stemming
		// return their input unchanged when no rewrite is needed), and
		// interning an out-of-dictionary term would retain the string in
		// the lexicon's overflow region past the mapping's lifetime — the
		// token-level twin of snippetFor's cloneIfMapped.
		for i, t := range toks {
			toks[i] = strings.Clone(t)
		}
	}
	return internTokens(st, toks)
}

// internTokens is IVectorOfText from pre-analyzed tokens, against one
// pinned state.
func internTokens(st *state, toks []string) textsim.IVector {
	return textsim.Intern(st.lex, st.idf.Apply(textsim.FromTokens(toks)))
}
