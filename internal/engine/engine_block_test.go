package engine

import (
	"bytes"
	"testing"

	"repro/internal/index"
)

// TestBlockLayoutConfig pins the Config knobs: the default build is
// block-compressed at index.DefaultBlockSize, BlockSize tunes the
// capacity, DisableCompression builds flat — and search output is
// identical across all three.
func TestBlockLayoutConfig(t *testing.T) {
	def := buildEngine(t)
	if !def.Index().Blocked() || def.Index().BlockSize() != index.DefaultBlockSize {
		t.Fatalf("default layout: Blocked=%v BlockSize=%d", def.Index().Blocked(), def.Index().BlockSize())
	}
	tuned, err := Build(smallCorpus(), Config{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Index().BlockSize() != 4 {
		t.Fatalf("BlockSize=4 built %d", tuned.Index().BlockSize())
	}
	flat, err := Build(smallCorpus(), Config{DisableCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Index().Blocked() {
		t.Fatal("DisableCompression still built a blocked index")
	}
	want := def.Search("leopard apple", 10)
	for name, e := range map[string]*Engine{"tuned": tuned, "flat": flat} {
		got := e.Search("leopard apple", 10)
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].DocID != want[i].DocID || got[i].Score != want[i].Score {
				t.Fatalf("%s result %d: %+v != %+v", name, i, got[i], want[i])
			}
		}
	}
	// Blocked engines with pruning get block-max tables installed.
	if keys := def.Index().BlockMaxKeys(); len(keys) == 0 {
		t.Error("default build installed no block-max tables")
	}
	if keys := flat.Index().BlockMaxKeys(); len(keys) != 0 {
		t.Errorf("flat build grew block-max tables %v", keys)
	}
}

// TestSaveLoadPreservesLayout round-trips the layout through engine
// persistence and exercises the load-time overrides.
func TestSaveLoadPreservesLayout(t *testing.T) {
	src, err := Build(smallCorpus(), Config{BlockSize: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	// Zero-value config keeps the stream's layout and partition.
	kept, err := Load(bytes.NewReader(stream), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if kept.Index().BlockSize() != 4 || kept.Segments().NumShards() != 2 {
		t.Fatalf("kept layout: block size %d, %d shards", kept.Index().BlockSize(), kept.Segments().NumShards())
	}

	// Explicit overrides re-lay the postings at load time.
	flat, err := Load(bytes.NewReader(stream), Config{DisableCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Index().Blocked() {
		t.Fatal("DisableCompression load kept the blocked layout")
	}
	retuned, err := Load(bytes.NewReader(stream), Config{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if retuned.Index().BlockSize() != 16 {
		t.Fatalf("BlockSize=16 load produced %d", retuned.Index().BlockSize())
	}
	if keys := retuned.Index().BlockMaxKeys(); len(keys) == 0 {
		t.Error("re-laid load installed no block-max tables")
	}

	want := src.Search("leopard apple", 10)
	for name, e := range map[string]*Engine{"kept": kept, "flat": flat, "retuned": retuned} {
		got := e.Search("leopard apple", 10)
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].DocID != want[i].DocID || got[i].Score != want[i].Score {
				t.Fatalf("%s result %d: %+v != %+v", name, i, got[i], want[i])
			}
		}
	}

	// A negative BlockSize means flat at Build time; Load must honor the
	// same convention instead of silently keeping the stream's layout.
	negFlat, err := Load(bytes.NewReader(stream), Config{BlockSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if negFlat.Index().Blocked() {
		t.Fatal("Load with BlockSize=-1 kept the blocked layout")
	}
}

// TestEmptyEngineRoundTrip pins the degenerate save/load cycle: a
// blocked index with zero blocks writes zero-entry block-max tables and
// the reader must accept them (regression: the v5 reader once rejected
// any block-max table on a zero-block index, breaking empty round trips
// that the v4 codec handled fine).
func TestEmptyEngineRoundTrip(t *testing.T) {
	src, err := Build(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatalf("empty engine round trip: %v", err)
	}
	if n := loaded.NumDocs(); n != 0 {
		t.Fatalf("loaded %d docs from an empty engine", n)
	}
	if got := loaded.Search("anything", 10); len(got) != 0 {
		t.Fatalf("empty engine returned %d results", len(got))
	}
}

// TestOversizedBlockSizeRoundTrip pins the clamp: a block size beyond
// the codec's readable range is clamped at build time (regression: it
// used to build and save an index whose own stream could not be read
// back).
func TestOversizedBlockSizeRoundTrip(t *testing.T) {
	src, err := Build(smallCorpus(), Config{BlockSize: index.MaxBlockSize + 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := src.Index().BlockSize(); got != index.MaxBlockSize {
		t.Fatalf("oversized block size built %d, want clamp to %d", got, index.MaxBlockSize)
	}
	var buf bytes.Buffer
	if err := src.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), Config{}); err != nil {
		t.Fatalf("clamped stream failed to load: %v", err)
	}
}
