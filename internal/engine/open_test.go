package engine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/index"
)

// writeMappedEngine exports e's base segment as a RIDX7 file.
func writeMappedEngine(t testing.TB, e *Engine) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "engine.ridx7")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WriteMappedTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sameResults(t *testing.T, want, got []Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: results diverge\nwant %+v\ngot  %+v", label, want, got)
	}
}

// TestOpenIndexFileMapped: Build → WriteMappedTo → OpenIndexFile(Mmap)
// must reproduce searches (scores, ranks, snippets) bit for bit, without
// decoding a single posting block at open, and Close must unmap.
func TestOpenIndexFileMapped(t *testing.T) {
	base := index.ActiveMappings()
	src, err := Build(smallCorpus(), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := writeMappedEngine(t, src)

	before, _ := index.BlockIOStats()
	e, err := OpenIndexFile(path, Config{Shards: 2, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if after, _ := index.BlockIOStats(); after != before {
		t.Fatalf("mapped open decoded %d posting blocks, want 0", after-before)
	}
	if index.ActiveMappings() != base+1 {
		t.Fatalf("ActiveMappings = %d, want %d", index.ActiveMappings(), base+1)
	}
	if !e.Index().Mapped() {
		t.Fatal("engine index not mapped")
	}
	if e.NumDocs() != src.NumDocs() {
		t.Fatalf("NumDocs = %d, want %d", e.NumDocs(), src.NumDocs())
	}
	for _, q := range []string{"leopard tank army", "apple pie recipe", "mac os"} {
		sameResults(t, src.Search(q, 10), e.Search(q, 10), q)
	}
	// Shard-level parity too (the worker serving path).
	ctx := context.Background()
	for si := 0; si < 2; si++ {
		want, _, err := src.SearchShardBatch(ctx, si, []string{"leopard"}, []int{5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := e.SearchShardBatch(ctx, si, []string{"leopard"}, []int{5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shard %d diverges", si)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if index.ActiveMappings() != base {
		t.Fatalf("ActiveMappings = %d after Close, want %d", index.ActiveMappings(), base)
	}
}

// TestOpenIndexFileHeap: the same RIDX7 file without Config.Mmap decodes
// onto the heap — identical results, no mapping.
func TestOpenIndexFileHeap(t *testing.T) {
	src, err := Build(smallCorpus(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := OpenIndexFile(writeMappedEngine(t, src), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Index().Mapped() {
		t.Fatal("heap open produced a mapped index")
	}
	sameResults(t, src.Search("leopard", 10), e.Search("leopard", 10), "heap v7")
}

// TestOpenIndexFileEngineStream: OpenIndexFile dispatches RENG2 streams
// through Load.
func TestOpenIndexFileEngineStream(t *testing.T) {
	src, err := Build(smallCorpus(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.eng")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SaveTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	e, err := OpenIndexFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sameResults(t, src.Search("apple", 10), e.Search("apple", 10), "RENG2")
}

// TestMappedMutationLifecycle: a mapped engine accepts the full mutation
// lifecycle. Ingest/Delete/Flush work against the mapped base, and
// Compact folds everything onto the heap and unmaps the retired segment.
func TestMappedMutationLifecycle(t *testing.T) {
	base := index.ActiveMappings()
	src, err := Build(smallCorpus(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := writeMappedEngine(t, src)
	e, err := OpenIndexFile(path, Config{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(Document{ID: "snow", Title: "Snow leopard", Body: "The snow leopard lives in high mountain ranges of central Asia"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Delete("pie"); !ok {
		t.Fatal("Delete(pie) missed: mapped doc store not consulted for liveness")
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if index.ActiveMappings() != base+1 {
		t.Fatal("flush must keep the mapped base segment")
	}
	// Compaction recomputes collection statistics over the merged corpus,
	// so scores (and with them order) may legitimately shift — the stable
	// invariant is the live result SET.
	ids := func() map[string]bool {
		out := make(map[string]bool)
		for _, r := range e.Search("leopard", 0) {
			out[r.DocID] = true
		}
		return out
	}
	pre := ids()
	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if index.ActiveMappings() != base {
		t.Fatalf("ActiveMappings = %d after compaction, want %d (mapped base retired)", index.ActiveMappings(), base)
	}
	if e.Index().Mapped() {
		t.Fatal("compacted base still claims to be mapped")
	}
	if !reflect.DeepEqual(pre, ids()) {
		t.Fatal("result set changed across compaction")
	}
	// Bodies replayed through compaction must have been cloned off the
	// mapping: snippets still work after the unmap.
	if s := e.Snippet("cat", "leopard"); s == "" {
		t.Fatal("post-compaction snippet empty: body lost with the mapping")
	}
	e.Close()
}

// TestMappedUnmapRace: searches hammer a mapped engine while a mutator
// compacts it (retiring the mapped segment). The state pin plus iterator
// refcounts must hold the mapping until every in-flight reader drains —
// under -race this doubles as the memory-safety proof.
func TestMappedUnmapRace(t *testing.T) {
	base := index.ActiveMappings()
	src, err := Build(smallCorpus(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := writeMappedEngine(t, src)
	e, err := OpenIndexFile(path, Config{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	for _, r := range e.Search("leopard", 0) {
		want[r.DocID] = true
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				got := e.Search("leopard", 0)
				// Scores shift when the ingest lands (collection stats
				// change), so assert set membership, not order.
				if len(got) != len(want) {
					t.Errorf("mid-swap search returned %d hits, want %d", len(got), len(want))
					return
				}
				for _, r := range got {
					if !want[r.DocID] || r.Snippet == "" {
						t.Errorf("mid-swap hit %q (snippet %d bytes)", r.DocID, len(r.Snippet))
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		// No query term in the extra doc: the leopard result set stays
		// fixed across every epoch the searchers can observe.
		if _, err := e.Ingest(Document{ID: "extra", Body: "unrelated filler content about gardening"}); err != nil {
			t.Error(err)
		}
		if _, err := e.Compact(); err != nil {
			t.Error(err)
		}
	}()
	close(start)
	wg.Wait()
	e.Close()
	if index.ActiveMappings() != base {
		t.Fatalf("ActiveMappings = %d after drain, want %d", index.ActiveMappings(), base)
	}
}
