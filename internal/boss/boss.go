// Package boss simulates the external web search API used by the paper's
// Appendix C evaluation (the Yahoo! BOSS service, long since retired): a
// non-diversified, relevance-only ranked source of results with titles,
// URLs and abstracts. The simulator serves results from the local engine
// substrate, so the utility-ratio experiment of Figure 1 exercises exactly
// the paper's code path — fetch R_q from an external engine, re-rank it
// with OptSelect against the mined specializations, and compare utilities.
package boss

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// Result mirrors the fields of a BOSS-style API response entry.
type Result struct {
	Title    string
	URL      string
	Abstract string // the snippet used as document surrogate
	Rank     int    // 1-based
}

// Client is a handle to the simulated external engine.
type Client struct {
	eng *engine.Engine
}

// New wraps the given engine as an external search API.
func New(eng *engine.Engine) *Client { return &Client{eng: eng} }

// Search returns the top-n non-diversified results for the query, with
// abstracts (query-biased snippets) attached — the shape of a BOSS
// web-search call.
func (c *Client) Search(query string, n int) []Result {
	hits := c.eng.Search(query, n)
	out := make([]Result, len(hits))
	for i, h := range hits {
		out[i] = Result{
			Title:    h.DocID,
			URL:      fmt.Sprintf("http://boss.example/%s", h.DocID),
			Abstract: h.Snippet,
			Rank:     h.Rank,
		}
	}
	return out
}

// CandidateDocs converts a BOSS result list into diversification
// candidates R_q: relevance decays with rank (1/rank, normalized so the
// top result has P(d|q)=1) and surrogate vectors come from the abstracts.
func (c *Client) CandidateDocs(results []Result) []core.Doc {
	docs := make([]core.Doc, len(results))
	for i, r := range results {
		docs[i] = core.Doc{
			ID:     r.Title,
			Rank:   r.Rank,
			Rel:    1 / float64(r.Rank),
			Vector: c.eng.VectorOfText(r.Abstract),
		}
	}
	return docs
}

// SpecResults converts a BOSS result list into a specialization's R_q′.
func (c *Client) SpecResults(results []Result) []core.SpecResult {
	out := make([]core.SpecResult, len(results))
	for i, r := range results {
		out[i] = core.SpecResult{
			ID:     r.Title,
			Rank:   r.Rank,
			Vector: c.eng.VectorOfText(r.Abstract),
		}
	}
	return out
}
