package boss

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

func client(t *testing.T) *Client {
	t.Helper()
	docs := []engine.Document{
		{ID: "osx", Title: "Mac OS X Leopard", Body: "Apple released the Leopard operating system for Mac computers with new desktop features"},
		{ID: "tank", Title: "Leopard 2 tank", Body: "The Leopard 2 main battle tank of the German army with composite armor and smoothbore gun"},
		{ID: "cat", Title: "Leopard", Body: "The leopard is a wild cat species found in Africa and Asia with a spotted coat"},
	}
	e, err := engine.Build(docs, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(e)
}

func TestSearchShape(t *testing.T) {
	c := client(t)
	res := c.Search("leopard", 10)
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	for i, r := range res {
		if r.Rank != i+1 {
			t.Errorf("rank[%d] = %d", i, r.Rank)
		}
		if r.Abstract == "" {
			t.Errorf("empty abstract for %s", r.Title)
		}
		if !strings.HasPrefix(r.URL, "http://boss.example/") {
			t.Errorf("URL = %q", r.URL)
		}
	}
}

func TestSearchTruncates(t *testing.T) {
	c := client(t)
	if got := c.Search("leopard", 2); len(got) != 2 {
		t.Errorf("n=2 returned %d", len(got))
	}
	if got := c.Search("nosuchterm", 5); len(got) != 0 {
		t.Errorf("alien query returned %d results", len(got))
	}
}

func TestCandidateDocs(t *testing.T) {
	c := client(t)
	res := c.Search("leopard", 3)
	docs := c.CandidateDocs(res)
	if len(docs) != 3 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[0].Rel != 1 {
		t.Errorf("top Rel = %f, want 1", docs[0].Rel)
	}
	if docs[2].Rel >= docs[0].Rel {
		t.Error("relevance not decaying with rank")
	}
	for _, d := range docs {
		if d.Vector.IsZero() {
			t.Errorf("zero vector for %s", d.ID)
		}
	}
}

func TestSpecResults(t *testing.T) {
	c := client(t)
	res := c.Search("leopard tank", 2)
	specs := c.SpecResults(res)
	if len(specs) != 2 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Rank != 1 || specs[0].ID != res[0].Title {
		t.Errorf("spec result = %+v", specs[0])
	}
}
