package text

import "strings"

// stopWordList is a standard English stopword list (the classic Glasgow IR
// list trimmed to the high-frequency function words that Terrier's default
// configuration removes). Kept as a single string so the set is cheap to
// audit and extend.
const stopWordList = `
a about above after again against all am an and any are aren as at
be because been before being below between both but by
can cannot could couldn
did didn do does doesn doing don down during
each
few for from further
had hadn has hasn have haven having he her here hers herself him himself his how
i if in into is isn it its itself
just
ll
me more most mustn my myself
no nor not now
of off on once only or other our ours ourselves out over own
re
s same shan she should shouldn so some such
t than that the their theirs them themselves then there these they this those through to too
under until up
very
was wasn we were weren what when where which while who whom why will with won would wouldn
you your yours yourself yourselves
`

var stopWordSet = func() map[string]bool {
	set := make(map[string]bool, 160)
	for _, w := range strings.Fields(stopWordList) {
		set[w] = true
	}
	return set
}()

// StopWords returns a fresh copy of the default English stopword set, so
// callers may mutate their copy safely.
func StopWords() map[string]bool {
	out := make(map[string]bool, len(stopWordSet))
	for w := range stopWordSet {
		out[w] = true
	}
	return out
}

// IsStopWord reports whether the (lowercase) token is in the default set.
func IsStopWord(tok string) bool { return stopWordSet[tok] }
