package text

// Porter stemming algorithm, implemented from the original description:
// M. F. Porter, "An algorithm for suffix stripping", Program 14(3), 1980.
// This is the stemmer named in §5 of the paper for indexing ClueWeb-B.
//
// The implementation operates on ASCII lowercase bytes; callers should
// lowercase first (the package tokenizer already does).

// Stem returns the Porter stem of word. Words shorter than three characters
// are returned unchanged, per the original algorithm.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	b := []byte(word)
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isCons reports whether b[i] is a consonant in Porter's sense: a letter
// other than a,e,i,o,u; 'y' is a consonant when it is the first letter or
// follows a vowel, otherwise it is a vowel.
func isCons(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(b, i-1)
	default:
		return true
	}
}

// measure returns m, the number of VC sequences in the word form
// [C](VC)^m[V].
func measure(b []byte) int {
	n := len(b)
	i := 0
	// Skip initial consonants.
	for i < n && isCons(b, i) {
		i++
	}
	m := 0
	for i < n {
		// In a vowel run.
		for i < n && !isCons(b, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isCons(b, i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether b contains a vowel.
func hasVowel(b []byte) bool {
	for i := range b {
		if !isCons(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether b ends with a doubled consonant (*d).
func endsDoubleCons(b []byte) bool {
	n := len(b)
	return n >= 2 && b[n-1] == b[n-2] && isCons(b, n-1)
}

// endsCVC reports whether b ends consonant-vowel-consonant where the final
// consonant is not w, x or y (*o).
func endsCVC(b []byte) bool {
	n := len(b)
	if n < 3 {
		return false
	}
	if !isCons(b, n-3) || isCons(b, n-2) || !isCons(b, n-1) {
		return false
	}
	switch b[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	off := len(b) - len(s)
	for i := 0; i < len(s); i++ {
		if b[off+i] != s[i] {
			return false
		}
	}
	return true
}

// replaceIf replaces suffix old with new when the stem before old has
// measure > minM. It reports whether old matched (regardless of whether the
// replacement fired), so callers can stop at the first matching rule.
func replaceIf(b []byte, old, new string, minM int) ([]byte, bool) {
	if !hasSuffix(b, old) {
		return b, false
	}
	stem := b[:len(b)-len(old)]
	if measure(stem) > minM {
		return append(stem, new...), true
	}
	return b, true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2] // sses -> ss
	case hasSuffix(b, "ies"):
		return b[:len(b)-2] // ies -> i
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b[:len(b)-3]) > 0 {
			return b[:len(b)-1] // eed -> ee
		}
		return b
	}
	var stem []byte
	switch {
	case hasSuffix(b, "ed") && hasVowel(b[:len(b)-2]):
		stem = b[:len(b)-2]
	case hasSuffix(b, "ing") && hasVowel(b[:len(b)-3]):
		stem = b[:len(b)-3]
	default:
		return b
	}
	// Cleanup after removing -ed/-ing.
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && hasVowel(b[:len(b)-1]) {
		b[len(b)-1] = 'i'
	}
	return b
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		var matched bool
		if b, matched = replaceIf(b, r.old, r.new, 0); matched {
			return b
		}
	}
	return b
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		var matched bool
		if b, matched = replaceIf(b, r.old, r.new, 0); matched {
			return b
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, suf := range step4Suffixes {
		if !hasSuffix(b, suf) {
			continue
		}
		stem := b[:len(b)-len(suf)]
		if measure(stem) <= 1 {
			return b
		}
		if suf == "ion" {
			n := len(stem)
			if n == 0 || (stem[n-1] != 's' && stem[n-1] != 't') {
				return b
			}
		}
		return stem
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stem := b[:len(b)-1]
	m := measure(stem)
	if m > 1 {
		return stem
	}
	if m == 1 && !endsCVC(stem) {
		return stem
	}
	return b
}

func step5b(b []byte) []byte {
	if measure(b) > 1 && endsDoubleCons(b) && b[len(b)-1] == 'l' {
		return b[:len(b)-1]
	}
	return b
}

// StemTokens stems every token in place and returns the slice.
func StemTokens(tokens []string) []string {
	for i, t := range tokens {
		tokens[i] = Stem(t)
	}
	return tokens
}
