// Package text implements the lexical analysis chain used by the search
// engine substrate: Unicode tokenization, the Porter stemming algorithm and
// standard English stopword removal. The paper's experimental setup (§5)
// indexes ClueWeb-B with "Porter's stemmer and standard English stopword
// removal"; this package is the stdlib-only equivalent of that Terrier
// analysis pipeline.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase alphanumeric tokens. Any rune that is
// neither a letter nor a digit is a separator. The tokenizer is
// deliberately simple and deterministic: the same choice Terrier's default
// "EnglishTokeniser" makes for Latin alphabets.
func Tokenize(text string) []string {
	tokens := make([]string, 0, len(text)/6)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// NormalizeQuery canonicalizes a raw query string the way the query-log
// pipeline expects: lowercase, alphanumeric tokens joined by single spaces.
// Two queries that normalize identically are treated as the same query
// throughout log mining.
func NormalizeQuery(q string) string {
	return strings.Join(Tokenize(q), " ")
}

// Analyzer bundles the full analysis chain. The zero value performs
// tokenization only; NewAnalyzer returns the paper's configuration
// (stopwords + Porter stemming).
type Analyzer struct {
	StopWords map[string]bool // tokens to drop (after lowercasing, before stemming)
	Stem      bool            // apply the Porter stemmer
	MinLen    int             // drop tokens shorter than MinLen (0 = keep all)
}

// NewAnalyzer returns the analysis chain used in the paper's experiments:
// standard English stopword removal followed by Porter stemming.
func NewAnalyzer() *Analyzer {
	return &Analyzer{StopWords: StopWords(), Stem: true, MinLen: 1}
}

// Tokens runs the full chain on text.
func (a *Analyzer) Tokens(text string) []string {
	raw := Tokenize(text)
	out := raw[:0]
	for _, tok := range raw {
		if a.MinLen > 0 && len(tok) < a.MinLen {
			continue
		}
		if a.StopWords != nil && a.StopWords[tok] {
			continue
		}
		if a.Stem {
			tok = Stem(tok)
		}
		if tok == "" {
			continue
		}
		out = append(out, tok)
	}
	return out
}
