package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Apple Corp., the FRUIT-seller; visits 3 towns!")
	want := []string{"apple", "corp", "the", "fruit", "seller", "visits", "3", "towns"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndSeparators(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("  \t\n--..!!  "); len(got) != 0 {
		t.Errorf("Tokenize(separators) = %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Café Zürich naïve")
	want := []string{"café", "zürich", "naïve"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  Leopard   Mac OS-X ", "leopard mac os x"},
		{"APPLE", "apple"},
		{"", ""},
		{"obama family tree", "obama family tree"},
	}
	for _, c := range cases {
		if got := NormalizeQuery(c.in); got != c.want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Vectors from Porter's original paper and the canonical reference
// implementation's vocabulary output.
func TestPorterStemKnownVectors(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":    "probat",
		"rate":       "rate",
		"cease":      "ceas",
		"controll":   "control",
		"roll":       "roll",
		"oscillator": "oscil",
		// short words untouched
		"a":  "a",
		"is": "is",
		"be": "be",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// The Porter stemmer is not idempotent in general, but for this common
	// vocabulary a second application must not change the stem further in a
	// way that breaks index/query agreement (both sides stem exactly once).
	words := []string{"running", "diversification", "results", "queries",
		"ambiguous", "specializations", "engine", "searching"}
	for _, w := range words {
		once := Stem(w)
		if once == "" {
			t.Errorf("Stem(%q) produced empty string", w)
		}
	}
}

func TestStemNeverPanicsProperty(t *testing.T) {
	prop := func(s string) bool {
		// Lowercase ASCII projection of arbitrary input.
		var b strings.Builder
		for _, r := range strings.ToLower(s) {
			if r >= 'a' && r <= 'z' {
				b.WriteRune(r)
			}
		}
		w := b.String()
		out := Stem(w)
		if len(w) <= 2 {
			return out == w
		}
		// Stems never grow by more than one char (at->ate etc. only after
		// removing a longer suffix) and are never empty for len>2 input.
		return out != "" && len(out) <= len(w)+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStopWords(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is", "a"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false", w)
		}
	}
	for _, w := range []string{"apple", "leopard", "diversification"} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true", w)
		}
	}
	// Mutating the returned copy must not affect the shared set.
	set := StopWords()
	delete(set, "the")
	if !IsStopWord("the") {
		t.Error("mutating StopWords() copy changed the global set")
	}
}

func TestAnalyzerFullChain(t *testing.T) {
	a := NewAnalyzer()
	got := a.Tokens("The runners are running quickly through the Forests")
	// "the"/"are"/"through" are stopwords; remaining tokens stemmed.
	want := []string{"runner", "run", "quickli", "forest"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestAnalyzerNoStemNoStop(t *testing.T) {
	a := &Analyzer{}
	got := a.Tokens("The Cats RUNNING")
	want := []string{"the", "cats", "running"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestAnalyzerMinLen(t *testing.T) {
	a := &Analyzer{MinLen: 3}
	got := a.Tokens("go is a fun language")
	want := []string{"fun", "language"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestStemTokens(t *testing.T) {
	toks := []string{"running", "jumps"}
	got := StemTokens(toks)
	want := []string{"run", "jump"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("StemTokens = %v, want %v", got, want)
	}
}

func TestMeasure(t *testing.T) {
	cases := []struct {
		w string
		m int
	}{
		{"tr", 0}, {"ee", 0}, {"tree", 0}, {"y", 0}, {"by", 0},
		{"trouble", 1}, {"oats", 1}, {"trees", 1}, {"ivy", 1},
		{"troubles", 2}, {"private", 2}, {"oaten", 2}, {"orrery", 2},
	}
	for _, c := range cases {
		if got := measure([]byte(c.w)); got != c.m {
			t.Errorf("measure(%q) = %d, want %d", c.w, got, c.m)
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"diversification", "running", "specializations",
		"effectiveness", "ambiguous", "relational", "oscillator"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkAnalyzer(b *testing.B) {
	a := NewAnalyzer()
	doc := strings.Repeat("the quick brown foxes are jumping over the lazy dogs near riverbanks ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Tokens(doc)
	}
}

func TestNormalizeQueryIdempotentProperty(t *testing.T) {
	prop := func(s string) bool {
		once := NormalizeQuery(s)
		return NormalizeQuery(once) == once
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTokenizeDigitsAndMixed(t *testing.T) {
	got := Tokenize("ipad2 v1.0 100% 3-in-1")
	want := []string{"ipad2", "v1", "0", "100", "3", "in", "1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}
