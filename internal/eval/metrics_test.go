package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trec"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// twoSubtopicQrels: topic 1 with subtopics 1 and 2.
// a1, a2 relevant to sub 1; b1 relevant to sub 2; mixed relevant to both.
func twoSubtopicQrels() *trec.Qrels {
	q := trec.NewQrels()
	q.Add(1, 1, "a1", 1)
	q.Add(1, 1, "a2", 1)
	q.Add(1, 2, "b1", 1)
	q.Add(1, 1, "mixed", 1)
	q.Add(1, 2, "mixed", 1)
	return q
}

func TestAlphaNDCGPerfectSingleDoc(t *testing.T) {
	q := trec.NewQrels()
	q.Add(1, 1, "only", 1)
	got := AlphaNDCG([]string{"only"}, q, 1, DefaultAlpha, []int{1, 5})
	if !almostEq(got[1], 1, 1e-12) || !almostEq(got[5], 1, 1e-12) {
		t.Errorf("perfect ranking scored %v", got)
	}
}

func TestAlphaNDCGDiverseBeatsRedundant(t *testing.T) {
	q := twoSubtopicQrels()
	diverse := AlphaNDCG([]string{"a1", "b1"}, q, 1, DefaultAlpha, []int{2})
	redundant := AlphaNDCG([]string{"a1", "a2"}, q, 1, DefaultAlpha, []int{2})
	if diverse[2] <= redundant[2] {
		t.Errorf("diverse %f <= redundant %f", diverse[2], redundant[2])
	}
}

func TestAlphaNDCGAlphaZeroIgnoresRedundancy(t *testing.T) {
	q := twoSubtopicQrels()
	// With α = 0 novelty is not rewarded: a redundant pair covering one
	// subtopic twice scores the same as two singles from the same subtopic.
	redundant := AlphaNDCG([]string{"a1", "a2"}, q, 1, 0, []int{2})
	if redundant[2] <= 0 {
		t.Errorf("alpha=0 scored %f", redundant[2])
	}
	// And "mixed" (2 subtopics) counts double vs a1 at rank 1.
	mixed := AlphaNDCG([]string{"mixed"}, q, 1, 0, []int{1})
	single := AlphaNDCG([]string{"a1"}, q, 1, 0, []int{1})
	if mixed[1] <= single[1] {
		t.Errorf("mixed %f <= single %f at alpha=0", mixed[1], single[1])
	}
}

func TestAlphaNDCGIrrelevantRanking(t *testing.T) {
	q := twoSubtopicQrels()
	got := AlphaNDCG([]string{"x", "y", "z"}, q, 1, DefaultAlpha, []int{5})
	if got[5] != 0 {
		t.Errorf("irrelevant ranking scored %f", got[5])
	}
}

func TestAlphaNDCGNoJudgments(t *testing.T) {
	q := trec.NewQrels()
	got := AlphaNDCG([]string{"a"}, q, 42, DefaultAlpha, []int{5})
	if got[5] != 0 {
		t.Errorf("unjudged topic scored %f", got[5])
	}
}

func TestAlphaNDCGIdealIsOne(t *testing.T) {
	// Whatever the judgments, the greedy-ideal ordering itself must score 1
	// at every cutoff within pool size.
	q := twoSubtopicQrels()
	// Greedy ideal: mixed (gain 2), then a1 or b1...; emulate by scoring
	// the pool in greedy order computed through the exported function: the
	// ranking [mixed, a1, b1, a2] is one greedy solution.
	got := AlphaNDCG([]string{"mixed", "b1", "a1", "a2"}, q, 1, DefaultAlpha, []int{1})
	if !almostEq(got[1], 1, 1e-12) {
		t.Errorf("greedy-first ranking @1 = %f, want 1", got[1])
	}
}

func TestAlphaNDCGMonotoneUnderImprovement(t *testing.T) {
	q := twoSubtopicQrels()
	worse := AlphaNDCG([]string{"x", "a1"}, q, 1, DefaultAlpha, []int{2})
	better := AlphaNDCG([]string{"a1", "x"}, q, 1, DefaultAlpha, []int{2})
	if better[2] <= worse[2] {
		t.Errorf("moving relevant doc up did not help: %f <= %f", better[2], worse[2])
	}
}

func TestAlphaNDCGRange(t *testing.T) {
	prop := func(perm uint32) bool {
		docs := []string{"a1", "a2", "b1", "mixed", "junk1", "junk2"}
		// Deterministic pseudo-shuffle driven by perm.
		p := perm
		for i := len(docs) - 1; i > 0; i-- {
			j := int(p % uint32(i+1))
			p /= uint32(i + 1)
			docs[i], docs[j] = docs[j], docs[i]
		}
		q := twoSubtopicQrels()
		got := AlphaNDCG(docs, q, 1, DefaultAlpha, []int{1, 3, 6})
		for _, v := range got {
			if v < 0 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIAPrecisionUniform(t *testing.T) {
	q := twoSubtopicQrels()
	// Top-2 = a1 (sub1), b1 (sub2): P_1@2 = 1/2, P_2@2 = 1/2 → IA-P = 0.5.
	got := IAPrecision([]string{"a1", "b1"}, q, 1, nil, []int{2})
	if !almostEq(got[2], 0.5, 1e-12) {
		t.Errorf("IA-P@2 = %f, want 0.5", got[2])
	}
	// Redundant list: P_1@2 = 1, P_2@2 = 0 → IA-P = 0.5 as well.
	got = IAPrecision([]string{"a1", "a2"}, q, 1, nil, []int{2})
	if !almostEq(got[2], 0.5, 1e-12) {
		t.Errorf("IA-P@2 redundant = %f, want 0.5", got[2])
	}
	// "mixed" covers both: IA-P@1 = 1.
	got = IAPrecision([]string{"mixed"}, q, 1, nil, []int{1})
	if !almostEq(got[1], 1, 1e-12) {
		t.Errorf("IA-P@1 mixed = %f, want 1", got[1])
	}
}

func TestIAPrecisionWeighted(t *testing.T) {
	q := twoSubtopicQrels()
	w := map[int]float64{1: 0.9, 2: 0.1}
	got := IAPrecision([]string{"a1"}, q, 1, w, []int{1})
	if !almostEq(got[1], 0.9, 1e-12) {
		t.Errorf("weighted IA-P = %f, want 0.9", got[1])
	}
}

func TestIAPrecisionShortRanking(t *testing.T) {
	q := twoSubtopicQrels()
	// Ranking shorter than cutoff: missing positions count as misses.
	got := IAPrecision([]string{"mixed"}, q, 1, nil, []int{10})
	if !almostEq(got[10], 0.1, 1e-12) {
		t.Errorf("IA-P@10 = %f, want 0.1", got[10])
	}
	// Empty ranking.
	got = IAPrecision(nil, q, 1, nil, []int{5})
	if got[5] != 0 {
		t.Errorf("empty ranking IA-P = %f", got[5])
	}
}

func TestPrecisionAt(t *testing.T) {
	q := twoSubtopicQrels()
	if p := PrecisionAt([]string{"a1", "junk", "b1", "junk2"}, q, 1, 4); !almostEq(p, 0.5, 1e-12) {
		t.Errorf("P@4 = %f, want 0.5", p)
	}
	if p := PrecisionAt(nil, q, 1, 5); p != 0 {
		t.Errorf("P@5 empty = %f", p)
	}
	if p := PrecisionAt([]string{"a1"}, q, 1, 0); p != 0 {
		t.Errorf("P@0 = %f", p)
	}
}

func TestAveragePrecision(t *testing.T) {
	q := twoSubtopicQrels()
	// Pool = {a1, a2, b1, mixed} (4 relevant docs).
	// Ranking: a1 (hit, 1/1), junk, b1 (hit, 2/3) → AP = (1 + 2/3)/4.
	ap := AveragePrecision([]string{"a1", "junk", "b1"}, q, 1)
	if !almostEq(ap, (1+2.0/3)/4, 1e-12) {
		t.Errorf("AP = %f", ap)
	}
	if ap := AveragePrecision([]string{"x"}, trec.NewQrels(), 9); ap != 0 {
		t.Errorf("AP unjudged = %f", ap)
	}
}

func TestSubtopicRecall(t *testing.T) {
	q := twoSubtopicQrels()
	if sr := SubtopicRecall([]string{"a1", "a2"}, q, 1, 2); !almostEq(sr, 0.5, 1e-12) {
		t.Errorf("S-recall redundant = %f, want 0.5", sr)
	}
	if sr := SubtopicRecall([]string{"a1", "b1"}, q, 1, 2); sr != 1 {
		t.Errorf("S-recall diverse = %f, want 1", sr)
	}
	if sr := SubtopicRecall(nil, q, 1, 5); sr != 0 {
		t.Errorf("S-recall empty = %f", sr)
	}
}

func TestERRIA(t *testing.T) {
	q := twoSubtopicQrels()
	got := ERRIA([]string{"a1", "b1"}, q, 1, nil, []int{1, 2})
	// Sub 1: a1 at rank 1 → 0.5; sub 2: b1 at rank 2 → 0.25.
	want1 := 0.5 * 0.5 // only sub1 covered at k=1
	want2 := 0.5*0.5 + 0.5*0.25
	if !almostEq(got[1], want1, 1e-12) || !almostEq(got[2], want2, 1e-12) {
		t.Errorf("ERR-IA = %v, want @1=%f @2=%f", got, want1, want2)
	}
	// Diverse beats redundant.
	red := ERRIA([]string{"a1", "a2"}, q, 1, nil, []int{2})
	if got[2] <= red[2] {
		t.Errorf("ERR-IA diverse %f <= redundant %f", got[2], red[2])
	}
	if out := ERRIA([]string{"x"}, trec.NewQrels(), 3, nil, []int{5}); out[5] != 0 {
		t.Error("ERR-IA on unjudged topic non-zero")
	}
}

func TestEvaluateRunAndReport(t *testing.T) {
	q := twoSubtopicQrels()
	q.Add(2, 1, "z1", 1)
	q.Add(2, 2, "z2", 1)

	run := trec.NewRun()
	run.AddRanking(1, []string{"mixed", "a1", "b1"}, "t")
	run.AddRanking(2, []string{"z1", "z2"}, "t")

	rep := EvaluateRun("test", run, q, DefaultAlpha, []int{1, 2})
	if rep.MeanAlphaNDCG(1) <= 0 || rep.MeanAlphaNDCG(1) > 1 {
		t.Errorf("mean α-NDCG@1 = %f", rep.MeanAlphaNDCG(1))
	}
	topics, vals := rep.PerTopic("alpha-ndcg", 2)
	if len(topics) != 2 || len(vals) != 2 {
		t.Fatalf("PerTopic = %v, %v", topics, vals)
	}
	if topics[0] != 1 || topics[1] != 2 {
		t.Errorf("topics = %v", topics)
	}
	if _, bad := rep.PerTopic("nosuch", 2); bad != nil {
		t.Error("unknown metric returned values")
	}

	var sb strings.Builder
	if err := rep.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test") {
		t.Errorf("table output missing name: %q", sb.String())
	}
}

func TestEvaluateRunMissingTopicScoresZero(t *testing.T) {
	q := twoSubtopicQrels()
	q.Add(2, 1, "z1", 1)
	run := trec.NewRun()
	run.AddRanking(1, []string{"mixed"}, "t")
	// Topic 2 absent from run.
	rep := EvaluateRun("test", run, q, DefaultAlpha, []int{1})
	if v := rep.AlphaNDCG[1][2]; v != 0 {
		t.Errorf("missing topic scored %f", v)
	}
	if rep.MeanAlphaNDCG(1) >= rep.AlphaNDCG[1][1] {
		t.Error("mean not dragged down by missing topic")
	}
}

func TestCompareSignificance(t *testing.T) {
	q := trec.NewQrels()
	for topic := 1; topic <= 12; topic++ {
		q.Add(topic, 1, "good", 1)
		q.Add(topic, 1, "alsogood", 1)
	}
	good := trec.NewRun()
	bad := trec.NewRun()
	for topic := 1; topic <= 12; topic++ {
		good.AddRanking(topic, []string{"good", "alsogood"}, "g")
		bad.AddRanking(topic, []string{"x1", "x2", "good"}, "b")
	}
	rg := EvaluateRun("good", good, q, DefaultAlpha, []int{2})
	rb := EvaluateRun("bad", bad, q, DefaultAlpha, []int{2})
	res, err := CompareSignificance(rg, rb, "alpha-ndcg", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.P >= 0.05 {
		t.Errorf("uniformly better system not significant: p = %f", res.P)
	}
}

func TestAlphaNDCGCutoffBeyondPool(t *testing.T) {
	q := twoSubtopicQrels()
	// Cutoff far beyond both the ranking and the judged pool: the value
	// must equal the full-list value, not degrade or panic.
	full := AlphaNDCG([]string{"mixed", "a1", "b1", "a2"}, q, 1, DefaultAlpha, []int{4})
	big := AlphaNDCG([]string{"mixed", "a1", "b1", "a2"}, q, 1, DefaultAlpha, []int{5000})
	if !almostEq(full[4], big[5000], 1e-12) {
		t.Errorf("@4 = %f vs @5000 = %f", full[4], big[5000])
	}
}

func TestAlphaNDCGAlphaOneMaximalNoveltyPressure(t *testing.T) {
	q := twoSubtopicQrels()
	// α = 1: a second document for an already-covered subtopic contributes
	// zero gain, so [a1 a2] at k=2 must score the same as [a1 junk].
	redundant := AlphaNDCG([]string{"a1", "a2"}, q, 1, 1.0, []int{2})
	single := AlphaNDCG([]string{"a1", "junk"}, q, 1, 1.0, []int{2})
	if !almostEq(redundant[2], single[2], 1e-12) {
		t.Errorf("alpha=1: redundant %f != single %f", redundant[2], single[2])
	}
}

func TestIAPrecisionUnsortedCutoffs(t *testing.T) {
	q := twoSubtopicQrels()
	got := IAPrecision([]string{"mixed", "a1"}, q, 1, nil, []int{10, 1, 5})
	if len(got) != 3 {
		t.Fatalf("cutoffs = %v", got)
	}
	if got[1] < got[5] || got[5] < got[10] {
		t.Errorf("precision should not increase with cutoff here: %v", got)
	}
}

func TestSubtopicRecallMonotoneInK(t *testing.T) {
	q := twoSubtopicQrels()
	ranking := []string{"junk", "a1", "junk2", "b1"}
	prev := 0.0
	for k := 1; k <= 4; k++ {
		sr := SubtopicRecall(ranking, q, 1, k)
		if sr < prev {
			t.Fatalf("S-recall decreased at k=%d: %f < %f", k, sr, prev)
		}
		prev = sr
	}
	if prev != 1 {
		t.Errorf("full-list S-recall = %f, want 1", prev)
	}
}
