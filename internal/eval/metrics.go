// Package eval implements the official metrics of the TREC 2009 Web
// track's Diversity Task used in the paper's §5: α-NDCG (Clarke et al.,
// SIGIR'08) and intent-aware precision IA-P (Agrawal et al., WSDM'09),
// plus the classic metrics (Precision@k, AP, NDCG) and the diversity
// extensions ERR-IA and subtopic recall used by the ablation harnesses.
//
// All metrics are computed per topic and averaged over topics by the
// report helpers, following standard TREC practice. As in the paper,
// α-NDCG is computed with α = 0.5 by default, "to give an equal weight to
// relevance and diversity".
package eval

import (
	"math"
	"sort"

	"repro/internal/trec"
)

// DefaultAlpha is the α used throughout the paper's evaluation.
const DefaultAlpha = 0.5

// DefaultCutoffs are the five rank cutoffs of Table 3.
var DefaultCutoffs = []int{5, 10, 20, 100, 1000}

// AlphaNDCG computes α-NDCG at each cutoff for one topic's ranking.
// Gain of the i-th document: Σ_s J(d_i,s) · (1−α)^{c_s(i)}, where c_s(i)
// counts the documents ranked before i that are relevant to subtopic s;
// gains are discounted by log₂(1+rank) and normalized by the ideal gain
// vector obtained greedily over the judged pool (the standard tractable
// approximation of the NP-hard ideal ordering).
//
// Topics with no relevant documents score 0 at every cutoff.
func AlphaNDCG(ranking []string, qrels *trec.Qrels, topic int, alpha float64, cutoffs []int) map[int]float64 {
	out := make(map[int]float64, len(cutoffs))
	maxK := maxCutoff(cutoffs)
	subtopics := qrels.Subtopics(topic)
	if len(subtopics) == 0 {
		for _, k := range cutoffs {
			out[k] = 0
		}
		return out
	}

	dcg := gainVectorDCG(ranking, qrels, topic, subtopics, alpha, maxK)
	idcg := idealDCG(qrels, topic, subtopics, alpha, maxK)

	for _, k := range cutoffs {
		i := k
		if i > len(dcg) {
			i = len(dcg)
		}
		j := k
		if j > len(idcg) {
			j = len(idcg)
		}
		d := lastOrZero(dcg, i)
		id := lastOrZero(idcg, j)
		if id == 0 {
			out[k] = 0
		} else {
			out[k] = d / id
		}
	}
	return out
}

func maxCutoff(cutoffs []int) int {
	m := 0
	for _, k := range cutoffs {
		if k > m {
			m = k
		}
	}
	return m
}

func lastOrZero(cum []float64, i int) float64 {
	if i <= 0 || len(cum) == 0 {
		return 0
	}
	if i > len(cum) {
		i = len(cum)
	}
	return cum[i-1]
}

// gainVectorDCG returns the cumulative discounted gain at each position of
// the ranking (up to maxK).
func gainVectorDCG(ranking []string, qrels *trec.Qrels, topic int, subtopics []int, alpha float64, maxK int) []float64 {
	n := len(ranking)
	if n > maxK {
		n = maxK
	}
	counts := make(map[int]int, len(subtopics))
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		g := 0.0
		for _, s := range subtopics {
			if qrels.Relevant(topic, s, ranking[i]) {
				g += math.Pow(1-alpha, float64(counts[s]))
				counts[s]++
			}
		}
		total += g / math.Log2(float64(i)+2)
		cum[i] = total
	}
	return cum
}

// idealDCG computes the cumulative discounted gain of the greedy ideal
// ranking over the topic's judged pool.
func idealDCG(qrels *trec.Qrels, topic int, subtopics []int, alpha float64, maxK int) []float64 {
	pool := qrels.JudgedPool(topic)
	counts := make(map[int]int, len(subtopics))
	used := make(map[string]bool, len(pool))
	var cum []float64
	total := 0.0
	for pos := 0; pos < maxK && pos < len(pool); pos++ {
		bestDoc := ""
		bestGain := -1.0
		for _, d := range pool {
			if used[d] {
				continue
			}
			g := 0.0
			for _, s := range subtopics {
				if qrels.Relevant(topic, s, d) {
					g += math.Pow(1-alpha, float64(counts[s]))
				}
			}
			if g > bestGain {
				bestGain = g
				bestDoc = d
			}
		}
		if bestDoc == "" || bestGain <= 0 {
			break
		}
		used[bestDoc] = true
		for _, s := range subtopics {
			if qrels.Relevant(topic, s, bestDoc) {
				counts[s]++
			}
		}
		total += bestGain / math.Log2(float64(pos)+2)
		cum = append(cum, total)
	}
	return cum
}

// IAPrecision computes intent-aware precision at each cutoff:
// IA-P@k = Σ_s P(s|q) · P_s@k, where P_s@k is precision at k counting
// only documents relevant to subtopic s. weights maps subtopic → P(s|q);
// nil means the uniform distribution over the topic's judged subtopics
// (standard TREC practice).
func IAPrecision(ranking []string, qrels *trec.Qrels, topic int, weights map[int]float64, cutoffs []int) map[int]float64 {
	out := make(map[int]float64, len(cutoffs))
	subtopics := qrels.Subtopics(topic)
	if len(subtopics) == 0 {
		for _, k := range cutoffs {
			out[k] = 0
		}
		return out
	}
	w := weights
	if w == nil {
		w = make(map[int]float64, len(subtopics))
		for _, s := range subtopics {
			w[s] = 1 / float64(len(subtopics))
		}
	}
	maxK := maxCutoff(cutoffs)
	n := len(ranking)
	if n > maxK {
		n = maxK
	}
	// hits[s] at position i = cumulative count of docs relevant to s.
	sort.Ints(subtopics)
	cum := make(map[int][]int, len(subtopics))
	for _, s := range subtopics {
		c := make([]int, n)
		cnt := 0
		for i := 0; i < n; i++ {
			if qrels.Relevant(topic, s, ranking[i]) {
				cnt++
			}
			c[i] = cnt
		}
		cum[s] = c
	}
	for _, k := range cutoffs {
		iaP := 0.0
		for _, s := range subtopics {
			c := cum[s]
			hits := 0
			if len(c) > 0 {
				i := k
				if i > len(c) {
					i = len(c)
				}
				hits = c[i-1]
			}
			iaP += w[s] * float64(hits) / float64(k)
		}
		out[k] = iaP
	}
	return out
}

// PrecisionAt returns P@k counting documents relevant to any subtopic.
func PrecisionAt(ranking []string, qrels *trec.Qrels, topic, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	n := len(ranking)
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		if qrels.RelevantToAny(topic, ranking[i]) {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// AveragePrecision returns AP over the full ranking, with relevance = any
// subtopic.
func AveragePrecision(ranking []string, qrels *trec.Qrels, topic int) float64 {
	numRel := len(qrels.JudgedPool(topic))
	if numRel == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	for i, d := range ranking {
		if qrels.RelevantToAny(topic, d) {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(numRel)
}

// SubtopicRecall returns S-recall@k: the fraction of the topic's judged
// subtopics covered by at least one relevant document in the top k.
func SubtopicRecall(ranking []string, qrels *trec.Qrels, topic, k int) float64 {
	subtopics := qrels.Subtopics(topic)
	if len(subtopics) == 0 {
		return 0
	}
	n := len(ranking)
	if n > k {
		n = k
	}
	covered := 0
	for _, s := range subtopics {
		for i := 0; i < n; i++ {
			if qrels.Relevant(topic, s, ranking[i]) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(subtopics))
}

// ERRIA computes intent-aware expected reciprocal rank at each cutoff with
// binary judgements (stop probability 0.5 at a relevant document):
// ERR-IA@k = Σ_s w_s Σ_{i≤k} (1/i)·r·Π_{j<i}(1−r_j).
func ERRIA(ranking []string, qrels *trec.Qrels, topic int, weights map[int]float64, cutoffs []int) map[int]float64 {
	const stop = 0.5
	out := make(map[int]float64, len(cutoffs))
	subtopics := qrels.Subtopics(topic)
	if len(subtopics) == 0 {
		for _, k := range cutoffs {
			out[k] = 0
		}
		return out
	}
	w := weights
	if w == nil {
		w = make(map[int]float64, len(subtopics))
		for _, s := range subtopics {
			w[s] = 1 / float64(len(subtopics))
		}
	}
	maxK := maxCutoff(cutoffs)
	n := len(ranking)
	if n > maxK {
		n = maxK
	}
	// perSub[s][i]: cumulative ERR for subtopic s after position i+1.
	perSub := make(map[int][]float64, len(subtopics))
	for _, s := range subtopics {
		cont := 1.0
		cum := make([]float64, n)
		total := 0.0
		for i := 0; i < n; i++ {
			if qrels.Relevant(topic, s, ranking[i]) {
				total += cont * stop / float64(i+1)
				cont *= 1 - stop
			}
			cum[i] = total
		}
		perSub[s] = cum
	}
	for _, k := range cutoffs {
		v := 0.0
		for _, s := range subtopics {
			v += w[s] * lastOrZero(perSub[s], min(k, n))
		}
		out[k] = v
	}
	return out
}
