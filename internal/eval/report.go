package eval

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
	"repro/internal/trec"
)

// Report aggregates per-topic metric values for one run, at the standard
// cutoffs. It is the programmatic form of one row of the paper's Table 3.
type Report struct {
	Name      string
	Cutoffs   []int
	AlphaNDCG map[int]map[int]float64 // cutoff → topic → value
	IAP       map[int]map[int]float64 // cutoff → topic → value
}

// EvaluateRun scores every topic of the run against the qrels and returns
// the per-topic α-NDCG and IA-P values at the given cutoffs (DefaultCutoffs
// if nil).
func EvaluateRun(name string, run *trec.Run, qrels *trec.Qrels, alpha float64, cutoffs []int) *Report {
	if cutoffs == nil {
		cutoffs = DefaultCutoffs
	}
	r := &Report{
		Name:      name,
		Cutoffs:   cutoffs,
		AlphaNDCG: make(map[int]map[int]float64, len(cutoffs)),
		IAP:       make(map[int]map[int]float64, len(cutoffs)),
	}
	for _, k := range cutoffs {
		r.AlphaNDCG[k] = make(map[int]float64)
		r.IAP[k] = make(map[int]float64)
	}
	// Evaluate over the union of qrels topics: topics missing from the run
	// score zero, as in trec_eval -c.
	for _, topic := range qrels.Topics() {
		ranking := run.Ranking(topic)
		and := AlphaNDCG(ranking, qrels, topic, alpha, cutoffs)
		iap := IAPrecision(ranking, qrels, topic, nil, cutoffs)
		for _, k := range cutoffs {
			r.AlphaNDCG[k][topic] = and[k]
			r.IAP[k][topic] = iap[k]
		}
	}
	return r
}

// MeanAlphaNDCG returns the topic-averaged α-NDCG at cutoff k.
func (r *Report) MeanAlphaNDCG(k int) float64 { return meanOver(r.AlphaNDCG[k]) }

// MeanIAP returns the topic-averaged IA-P at cutoff k.
func (r *Report) MeanIAP(k int) float64 { return meanOver(r.IAP[k]) }

func meanOver(m map[int]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	return stats.Mean(vals)
}

// PerTopic returns the per-topic values of the metric ("alpha-ndcg" or
// "ia-p") at cutoff k as aligned slices (sorted by topic), the form the
// Wilcoxon significance test consumes.
func (r *Report) PerTopic(metric string, k int) (topics []int, values []float64) {
	var m map[int]float64
	switch metric {
	case "alpha-ndcg":
		m = r.AlphaNDCG[k]
	case "ia-p":
		m = r.IAP[k]
	default:
		return nil, nil
	}
	topics = make([]int, 0, len(m))
	for t := range m {
		topics = append(topics, t)
	}
	sort.Ints(topics)
	values = make([]float64, len(topics))
	for i, t := range topics {
		values[i] = m[t]
	}
	return topics, values
}

// CompareSignificance runs the Wilcoxon signed-rank test between two
// reports on the given metric and cutoff, returning the p-value. The
// reports must cover the same topics.
func CompareSignificance(a, b *Report, metric string, k int) (stats.WilcoxonResult, error) {
	_, va := a.PerTopic(metric, k)
	_, vb := b.PerTopic(metric, k)
	return stats.Wilcoxon(va, vb)
}

// WriteTable writes the report means in the layout of the paper's Table 3
// row: α-NDCG at each cutoff, then IA-P at each cutoff.
func (r *Report) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-24s", r.Name); err != nil {
		return err
	}
	for _, k := range r.Cutoffs {
		if _, err := fmt.Fprintf(w, " %6.3f", r.MeanAlphaNDCG(k)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, " |"); err != nil {
		return err
	}
	for _, k := range r.Cutoffs {
		if _, err := fmt.Fprintf(w, " %6.3f", r.MeanIAP(k)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
