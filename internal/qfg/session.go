package qfg

import (
	"time"

	"repro/internal/querylog"
)

// Session is a logical user session: a maximal run of one user's
// chronological submissions in which every consecutive pair is chained
// (same search mission) according to the query-flow-graph model.
type Session struct {
	User    string
	Records []querylog.Record
}

// Start returns the session's first submission time.
func (s Session) Start() time.Time {
	if len(s.Records) == 0 {
		return time.Time{}
	}
	return s.Records[0].Time
}

// Queries returns the session's query strings in order.
func (s Session) Queries() []string {
	qs := make([]string, len(s.Records))
	for i, r := range s.Records {
		qs[i] = r.Query
	}
	return qs
}

// Satisfactory reports whether the session ends with a click — the
// "successful session" signal the search-shortcuts recommender trains on.
func (s Session) Satisfactory() bool {
	return len(s.Records) > 0 && len(s.Records[len(s.Records)-1].Clicks) > 0
}

// ExtractSessions splits every user stream of the log into logical
// sessions: a cut is placed between consecutive submissions whenever their
// chaining probability falls below opts.ChainThreshold (or the time gap
// exceeds opts.MaxGap). This realizes the paper's §3 preprocessing step:
// "by processing a query log Q we obtain the set of logical user sessions
// exploited by our result diversification solution."
func ExtractSessions(log *querylog.Log, opts Options) []Session {
	opts = opts.withDefaults()
	var sessions []Session
	for _, stream := range log.UserStreams() {
		start := 0
		for i := 1; i <= len(stream); i++ {
			cut := i == len(stream)
			if !cut {
				prev, cur := stream[i-1], stream[i]
				p := ChainProbability(prev.Query, cur.Query, cur.Time.Sub(prev.Time), opts)
				cut = p < opts.ChainThreshold
			}
			if cut {
				sessions = append(sessions, Session{
					User:    stream[start].User,
					Records: stream[start:i],
				})
				start = i
			}
		}
	}
	return sessions
}

// SessionStats summarizes extracted sessions.
type SessionStats struct {
	Sessions       int
	MeanLength     float64
	Satisfactory   int
	MultiQuery     int // sessions with at least two queries
	Reformulations int // total consecutive in-session query pairs
}

// ComputeSessionStats aggregates statistics over sessions.
func ComputeSessionStats(sessions []Session) SessionStats {
	var st SessionStats
	st.Sessions = len(sessions)
	if len(sessions) == 0 {
		return st
	}
	totalLen := 0
	for _, s := range sessions {
		totalLen += len(s.Records)
		if s.Satisfactory() {
			st.Satisfactory++
		}
		if len(s.Records) > 1 {
			st.MultiQuery++
			st.Reformulations += len(s.Records) - 1
		}
	}
	st.MeanLength = float64(totalLen) / float64(len(sessions))
	return st
}
