package qfg

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/querylog"
)

func at(min int) time.Time {
	return time.Date(2006, 3, 1, 10, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute)
}

func rec(user string, min int, q string, clicks ...string) querylog.Record {
	return querylog.Record{User: user, Time: at(min), Query: q, Clicks: clicks}
}

func TestChainProbabilitySpecialization(t *testing.T) {
	opts := DefaultOptions()
	// A refinement seconds later must chain with high probability.
	p := ChainProbability("leopard", "leopard tank", 30*time.Second, opts)
	if p < 0.8 {
		t.Errorf("specialization chain prob = %f, want >= 0.8", p)
	}
	// Unrelated queries 20 minutes apart must not chain.
	p = ChainProbability("leopard", "cheap flights rome", 20*time.Minute, opts)
	if p > 0.3 {
		t.Errorf("unrelated chain prob = %f, want <= 0.3", p)
	}
}

func TestChainProbabilityMaxGap(t *testing.T) {
	opts := DefaultOptions()
	if p := ChainProbability("a b", "a b c", 27*time.Minute, opts); p != 0 {
		t.Errorf("beyond MaxGap prob = %f, want 0", p)
	}
	// Negative gaps (clock skew) are treated as their magnitude.
	p1 := ChainProbability("a b", "a b c", time.Minute, opts)
	p2 := ChainProbability("a b", "a b c", -time.Minute, opts)
	if p1 != p2 {
		t.Errorf("negative gap handled asymmetrically: %f vs %f", p1, p2)
	}
}

func TestChainProbabilityMonotoneInGap(t *testing.T) {
	opts := DefaultOptions()
	prev := math.Inf(1)
	for _, m := range []int{0, 2, 5, 10, 15, 20, 25} {
		p := ChainProbability("apple", "apple ipod", time.Duration(m)*time.Minute, opts)
		if p > prev {
			t.Errorf("chain prob increased with gap at %dm: %f > %f", m, p, prev)
		}
		prev = p
	}
}

func buildTestLog() *querylog.Log {
	return querylog.New([]querylog.Record{
		// u1: one session: leopard -> leopard tank (refinement, clicked).
		rec("u1", 0, "leopard"),
		rec("u1", 1, "leopard tank", "url1"),
		// u1: new mission after 60 min.
		rec("u1", 61, "banana bread recipe", "url2"),
		// u2: leopard -> leopard mac os x.
		rec("u2", 0, "leopard"),
		rec("u2", 2, "leopard mac os x", "url3"),
		// u3: same transition as u2 again.
		rec("u3", 5, "leopard"),
		rec("u3", 6, "leopard mac os x"),
		// u4: no reformulation.
		rec("u4", 0, "weather boston"),
	})
}

func TestBuildGraph(t *testing.T) {
	g := Build(buildTestLog(), DefaultOptions())
	// Distinct queries: leopard, leopard tank, banana bread recipe,
	// leopard mac os x, weather boston.
	if g.Nodes() != 5 {
		t.Errorf("nodes = %d, want 5", g.Nodes())
	}
	if g.NodeFreq("leopard") != 3 {
		t.Errorf("freq(leopard) = %d, want 3", g.NodeFreq("leopard"))
	}
	succ := g.Successors("leopard")
	if len(succ) != 2 {
		t.Fatalf("successors = %v, want 2 edges", succ)
	}
	// mac os x observed twice, tank once.
	if succ[0].To != "leopard mac os x" || succ[0].Count != 2 {
		t.Errorf("top successor = %+v", succ[0])
	}
	if succ[1].To != "leopard tank" || succ[1].Count != 1 {
		t.Errorf("second successor = %+v", succ[1])
	}
}

func TestTransitionProb(t *testing.T) {
	g := Build(buildTestLog(), DefaultOptions())
	pMac := g.TransitionProb("leopard", "leopard mac os x")
	pTank := g.TransitionProb("leopard", "leopard tank")
	if pMac <= pTank {
		t.Errorf("P(mac|leopard)=%f should exceed P(tank|leopard)=%f", pMac, pTank)
	}
	if d := pMac + pTank; math.Abs(d-1) > 1e-12 {
		t.Errorf("outgoing probabilities sum to %f, want 1", d)
	}
	if g.TransitionProb("leopard", "weather boston") != 0 {
		t.Error("nonexistent edge has probability > 0")
	}
	if g.TransitionProb("no such node", "x") != 0 {
		t.Error("unknown node has probability > 0")
	}
}

func TestWalkDistribution(t *testing.T) {
	g := Build(buildTestLog(), DefaultOptions())
	d0 := g.WalkDistribution("leopard", 0)
	if d0["leopard"] != 1 {
		t.Errorf("step-0 distribution = %v", d0)
	}
	d1 := g.WalkDistribution("leopard", 1)
	total := 0.0
	for _, p := range d1 {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("distribution mass = %f, want 1", total)
	}
	if d1["leopard mac os x"] <= d1["leopard tank"] {
		t.Errorf("walk does not favour popular path: %v", d1)
	}
	// Absorbing: leaf nodes keep their mass.
	d5 := g.WalkDistribution("leopard", 5)
	total = 0.0
	for _, p := range d5 {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("step-5 mass = %f, want 1", total)
	}
}

func TestExtractSessions(t *testing.T) {
	sessions := ExtractSessions(buildTestLog(), DefaultOptions())
	// u1: 2 sessions; u2: 1; u3: 1; u4: 1.
	if len(sessions) != 5 {
		t.Fatalf("sessions = %d, want 5: %+v", len(sessions), sessions)
	}
	var u1First Session
	for _, s := range sessions {
		if s.User == "u1" && len(s.Records) == 2 {
			u1First = s
		}
	}
	if u1First.User != "u1" {
		t.Fatal("u1's refinement session not found")
	}
	qs := u1First.Queries()
	if qs[0] != "leopard" || qs[1] != "leopard tank" {
		t.Errorf("u1 session queries = %v", qs)
	}
	if !u1First.Satisfactory() {
		t.Error("clicked session not satisfactory")
	}
}

func TestSessionTimeoutCuts(t *testing.T) {
	l := querylog.New([]querylog.Record{
		rec("u", 0, "apple iphone"),
		rec("u", 40, "apple iphone price"), // 40 min gap: beyond MaxGap
	})
	sessions := ExtractSessions(l, DefaultOptions())
	if len(sessions) != 2 {
		t.Errorf("sessions = %d, want 2 (timeout must cut)", len(sessions))
	}
}

func TestComputeSessionStats(t *testing.T) {
	sessions := ExtractSessions(buildTestLog(), DefaultOptions())
	st := ComputeSessionStats(sessions)
	if st.Sessions != 5 {
		t.Errorf("Sessions = %d", st.Sessions)
	}
	if st.MultiQuery != 3 {
		t.Errorf("MultiQuery = %d, want 3", st.MultiQuery)
	}
	if st.Reformulations != 3 {
		t.Errorf("Reformulations = %d, want 3", st.Reformulations)
	}
	if st.MeanLength <= 1 || st.MeanLength > 2 {
		t.Errorf("MeanLength = %f", st.MeanLength)
	}
	if st.Satisfactory < 2 {
		t.Errorf("Satisfactory = %d, want >= 2", st.Satisfactory)
	}
	empty := ComputeSessionStats(nil)
	if empty.Sessions != 0 || empty.MeanLength != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestSessionAccessorsEmpty(t *testing.T) {
	var s Session
	if !s.Start().IsZero() {
		t.Error("empty session start not zero")
	}
	if s.Satisfactory() {
		t.Error("empty session satisfactory")
	}
	if len(s.Queries()) != 0 {
		t.Error("empty session has queries")
	}
}

// Property: chaining probability is always a valid probability and
// respects the hard MaxGap cutoff, for arbitrary query strings and gaps.
func TestChainProbabilityRangeProperty(t *testing.T) {
	opts := DefaultOptions()
	prop := func(q1, q2 string, gapSec int32) bool {
		gap := time.Duration(gapSec) * time.Second
		p := ChainProbability(q1, q2, gap, opts)
		if p < 0 || p > 1 {
			return false
		}
		abs := gap
		if abs < 0 {
			abs = -abs
		}
		if abs > opts.MaxGap && p != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Sessions partition the log: every record appears in exactly one session,
// in its original per-user order.
func TestExtractSessionsPartition(t *testing.T) {
	l := buildTestLog()
	sessions := ExtractSessions(l, DefaultOptions())
	total := 0
	perUser := map[string][]string{}
	for _, s := range sessions {
		total += len(s.Records)
		for _, r := range s.Records {
			perUser[s.User] = append(perUser[s.User], r.Query)
		}
	}
	if total != l.Len() {
		t.Fatalf("sessions cover %d records, log has %d", total, l.Len())
	}
	for _, stream := range l.UserStreams() {
		want := make([]string, len(stream))
		for i, r := range stream {
			want[i] = r.Query
		}
		got := perUser[stream[0].User]
		if len(got) != len(want) {
			t.Fatalf("user %s: %v vs %v", stream[0].User, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %s order broken at %d", stream[0].User, i)
			}
		}
	}
}
