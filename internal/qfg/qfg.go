// Package qfg implements the Query-Flow Graph of Boldi et al. (CIKM'08),
// the session-splitting substrate §3 of the paper relies on: "It consists
// of building a Markov Chain model of the query log and subsequently
// finding paths in the graph which are more likely to be followed by
// random surfers. As a result, by processing a query log Q we obtain the
// set of logical user sessions."
//
// Nodes are normalized queries; a directed edge (q, q') aggregates the
// occurrences of q' immediately following q in some user's stream, weighted
// by a chaining probability estimated from textual and temporal features.
// Logical sessions are obtained by cutting each user's chronological stream
// wherever the chaining probability drops below a threshold.
package qfg

import (
	"math"
	"sort"
	"time"

	"repro/internal/querylog"
	"repro/internal/text"
	"repro/internal/textsim"
)

// Options configures graph construction and session extraction.
type Options struct {
	// MaxGap is a hard session cutoff: consecutive submissions farther
	// apart than this can never be chained. The default (26 minutes) is
	// the standard timeout from the session-splitting literature.
	MaxGap time.Duration
	// ChainThreshold is the minimum chaining probability for two
	// consecutive queries to stay in the same logical session.
	ChainThreshold float64
	// TimeDecay is the time constant τ of the temporal feature
	// exp(−gap/τ). Default 10 minutes.
	TimeDecay time.Duration
}

// DefaultOptions returns the configuration used throughout the
// reproduction experiments.
func DefaultOptions() Options {
	return Options{
		MaxGap:         26 * time.Minute,
		ChainThreshold: 0.5,
		TimeDecay:      10 * time.Minute,
	}
}

func (o Options) withDefaults() Options {
	if o.MaxGap == 0 {
		o.MaxGap = 26 * time.Minute
	}
	if o.ChainThreshold == 0 {
		o.ChainThreshold = 0.5
	}
	if o.TimeDecay == 0 {
		o.TimeDecay = 10 * time.Minute
	}
	return o
}

// ChainProbability estimates the probability that q2 continues the same
// search mission as q1 when submitted gap after it. It is a transparent
// logistic model over three features: term-set Jaccard overlap, term
// containment (every q1 term appears in q2 — the specialization signal),
// and an exponential time decay. Boldi et al. learn such a model from
// labelled sessions; the hand-set weights below reproduce the same
// qualitative behaviour and are fixed constants of this reproduction.
func ChainProbability(q1, q2 string, gap time.Duration, opts Options) float64 {
	opts = opts.withDefaults()
	if gap < 0 {
		gap = -gap
	}
	if gap > opts.MaxGap {
		return 0
	}
	t1, t2 := text.Tokenize(q1), text.Tokenize(q2)
	jac := textsim.JaccardTokens(t1, t2)
	contain := 0.0
	if containsAll(t2, t1) && len(t1) > 0 {
		contain = 1
	}
	decay := math.Exp(-float64(gap) / float64(opts.TimeDecay))

	score := -2.2 + 3.5*jac + 2.0*contain + 2.2*decay
	return 1 / (1 + math.Exp(-score))
}

// containsAll reports whether every token of needles occurs in haystack.
func containsAll(haystack, needles []string) bool {
	set := make(map[string]bool, len(haystack))
	for _, t := range haystack {
		set[t] = true
	}
	for _, t := range needles {
		if !set[t] {
			return false
		}
	}
	return true
}

// Edge is an aggregated, weighted transition of the query-flow graph.
type Edge struct {
	From   string
	To     string
	Count  int     // number of observed q→q' consecutive pairs
	Weight float64 // mean chaining probability over those pairs
}

// Graph is the query-flow graph: a Markov-chain model over queries.
type Graph struct {
	adj      map[string]map[string]*edgeAccum
	nodeFreq map[string]int
}

type edgeAccum struct {
	count     int
	weightSum float64
}

// Build constructs the query-flow graph from the log.
func Build(log *querylog.Log, opts Options) *Graph {
	opts = opts.withDefaults()
	g := &Graph{
		adj:      make(map[string]map[string]*edgeAccum),
		nodeFreq: make(map[string]int),
	}
	for _, stream := range log.UserStreams() {
		for i, r := range stream {
			g.nodeFreq[r.Query]++
			if i == 0 {
				continue
			}
			prev := stream[i-1]
			if prev.Query == r.Query {
				continue // resubmission, not a transition
			}
			p := ChainProbability(prev.Query, r.Query, r.Time.Sub(prev.Time), opts)
			if p <= 0 {
				continue
			}
			row := g.adj[prev.Query]
			if row == nil {
				row = make(map[string]*edgeAccum)
				g.adj[prev.Query] = row
			}
			acc := row[r.Query]
			if acc == nil {
				acc = &edgeAccum{}
				row[r.Query] = acc
			}
			acc.count++
			acc.weightSum += p
		}
	}
	return g
}

// Nodes returns the number of distinct queries observed.
func (g *Graph) Nodes() int { return len(g.nodeFreq) }

// NodeFreq returns the submission count of q.
func (g *Graph) NodeFreq(q string) int { return g.nodeFreq[q] }

// Successors returns the outgoing edges of q, ordered by descending count
// (then weight, then target string for determinism).
func (g *Graph) Successors(q string) []Edge {
	row := g.adj[q]
	if len(row) == 0 {
		return nil
	}
	edges := make([]Edge, 0, len(row))
	for to, acc := range row {
		edges = append(edges, Edge{
			From:   q,
			To:     to,
			Count:  acc.count,
			Weight: acc.weightSum / float64(acc.count),
		})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Count != edges[j].Count {
			return edges[i].Count > edges[j].Count
		}
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight > edges[j].Weight
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// TransitionProb returns the Markov-chain transition probability P(to|from):
// the chain-weighted edge count normalized over all outgoing edges of from.
func (g *Graph) TransitionProb(from, to string) float64 {
	row := g.adj[from]
	if len(row) == 0 {
		return 0
	}
	total := 0.0
	for _, acc := range row {
		total += acc.weightSum
	}
	acc := row[to]
	if acc == nil || total == 0 {
		return 0
	}
	return acc.weightSum / total
}

// WalkDistribution returns the probability of the random surfer being at
// each node after exactly steps transitions starting from q, following the
// Markov chain (mass at absorbing nodes stays put). This is the "paths
// more likely to be followed by random surfers" view of the graph.
func (g *Graph) WalkDistribution(q string, steps int) map[string]float64 {
	cur := map[string]float64{q: 1}
	for s := 0; s < steps; s++ {
		next := make(map[string]float64, len(cur))
		for node, mass := range cur {
			row := g.adj[node]
			if len(row) == 0 {
				next[node] += mass
				continue
			}
			total := 0.0
			for _, acc := range row {
				total += acc.weightSum
			}
			for to, acc := range row {
				next[to] += mass * acc.weightSum / total
			}
		}
		cur = next
	}
	return cur
}
