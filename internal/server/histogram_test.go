package server

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := &latencyHistogram{}
	h.observe(300 * time.Microsecond) // ≤0.5ms bucket
	h.observe(3 * time.Millisecond)   // ≤5ms bucket
	h.observe(3 * time.Millisecond)
	h.observe(10 * time.Second) // overflow

	s := h.snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if len(s.Buckets) != numLatencyBuckets {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), numLatencyBuckets)
	}
	// Cumulative counts must be monotone and end at the total.
	prev := int64(0)
	for i, b := range s.Buckets {
		if b.Count < prev {
			t.Errorf("bucket %d count %d below previous %d", i, b.Count, prev)
		}
		prev = b.Count
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Count != 4 || last.LeMs != -1 {
		t.Errorf("overflow bucket = %+v", last)
	}
	// 0.3ms lands in the ≤0.5 bucket: its cumulative count is 1.
	if s.Buckets[1].Count != 1 {
		t.Errorf("≤0.5ms cumulative = %d, want 1", s.Buckets[1].Count)
	}
	// The p50 must fall inside the (2, 5] bucket holding observations 2–3.
	if s.P50Ms <= 2 || s.P50Ms > 5 {
		t.Errorf("p50 = %f, want in (2, 5]", s.P50Ms)
	}
	// p99 lands in the overflow bucket, reported as the largest edge.
	if s.P99Ms != latencyBucketEdgesMs[len(latencyBucketEdgesMs)-1] {
		t.Errorf("p99 = %f, want %f", s.P99Ms, latencyBucketEdgesMs[len(latencyBucketEdgesMs)-1])
	}
	if s.AvgMs <= 0 {
		t.Errorf("avg = %f", s.AvgMs)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &latencyHistogram{}
	s := h.snapshot()
	if s.Count != 0 || s.P50Ms != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &latencyHistogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.observe(time.Duration(i%40) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := h.snapshot(); s.Count != 8000 {
		t.Errorf("Count = %d, want 8000", s.Count)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// All mass in one bucket: quantiles stay inside its edges.
	var counts [numLatencyBuckets]int64
	counts[4] = 100 // the (2, 5] bucket
	for _, q := range []float64{0.1, 0.5, 0.99} {
		v := quantileFromBuckets(counts[:], 100, q)
		if v <= 2 || v > 5 {
			t.Errorf("q=%.2f: %f outside (2, 5]", q, v)
		}
	}
}
