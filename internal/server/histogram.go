package server

import (
	"sync/atomic"
	"time"
)

// latencyBucketEdgesMs are the upper edges (milliseconds, inclusive) of
// the latency histogram buckets — log-spaced from 0.25ms to 2s, the
// range a diversification request can realistically land in (the sub-ms
// edges resolve cache hits and the cheap endpoints). A final implicit
// overflow bucket catches everything slower.
var latencyBucketEdgesMs = [...]float64{0.25, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}

const numLatencyBuckets = len(latencyBucketEdgesMs) + 1 // + overflow

// latencyHistogram is a fixed-bucket log-scale histogram with atomic
// counters: recording is a bucket scan plus one atomic add, cheap enough
// for every request on every endpoint. Future perf PRs read the
// per-endpoint percentiles off /stats instead of re-deriving them from
// load-generator logs.
type latencyHistogram struct {
	counts [numLatencyBuckets]atomic.Int64
	nanos  atomic.Int64
}

// observe records one request duration.
func (h *latencyHistogram) observe(d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	i := 0
	for i < len(latencyBucketEdgesMs) && ms > latencyBucketEdgesMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.nanos.Add(d.Nanoseconds())
}

// LatencyBucket is one cumulative histogram bucket of a stats response:
// the number of requests that took at most LeMs milliseconds. The
// overflow bucket is reported with LeMs = -1 (read: +Inf).
type LatencyBucket struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// LatencyStats is the per-endpoint latency section of a stats response.
// Percentiles are estimated by linear interpolation inside the containing
// bucket; a percentile landing in the overflow bucket has no finite edge
// to interpolate toward and reports the largest finite edge instead —
// biased low, read it as "at least that". See the /stats section of
// docs/ARCHITECTURE.md.
type LatencyStats struct {
	Count   int64           `json:"count"`
	AvgMs   float64         `json:"avg_ms"`
	P50Ms   float64         `json:"p50_ms"`
	P95Ms   float64         `json:"p95_ms"`
	P99Ms   float64         `json:"p99_ms"`
	Buckets []LatencyBucket `json:"buckets"`
}

// snapshot freezes the histogram into its wire form.
func (h *latencyHistogram) snapshot() LatencyStats {
	var counts [numLatencyBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	out := LatencyStats{Count: total}
	if total == 0 {
		return out
	}
	out.AvgMs = float64(h.nanos.Load()) / float64(total) / 1e6
	out.P50Ms = quantileFromBuckets(counts[:], total, 0.50)
	out.P95Ms = quantileFromBuckets(counts[:], total, 0.95)
	out.P99Ms = quantileFromBuckets(counts[:], total, 0.99)
	out.Buckets = make([]LatencyBucket, 0, numLatencyBuckets)
	cum := int64(0)
	for i, c := range counts {
		cum += c
		le := -1.0
		if i < len(latencyBucketEdgesMs) {
			le = latencyBucketEdgesMs[i]
		}
		out.Buckets = append(out.Buckets, LatencyBucket{LeMs: le, Count: cum})
	}
	return out
}

// quantileFromBuckets estimates the q-quantile by locating the bucket
// holding the q·total-th observation and interpolating linearly between
// its edges.
func quantileFromBuckets(counts []int64, total int64, q float64) float64 {
	target := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		if float64(cum+c) < target {
			cum += c
			continue
		}
		if i >= len(latencyBucketEdgesMs) {
			// Overflow bucket: no finite upper edge to interpolate toward.
			return latencyBucketEdgesMs[len(latencyBucketEdgesMs)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = latencyBucketEdgesMs[i-1]
		}
		hi := latencyBucketEdgesMs[i]
		if c == 0 {
			return hi
		}
		frac := (target - float64(cum)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return latencyBucketEdgesMs[len(latencyBucketEdgesMs)-1]
}
