package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/synth"
)

// The live-mutation endpoint tests build their OWN pipeline: the shared
// testPipe is read-only by contract, and these tests delete and ingest
// documents.
func newLiveServer(t *testing.T) (*Server, *httptest.Server, *repro.Pipeline) {
	t.Helper()
	p, err := repro.Build(repro.Config{
		Corpus: synth.CorpusSpec{
			Seed:                21,
			NumTopics:           4,
			MinSubtopics:        2,
			MaxSubtopics:        3,
			DocsPerSubtopic:     8,
			GenericDocsPerTopic: 4,
			NoiseDocs:           50,
			DocLength:           40,
			BackgroundVocab:     300,
			TopicVocab:          10,
			SubtopicVocab:       8,
		},
		Log:           synth.AOLLike(22, 1500),
		NumCandidates: 80,
		PerSpec:       10,
		K:             10,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(p.NewServeHandle(128, 4), Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, p
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding POST %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServerDeleteInvalidatesCachedSearch drives satellite scenario 4 end
// to end over HTTP: a cached SERP from epoch N must not be served after a
// delete bumps the engine to N+1, and the deleted document must vanish
// from the response.
func TestServerDeleteInvalidatesCachedSearch(t *testing.T) {
	_, ts, p := newLiveServer(t)
	q := p.Testbed.TopicQuery(1)

	var first SearchResponse
	if code := getJSON(t, searchURL(ts.URL, q, nil), &first); code != http.StatusOK {
		t.Fatalf("first search: status %d", code)
	}
	if first.CacheHit {
		t.Fatal("cold search reported cache_hit")
	}
	if len(first.Results) == 0 {
		t.Fatal("no results for a topic query")
	}
	var warm SearchResponse
	getJSON(t, searchURL(ts.URL, q, nil), &warm)
	if !warm.CacheHit {
		t.Fatal("repeat search did not hit the cache")
	}

	victim := first.Results[0].ID
	var mut MutationResponse
	if code := postJSON(t, ts.URL+"/delete", DeleteRequest{ID: victim}, &mut); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if mut.Deleted == nil || !*mut.Deleted {
		t.Fatalf("delete of served doc %s reported %+v", victim, mut)
	}

	var after SearchResponse
	getJSON(t, searchURL(ts.URL, q, nil), &after)
	if after.CacheHit {
		t.Fatal("search after delete served the stale cached epoch")
	}
	for _, r := range after.Results {
		if r.ID == victim {
			t.Fatalf("deleted doc %s still in the SERP", victim)
		}
	}

	// Deleting a non-existent ID is a well-formed no-op, not an error.
	if code := postJSON(t, ts.URL+"/delete", DeleteRequest{ID: "no-such-doc"}, &mut); code != http.StatusOK {
		t.Fatalf("delete miss: status %d", code)
	}
	if mut.Deleted == nil || *mut.Deleted {
		t.Fatalf("delete miss reported %+v", mut)
	}
}

// TestServerMutationLifecycle walks ingest → flush → compact over HTTP and
// checks monotone epochs, the /stats live section, and the mutation
// counters.
func TestServerMutationLifecycle(t *testing.T) {
	_, ts, p := newLiveServer(t)

	var st0 StatsResponse
	getJSON(t, ts.URL+"/stats", &st0)
	if st0.Ingests != 0 || st0.Deletes != 0 {
		t.Fatalf("fresh server has mutation counters %d/%d", st0.Ingests, st0.Deletes)
	}
	docsBefore := p.Engine.NumDocs()

	var ing MutationResponse
	if code := postJSON(t, ts.URL+"/ingest", IngestRequest{ID: "live-1", Title: "live one", Body: "completely fresh streamed document"}, &ing); code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	if ing.Epoch == 0 {
		t.Fatal("ingest did not advance the epoch")
	}

	var fl MutationResponse
	if code := postJSON(t, ts.URL+"/flush", nil, &fl); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}
	if fl.Epoch <= ing.Epoch {
		t.Fatalf("flush epoch %d not after ingest epoch %d", fl.Epoch, ing.Epoch)
	}

	var cp MutationResponse
	if code := postJSON(t, ts.URL+"/compact", nil, &cp); code != http.StatusOK {
		t.Fatalf("compact: status %d", code)
	}
	if cp.Epoch <= fl.Epoch {
		t.Fatalf("compact epoch %d not after flush epoch %d", cp.Epoch, fl.Epoch)
	}

	// Malformed requests are rejected without touching the engine.
	if code := postJSON(t, ts.URL+"/ingest", IngestRequest{Title: "no id"}, nil); code != http.StatusBadRequest {
		t.Fatalf("ingest without id: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/delete", DeleteRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("delete without id: status %d, want 400", code)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Ingests != 1 || st.Deletes != 0 {
		t.Errorf("ingests/deletes = %d/%d, want 1/0", st.Ingests, st.Deletes)
	}
	if st.Live.Epoch != cp.Epoch {
		t.Errorf("stats live epoch %d, want %d", st.Live.Epoch, cp.Epoch)
	}
	if st.Live.Segments != 1 || st.Live.MemDocs != 0 || st.Live.Tombstones != 0 {
		t.Errorf("not quiesced after compaction: %+v", st.Live)
	}
	if want := docsBefore + 1; st.Live.LiveDocs != want {
		t.Errorf("live docs = %d, want %d", st.Live.LiveDocs, want)
	}

	// The ingested document is actually searchable through the SERP path.
	var sr SearchResponse
	getJSON(t, searchURL(ts.URL, "completely fresh streamed document", nil), &sr)
	found := false
	for _, r := range sr.Results {
		if r.ID == "live-1" {
			found = true
		}
	}
	if !found {
		t.Error("ingested doc live-1 not retrievable via /search")
	}
}
