package server

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/synth"
)

var (
	testPipe     *repro.Pipeline
	testPipeOnce sync.Once
)

// testPipeline builds one small shared pipeline; server tests only read it.
func testPipeline(t testing.TB) *repro.Pipeline {
	t.Helper()
	testPipeOnce.Do(func() {
		p, err := repro.Build(repro.Config{
			Corpus: synth.CorpusSpec{
				Seed:                11,
				NumTopics:           6,
				MinSubtopics:        2,
				MaxSubtopics:        4,
				DocsPerSubtopic:     10,
				GenericDocsPerTopic: 5,
				NoiseDocs:           100,
				DocLength:           40,
				BackgroundVocab:     400,
				TopicVocab:          10,
				SubtopicVocab:       8,
			},
			Log:           synth.AOLLike(12, 2500),
			NumCandidates: 100,
			PerSpec:       10,
			K:             10,
		})
		if err != nil {
			t.Fatal(err)
		}
		testPipe = p
	})
	return testPipe
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	p := testPipeline(t)
	srv := New(p.NewServeHandle(256, 4), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// searchURL builds a correctly escaped /search URL.
func searchURL(base, q string, extra url.Values) string {
	v := url.Values{"q": {q}}
	for key, vals := range extra {
		v[key] = vals
	}
	return base + "/search?" + v.Encode()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(out)
	io.Copy(io.Discard, resp.Body) // drain so the keep-alive conn is reused
	if err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestSearchEndpoint(t *testing.T) {
	p := testPipeline(t)
	_, ts := newTestServer(t, Config{})
	q := p.Testbed.TopicQuery(1)

	var got SearchResponse
	code := getJSON(t, searchURL(ts.URL, q, url.Values{"k": {"5"}, "alg": {"optselect"}}), &got)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if got.CacheHit {
		t.Error("first request should be a cache miss")
	}
	if !got.Ambiguous || len(got.Specializations) < 2 {
		t.Fatalf("topic query should be ambiguous: %+v", got)
	}
	if len(got.Results) != 5 {
		t.Fatalf("len(results) = %d, want 5", len(got.Results))
	}

	// The served SERP must match the facade's cached answer exactly.
	want, _, _ := p.NewServeHandle(16, 1).DiversifyCachedK(q, core.AlgOptSelect, 5)
	for i, sel := range want {
		if got.Results[i].ID != sel.ID || got.Results[i].Score != sel.Score {
			t.Fatalf("result %d: got %+v, want %+v", i, got.Results[i], sel)
		}
	}

	// Repeat: same SERP, served from cache.
	var again SearchResponse
	getJSON(t, searchURL(ts.URL, q, url.Values{"k": {"5"}, "alg": {"optselect"}}), &again)
	if !again.CacheHit {
		t.Error("repeat request should hit the cache")
	}
	for i := range got.Results {
		if got.Results[i] != again.Results[i] {
			t.Fatalf("cached SERP differs at %d", i)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/search", http.StatusBadRequest},               // missing q
		{"/search?q=x&k=0", http.StatusBadRequest},       // bad k
		{"/search?q=x&k=nope", http.StatusBadRequest},    // bad k
		{"/search?q=x&alg=bogus", http.StatusBadRequest}, // bad alg
		{"/search?q=topic01&alg=xquad", http.StatusOK},   // fine
		{"/missing", http.StatusNotFound},                // unknown route
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}
}

func TestHealthzAndQueries(t *testing.T) {
	p := testPipeline(t)
	_, ts := newTestServer(t, Config{})

	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if health.Status != "ok" || health.Docs == 0 || health.Topics != len(p.Testbed.Topics) {
		t.Fatalf("healthz = %+v", health)
	}

	var queries QueriesResponse
	getJSON(t, ts.URL+"/queries", &queries)
	if len(queries.Queries) <= len(p.Testbed.Topics) {
		t.Fatalf("queries should include topics plus noise, got %d", len(queries.Queries))
	}
	if queries.Queries[0] != p.Testbed.Topics[0].Query {
		t.Errorf("queries[0] = %q, want most popular topic %q", queries.Queries[0], p.Testbed.Topics[0].Query)
	}
}

func TestStatsCounters(t *testing.T) {
	p := testPipeline(t)
	_, ts := newTestServer(t, Config{})
	q := p.Testbed.TopicQuery(2)
	for i := 0; i < 3; i++ {
		var sr SearchResponse
		getJSON(t, searchURL(ts.URL, q, nil), &sr)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Searches != 3 || st.Requests != 3 {
		t.Fatalf("searches/requests = %d/%d, want 3/3", st.Searches, st.Requests)
	}
	if st.CacheHits != 2 || st.Cache.Hits != 2 || st.Cache.Misses != 1 {
		t.Fatalf("cache hits/misses = %d (%d/%d), want 2 (2/1)", st.CacheHits, st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.HitRate <= 0 {
		t.Error("hit rate should be positive")
	}
	if st.InFlight != 0 {
		t.Errorf("in_flight = %d at rest", st.InFlight)
	}
	// Per-endpoint latency histograms: /search observed the 3 searches.
	search, ok := st.Latency["/search"]
	if !ok {
		t.Fatalf("no /search latency in stats: %v", st.Latency)
	}
	if search.Count != 3 {
		t.Errorf("/search latency count = %d, want 3", search.Count)
	}
	if search.P50Ms <= 0 || search.P99Ms < search.P50Ms {
		t.Errorf("implausible percentiles: p50=%f p99=%f", search.P50Ms, search.P99Ms)
	}
	if len(search.Buckets) == 0 ||
		search.Buckets[len(search.Buckets)-1].Count != search.Count {
		t.Errorf("cumulative buckets malformed: %+v", search.Buckets)
	}
	// /stats instruments itself too (this very request is its first).
	if _, ok := st.Latency["/stats"]; !ok {
		t.Error("no /stats latency histogram")
	}
}

// TestConcurrentLoad hammers the server with a skewed mix across all
// algorithms (run with -race): every response must be well-formed and the
// counters must reconcile afterwards.
func TestConcurrentLoad(t *testing.T) {
	p := testPipeline(t)
	srv, ts := newTestServer(t, Config{Workers: 4})

	var queries []string
	for _, topic := range p.Testbed.Topics {
		queries = append(queries, topic.Query)
	}
	queries = append(queries, "noise query 0001", "unseen phrase entirely")
	algs := []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect, core.AlgBaseline}

	const workers = 8
	const perWorker = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				q := queries[rng.Intn(len(queries))]
				alg := algs[rng.Intn(len(algs))]
				var sr SearchResponse
				code := getJSON(t, searchURL(ts.URL, q, url.Values{"alg": {string(alg)}}), &sr)
				if code != http.StatusOK {
					t.Errorf("status %d for %q", code, q)
					return
				}
				if sr.Algorithm != string(alg) {
					t.Errorf("alg echo = %q, want %q", sr.Algorithm, alg)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Searches != workers*perWorker {
		t.Errorf("searches = %d, want %d", st.Searches, workers*perWorker)
	}
	if st.Rejected != 0 || st.Errors != 0 {
		t.Errorf("rejected/errors = %d/%d under in-budget load", st.Rejected, st.Errors)
	}
	if st.Cache.HitRate == 0 {
		t.Error("skewed replay should produce cache hits")
	}
	if got := srv.inFlight.Load(); got != 0 {
		t.Errorf("in-flight = %d after drain", got)
	}
}

// TestWorkerPoolSheds verifies overload shedding deterministically: the
// test occupies the single worker slot itself, so every request must be
// shed with 503 until the slot is released.
func TestWorkerPoolSheds(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueTimeout: 10 * time.Millisecond})

	srv.sem <- struct{}{} // hold the only worker token
	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/search?q=topic01")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d with saturated pool: status %d, want 503", i, resp.StatusCode)
		}
	}
	<-srv.sem // release

	resp, err := http.Get(ts.URL + "/search?q=topic01")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after release: status %d, want 200", resp.StatusCode)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Rejected != 4 {
		t.Errorf("rejected = %d, want 4", st.Rejected)
	}
}

// TestStatsIndexShards: /stats must report the engine's segment
// partition, and the per-shard doc counts must sum to the collection.
func TestStatsIndexShards(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Index.Shards < 1 || len(st.Index.DocsPerShard) != st.Index.Shards {
		t.Fatalf("index stats malformed: %+v", st.Index)
	}
	total := 0
	for _, d := range st.Index.DocsPerShard {
		total += d
	}
	if total != testPipeline(t).Engine.NumDocs() {
		t.Errorf("shard docs sum %d, want %d", total, testPipeline(t).Engine.NumDocs())
	}
}

// TestSearchBudgetHeader: X-Search-Budget must parse as a positive Go
// duration (else 400), a generous budget serves normally, and a budget
// that cannot possibly be met sheds the request with 503 instead of
// serving a late answer.
func TestSearchBudgetHeader(t *testing.T) {
	p := testPipeline(t)
	_, ts := newTestServer(t, Config{})
	q := p.Testbed.TopicQuery(1)

	get := func(budget string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, searchURL(ts.URL, q, nil), nil)
		if err != nil {
			t.Fatal(err)
		}
		if budget != "" {
			req.Header.Set(HeaderSearchBudget, budget)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, bad := range []string{"nonsense", "100", "-5ms", "0s"} {
		if code := get(bad); code != http.StatusBadRequest {
			t.Errorf("budget %q: status %d, want 400", bad, code)
		}
	}
	if code := get("30s"); code != http.StatusOK {
		t.Errorf("budget 30s: status %d, want 200", code)
	}
	if code := get("1ns"); code != http.StatusServiceUnavailable {
		t.Errorf("budget 1ns: status %d, want 503 (shed, never a late 200)", code)
	}
}

// stubPartial is a PartialSearcher that scores against the local engine
// but reports whatever degradation metadata the test dials in — the
// server-side contract (wire field, header, counters, cache bypass) in
// isolation from a real router.
type stubPartial struct {
	p        *repro.Pipeline
	degraded atomic.Bool
	hedged   atomic.Bool
}

func (s *stubPartial) SearchBatch(ctx context.Context, queries []string, ks []int) ([][]engine.Result, error) {
	return s.p.Engine.SearchBatch(ctx, queries, ks)
}

func (s *stubPartial) SearchBatchPartial(ctx context.Context, queries []string, ks []int) ([][]engine.Result, repro.SearchInfo, error) {
	lists, err := s.p.Engine.SearchBatch(ctx, queries, ks)
	return lists, repro.SearchInfo{Degraded: s.degraded.Load(), Hedged: s.hedged.Load()}, err
}

// TestSearchDegradedResponse pins the degradation surface: a degraded
// retrieval yields 200 with degraded:true in the body, X-Degraded (and
// X-Hedged) headers, bumped stats counters, NO hedged field in the body
// (hedging must not change response bytes), and — critically — no cache
// entry: the moment the fleet heals, full-fidelity answers return
// instead of a cached partial SERP.
func TestSearchDegradedResponse(t *testing.T) {
	p := testPipeline(t)
	stub := &stubPartial{p: p}
	stub.degraded.Store(true)
	stub.hedged.Store(true)
	cp := *p
	cp.Searcher = stub
	srv := New(cp.NewServeHandle(64, 2), Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	q := p.Testbed.TopicQuery(2)

	get := func() (SearchResponse, http.Header, string) {
		t.Helper()
		resp, err := http.Get(searchURL(ts.URL, q, url.Values{"k": {"5"}}))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var sr SearchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr, resp.Header, string(body)
	}

	for i := 0; i < 2; i++ {
		sr, hdr, body := get()
		if !sr.Degraded {
			t.Fatalf("request %d: body degraded = false, want true", i)
		}
		if hdr.Get(HeaderDegraded) != "true" || hdr.Get(HeaderHedged) != "true" {
			t.Errorf("request %d headers: %s=%q %s=%q, want both true",
				i, HeaderDegraded, hdr.Get(HeaderDegraded), HeaderHedged, hdr.Get(HeaderHedged))
		}
		if strings.Contains(body, "hedged") {
			t.Errorf("request %d body mentions hedging: %s (hedging must stay out of response bytes)", i, body)
		}
		// A degraded artifact must never be cached: the repeat is a MISS.
		if sr.CacheHit {
			t.Errorf("request %d served a cached degraded artifact", i)
		}
		if len(sr.Results) != 5 {
			t.Errorf("request %d: %d results, want 5 (degraded is partial, not empty)", i, len(sr.Results))
		}
	}

	// Fleet heals: the next answer is complete, unmarked — and only now
	// does the artifact cache start retaining.
	stub.degraded.Store(false)
	stub.hedged.Store(false)
	if sr, hdr, _ := get(); sr.Degraded || hdr.Get(HeaderDegraded) != "" || hdr.Get(HeaderHedged) != "" || sr.CacheHit {
		t.Fatalf("after heal: %+v headers=%v, want unmarked cache miss", sr, hdr)
	}
	if sr, _, _ := get(); !sr.CacheHit {
		t.Error("repeat after heal: cache miss, want hit (healthy artifacts cache again)")
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Degraded != 2 || st.Hedged != 2 {
		t.Errorf("stats degraded/hedged = %d/%d, want 2/2", st.Degraded, st.Hedged)
	}
}

// TestSearchCanceledRequest: a request whose context is already canceled
// must be answered 503 (shed), never 200, and must not wedge a worker.
func TestSearchCanceledRequest(t *testing.T) {
	p := testPipeline(t)
	srv, _ := newTestServer(t, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", searchURL("http://x", p.Testbed.TopicQuery(1), nil), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("canceled request: status %d, want 503", rec.Code)
	}
	if got := srv.inFlight.Load(); got != 0 {
		t.Errorf("in_flight = %d after canceled request", got)
	}
}
