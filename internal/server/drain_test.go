package server

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"syscall"
	"testing"
	"time"
)

// TestGracefulDrain pins the shutdown contract of the serving tier: an
// http.Server.Shutdown must let in-flight searches run to completion
// while refusing new connections, and once the drain finishes every
// worker slot must be back in the pool. The holdSearch seam pins the
// in-flight request inside its worker slot deterministically, so the
// test never races the (fast) real search.
func TestGracefulDrain(t *testing.T) {
	p := testPipeline(t)
	srv := New(p.NewServeHandle(64, 2), Config{Workers: 2})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.holdSearch = func() {
		entered <- struct{}{}
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// One in-flight search, parked inside its worker slot.
	type outcome struct {
		code int
		err  error
	}
	inflight := make(chan outcome, 1)
	go func() {
		resp, err := http.Get(searchURL(base, p.Testbed.TopicQuery(1), url.Values{"k": {"5"}}))
		if err != nil {
			inflight <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		inflight <- outcome{code: resp.StatusCode}
	}()
	<-entered

	// Start the drain. Shutdown closes the listener first, then waits for
	// the in-flight request.
	shutdownDone := make(chan error, 1)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- httpSrv.Shutdown(shutdownCtx) }()

	// New connections must be refused once the listener is down. Poll:
	// Shutdown's listener close races this goroutine by design.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			// A dial racing the close can land in the accept backlog and be
			// reset instead of refused; both mean "no new work admitted".
			if !errors.Is(err, syscall.ECONNREFUSED) && !errors.Is(err, syscall.ECONNRESET) {
				t.Fatalf("dial during drain: %v (want connection refused)", err)
			}
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections during Shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before the in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Release the parked search: it must complete successfully over the
	// already-established connection.
	close(release)
	got := <-inflight
	if got.err != nil || got.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: code=%d err=%v, want 200", got.code, got.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	if n := srv.inFlight.Load(); n != 0 {
		t.Errorf("in_flight = %d after drain", n)
	}
	if n := len(srv.sem); n != 0 {
		t.Errorf("%d worker slots still held after drain", n)
	}
	if srv.searches.Load() != 1 {
		t.Errorf("searches = %d, want 1", srv.searches.Load())
	}
}

// TestReadinessSplit pins the liveness/readiness contract: a server
// created before its pipeline is built answers liveness 200 but reports
// not-ready and sheds pipeline-backed endpoints with 503; Publish flips
// all of it atomically.
func TestReadinessSplit(t *testing.T) {
	p := testPipeline(t)
	srv := New(nil, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("liveness while loading: status %d, want 200", code)
	}
	if health.Status != "ok" || health.Ready {
		t.Fatalf("healthz while loading = %+v", health)
	}

	var ready ReadyResponse
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("readiness while loading: status %d, want 503", code)
	}
	if ready.Ready || ready.Reason == "" {
		t.Fatalf("readyz while loading = %+v", ready)
	}

	for _, path := range []string{"/search?q=topic01", "/stats", "/queries"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s while loading: status %d, want 503", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST /flush while loading: status %d, want 503", resp.StatusCode)
	}

	srv.Publish(p.NewServeHandle(64, 2))

	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK || !ready.Ready || ready.Docs == 0 {
		t.Fatalf("readyz after publish: code=%d %+v", code, ready)
	}
	var sr SearchResponse
	if code := getJSON(t, searchURL(ts.URL, p.Testbed.TopicQuery(1), nil), &sr); code != http.StatusOK {
		t.Fatalf("search after publish: status %d, want 200", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.Ready || health.Docs == 0 {
		t.Fatalf("healthz after publish: code=%d %+v", code, health)
	}
}
